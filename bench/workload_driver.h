// The production workload driver: a YCSB-style closed-loop harness
// over the engine's Txn/batch/Query surface, runnable in two modes —
// in-process against a Database, or over the wire through the
// src/server/ service using the pipelined client.
//
// Shape of a run (RunWorkload):
//
//   preload `rows` rows  ->  for each thread count in the sweep:
//     spawn N core-pinned workers (closed loop, per-op latency into a
//     LatencyReservoir per op class)  ->  warmup_ms (measured: no)
//     ->  duration_ms (measured: yes)  ->  join, merge reservoirs
//     ->  print p50/p99/p999 + ops/s per class, emit BENCH_ci.json
//     rows, check the --slo bounds
//
// Key choice per op comes from a scrambled-zipfian (or uniform)
// KeyGenerator over the preloaded keyspace; inserts draw fresh keys
// from one process-wide counter so threads never collide. Reads or
// deletes that land on a deleted key count as `misses`, write-write
// conflicts under skew count as `aborts` — neither is an error; both
// are reported so a skewed run's contention is visible.
//
// Wire mode keeps --pipeline requests in flight per connection
// through Client's Submit/Await API: when the pipeline is full the
// worker awaits the OLDEST outstanding id (completion order is id-
// matched, so this is just the fairest choice, not a requirement).
// Latency is submit -> response for that id — i.e. it includes
// queueing behind the pipeline, which is exactly what a server-side
// SLO must bound. Server Busy rejections count as `busy` and the op
// retries. With --port 0 the driver self-hosts a Server over its own
// Database; with an explicit --port it drives a remote server and
// preloads over the wire (InsertBatch chunks, Busy-retried).
//
// With --trace, every --trace-sample-th measured op (default 64)
// carries a fresh trace id into the flight recorder — stamped on the
// wire frame in wire modes, set thread-locally in-process — and each
// sweep point reports a p99_by_stage breakdown: the per-stage self
// times of the traces nearest the end-to-end p99, which sum to the
// reported e2e by construction. --trace-out FILE additionally dumps
// the recorder as Chrome trace-event JSON (fetched over the wire in
// remote mode, where the per-stage breakdown is skipped).
//
// Exit code: 0, or 1 when any --slo bound is violated at any sweep
// point (the gate CI's perf-smoke job runs).

#ifndef LSTORE_BENCH_WORKLOAD_DRIVER_H_
#define LSTORE_BENCH_WORKLOAD_DRIVER_H_

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/status.h"
#include "core/database.h"
#include "core/query.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "server/client.h"
#include "server/server.h"

namespace lstore {
namespace bench {

// --- op classes ------------------------------------------------------------

enum OpClass : uint32_t {
  kOpRead = 0,
  kOpInsert,
  kOpUpdate,
  kOpDelete,
  kOpScan,
  kOpMultiRead,
  kNumOpClasses,
};

inline const char* OpName(uint32_t c) {
  static const char* kNames[kNumOpClasses] = {"read",   "insert",    "update",
                                              "delete", "scan",      "multiread"};
  return kNames[c];
}

/// Draw op classes with OpMix percentages and keys from the shared
/// scrambled-zipfian/uniform generator. One OpGen per worker thread,
/// seeded distinctly but deterministically from --seed.
class OpGen {
 public:
  OpGen(const BenchArgs& args, uint32_t worker, std::atomic<uint64_t>* next_key)
      : rng_(args.seed * 1000003ull + worker),
        keys_(args.rows, args.theta, args.seed + worker * 7919ull),
        next_key_(next_key) {
    uint32_t pct[kNumOpClasses] = {args.mix.read,  args.mix.insert,
                                   args.mix.update, args.mix.del,
                                   args.mix.scan,   args.mix.multiread};
    uint32_t acc = 0;
    for (uint32_t c = 0; c < kNumOpClasses; ++c) {
      acc += pct[c];
      cum_[c] = acc;
    }
  }

  uint32_t NextClass() {
    uint32_t r = static_cast<uint32_t>(rng_.Uniform(100));
    for (uint32_t c = 0; c < kNumOpClasses; ++c) {
      if (r < cum_[c]) return c;
    }
    return kOpRead;
  }

  /// A key in the preloaded keyspace (skew-distributed).
  uint64_t NextKey() { return keys_.Next(); }

  /// A fresh never-used key (inserts; global across threads).
  uint64_t NextInsertKey() {
    return next_key_->fetch_add(1, std::memory_order_relaxed);
  }

 private:
  Random rng_;
  KeyGenerator keys_;
  std::atomic<uint64_t>* next_key_;
  uint32_t cum_[kNumOpClasses] = {};
};

// --- per-worker accounting -------------------------------------------------

struct WorkerStats {
  LatencyReservoir lat[kNumOpClasses];
  uint64_t ops[kNumOpClasses] = {};  ///< completed ops (measure phase)
  uint64_t misses = 0;  ///< NotFound on read/update/delete (deleted key)
  uint64_t aborts = 0;  ///< write-write conflicts (Status::Aborted)
  uint64_t busy = 0;    ///< server Busy rejections (wire mode), retried
  uint64_t errors = 0;  ///< anything else (reported; run continues)

  void Merge(const WorkerStats& o) {
    for (uint32_t c = 0; c < kNumOpClasses; ++c) {
      lat[c].Merge(o.lat[c]);
      ops[c] += o.ops[c];
    }
    misses += o.misses;
    aborts += o.aborts;
    busy += o.busy;
    errors += o.errors;
  }

  void Account(uint32_t cls, const Status& s, uint64_t start_ns, bool measure) {
    // A NotFound is a completed operation whose key happened to be
    // deleted — an *outcome* with a latency, not a failure — so it
    // counts toward throughput and the reservoir as well as `misses`.
    if (s.ok() || s.IsNotFound()) {
      if (s.IsNotFound()) ++misses;
      if (measure) {
        ++ops[cls];
        lat[cls].Record(NowNs() - start_ns);
      }
    } else if (s.IsAborted()) {
      ++aborts;
    } else if (s.IsBusy()) {
      ++busy;
    } else {
      ++errors;
    }
  }
};

/// Warmup -> measure -> stop, flipped by the controlling thread.
enum Phase : int { kWarmup = 0, kMeasure = 1, kStop = 2 };

/// One sweep point's merged result.
struct WorkloadResult {
  WorkerStats stats;
  double measure_secs = 0;
  uint32_t threads = 0;
  /// Trace ids minted for this point fall in [trace_lo, trace_hi)
  /// (--trace only; both 0 otherwise) — the filter that attributes
  /// flight-recorder spans to this sweep point.
  uint64_t trace_lo = 0;
  uint64_t trace_hi = 0;

  /// The flat stat map the SLO bounds are checked against (and the
  /// vocabulary documented in the README): p50/p99/p999_<op>_us and
  /// <op>_ops_s per op class that ran, plus total_ops_s.
  std::map<std::string, double> StatMap() const {
    std::map<std::string, double> m;
    uint64_t total = 0;
    for (uint32_t c = 0; c < kNumOpClasses; ++c) {
      total += stats.ops[c];
      if (stats.lat[c].count() == 0) continue;
      std::string op = OpName(c);
      m["p50_" + op + "_us"] = stats.lat[c].PercentileUs(0.50);
      m["p99_" + op + "_us"] = stats.lat[c].PercentileUs(0.99);
      m["p999_" + op + "_us"] = stats.lat[c].PercentileUs(0.999);
      m[op + "_ops_s"] =
          measure_secs > 0 ? stats.ops[c] / measure_secs : 0;
    }
    m["total_ops_s"] = measure_secs > 0 ? total / measure_secs : 0;
    return m;
  }
};

// --- in-process worker -----------------------------------------------------

/// Closed loop directly against the Database: one Txn per operation
/// (the server executes exactly the same way for sessionless ops), so
/// in-process and wire mode measure the same engine work and differ
/// only by the service layer.
inline void InProcWorker(const BenchArgs& args, Database* db, Table* table,
                         uint32_t worker, std::atomic<uint64_t>* next_key,
                         const std::atomic<int>* phase, WorkerStats* out) {
  if (args.pin) PinToCore(worker);
  OpGen gen(args, worker, next_key);
  const ColumnMask all = table->schema().AllColumns();
  const uint32_t cols = table->schema().num_columns();
  std::vector<Value> row(cols);
  std::vector<Value> keys;
  std::vector<std::vector<Value>> rows;
  uint64_t op_seq = 0;

  while (true) {
    int ph = phase->load(std::memory_order_acquire);
    if (ph == kStop) break;
    bool measure = ph == kMeasure;
    uint32_t cls = gen.NextClass();
    // --trace: every trace_sample-th measured op runs under a fresh
    // trace id, so engine stages (gc_queue_wait, log_flush, log_append,
    // commit_fsync) record spans against it; the worker itself records
    // the root "request" span since there is no server to do it.
    uint64_t trace_id = 0;
    if (args.trace && measure && (op_seq++ % args.trace_sample) == 0) {
      trace_id = TraceContext::NewTraceId();
    }
    TraceContext::Scope trace_scope(trace_id);
    uint64_t t0 = NowNs();
    Status s;
    switch (cls) {
      case kOpRead: {
        Txn txn = db->Begin();
        s = table->Read(txn, gen.NextKey(), all, &row);
        if (s.ok()) s = txn.Commit();
        break;
      }
      case kOpInsert: {
        row.assign(cols, 0);
        row[0] = gen.NextInsertKey();
        for (uint32_t c = 1; c < cols; ++c) row[c] = row[0] + c;
        Txn txn = db->Begin();
        s = table->Insert(txn, row);
        if (s.ok()) s = txn.Commit();
        break;
      }
      case kOpUpdate: {
        uint64_t key = gen.NextKey();
        row.assign(cols, 0);
        row[1] = t0;
        Txn txn = db->Begin();
        s = table->Update(txn, key, 1ull << 1, row);
        if (s.ok()) s = txn.Commit();
        break;
      }
      case kOpDelete: {
        Txn txn = db->Begin();
        s = table->Delete(txn, gen.NextKey());
        if (s.ok()) s = txn.Commit();
        break;
      }
      case kOpScan: {
        uint64_t sum = 0;
        s = table->NewQuery()
                .Range(gen.NextKey(), args.scan_rows)
                .Workers(1)
                .Sum(1, &sum);
        break;
      }
      case kOpMultiRead: {
        keys.clear();
        for (uint32_t i = 0; i < args.batch; ++i) keys.push_back(gen.NextKey());
        Txn txn = db->Begin();
        s = table->MultiRead(txn, keys, all, &rows);
        if (s.ok() || s.IsNotFound()) {
          Status c = txn.Commit();
          if (s.ok()) s = c;
        }
        break;
      }
      default:
        break;
    }
    if (trace_id != 0) RecordSpan(trace_id, "request", t0, NowNs() - t0);
    out->Account(cls, s, t0, measure);
  }
}

// --- wire worker -----------------------------------------------------------

/// Closed loop over one pipelined connection: keep --pipeline
/// requests in flight, awaiting the oldest id when full. Latency is
/// submit -> completion of that op's own id.
inline void WireWorker(const BenchArgs& args, const std::string& host,
                       uint16_t port, uint32_t worker,
                       std::atomic<uint64_t>* next_key,
                       const std::atomic<int>* phase, WorkerStats* out) {
  if (args.pin) PinToCore(worker);
  OpGen gen(args, worker, next_key);
  Client client;
  Status cs = client.Connect(host, port);
  if (!cs.ok()) {
    std::fprintf(stderr, "worker %u connect: %s\n", worker,
                 cs.ToString().c_str());
    ++out->errors;
    return;
  }
  client.channel().set_max_in_flight(args.pipeline);
  const ColumnMask all = ~0ull;
  const uint32_t cols = args.columns;
  std::vector<Value> row;
  std::vector<Value> mkeys;
  std::vector<std::vector<Value>> rows;

  struct Pending {
    uint32_t cls;
    uint64_t start_ns;
    bool measure;
  };
  std::map<RequestId, Pending> pending;
  uint64_t op_seq = 0;

  // Await `id`, decode per its op class, and account it.
  auto await_one = [&](RequestId id) {
    auto it = pending.find(id);
    Pending p = it->second;
    pending.erase(it);
    Status s;
    switch (p.cls) {
      case kOpRead:
        s = client.AwaitRead(id, &row);
        break;
      case kOpMultiRead:
        s = client.AwaitMultiRead(id, args.batch, &rows);
        break;
      case kOpScan: {
        uint64_t sum = 0;
        s = client.AwaitAggregate(id, &sum);
        break;
      }
      default:
        s = client.Await(id);
        break;
    }
    out->Account(p.cls, s, p.start_ns, p.measure);
    return s;
  };

  auto drain = [&]() {
    RequestId id;
    while (client.channel().OldestInFlight(&id)) {
      if (!await_one(id).ok() && !client.connected()) break;
    }
  };

  while (true) {
    int ph = phase->load(std::memory_order_acquire);
    if (ph == kStop) break;
    if (!client.connected()) {
      // The channel broke (server stopped / connection cut): count
      // what was lost and end this worker's loop.
      drain();
      ++out->errors;
      break;
    }
    if (client.channel().in_flight() >= args.pipeline) {
      RequestId oldest;
      if (client.channel().OldestInFlight(&oldest)) await_one(oldest);
      continue;
    }
    bool measure = ph == kMeasure;
    uint32_t cls = gen.NextClass();
    // --trace: stamp every trace_sample-th measured op with a fresh
    // trace id; the server records the stage spans (decode .. reply)
    // under it. One-shot — only the next Submit carries the id.
    if (args.trace && measure && (op_seq++ % args.trace_sample) == 0) {
      uint64_t trace_id = TraceContext::NewTraceId();
      if (trace_id != 0) client.set_next_trace_id(trace_id);
    }
    uint64_t t0 = NowNs();
    RequestId id = 0;
    Status s;
    switch (cls) {
      case kOpRead:
        s = client.SubmitRead(args.table, gen.NextKey(), all, &id);
        break;
      case kOpInsert: {
        row.assign(cols, 0);
        row[0] = gen.NextInsertKey();
        for (uint32_t c = 1; c < cols; ++c) row[c] = row[0] + c;
        s = client.SubmitInsert(args.table, row, &id);
        break;
      }
      case kOpUpdate: {
        row.assign(cols, 0);
        row[1] = t0;
        s = client.SubmitUpdate(args.table, gen.NextKey(), 1ull << 1, row, &id);
        break;
      }
      case kOpDelete:
        s = client.SubmitDelete(args.table, gen.NextKey(), &id);
        break;
      case kOpScan: {
        Client::QuerySpec spec;
        spec.first_row = gen.NextKey();
        spec.row_count = args.scan_rows;
        s = client.SubmitQuery(args.table, wire::QueryKind::kSum, 1, spec, &id);
        break;
      }
      case kOpMultiRead: {
        mkeys.clear();
        for (uint32_t i = 0; i < args.batch; ++i) {
          mkeys.push_back(gen.NextKey());
        }
        s = client.SubmitMultiRead(args.table, mkeys, all, &id);
        break;
      }
      default:
        break;
    }
    if (s.ok()) {
      pending[id] = Pending{cls, t0, measure};
    } else if (s.IsBusy()) {
      // Client pipeline full despite the depth check (cannot happen)
      // or a raced cap change: await and retry.
      ++out->busy;
      RequestId oldest;
      if (client.channel().OldestInFlight(&oldest)) await_one(oldest);
    } else {
      ++out->errors;
    }
  }
  drain();
  client.Close();
}

// --- load phase ------------------------------------------------------------

inline void LoadInProc(const BenchArgs& args, Database* db, Table** table) {
  Schema schema(args.columns);
  TableConfig cfg;
  Must(db->CreateTable(args.table, schema, cfg), "create table");
  *table = db->GetTable(args.table);
  const uint32_t kChunk = 1024;
  std::vector<std::vector<Value>> rows;
  for (uint64_t k = 0; k < args.rows;) {
    rows.clear();
    for (uint32_t i = 0; i < kChunk && k < args.rows; ++i, ++k) {
      std::vector<Value> row(args.columns);
      row[0] = k;
      for (uint32_t c = 1; c < args.columns; ++c) row[c] = k + c;
      rows.push_back(std::move(row));
    }
    Txn txn = db->Begin();
    Must((*table)->InsertBatch(txn, rows), "preload insert");
    Must(txn.Commit(), "preload commit");
  }
}

/// Preload over the wire (remote server): create the table when it
/// does not exist yet, then InsertBatch chunks, retrying Busy
/// rejections (the server's admission control is part of the system
/// under test, not a load failure).
inline void LoadWire(const BenchArgs& args, Client* client) {
  std::vector<std::string> cols;
  for (uint32_t c = 0; c < args.columns; ++c) {
    cols.push_back("c" + std::to_string(c));
  }
  Status s = client->CreateTable(args.table, cols);
  if (!s.ok() && !s.IsAlreadyExists()) Must(s, "create table");
  if (s.IsAlreadyExists()) return;  // reuse the existing load
  const uint32_t kChunk = 512;
  std::vector<std::vector<Value>> rows;
  for (uint64_t k = 0; k < args.rows;) {
    rows.clear();
    for (uint32_t i = 0; i < kChunk && k < args.rows; ++i, ++k) {
      std::vector<Value> row(args.columns);
      row[0] = k;
      for (uint32_t c = 1; c < args.columns; ++c) row[c] = k + c;
      rows.push_back(std::move(row));
    }
    while (true) {
      s = client->InsertBatch(args.table, rows);
      if (!s.IsBusy()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    Must(s, "preload insert");
  }
}

// --- the sweep -------------------------------------------------------------

/// Run one sweep point: spawn `n` workers of `body`, run the
/// warmup/measure phases, join, and merge. Under --trace the ids this
/// point's workers mint are bracketed into [trace_lo, trace_hi) so
/// the stage breakdown can attribute flight-recorder spans per point.
template <typename WorkerFn>
inline WorkloadResult RunPoint(const BenchArgs& args, uint32_t n,
                               WorkerFn&& body) {
  uint64_t trace_lo = args.trace ? TraceContext::NewTraceId() : 0;
  std::atomic<int> phase{kWarmup};
  std::vector<WorkerStats> stats(n);
  std::vector<std::thread> workers;
  workers.reserve(n);
  for (uint32_t w = 0; w < n; ++w) {
    workers.emplace_back([&, w]() { body(w, &phase, &stats[w]); });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(args.warmup_ms));
  auto t0 = BenchClock::now();
  phase.store(kMeasure, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(args.duration_ms));
  phase.store(kStop, std::memory_order_release);
  auto t1 = BenchClock::now();
  for (auto& t : workers) t.join();

  WorkloadResult r;
  r.threads = n;
  r.measure_secs = Secs(t0, t1);
  for (const auto& s : stats) r.stats.Merge(s);
  if (args.trace) {
    r.trace_lo = trace_lo;
    r.trace_hi = TraceContext::NewTraceId();
  }
  return r;
}

inline void PrintResult(const BenchArgs& args, const WorkloadResult& r) {
  std::printf("threads=%u  mode=%s  measured=%.2fs\n", r.threads,
              args.mode.c_str(), r.measure_secs);
  std::printf("  %-10s %12s %10s %10s %10s\n", "op", "ops/s", "p50(us)",
              "p99(us)", "p999(us)");
  uint64_t total = 0;
  for (uint32_t c = 0; c < kNumOpClasses; ++c) {
    total += r.stats.ops[c];
    if (r.stats.lat[c].count() == 0) continue;
    std::printf("  %-10s %12.0f %10.1f %10.1f %10.1f\n", OpName(c),
                r.stats.ops[c] / r.measure_secs,
                r.stats.lat[c].PercentileUs(0.50),
                r.stats.lat[c].PercentileUs(0.99),
                r.stats.lat[c].PercentileUs(0.999));
  }
  std::printf("  %-10s %12.0f   (misses=%" PRIu64 " aborts=%" PRIu64
              " busy=%" PRIu64 " errors=%" PRIu64 ")\n",
              "total", total / r.measure_secs, r.stats.misses, r.stats.aborts,
              r.stats.busy, r.stats.errors);
}

/// Emit the sweep point's driver-side stats as BENCH_ci.json rows
/// ("workload" bench, one metric per stat, tagged with mode+threads).
inline void EmitResult(const BenchArgs& args, const WorkloadResult& r) {
  for (const auto& [stat, value] : r.StatMap()) {
    std::string metric =
        args.mode + ".t" + std::to_string(r.threads) + "." + stat;
    bool rate = stat.size() > 6 &&
                stat.compare(stat.size() - 6, 6, "_ops_s") == 0;
    EmitMetric("workload", metric, value, rate ? "ops/s" : "us");
  }
}

// --- p99 stage breakdown (--trace) -----------------------------------------

/// Per-stage self-time decomposition of the traces nearest the e2e
/// p99: where does a slow request actually spend its time?
struct StageBreakdown {
  std::map<std::string, double> stage_us;  ///< mean self time per stage
  double e2e_us = 0;   ///< mean root duration over the p99 window
  size_t traces = 0;   ///< complete traces (root span present) seen
};

/// Decompose the flight-recorder spans minted by one sweep point
/// ([lo, hi) ids) into a per-stage breakdown around the e2e p99.
///
/// Per trace: each span's *self* time is its duration minus its direct
/// children's (a span's parent is the smallest span containing it);
/// the root "request" span's own self time is reported as "other"
/// (network, wakeups — anything no stage instruments). Self times sum
/// to the root duration by construction, so the emitted stages sum to
/// the reported e2e. The breakdown averages the traces at ranks
/// p99±2 (by root duration) rather than one trace, so a single
/// outlier does not define the profile.
inline StageBreakdown ComputeStageBreakdown(const std::vector<TraceSpan>& spans,
                                            uint64_t lo, uint64_t hi) {
  StageBreakdown b;
  if (lo >= hi) return b;

  // Group this point's spans by trace id.
  std::map<uint64_t, std::vector<TraceSpan>> traces;
  for (const TraceSpan& s : spans) {
    if (s.trace_id >= lo && s.trace_id < hi) traces[s.trace_id].push_back(s);
  }

  // Per trace: root duration + per-stage self times.
  struct TraceProfile {
    uint64_t root_dur = 0;
    std::map<std::string, double> self_us;
  };
  std::vector<TraceProfile> profiles;
  for (auto& [id, tspans] : traces) {
    int root = -1;
    for (size_t i = 0; i < tspans.size(); ++i) {
      if (std::strcmp(tspans[i].name, "request") == 0) {
        root = static_cast<int>(i);
        break;
      }
    }
    if (root < 0) continue;  // incomplete (ring overwrote the root)

    const size_t n = tspans.size();
    std::vector<double> self(n);
    for (size_t i = 0; i < n; ++i) {
      self[i] = static_cast<double>(tspans[i].dur_ns);
    }
    // Charge each non-root span to its nearest enclosing parent
    // (smallest span containing it); spans outside the root entirely
    // are clock skew artifacts and are dropped.
    for (size_t i = 0; i < n; ++i) {
      if (static_cast<int>(i) == root) continue;
      int parent = -1;
      uint64_t parent_dur = ~0ull;
      for (size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        if (tspans[j].t0_ns <= tspans[i].t0_ns &&
            tspans[i].end_ns() <= tspans[j].end_ns() &&
            tspans[j].dur_ns < parent_dur) {
          parent = static_cast<int>(j);
          parent_dur = tspans[j].dur_ns;
        }
      }
      if (parent >= 0) self[parent] -= static_cast<double>(tspans[i].dur_ns);
    }

    TraceProfile p;
    p.root_dur = tspans[root].dur_ns;
    for (size_t i = 0; i < n; ++i) {
      const char* stage =
          static_cast<int>(i) == root ? "other" : tspans[i].name;
      p.self_us[stage] += std::max(0.0, self[i]) / 1000.0;
    }
    profiles.push_back(std::move(p));
  }
  b.traces = profiles.size();
  if (profiles.empty()) return b;

  // The p99 window: traces at ranks p99-2 .. p99+2 by root duration.
  std::sort(profiles.begin(), profiles.end(),
            [](const TraceProfile& a, const TraceProfile& c) {
              return a.root_dur < c.root_dur;
            });
  size_t rank = static_cast<size_t>(0.99 * (profiles.size() - 1));
  size_t w0 = rank >= 2 ? rank - 2 : 0;
  size_t w1 = std::min(profiles.size() - 1, rank + 2);
  double count = static_cast<double>(w1 - w0 + 1);
  for (size_t i = w0; i <= w1; ++i) {
    b.e2e_us += static_cast<double>(profiles[i].root_dur) / 1000.0 / count;
    for (const auto& [stage, us] : profiles[i].self_us) {
      b.stage_us[stage] += us / count;
    }
  }
  return b;
}

/// Print + emit one sweep point's p99 stage breakdown
/// (<mode>.t<N>.p99_by_stage.<stage> rows next to the driver stats).
inline void ReportStageBreakdown(const BenchArgs& args,
                                 const WorkloadResult& r) {
  StageBreakdown b = ComputeStageBreakdown(FlightRecorder::Instance().Snapshot(),
                                           r.trace_lo, r.trace_hi);
  if (b.traces == 0) {
    std::printf("  p99_by_stage: no complete traces captured%s\n",
                kTraceEnabled ? "" : " (built with LSTORE_TRACING=OFF)");
    return;
  }
  std::string prefix =
      args.mode + ".t" + std::to_string(r.threads) + ".p99_by_stage.";
  double sum = 0;
  std::printf("  p99_by_stage (%zu traces, e2e=%.1fus):\n", b.traces, b.e2e_us);
  for (const auto& [stage, us] : b.stage_us) {
    std::printf("    %-16s %10.1fus  %5.1f%%\n", stage.c_str(), us,
                b.e2e_us > 0 ? 100.0 * us / b.e2e_us : 0.0);
    EmitMetric("workload", prefix + stage, us, "us");
    sum += us;
  }
  EmitMetric("workload", prefix + "e2e", b.e2e_us, "us");
  std::printf("    %-16s %10.1fus  (e2e %.1fus)\n", "sum", sum, b.e2e_us);
}

/// Check the --slo bounds against one sweep point; prints violations
/// and returns their count.
inline uint32_t CheckSlo(const BenchArgs& args, const WorkloadResult& r) {
  if (args.slo.empty()) return 0;
  std::vector<std::string> violations;
  uint32_t bad = args.slo.Check(r.StatMap(), &violations);
  for (const auto& v : violations) {
    std::fprintf(stderr, "[threads=%u] %s\n", r.threads, v.c_str());
  }
  return bad;
}

/// Write the Chrome trace-event JSON for --trace-out (best effort: a
/// failed write is reported, never fatal to the run).
inline void WriteTraceOut(const std::string& path, const std::string& json) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "workload: cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("workload: trace written to %s\n", path.c_str());
}

// --- entry point -----------------------------------------------------------

/// The whole workload binary: load, sweep, report, gate. Returns the
/// process exit code (1 = SLO violated).
inline int RunWorkload(const BenchArgs& args) {
  std::printf("workload: mode=%s rows=%" PRIu64 " mix={%s} theta=%.2f "
              "seed=%" PRIu64 " duration=%" PRIu64 "ms warmup=%" PRIu64
              "ms pipeline=%u\n",
              args.mode.c_str(), args.rows, args.mix.ToString().c_str(),
              args.theta, args.seed, args.duration_ms, args.warmup_ms,
              args.pipeline);

  std::atomic<uint64_t> next_key{args.rows};
  uint32_t violations = 0;

  if (args.mode == "inproc" || args.port == 0) {
    // Own the engine: open (or build in memory), preload in process.
    std::unique_ptr<Database> db;
    std::string dir;
    if (args.memory) {
      db = std::make_unique<Database>();
    } else {
      dir = ScratchDir("workload");
      DurabilityOptions opts;
      opts.sync_commit = args.sync;
      Must(Database::Open(dir, opts, &db), "open database");
    }
    Table* table = nullptr;
    LoadInProc(args, db.get(), &table);

    if (args.mode == "inproc") {
      for (uint32_t n : args.threads) {
        WorkloadResult r = RunPoint(
            args, n,
            [&](uint32_t w, const std::atomic<int>* phase, WorkerStats* out) {
              InProcWorker(args, db.get(), table, w, &next_key, phase, out);
            });
        PrintResult(args, r);
        EmitResult(args, r);
        if (args.trace) ReportStageBreakdown(args, r);
        violations += CheckSlo(args, r);
      }
    } else {
      // Self-hosted wire mode: serve our own Database on an ephemeral
      // port and drive it like a remote one.
      ServerConfig scfg;
      scfg.port = 0;
      scfg.workers = args.server_workers;
      Server server(db.get(), scfg);
      Must(server.Start(), "start server");
      for (uint32_t n : args.threads) {
        WorkloadResult r = RunPoint(
            args, n,
            [&](uint32_t w, const std::atomic<int>* phase, WorkerStats* out) {
              WireWorker(args, "127.0.0.1", server.port(), w, &next_key, phase,
                         out);
            });
        PrintResult(args, r);
        EmitResult(args, r);
        // Self-hosted: the server's flight recorder is in this
        // process, so the breakdown works exactly as in-proc.
        if (args.trace) ReportStageBreakdown(args, r);
        violations += CheckSlo(args, r);
      }
      server.Stop();
    }
    if (args.trace && !args.trace_out.empty()) {
      WriteTraceOut(args.trace_out, db->DumpTrace());
    }
    EmitSnapshot("workload", args.mode.c_str(), db->Metrics());
    db.reset();
    if (!dir.empty()) std::filesystem::remove_all(dir);
  } else {
    // Remote wire mode: the server is someone else's process; preload
    // through the protocol.
    {
      Client loader;
      Must(loader.Connect(args.host, args.port), "connect");
      LoadWire(args, &loader);
    }
    for (uint32_t n : args.threads) {
      WorkloadResult r = RunPoint(
          args, n,
          [&](uint32_t w, const std::atomic<int>* phase, WorkerStats* out) {
            WireWorker(args, args.host, args.port, w, &next_key, phase, out);
          });
      PrintResult(args, r);
      EmitResult(args, r);
      if (args.trace) {
        // The spans live in the remote server's flight recorder; no
        // local breakdown. Use --trace-out to fetch its dump instead.
        std::printf("  p99_by_stage: skipped (remote server holds the "
                    "spans; see --trace-out)\n");
      }
      violations += CheckSlo(args, r);
    }
    if (args.trace && !args.trace_out.empty()) {
      Client tracer;
      std::string json;
      if (tracer.Connect(args.host, args.port).ok() &&
          tracer.Trace(&json).ok()) {
        WriteTraceOut(args.trace_out, json);
      } else {
        std::fprintf(stderr, "workload: could not fetch remote trace\n");
      }
    }
  }

  if (violations > 0) {
    std::fprintf(stderr, "workload: %u SLO violation(s)\n", violations);
    return 1;
  }
  if (!args.slo.empty()) std::printf("workload: all SLO bounds met\n");
  return 0;
}

}  // namespace bench
}  // namespace lstore

#endif  // LSTORE_BENCH_WORKLOAD_DRIVER_H_
