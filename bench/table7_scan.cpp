// Table 7: single-threaded scan performance of the three engines with
// 16 concurrent update threads (low contention, 4K update ranges).
//
// Paper: L-Store 0.24 s, In-place Update + History 0.28 s,
// Delta + Blocking Merge 0.38 s (L-Store wins by 14.28% / 36.84%).

#include "bench_common.h"

using namespace lstore::bench;

int main() {
  PrintHeader("Table 7: scan performance across engines",
              "L-Store < IUH < DBM (0.24 / 0.28 / 0.38 s on the paper's "
              "hardware; shape, not absolute values, is the target)");

  WorkloadConfig cfg;
  cfg.contention = Contention::kLow;
  cfg.range_size = 1u << 12;
  cfg.merge_threshold = 1u << 11;
  cfg.Finalize();
  uint32_t writers = std::min(16u, EnvMaxThreads());

  std::printf("\n%-32s %16s\n", "engine", "scan time (s)");
  const EngineKind kinds[] = {EngineKind::kLStore, EngineKind::kIuh,
                              EngineKind::kDbm};
  for (EngineKind k : kinds) {
    auto engine = LoadedEngine(k, cfg);
    double secs = TimeScanUnderUpdates(*engine, cfg, writers, /*repeats=*/3);
    std::printf("%-32s %16.4f\n", EngineName(k).c_str(), secs);
    std::fflush(stdout);
  }
  return 0;
}
