// The production workload harness binary (bench/workload_driver.h
// has the driver itself). Examples:
//
//   workload --mode inproc --rows 100000 --threads 1,4,8
//            --mix read=80,update=15,insert=5 --theta 0.99
//            --slo p99_read_us=500,min_total_ops_s=10000
//
//   workload --mode wire --pipeline 8            # self-hosted server
//   workload --mode wire --host 10.0.0.5 --port 7411   # remote server
//
// Exits 1 when any --slo bound is violated, 0 otherwise.

#include "workload_driver.h"

int main(int argc, char** argv) {
  using namespace lstore::bench;
  BenchArgs args = BenchArgs::ParseOrDie(argc, argv);
  return RunWorkload(args);
}
