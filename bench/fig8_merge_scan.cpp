// Figure 8: single-threaded scan execution time vs. the number of tail
// records processed per merge (M), with 4 and 16 concurrent update
// threads and one dedicated merge thread. Range partitioning fixed.
//
// Paper: scan time drops as M grows (the merge keeps up and scans
// rarely chase tails), with slight deterioration when the merge is
// delayed too long; the sweet spot is M ~ 50% of the range size.

#include "bench_common.h"

using namespace lstore::bench;

int main() {
  PrintHeader("Figure 8: scan performance vs merge batch size M",
              "scan time decreases with M, optimum near 50% of range size; "
              "merge keeps up with concurrent updaters");

  WorkloadConfig base;
  base.contention = Contention::kLow;
  base.range_size = 1u << 12;  // 4K records per range
  base.Finalize();

  const uint32_t kRange = base.range_size;
  std::vector<uint32_t> merge_batches = {kRange / 16, kRange / 8, kRange / 4,
                                         kRange / 2, kRange};
  uint32_t writer_counts[] = {4, 16};
  uint32_t cap = EnvMaxThreads();

  std::printf("\n%-24s", "update threads \\ M");
  for (uint32_t m : merge_batches) std::printf(" %9u", m);
  std::printf("   (scan seconds)\n");

  for (uint32_t writers : writer_counts) {
    uint32_t w = std::min(writers, cap);
    std::printf("%-24u", w);
    for (uint32_t m : merge_batches) {
      WorkloadConfig cfg = base;
      cfg.merge_threshold = m;
      auto engine = LoadedEngine(EngineKind::kLStore, cfg);
      double secs = TimeScanUnderUpdates(*engine, cfg, w, /*repeats=*/3);
      std::printf(" %9.4f", secs);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  // Parallel-scan scaling: the same snapshot scan fanned out on the
  // shared worker pool across update-range partitions (Query layer),
  // quiescent and with concurrent updaters. Expect near-linear
  // speedup while workers <= cores; identical sums by construction.
  std::printf("\nParallel Query::Sum scaling (merge M = range/2)\n");
  std::printf("%-24s %10s %12s %10s\n", "scan workers", "quiet (s)",
              "updated (s)", "speedup");
  WorkloadConfig cfg = base;
  cfg.merge_threshold = kRange / 2;
  auto engine = LoadedEngine(EngineKind::kLStore, cfg);
  double base_quiet = 0;
  for (uint32_t workers : ThreadPoints()) {
    engine->SetScanWorkers(workers);
    double quiet = TimeScanUnderUpdates(*engine, cfg, 0, /*repeats=*/3);
    uint32_t upd = std::min(4u, cap);
    double updated = TimeScanUnderUpdates(*engine, cfg, upd, /*repeats=*/3);
    if (workers == 1) base_quiet = quiet;
    std::printf("%-24u %10.4f %12.4f %9.2fx\n", workers, quiet, updated,
                base_quiet > 0 ? base_quiet / quiet : 0.0);
    std::fflush(stdout);
  }
  return 0;
}
