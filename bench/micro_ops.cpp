// Google-benchmark micro benchmarks of the primitive operations:
// insert, point read (merged / tail-resident), update, merge, scan
// fast path, and codec throughput. These are the building blocks the
// paper's end-to-end numbers decompose into.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/query.h"
#include "core/table.h"
#include "storage/compressed_column.h"
#include "storage/compression/delta.h"

namespace {

using namespace lstore;

TableConfig BenchConfig() {
  TableConfig cfg;
  cfg.range_size = 1u << 12;
  cfg.insert_range_size = 1u << 12;
  cfg.merge_threshold = 1u << 11;
  cfg.enable_merge_thread = false;
  return cfg;
}

std::unique_ptr<Table> MakeLoadedTable(uint64_t rows, bool merged) {
  auto table = std::make_unique<Table>("b", Schema(11), BenchConfig());
  Txn txn = table->Begin();
  std::vector<Value> row(11);
  for (Value k = 0; k < rows; ++k) {
    row[0] = k;
    for (int c = 1; c < 11; ++c) row[c] = k + c;
    (void)table->Insert(txn, row);
  }
  (void)txn.Commit();
  if (merged) table->FlushAll();
  return table;
}

void BM_Insert(benchmark::State& state) {
  auto table = std::make_unique<Table>("b", Schema(11), BenchConfig());
  std::vector<Value> row(11, 1);
  Value key = 0;
  for (auto _ : state) {
    row[0] = key++;
    Txn txn = table->Begin();
    benchmark::DoNotOptimize(table->Insert(txn, row));
    (void)txn.Commit();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Insert);

void BM_PointReadMergedBase(benchmark::State& state) {
  auto table = MakeLoadedTable(1u << 12, /*merged=*/true);
  Random rng(1);
  std::vector<Value> out;
  for (auto _ : state) {
    Txn txn = table->Begin();
    benchmark::DoNotOptimize(
        table->Read(txn, rng.Uniform(1u << 12), 0b0110, &out));
    (void)txn.Commit();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointReadMergedBase);

void BM_PointReadTailResident(benchmark::State& state) {
  auto table = MakeLoadedTable(1u << 12, /*merged=*/true);
  Random rng(2);
  // Touch every record once so reads chase one tail hop.
  for (Value k = 0; k < (1u << 12); ++k) {
    Txn txn = table->Begin();
    std::vector<Value> row(11, 0);
    row[1] = k;
    (void)table->Update(txn, k, 0b0010, row);
    (void)txn.Commit();
  }
  std::vector<Value> out;
  for (auto _ : state) {
    Txn txn = table->Begin();
    benchmark::DoNotOptimize(
        table->Read(txn, rng.Uniform(1u << 12), 0b0010, &out));
    (void)txn.Commit();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointReadTailResident);

void BM_Update(benchmark::State& state) {
  auto table = MakeLoadedTable(1u << 12, /*merged=*/true);
  Random rng(3);
  std::vector<Value> row(11, 7);
  for (auto _ : state) {
    Txn txn = table->Begin();
    benchmark::DoNotOptimize(
        table->Update(txn, rng.Uniform(1u << 12), 0b0010, row));
    (void)txn.Commit();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Update);

void BM_UpdateFourColumns(benchmark::State& state) {
  // The paper's workload updates ~40% of columns per write.
  auto table = MakeLoadedTable(1u << 12, /*merged=*/true);
  Random rng(4);
  std::vector<Value> row(11, 7);
  for (auto _ : state) {
    Txn txn = table->Begin();
    benchmark::DoNotOptimize(
        table->Update(txn, rng.Uniform(1u << 12), 0b11110, row));
    (void)txn.Commit();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdateFourColumns);

void BM_MergeRange(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto table = MakeLoadedTable(1u << 12, /*merged=*/true);
    Random rng(5);
    std::vector<Value> row(11, 9);
    for (int i = 0; i < 2048; ++i) {
      Txn txn = table->Begin();
      (void)table->Update(txn, rng.Uniform(1u << 12), 0b0010, row);
      (void)txn.Commit();
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(table->MergeRangeNow(0));
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_MergeRange)->Unit(benchmark::kMillisecond);

void BM_ScanMerged(benchmark::State& state) {
  auto table = MakeLoadedTable(1u << 14, /*merged=*/true);
  for (auto _ : state) {
    uint64_t sum = 0;
    Timestamp now = table->Now();
    (void)table->NewQuery().AsOf(now).Sum(1, &sum);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * (1u << 14));
}
BENCHMARK(BM_ScanMerged);

void BM_DeltaEncodeDecode(benchmark::State& state) {
  std::vector<Value> vals;
  for (uint64_t i = 0; i < 4096; ++i) vals.push_back(1000000 + i * 3);
  for (auto _ : state) {
    std::string buf;
    DeltaEncode(vals, &buf);
    std::vector<Value> out;
    (void)DeltaDecode(buf, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * vals.size());
}
BENCHMARK(BM_DeltaEncodeDecode);

void BM_CompressedColumnGet(benchmark::State& state) {
  Random rng(6);
  std::vector<Value> vals;
  for (int i = 0; i < 4096; ++i) vals.push_back(rng.Uniform(16));
  auto col = CompressedColumn::Build(vals, true);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(col->Get(i++ & 4095));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompressedColumnGet);

}  // namespace

BENCHMARK_MAIN();
