// Ablation (Section 4.4): update-range size trade-offs. The paper
// argues 2^12 .. 2^16 records per range is the sweet spot: smaller
// ranges waste half-filled tail pages; larger ranges hurt tail-page
// locality during scans. We sweep range sizes at a fixed workload and
// report update throughput, scan latency, and tail-page count (space
// proxy).

#include "bench_common.h"
#include "core/table.h"

using namespace lstore::bench;

int main() {
  PrintHeader("Ablation: update range size (Section 4.4)",
              "ranges of 2^12..2^16 balance locality vs fragmentation; "
              "extremes lose on scan locality or space");

  const uint32_t range_sizes[] = {1u << 8, 1u << 10, 1u << 12, 1u << 14};
  uint32_t writers = std::min(4u, EnvMaxThreads());

  std::printf("\n%-14s %16s %16s\n", "range size", "upd K txns/s",
              "scan secs");
  for (uint32_t rs : range_sizes) {
    WorkloadConfig cfg;
    cfg.contention = Contention::kLow;
    cfg.range_size = rs;
    cfg.merge_threshold = rs / 2;
    cfg.Finalize();
    auto engine = LoadedEngine(EngineKind::kLStore, cfg);
    RunResult res = RunMixed(*engine, cfg, writers, /*scan_threads=*/1);
    std::printf("%-14u %16.1f %16.4f\n", rs,
                res.update_txns_per_sec / 1000.0, res.scan_seconds);
    std::fflush(stdout);
  }
  return 0;
}
