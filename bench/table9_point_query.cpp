// Table 9: point-query throughput vs. the percentage of columns each
// read fetches (10% .. 100%), L-Store (Column) vs L-Store (Row).
// Transactions of 10 point reads on a 10-column table.
//
// Paper: columnar matches row at 10-20% of columns, degrades as more
// columns are fetched, worst case -33% when all columns are read;
// row stays flat (~1.45 M txns/s on their hardware).

#include "bench_common.h"

using namespace lstore::bench;

int main() {
  PrintHeader("Table 9: point queries vs % of columns read",
              "columnar ~ row at 10-20% of columns; columnar drops ~33% in "
              "the all-columns worst case; row flat");

  WorkloadConfig cfg;
  cfg.contention = Contention::kLow;
  cfg.Finalize();
  uint32_t threads = std::min(4u, EnvMaxThreads());

  const uint32_t col_counts[] = {1, 2, 4, 8, 10};  // of 10 data columns
  std::printf("\n%-20s", "layout \\ %cols");
  for (uint32_t c : col_counts) std::printf(" %9u%%", c * 10);
  std::printf("   (K txns/s, %u threads, 10 reads/txn)\n", threads);

  const EngineKind kinds[] = {EngineKind::kLStore, EngineKind::kLStoreRow};
  for (EngineKind k : kinds) {
    auto engine = LoadedEngine(k, cfg);
    std::printf("%-20s", k == EngineKind::kLStore ? "L-Store (Column)"
                                                  : "L-Store (Row)");
    for (uint32_t ncols : col_counts) {
      // Fetch the first `ncols` data columns (columns 1..ncols).
      uint64_t mask = 0;
      for (uint32_t c = 1; c <= ncols; ++c) mask |= 1ull << c;
      double tps = RunPointReads(*engine, cfg, threads, /*reads=*/10, mask);
      std::printf(" %10.1f", tps / 1000.0);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
