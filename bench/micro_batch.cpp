// Batched point operations vs looped single operations: MultiRead,
// InsertBatch, and UpdateBatch amortize primary-index shard latches,
// epoch pins, and redo-log framing (one frame per batch). Also prints
// the parallel Query::Sum scaling curve on a large table — the
// acceptance scenario for the partitioned scan executor.
//
// Sizes scale with LSTORE_BENCH_SCALE (default 100000; the scan curve
// uses max(scale, 1M) rows when LSTORE_BENCH_SCALE is unset).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "core/query.h"
#include "core/table.h"

using namespace lstore;
using namespace lstore::bench;

namespace {

// Phase timing comes from the shared bench-driver API (bench::Secs on
// the shared BenchClock) rather than a private clock alias.
using Clk = BenchClock;

TableConfig BatchConfig(bool logging, const std::string& log_path) {
  TableConfig cfg;
  cfg.range_size = 1u << 12;
  cfg.insert_range_size = 1u << 12;
  cfg.merge_threshold = 1u << 11;
  cfg.enable_merge_thread = false;
  cfg.enable_logging = logging;
  cfg.log_path = log_path;
  return cfg;
}

std::unique_ptr<Table> LoadedTable(uint64_t rows, bool logging,
                                   const std::string& log_path) {
  auto table =
      std::make_unique<Table>("m", Schema(5), BatchConfig(logging, log_path));
  Txn txn = table->Begin();
  std::vector<std::vector<Value>> batch;
  for (Value k = 0; k < rows; ++k) {
    batch.push_back({k, k + 1, k + 2, k + 3, k + 4});
    if (batch.size() == 4096) {
      (void)table->InsertBatch(txn, batch);
      batch.clear();
    }
  }
  if (!batch.empty()) (void)table->InsertBatch(txn, batch);
  (void)txn.Commit();
  table->FlushAll();
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  // Shared flag vocabulary (--rows/--seed/--batch); defaults keep the
  // historical LSTORE_BENCH_SCALE-driven sizing for flag-less runs.
  BenchArgs args = BenchArgs::ParseOrDie(argc, argv);
  PrintHeader("Batched point ops vs looped singles + parallel scan scaling",
              "batching amortizes index probes, epoch pins, and log frames; "
              "partitioned snapshot scans speed up with workers");

  const uint64_t kRows = std::max<uint64_t>(args.rows, 10000);
  const uint64_t kOps = std::min<uint64_t>(kRows, 50000);
  const uint32_t kBatch = std::max<uint32_t>(args.batch, 16u) * 16;
  std::string dir = ScratchDir("micro_batch");

  // --- MultiRead vs looped Read (no logging) -----------------------------
  {
    auto table = LoadedTable(kRows, false, "");
    Random rng(args.seed);
    std::vector<Value> keys(kOps);
    for (auto& k : keys) k = rng.Uniform(kRows);

    auto t0 = Clk::now();
    {
      Txn txn = table->Begin();
      std::vector<Value> out;
      for (Value k : keys) (void)table->Read(txn, k, 0b00110, &out);
      (void)txn.Commit();
    }
    auto t1 = Clk::now();
    {
      Txn txn = table->Begin();
      std::vector<std::vector<Value>> rows;
      for (uint64_t i = 0; i < kOps; i += kBatch) {
        std::vector<Value> slice(
            keys.begin() + i,
            keys.begin() + std::min<uint64_t>(i + kBatch, kOps));
        (void)table->MultiRead(txn, slice, 0b00110, &rows);
      }
      (void)txn.Commit();
    }
    auto t2 = Clk::now();
    double looped = Secs(t0, t1), batched = Secs(t1, t2);
    std::printf("%-34s %10.0f ops/s\n", "Read (looped)", kOps / looped);
    std::string label = "MultiRead (batch=" + std::to_string(kBatch) + ")";
    std::printf("%-34s %10.0f ops/s   (%.2fx)\n", label.c_str(),
                kOps / batched, looped / batched);
    EmitMetric("micro_batch", "read_looped", kOps / looped, "ops/s");
    EmitMetric("micro_batch", "multiread_batched", kOps / batched, "ops/s");
  }

  // --- InsertBatch vs looped Insert (logging ON: frame amortization) -----
  {
    double looped, batched;
    {
      auto table = std::make_unique<Table>(
          "ins1", Schema(5), BatchConfig(true, dir + "/ins1.log"));
      Txn txn = table->Begin();
      auto t0 = Clk::now();
      for (Value k = 0; k < kOps; ++k) {
        (void)table->Insert(txn, {k, 1, 2, 3, 4});
      }
      looped = Secs(t0, Clk::now());
      (void)txn.Commit();
    }
    {
      auto table = std::make_unique<Table>(
          "ins2", Schema(5), BatchConfig(true, dir + "/ins2.log"));
      Txn txn = table->Begin();
      auto t0 = Clk::now();
      std::vector<std::vector<Value>> rows;
      for (Value k = 0; k < kOps; ++k) {
        rows.push_back({k, 1, 2, 3, 4});
        if (rows.size() == kBatch) {
          (void)table->InsertBatch(txn, rows);
          rows.clear();
        }
      }
      if (!rows.empty()) (void)table->InsertBatch(txn, rows);
      batched = Secs(t0, Clk::now());
      (void)txn.Commit();
    }
    std::printf("%-34s %10.0f ops/s\n", "Insert (looped, logged)",
                kOps / looped);
    std::printf("%-34s %10.0f ops/s   (%.2fx)\n", "InsertBatch (logged)",
                kOps / batched, looped / batched);
    EmitMetric("micro_batch", "insert_looped", kOps / looped, "ops/s");
    EmitMetric("micro_batch", "insertbatch", kOps / batched, "ops/s");
  }

  // --- UpdateBatch vs looped Update (logging ON) -------------------------
  {
    auto table = LoadedTable(kRows, true, dir + "/upd.log");
    // A stride walk gives distinct keys spread across ranges.
    std::vector<Value> keys(kOps);
    for (uint64_t i = 0; i < kOps; ++i) keys[i] = (i * 7919) % kRows;
    std::vector<Value> row(5, 99);

    Txn txn = table->Begin();
    auto t0 = Clk::now();
    for (uint64_t i = 0; i < kOps / 2; ++i) {
      (void)table->Update(txn, keys[i], 0b00010, row);
    }
    auto t1 = Clk::now();
    std::vector<std::vector<Value>> rows(kBatch, row);
    for (uint64_t i = kOps / 2; i + kBatch <= kOps; i += kBatch) {
      std::vector<Value> slice(keys.begin() + i, keys.begin() + i + kBatch);
      (void)table->UpdateBatch(txn, slice, 0b00010, rows);
    }
    auto t2 = Clk::now();
    (void)txn.Commit();
    double looped = Secs(t0, t1) / (kOps / 2);
    double batched = Secs(t1, t2) / (kOps / 2 - kBatch);
    std::printf("%-34s %10.0f ops/s\n", "Update (looped, logged)",
                1.0 / looped);
    std::printf("%-34s %10.0f ops/s   (%.2fx)\n", "UpdateBatch (logged)",
                1.0 / batched, looped / batched);
    EmitMetric("micro_batch", "update_looped", 1.0 / looped, "ops/s");
    EmitMetric("micro_batch", "updatebatch", 1.0 / batched, "ops/s");
  }

  // --- Parallel Query::Sum scaling on a large table ----------------------
  // The acceptance scenario: >= 1M rows, identical sums at every
  // worker count, >= 3x at 8 workers on sufficiently parallel hardware.
  {
    const uint64_t scan_rows =
        std::getenv("LSTORE_BENCH_SCALE") != nullptr
            ? std::max<uint64_t>(kRows, 100000)
            : std::max<uint64_t>(kRows, 1000000);
    auto table = LoadedTable(scan_rows, false, "");
    std::printf("\nParallel Query::Sum over %llu rows\n",
                static_cast<unsigned long long>(scan_rows));
    std::printf("%-12s %12s %14s %10s\n", "workers", "time (s)", "rows/s",
                "speedup");
    uint64_t expect = 0;
    double base = 0;
    for (uint32_t workers : ThreadPoints()) {
      uint64_t sum = 0;
      double best = 1e100;
      for (int rep = 0; rep < 3; ++rep) {
        auto t0 = Clk::now();
        (void)table->NewQuery().Workers(workers).Sum(1, &sum);
        best = std::min(best, Secs(t0, Clk::now()));
      }
      if (workers == 1) {
        base = best;
        expect = sum;
      } else if (sum != expect) {
        std::printf("SUM MISMATCH at %u workers: %llu != %llu\n", workers,
                    static_cast<unsigned long long>(sum),
                    static_cast<unsigned long long>(expect));
        return 1;
      }
      std::printf("%-12u %12.4f %14.0f %9.2fx\n", workers, best,
                  scan_rows / best, base / best);
      EmitMetric("micro_batch", "query_sum_w" + std::to_string(workers),
                 scan_rows / best, "rows/s");
      std::fflush(stdout);
    }

    // Engine-side view of the same run: partition latencies and merge
    // work from the table's own registry, dumped into the bench JSON.
    MetricsSnapshot snap = table->metrics()->Snapshot();
    EmitSnapshot("micro_batch", "engine", snap);
    if (const auto* h = snap.FindHistogram("lstore_query_partition_ns");
        h != nullptr && h->hist.count > 0) {
      std::printf("\nscan partitions: %llu, p50=%lluns p99=%lluns\n",
                  static_cast<unsigned long long>(h->hist.count),
                  static_cast<unsigned long long>(h->hist.Percentile(0.5)),
                  static_cast<unsigned long long>(h->hist.Percentile(0.99)));
    }
  }

  std::filesystem::remove_all(dir);
  return 0;
}
