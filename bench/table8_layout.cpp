// Table 8: scan performance of L-Store (Column) vs L-Store (Row),
// with no updates and with 16 concurrent update threads.
//
// Paper: columnar wins 4.56x without updates and 2.75x with updates
// (and would win more with column compression enabled).

#include "bench_common.h"

using namespace lstore::bench;

int main() {
  PrintHeader("Table 8: scan performance, row vs columnar layout",
              "L-Store (Column) beats L-Store (Row) ~4.56x without updates "
              "and ~2.75x with 16 update threads");

  WorkloadConfig cfg;
  cfg.contention = Contention::kLow;
  cfg.range_size = 1u << 12;
  cfg.Finalize();
  uint32_t writers = std::min(16u, EnvMaxThreads());

  std::printf("\n%-24s %22s %22s\n", "layout", "scan, no updates (s)",
              "scan, with updates (s)");
  const EngineKind kinds[] = {EngineKind::kLStore, EngineKind::kLStoreRow};
  for (EngineKind k : kinds) {
    auto engine = LoadedEngine(k, cfg);
    double idle = TimeScanUnderUpdates(*engine, cfg, 0, /*repeats=*/5);
    double busy = TimeScanUnderUpdates(*engine, cfg, writers, /*repeats=*/3);
    std::printf("%-24s %22.4f %22.4f\n",
                k == EngineKind::kLStore ? "L-Store (Column)"
                                         : "L-Store (Row)",
                idle, busy);
    std::fflush(stdout);
  }
  return 0;
}
