// Shared helpers for the per-figure/table benchmark drivers.
//
// Every binary prints (a) the machine-independent configuration it
// ran with, (b) rows mirroring the paper's figure/table, and (c) the
// paper's qualitative expectation, so EXPERIMENTS.md can be filled in
// by inspection. Sizes scale with LSTORE_BENCH_SCALE and durations
// with LSTORE_BENCH_MS (see src/bench_harness/workload.h).

#ifndef LSTORE_BENCH_BENCH_COMMON_H_
#define LSTORE_BENCH_BENCH_COMMON_H_

#include <pthread.h>
#include <sched.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_harness/engines.h"
#include "bench_harness/runner.h"
#include "bench_harness/workload.h"
#include "common/random.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace lstore {
namespace bench {

inline void PrintHeader(const char* experiment, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper expectation: %s\n", paper_claim);
  std::printf("scale=%llu rows (low contention), duration=%llu ms/point, "
              "max threads=%u\n",
              static_cast<unsigned long long>(EnvScale()),
              static_cast<unsigned long long>(EnvDurationMs()),
              EnvMaxThreads());
  std::printf("==============================================================\n");
}

/// Thread counts for scalability sweeps, bounded by the env cap.
inline std::vector<uint32_t> ThreadPoints() {
  uint32_t cap = EnvMaxThreads();
  std::vector<uint32_t> pts;
  for (uint32_t t : {1u, 2u, 4u, 8u, 16u, 22u}) {
    if (t <= cap) pts.push_back(t);
  }
  if (pts.empty()) pts.push_back(1);
  return pts;
}

/// Append one metric row (JSON lines) to the file named by the
/// LSTORE_BENCH_JSON env var; no-op when unset. CI's perf-smoke job
/// points it at BENCH_ci.json and uploads the file as an artifact, so
/// the bench trajectory accumulates run over run.
inline void EmitMetric(const char* bench, const std::string& metric,
                       double value, const char* unit) {
  const char* path = std::getenv("LSTORE_BENCH_JSON");
  if (path == nullptr) return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(f,
               "{\"bench\":\"%s\",\"metric\":\"%s\",\"value\":%.3f,"
               "\"unit\":\"%s\",\"scale\":%llu}\n",
               bench, metric.c_str(), value, unit,
               static_cast<unsigned long long>(EnvScale()));
  std::fclose(f);
}

/// Dump an engine-metrics section into the bench JSON: every counter
/// and gauge as one row, and each histogram as count/p50/p95/p99/p999
/// rows. Rows carry `bench` and a `section` label so BENCH_ci.json
/// keeps bench throughput and engine internals side by side.
inline void EmitSnapshot(const char* bench, const char* section,
                         const MetricsSnapshot& snap) {
  const char* path = std::getenv("LSTORE_BENCH_JSON");
  if (path == nullptr) return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  auto row = [&](const std::string& metric, double value, const char* unit) {
    std::fprintf(f,
                 "{\"bench\":\"%s\",\"section\":\"%s\",\"metric\":\"%s\","
                 "\"value\":%.3f,\"unit\":\"%s\",\"scale\":%llu}\n",
                 bench, section, metric.c_str(), value, unit,
                 static_cast<unsigned long long>(EnvScale()));
  };
  for (const auto& c : snap.counters) {
    row(c.name, static_cast<double>(c.value), "count");
  }
  for (const auto& g : snap.gauges) {
    row(g.name, static_cast<double>(g.value), "value");
  }
  for (const auto& h : snap.histograms) {
    if (h.hist.count == 0) continue;
    row(h.name + ".count", static_cast<double>(h.hist.count), "count");
    row(h.name + ".p50", static_cast<double>(h.hist.Percentile(0.5)), "le");
    row(h.name + ".p95", static_cast<double>(h.hist.Percentile(0.95)), "le");
    row(h.name + ".p99", static_cast<double>(h.hist.Percentile(0.99)), "le");
    row(h.name + ".p999", static_cast<double>(h.hist.Percentile(0.999)),
        "le");
  }
  std::fclose(f);
}

/// Monotonic wall clock in milliseconds (durability benchmarks).
inline double WallMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Fresh scratch directory for durability benchmarks (fig_recovery):
/// unique per process; callers remove it when done.
inline std::string ScratchDir(const std::string& name) {
  std::string dir = std::filesystem::temp_directory_path().string() +
                    "/lstore_" + name + "_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Total bytes of files under `dir` whose name ends with `suffix`.
inline uint64_t DirBytes(const std::string& dir, const std::string& suffix) {
  uint64_t total = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    const std::string p = e.path().string();
    if (p.size() >= suffix.size() &&
        p.compare(p.size() - suffix.size(), suffix.size(), suffix) == 0) {
      total += std::filesystem::file_size(e.path());
    }
  }
  return total;
}

/// Build + load an engine for a workload.
inline std::unique_ptr<Engine> LoadedEngine(EngineKind kind,
                                            const WorkloadConfig& cfg) {
  auto engine = MakeEngine(kind, cfg);
  engine->Load(cfg.table_rows);
  return engine;
}

// ===========================================================================
// Shared bench-driver API: every driver binary parses the same flag
// vocabulary, times phases with the same clock helpers, captures
// per-op latencies in the same reservoir, and gates on the same
// declarative SLO spec. bench/workload.cpp, the migrated per-figure
// drivers, and `lstore_cli bench` all sit on this.
// ===========================================================================

using BenchClock = std::chrono::steady_clock;

/// Seconds between two steady-clock points.
inline double Secs(BenchClock::time_point a, BenchClock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(b - a)
      .count();
}

/// Monotonic nanoseconds (per-op latency timestamps).
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          BenchClock::now().time_since_epoch())
          .count());
}

/// Exit with a message when a setup step fails (drivers have no
/// meaningful recovery from a failed open/create/load).
inline void Must(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

/// Best-effort pin of the calling thread to one core (foreground
/// workload threads pin to distinct cores so tail latencies measure
/// the engine, not the scheduler's migrations). No-op on failure.
inline void PinToCore(uint32_t index) {
#if defined(__linux__)
  unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(index % cores, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)index;
#endif
}

/// Fixed-capacity latency sample reservoir (uniform reservoir
/// sampling past the cap), giving exact-sample percentiles that the
/// engine's log-scale histograms can be validated against. One
/// reservoir per (thread, op class); merge after the threads join.
class LatencyReservoir {
 public:
  explicit LatencyReservoir(size_t capacity = 1u << 16, uint64_t seed = 7)
      : cap_(capacity), rng_(seed) {}

  void Record(uint64_t ns) {
    ++count_;
    if (samples_.size() < cap_) {
      samples_.push_back(ns);
    } else {
      uint64_t i = rng_.Uniform(count_);
      if (i < cap_) samples_[i] = ns;
    }
  }

  /// Pool another reservoir's samples. Exact when neither overflowed
  /// its cap; otherwise a same-rate approximation (fine for the
  /// equal-duration worker threads this is used for).
  void Merge(const LatencyReservoir& other) {
    count_ += other.count_;
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }

  uint64_t count() const { return count_; }

  /// q in [0, 1]; 0 when empty.
  uint64_t PercentileNs(double q) const {
    if (samples_.empty()) return 0;
    std::vector<uint64_t> sorted = samples_;
    size_t idx = static_cast<size_t>(q * (sorted.size() - 1) + 0.5);
    if (idx >= sorted.size()) idx = sorted.size() - 1;
    std::nth_element(sorted.begin(), sorted.begin() + idx, sorted.end());
    return sorted[idx];
  }

  double PercentileUs(double q) const { return PercentileNs(q) / 1000.0; }

 private:
  size_t cap_;
  uint64_t count_ = 0;
  std::vector<uint64_t> samples_;
  Random rng_;
};

/// Operation mix of the workload driver, in percent (must total 100).
struct OpMix {
  uint32_t read = 95;
  uint32_t insert = 0;
  uint32_t update = 5;
  uint32_t del = 0;
  uint32_t scan = 0;
  uint32_t multiread = 0;

  /// Parse "read=70,update=20,insert=5,delete=1,scan=2,multiread=2".
  /// Named classes are set, omitted ones zeroed.
  bool Parse(const std::string& spec, std::string* err) {
    OpMix m{0, 0, 0, 0, 0, 0};
    size_t pos = 0;
    while (pos < spec.size()) {
      size_t eq = spec.find('=', pos);
      size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      if (eq == std::string::npos || eq > comma) {
        *err = "bad op mix term: " + spec.substr(pos, comma - pos);
        return false;
      }
      std::string name = spec.substr(pos, eq - pos);
      uint32_t pct =
          static_cast<uint32_t>(std::strtoul(spec.c_str() + eq + 1, nullptr, 10));
      if (name == "read") m.read = pct;
      else if (name == "insert") m.insert = pct;
      else if (name == "update") m.update = pct;
      else if (name == "delete") m.del = pct;
      else if (name == "scan") m.scan = pct;
      else if (name == "multiread") m.multiread = pct;
      else {
        *err = "unknown op class: " + name;
        return false;
      }
      pos = comma + 1;
    }
    if (m.read + m.insert + m.update + m.del + m.scan + m.multiread != 100) {
      *err = "op mix must total 100%";
      return false;
    }
    *this = m;
    return true;
  }

  std::string ToString() const {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "read=%u,insert=%u,update=%u,delete=%u,scan=%u,multiread=%u",
                  read, insert, update, del, scan, multiread);
    return buf;
  }
};

/// Declarative SLO bounds checked against a driver's measured stats:
///   --slo p99_read_us=500,p999_update_us=2000,min_total_ops_s=10000
/// Plain terms are upper bounds on a stat; a `min_` prefix makes the
/// term a lower bound on the stat named by the rest. A bound naming a
/// stat the run did not produce is itself a violation (a gate must
/// never pass because its metric silently vanished).
struct SloSpec {
  struct Bound {
    std::string stat;  ///< key into the stats map
    double limit = 0;
    bool lower = false;  ///< true: stat must be >= limit
  };
  std::vector<Bound> bounds;

  bool empty() const { return bounds.empty(); }

  bool Parse(const std::string& spec, std::string* err) {
    size_t pos = 0;
    while (pos < spec.size()) {
      size_t eq = spec.find('=', pos);
      size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      if (eq == std::string::npos || eq > comma) {
        *err = "bad SLO term: " + spec.substr(pos, comma - pos);
        return false;
      }
      Bound b;
      b.stat = spec.substr(pos, eq - pos);
      b.limit = std::strtod(spec.c_str() + eq + 1, nullptr);
      if (b.stat.rfind("min_", 0) == 0) {
        b.lower = true;
        b.stat = b.stat.substr(4);
      }
      if (b.stat.empty()) {
        *err = "empty SLO stat name";
        return false;
      }
      bounds.push_back(std::move(b));
      pos = comma + 1;
    }
    return true;
  }

  /// Append a human-readable line per violated bound; returns the
  /// number of violations.
  uint32_t Check(const std::map<std::string, double>& stats,
                 std::vector<std::string>* violations) const {
    uint32_t bad = 0;
    for (const Bound& b : bounds) {
      auto it = stats.find(b.stat);
      char line[256];
      if (it == stats.end()) {
        std::snprintf(line, sizeof(line), "SLO VIOLATION: %s was not measured",
                      b.stat.c_str());
        violations->push_back(line);
        ++bad;
        continue;
      }
      bool ok = b.lower ? it->second >= b.limit : it->second <= b.limit;
      if (!ok) {
        std::snprintf(line, sizeof(line),
                      "SLO VIOLATION: %s = %.1f (bound: %s %.1f)",
                      b.stat.c_str(), it->second, b.lower ? ">=" : "<=",
                      b.limit);
        violations->push_back(line);
        ++bad;
      }
    }
    return bad;
  }
};

/// The shared driver flag vocabulary. Defaults come from the same
/// LSTORE_BENCH_* environment knobs the per-figure drivers always
/// used, so flag-less invocations behave exactly as before.
struct BenchArgs {
  uint64_t rows = EnvScale();            ///< --rows: preloaded table rows
  std::vector<uint32_t> threads;         ///< --threads 1,2,4 (sweep points)
  uint64_t duration_ms = EnvDurationMs();  ///< --duration-ms per point
  uint64_t warmup_ms = 200;              ///< --warmup-ms before measuring
  double theta = 0.99;                   ///< --theta: zipf skew; 0 = uniform
  uint64_t seed = 42;                    ///< --seed
  OpMix mix;                             ///< --mix
  uint32_t columns = 5;                  ///< --columns: key + data columns
  uint32_t scan_rows = 1024;             ///< --scan-rows per scan op
  uint32_t batch = 16;                   ///< --batch: multiread batch size
  uint32_t pipeline = 8;                 ///< --pipeline: wire in-flight depth
  bool pin = true;                       ///< --pin 0|1: core-pin workers
  bool memory = false;                   ///< --memory: in-memory database
  bool sync = false;                     ///< --sync 0|1: fsync on commit
  std::string mode = "inproc";           ///< --mode inproc|wire
  std::string host = "127.0.0.1";        ///< --host (wire)
  uint16_t port = 0;                     ///< --port (wire; 0 = self-hosted)
  uint32_t server_workers = 0;           ///< --workers (self-hosted server)
  std::string table = "usertable";       ///< --table (wire)
  SloSpec slo;                           ///< --slo
  bool trace = false;                    ///< --trace: sample traced ops
  uint32_t trace_sample = 64;            ///< --trace-sample: 1-in-N ops
  std::string trace_out;                 ///< --trace-out: Chrome JSON file

  /// Parse argv; unknown flags (or --help) print usage and fail.
  /// Flags a specific driver ignores are still accepted, so the whole
  /// suite shares one vocabulary.
  bool Parse(int argc, char** argv, std::string* err) {
    for (int i = 1; i < argc; ++i) {
      std::string flag = argv[i];
      // Fetch the flag's value argument; sets *err when it is absent.
      auto need = [&](const char** out) {
        if (i + 1 >= argc) {
          *err = "missing value for " + flag;
          return false;
        }
        *out = argv[++i];
        return true;
      };
      auto u32 = [](const char* s) {
        return static_cast<uint32_t>(std::strtoul(s, nullptr, 10));
      };
      const char* v = nullptr;
      if (flag == "--rows" || flag == "--scale") {
        if (!need(&v)) return false;
        rows = std::strtoull(v, nullptr, 10);
      } else if (flag == "--threads") {
        if (!need(&v)) return false;
        threads.clear();
        for (const char* p = v; *p != '\0';) {
          threads.push_back(u32(p));
          while (*p != '\0' && *p != ',') ++p;
          if (*p == ',') ++p;
        }
        if (threads.empty()) {
          *err = "--threads needs a comma list";
          return false;
        }
      } else if (flag == "--duration-ms") {
        if (!need(&v)) return false;
        duration_ms = std::strtoull(v, nullptr, 10);
      } else if (flag == "--warmup-ms") {
        if (!need(&v)) return false;
        warmup_ms = std::strtoull(v, nullptr, 10);
      } else if (flag == "--theta") {
        if (!need(&v)) return false;
        theta = std::strtod(v, nullptr);
      } else if (flag == "--dist") {
        if (!need(&v)) return false;
        std::string d = v;
        if (d == "uniform") {
          theta = 0.0;
        } else if (d != "zipfian") {
          *err = "--dist must be zipfian or uniform";
          return false;
        }
      } else if (flag == "--seed") {
        if (!need(&v)) return false;
        seed = std::strtoull(v, nullptr, 10);
      } else if (flag == "--mix") {
        if (!need(&v)) return false;
        if (!mix.Parse(v, err)) return false;
      } else if (flag == "--columns") {
        if (!need(&v)) return false;
        columns = std::max(2u, u32(v));
      } else if (flag == "--scan-rows") {
        if (!need(&v)) return false;
        scan_rows = u32(v);
      } else if (flag == "--batch") {
        if (!need(&v)) return false;
        batch = std::max(1u, u32(v));
      } else if (flag == "--pipeline") {
        if (!need(&v)) return false;
        pipeline = std::max(1u, u32(v));
      } else if (flag == "--pin") {
        if (!need(&v)) return false;
        pin = u32(v) != 0;
      } else if (flag == "--memory") {
        memory = true;
      } else if (flag == "--sync") {
        if (!need(&v)) return false;
        sync = u32(v) != 0;
      } else if (flag == "--mode") {
        if (!need(&v)) return false;
        mode = v;
        if (mode != "inproc" && mode != "wire") {
          *err = "--mode must be inproc or wire";
          return false;
        }
      } else if (flag == "--host") {
        if (!need(&v)) return false;
        host = v;
      } else if (flag == "--port") {
        if (!need(&v)) return false;
        port = static_cast<uint16_t>(u32(v));
      } else if (flag == "--workers") {
        if (!need(&v)) return false;
        server_workers = u32(v);
      } else if (flag == "--table") {
        if (!need(&v)) return false;
        table = v;
      } else if (flag == "--slo") {
        if (!need(&v)) return false;
        if (!slo.Parse(v, err)) return false;
      } else if (flag == "--trace") {
        trace = true;
      } else if (flag == "--trace-sample") {
        if (!need(&v)) return false;
        trace_sample = std::max(1u, u32(v));
      } else if (flag == "--trace-out") {
        if (!need(&v)) return false;
        trace_out = v;
      } else {
        *err = flag == "--help" ? "" : "unknown flag: " + flag;
        return false;
      }
    }
    if (threads.empty()) threads.push_back(EnvMaxThreads());
    return true;
  }

  /// Parse-or-exit wrapper with the shared usage text.
  static BenchArgs ParseOrDie(int argc, char** argv) {
    BenchArgs args;
    std::string err;
    if (!args.Parse(argc, argv, &err)) {
      if (!err.empty()) std::fprintf(stderr, "%s\n", err.c_str());
      std::fprintf(
          stderr,
          "flags: --rows N --threads A,B,C --duration-ms N --warmup-ms N\n"
          "       --mix read=..,insert=..,update=..,delete=..,scan=..,"
          "multiread=..\n"
          "       --theta F (0=uniform) --dist zipfian|uniform --seed N\n"
          "       --columns N --scan-rows N --batch N --pipeline N --pin 0|1\n"
          "       --memory --sync 0|1 --mode inproc|wire --host H --port P\n"
          "       --workers N --table T --slo p99_read_us=..,min_total_ops_s=..\n"
          "       --trace --trace-sample N --trace-out FILE\n");
      std::exit(2);
    }
    return args;
  }
};

}  // namespace bench
}  // namespace lstore

#endif  // LSTORE_BENCH_BENCH_COMMON_H_
