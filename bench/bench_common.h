// Shared helpers for the per-figure/table benchmark drivers.
//
// Every binary prints (a) the machine-independent configuration it
// ran with, (b) rows mirroring the paper's figure/table, and (c) the
// paper's qualitative expectation, so EXPERIMENTS.md can be filled in
// by inspection. Sizes scale with LSTORE_BENCH_SCALE and durations
// with LSTORE_BENCH_MS (see src/bench_harness/workload.h).

#ifndef LSTORE_BENCH_BENCH_COMMON_H_
#define LSTORE_BENCH_BENCH_COMMON_H_

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_harness/engines.h"
#include "bench_harness/runner.h"
#include "bench_harness/workload.h"
#include "obs/metrics.h"

namespace lstore {
namespace bench {

inline void PrintHeader(const char* experiment, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper expectation: %s\n", paper_claim);
  std::printf("scale=%llu rows (low contention), duration=%llu ms/point, "
              "max threads=%u\n",
              static_cast<unsigned long long>(EnvScale()),
              static_cast<unsigned long long>(EnvDurationMs()),
              EnvMaxThreads());
  std::printf("==============================================================\n");
}

/// Thread counts for scalability sweeps, bounded by the env cap.
inline std::vector<uint32_t> ThreadPoints() {
  uint32_t cap = EnvMaxThreads();
  std::vector<uint32_t> pts;
  for (uint32_t t : {1u, 2u, 4u, 8u, 16u, 22u}) {
    if (t <= cap) pts.push_back(t);
  }
  if (pts.empty()) pts.push_back(1);
  return pts;
}

/// Append one metric row (JSON lines) to the file named by the
/// LSTORE_BENCH_JSON env var; no-op when unset. CI's perf-smoke job
/// points it at BENCH_ci.json and uploads the file as an artifact, so
/// the bench trajectory accumulates run over run.
inline void EmitMetric(const char* bench, const std::string& metric,
                       double value, const char* unit) {
  const char* path = std::getenv("LSTORE_BENCH_JSON");
  if (path == nullptr) return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(f,
               "{\"bench\":\"%s\",\"metric\":\"%s\",\"value\":%.3f,"
               "\"unit\":\"%s\",\"scale\":%llu}\n",
               bench, metric.c_str(), value, unit,
               static_cast<unsigned long long>(EnvScale()));
  std::fclose(f);
}

/// Dump an engine-metrics section into the bench JSON: every counter
/// and gauge as one row, and each histogram as count/p50/p95/p99/p999
/// rows. Rows carry `bench` and a `section` label so BENCH_ci.json
/// keeps bench throughput and engine internals side by side.
inline void EmitSnapshot(const char* bench, const char* section,
                         const MetricsSnapshot& snap) {
  const char* path = std::getenv("LSTORE_BENCH_JSON");
  if (path == nullptr) return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  auto row = [&](const std::string& metric, double value, const char* unit) {
    std::fprintf(f,
                 "{\"bench\":\"%s\",\"section\":\"%s\",\"metric\":\"%s\","
                 "\"value\":%.3f,\"unit\":\"%s\",\"scale\":%llu}\n",
                 bench, section, metric.c_str(), value, unit,
                 static_cast<unsigned long long>(EnvScale()));
  };
  for (const auto& c : snap.counters) {
    row(c.name, static_cast<double>(c.value), "count");
  }
  for (const auto& g : snap.gauges) {
    row(g.name, static_cast<double>(g.value), "value");
  }
  for (const auto& h : snap.histograms) {
    if (h.hist.count == 0) continue;
    row(h.name + ".count", static_cast<double>(h.hist.count), "count");
    row(h.name + ".p50", static_cast<double>(h.hist.Percentile(0.5)), "le");
    row(h.name + ".p95", static_cast<double>(h.hist.Percentile(0.95)), "le");
    row(h.name + ".p99", static_cast<double>(h.hist.Percentile(0.99)), "le");
    row(h.name + ".p999", static_cast<double>(h.hist.Percentile(0.999)),
        "le");
  }
  std::fclose(f);
}

/// Monotonic wall clock in milliseconds (durability benchmarks).
inline double WallMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Fresh scratch directory for durability benchmarks (fig_recovery):
/// unique per process; callers remove it when done.
inline std::string ScratchDir(const std::string& name) {
  std::string dir = std::filesystem::temp_directory_path().string() +
                    "/lstore_" + name + "_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Total bytes of files under `dir` whose name ends with `suffix`.
inline uint64_t DirBytes(const std::string& dir, const std::string& suffix) {
  uint64_t total = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    const std::string p = e.path().string();
    if (p.size() >= suffix.size() &&
        p.compare(p.size() - suffix.size(), suffix.size(), suffix) == 0) {
      total += std::filesystem::file_size(e.path());
    }
  }
  return total;
}

/// Build + load an engine for a workload.
inline std::unique_ptr<Engine> LoadedEngine(EngineKind kind,
                                            const WorkloadConfig& cfg) {
  auto engine = MakeEngine(kind, cfg);
  engine->Load(cfg.table_rows);
  return engine;
}

}  // namespace bench
}  // namespace lstore

#endif  // LSTORE_BENCH_BENCH_COMMON_H_
