// Recovery-path benchmark: checkpoint write throughput and restart
// time as a function of the redo-log length.
//
// Section 5.1.3 argues that read-only base pages + append-only tail
// pages make redo-only logging sufficient; the flip side is that
// restart cost is the cost of replaying the log tail beyond the last
// checkpoint. This driver quantifies both halves so future PRs can
// track the recovery path:
//   (a) full-table checkpoint throughput (rows/s, bytes written),
//   (b) Database::Open latency vs number of redo records to replay,
//       with and without a preceding checkpoint + log truncation.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/database.h"
#include "core/query.h"

namespace lstore {
namespace bench {
namespace {

constexpr uint32_t kColumns = 5;  // key + 4 data columns

std::unique_ptr<Database> OpenDb(const std::string& dir) {
  std::unique_ptr<Database> db;
  Must(Database::Open(dir, &db), "open database");
  return db;
}

void Load(Database* db, Table* t, uint64_t rows) {
  for (uint64_t k = 0; k < rows;) {
    Txn txn = db->Begin();
    for (uint64_t i = 0; i < 1000 && k < rows; ++i, ++k) {
      std::vector<Value> row(kColumns, k);
      (void)t->Insert(txn, row);
    }
    (void)txn.Commit();
  }
}

void Update(Database* db, Table* t, uint64_t count, uint64_t rows,
            uint64_t seed) {
  Random rng(seed);
  for (uint64_t done = 0; done < count;) {
    Txn txn = db->Begin();
    for (uint64_t i = 0; i < 100 && done < count; ++i, ++done) {
      std::vector<Value> row(kColumns, 0);
      row[1] = done;
      (void)t->Update(txn, rng.Uniform(rows), 0b00010, row);
    }
    (void)txn.Commit();
  }
}

void Run(const BenchArgs& args) {
  PrintHeader(
      "fig_recovery: checkpoint throughput + restart time vs log length",
      "restart cost grows with the redo-log tail; checkpoint + "
      "truncation bounds it at a sequential write");

  const uint64_t rows = std::min<uint64_t>(args.rows, 200000);
  const std::string dir = ScratchDir("fig_recovery");

  // --- (a) checkpoint write throughput --------------------------------
  {
    auto db = OpenDb(dir);
    TableConfig cfg;
    (void)db->CreateTable("t", Schema(kColumns), cfg);
    Table* t = db->GetTable("t");
    Load(db.get(), t, rows);
    t->FlushAll();
    double t0 = WallMs();
    Status s = db->Checkpoint();
    double ckpt_ms = WallMs() - t0;
    uint64_t ckpt_bytes = DirBytes(dir, ".ckpt");
    std::printf("checkpoint_write | rows=%llu ok=%d ms=%.1f rows_per_s=%.0f "
                "bytes=%llu\n",
                (unsigned long long)rows, s.ok() ? 1 : 0, ckpt_ms,
                ckpt_ms > 0 ? rows / (ckpt_ms / 1000.0) : 0.0,
                (unsigned long long)ckpt_bytes);
    EmitMetric("fig_recovery", "checkpoint_rows_s",
               ckpt_ms > 0 ? rows / (ckpt_ms / 1000.0) : 0.0, "rows/s");
  }

  // --- (b) restart time vs redo-log length ----------------------------
  std::printf("restart         | %12s %12s %10s %12s\n", "log_records",
              "log_bytes", "open_ms", "rows_per_s");
  for (uint64_t updates : {uint64_t{0}, rows / 4, rows, rows * 4}) {
    {
      auto db = OpenDb(dir);
      Table* t = db->GetTable("t");
      // Reset the log to (near) empty, then grow exactly the tail we
      // want to measure.
      (void)db->Checkpoint();
      Update(db.get(), t, updates, rows, args.seed);
      // Crash: drop all in-memory state with the log un-truncated.
    }
    uint64_t log_bytes = DirBytes(dir, ".log");
    double t0 = WallMs();
    auto db = OpenDb(dir);
    double open_ms = WallMs() - t0;
    std::printf("restart         | %12llu %12llu %10.1f %12.0f\n",
                (unsigned long long)updates, (unsigned long long)log_bytes,
                open_ms, open_ms > 0 ? rows / (open_ms / 1000.0) : 0.0);
    EmitMetric("fig_recovery",
               "restart_ms_u" + std::to_string(updates), open_ms, "ms");
  }

  // --- (c) group commit: cross-table commit cost ----------------------
  // One commit-log fsync (plus one fsync per touched table log) is the
  // durability point of a cross-table transaction; concurrent
  // committers share those fsyncs through the group-commit queue, so
  // fsyncs-per-commit should FALL as committers are added.
  std::printf("group_commit    | %8s %12s %14s\n", "threads", "commits_s",
              "fsyncs_per_txn");
  for (uint32_t threads : {1u, 4u}) {
    std::filesystem::remove_all(dir);
    DurabilityOptions opts;
    opts.sync_commit = true;
    opts.group_commit_window_us = 200;
    std::unique_ptr<Database> db;
    Must(Database::Open(dir, opts, &db), "open database (group commit)");
    (void)db->CreateTable("x", Schema(kColumns), TableConfig{});
    (void)db->CreateTable("y", Schema(kColumns), TableConfig{});
    const uint64_t per_thread =
        std::max<uint64_t>(std::min<uint64_t>(rows / 50, 500), 50);
    // Fsyncs come from the engine's own registry now (redo + commit
    // log), not an injected test counter.
    auto total_fsyncs = [&db] {
      MetricsSnapshot snap = db->Metrics();
      return snap.CounterValue("lstore_redo_fsyncs_total") +
             snap.CounterValue("lstore_commit_log_fsyncs_total");
    };
    uint64_t fsyncs_before = total_fsyncs();
    double t0 = WallMs();
    std::vector<std::thread> workers;
    for (uint32_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        Table* x = db->GetTable("x");
        Table* y = db->GetTable("y");
        for (uint64_t i = 0; i < per_thread; ++i) {
          Value k = t * per_thread + i;
          Txn txn = db->Begin();
          std::vector<Value> row(kColumns, k);
          (void)x->Insert(txn, row);
          (void)y->Insert(txn, row);
          (void)txn.Commit();
        }
      });
    }
    for (auto& w : workers) w.join();
    double secs = (WallMs() - t0) / 1000.0;
    uint64_t commits = threads * per_thread;
    double per_txn =
        static_cast<double>(total_fsyncs() - fsyncs_before) / commits;
    std::printf("group_commit    | %8u %12.0f %14.2f\n", threads,
                commits / secs, per_txn);
    EmitMetric("fig_recovery",
               "group_commit_txn_s_t" + std::to_string(threads),
               commits / secs, "txns/s");
    EmitMetric("fig_recovery",
               "group_commit_fsyncs_per_txn_t" + std::to_string(threads),
               per_txn, "fsyncs");
  }

  // --- (d) buffer-managed base storage: table >> pool budget ----------
  // A demand-paged table whose base footprint is several times the
  // pool budget must keep serving exact scans and point reads — just
  // with misses and evictions instead of residency. Budget 0 (no
  // pool) is the resident baseline.
  std::printf("buffer_pool     | %10s %12s %10s %10s %10s %10s %8s\n",
              "budget", "resident_B", "hits", "misses", "evicts",
              "scan_ms", "sum_ok");
  {
    uint64_t footprint = 0;
    uint64_t expect_sum = 0;
    for (uint64_t k = 0; k < rows; ++k) expect_sum += k;
    for (int phase = 0; phase < 3; ++phase) {
      std::filesystem::remove_all(dir);
      DurabilityOptions opts;
      // phase 0: unlimited-ish (resident; measures the footprint);
      // phase 1: budget = footprint / 4 (the paging case);
      // phase 2: budget = 0 (no pool at all — the old behavior).
      opts.buffer_pool_bytes =
          phase == 0 ? (1ull << 40) : (phase == 1 ? footprint / 4 : 0);
      std::unique_ptr<Database> db;
      Must(Database::Open(dir, opts, &db), "open database (buffer pool)");
      (void)db->CreateTable("t", Schema(kColumns), TableConfig{});
      Table* t = db->GetTable("t");
      Load(db.get(), t, rows);
      t->FlushAll();
      if (phase == 0) footprint = db->buffer_stats().bytes_resident;

      BufferPoolStats before = db->buffer_stats();
      double t0 = WallMs();
      uint64_t sum = 0, nrows = 0;
      bool ok = true;
      for (int rep = 0; rep < 3; ++rep) {
        ok = ok && t->NewQuery().Sum(1, &sum, &nrows).ok() &&
             sum == expect_sum && nrows == rows;
      }
      // Point reads across the key space fault in individual ranges.
      Txn txn = db->Begin();
      for (uint64_t k = 0; k < rows; k += rows / 100 + 1) {
        std::vector<Value> row;
        ok = ok && t->Read(txn, k, 0b10, &row).ok() && row[1] == k;
      }
      (void)txn.Commit();
      double ms = WallMs() - t0;
      BufferPoolStats after = db->buffer_stats();

      std::printf("buffer_pool     | %10llu %12llu %10llu %10llu %10llu "
                  "%10.1f %8d\n",
                  (unsigned long long)opts.buffer_pool_bytes,
                  (unsigned long long)after.bytes_resident,
                  (unsigned long long)(after.hits - before.hits),
                  (unsigned long long)(after.misses - before.misses),
                  (unsigned long long)(after.evictions - before.evictions),
                  ms, ok ? 1 : 0);
      if (!ok) {
        std::fprintf(stderr, "buffer_pool phase %d: WRONG RESULTS\n", phase);
        std::exit(1);
      }
      const char* tag =
          phase == 0 ? "resident" : (phase == 1 ? "paged4x" : "nopool");
      uint64_t hits = after.hits - before.hits;
      uint64_t misses = after.misses - before.misses;
      EmitMetric("fig_recovery", std::string("buffer_scan_ms_") + tag, ms,
                 "ms");
      if (hits + misses > 0) {
        EmitMetric("fig_recovery", std::string("buffer_hit_rate_") + tag,
                   100.0 * hits / (hits + misses), "%");
      }
      EmitMetric("fig_recovery", std::string("buffer_evictions_") + tag,
                 static_cast<double>(after.evictions - before.evictions),
                 "evictions");
    }
  }

  // --- (e) point-in-time recovery: restore time vs archive length -----
  // With archiving on, every checkpoint seals the truncated log prefix
  // instead of deleting it. Restore cost then has two regimes: a point
  // near the newest checkpoint replays a short stitched tail, while an
  // old point walks back to an older archived checkpoint and replays
  // a longer stretch of sealed segments.
  std::printf("pitr            | %10s %12s %12s %10s\n", "point", "cycles",
              "arc_bytes", "restore_ms");
  {
    std::filesystem::remove_all(dir);
    DurabilityOptions opts;
    opts.archive_enabled = true;
    std::unique_ptr<Database> db;
    Must(Database::Open(dir, opts, &db), "open database (archive)");
    (void)db->CreateTable("t", Schema(kColumns), TableConfig{});
    Table* t = db->GetTable("t");
    const uint64_t arc_rows = std::min<uint64_t>(rows, 50000);
    Load(db.get(), t, arc_rows);
    // Several checkpoint/truncation cycles, recording a restore point
    // per cycle (oldest = longest stitched replay).
    constexpr int kCycles = 4;
    std::vector<Timestamp> points;
    for (int c = 0; c < kCycles; ++c) {
      Update(db.get(), t, arc_rows / 4, arc_rows, args.seed + c);
      points.push_back(db->Now() - 1);
      (void)db->Checkpoint();
    }
    db.reset();
    uint64_t arc_bytes = DirBytes(dir + "/archive", "");
    struct Probe {
      const char* tag;
      Timestamp at;
    } probes[] = {{"oldest", points.front()}, {"newest", points.back()}};
    for (const Probe& p : probes) {
      double t0 = WallMs();
      std::unique_ptr<Database> rdb;
      Status rs = Database::RestoreToPoint(dir, RestorePoint::AtTime(p.at),
                                           &rdb);
      double ms = WallMs() - t0;
      if (!rs.ok()) {
        std::fprintf(stderr, "pitr restore failed: %s\n",
                     rs.ToString().c_str());
        std::exit(1);
      }
      std::printf("pitr            | %10s %12d %12llu %10.1f\n", p.tag,
                  kCycles, (unsigned long long)arc_bytes, ms);
      EmitMetric("fig_recovery", std::string("pitr_restore_ms_") + p.tag, ms,
                 "ms");
    }
    EmitMetric("fig_recovery", "pitr_archive_bytes",
               static_cast<double>(arc_bytes), "bytes");
  }

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bench
}  // namespace lstore

int main(int argc, char** argv) {
  // Shared flag vocabulary (--rows/--seed); defaults preserve the
  // historical env-knob sizing for flag-less runs.
  lstore::bench::Run(lstore::bench::BenchArgs::ParseOrDie(argc, argv));
  return 0;
}
