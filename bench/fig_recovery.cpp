// Recovery-path benchmark: checkpoint write throughput and restart
// time as a function of the redo-log length.
//
// Section 5.1.3 argues that read-only base pages + append-only tail
// pages make redo-only logging sufficient; the flip side is that
// restart cost is the cost of replaying the log tail beyond the last
// checkpoint. This driver quantifies both halves so future PRs can
// track the recovery path:
//   (a) full-table checkpoint throughput (rows/s, bytes written),
//   (b) Database::Open latency vs number of redo records to replay,
//       with and without a preceding checkpoint + log truncation.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/database.h"

namespace lstore {
namespace bench {
namespace {

constexpr uint32_t kColumns = 5;  // key + 4 data columns

std::unique_ptr<Database> OpenDb(const std::string& dir) {
  std::unique_ptr<Database> db;
  Status s = Database::Open(dir, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  return db;
}

void Load(Database* db, Table* t, uint64_t rows) {
  for (uint64_t k = 0; k < rows;) {
    Txn txn = db->Begin();
    for (uint64_t i = 0; i < 1000 && k < rows; ++i, ++k) {
      std::vector<Value> row(kColumns, k);
      (void)t->Insert(txn, row);
    }
    (void)txn.Commit();
  }
}

void Update(Database* db, Table* t, uint64_t count, uint64_t rows) {
  Random rng(42);
  for (uint64_t done = 0; done < count;) {
    Txn txn = db->Begin();
    for (uint64_t i = 0; i < 100 && done < count; ++i, ++done) {
      std::vector<Value> row(kColumns, 0);
      row[1] = done;
      (void)t->Update(txn, rng.Uniform(rows), 0b00010, row);
    }
    (void)txn.Commit();
  }
}

void Run() {
  PrintHeader(
      "fig_recovery: checkpoint throughput + restart time vs log length",
      "restart cost grows with the redo-log tail; checkpoint + "
      "truncation bounds it at a sequential write");

  const uint64_t rows = std::min<uint64_t>(EnvScale(), 200000);
  const std::string dir = ScratchDir("fig_recovery");

  // --- (a) checkpoint write throughput --------------------------------
  {
    auto db = OpenDb(dir);
    TableConfig cfg;
    (void)db->CreateTable("t", Schema(kColumns), cfg);
    Table* t = db->GetTable("t");
    Load(db.get(), t, rows);
    t->FlushAll();
    double t0 = WallMs();
    Status s = db->Checkpoint();
    double ckpt_ms = WallMs() - t0;
    uint64_t ckpt_bytes = DirBytes(dir, ".ckpt");
    std::printf("checkpoint_write | rows=%llu ok=%d ms=%.1f rows_per_s=%.0f "
                "bytes=%llu\n",
                (unsigned long long)rows, s.ok() ? 1 : 0, ckpt_ms,
                ckpt_ms > 0 ? rows / (ckpt_ms / 1000.0) : 0.0,
                (unsigned long long)ckpt_bytes);
  }

  // --- (b) restart time vs redo-log length ----------------------------
  std::printf("restart         | %12s %12s %10s %12s\n", "log_records",
              "log_bytes", "open_ms", "rows_per_s");
  for (uint64_t updates : {uint64_t{0}, rows / 4, rows, rows * 4}) {
    {
      auto db = OpenDb(dir);
      Table* t = db->GetTable("t");
      // Reset the log to (near) empty, then grow exactly the tail we
      // want to measure.
      (void)db->Checkpoint();
      Update(db.get(), t, updates, rows);
      // Crash: drop all in-memory state with the log un-truncated.
    }
    uint64_t log_bytes = DirBytes(dir, ".log");
    double t0 = WallMs();
    auto db = OpenDb(dir);
    double open_ms = WallMs() - t0;
    std::printf("restart         | %12llu %12llu %10.1f %12.0f\n",
                (unsigned long long)updates, (unsigned long long)log_bytes,
                open_ms, open_ms > 0 ? rows / (open_ms / 1000.0) : 0.0);
  }

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bench
}  // namespace lstore

int main() {
  lstore::bench::Run();
  return 0;
}
