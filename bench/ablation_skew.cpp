// Ablation: workload skew. The paper's contention regimes come from
// shrinking a uniform active set; an alternative knob is Zipfian skew
// over the full table. Both concentrate writes; this bench shows that
// L-Store's advantage over the baselines persists (and grows) as skew
// rises, for the same reason as Figure 7(c): the baselines serialize
// on hot pages / frequent drains, while L-Store appends.

#include "bench_common.h"
#include "common/random.h"

using namespace lstore::bench;
using lstore::ZipfianGenerator;

namespace {

// Skewed variant of the short update transaction driver.
double RunSkewed(Engine& engine, const WorkloadConfig& cfg, double theta,
                 uint32_t threads, uint64_t duration_ms) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      lstore::Random rng(11 + t);
      ZipfianGenerator zipf(cfg.active_set, theta, 101 + t);
      WorkloadConfig local = cfg;
      while (!stop.load(std::memory_order_relaxed)) {
        // Route key choice through the Zipfian generator by mapping a
        // uniform workload onto a skewed one: use a one-key active set
        // positioned at the Zipf draw. (Engine::UpdateTxn draws
        // uniformly in [0, active_set); with active_set=1 the offset
        // is the drawn key.)
        (void)rng;
        local.active_set = cfg.active_set;
        if (engine.UpdateTxn(rng, local)) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
        // Note: the uniform driver already exercises contention; the
        // Zipf draw below biases an extra hot-key transaction.
        uint64_t hot = zipf.Next();
        WorkloadConfig hot_cfg = cfg;
        hot_cfg.active_set = hot + 1;  // keys [0, hot]: skew toward head
        if (engine.UpdateTxn(rng, hot_cfg)) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  for (auto& th : workers) th.join();
  double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start)
                    .count();
  return committed.load() / secs;
}

}  // namespace

int main() {
  PrintHeader("Ablation: Zipfian write skew",
              "L-Store's lead over IUH/DBM persists or grows with skew "
              "(append-only updates vs page latches / drains)");

  WorkloadConfig cfg;
  cfg.contention = Contention::kMedium;
  cfg.Finalize();
  uint32_t threads = std::min(4u, EnvMaxThreads());
  const double thetas[] = {0.5, 0.9, 0.99};

  std::printf("\n%-28s", "engine \\ zipf theta");
  for (double th : thetas) std::printf(" %9.2f", th);
  std::printf("   (K txns/s)\n");
  const EngineKind kinds[] = {EngineKind::kLStore, EngineKind::kIuh,
                              EngineKind::kDbm};
  for (EngineKind k : kinds) {
    auto engine = LoadedEngine(k, cfg);
    std::printf("%-28s", EngineName(k).c_str());
    for (double th : thetas) {
      double tps = RunSkewed(*engine, cfg, th, threads, cfg.duration_ms);
      std::printf(" %9.1f", tps / 1000.0);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
