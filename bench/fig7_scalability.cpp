// Figure 7: transaction throughput vs. number of parallel short update
// transactions, under low (a), medium (b), and high (c) contention.
// Engines: L-Store, In-place Update + History, Delta + Blocking Merge.
// One scan thread and the engines' merge threads run throughout
// (Section 6.1).

#include "bench_common.h"

using namespace lstore::bench;

int main() {
  PrintHeader(
      "Figure 7: scalability under varying contention",
      "low: L-Store ~ IUH scale, DBM flat; medium: L-Store up to 5.09x IUH, "
      "8.54x DBM; high: up to 40.56x IUH, 14.51x DBM");

  const Contention levels[] = {Contention::kLow, Contention::kMedium,
                               Contention::kHigh};
  const EngineKind kinds[] = {EngineKind::kLStore, EngineKind::kIuh,
                              EngineKind::kDbm};
  auto threads = ThreadPoints();

  for (Contention c : levels) {
    WorkloadConfig cfg;
    cfg.contention = c;
    cfg.Finalize();
    std::printf("\n--- Fig 7(%c): %s contention (active set %llu of %llu "
                "rows) ---\n",
                c == Contention::kLow ? 'a'
                : c == Contention::kMedium ? 'b' : 'c',
                ContentionName(c).c_str(),
                static_cast<unsigned long long>(cfg.active_set),
                static_cast<unsigned long long>(cfg.table_rows));
    std::printf("%-28s", "engine \\ update threads");
    for (uint32_t t : threads) std::printf(" %10u", t);
    std::printf("   (K txns/s)\n");

    for (EngineKind k : kinds) {
      auto engine = LoadedEngine(k, cfg);
      std::printf("%-28s", EngineName(k).c_str());
      for (uint32_t t : threads) {
        RunResult res = RunMixed(*engine, cfg, t, /*scan_threads=*/1);
        std::printf(" %10.1f", res.update_txns_per_sec / 1000.0);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
