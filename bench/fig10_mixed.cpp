// Figure 10: mixed OLTP + OLAP — a fixed population of concurrent
// transactions (paper: 17) split between short update transactions and
// long read-only transactions (scans over ~10% of the table), low
// (a,b) and medium (c,d) contention. Reports both update throughput
// (a,c) and read-only throughput (b,d).
//
// Paper: L-Store beats IUH/DBM by up to 5.37x/7.91x on updates and
// DBM by up to 1.97x/2.37x on long reads; its contention-free merge
// is what keeps OLAP from stalling OLTP.

#include "bench_common.h"

using namespace lstore::bench;

int main() {
  PrintHeader("Figure 10: short updates vs long read-only transactions",
              "L-Store leads on both sides of the mix; DBM loses on reads "
              "(blocking merges), IUH on updates (page latches)");

  const Contention levels[] = {Contention::kLow, Contention::kMedium};
  const EngineKind kinds[] = {EngineKind::kLStore, EngineKind::kIuh,
                              EngineKind::kDbm};
  uint32_t cap = EnvMaxThreads();
  // Total concurrent txns scaled to the machine (paper used 17).
  uint32_t total = cap >= 17 ? 17 : (cap < 2 ? 2 : cap);
  std::vector<uint32_t> scan_counts;
  for (uint32_t s : {1u, total / 4, total / 2, 3 * total / 4, total - 1}) {
    if (s >= 1 && s < total &&
        (scan_counts.empty() || s > scan_counts.back())) {
      scan_counts.push_back(s);
    }
  }

  for (Contention c : levels) {
    WorkloadConfig cfg;
    cfg.contention = c;
    cfg.Finalize();
    std::printf("\n--- Fig 10 (%s contention, %u concurrent txns) ---\n",
                ContentionName(c).c_str(), total);
    std::printf("%-28s %12s %14s %14s\n", "engine", "readers",
                "upd K txns/s", "reads/s");
    for (EngineKind k : kinds) {
      auto engine = LoadedEngine(k, cfg);
      for (uint32_t scans : scan_counts) {
        uint32_t updaters = total - scans;
        RunResult res = RunMixed(*engine, cfg, updaters, scans);
        std::printf("%-28s %12u %14.1f %14.1f\n", EngineName(k).c_str(),
                    scans, res.update_txns_per_sec / 1000.0,
                    res.read_txns_per_sec);
        std::fflush(stdout);
      }
    }
  }
  return 0;
}
