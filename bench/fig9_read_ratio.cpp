// Figure 9: transaction throughput vs. percentage of reads in short
// update transactions (0% .. 100%), 16 update threads, low (a) and
// medium (b) contention.
//
// Paper: all engines improve as reads grow (contention is a function
// of writes); L-Store leads by up to 1.45x/5.78x (low) and
// 4.19x/6.34x (medium) over IUH/DBM; the gap is smallest at 100%
// reads.

#include "bench_common.h"

using namespace lstore::bench;

int main() {
  PrintHeader("Figure 9: impact of the read/write ratio",
              "throughput rises with read share; L-Store leads, gap narrows "
              "at 100% reads");

  const Contention levels[] = {Contention::kLow, Contention::kMedium};
  const EngineKind kinds[] = {EngineKind::kLStore, EngineKind::kIuh,
                              EngineKind::kDbm};
  const uint32_t read_pcts[] = {0, 20, 40, 60, 80, 100};
  uint32_t threads = std::min(16u, EnvMaxThreads());

  for (Contention c : levels) {
    WorkloadConfig base;
    base.contention = c;
    base.Finalize();
    std::printf("\n--- Fig 9(%c): %s contention, %u update threads ---\n",
                c == Contention::kLow ? 'a' : 'b',
                ContentionName(c).c_str(), threads);
    std::printf("%-28s", "engine \\ read %");
    for (uint32_t p : read_pcts) std::printf(" %9u", p);
    std::printf("   (K txns/s)\n");

    for (EngineKind k : kinds) {
      auto engine = LoadedEngine(k, base);
      std::printf("%-28s", EngineName(k).c_str());
      for (uint32_t pct : read_pcts) {
        WorkloadConfig cfg = base;
        // 10 statements per txn, `pct` percent of them reads.
        cfg.reads_per_txn = pct / 10;
        cfg.writes_per_txn = 10 - cfg.reads_per_txn;
        RunResult res = RunMixed(*engine, cfg, threads, /*scan_threads=*/1);
        std::printf(" %9.1f", res.update_txns_per_sec / 1000.0);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
