// Ablation (Section 3.1): cumulative vs non-cumulative updates.
// "Cumulative update is an optimization that is intended to improve
// the read performance" at the cost of copying carried columns on
// writes. We update two columns of hot records repeatedly, then
// measure point reads of both columns (which must walk further in the
// non-cumulative chain) and the update throughput.

#include "bench_common.h"
#include "core/table.h"

using namespace lstore::bench;
using namespace lstore;

namespace {

double MeasureReads(Table& table, uint64_t rows, int iters) {
  std::vector<Value> out;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    Txn txn = table.Begin();
    (void)table.Read(txn, i % rows, 0b0110, &out);
    (void)txn.Commit();
  }
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count() / iters;
}

}  // namespace

int main() {
  PrintHeader("Ablation: cumulative vs non-cumulative updates (Section 3.1)",
              "cumulation trades write-side copying for shorter read chains; "
              "reads win, writes pay slightly");

  constexpr uint64_t kRows = 512;
  constexpr int kUpdateRounds = 40;

  std::printf("\n%-18s %18s %20s %14s\n", "mode", "read latency (us)",
              "updates/s (1 thread)", "chain hops");
  for (bool cumulative : {true, false}) {
    TableConfig tc;
    tc.range_size = 1u << 12;
    tc.merge_threshold = 1u << 30;  // no merges: isolate chain effects
    tc.enable_merge_thread = false;
    tc.cumulative_updates = cumulative;
    Table table("abl", Schema(11), tc);
    {
      Txn txn = table.Begin();
      std::vector<Value> row(11, 1);
      for (Value k = 0; k < kRows; ++k) {
        row[0] = k;
        (void)table.Insert(txn, row);
      }
      (void)txn.Commit();
    }
    // Alternate updates of columns 1 and 2 so the latest version of
    // each column lands in different tail records without cumulation.
    auto t0 = std::chrono::steady_clock::now();
    uint64_t updates = 0;
    for (int round = 0; round < kUpdateRounds; ++round) {
      for (Value k = 0; k < kRows; ++k) {
        Txn txn = table.Begin();
        std::vector<Value> row(11, 0);
        ColumnMask mask = (round % 2 == 0) ? 0b0010 : 0b0100;
        row[1] = row[2] = round;
        if (table.Update(txn, k, mask, row).ok()) {
          (void)txn.Commit();
          ++updates;
        } else {
          txn.Abort();
        }
      }
    }
    auto t1 = std::chrono::steady_clock::now();
    double upd_per_s =
        updates / std::chrono::duration<double>(t1 - t0).count();

    uint64_t hops_before = table.stats().tail_chain_hops.load();
    double read_us = MeasureReads(table, kRows, 2000);
    uint64_t hops = table.stats().tail_chain_hops.load() - hops_before;

    std::printf("%-18s %18.2f %20.0f %14.2f\n",
                cumulative ? "cumulative" : "non-cumulative", read_us,
                upd_per_s, hops / 2000.0);
    std::fflush(stdout);
  }
  return 0;
}
