#!/usr/bin/env python3
"""Validate a structured engine event log (<dir>/events.log).

Used by CI after the metrics_tour example runs:

    tools/check_events_json.py "${TMPDIR:-/tmp}/lstore_metrics_tour/events.log"

With no path argument, reads the log from stdin.

Each line must be one flat JSON object with the documented schema
(src/obs/event_log.h):

  - ts_ms: non-negative integer (wall-clock milliseconds)
  - severity: one of "info" | "warn" | "error"
  - actor: non-empty string (emitting subsystem)
  - kind: non-empty string (event kind)
  - any extra keys are emitter fields (free-form, but must be valid JSON
    by virtue of the line parsing)

Exits 0 with a summary on success, 1 with the offending line otherwise.
"""

import json
import sys

SEVERITIES = ("info", "warn", "error")


def fail(lineno, line, why):
    print(f"check_events_json: line {lineno}: {why}: {line!r}",
          file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) > 2:
        print(f"usage: {sys.argv[0]} [events.log]", file=sys.stderr)
        sys.exit(2)
    if len(sys.argv) == 2:
        try:
            stream = open(sys.argv[1], "r", encoding="utf-8")
        except OSError as e:
            print(f"check_events_json: {e}", file=sys.stderr)
            sys.exit(1)
    else:
        stream = sys.stdin

    events = 0
    kinds = {}
    last_ts = None
    for lineno, raw in enumerate(stream, 1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except ValueError:
            fail(lineno, line, "not valid JSON")
        if not isinstance(obj, dict):
            fail(lineno, line, "not a JSON object")
        ts = obj.get("ts_ms")
        if not isinstance(ts, int) or isinstance(ts, bool) or ts < 0:
            fail(lineno, line, "ts_ms must be a non-negative integer")
        sev = obj.get("severity")
        if sev not in SEVERITIES:
            fail(lineno, line, f"severity must be one of {SEVERITIES}")
        for key in ("actor", "kind"):
            v = obj.get(key)
            if not isinstance(v, str) or not v:
                fail(lineno, line, f"{key} must be a non-empty string")
        # Append-only log: timestamps never run backwards by more than
        # clock-adjustment noise (allow 1s of slop for NTP steps).
        if last_ts is not None and ts + 1000 < last_ts:
            fail(lineno, line, "ts_ms runs backwards")
        last_ts = ts
        kinds[obj["kind"]] = kinds.get(obj["kind"], 0) + 1
        events += 1

    if events == 0:
        print("check_events_json: no events", file=sys.stderr)
        sys.exit(1)
    summary = ", ".join(f"{k}={n}" for k, n in sorted(kinds.items()))
    print(f"check_events_json: OK ({events} events: {summary})")


if __name__ == "__main__":
    main()
