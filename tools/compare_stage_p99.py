#!/usr/bin/env python3
"""Diff per-stage p99 breakdowns between two bench JSON-lines files.

Used by CI's perf-smoke job (report-only — ALWAYS exits 0; shared
runners are too noisy to gate on percent-level stage drift):

    tools/compare_stage_p99.py bench/baselines/BENCH_baseline.json BENCH_ci.json

Both inputs are LSTORE_BENCH_JSON files: one JSON object per line, the
stage rows shaped

    {"bench":"workload","metric":"<mode>.t<N>.p99_by_stage.<stage>",
     "value":<us>,"unit":"us","scale":<rows>}

Non-metric lines (e.g. the commit/run header) are skipped. When a
metric appears several times in one file (multiple runs appending),
the LAST value wins — it reflects the newest run.

Output: one table per comparison key, baseline vs current with
absolute and relative deltas, plus the keys present on only one side.
"""

import json
import sys

MARKER = ".p99_by_stage."


def load_stage_rows(path):
    rows = {}
    try:
        f = open(path, "r", encoding="utf-8")
    except OSError as e:
        print(f"compare_stage_p99: cannot read {path}: {e}")
        return rows
    with f:
        for raw in f:
            line = raw.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError:
                continue  # tolerate partial/foreign lines
            metric = obj.get("metric")
            value = obj.get("value")
            if (isinstance(metric, str) and MARKER in metric
                    and isinstance(value, (int, float))):
                rows[metric] = float(value)  # last write wins
    return rows


def main():
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} <baseline.json> <current.json>")
        return  # report-only: even usage errors do not fail the job
    base_path, cur_path = sys.argv[1], sys.argv[2]
    base = load_stage_rows(base_path)
    cur = load_stage_rows(cur_path)

    if not base and not cur:
        print("compare_stage_p99: no p99_by_stage rows in either file "
              "(built with LSTORE_TRACING=OFF, or no traced run)")
        return

    common = sorted(set(base) & set(cur))
    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))

    if common:
        print(f"p99_by_stage: {base_path} -> {cur_path}")
        width = max(len(k) for k in common)
        print(f"  {'stage':<{width}} {'baseline':>12} {'current':>12} "
              f"{'delta':>10} {'pct':>8}")
        for key in common:
            b, c = base[key], cur[key]
            delta = c - b
            pct = f"{100.0 * delta / b:+.1f}%" if b > 0 else "n/a"
            flag = ""
            if b > 0 and abs(delta) / b >= 0.25:
                flag = "  <-- drifted"  # eyeball marker, not a gate
            print(f"  {key:<{width}} {b:>10.1f}us {c:>10.1f}us "
                  f"{delta:>+8.1f}us {pct:>8}{flag}")
    else:
        print("p99_by_stage: no stage keys in common")

    for name, keys, path in (("baseline-only", only_base, base_path),
                             ("current-only", only_cur, cur_path)):
        if keys:
            print(f"  {name} ({path}):")
            for key in keys:
                src = base if name == "baseline-only" else cur
                print(f"    {key} = {src[key]:.1f}us")

    # Report-only by design: the perf-smoke SLO gate owns pass/fail.


if __name__ == "__main__":
    main()
