#!/usr/bin/env python3
"""Compare two BENCH json-lines files from the same bench binary built
with tracing ON vs OFF, and gate on the throughput overhead.

Used by CI's perf-smoke A/B:

  compare_trace_overhead.py AB_traced.json AB_untraced.json [--max-pct 15]

Every metric present in both files (unit ops/s, higher is better) is
compared. Single metrics jitter +/-20% run-to-run on shared runners
(negative "overheads" appear regularly), so the gate is the MEDIAN
slowdown across all metrics — per-metric noise cancels while a real
across-the-board tracing cost does not. The flight recorder is
designed to cost under 2% — that is the number to eyeball on quiet
hardware — while the default gate (15%) only fails a collapse, the
same order-of-magnitude philosophy as the workload SLO bounds.
"""

import argparse
import json
import statistics
import sys


def load(path):
    metrics = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            d = json.loads(line)
            if "metric" in d and d.get("unit") == "ops/s":
                metrics[d["metric"]] = float(d["value"])
    return metrics


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("traced")
    ap.add_argument("untraced")
    ap.add_argument("--max-pct", type=float, default=15.0)
    opts = ap.parse_args()

    traced, untraced = load(opts.traced), load(opts.untraced)
    shared = sorted(set(traced) & set(untraced))
    if not shared:
        print("compare_trace_overhead: no shared ops/s metrics",
              file=sys.stderr)
        sys.exit(1)

    overheads = []
    for k in shared:
        if traced[k] <= 0 or untraced[k] <= 0:
            continue
        pct = (untraced[k] - traced[k]) / untraced[k] * 100.0
        overheads.append(pct)
        print(f"{k:28s} traced={traced[k]:14.0f} untraced={untraced[k]:14.0f}"
              f" overhead={pct:+7.2f}%")
    med = statistics.median(overheads)
    print(f"median overhead: {med:+.2f}%  worst: {max(overheads):+.2f}% "
          f"(design target <2% on quiet hardware; gate median "
          f"{opts.max_pct:.0f}%)")
    if med >= opts.max_pct:
        print(f"compare_trace_overhead: median {med:.2f}% exceeds the "
              f"{opts.max_pct:.0f}% gate", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
