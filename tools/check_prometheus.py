#!/usr/bin/env python3
"""Validate Prometheus text exposition format (version 0.0.4) on stdin.

Used by CI: ./build/examples/metrics_tour | tools/check_prometheus.py

Checks, per line:
  - comments are well-formed `# HELP <name> ...` / `# TYPE <name> <type>`
  - samples are `name[{labels}] value` with a legal metric name and a
    finite numeric value
  - every TYPE declaration precedes its samples, and no name is typed
    twice
Exits 0 with a summary on success, 1 with the offending line otherwise.
"""

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABELS_RE = re.compile(
    r"^\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\}$"
)
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
# summary/histogram samples may carry these suffixes on the base name
SUFFIXES = ("_sum", "_count", "_bucket")


def fail(lineno, line, why):
    print(f"check_prometheus: line {lineno}: {why}: {line!r}", file=sys.stderr)
    sys.exit(1)


def main():
    typed = {}  # name -> type
    samples = 0
    for lineno, raw in enumerate(sys.stdin, 1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # free-form comment is legal
            name = parts[2]
            if not NAME_RE.match(name):
                fail(lineno, line, "bad metric name in comment")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in TYPES:
                    fail(lineno, line, "bad TYPE")
                if name in typed:
                    fail(lineno, line, "duplicate TYPE declaration")
                typed[name] = parts[3]
            continue
        # sample: name[{labels}] value [timestamp]
        m = re.match(r"^(\S+?)(\{.*\})?\s+(\S+)(\s+\S+)?$", line)
        if not m:
            fail(lineno, line, "not a sample line")
        name, labels, value = m.group(1), m.group(2), m.group(3)
        if not NAME_RE.match(name):
            fail(lineno, line, "bad metric name")
        if labels and not LABELS_RE.match(labels):
            fail(lineno, line, "bad label syntax")
        try:
            v = float(value)
        except ValueError:
            fail(lineno, line, "non-numeric value")
        if math.isnan(v) or math.isinf(v):
            fail(lineno, line, "non-finite value")
        base = name
        for suf in SUFFIXES:
            if name.endswith(suf) and name[: -len(suf)] in typed:
                base = name[: -len(suf)]
                break
        if base not in typed:
            fail(lineno, line, "sample without preceding TYPE")
        samples += 1
    if samples == 0:
        print("check_prometheus: no samples on stdin", file=sys.stderr)
        sys.exit(1)
    print(f"check_prometheus: OK ({samples} samples, {len(typed)} metrics)")


if __name__ == "__main__":
    main()
