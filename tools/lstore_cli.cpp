// lstore_cli: minimal command-line client (and server launcher) for
// the L-Store network service, so humans and CI can poke a live
// server.
//
//   lstore_cli serve <dir|:memory:> [--port P] [--workers N]
//              [--queue N] [--inflight N] [--sample N]
//                                             start a server, block
//                                             (--sample N = server-
//                                             minted trace id on every
//                                             Nth request)
//   lstore_cli [--host H] [--port P] <command> [args]
//
// Client commands:
//   ping                              round-trip check
//   tables                            list tables
//   create <table> <col> [col...]    create a table (col 0 = key)
//   put <table> <key> [val...]       insert one row
//   get <table> <key>                 read all columns
//   del <table> <key>                 delete one key
//   load <table> <nrows> [--batch B] [--start K]
//                                     batch-load rows (retries Busy)
//   sum <table> <col>                 SUM(col) + visible rows
//   count <table>                     COUNT(*)
//   metrics                           Prometheus exposition dump
//   status [--json]                   health report: per-actor
//                                     watchdog verdicts + recent
//                                     engine events (human table, or
//                                     Database::Health() JSON)
//   trace [--out FILE]                flight recorder as Chrome
//                                     trace-event JSON (load into
//                                     chrome://tracing or Perfetto);
//                                     empty when the server was built
//                                     with LSTORE_TRACING=OFF
//   bench [driver flags]              run the wire-mode workload
//                                     harness against the server,
//                                     with bench/'s shared flag
//                                     vocabulary (--rows --threads
//                                     --mix --theta --seed --pipeline
//                                     --slo ...); exits 1 on SLO
//                                     violation

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "server/client.h"
#include "server/server.h"
#include "workload_driver.h"

using namespace lstore;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

int Usage() {
  std::fprintf(stderr,
               "usage: lstore_cli serve <dir|:memory:> [--port P] "
               "[--workers N] [--queue N] [--inflight N] [--sample N]\n"
               "       lstore_cli [--host H] [--port P] "
               "ping|tables|create|put|get|del|load|sum|count|metrics|"
               "status|trace|bench ...\n");
  return 2;
}

int Fail(const char* what, const Status& s) {
  std::fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
  return 1;
}

uint64_t ParseU64(const char* s) {
  return static_cast<uint64_t>(std::strtoull(s, nullptr, 10));
}

int Serve(std::vector<std::string> args) {
  if (args.empty()) return Usage();
  std::string dir = args[0];
  ServerConfig cfg;
  for (size_t i = 1; i < args.size(); i += 2) {
    if (i + 1 >= args.size()) return Usage();
    uint64_t v = ParseU64(args[i + 1].c_str());
    if (args[i] == "--port") cfg.port = static_cast<uint16_t>(v);
    else if (args[i] == "--workers") cfg.workers = static_cast<uint32_t>(v);
    else if (args[i] == "--queue") cfg.max_queue_depth = static_cast<uint32_t>(v);
    else if (args[i] == "--inflight") {
      cfg.max_inflight_per_session = static_cast<uint32_t>(v);
    } else if (args[i] == "--sample") {
      cfg.trace_sample_every = v;  // server-minted trace id every Nth req
    } else {
      return Usage();
    }
  }

  std::unique_ptr<Database> db;
  if (dir == ":memory:") {
    db = std::make_unique<Database>();
  } else {
    Status s = Database::Open(dir, DurabilityOptions{}, &db);
    if (!s.ok()) return Fail("open", s);
  }

  Server server(db.get(), cfg);
  Status s = server.Start();
  if (!s.ok()) return Fail("start", s);
  std::printf("listening on %s:%u (%s)\n", cfg.host.c_str(), server.port(),
              dir.c_str());
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.Stop();
  std::printf("stopped\n");
  return 0;
}

void PrintRow(Value key, const std::vector<Value>& row) {
  std::printf("%llu:", static_cast<unsigned long long>(key));
  for (Value v : row) {
    if (v == kNull) {
      std::printf(" \xE2\x88\x85");  // ∅
    } else {
      std::printf(" %llu", static_cast<unsigned long long>(v));
    }
  }
  std::printf("\n");
}

int Load(Client& client, const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  const std::string& table = args[0];
  uint64_t nrows = ParseU64(args[1].c_str());
  uint64_t batch = 1024, start = 0;
  for (size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--batch" && i + 1 < args.size()) {
      batch = ParseU64(args[++i].c_str());
    } else if (args[i] == "--start" && i + 1 < args.size()) {
      start = ParseU64(args[++i].c_str());
    } else {
      return Usage();
    }
  }
  if (batch == 0) batch = 1;

  // The schema fetch is subject to the same admission control as the
  // load itself: back off through a Busy burst instead of giving up.
  std::vector<std::string> columns;
  uint64_t loaded = 0, busy_retries = 0;
  Status s;
  while ((s = client.GetSchema(table, &columns)).IsBusy()) {
    ++busy_retries;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (!s.ok()) return Fail("schema", s);
  while (loaded < nrows) {
    uint64_t n = std::min(batch, nrows - loaded);
    std::vector<std::vector<Value>> rows;
    rows.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      std::vector<Value> row(columns.size());
      row[0] = start + loaded + i;
      for (size_t c = 1; c < row.size(); ++c) row[c] = (loaded + i) % 1000;
      rows.push_back(std::move(row));
    }
    s = client.InsertBatch(table, rows);
    if (s.IsBusy()) {
      // Admission control said no: back off and retry the batch.
      ++busy_retries;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    if (!s.ok()) return Fail("load", s);
    loaded += n;
  }
  std::printf("loaded %llu rows into %s (busy retries: %llu)\n",
              static_cast<unsigned long long>(loaded), table.c_str(),
              static_cast<unsigned long long>(busy_retries));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return Usage();

  if (args[0] == "serve") {
    return Serve({args.begin() + 1, args.end()});
  }

  std::string host = "127.0.0.1";
  uint16_t port = 7471;
  size_t i = 0;
  while (i + 1 < args.size() &&
         (args[i] == "--host" || args[i] == "--port")) {
    if (args[i] == "--host") host = args[i + 1];
    else port = static_cast<uint16_t>(ParseU64(args[i + 1].c_str()));
    i += 2;
  }
  if (i >= args.size()) return Usage();
  std::string cmd = args[i++];
  std::vector<std::string> rest(args.begin() + i, args.end());

  if (cmd == "bench") {
    // The workload harness in wire mode, against the addressed
    // server. The outer --host/--port seed the driver args; the
    // shared driver vocabulary can override them.
    bench::BenchArgs bargs;
    bargs.host = host;
    bargs.port = port;
    std::string prog = "lstore_cli-bench";
    std::vector<char*> bargv{prog.data()};
    for (auto& a : rest) bargv.push_back(a.data());
    std::string err;
    if (!bargs.Parse(static_cast<int>(bargv.size()), bargv.data(), &err)) {
      if (!err.empty()) std::fprintf(stderr, "%s\n", err.c_str());
      return Usage();
    }
    bargs.mode = "wire";
    if (bargs.port == 0) {
      std::fprintf(stderr, "bench drives a live server: give its --port\n");
      return 2;
    }
    return bench::RunWorkload(bargs);
  }

  Client client;
  Status s = client.Connect(host, port);
  if (!s.ok()) return Fail("connect", s);

  if (cmd == "ping") {
    s = client.Ping();
    if (!s.ok()) return Fail("ping", s);
    std::printf("pong\n");
    return 0;
  }
  if (cmd == "tables") {
    std::vector<std::string> names;
    s = client.ListTables(&names);
    if (!s.ok()) return Fail("tables", s);
    for (const auto& n : names) std::printf("%s\n", n.c_str());
    return 0;
  }
  if (cmd == "create") {
    if (rest.size() < 2) return Usage();
    s = client.CreateTable(rest[0], {rest.begin() + 1, rest.end()});
    if (!s.ok()) return Fail("create", s);
    std::printf("created %s\n", rest[0].c_str());
    return 0;
  }
  if (cmd == "put") {
    if (rest.size() < 2) return Usage();
    std::vector<std::string> columns;
    s = client.GetSchema(rest[0], &columns);
    if (!s.ok()) return Fail("schema", s);
    std::vector<Value> row(columns.size(), 0);
    for (size_t c = 0; c + 1 < rest.size() && c < row.size(); ++c) {
      row[c] = ParseU64(rest[c + 1].c_str());
    }
    s = client.Insert(rest[0], row);
    if (!s.ok()) return Fail("put", s);
    std::printf("ok\n");
    return 0;
  }
  if (cmd == "get") {
    if (rest.size() != 2) return Usage();
    std::vector<Value> row;
    Value key = ParseU64(rest[1].c_str());
    s = client.Read(rest[0], key, ~0ull, &row);
    if (!s.ok()) return Fail("get", s);
    PrintRow(key, row);
    return 0;
  }
  if (cmd == "del") {
    if (rest.size() != 2) return Usage();
    s = client.Delete(rest[0], ParseU64(rest[1].c_str()));
    if (!s.ok()) return Fail("del", s);
    std::printf("ok\n");
    return 0;
  }
  if (cmd == "load") {
    return Load(client, rest);
  }
  if (cmd == "sum") {
    if (rest.size() != 2) return Usage();
    uint64_t sum = 0, rows = 0;
    s = client.Sum(rest[0], static_cast<ColumnId>(ParseU64(rest[1].c_str())),
                   {}, &sum, &rows);
    if (!s.ok()) return Fail("sum", s);
    std::printf("sum=%llu rows=%llu\n", static_cast<unsigned long long>(sum),
                static_cast<unsigned long long>(rows));
    return 0;
  }
  if (cmd == "count") {
    if (rest.size() != 1) return Usage();
    uint64_t count = 0;
    s = client.Count(rest[0], {}, &count);
    if (!s.ok()) return Fail("count", s);
    std::printf("count=%llu\n", static_cast<unsigned long long>(count));
    return 0;
  }
  if (cmd == "metrics") {
    std::string text;
    s = client.Metrics(&text);
    if (!s.ok()) return Fail("metrics", s);
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  if (cmd == "status") {
    bool json = false;
    for (const auto& a : rest) {
      if (a == "--json") json = true;
      else return Usage();
    }
    HealthReport report;
    s = client.Health(&report);
    if (!s.ok()) return Fail("status", s);
    if (json) {
      std::printf("%s\n", RenderHealthJson(report).c_str());
      return 0;
    }
    std::printf("actors: %llu healthy, %llu slow, %llu stalled\n",
                static_cast<unsigned long long>(report.healthy),
                static_cast<unsigned long long>(report.slow),
                static_cast<unsigned long long>(report.stalled));
    std::printf("%-28s %-8s %-5s %12s %10s\n", "ACTOR", "VERDICT", "BUSY",
                "SINCE_BEAT", "BEATS");
    for (const ActorHealth& a : report.actors) {
      std::printf("%-28s %-8s %-5s %10llums %10llu\n", a.name.c_str(),
                  HealthVerdictName(a.verdict), a.busy ? "yes" : "no",
                  static_cast<unsigned long long>(a.since_beat_ms),
                  static_cast<unsigned long long>(a.beats));
    }
    if (!report.recent_events.empty()) {
      std::printf("\nrecent events:\n");
      for (const Event& e : report.recent_events) {
        std::printf("  %llu %-5s %-14s %s%s%s\n",
                    static_cast<unsigned long long>(e.ts_ms),
                    EventSeverityName(e.severity), e.actor.c_str(),
                    e.kind.c_str(), e.fields.empty() ? "" : " ",
                    e.fields.c_str());
      }
    }
    return 0;
  }
  if (cmd == "trace") {
    std::string json;
    s = client.Trace(&json);
    if (!s.ok()) return Fail("trace", s);
    std::string out_path;
    for (size_t i = 0; i + 1 < rest.size(); i += 2) {
      if (rest[i] == "--out") out_path = rest[i + 1];
      else return Usage();
    }
    if (out_path.empty()) {
      std::fputs(json.c_str(), stdout);
      std::fputc('\n', stdout);
    } else {
      std::FILE* f = std::fopen(out_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "trace: cannot write %s\n", out_path.c_str());
        return 1;
      }
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("trace written to %s\n", out_path.c_str());
    }
    return 0;
  }
  return Usage();
}
