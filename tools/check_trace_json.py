#!/usr/bin/env python3
"""Validate Chrome trace-event JSON from the flight recorder on stdin.

Used by CI: ./build/tools/lstore_cli trace | tools/check_trace_json.py
       (or: tools/check_trace_json.py < trace.json)

Checks:
  - the document parses as JSON with the object format the recorder
    emits: {"displayTimeUnit": "ns", "traceEvents": [...]}
  - every event is a complete ("ph": "X") event with a non-empty
    string name, numeric ts/dur, integer pid/tid, and an
    args.trace_id of the form 0x<hex> that is nonzero (the recorder
    never stores spans for trace id 0)
  - ts and dur are finite and non-negative (spans are recorded closed
    from a monotonic clock; a negative value means broken math)
  - no trace id has more than one root "request" span, and every
    non-root span of a rooted trace lies inside the root's
    [ts, ts+dur] window (tolerance --slack-us, default 100, for
    cross-thread clock reads at the window edges)
  - rootless traces (the ring overwrote the root but children
    survived — expected once a ring wraps) are counted and reported;
    --strict turns them into failures for runs sized to fit the rings

An empty traceEvents list passes (LSTORE_TRACING=OFF builds or an
idle server): emptiness is a build/usage property, not corruption.
Exits 0 with a summary on success, 1 with the offending event
otherwise.
"""

import argparse
import json
import math
import sys


def fail(why, detail=""):
    print(f"check_trace_json: {why}" + (f": {detail}" if detail else ""),
          file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--slack-us", type=float, default=100.0,
                    help="containment tolerance at root window edges (us)")
    ap.add_argument("--min-events", type=int, default=0,
                    help="fail when fewer events than this are present")
    ap.add_argument("--strict", action="store_true",
                    help="fail on rootless traces (no 'request' span)")
    opts = ap.parse_args()

    try:
        doc = json.load(sys.stdin)
    except json.JSONDecodeError as e:
        fail("not valid JSON", str(e))

    if not isinstance(doc, dict):
        fail("top level is not an object")
    if doc.get("displayTimeUnit") != "ns":
        fail("displayTimeUnit is not 'ns'", repr(doc.get("displayTimeUnit")))
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("traceEvents is not a list")

    traces = {}  # trace_id -> list of (name, ts, dur)
    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            fail(f"{where} is not an object")
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            fail(f"{where}: bad name", repr(name))
        if ev.get("ph") != "X":
            fail(f"{where} ({name}): ph is not 'X'", repr(ev.get("ph")))
        ts, dur = ev.get("ts"), ev.get("dur")
        for field, v in (("ts", ts), ("dur", dur)):
            if not isinstance(v, (int, float)) or not math.isfinite(v) or v < 0:
                fail(f"{where} ({name}): bad {field}", repr(v))
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                fail(f"{where} ({name}): bad {field}", repr(ev.get(field)))
        tid_str = (ev.get("args") or {}).get("trace_id")
        if (not isinstance(tid_str, str) or not tid_str.startswith("0x")):
            fail(f"{where} ({name}): bad args.trace_id", repr(tid_str))
        try:
            trace_id = int(tid_str, 16)
        except ValueError:
            fail(f"{where} ({name}): unparseable trace_id", repr(tid_str))
        if trace_id == 0:
            fail(f"{where} ({name}): trace_id is zero")
        traces.setdefault(trace_id, []).append((name, ts, dur))

    if len(events) < opts.min_events:
        fail(f"only {len(events)} events, expected >= {opts.min_events}")

    roots = 0
    rootless = 0
    for trace_id, spans in traces.items():
        reqs = [(ts, dur) for (name, ts, dur) in spans if name == "request"]
        if len(reqs) > 1:
            fail(f"trace 0x{trace_id:x}: {len(reqs)} root 'request' spans "
                 f"(want at most 1)", f"{len(spans)} spans total")
        if not reqs:
            if opts.strict:
                fail(f"trace 0x{trace_id:x}: no root 'request' span",
                     f"{len(spans)} spans")
            rootless += 1
            continue
        roots += 1
        r_ts, r_dur = reqs[0]
        lo, hi = r_ts - opts.slack_us, r_ts + r_dur + opts.slack_us
        for name, ts, dur in spans:
            if name == "request":
                continue
            if ts < lo or ts + dur > hi:
                fail(f"trace 0x{trace_id:x}: span '{name}' "
                     f"[{ts:.3f}, {ts + dur:.3f}] outside root "
                     f"[{r_ts:.3f}, {r_ts + r_dur:.3f}] (+/-{opts.slack_us}us)")

    print(f"check_trace_json: OK ({len(events)} events, {roots} rooted "
          f"traces, {rootless} rootless)")


if __name__ == "__main__":
    main()
