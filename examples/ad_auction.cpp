// Real-time targeted advertising (the paper's first motivating
// scenario, Section 1): high-velocity transactional bid/impression
// traffic with concurrent analytics over the *latest* data — the
// analytics drive ad selection, and resulting purchases must be
// visible to subsequent analytics immediately.
//
// Schema: shopper(id, region, segment, impressions, clicks, purchases,
//                 spend_cents)
// OLTP: impression / click / purchase transactions (multi-statement).
// OLAP: per-region conversion analytics running concurrently,
//       plus a secondary-index lookup of a shopper segment.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/query.h"
#include "core/table.h"

using namespace lstore;

namespace {

constexpr Value kShoppers = 20000;
constexpr ColumnId kRegion = 1, kSegment = 2, kImpressions = 3, kClicks = 4,
                   kPurchases = 5, kSpend = 6;

}  // namespace

int main() {
  TableConfig config;
  config.range_size = 1u << 12;
  config.merge_threshold = 1u << 11;
  config.enable_merge_thread = true;  // real-time storage adaption
  Table shoppers("shoppers",
                 Schema({"id", "region", "segment", "impressions", "clicks",
                         "purchases", "spend_cents"}),
                 config);

  // Load the shopper population.
  {
    Random rng(42);
    Txn txn = shoppers.Begin();
    std::vector<std::vector<Value>> rows;
    rows.reserve(kShoppers);
    for (Value id = 0; id < kShoppers; ++id) {
      rows.push_back({id, rng.Uniform(8), rng.Uniform(16), 0, 0, 0, 0});
    }
    shoppers.InsertBatch(txn, rows);  // one redo frame, one index pass
    txn.Commit();
  }
  shoppers.FlushAll();
  shoppers.CreateSecondaryIndex(kSegment);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> events{0}, conversions{0};

  // OLTP side: the ad-serving event stream. A "conversion" is a
  // multi-statement transaction: read shopper state, record the click
  // and the purchase atomically.
  std::thread oltp([&] {
    Random rng(7);
    while (!stop.load()) {
      Value id = rng.Uniform(kShoppers);
      Txn txn = shoppers.Begin();
      std::vector<Value> s;
      if (!shoppers.Read(txn, id, 0b1111000, &s).ok()) {
        txn.Abort();
        continue;
      }
      bool clicked = rng.Percent(10);
      bool bought = clicked && rng.Percent(20);
      std::vector<Value> row(7, 0);
      ColumnMask mask = 1ull << kImpressions;
      row[kImpressions] = s[kImpressions] + 1;
      if (clicked) {
        mask |= 1ull << kClicks;
        row[kClicks] = s[kClicks] + 1;
      }
      if (bought) {
        mask |= (1ull << kPurchases) | (1ull << kSpend);
        row[kPurchases] = s[kPurchases] + 1;
        row[kSpend] = s[kSpend] + 99 + rng.Uniform(9900);
      }
      if (shoppers.Update(txn, id, mask, row).ok() &&
          txn.Commit().ok()) {
        events.fetch_add(1);
        if (bought) conversions.fetch_add(1);
      }
      // A failed session auto-aborts when `txn` leaves scope.
    }
  });

  // OLAP side: the auction's real-time analytics — spend per region on
  // a consistent snapshot, concurrent with the event stream.
  std::printf("%-10s %14s %14s %16s\n", "tick", "events", "conversions",
              "total spend ($)");
  for (int tick = 1; tick <= 5; ++tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    uint64_t spend = 0;
    // A consistent snapshot (Now() never ticks the clock), scanned in
    // parallel along update-range partitions on the shared pool.
    shoppers.NewQuery().Workers(0).Sum(kSpend, &spend);
    std::printf("%-10d %14llu %14llu %16.2f\n", tick,
                static_cast<unsigned long long>(events.load()),
                static_cast<unsigned long long>(conversions.load()),
                spend / 100.0);
  }
  stop = true;
  oltp.join();

  // Targeting query: shoppers in segment 3 (index candidates are
  // re-validated against the snapshot, Section 3.1).
  std::vector<Value> segment3;
  shoppers.NewQuery().Where(kSegment, Value{3}).Keys(&segment3);
  std::printf("segment 3 audience: %zu shoppers\n", segment3.size());

  // Merge statistics: the background merge kept tail pages bounded
  // without ever blocking the OLTP stream.
  shoppers.WaitForMergeQueue();
  std::printf("merges: %llu update + %llu insert; tail records merged: %llu\n",
              static_cast<unsigned long long>(shoppers.stats().merges.load()),
              static_cast<unsigned long long>(
                  shoppers.stats().insert_merges.load()),
              static_cast<unsigned long long>(
                  shoppers.stats().tail_records_merged.load()));
  return 0;
}
