// Metrics tour: the observability subsystem end to end — a durable
// database doing real work (cross-table commits, merges, a checkpoint,
// parallel scans) with the background stats reporter enabled, then the
// full Prometheus exposition dumped to stdout.
//
// Build & run:  ./build/examples/metrics_tour
// CI pipes the output through tools/check_prometheus.py.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/query.h"
#include "core/table.h"

using namespace lstore;

int main() {
  std::string dir = std::filesystem::temp_directory_path().string() +
                    "/lstore_metrics_tour";
  std::filesystem::remove_all(dir);

  DurabilityOptions opts;
  opts.sync_commit = true;
  opts.group_commit_window_us = 100;
  opts.archive_enabled = true;
  opts.metrics_report_interval_ms = 50;  // <dir>/metrics.log timeline

  std::unique_ptr<Database> db;
  Status s = Database::Open(dir, opts, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  TableConfig cfg;
  cfg.range_size = 256;
  cfg.insert_range_size = 256;
  cfg.merge_threshold = 128;
  cfg.enable_merge_thread = false;
  (void)db->CreateTable("orders", Schema({"id", "total", "state"}), cfg);
  (void)db->CreateTable("audit", Schema({"id", "order_id"}), cfg);
  Table* orders = db->GetTable("orders");
  Table* audit = db->GetTable("audit");

  // Concurrent cross-table commits: every order insert pairs with an
  // audit row in ONE transaction, so the group-commit queue batches
  // real multi-writer work.
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (Value i = 0; i < 200; ++i) {
        Value id = t * 200 + i;
        Txn txn = db->Begin();
        (void)orders->Insert(txn, {id, id % 97, 0});
        (void)audit->Insert(txn, {id, id});
        (void)txn.Commit();
      }
    });
  }
  for (auto& w : workers) w.join();

  // Updates build lineage; FlushAll consolidates it (merge metrics).
  {
    Txn txn = db->Begin();
    for (Value id = 0; id < 800; ++id) {
      (void)orders->Update(txn, id, 0b100, {0, 0, 1});
    }
    (void)txn.Commit();
  }
  orders->FlushAll();

  // A checkpoint seals archive segments and truncates logs.
  (void)db->Checkpoint();

  // Parallel snapshot scan (per-partition latencies).
  uint64_t total = 0;
  (void)orders->NewQuery().Workers(4).Sum(1, &total);
  std::fprintf(stderr, "sum(orders.total) = %llu\n",
               static_cast<unsigned long long>(total));

  // The whole engine state, one snapshot, Prometheus text on stdout.
  std::printf("%s", db->Metrics().RenderPrometheus().c_str());

  db.reset();  // reporter writes its final metrics.log line here
  std::fprintf(stderr, "metrics timeline at %s/metrics.log\n", dir.c_str());
  return 0;
}
