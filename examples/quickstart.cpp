// Quickstart: the 5-minute tour of the L-Store public API —
// RAII transaction sessions, batched point operations, composable
// snapshot queries, time travel, and the merge.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/query.h"
#include "core/table.h"

using namespace lstore;

int main() {
  // A table with 4 columns; column 0 is the primary key.
  TableConfig config;
  config.range_size = 1u << 12;
  config.merge_threshold = 8;        // merge eagerly for the demo
  config.enable_merge_thread = false;  // we drive merges by hand here
  Table table("accounts", Schema({"id", "balance", "branch", "status"}),
              config);

  // --- 1. Insert rows transactionally -----------------------------------
  // A Txn is an RAII session: it commits via txn.Commit() and aborts
  // automatically if it goes out of scope first. InsertBatch loads
  // many rows with one redo-log frame and one index pass.
  {
    Txn txn = table.Begin();
    std::vector<std::vector<Value>> rows;
    for (Value id = 0; id < 100; ++id) {
      rows.push_back({id, 1000, id % 5, 1});
    }
    Status s = table.InsertBatch(txn, rows);
    if (!s.ok()) {
      std::printf("insert failed: %s\n", s.ToString().c_str());
      return 1;  // txn aborts on scope exit
    }
    txn.Commit();
  }
  std::printf("loaded %llu rows\n",
              static_cast<unsigned long long>(table.num_rows()));

  // --- 2. Point reads with column projection ----------------------------
  {
    Txn txn = table.Begin();
    std::vector<Value> row;
    table.Read(txn, /*key=*/42, /*mask=*/0b0010, &row);  // just "balance"
    std::printf("account 42 balance = %llu\n",
                static_cast<unsigned long long>(row[1]));
    txn.Commit();
  }

  // --- 3. Updates append lineage; aborts leave no trace -----------------
  Timestamp before_update = table.Now();
  {
    Txn txn = table.Begin();
    table.Update(txn, 42, 0b0010, {0, 1500, 0, 0});
    txn.Commit();

    Txn bad = table.Begin();
    table.Update(bad, 42, 0b0010, {0, 0, 0, 0});
    // No explicit Abort needed: `bad` auto-aborts here, tombstoned.
  }

  // --- 4. Time travel ----------------------------------------------------
  {
    std::vector<Value> now_row, old_row;
    Txn txn = table.Begin();
    table.Read(txn, 42, 0b0010, &now_row);
    txn.Commit();
    table.ReadAsOf(42, before_update, 0b0010, &old_row);
    std::printf("account 42: now=%llu, before update=%llu\n",
                static_cast<unsigned long long>(now_row[1]),
                static_cast<unsigned long long>(old_row[1]));
  }

  // --- 5. Analytics: composable snapshot queries -------------------------
  // Query partitions the scan along update-range boundaries and can
  // fan out on a shared worker pool; the default snapshot is
  // Table::Now(), which does not advance the logical clock.
  {
    uint64_t total = 0;
    table.NewQuery().Sum(1, &total);
    std::printf("sum(balance) = %llu (99 x 1000 + 1500)\n",
                static_cast<unsigned long long>(total));

    uint64_t branch0 = 0, branch0_rows = 0;
    table.NewQuery().Where(2, Value{0}).Sum(1, &branch0, &branch0_rows);
    std::printf("branch 0: %llu accounts, %llu total balance\n",
                static_cast<unsigned long long>(branch0_rows),
                static_cast<unsigned long long>(branch0));

    uint64_t rich = 0;
    table.NewQuery().Where(1, [](Value v) { return v > 1000; }).Count(&rich);
    std::printf("accounts over 1000: %llu\n",
                static_cast<unsigned long long>(rich));
  }

  // --- 6. The merge: consolidate tails into read-optimized pages --------
  {
    std::printf("tail records in range 0 before merge: %u\n",
                table.RangeTailLength(0));
    table.FlushAll();  // insert-merge + update merge
    std::printf("range 0 TPS after merge: %u (tail records consolidated)\n",
                table.RangeTps(0));
    table.epochs().TryReclaim();  // outdated pages reclaimed via epochs
  }

  // The merged view serves reads from compressed base pages; history
  // remains reachable.
  std::vector<Value> row;
  table.ReadAsOf(42, before_update, 0b0010, &row);
  std::printf("history preserved across merge: balance@t0 = %llu\n",
              static_cast<unsigned long long>(row[1]));
  std::printf("quickstart done.\n");
  return 0;
}
