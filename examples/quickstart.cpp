// Quickstart: the 5-minute tour of the L-Store public API —
// create a table, run transactions, read current and historical
// versions, watch the merge consolidate tail pages.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/table.h"

using namespace lstore;

int main() {
  // A table with 4 columns; column 0 is the primary key.
  TableConfig config;
  config.range_size = 1u << 12;
  config.merge_threshold = 8;        // merge eagerly for the demo
  config.enable_merge_thread = false;  // we drive merges by hand here
  Table table("accounts", Schema({"id", "balance", "branch", "status"}),
              config);

  // --- 1. Insert rows transactionally -----------------------------------
  {
    Transaction txn = table.Begin();
    for (Value id = 0; id < 100; ++id) {
      Status s = table.Insert(&txn, {id, 1000, id % 5, 1});
      if (!s.ok()) {
        std::printf("insert failed: %s\n", s.ToString().c_str());
        table.Abort(&txn);
        return 1;
      }
    }
    table.Commit(&txn);
  }
  std::printf("loaded %llu rows\n",
              static_cast<unsigned long long>(table.num_rows()));

  // --- 2. Point reads with column projection ----------------------------
  {
    Transaction txn = table.Begin();
    std::vector<Value> row;
    table.Read(&txn, /*key=*/42, /*mask=*/0b0010, &row);  // just "balance"
    std::printf("account 42 balance = %llu\n",
                static_cast<unsigned long long>(row[1]));
    table.Commit(&txn);
  }

  // --- 3. Updates append lineage; aborts leave no trace -----------------
  Timestamp before_update = table.txn_manager().clock().Tick();
  {
    Transaction txn = table.Begin();
    table.Update(&txn, 42, 0b0010, {0, 1500, 0, 0});
    table.Commit(&txn);

    Transaction bad = table.Begin();
    table.Update(&bad, 42, 0b0010, {0, 0, 0, 0});
    table.Abort(&bad);  // tombstoned, never visible
  }

  // --- 4. Time travel ----------------------------------------------------
  {
    std::vector<Value> now_row, old_row;
    Transaction txn = table.Begin();
    table.Read(&txn, 42, 0b0010, &now_row);
    table.Commit(&txn);
    table.ReadAsOf(42, before_update, 0b0010, &old_row);
    std::printf("account 42: now=%llu, before update=%llu\n",
                static_cast<unsigned long long>(now_row[1]),
                static_cast<unsigned long long>(old_row[1]));
  }

  // --- 5. Analytics: snapshot scans --------------------------------------
  {
    uint64_t total = 0;
    Timestamp now = table.txn_manager().clock().Tick();
    table.SumColumnRange(1, now, 0, table.num_rows(), &total);
    std::printf("sum(balance) = %llu (99 x 1000 + 1500)\n",
                static_cast<unsigned long long>(total));
  }

  // --- 6. The merge: consolidate tails into read-optimized pages --------
  {
    std::printf("tail records in range 0 before merge: %u\n",
                table.RangeTailLength(0));
    table.FlushAll();  // insert-merge + update merge
    std::printf("range 0 TPS after merge: %u (tail records consolidated)\n",
                table.RangeTps(0));
    table.epochs().TryReclaim();  // outdated pages reclaimed via epochs
  }

  // The merged view serves reads from compressed base pages; history
  // remains reachable.
  std::vector<Value> row;
  table.ReadAsOf(42, before_update, 0b0010, &row);
  std::printf("history preserved across merge: balance@t0 = %llu\n",
              static_cast<unsigned long long>(row[1]));
  std::printf("quickstart done.\n");
  return 0;
}
