// Real-time fraud detection (the paper's second motivating scenario,
// Section 1): a card authorization must run analytics over the
// cardholder's latest history *inside* the approving transaction,
// within a sub-second budget.
//
// Schema: card(id, balance_cents, txn_count, declined_count,
//              last_amount, risk_score)
// Authorization = one transaction: speculative risk reads + balance
// check + in-transaction analytics + approve/decline, all atomic.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/query.h"
#include "core/table.h"

using namespace lstore;

namespace {

constexpr Value kCards = 10000;
constexpr ColumnId kBalance = 1, kTxnCount = 2, kDeclined = 3, kLastAmount = 4,
                   kRisk = 5;

// The "complex analytics as part of the transaction": a toy risk model
// over the cardholder's current state + amount.
Value RiskScore(const std::vector<Value>& card, Value amount) {
  Value score = 0;
  if (amount > 4 * (card[kLastAmount] + 1)) score += 40;  // amount anomaly
  if (card[kDeclined] > card[kTxnCount] / 4 + 1) score += 30;
  if (amount > card[kBalance]) score += 50;
  return score;
}

}  // namespace

int main() {
  TableConfig config;
  config.range_size = 1u << 12;
  config.merge_threshold = 1u << 11;
  config.enable_merge_thread = true;
  Table cards("cards",
              Schema({"id", "balance_cents", "txn_count", "declined_count",
                      "last_amount", "risk_score"}),
              config);
  {
    Random rng(3);
    Txn txn = cards.Begin();
    std::vector<std::vector<Value>> rows;
    rows.reserve(kCards);
    for (Value id = 0; id < kCards; ++id) {
      rows.push_back({id, 50000 + rng.Uniform(500000), 0, 0, 100, 0});
    }
    cards.InsertBatch(txn, rows);  // one redo frame for the whole load
    txn.Commit();
  }
  cards.FlushAll();

  std::atomic<uint64_t> approved{0}, declined{0}, retried{0};
  std::atomic<bool> stop{false};

  auto authorize = [&](Random& rng) {
    Value id = rng.Uniform(kCards);
    Value amount = 50 + rng.Uniform(2000) * (rng.Percent(3) ? 100 : 1);
    // Serializable: the risk decision must be based on a stable view.
    Txn txn = cards.Begin(IsolationLevel::kSerializable);
    std::vector<Value> card;
    if (!cards.Read(txn, id, 0b111110, &card).ok()) {
      txn.Abort();
      return;
    }
    Value score = RiskScore(card, amount);
    std::vector<Value> row(6, 0);
    ColumnMask mask;
    if (score >= 50) {
      mask = (1ull << kDeclined) | (1ull << kRisk);
      row[kDeclined] = card[kDeclined] + 1;
      row[kRisk] = score;
    } else {
      mask = (1ull << kBalance) | (1ull << kTxnCount) |
             (1ull << kLastAmount) | (1ull << kRisk);
      row[kBalance] = card[kBalance] - std::min(amount, card[kBalance]);
      row[kTxnCount] = card[kTxnCount] + 1;
      row[kLastAmount] = amount;
      row[kRisk] = score;
    }
    if (!cards.Update(txn, id, mask, row).ok()) {
      txn.Abort();
      retried.fetch_add(1);
      return;
    }
    if (txn.Commit().ok()) {
      (score >= 50 ? declined : approved).fetch_add(1);
    } else {
      retried.fetch_add(1);  // validation conflict: caller retries
    }
  };

  // Authorization stream + a concurrent portfolio-risk scan (OLAP on
  // the same engine, same data, zero ETL).
  std::thread auth_thread([&] {
    Random rng(11);
    while (!stop.load()) authorize(rng);
  });

  std::printf("%-8s %12s %12s %12s %18s\n", "tick", "approved", "declined",
              "conflicts", "portfolio risk sum");
  for (int tick = 1; tick <= 5; ++tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    uint64_t risk_sum = 0;
    // Portfolio analytics on a consistent snapshot, concurrent with
    // the authorization stream (zero ETL, Query fans out on the pool).
    cards.NewQuery().Workers(0).Sum(kRisk, &risk_sum);
    std::printf("%-8d %12llu %12llu %12llu %18llu\n", tick,
                static_cast<unsigned long long>(approved.load()),
                static_cast<unsigned long long>(declined.load()),
                static_cast<unsigned long long>(retried.load()),
                static_cast<unsigned long long>(risk_sum));
  }
  stop = true;
  auth_thread.join();

  // Post-hoc investigation: time travel to audit one card's history.
  std::printf("\naudit: card 123 balance trajectory\n");
  Timestamp now = cards.Now();
  for (Timestamp t = now / 4; t <= now; t += now / 4) {
    std::vector<Value> row;
    if (cards.ReadAsOf(123, t, 1ull << kBalance, &row).ok()) {
      std::printf("  as of t=%llu: balance=%llu\n",
                  static_cast<unsigned long long>(t),
                  static_cast<unsigned long long>(row[kBalance]));
    }
  }
  std::printf("done: %llu approved, %llu declined\n",
              static_cast<unsigned long long>(approved.load()),
              static_cast<unsigned long long>(declined.load()));
  return 0;
}
