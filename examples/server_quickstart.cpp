// Server quickstart: the engine as a network service — one process
// starts a Server over an in-memory Database, then talks to itself
// through real TCP clients: transactions over the wire, concurrent
// sessions, admission-control Busy under overload, and a metrics
// scrape.
//
// Build & run:  ./build/examples/server_quickstart

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "server/client.h"
#include "server/server.h"

using namespace lstore;

int main() {
  // --- 1. Start serving -------------------------------------------------
  // Port 0 picks an ephemeral port; a deployment would pin one. The
  // worker pool is the only thing touching the engine; every client
  // connection gets a session with its own transaction state.
  Database db;
  ServerConfig cfg;
  cfg.workers = 2;
  Server server(&db, cfg);
  Status s = server.Start();
  if (!s.ok()) {
    std::printf("start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u\n", server.port());

  // --- 2. A transactional session over the wire -------------------------
  Client c;
  if (!c.Connect("127.0.0.1", server.port()).ok()) return 1;
  c.CreateTable("accounts", {"id", "balance", "status"});
  c.Begin();
  std::vector<std::vector<Value>> rows;
  for (Value id = 0; id < 1000; ++id) rows.push_back({id, 1000, 1});
  c.InsertBatch("accounts", rows);
  c.Commit();

  // BEGIN..COMMIT brackets server-side state: until the commit, other
  // sessions cannot see these writes.
  c.Begin();
  c.Update("accounts", 42, /*mask=*/0b010, {42, 2500, 1});
  {
    Client other;
    other.Connect("127.0.0.1", server.port());
    std::vector<Value> row;
    other.Read("accounts", 42, ~0ull, &row);
    std::printf("before commit, another session reads balance %llu\n",
                static_cast<unsigned long long>(row[1]));
  }
  c.Commit();
  std::vector<Value> row;
  c.Read("accounts", 42, ~0ull, &row);
  std::printf("after commit, balance %llu\n",
              static_cast<unsigned long long>(row[1]));

  // --- 3. Concurrent sessions ------------------------------------------
  // One client per thread (a client is one session). Each updates its
  // own keys; aggregates see every committed write.
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Client worker;
      if (!worker.Connect("127.0.0.1", server.port()).ok()) return;
      for (Value id = t * 100; id < static_cast<Value>(t * 100 + 100); ++id) {
        worker.Update("accounts", id, 0b010, {id, 1000 + id, 1});
      }
    });
  }
  for (auto& th : threads) th.join();
  uint64_t sum = 0, visible = 0;
  c.Sum("accounts", 1, {}, &sum, &visible);
  std::printf("sum(balance) = %llu over %llu rows\n",
              static_cast<unsigned long long>(sum),
              static_cast<unsigned long long>(visible));

  // --- 4. Overload degrades into Busy, not queueing ---------------------
  // A tiny queue bound turns a burst into immediate Busy rejections;
  // a well-behaved client backs off and retries.
  ServerConfig tiny;
  tiny.workers = 1;
  tiny.max_queue_depth = 2;
  tiny.test_delay_us = 5000;
  Database small_db;
  Server small(&small_db, tiny);
  small.Start();
  std::atomic<uint64_t> busy{0}, served{0};
  std::vector<std::thread> burst;
  for (int t = 0; t < 8; ++t) {
    burst.emplace_back([&] {
      Client b;
      if (!b.Connect("127.0.0.1", small.port()).ok()) return;
      for (int i = 0; i < 5; ++i) {
        Status ps = b.Ping();
        if (ps.IsBusy()) {
          ++busy;
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        } else if (ps.ok()) {
          ++served;
        }
      }
    });
  }
  for (auto& th : burst) th.join();
  std::printf("burst against queue depth 2: %llu served, %llu busy\n",
              static_cast<unsigned long long>(served.load()),
              static_cast<unsigned long long>(busy.load()));
  small.Stop();

  // --- 5. Observability over the protocol -------------------------------
  // METRICS returns the full Prometheus exposition: engine and server
  // families side by side.
  std::string text;
  c.Metrics(&text);
  for (size_t pos = 0; pos < text.size();) {
    size_t eol = text.find('\n', pos);
    std::string line = text.substr(pos, eol - pos);
    if (line.find("lstore_server_") == 0 && line.find('#') == std::string::npos) {
      std::printf("%s\n", line.c_str());
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }

  server.Stop();
  std::printf("server stopped cleanly\n");
  return 0;
}
