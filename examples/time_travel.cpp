// Historic data management: every update is retained (Section 2.1
// "querying and retaining the current and historic data"), merged tail
// pages are delta-compressed into the historic store (Section 4.3),
// and time-travel queries reconstruct any past snapshot — including
// across merges and compression, and after a crash via the redo log.

#include <cstdio>
#include <string>
#include <vector>

#include "core/query.h"
#include "core/table.h"

using namespace lstore;

int main() {
  std::string log_path = "/tmp/lstore_time_travel.log";
  std::remove(log_path.c_str());

  TableConfig config;
  config.range_size = 256;
  config.merge_threshold = 64;
  config.enable_merge_thread = false;
  config.enable_logging = true;
  config.log_path = log_path;

  std::vector<Timestamp> checkpoints;
  {
    Table inventory("inventory", Schema({"sku", "stock", "price_cents"}),
                    config);
    // Seed and evolve the data through four "days".
    Txn txn = inventory.Begin();
    for (Value sku = 0; sku < 200; ++sku) {
      inventory.Insert(txn, {sku, 100, 999});
    }
    txn.Commit();

    for (int day = 0; day < 4; ++day) {
      checkpoints.push_back(inventory.Now());
      Txn t = inventory.Begin();
      for (Value sku = 0; sku < 200; sku += 4) {
        // Sell stock and reprice.
        inventory.Update(t, sku, 0b110,
                         {0, Value(100 - (day + 1) * 10),
                          Value(999 + (day + 1) * 50)});
      }
      t.Commit();
      // Consolidate + compress history as days pass.
      inventory.FlushAll();
      inventory.CompressHistoricNow(0);
      inventory.epochs().TryReclaim();
    }
    checkpoints.push_back(inventory.Now());

    std::printf("SKU 0 stock by day (merged + historic-compressed):\n");
    for (size_t day = 0; day < checkpoints.size(); ++day) {
      std::vector<Value> row;
      if (inventory.ReadAsOf(0, checkpoints[day], 0b110, &row).ok()) {
        std::printf("  day %zu: stock=%llu price=%llu\n", day,
                    static_cast<unsigned long long>(row[1]),
                    static_cast<unsigned long long>(row[2]));
      }
    }

    // Aggregates time travel too: total stock at each day's snapshot
    // (Query::AsOf reconstructs history across merges + compression).
    std::printf("total stock by day:\n");
    for (size_t day = 0; day < checkpoints.size(); ++day) {
      uint64_t total = 0;
      inventory.NewQuery().AsOf(checkpoints[day]).Sum(1, &total);
      std::printf("  day %zu: %llu units\n", day,
                  static_cast<unsigned long long>(total));
    }
    std::printf("historic compressions: %llu\n",
                static_cast<unsigned long long>(
                    inventory.stats().historic_compressions.load()));
    // Table destructs here = clean shutdown. Now simulate restart.
  }

  std::printf("\nrestarting from the redo log (%s)...\n", log_path.c_str());
  Table recovered("inventory", Schema({"sku", "stock", "price_cents"}),
                  config);
  Status s = recovered.RecoverFromLog();
  if (!s.ok()) {
    std::printf("recovery failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("recovered %llu rows; history still queryable:\n",
              static_cast<unsigned long long>(recovered.num_rows()));
  for (size_t day = 0; day < checkpoints.size(); ++day) {
    std::vector<Value> row;
    if (recovered.ReadAsOf(0, checkpoints[day], 0b010, &row).ok()) {
      std::printf("  day %zu: stock=%llu\n", day,
                  static_cast<unsigned long long>(row[1]));
    }
  }
  std::remove(log_path.c_str());
  std::printf("time-travel example done.\n");
  return 0;
}
