// Point-in-time recovery walkthrough: log archiving turns checkpoint
// truncation into archival, so the database can be rewound to ANY
// archived commit point — here, "the moment before the bad deploy
// started double-charging accounts".
//
// The demo opens a durable database with archiving on, runs transfers
// between an accounts table and an audit ledger (cross-table
// transactions: both tables move together or not at all), checkpoints
// twice so the log prefix is sealed into <dir>/archive, then restores
// the pre-incident state and shows the two timelines side by side.
//
// Build & run:  ./build/examples/pitr_walkthrough

#include <cstdio>
#include <filesystem>

#include "core/database.h"
#include "core/query.h"
#include "core/table.h"

using namespace lstore;

namespace {

Value Balance(Table* accounts, Value id) {
  std::vector<Value> row;
  if (!accounts->ReadAsOf(id, accounts->Now(), 0b10, &row).ok()) return 0;
  return row[1];
}

void Transfer(Database* db, Table* accounts, Table* audit, Value from,
              Value to, Value amount, Value audit_id) {
  Txn txn = db->Begin();
  std::vector<Value> row;
  (void)accounts->Read(txn, from, 0b10, &row);
  (void)accounts->Update(txn, from, 0b10, {0, row[1] - amount});
  (void)accounts->Read(txn, to, 0b10, &row);
  (void)accounts->Update(txn, to, 0b10, {0, row[1] + amount});
  (void)audit->Insert(txn, {audit_id, from, to, amount});
  Status s = txn.Commit();
  if (!s.ok()) std::printf("transfer aborted: %s\n", s.ToString().c_str());
}

}  // namespace

int main() {
  const std::string dir =
      std::filesystem::temp_directory_path().string() + "/lstore_pitr_demo";
  std::filesystem::remove_all(dir);

  // --- 1. A durable database with log archiving on ----------------------
  DurabilityOptions opts;
  opts.archive_enabled = true;  // truncation seals instead of deletes
  std::unique_ptr<Database> db;
  if (!Database::Open(dir, opts, &db).ok()) return 1;
  (void)db->CreateTable("accounts", Schema({"id", "balance"}),
                        TableConfig{});
  (void)db->CreateTable("audit", Schema({"id", "from", "to", "amount"}),
                        TableConfig{});
  Table* accounts = db->GetTable("accounts");
  Table* audit = db->GetTable("audit");
  {
    Txn txn = db->Begin();
    for (Value id = 0; id < 4; ++id) (void)accounts->Insert(txn, {id, 1000});
    txn.Commit();
  }

  // --- 2. Healthy traffic, checkpointed (log prefix -> archive) ---------
  for (Value i = 0; i < 8; ++i) {
    Transfer(db.get(), accounts, audit, i % 4, (i + 1) % 4, 10 + i, i);
  }
  (void)db->Checkpoint();  // seals <dir>/archive/*.arc + MANIFEST.1
  std::printf("healthy: balances %lld %lld %lld %lld\n",
              (long long)Balance(accounts, 0), (long long)Balance(accounts, 1),
              (long long)Balance(accounts, 2), (long long)Balance(accounts, 3));

  // The restore point: everything committed up to HERE is the state we
  // will want back. Now() - 1 is the newest commit time.
  Timestamp before_incident = db->Now() - 1;

  // --- 3. The incident: a bad deploy drains account 0 -------------------
  for (Value i = 8; i < 16; ++i) {
    Transfer(db.get(), accounts, audit, 0, 1 + (i % 3), /*amount=*/100, i);
  }
  (void)db->Checkpoint();  // a second cycle: archives now span history
  std::printf("incident: balances %lld %lld %lld %lld\n",
              (long long)Balance(accounts, 0), (long long)Balance(accounts, 1),
              (long long)Balance(accounts, 2), (long long)Balance(accounts, 3));
  db.reset();  // stop the writer before restoring from its directory

  // --- 4. Rewind: restore the pre-incident commit point -----------------
  // RestoreToPoint stitches archived + live log segments into one
  // LSN-continuous stream per table, replays the commit log into an
  // outcome map truncated at the point, and lands on the exact
  // cross-table-consistent state: every transfer is in BOTH tables or
  // in neither.
  std::unique_ptr<Database> rewound;
  Status s = Database::RestoreToPoint(
      dir, RestorePoint::AtTime(before_incident), &rewound);
  if (!s.ok()) {
    std::printf("restore failed: %s\n", s.ToString().c_str());
    return 1;
  }
  Table* racc = rewound->GetTable("accounts");
  Table* raud = rewound->GetTable("audit");
  std::printf("rewound: balances %lld %lld %lld %lld\n",
              (long long)Balance(racc, 0), (long long)Balance(racc, 1),
              (long long)Balance(racc, 2), (long long)Balance(racc, 3));
  uint64_t audit_rows = 0;
  (void)raud->NewQuery().Count(&audit_rows);
  std::printf("rewound: audit has %llu entries (the 8 healthy transfers)\n",
              (unsigned long long)audit_rows);

  // Sanity for the demo: total money is conserved in every timeline,
  // and the rewound audit ledger matches the rewound balances.
  Value total = Balance(racc, 0) + Balance(racc, 1) + Balance(racc, 2) +
                Balance(racc, 3);
  if (total != 4000 || audit_rows != 8) {
    std::printf("UNEXPECTED state after restore\n");
    return 1;
  }
  std::printf("ok: restore landed on the exact pre-incident state\n");
  std::filesystem::remove_all(dir);
  return 0;
}
