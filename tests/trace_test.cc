// Request-scoped tracing tests (src/obs/span.h, flight_recorder.h,
// and the wire propagation through src/server/): ring wraparound is
// exact (retains the newest spans, counts the overwritten ones),
// concurrent writers against a snapshotting reader are torn-read-free
// (the TSan target), a trace id stamped on the client survives the
// pipelined path with out-of-order awaits and comes back attached to
// the right request's spans, the slow-op log emits the documented
// line schema, and — backward compatibility — frames without the
// trace field still parse while a truncated flagged header gets an
// error response without desyncing the stream.
//
// Every behavioral case branches on kTraceEnabled so the whole suite
// is meaningful (and green) under LSTORE_TRACING=OFF too: the OFF
// expectations (empty snapshots, zero ids, no slow-op log) are
// asserted instead of skipped.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/table.h"
#include "log/framed_log.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"

namespace lstore {
namespace {

namespace fs = std::filesystem;

// --- ring exactness --------------------------------------------------------

TEST(FlightRecorderTest, WraparoundRetainsNewestAndCountsDropped) {
  if (!kTraceEnabled) {
    FlightRecorder& rec = FlightRecorder::Instance();
    rec.Record(1, "a", 0, 1);
    EXPECT_TRUE(rec.Snapshot().empty());
    EXPECT_EQ(rec.recorded(), 0u);
    EXPECT_EQ(rec.dropped(), 0u);
    return;
  }
  FlightRecorder rec(8);
  ASSERT_EQ(rec.ring_capacity(), 8u);

  for (uint64_t i = 1; i <= 8; ++i) rec.Record(i, "span", i * 100, 10);
  EXPECT_EQ(rec.recorded(), 8u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.Snapshot().size(), 8u);

  // Five more wrap the ring: exactly the newest 8 survive (6..13),
  // exactly 5 were overwritten.
  for (uint64_t i = 9; i <= 13; ++i) rec.Record(i, "span", i * 100, 10);
  EXPECT_EQ(rec.recorded(), 13u);
  EXPECT_EQ(rec.dropped(), 5u);
  std::vector<TraceSpan> spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 8u);
  for (size_t i = 0; i < spans.size(); ++i) {
    // Snapshot sorts by t0, and t0 here encodes the record order.
    EXPECT_EQ(spans[i].trace_id, 6 + i);
    EXPECT_EQ(spans[i].t0_ns, (6 + i) * 100);
    EXPECT_STREQ(spans[i].name, "span");
  }
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  if (!kTraceEnabled) return;
  EXPECT_EQ(FlightRecorder(5).ring_capacity(), 8u);
  EXPECT_EQ(FlightRecorder(1).ring_capacity(), 2u);
  EXPECT_EQ(FlightRecorder(16).ring_capacity(), 16u);
}

// --- concurrent writers vs snapshots (the TSan target) ---------------------

TEST(FlightRecorderTest, ConcurrentWritersNeverTearUnderSnapshots) {
  if (!kTraceEnabled) return;
  constexpr uint32_t kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  constexpr size_t kCap = 64;
  FlightRecorder rec(kCap);

  // Each span's fields are derived from its trace id, so any torn
  // read (fields from two different writes) is detectable. The start
  // barrier makes the writers actually overlap — without it a fast
  // writer can finish (and release its ring for reuse) before the
  // next one starts, and nothing races.
  std::atomic<bool> stop{false};
  std::atomic<uint32_t> ready{0};
  std::vector<std::thread> writers;
  for (uint32_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&rec, &ready, t]() {
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (ready.load(std::memory_order_acquire) < kThreads) {
      }
      for (uint64_t i = 0; i < kPerThread; ++i) {
        uint64_t id = (uint64_t{t + 1} << 32) | i;
        rec.Record(id, "w", id * 3, id * 7);
      }
    });
  }
  std::thread reader([&rec, &stop]() {
    while (!stop.load(std::memory_order_acquire)) {
      for (const TraceSpan& s : rec.Snapshot()) {
        ASSERT_EQ(s.t0_ns, s.trace_id * 3);
        ASSERT_EQ(s.dur_ns, s.trace_id * 7);
        ASSERT_STREQ(s.name, "w");
      }
    }
  });
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(rec.recorded(), kThreads * kPerThread);
  // A thread that finishes early releases its ring for reuse, so the
  // ring count (and thus the exact drop split) is scheduling-
  // dependent; the conservation law is not: every recorded span was
  // either retained or counted dropped.
  std::vector<TraceSpan> final_spans = rec.Snapshot();
  EXPECT_EQ(rec.recorded() - rec.dropped(), final_spans.size());
  EXPECT_GE(final_spans.size(), kCap);  // at least one full ring
  for (const TraceSpan& s : final_spans) {
    // Whatever ring a span landed in, it is among its writer's newest
    // kCap (a ring holds one thread's spans at a time; reuse resets
    // nothing but the writer).
    EXPECT_GE(s.trace_id & 0xffffffffu, kPerThread - kCap);
  }
}

// --- span scoping ----------------------------------------------------------

TEST(SpanScopeTest, ScopePropagatesAndRestores) {
  uint64_t id = TraceContext::NewTraceId();
  if (!kTraceEnabled) {
    EXPECT_EQ(id, 0u);
    EXPECT_EQ(TraceContext::Current(), 0u);
    return;
  }
  EXPECT_NE(id, 0u);
  EXPECT_EQ(TraceContext::Current(), 0u);
  {
    TraceContext::Scope outer(id);
    EXPECT_EQ(TraceContext::Current(), id);
    {
      TraceContext::Scope inner(0);  // deliberate clear
      EXPECT_EQ(TraceContext::Current(), 0u);
    }
    EXPECT_EQ(TraceContext::Current(), id);
  }
  EXPECT_EQ(TraceContext::Current(), 0u);
}

// --- wire round-trip with out-of-order awaits ------------------------------

TEST(TraceWireTest, StampedIdsSurvivePipelinedOutOfOrderAwaits) {
  Database db;
  Schema schema(3);
  ASSERT_TRUE(db.CreateTable("t", schema, {}).ok());
  Table* table = db.GetTable("t");
  {
    Txn txn = db.Begin();
    for (uint64_t k = 0; k < 16; ++k) {
      ASSERT_TRUE(table->Insert(txn, {k, k + 1, k + 2}).ok());
    }
    ASSERT_TRUE(txn.Commit().ok());
  }
  Server server(&db, {});
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // Four stamped reads in flight at once, awaited in reverse order.
  constexpr size_t kN = 4;
  uint64_t trace_ids[kN];
  RequestId req_ids[kN];
  for (size_t i = 0; i < kN; ++i) {
    trace_ids[i] = kTraceEnabled ? TraceContext::NewTraceId() : uint64_t{0};
    client.set_next_trace_id(trace_ids[i]);
    ASSERT_TRUE(client.SubmitRead("t", i, ~0ull, &req_ids[i]).ok());
  }
  for (size_t i = kN; i-- > 0;) {
    std::vector<Value> row;
    ASSERT_TRUE(client.AwaitRead(req_ids[i], &row).ok());
    ASSERT_EQ(row.size(), 3u);
    EXPECT_EQ(row[0], i);
  }

  FlightRecorder& rec = FlightRecorder::Instance();
  if (!kTraceEnabled) {
    EXPECT_TRUE(rec.Snapshot().empty());
  } else {
    for (size_t i = 0; i < kN; ++i) {
      // The root span lands AFTER the reply is sent (it covers the reply
      // stage), so a completed Await does not imply it is in the ring yet —
      // poll briefly before asserting.
      std::vector<TraceSpan> spans;
      size_t roots = 0;
      bool saw_execute = false, saw_queue_wait = false, saw_decode = false;
      for (int attempt = 0; attempt < 400; ++attempt) {
        spans = rec.SnapshotTrace(trace_ids[i]);
        // Every stamped request produced its full server-side timeline,
        // attributed to ITS id despite the out-of-order completion.
        roots = 0;
        saw_execute = saw_queue_wait = saw_decode = false;
        for (const TraceSpan& s : spans) {
          if (std::string(s.name) == "request") ++roots;
          if (std::string(s.name) == "execute") saw_execute = true;
          if (std::string(s.name) == "queue_wait") saw_queue_wait = true;
          if (std::string(s.name) == "decode") saw_decode = true;
        }
        if (roots == 1 && saw_execute && saw_queue_wait && saw_decode) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      EXPECT_EQ(roots, 1u) << "trace " << trace_ids[i];
      EXPECT_TRUE(saw_execute);
      EXPECT_TRUE(saw_queue_wait);
      EXPECT_TRUE(saw_decode);
    }
    // An unstamped request records nothing: id 0 never hits a ring.
    for (const TraceSpan& s : rec.Snapshot()) EXPECT_NE(s.trace_id, 0u);
  }

  // The TRACE op returns the recorder as Chrome trace JSON in every
  // build (empty event list under OFF).
  std::string json;
  ASSERT_TRUE(client.Trace(&json).ok());
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", 0), 0u);
  if (kTraceEnabled) {
    EXPECT_NE(json.find("\"request\""), std::string::npos);
  } else {
    EXPECT_EQ(json, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}");
  }

  server.Stop();
}

// --- slow-op log -----------------------------------------------------------

TEST(SlowOpLogTest, SlowTracedRequestDumpsDocumentedSchema) {
  std::string dir = std::string(::testing::TempDir()) + "lstore_trace_slow_" +
                    std::to_string(::getpid());
  fs::remove_all(dir);
  {
    DurabilityOptions opts;
    opts.slow_op_threshold_us = 1;  // everything traced is "slow"
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(dir, opts, &db).ok());
    ASSERT_TRUE(db->CreateTable("t", Schema(2), {}).ok());

    Server server(db.get(), {});
    ASSERT_TRUE(server.Start().ok());
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

    client.set_next_trace_id(TraceContext::NewTraceId());
    ASSERT_TRUE(client.Insert("t", {1, 2}).ok());
    // Untraced requests never dump, whatever their latency.
    ASSERT_TRUE(client.Insert("t", {2, 3}).ok());

    if (kTraceEnabled) {
      std::string prom;
      ASSERT_TRUE(client.Metrics(&prom).ok());
      EXPECT_NE(prom.find("lstore_server_slow_ops_total 1"),
                std::string::npos);
    }
    server.Stop();
  }

  std::ifstream log(dir + "/slowops.log");
  if (!kTraceEnabled) {
    EXPECT_FALSE(log.is_open());  // never created under OFF
  } else {
    ASSERT_TRUE(log.is_open());
    std::string line;
    size_t lines = 0;
    while (std::getline(log, line)) {
      ++lines;
      EXPECT_EQ(line.rfind("{\"ts_ms\":", 0), 0u) << line;
      EXPECT_NE(line.find("\"op\":\"insert\""), std::string::npos) << line;
      EXPECT_NE(line.find("\"request_id\":"), std::string::npos) << line;
      EXPECT_NE(line.find("\"trace_id\":\"0x"), std::string::npos) << line;
      EXPECT_NE(line.find("\"total_us\":"), std::string::npos) << line;
      EXPECT_NE(line.find("\"spans\":[{\"name\":\""), std::string::npos)
          << line;
      EXPECT_EQ(line.substr(line.size() - 3), "}]}") << line;
      // The dump includes the root span of its own request.
      EXPECT_NE(line.find("\"name\":\"request\""), std::string::npos) << line;
    }
    EXPECT_EQ(lines, 1u);  // one traced request, one line
  }
  fs::remove_all(dir);
}

// --- wire backward compatibility -------------------------------------------

int RawConnect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void SendRaw(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

/// Frame a payload exactly as wire::WriteFrame does.
std::string Frame(const std::string& payload) {
  std::string f;
  wire::PutU32(&f, static_cast<uint32_t>(payload.size()));
  f.append(payload);
  wire::PutU32(&f, Fnv1a32(payload.data(), payload.size()));
  return f;
}

bool ReadResponse(int fd, uint32_t* id, uint8_t* code) {
  std::string payload;
  if (!wire::ReadFrame(fd, wire::kDefaultMaxFrameBytes, &payload).ok()) {
    return false;
  }
  wire::Reader in(payload);
  std::string msg;
  return in.U32(id) && in.U8(code) && in.String(&msg);
}

TEST(TraceWireTest, OldFramesParseAndTruncatedTraceHeaderDoesNotDesync) {
  Database db;
  Server server(&db, {});
  ASSERT_TRUE(server.Start().ok());
  int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);

  uint32_t id;
  uint8_t code;

  // 1. Pre-tracing frame shape — [id][op], no trace field — still OK.
  {
    std::string p;
    wire::PutU32(&p, 7);
    wire::PutU8(&p, static_cast<uint8_t>(wire::Op::kPing));
    SendRaw(fd, Frame(p));
    ASSERT_TRUE(ReadResponse(fd, &id, &code));
    EXPECT_EQ(id, 7u);
    EXPECT_EQ(code, 0);
  }

  // 2. Flagged op with a full 8-byte trace id — OK in every build
  //    (an OFF-build server skips the id without recording).
  {
    std::string p;
    wire::PutU32(&p, 8);
    wire::PutU8(&p,
                static_cast<uint8_t>(wire::Op::kPing) | wire::kTracedOpFlag);
    wire::PutU64(&p, 0xabcdef);
    SendRaw(fd, Frame(p));
    ASSERT_TRUE(ReadResponse(fd, &id, &code));
    EXPECT_EQ(id, 8u);
    EXPECT_EQ(code, 0);
  }

  // 3. Flagged op with a TRUNCATED trace id — an error response, not
  //    a hang or a desync.
  {
    std::string p;
    wire::PutU32(&p, 9);
    wire::PutU8(&p,
                static_cast<uint8_t>(wire::Op::kPing) | wire::kTracedOpFlag);
    wire::PutU32(&p, 0xdead);  // only 4 of the 8 id bytes
    SendRaw(fd, Frame(p));
    ASSERT_TRUE(ReadResponse(fd, &id, &code));
    EXPECT_EQ(id, 9u);
    EXPECT_NE(code, 0);
  }

  // 4. The stream is still in sync: a normal request succeeds.
  {
    std::string p;
    wire::PutU32(&p, 10);
    wire::PutU8(&p, static_cast<uint8_t>(wire::Op::kPing));
    SendRaw(fd, Frame(p));
    ASSERT_TRUE(ReadResponse(fd, &id, &code));
    EXPECT_EQ(id, 10u);
    EXPECT_EQ(code, 0);
  }

  ::close(fd);
  server.Stop();
}

}  // namespace
}  // namespace lstore
