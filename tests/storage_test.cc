// Tests for pages, the lazy page list, and the tail segment
// (Sections 2.1/2.2: append-only tail pages with lazily allocated,
// aligned columns pre-filled with the special null value).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "storage/page.h"
#include "storage/tail_segment.h"

namespace lstore {
namespace {

TEST(PageTest, FillValueIsSpecialNull) {
  Page page(64);
  for (uint32_t i = 0; i < 64; ++i) EXPECT_EQ(page.Get(i), kNull);
}

TEST(PageTest, SetGetRoundTrip) {
  Page page(16, 0);
  page.Set(3, 12345);
  EXPECT_EQ(page.Get(3), 12345u);
  EXPECT_EQ(page.Get(4), 0u);
}

TEST(PageTest, CompareAndSwap) {
  Page page(4, 7);
  Value expected = 7;
  EXPECT_TRUE(page.CompareAndSwap(0, expected, 9));
  EXPECT_EQ(page.Get(0), 9u);
  expected = 7;
  EXPECT_FALSE(page.CompareAndSwap(0, expected, 11));
  EXPECT_EQ(expected, 9u);
}

TEST(LazyPageListTest, AbsentPagesReadAsNull) {
  LazyPageList list;
  EXPECT_EQ(list.GetPage(0), nullptr);
  EXPECT_EQ(list.GetPage(1000), nullptr);
}

TEST(LazyPageListTest, EnsureAllocatesOnce) {
  LazyPageList list;
  Page* a = list.EnsurePage(5, 64);
  Page* b = list.EnsurePage(5, 64);
  EXPECT_EQ(a, b);
  EXPECT_EQ(list.allocated_pages(), 1u);
  EXPECT_EQ(list.GetPage(4), nullptr);
}

TEST(LazyPageListTest, GrowthPreservesEarlierPages) {
  LazyPageList list;
  Page* a = list.EnsurePage(0, 8);
  a->Set(0, 42);
  list.EnsurePage(1000, 8);  // forces directory growth
  EXPECT_EQ(list.GetPage(0), a);
  EXPECT_EQ(list.GetPage(0)->Get(0), 42u);
}

TEST(LazyPageListTest, DropPagesBelowFreesPrefixOnly) {
  LazyPageList list;
  for (uint32_t i = 0; i < 10; ++i) list.EnsurePage(i, 8);
  list.DropPagesBelow(5);
  for (uint32_t i = 0; i < 5; ++i) EXPECT_EQ(list.GetPage(i), nullptr);
  for (uint32_t i = 5; i < 10; ++i) EXPECT_NE(list.GetPage(i), nullptr);
}

TEST(TailSegmentTest, SequenceStartsAtOne) {
  TailSegment seg(4, 16);
  EXPECT_EQ(seg.LastSeq(), 0u);
  EXPECT_EQ(seg.ReserveSeq(), 1u);
  EXPECT_EQ(seg.ReserveSeq(), 2u);
  EXPECT_EQ(seg.LastSeq(), 2u);
}

TEST(TailSegmentTest, UnmaterializedColumnsReadAsNull) {
  // Section 2.1: "non-updated columns are preassigned a special null
  // value when a page is first allocated" — and columns never touched
  // are not materialized at all.
  TailSegment seg(4, 16);
  uint32_t seq = seg.ReserveSeq();
  seg.Write(seq, kTailMetaColumns + 1, 99);  // touch only column 1
  EXPECT_EQ(seg.Read(seq, kTailMetaColumns + 1), 99u);
  EXPECT_EQ(seg.Read(seq, kTailMetaColumns + 0), kNull);
  EXPECT_EQ(seg.Read(seq, kTailMetaColumns + 3), kNull);
}

TEST(TailSegmentTest, LazyAllocationCountsPages) {
  TailSegment seg(4, 16);
  EXPECT_EQ(seg.allocated_pages(), 0u);
  uint32_t seq = seg.ReserveSeq();
  seg.Write(seq, kTailMetaColumns + 2, 1);
  EXPECT_EQ(seg.allocated_pages(), 1u);  // only the touched column
}

TEST(TailSegmentTest, RecordsSpanAlignedColumns) {
  TailSegment seg(2, 4);  // tiny pages to cross boundaries
  for (int i = 0; i < 20; ++i) {
    uint32_t seq = seg.ReserveSeq();
    seg.Write(seq, kTailMetaColumns + 0, seq * 10);
    seg.Write(seq, kTailMetaColumns + 1, seq * 100);
    seg.Write(seq, kTailBaseRid, seq);
  }
  for (uint32_t seq = 1; seq <= 20; ++seq) {
    EXPECT_EQ(seg.Read(seq, kTailMetaColumns + 0), seq * 10);
    EXPECT_EQ(seg.Read(seq, kTailMetaColumns + 1), seq * 100);
    EXPECT_EQ(seg.Read(seq, kTailBaseRid), seq);
  }
}

TEST(TailSegmentTest, StartTimeSlotIsAtomic) {
  TailSegment seg(1, 8);
  uint32_t seq = seg.ReserveSeq();
  std::atomic<Value>* slot = seg.StartTimeSlot(seq);
  slot->store(123, std::memory_order_release);
  EXPECT_EQ(seg.Read(seq, kTailStartTime), 123u);
}

TEST(TailSegmentTest, AdvanceSeqForRecovery) {
  TailSegment seg(1, 8);
  seg.AdvanceSeq(50);
  EXPECT_EQ(seg.LastSeq(), 50u);
  seg.AdvanceSeq(10);  // never regresses
  EXPECT_EQ(seg.LastSeq(), 50u);
  EXPECT_EQ(seg.ReserveSeq(), 51u);
}

TEST(TailSegmentTest, DropRecordsBelowKeepsPartialPages) {
  TailSegment seg(1, 4);
  for (int i = 0; i < 12; ++i) {
    uint32_t seq = seg.ReserveSeq();
    seg.Write(seq, kTailMetaColumns, seq);
  }
  // Keep from seq 6: page 0 (seqs 1-4) dropped; page 1 (5-8) kept
  // because it holds seq >= 6.
  seg.DropRecordsBelow(6);
  EXPECT_EQ(seg.Read(2, kTailMetaColumns), kNull);
  EXPECT_EQ(seg.Read(6, kTailMetaColumns), 6u);
  EXPECT_EQ(seg.Read(12, kTailMetaColumns), 12u);
}

TEST(TailSegmentTest, ConcurrentAppendsGetDistinctSlots) {
  TailSegment seg(2, 64);
  constexpr int kThreads = 4, kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        uint32_t seq = seg.ReserveSeq();
        seg.Write(seq, kTailMetaColumns, static_cast<uint64_t>(t) << 32 | seq);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(seg.LastSeq(), static_cast<uint32_t>(kThreads * kPerThread));
  for (uint32_t seq = 1; seq <= seg.LastSeq(); ++seq) {
    Value v = seg.Read(seq, kTailMetaColumns);
    ASSERT_NE(v, kNull);
    EXPECT_EQ(v & 0xFFFFFFFFu, seq);  // write-once: no torn slots
  }
}

}  // namespace
}  // namespace lstore
