// Parameterized MVCC property sweeps on the L-Store table: randomized
// concurrent workloads checked against global invariants —
//  * no dirty reads (only committed values are ever observed),
//  * snapshot-sum conservation under balanced transfers,
//  * monotone visibility (committed writes eventually observed),
//  * abort atomicity.
// Swept across contention levels, thread counts, and merge settings.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/random.h"
#include "core/query.h"
#include "core/table.h"

namespace lstore {
namespace {

struct PropertyCase {
  const char* name;
  uint64_t rows;        // active set
  int writers;
  bool merge_thread;
  uint32_t merge_threshold;
  int duration_ms;
};

class MvccProperty : public ::testing::TestWithParam<PropertyCase> {
 protected:
  static TableConfig MakeConfig(const PropertyCase& p) {
    TableConfig cfg;
    cfg.range_size = 128;
    cfg.insert_range_size = 128;
    cfg.tail_page_slots = 32;
    cfg.merge_threshold = p.merge_threshold;
    cfg.enable_merge_thread = p.merge_thread;
    return cfg;
  }
};

// Writers only ever commit values that are multiples of 1000; any
// other observed value is a dirty or torn read.
TEST_P(MvccProperty, NoDirtyOrTornReads) {
  const PropertyCase& p = GetParam();
  Table table("t", Schema(3), MakeConfig(p));
  {
    Txn txn = table.Begin();
    for (Value k = 0; k < p.rows; ++k) {
      ASSERT_TRUE(table.Insert(txn, {k, 0, 0}).ok());
    }
    ASSERT_TRUE(txn.Commit().ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < p.writers; ++t) {
    threads.emplace_back([&, t] {
      Random rng(100 + t);
      while (!stop.load()) {
        Txn txn = table.Begin();
        Value key = rng.Uniform(p.rows);
        // Write a non-multiple first, then fix it before committing:
        // intermediate state must never leak.
        std::vector<Value> row(3, 0);
        row[1] = rng.Uniform(1000) * 1000 + 7;  // dirty value
        if (!table.Update(txn, key, 0b010, row).ok()) {
          txn.Abort();
          continue;
        }
        row[1] = rng.Uniform(1000) * 1000;  // clean value
        if (!table.Update(txn, key, 0b010, row).ok()) {
          txn.Abort();
          continue;
        }
        if (rng.Percent(20)) {
          txn.Abort();  // aborted txns leak nothing either
        } else {
          (void)txn.Commit();
        }
      }
    });
  }
  // Readers.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(p.duration_ms);
  Random rng(7);
  while (std::chrono::steady_clock::now() < deadline) {
    Txn txn = table.Begin();
    std::vector<Value> out;
    Value key = rng.Uniform(p.rows);
    if (table.Read(txn, key, 0b010, &out).ok()) {
      if (out[1] % 1000 != 0) violation = true;
    }
    (void)txn.Commit();
  }
  stop = true;
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violation.load()) << "observed an uncommitted value";
}

// Balanced transfers under serializable isolation: every snapshot sum
// equals the initial total.
TEST_P(MvccProperty, SnapshotSumConservation) {
  const PropertyCase& p = GetParam();
  Table table("t", Schema(3), MakeConfig(p));
  constexpr Value kInitial = 10000;
  {
    Txn txn = table.Begin();
    for (Value k = 0; k < p.rows; ++k) {
      ASSERT_TRUE(table.Insert(txn, {k, kInitial, 0}).ok());
    }
    ASSERT_TRUE(txn.Commit().ok());
  }
  const uint64_t expected = p.rows * kInitial;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < p.writers; ++t) {
    threads.emplace_back([&, t] {
      Random rng(200 + t);
      while (!stop.load()) {
        Value from = rng.Uniform(p.rows), to = rng.Uniform(p.rows);
        if (from == to) continue;
        Txn txn = table.Begin(IsolationLevel::kSerializable);
        std::vector<Value> a, b;
        if (!table.Read(txn, from, 0b010, &a).ok() ||
            !table.Read(txn, to, 0b010, &b).ok()) {
          txn.Abort();
          continue;
        }
        Value amount = 1 + rng.Uniform(100);
        if (a[1] < amount) {
          txn.Abort();
          continue;
        }
        std::vector<Value> row(3, 0);
        row[1] = a[1] - amount;
        if (!table.Update(txn, from, 0b010, row).ok()) {
          txn.Abort();
          continue;
        }
        row[1] = b[1] + amount;
        if (!table.Update(txn, to, 0b010, row).ok()) {
          txn.Abort();
          continue;
        }
        if (txn.Commit().ok()) committed.fetch_add(1);
      }
    });
  }
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(p.duration_ms);
  int scans = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    uint64_t sum = 0;
    ASSERT_TRUE(table.NewQuery().Sum(1, &sum).ok());
    EXPECT_EQ(sum, expected) << "scan " << scans;
    ++scans;
  }
  stop = true;
  for (auto& th : threads) th.join();
  table.WaitForMergeQueue();
  table.FlushAll();
  uint64_t final_sum = 0;
  ASSERT_TRUE(table.NewQuery().Sum(1, &final_sum).ok());
  EXPECT_EQ(final_sum, expected);
  EXPECT_GT(committed.load(), 0u);
  EXPECT_GT(scans, 0);
}

// Committed increments are never lost, even with merges racing.
TEST_P(MvccProperty, CommittedIncrementsNeverLost) {
  const PropertyCase& p = GetParam();
  Table table("t", Schema(3), MakeConfig(p));
  {
    Txn txn = table.Begin();
    for (Value k = 0; k < p.rows; ++k) {
      ASSERT_TRUE(table.Insert(txn, {k, 0, 0}).ok());
    }
    ASSERT_TRUE(txn.Commit().ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_added{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < p.writers; ++t) {
    threads.emplace_back([&, t] {
      Random rng(300 + t);
      while (!stop.load()) {
        Value key = rng.Uniform(p.rows);
        Txn txn = table.Begin(IsolationLevel::kSerializable);
        std::vector<Value> out;
        if (!table.Read(txn, key, 0b010, &out).ok()) {
          txn.Abort();
          continue;
        }
        std::vector<Value> row(3, 0);
        Value inc = 1 + rng.Uniform(9);
        row[1] = out[1] + inc;
        if (!table.Update(txn, key, 0b010, row).ok()) {
          txn.Abort();
          continue;
        }
        if (txn.Commit().ok()) {
          total_added.fetch_add(inc);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(p.duration_ms));
  stop = true;
  for (auto& th : threads) th.join();
  table.WaitForMergeQueue();
  table.FlushAll();
  uint64_t sum = 0;
  ASSERT_TRUE(table.NewQuery().Sum(1, &sum).ok());
  EXPECT_EQ(sum, total_added.load());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MvccProperty,
    ::testing::Values(
        PropertyCase{"low_contention", 512, 2, true, 64, 250},
        PropertyCase{"high_contention", 16, 3, true, 32, 250},
        PropertyCase{"no_merge", 64, 2, false, 1u << 30, 200},
        PropertyCase{"eager_merge", 64, 2, true, 8, 250}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace lstore
