// Batched point operations (MultiRead / InsertBatch / UpdateBatch)
// and RAII session semantics: amortized index probes, ONE redo-log
// frame per batch (verified at the frame level and through recovery),
// auto-abort on scope exit, and the unified commit pipeline.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/database.h"
#include "core/query.h"
#include "core/table.h"
#include "log/redo_log.h"
#include "storage/compression/varint.h"

namespace lstore {
namespace {

TableConfig SmallConfig() {
  TableConfig cfg;
  cfg.range_size = 64;
  cfg.insert_range_size = 64;
  cfg.tail_page_slots = 16;
  cfg.merge_threshold = 1u << 30;
  cfg.enable_merge_thread = false;
  return cfg;
}

class BatchTest : public ::testing::Test {
 protected:
  BatchTest() : table_("b", Schema(3), SmallConfig()) {
    Txn txn = table_.Begin();
    std::vector<std::vector<Value>> rows;
    for (Value k = 0; k < 100; ++k) rows.push_back({k, k * 10, 7});
    EXPECT_TRUE(table_.InsertBatch(txn, rows).ok());
    EXPECT_TRUE(txn.Commit().ok());
  }

  Table table_;
};

TEST_F(BatchTest, MultiReadReturnsEveryRow) {
  Txn txn = table_.Begin();
  std::vector<Value> keys = {5, 99, 0, 42};
  std::vector<std::vector<Value>> rows;
  std::vector<Status> statuses;
  ASSERT_TRUE(table_.MultiRead(txn, keys, 0b011, &rows, &statuses).ok());
  ASSERT_EQ(rows.size(), 4u);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(statuses[i].ok());
    EXPECT_EQ(rows[i][0], keys[i]);
    EXPECT_EQ(rows[i][1], keys[i] * 10);
  }
  ASSERT_TRUE(txn.Commit().ok());
}

TEST_F(BatchTest, MultiReadReportsMissesIndividually) {
  Txn txn = table_.Begin();
  std::vector<std::vector<Value>> rows;
  std::vector<Status> statuses;
  Status s = table_.MultiRead(txn, {50, 777, 51}, 0b010, &rows, &statuses);
  EXPECT_TRUE(s.IsNotFound());  // first error surfaces
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_TRUE(statuses[1].IsNotFound());
  EXPECT_TRUE(statuses[2].ok());  // reads continue past the miss
  EXPECT_TRUE(rows[1].empty());
  EXPECT_EQ(rows[2][1], 510u);
}

TEST_F(BatchTest, UpdateBatchAppliesAllRows) {
  Txn txn = table_.Begin();
  std::vector<Value> keys;
  std::vector<std::vector<Value>> rows;
  for (Value k = 10; k < 20; ++k) {
    keys.push_back(k);
    rows.push_back({0, k * 1000, 0});
  }
  ASSERT_TRUE(table_.UpdateBatch(txn, keys, 0b010, rows).ok());
  ASSERT_TRUE(txn.Commit().ok());
  Txn check = table_.Begin();
  std::vector<std::vector<Value>> out;
  ASSERT_TRUE(table_.MultiRead(check, keys, 0b010, &out).ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(out[i][1], keys[i] * 1000);
  }
  ASSERT_TRUE(check.Commit().ok());
}

TEST_F(BatchTest, UpdateBatchValidatesMaskOnce) {
  Txn txn = table_.Begin();
  EXPECT_TRUE(table_.UpdateBatch(txn, {1}, 0b001, {{9, 9, 9}})
                  .IsInvalidArgument());  // key column
  EXPECT_TRUE(
      table_.UpdateBatch(txn, {1, 2}, 0b010, {{0, 1, 0}})
          .IsInvalidArgument());  // keys/rows count mismatch
  EXPECT_TRUE(table_.UpdateBatch(txn, {1}, 0b010, {{0, 1}})
                  .IsInvalidArgument());  // short row, masked col OOB
  EXPECT_TRUE(
      table_.Update(txn, 1, 0b010, {0}).IsInvalidArgument());  // same, single
}

TEST_F(BatchTest, DeleteBatchRemovesAllRows) {
  Txn txn = table_.Begin();
  std::vector<Value> keys;
  for (Value k = 30; k < 45; ++k) keys.push_back(k);
  ASSERT_TRUE(table_.DeleteBatch(txn, keys).ok());
  // Deleted rows vanish for the deleter immediately...
  std::vector<Value> out;
  EXPECT_TRUE(table_.Read(txn, 31, 0b010, &out).IsNotFound());
  ASSERT_TRUE(txn.Commit().ok());
  // ...and for everyone after commit; the rest of the table survives.
  Txn check = table_.Begin();
  std::vector<std::vector<Value>> rows;
  std::vector<Status> statuses;
  Status s = table_.MultiRead(check, keys, 0b010, &rows, &statuses);
  EXPECT_TRUE(s.IsNotFound());
  for (const Status& st : statuses) EXPECT_TRUE(st.IsNotFound());
  uint64_t count = 0;
  ASSERT_TRUE(table_.NewQuery().Count(&count).ok());
  EXPECT_EQ(count, 100u - keys.size());
  ASSERT_TRUE(check.Commit().ok());
}

TEST_F(BatchTest, DeleteBatchStopsAtMissingKey) {
  Txn txn = table_.Begin();
  EXPECT_TRUE(table_.DeleteBatch(txn, {50, 51, 777, 52}).IsNotFound());
  ASSERT_TRUE(txn.Commit().ok());
  // Keys before the failure committed as deletes; 52 survived.
  Txn check = table_.Begin();
  std::vector<Value> out;
  EXPECT_TRUE(table_.Read(check, 50, 0b010, &out).IsNotFound());
  EXPECT_TRUE(table_.Read(check, 51, 0b010, &out).IsNotFound());
  EXPECT_TRUE(table_.Read(check, 52, 0b010, &out).ok());
  ASSERT_TRUE(check.Commit().ok());
}

TEST(BatchLogTest, DeleteBatchProducesOneFrameAndReplays) {
  std::string path = "/tmp/lstore_delete_batch_log_test.log";
  std::remove(path.c_str());
  TableConfig cfg = SmallConfig();
  cfg.enable_logging = true;
  cfg.log_path = path;
  {
    Table table("b", Schema(3), cfg);
    Txn load = table.Begin();
    std::vector<std::vector<Value>> rows;
    for (Value k = 0; k < 20; ++k) rows.push_back({k, k + 1, 0});
    ASSERT_TRUE(table.InsertBatch(load, rows).ok());
    ASSERT_TRUE(load.Commit().ok());
    Txn txn = table.Begin();
    ASSERT_TRUE(table.DeleteBatch(txn, {0, 1, 2, 3, 4}).ok());
    ASSERT_TRUE(txn.Commit().ok());
    EXPECT_EQ(table.stats().deletes.load(), 5u);
  }
  // Physical framing: insert batch + commit + delete batch + commit =
  // exactly FOUR frames (one latch/log envelope per batch).
  {
    std::string data;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char chunk[4096];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      data.append(chunk, n);
    }
    std::fclose(f);
    size_t frames = 0, pos = 0;
    while (pos < data.size()) {
      uint64_t len = 0;
      ASSERT_TRUE(GetVarint64(data, &pos, &len));
      pos += len + sizeof(uint32_t);  // payload + checksum
      ++frames;
    }
    EXPECT_EQ(frames, 4u);
  }
  // Recovery replays the batched deletes.
  Table recovered("b", Schema(3), cfg);
  ASSERT_TRUE(recovered.RecoverFromLog().ok());
  uint64_t count = 0;
  ASSERT_TRUE(recovered.NewQuery().Count(&count).ok());
  EXPECT_EQ(count, 15u);
  std::vector<Value> out;
  Txn check = recovered.Begin();
  EXPECT_TRUE(recovered.Read(check, 3, 0b010, &out).IsNotFound());
  EXPECT_TRUE(recovered.Read(check, 5, 0b010, &out).ok());
  ASSERT_TRUE(check.Commit().ok());
  std::remove(path.c_str());
}

TEST_F(BatchTest, ForeignHostSessionsAreRejected) {
  Table other("other", Schema(3), SmallConfig());
  Txn foreign = other.Begin();
  std::vector<Value> out;
  EXPECT_TRUE(table_.Read(foreign, 1, 0b010, &out).IsInvalidArgument());
  EXPECT_TRUE(table_.Insert(foreign, {900, 1, 2}).IsInvalidArgument());
  // Database-begun sessions remain valid on member tables (the scope
  // check allows the owning database as host).
  Database db;
  ASSERT_TRUE(db.CreateTable("m", Schema(3), SmallConfig()).ok());
  Txn scoped = db.Begin();
  EXPECT_TRUE(db.GetTable("m")->Insert(scoped, {1, 2, 3}).ok());
  ASSERT_TRUE(scoped.Commit().ok());
}

TEST_F(BatchTest, BatchAbortTombstonesEverything) {
  {
    Txn txn = table_.Begin();
    std::vector<Value> keys;
    std::vector<std::vector<Value>> rows;
    for (Value k = 0; k < 30; ++k) {
      keys.push_back(k);
      rows.push_back({0, 424242, 0});
    }
    ASSERT_TRUE(table_.UpdateBatch(txn, keys, 0b010, rows).ok());
    ASSERT_TRUE(table_.InsertBatch(txn, {{500, 1, 1}, {501, 2, 2}}).ok());
    // Session dies without commit: auto-abort.
  }
  uint64_t sum = 0, rows = 0;
  ASSERT_TRUE(table_.NewQuery().Sum(1, &sum, &rows).ok());
  EXPECT_EQ(rows, 100u);  // inserts rolled back (index too)
  uint64_t expect = 0;
  for (Value k = 0; k < 100; ++k) expect += k * 10;
  EXPECT_EQ(sum, expect);  // updates tombstoned
  Txn txn = table_.Begin();
  std::vector<Value> out;
  EXPECT_TRUE(table_.Read(txn, 500, 0b001, &out).IsNotFound());
}

TEST_F(BatchTest, InsertBatchStopsAtDuplicate) {
  Txn txn = table_.Begin();
  Status s = table_.InsertBatch(txn, {{200, 1, 1}, {5, 2, 2}, {201, 3, 3}});
  EXPECT_TRUE(s.IsAlreadyExists());  // key 5 already present
  // Row 200 (before the failure) is in the writeset and commits.
  ASSERT_TRUE(txn.Commit().ok());
  Txn check = table_.Begin();
  std::vector<Value> out;
  EXPECT_TRUE(table_.Read(check, 200, 0b001, &out).ok());
  EXPECT_TRUE(table_.Read(check, 201, 0b001, &out).IsNotFound());
}

// One frame per batch, verified at the log-frame level: the batch of
// N tail appends plus the commit record make exactly TWO physical
// frames, yet every record keeps its own LSN and replays individually.
TEST(BatchLogTest, BatchProducesOneFrameAndReplays) {
  std::string path = "/tmp/lstore_batch_log_test.log";
  std::remove(path.c_str());
  TableConfig cfg = SmallConfig();
  cfg.enable_logging = true;
  cfg.log_path = path;
  {
    Table table("b", Schema(3), cfg);
    Txn txn = table.Begin();
    std::vector<std::vector<Value>> rows;
    for (Value k = 0; k < 40; ++k) rows.push_back({k, k + 1, 0});
    ASSERT_TRUE(table.InsertBatch(txn, rows).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  // Frame-level inspection: parse the physical framing directly.
  // 40 batched inserts + 1 commit record = exactly TWO frames.
  {
    std::string data;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char chunk[4096];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      data.append(chunk, n);
    }
    std::fclose(f);
    size_t frames = 0, pos = 0;
    while (pos < data.size()) {
      uint64_t len = 0;
      ASSERT_TRUE(GetVarint64(data, &pos, &len));
      pos += len + sizeof(uint32_t);  // payload + checksum
      ++frames;
    }
    EXPECT_EQ(frames, 2u);
  }
  // Logically the batch frame still carries 40 individually-numbered
  // records.
  size_t records = 0;
  uint64_t max_lsn = 0;
  RedoLog::ReplayStats stats;
  ASSERT_TRUE(RedoLog::Replay(
                  path,
                  [&](const LogRecord&, uint64_t lsn) {
                    ++records;
                    max_lsn = lsn;
                  },
                  &stats)
                  .ok());
  EXPECT_TRUE(stats.clean_end);
  EXPECT_EQ(records, 41u);  // 40 inserts + 1 commit
  EXPECT_EQ(max_lsn, 41u);  // every record carries its own LSN

  // And recovery rebuilds the table from the batch frame.
  Table recovered("b", Schema(3), cfg);
  ASSERT_TRUE(recovered.RecoverFromLog().ok());
  EXPECT_EQ(recovered.num_rows(), 40u);
  uint64_t sum = 0;
  ASSERT_TRUE(recovered.NewQuery().Sum(1, &sum).ok());
  EXPECT_EQ(sum, 40u * 41u / 2);
  std::remove(path.c_str());
}

// Cross-table sessions run the same pipeline: only written tables get
// commit records, and auto-abort spans all participants.
TEST(SessionTest, CrossTableSessionCommitsAtomically) {
  Database db;
  ASSERT_TRUE(db.CreateTable("a", Schema(3), SmallConfig()).ok());
  ASSERT_TRUE(db.CreateTable("b", Schema(3), SmallConfig()).ok());
  Table* a = db.GetTable("a");
  Table* b = db.GetTable("b");
  {
    Txn txn = db.Begin();
    ASSERT_TRUE(a->Insert(txn, {1, 10, 0}).ok());
    ASSERT_TRUE(b->Insert(txn, {1, 20, 0}).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  {
    // Move 5 from a:1 to b:1, then drop the session: both tombstoned.
    Txn txn = db.Begin();
    ASSERT_TRUE(a->Update(txn, 1, 0b010, {0, 5, 0}).ok());
    ASSERT_TRUE(b->Update(txn, 1, 0b010, {0, 25, 0}).ok());
  }
  Txn check = db.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(a->Read(check, 1, 0b010, &out).ok());
  EXPECT_EQ(out[1], 10u);
  ASSERT_TRUE(b->Read(check, 1, 0b010, &out).ok());
  EXPECT_EQ(out[1], 20u);
  ASSERT_TRUE(check.Commit().ok());
}

TEST(SessionTest, CommitAfterFinishFails) {
  Table table("t", Schema(2), SmallConfig());
  Txn txn = table.Begin();
  ASSERT_TRUE(table.Insert(txn, {1, 2}).ok());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_TRUE(txn.Commit().IsInvalidArgument());
  txn.Abort();  // no-op after commit
  EXPECT_FALSE(txn.active());
}

TEST(SessionTest, MoveTransfersOwnership) {
  Table table("t", Schema(2), SmallConfig());
  Txn a = table.Begin();
  ASSERT_TRUE(table.Insert(a, {1, 2}).ok());
  Txn b = std::move(a);
  EXPECT_TRUE(b.active());
  ASSERT_TRUE(b.Commit().ok());
  Txn check = table.Begin();
  std::vector<Value> out;
  EXPECT_TRUE(table.Read(check, 1, 0b01, &out).ok());
}

}  // namespace
}  // namespace lstore
