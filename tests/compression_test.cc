// Codec tests: varint, delta, bit packing, dictionary, RLE, and the
// encoding chooser used for merged base pages (Section 4.1.1 Step 3 /
// Section 4.3).

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "storage/compressed_column.h"
#include "storage/compression/bitpack.h"
#include "storage/compression/delta.h"
#include "storage/compression/dictionary.h"
#include "storage/compression/rle.h"
#include "storage/compression/varint.h"

namespace lstore {
namespace {

TEST(VarintTest, RoundTripBoundaries) {
  std::vector<uint64_t> values = {0,    1,    127,  128,   16383, 16384,
                                  1u << 21, 1ull << 42, UINT64_MAX};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  size_t pos = 0;
  for (uint64_t v : values) {
    uint64_t got;
    ASSERT_TRUE(GetVarint64(buf, &pos, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, LengthMatchesEncoding) {
  for (uint64_t v : {0ull, 127ull, 128ull, 300ull, (1ull << 56) + 5}) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(buf.size(), VarintLength(v));
  }
}

TEST(VarintTest, TruncatedInputFails) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  buf.pop_back();
  size_t pos = 0;
  uint64_t v;
  EXPECT_FALSE(GetVarint64(buf, &pos, &v));
}

TEST(DeltaTest, RoundTripMonotoneSequence) {
  std::vector<Value> vals;
  for (uint64_t i = 0; i < 1000; ++i) vals.push_back(1000000 + i * 3);
  std::string buf;
  DeltaEncode(vals, &buf);
  // Monotone small deltas: ~1 byte each (plus header + first value).
  EXPECT_LT(buf.size(), vals.size() * 2 + 16);
  std::vector<Value> out;
  ASSERT_TRUE(DeltaDecode(buf, &out));
  EXPECT_EQ(out, vals);
}

TEST(DeltaTest, RoundTripRandomIncludingWraparound) {
  Random rng(11);
  std::vector<Value> vals;
  for (int i = 0; i < 500; ++i) vals.push_back(rng.Next());
  vals.push_back(0);
  vals.push_back(UINT64_MAX);
  std::string buf;
  DeltaEncode(vals, &buf);
  std::vector<Value> out;
  ASSERT_TRUE(DeltaDecode(buf, &out));
  EXPECT_EQ(out, vals);
}

TEST(DeltaTest, EncodedSizeMatches) {
  std::vector<Value> vals = {5, 10, 7, 7, 100000};
  std::string buf;
  DeltaEncode(vals, &buf);
  EXPECT_EQ(buf.size(), DeltaEncodedSize(vals));
}

TEST(BitPackTest, WidthZeroMeansAllZeros) {
  BitPackedArray arr(std::vector<uint64_t>(10, 0), 0);
  EXPECT_EQ(arr.size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(arr.Get(i), 0u);
}

TEST(BitPackTest, CrossWordBoundaries) {
  // width 13 guarantees values straddle 64-bit word boundaries.
  std::vector<uint64_t> vals;
  for (uint64_t i = 0; i < 200; ++i) vals.push_back(i * 37 % 8192);
  BitPackedArray arr(vals, 13);
  for (size_t i = 0; i < vals.size(); ++i) EXPECT_EQ(arr.Get(i), vals[i]);
}

TEST(BitPackTest, FullWidth64) {
  std::vector<uint64_t> vals = {UINT64_MAX, 0, 0x123456789abcdef0ull};
  BitPackedArray arr(vals, 64);
  for (size_t i = 0; i < vals.size(); ++i) EXPECT_EQ(arr.Get(i), vals[i]);
}

TEST(DictionaryTest, LowCardinalityCompresses) {
  std::vector<Value> vals;
  for (int i = 0; i < 4096; ++i) vals.push_back(1000 + i % 4);
  DictionaryColumn dict(vals);
  EXPECT_EQ(dict.dictionary_size(), 4u);
  EXPECT_LT(dict.byte_size(), vals.size() * sizeof(Value) / 8);
  for (size_t i = 0; i < vals.size(); ++i) EXPECT_EQ(dict.Get(i), vals[i]);
}

TEST(RleTest, RunsCollapse) {
  std::vector<Value> vals;
  for (int run = 0; run < 8; ++run) {
    for (int i = 0; i < 100; ++i) vals.push_back(run * 11);
  }
  RleColumn rle(vals);
  EXPECT_EQ(rle.run_count(), 8u);
  for (size_t i = 0; i < vals.size(); ++i) EXPECT_EQ(rle.Get(i), vals[i]);
}

TEST(RleTest, SingleElementAndAlternating) {
  RleColumn one(std::vector<Value>{7});
  EXPECT_EQ(one.Get(0), 7u);
  std::vector<Value> alt;
  for (int i = 0; i < 50; ++i) alt.push_back(i % 2);
  RleColumn rle(alt);
  EXPECT_EQ(rle.run_count(), 50u);
  for (size_t i = 0; i < alt.size(); ++i) EXPECT_EQ(rle.Get(i), alt[i]);
}

TEST(CompressedColumnTest, ChoosesRleForConstantColumn) {
  std::vector<Value> vals(4096, 42);
  auto col = CompressedColumn::Build(vals, true);
  EXPECT_EQ(col->encoding(), CompressedColumn::Encoding::kRle);
  EXPECT_LT(col->byte_size(), 64u);
  EXPECT_EQ(col->Get(1234), 42u);
}

TEST(CompressedColumnTest, ChoosesDictionaryForLowCardinality) {
  Random rng(5);
  std::vector<Value> vals;
  for (int i = 0; i < 4096; ++i) vals.push_back(900000 + rng.Uniform(16));
  auto col = CompressedColumn::Build(vals, true);
  EXPECT_EQ(col->encoding(), CompressedColumn::Encoding::kDictionary);
  for (size_t i = 0; i < vals.size(); ++i) EXPECT_EQ(col->Get(i), vals[i]);
}

TEST(CompressedColumnTest, FallsBackToPlainForRandomData) {
  Random rng(6);
  std::vector<Value> vals;
  for (int i = 0; i < 4096; ++i) vals.push_back(rng.Next());
  auto col = CompressedColumn::Build(vals, true);
  EXPECT_EQ(col->encoding(), CompressedColumn::Encoding::kPlain);
  for (size_t i = 0; i < vals.size(); ++i) EXPECT_EQ(col->Get(i), vals[i]);
}

TEST(CompressedColumnTest, CompressionDisabledKeepsPlain) {
  std::vector<Value> vals(1024, 1);
  auto col = CompressedColumn::Build(vals, false);
  EXPECT_EQ(col->encoding(), CompressedColumn::Encoding::kPlain);
}

// Property sweep: every codec must round-trip across data shapes.
struct CodecCase {
  const char* name;
  int shape;  // 0=constant 1=monotone 2=low-card 3=random 4=zipf-ish
  size_t n;
};

class CodecRoundTrip : public ::testing::TestWithParam<CodecCase> {
 protected:
  std::vector<Value> MakeData() const {
    const CodecCase& c = GetParam();
    Random rng(c.shape * 31 + c.n);
    std::vector<Value> vals;
    vals.reserve(c.n);
    for (size_t i = 0; i < c.n; ++i) {
      switch (c.shape) {
        case 0: vals.push_back(77); break;
        case 1: vals.push_back(5000 + i * 7); break;
        case 2: vals.push_back(rng.Uniform(9)); break;
        case 3: vals.push_back(rng.Next()); break;
        default: vals.push_back(rng.Uniform(1 + i % 100)); break;
      }
    }
    return vals;
  }
};

TEST_P(CodecRoundTrip, CompressedColumnPreservesEveryValue) {
  auto vals = MakeData();
  auto col = CompressedColumn::Build(vals, true);
  ASSERT_EQ(col->size(), vals.size());
  for (size_t i = 0; i < vals.size(); ++i) {
    ASSERT_EQ(col->Get(i), vals[i]) << "at " << i;
  }
}

TEST_P(CodecRoundTrip, DeltaPreservesEveryValue) {
  auto vals = MakeData();
  std::string buf;
  DeltaEncode(vals, &buf);
  std::vector<Value> out;
  ASSERT_TRUE(DeltaDecode(buf, &out));
  EXPECT_EQ(out, vals);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CodecRoundTrip,
    ::testing::Values(CodecCase{"const_small", 0, 100},
                      CodecCase{"const_page", 0, 4096},
                      CodecCase{"mono_small", 1, 100},
                      CodecCase{"mono_page", 1, 4096},
                      CodecCase{"lowcard_small", 2, 100},
                      CodecCase{"lowcard_page", 2, 4096},
                      CodecCase{"random_small", 3, 100},
                      CodecCase{"random_page", 3, 4096},
                      CodecCase{"zipf_small", 4, 100},
                      CodecCase{"zipf_page", 4, 4096},
                      CodecCase{"empty", 3, 0}, CodecCase{"one", 3, 1}),
    [](const ::testing::TestParamInfo<CodecCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace lstore
