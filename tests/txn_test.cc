// Concurrency-control tests (Section 5.1.1): transaction manager state
// machine, write-write conflicts via the indirection latch bit,
// isolation levels, read validation, and speculative reads.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/table.h"
#include "txn/transaction_manager.h"

namespace lstore {
namespace {

TableConfig SmallConfig() {
  TableConfig cfg;
  cfg.range_size = 64;
  cfg.tail_page_slots = 16;
  cfg.merge_threshold = 1u << 30;  // no automatic merges
  cfg.enable_merge_thread = false;
  return cfg;
}

TEST(TxnManagerTest, BeginAssignsTaggedMonotoneIds) {
  TransactionManager mgr;
  Transaction a = mgr.Begin();
  Transaction b = mgr.Begin();
  EXPECT_TRUE(IsTxnId(a.id()));
  EXPECT_LT(a.begin_time(), b.begin_time());
  EXPECT_EQ(a.id(), kTxnIdTag | a.begin_time());
}

TEST(TxnManagerTest, StateTransitions) {
  TransactionManager mgr;
  Transaction t = mgr.Begin();
  auto v = mgr.GetState(t.id());
  ASSERT_TRUE(v.found);
  EXPECT_EQ(v.state, TxnState::kActive);

  Timestamp commit = mgr.EnterPreCommit(&t);
  v = mgr.GetState(t.id());
  EXPECT_EQ(v.state, TxnState::kPreCommit);
  EXPECT_EQ(v.commit, commit);
  EXPECT_GT(commit, t.begin_time());

  mgr.MarkCommitted(&t);
  v = mgr.GetState(t.id());
  EXPECT_EQ(v.state, TxnState::kCommitted);
}

TEST(TxnManagerTest, RetireRemovesEntry) {
  TransactionManager mgr;
  Transaction t = mgr.Begin();
  EXPECT_EQ(mgr.live_entries(), 1u);
  mgr.Retire(t.id());
  EXPECT_EQ(mgr.live_entries(), 0u);
  EXPECT_FALSE(mgr.GetState(t.id()).found);
}

TEST(TxnManagerTest, EntriesStayBoundedAcrossManyTxns) {
  // Section 5.1.1 keeps txn state in a hashtable; our implementation
  // retires entries post-commit so the table cannot grow unboundedly.
  TableConfig cfg = SmallConfig();
  Table table("t", Schema(3), cfg);
  Txn setup = table.Begin();
  ASSERT_TRUE(table.Insert(setup, {1, 2, 3}).ok());
  ASSERT_TRUE(setup.Commit().ok());
  for (int i = 0; i < 500; ++i) {
    Txn txn = table.Begin();
    ASSERT_TRUE(table.Update(txn, 1, 0b010, {0, Value(i), 0}).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  EXPECT_EQ(table.txn_manager().live_entries(), 0u);
}

class TxnTableTest : public ::testing::Test {
 protected:
  TxnTableTest() : table_("t", Schema(3), SmallConfig()) {
    Txn txn = table_.Begin();
    for (Value k = 0; k < 10; ++k) {
      EXPECT_TRUE(table_.Insert(txn, {k, k * 10, k * 100}).ok());
    }
    EXPECT_TRUE(txn.Commit().ok());
  }
  Table table_;
};

TEST_F(TxnTableTest, WriteWriteConflictAbortsSecondWriter) {
  Txn t1 = table_.Begin();
  ASSERT_TRUE(table_.Update(t1, 3, 0b010, {0, 777, 0}).ok());
  // t2 hits the uncommitted version of t1.
  Txn t2 = table_.Begin();
  Status s = table_.Update(t2, 3, 0b010, {0, 888, 0});
  EXPECT_TRUE(s.IsAborted());
  t2.Abort();
  ASSERT_TRUE(t1.Commit().ok());
  EXPECT_GE(table_.stats().ww_aborts.load(), 1u);

  Txn t3 = table_.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(t3, 3, 0b010, &out).ok());
  EXPECT_EQ(out[1], 777u);
  (void)t3.Commit();
}

TEST_F(TxnTableTest, WriterCanStackOwnUpdates) {
  Txn t1 = table_.Begin();
  ASSERT_TRUE(table_.Update(t1, 3, 0b010, {0, 1, 0}).ok());
  ASSERT_TRUE(table_.Update(t1, 3, 0b010, {0, 2, 0}).ok());
  ASSERT_TRUE(table_.Update(t1, 3, 0b100, {0, 0, 3}).ok());
  ASSERT_TRUE(t1.Commit().ok());
  Txn t2 = table_.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(t2, 3, 0b110, &out).ok());
  EXPECT_EQ(out[1], 2u);  // only the final update is visible
  EXPECT_EQ(out[2], 3u);
  (void)t2.Commit();
}

TEST_F(TxnTableTest, AbortedUpdateLeavesTombstoneNotValue) {
  Txn t1 = table_.Begin();
  ASSERT_TRUE(table_.Update(t1, 3, 0b010, {0, 999, 0}).ok());
  t1.Abort();
  // "once a value is written to tail pages, it will not be
  // over-written even if the writing transaction aborts" — readers
  // just skip the tombstone.
  EXPECT_GT(table_.RangeTailLength(0), 0u);
  Txn t2 = table_.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(t2, 3, 0b010, &out).ok());
  EXPECT_EQ(out[1], 30u);
  (void)t2.Commit();
  // A later writer must not conflict with the tombstone.
  Txn t3 = table_.Begin();
  EXPECT_TRUE(table_.Update(t3, 3, 0b010, {0, 31, 0}).ok());
  EXPECT_TRUE(t3.Commit().ok());
}

TEST_F(TxnTableTest, ReadCommittedSeesLatestCommitted) {
  Txn reader = table_.Begin(IsolationLevel::kReadCommitted);
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(reader, 5, 0b010, &out).ok());
  EXPECT_EQ(out[1], 50u);
  // Another transaction commits mid-way.
  Txn writer = table_.Begin();
  ASSERT_TRUE(table_.Update(writer, 5, 0b010, {0, 51, 0}).ok());
  ASSERT_TRUE(writer.Commit().ok());
  // Read-committed sees the new value within the same transaction.
  ASSERT_TRUE(table_.Read(reader, 5, 0b010, &out).ok());
  EXPECT_EQ(out[1], 51u);
  (void)reader.Commit();
}

TEST_F(TxnTableTest, SnapshotIsolationIsStable) {
  Txn reader = table_.Begin(IsolationLevel::kSnapshot);
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(reader, 5, 0b010, &out).ok());
  EXPECT_EQ(out[1], 50u);
  Txn writer = table_.Begin();
  ASSERT_TRUE(table_.Update(writer, 5, 0b010, {0, 51, 0}).ok());
  ASSERT_TRUE(writer.Commit().ok());
  // Snapshot reader still sees its begin-time version.
  ASSERT_TRUE(table_.Read(reader, 5, 0b010, &out).ok());
  EXPECT_EQ(out[1], 50u);
  EXPECT_TRUE(reader.Commit().ok());
}

TEST_F(TxnTableTest, SerializableValidationFailsOnChangedRead) {
  Txn t1 = table_.Begin(IsolationLevel::kSerializable);
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(t1, 5, 0b010, &out).ok());
  // Concurrent committed write invalidates t1's read.
  Txn t2 = table_.Begin();
  ASSERT_TRUE(table_.Update(t2, 5, 0b010, {0, 555, 0}).ok());
  ASSERT_TRUE(t2.Commit().ok());
  EXPECT_TRUE(t1.Commit().IsAborted());
  EXPECT_GE(table_.stats().validation_aborts.load(), 1u);
}

TEST_F(TxnTableTest, SerializableValidationPassesWhenUnchanged) {
  Txn t1 = table_.Begin(IsolationLevel::kSerializable);
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(t1, 5, 0b010, &out).ok());
  ASSERT_TRUE(table_.Read(t1, 6, 0b010, &out).ok());
  EXPECT_TRUE(t1.Commit().ok());
}

TEST_F(TxnTableTest, SerializableReadModifyWriteOfOwnKeyCommits) {
  Txn t1 = table_.Begin(IsolationLevel::kSerializable);
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(t1, 5, 0b010, &out).ok());
  ASSERT_TRUE(table_.Update(t1, 5, 0b010, {0, out[1] + 1, 0}).ok());
  ASSERT_TRUE(table_.Read(t1, 5, 0b010, &out).ok());
  EXPECT_EQ(out[1], 51u);
  EXPECT_TRUE(t1.Commit().ok());
}

TEST_F(TxnTableTest, SpeculativeReadSeesPreCommitAndCarriesDependency) {
  Txn writer = table_.Begin();
  ASSERT_TRUE(table_.Update(writer, 5, 0b010, {0, 1234, 0}).ok());
  // Push writer into pre-commit without publishing.
  table_.txn_manager().EnterPreCommit(writer.raw());

  Txn reader = table_.Begin(IsolationLevel::kReadCommitted);
  std::vector<Value> out;
  // Normal read skips the pre-commit version...
  ASSERT_TRUE(table_.Read(reader, 5, 0b010, &out).ok());
  EXPECT_EQ(out[1], 50u);
  // ...speculative read observes it ([18]).
  ASSERT_TRUE(table_.SpeculativeRead(reader, 5, 0b010, &out).ok());
  EXPECT_EQ(out[1], 1234u);
  ASSERT_EQ(reader.raw()->commit_dependencies().size(), 1u);
  EXPECT_EQ(reader.raw()->commit_dependencies()[0], writer.id());

  // Finish the writer, then the reader can commit.
  table_.txn_manager().MarkCommitted(writer.raw());
  writer.raw()->set_finished();
  table_.txn_manager().Retire(writer.id());
  EXPECT_TRUE(reader.Commit().ok());
}

TEST_F(TxnTableTest, ConcurrentWritersSingleWinnerPerRecord) {
  constexpr int kThreads = 4, kAttempts = 300;
  std::atomic<uint64_t> commits{0}, aborts{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kAttempts; ++i) {
        Txn txn = table_.Begin();
        Status s = table_.Update(txn, 7, 0b010,
                                 {0, Value(t * kAttempts + i), 0});
        if (s.ok() && txn.Commit().ok()) {
          commits.fetch_add(1);
        } else {
          txn.Abort();  // no-op if already finished
          aborts.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(commits + aborts, static_cast<uint64_t>(kThreads * kAttempts));
  EXPECT_GT(commits.load(), 0u);
  // The final value must be one that some committed txn wrote.
  Txn check = table_.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(check, 7, 0b010, &out).ok());
  EXPECT_LT(out[1], static_cast<Value>(kThreads * kAttempts));
  (void)check.Commit();
}

}  // namespace
}  // namespace lstore
