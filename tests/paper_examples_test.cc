// The paper's running examples, encoded as integration tests:
// Table 2 (update & delete), Table 3 (insert with concurrent update),
// Table 4 (relaxed merge), Table 5 (TPS interpretation & cumulation
// reset). Keys k1..k3 map to 1..3; columns A, B, C map to 1..3.

#include <gtest/gtest.h>

#include "core/table.h"

namespace lstore {
namespace {

TableConfig PaperConfig() {
  TableConfig cfg;
  cfg.range_size = 8;  // k1..k3 in one range, like the paper's ranges
  cfg.insert_range_size = 8;
  cfg.tail_page_slots = 8;
  cfg.enable_merge_thread = false;
  cfg.cumulative_updates = true;
  return cfg;
}

class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest() : table_("paper", Schema(4), PaperConfig()) {}

  void Commit1(std::function<Status(Txn&)> op) {
    Txn txn = table_.Begin();
    ASSERT_TRUE(op(txn).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }

  void Insert(Value key, Value a, Value b, Value c) {
    Commit1([&](Txn& t) { return table_.Insert(t, {key, a, b, c}); });
  }
  void Update(Value key, ColumnMask mask, Value a, Value b, Value c) {
    Commit1([&](Txn& t) { return table_.Update(t, key, mask, {0, a, b, c}); });
  }

  std::vector<Value> ReadAll(Value key) {
    Txn txn = table_.Begin();
    std::vector<Value> out;
    Status s = table_.Read(txn, key, 0b1111, &out);
    (void)txn.Commit();
    if (!s.ok()) return {};
    return out;
  }

  Table table_;
};

// Table 2: b2 (=key 2) updated on A twice more after the first update,
// then on C; b3 updated on C; b1 deleted.
TEST_F(PaperExampleTest, Table2UpdateAndDeleteProcedure) {
  Insert(1, 101, 201, 301);  // b1: a1 b1 c1
  Insert(2, 102, 202, 302);  // b2
  Insert(3, 103, 203, 303);  // b3
  EXPECT_EQ(table_.RangeTailLength(0), 0u);

  // First update of column A of b2 creates TWO tail records (t1
  // pre-image snapshot + t2 new value).
  Update(2, 0b0010, 1021, 0, 0);
  EXPECT_EQ(table_.RangeTailLength(0), 2u);
  // Subsequent update of the same column creates ONE record (t3).
  Update(2, 0b0010, 1022, 0, 0);
  EXPECT_EQ(table_.RangeTailLength(0), 3u);
  // First update of C of b2: snapshot t4 + cumulative t5.
  Update(2, 0b1000, 0, 0, 3021);
  EXPECT_EQ(table_.RangeTailLength(0), 5u);
  // First update of C of b3: t6 + t7.
  Update(3, 0b1000, 0, 0, 3031);
  EXPECT_EQ(table_.RangeTailLength(0), 7u);
  // Delete b1 = t8, a single tail record with no snapshot (the paper's
  // default delete design).
  Commit1([&](Txn& t) { return table_.Delete(t, 1); });
  EXPECT_EQ(table_.RangeTailLength(0), 8u);

  // Resulting visible table state matches Table 2.
  EXPECT_EQ(ReadAll(2), (std::vector<Value>{2, 1022, 202, 3021}));
  EXPECT_EQ(ReadAll(3), (std::vector<Value>{3, 103, 203, 3031}));
  EXPECT_TRUE(ReadAll(1).empty());  // deleted
}

// Table 2's time-travel semantics: every intermediate version of b2 is
// reachable through the lineage.
TEST_F(PaperExampleTest, Table2AllVersionsReachable) {
  Insert(2, 102, 202, 302);
  Timestamp t0 = table_.txn_manager().clock().Tick();
  Update(2, 0b0010, 1021, 0, 0);
  Timestamp t1 = table_.txn_manager().clock().Tick();
  Update(2, 0b0010, 1022, 0, 0);
  Timestamp t2 = table_.txn_manager().clock().Tick();
  Update(2, 0b1000, 0, 0, 3021);
  Timestamp t3 = table_.txn_manager().clock().Tick();

  std::vector<Value> out;
  ASSERT_TRUE(table_.ReadAsOf(2, t0, 0b1110, &out).ok());
  EXPECT_EQ(out[1], 102u);
  EXPECT_EQ(out[3], 302u);
  ASSERT_TRUE(table_.ReadAsOf(2, t1, 0b1110, &out).ok());
  EXPECT_EQ(out[1], 1021u);
  EXPECT_EQ(out[3], 302u);
  ASSERT_TRUE(table_.ReadAsOf(2, t2, 0b1110, &out).ok());
  EXPECT_EQ(out[1], 1022u);
  EXPECT_EQ(out[3], 302u);
  ASSERT_TRUE(table_.ReadAsOf(2, t3, 0b1110, &out).ok());
  EXPECT_EQ(out[1], 1022u);
  EXPECT_EQ(out[3], 3021u);
}

// Table 3: inserts land in table-level tail pages; a recently inserted
// record can immediately be updated through the regular tail path.
TEST_F(PaperExampleTest, Table3InsertWithConcurrentUpdates) {
  Insert(7, 107, 207, 307);  // tt7
  Insert(8, 108, 208, 308);  // tt8
  Insert(9, 109, 209, 309);  // tt9
  // Update C of b8 (c8 -> c81): snapshot t13 + new t14.
  Update(8, 0b1000, 0, 0, 3081);
  EXPECT_EQ(table_.RangeTailLength(0), 2u);
  // Update A of b9 (a9 -> a91): t15 + t16.
  Update(9, 0b0010, 1091, 0, 0);
  EXPECT_EQ(table_.RangeTailLength(0), 4u);

  EXPECT_EQ(ReadAll(8), (std::vector<Value>{8, 108, 208, 3081}));
  EXPECT_EQ(ReadAll(9), (std::vector<Value>{9, 1091, 209, 309}));
  // And the insert-merge afterwards preserves both inserts + updates.
  ASSERT_TRUE(table_.InsertMergeNow(0));
  ASSERT_TRUE(table_.MergeRangeNow(0));
  EXPECT_EQ(ReadAll(8), (std::vector<Value>{8, 108, 208, 3081}));
  EXPECT_EQ(ReadAll(9), (std::vector<Value>{9, 1091, 209, 309}));
}

// Table 4: merging the first seven tail records consolidates only the
// LATEST version of each record (t5 and t7 participate; t1-t4, t6 are
// discarded) and sets TPS = 7.
TEST_F(PaperExampleTest, Table4RelaxedMerge) {
  Insert(1, 101, 201, 301);
  Insert(2, 102, 202, 302);
  Insert(3, 103, 203, 303);
  ASSERT_TRUE(table_.InsertMergeNow(0));

  Update(2, 0b0010, 1021, 0, 0);   // t1*, t2
  Update(2, 0b0010, 1022, 0, 0);   // t3
  Update(2, 0b1000, 0, 0, 3021);   // t4*, t5 (cumulative: a22 + c21)
  Update(3, 0b1000, 0, 0, 3031);   // t6*, t7
  ASSERT_EQ(table_.RangeTailLength(0), 7u);

  ASSERT_TRUE(table_.MergeRangeNow(0));
  EXPECT_EQ(table_.RangeTps(0), 7u);

  // Merged pages hold the Table 4 result; reads are now served from
  // base pages without chain hops.
  uint64_t hops = table_.stats().tail_chain_hops.load();
  EXPECT_EQ(ReadAll(1), (std::vector<Value>{1, 101, 201, 301}));
  EXPECT_EQ(ReadAll(2), (std::vector<Value>{2, 1022, 202, 3021}));
  EXPECT_EQ(ReadAll(3), (std::vector<Value>{3, 103, 203, 3031}));
  EXPECT_EQ(table_.stats().tail_chain_hops.load(), hops);
}

// Table 5: updates after the merge (with cumulation reset at TPS) are
// combined with merged pages: b2 gets B (t9*, t10) then A+B cumulative
// (t12), b3 gets C (t11).
TEST_F(PaperExampleTest, Table5PostMergeUpdatesAndTpsInterpretation) {
  Insert(1, 101, 201, 301);
  Insert(2, 102, 202, 302);
  Insert(3, 103, 203, 303);
  ASSERT_TRUE(table_.InsertMergeNow(0));
  Update(2, 0b0010, 1021, 0, 0);
  Update(2, 0b0010, 1022, 0, 0);
  Update(2, 0b1000, 0, 0, 3021);
  Update(3, 0b1000, 0, 0, 3031);
  ASSERT_TRUE(table_.MergeRangeNow(0));
  ASSERT_EQ(table_.RangeTps(0), 7u);

  Update(2, 0b0100, 0, 2021, 0);   // t9*, t10 — post-merge, reset carry
  Update(3, 0b1000, 0, 0, 3032);   // t11
  Update(2, 0b0010, 1023, 0, 0);   // t12: cumulative carries B, not C
  EXPECT_EQ(table_.RangeTailLength(0), 11u);

  // Full record reconstruction mixes merged pages (C=3021 via TPS)
  // with post-merge tails (A=1023, B=2021).
  EXPECT_EQ(ReadAll(2), (std::vector<Value>{2, 1023, 2021, 3021}));
  EXPECT_EQ(ReadAll(3), (std::vector<Value>{3, 103, 203, 3032}));
}

// Deletions expressed as in Table 2 (t8): the record vanishes for new
// queries, remains for older snapshots, and merge preserves that.
TEST_F(PaperExampleTest, DeleteThenMergeKeepsHistoryAccessible) {
  Insert(1, 101, 201, 301);
  ASSERT_TRUE(table_.InsertMergeNow(0));
  Timestamp before = table_.txn_manager().clock().Tick();
  Commit1([&](Txn& t) { return table_.Delete(t, 1); });
  ASSERT_TRUE(table_.MergeRangeNow(0));
  EXPECT_TRUE(ReadAll(1).empty());
  std::vector<Value> out;
  ASSERT_TRUE(table_.ReadAsOf(1, before, 0b1111, &out).ok());
  EXPECT_EQ(out[1], 101u);
}

// Section 2.2: "at most 2-hop away access to the latest version".
TEST_F(PaperExampleTest, TwoHopAccessToLatestVersion) {
  Insert(2, 102, 202, 302);
  ASSERT_TRUE(table_.InsertMergeNow(0));
  for (int i = 0; i < 20; ++i) Update(2, 0b0010, 2000 + i, 0, 0);
  // With cumulative updates the latest version is fully materialized
  // in the newest tail record: exactly one hop from the base record.
  uint64_t hops_before = table_.stats().tail_chain_hops.load();
  EXPECT_EQ(ReadAll(2)[1], 2019u);
  uint64_t hops = table_.stats().tail_chain_hops.load() - hops_before;
  EXPECT_LE(hops, 2u);
}

}  // namespace
}  // namespace lstore
