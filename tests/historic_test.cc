// Historic compression tests (Section 4.3 / Table 6): version
// inlining, base-RID ordering, delta compression, time-travel reads
// through the compressed store, and tail-page reclamation.

#include <gtest/gtest.h>

#include "core/historic.h"
#include "core/table.h"

namespace lstore {
namespace {

TableConfig Config() {
  TableConfig cfg;
  cfg.range_size = 32;
  cfg.insert_range_size = 32;
  cfg.tail_page_slots = 8;
  cfg.enable_merge_thread = false;
  return cfg;
}

TEST(HistoricStoreTest, BuildAndDecodeSingleSlot) {
  std::unordered_map<uint32_t, std::vector<HistoricStore::Version>> per_slot;
  per_slot[3] = {
      {1, 100, 0b0010, 0b0010, {500}},
      {2, 200, 0b0010, 0b0010, {501}},
      {5, 300, 0b0110, 0b0110, {502, 600}},
  };
  std::unique_ptr<HistoricStore> store(
      HistoricStore::Build(5, per_slot, nullptr, 4));
  EXPECT_EQ(store->boundary(), 5u);
  EXPECT_EQ(store->num_records(), 1u);
  EXPECT_EQ(store->num_versions(), 3u);
  auto versions = store->VersionsOf(3);
  ASSERT_EQ(versions.size(), 3u);
  EXPECT_EQ(versions[0].seq, 1u);
  EXPECT_EQ(versions[0].values, (std::vector<Value>{500}));
  EXPECT_EQ(versions[2].seq, 5u);
  EXPECT_EQ(versions[2].values, (std::vector<Value>{502, 600}));
  EXPECT_TRUE(store->VersionsOf(99).empty());
}

TEST(HistoricStoreTest, ResolveColumnHonorsSeqAndTime) {
  std::unordered_map<uint32_t, std::vector<HistoricStore::Version>> per_slot;
  per_slot[0] = {
      {1, 100, 0b0010, 0b0010, {10}},
      {3, 300, 0b0010, 0b0010, {30}},
  };
  std::unique_ptr<HistoricStore> store(
      HistoricStore::Build(3, per_slot, nullptr, 4));
  Value v = 0;
  bool deleted = false;
  // Entry at seq 3, as_of after both: newest wins.
  ASSERT_TRUE(store->ResolveColumn(0, 3, 1, 1000, &v, &deleted));
  EXPECT_EQ(v, 30u);
  // Entry at seq 2 (between versions): only seq 1 qualifies.
  ASSERT_TRUE(store->ResolveColumn(0, 2, 1, 1000, &v, &deleted));
  EXPECT_EQ(v, 10u);
  // as_of before version 3's start: version 1.
  ASSERT_TRUE(store->ResolveColumn(0, 3, 1, 250, &v, &deleted));
  EXPECT_EQ(v, 10u);
  // Column never materialized.
  EXPECT_FALSE(store->ResolveColumn(0, 3, 2, 1000, &v, &deleted));
}

TEST(HistoricStoreTest, RebuildCarriesPreviousContents) {
  std::unordered_map<uint32_t, std::vector<HistoricStore::Version>> first;
  first[1] = {{1, 100, 0b0010, 0b0010, {11}}};
  std::unique_ptr<HistoricStore> a(
      HistoricStore::Build(1, first, nullptr, 4));
  std::unordered_map<uint32_t, std::vector<HistoricStore::Version>> second;
  second[1] = {{2, 200, 0b0010, 0b0010, {12}}};
  second[2] = {{3, 300, 0b0100, 0b0100, {20}}};
  std::unique_ptr<HistoricStore> b(
      HistoricStore::Build(3, second, a.get(), 4));
  EXPECT_EQ(b->num_versions(), 3u);
  auto versions = b->VersionsOf(1);
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0].values[0], 11u);
  EXPECT_EQ(versions[1].values[0], 12u);
}

TEST(HistoricStoreTest, DeltaCompressionShrinksSimilarVersions) {
  // Version inlining "enables delta compression among the different
  // versions" — a counter-like column should encode in ~2 bytes per
  // version instead of 8.
  std::unordered_map<uint32_t, std::vector<HistoricStore::Version>> per_slot;
  constexpr uint32_t kVersions = 500;
  std::vector<HistoricStore::Version> versions;
  for (uint32_t i = 0; i < kVersions; ++i) {
    versions.push_back({i + 1, 1000 + i, 0b0010, 0b0010,
                        {1000000000 + i}});
  }
  per_slot[0] = versions;
  std::unique_ptr<HistoricStore> store(
      HistoricStore::Build(kVersions, per_slot, nullptr, 4));
  EXPECT_LT(store->byte_size(), kVersions * 8u);
  auto out = store->VersionsOf(0);
  ASSERT_EQ(out.size(), kVersions);
  EXPECT_EQ(out[123].values[0], 1000000123u);
}

class TableHistoricTest : public ::testing::Test {
 protected:
  TableHistoricTest() : table_("h", Schema(4), Config()) {
    Txn txn = table_.Begin();
    for (Value k = 0; k < 32; ++k) {
      EXPECT_TRUE(table_.Insert(txn, {k, k * 10, k * 100, k * 1000}).ok());
    }
    EXPECT_TRUE(txn.Commit().ok());
    EXPECT_TRUE(table_.InsertMergeNow(0));
  }

  void UpdateKey(Value key, Value v) {
    Txn txn = table_.Begin();
    std::vector<Value> row(4, 0);
    row[1] = v;
    ASSERT_TRUE(table_.Update(txn, key, 0b0010, row).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }

  Table table_;
};

TEST_F(TableHistoricTest, CompressionRequiresPriorMerge) {
  UpdateKey(1, 11);
  // Nothing merged yet: nothing to compress.
  EXPECT_EQ(table_.CompressHistoricNow(0), 0u);
  ASSERT_TRUE(table_.MergeRangeNow(0));
  EXPECT_GT(table_.CompressHistoricNow(0), 0u);
  EXPECT_EQ(table_.stats().historic_compressions.load(), 1u);
}

TEST_F(TableHistoricTest, TimeTravelThroughCompressedHistory) {
  std::vector<Timestamp> stamps;
  stamps.push_back(table_.txn_manager().clock().Tick());
  for (int i = 0; i < 6; ++i) {
    UpdateKey(2, 100 + i);
    stamps.push_back(table_.txn_manager().clock().Tick());
  }
  ASSERT_TRUE(table_.MergeRangeNow(0));
  ASSERT_GT(table_.CompressHistoricNow(0), 0u);
  table_.epochs().TryReclaim();  // raw tail pages reclaimed

  std::vector<Value> out;
  ASSERT_TRUE(table_.ReadAsOf(2, stamps[0], 0b0010, &out).ok());
  EXPECT_EQ(out[1], 20u);  // original value via the pre-image snapshot
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(table_.ReadAsOf(2, stamps[i + 1], 0b0010, &out).ok());
    EXPECT_EQ(out[1], static_cast<Value>(100 + i)) << "as-of " << i;
  }
  // Latest reads are unaffected.
  Txn txn = table_.Begin();
  ASSERT_TRUE(table_.Read(txn, 2, 0b0010, &out).ok());
  EXPECT_EQ(out[1], 105u);
  (void)txn.Commit();
}

TEST_F(TableHistoricTest, UpdatesContinueAfterCompression) {
  for (int i = 0; i < 4; ++i) UpdateKey(3, 200 + i);
  ASSERT_TRUE(table_.MergeRangeNow(0));
  ASSERT_GT(table_.CompressHistoricNow(0), 0u);
  table_.epochs().TryReclaim();
  UpdateKey(3, 999);  // new tail records beyond the boundary
  Txn txn = table_.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(txn, 3, 0b0010, &out).ok());
  EXPECT_EQ(out[1], 999u);
  (void)txn.Commit();
}

TEST_F(TableHistoricTest, SecondCompressionExtendsTheStore) {
  for (int i = 0; i < 3; ++i) UpdateKey(4, 300 + i);
  ASSERT_TRUE(table_.MergeRangeNow(0));
  size_t first = table_.CompressHistoricNow(0);
  ASSERT_GT(first, 0u);
  Timestamp mid = table_.txn_manager().clock().Tick();
  for (int i = 0; i < 3; ++i) UpdateKey(4, 400 + i);
  ASSERT_TRUE(table_.MergeRangeNow(0));
  size_t second = table_.CompressHistoricNow(0);
  ASSERT_GT(second, 0u);
  table_.epochs().TryReclaim();
  // Both eras of history remain reachable.
  std::vector<Value> out;
  ASSERT_TRUE(table_.ReadAsOf(4, mid, 0b0010, &out).ok());
  EXPECT_EQ(out[1], 302u);
}

TEST_F(TableHistoricTest, DeletedRecordHistoryRetained) {
  UpdateKey(5, 55);
  {
    Txn txn = table_.Begin();
    ASSERT_TRUE(table_.Delete(txn, 5).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  Timestamp after_delete = table_.txn_manager().clock().Tick();
  ASSERT_TRUE(table_.MergeRangeNow(0));
  ASSERT_GT(table_.CompressHistoricNow(0), 0u);
  table_.epochs().TryReclaim();
  std::vector<Value> out;
  EXPECT_TRUE(table_.ReadAsOf(5, after_delete, 0b0010, &out).IsNotFound());
}

}  // namespace
}  // namespace lstore
