// Tests for the epoch-based, contention-free page de-allocation
// (Section 4.1, Step 5 / Figure 6).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/epoch.h"

namespace lstore {
namespace {

TEST(EpochTest, RetireWithoutReadersReclaimsImmediately) {
  EpochManager mgr;
  bool freed = false;
  mgr.Retire([&] { freed = true; });
  EXPECT_EQ(mgr.TryReclaim(), 1u);
  EXPECT_TRUE(freed);
}

TEST(EpochTest, ActiveReaderBlocksReclamation) {
  EpochManager mgr;
  bool freed = false;
  int slot = mgr.Enter();  // reader pinned before retire
  mgr.Retire([&] { freed = true; });
  EXPECT_EQ(mgr.TryReclaim(), 0u);
  EXPECT_FALSE(freed);
  mgr.Exit(slot);
  EXPECT_EQ(mgr.TryReclaim(), 1u);
  EXPECT_TRUE(freed);
}

TEST(EpochTest, ReaderStartedAfterRetireDoesNotBlock) {
  // "the outdated base pages must be kept around as long as there is
  // an active query that started BEFORE the merge process" — queries
  // starting after see the new pages and must not delay reclamation.
  EpochManager mgr;
  bool freed = false;
  mgr.Retire([&] { freed = true; });
  int slot = mgr.Enter();  // starts after the retire
  EXPECT_EQ(mgr.TryReclaim(), 1u);
  EXPECT_TRUE(freed);
  mgr.Exit(slot);
}

TEST(EpochTest, MultipleRetireesFreeInOrder) {
  EpochManager mgr;
  std::vector<int> order;
  int r1 = mgr.Enter();
  mgr.Retire([&] { order.push_back(1); });
  mgr.Exit(r1);
  int r2 = mgr.Enter();
  mgr.Retire([&] { order.push_back(2); });
  // r2 pinned an epoch >= retire-1's epoch but < retire-2's epoch.
  EXPECT_EQ(mgr.TryReclaim(), 1u);
  EXPECT_EQ(order, (std::vector<int>{1}));
  mgr.Exit(r2);
  EXPECT_EQ(mgr.TryReclaim(), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EpochTest, PendingCountTracksRetired) {
  EpochManager mgr;
  int slot = mgr.Enter();
  mgr.Retire([] {});
  mgr.Retire([] {});
  EXPECT_EQ(mgr.pending(), 2u);
  mgr.Exit(slot);
  mgr.TryReclaim();
  EXPECT_EQ(mgr.pending(), 0u);
}

TEST(EpochTest, DestructorFlushesPending) {
  std::atomic<int> freed{0};
  {
    EpochManager mgr;
    int slot = mgr.Enter();
    mgr.Retire([&] { freed.fetch_add(1); });
    mgr.Exit(slot);
    // Intentionally no TryReclaim.
  }
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochTest, GuardIsRaii) {
  EpochManager mgr;
  bool freed = false;
  {
    EpochGuard guard(mgr);
    mgr.Retire([&] { freed = true; });
    mgr.TryReclaim();
    EXPECT_FALSE(freed);
  }
  mgr.TryReclaim();
  EXPECT_TRUE(freed);
}

TEST(EpochTest, ConcurrentReadersNeverSeeFreedResource) {
  // Readers dereference a pointer published before Retire; the deleter
  // nulls it. If reclamation ever ran early, readers would observe the
  // null (or crash under ASAN).
  EpochManager mgr;
  std::atomic<int*> ptr{new int(42)};
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        EpochGuard g(mgr);
        int* p = ptr.load(std::memory_order_acquire);
        if (p != nullptr && *p != 42) failed = true;
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    int* old = ptr.exchange(new int(42));
    mgr.Retire([old] { delete old; });
    mgr.TryReclaim();
  }
  stop = true;
  for (auto& th : readers) th.join();
  mgr.TryReclaim();
  delete ptr.load();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace lstore
