// Correctness tests for the two baseline engines of Section 6.1:
// In-place Update + History (IUH) and Delta + Blocking Merge (DBM).
// The baselines must be *correct* so the performance comparison is
// meaningful; their structural costs (page latches, blocking drains)
// are verified here too.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "baselines/dbm/dbm_table.h"
#include "baselines/iuh/iuh_table.h"
#include "common/random.h"

namespace lstore {
namespace {

TableConfig BaselineConfig(bool merge_thread = false) {
  TableConfig cfg;
  cfg.range_size = 64;
  cfg.base_page_slots = 16;  // several pages per range
  cfg.merge_threshold = 32;
  cfg.enable_merge_thread = merge_thread;
  return cfg;
}

// ---------------------------------------------------------------------------
// IUH
// ---------------------------------------------------------------------------

class IuhTest : public ::testing::Test {
 protected:
  IuhTest() : table_(Schema(3), BaselineConfig()) {
    Txn txn = table_.Begin();
    for (Value k = 0; k < 20; ++k) {
      EXPECT_TRUE(table_.Insert(txn, {k, k * 10, k * 100}).ok());
    }
    EXPECT_TRUE(txn.Commit().ok());
  }
  IuhTable table_;
};

TEST_F(IuhTest, InsertReadUpdateRead) {
  Txn txn = table_.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(txn, 5, 0b110, &out).ok());
  EXPECT_EQ(out[1], 50u);
  ASSERT_TRUE(table_.Update(txn, 5, 0b010, {0, 51, 0}).ok());
  ASSERT_TRUE(txn.Commit().ok());
  Txn r = table_.Begin();
  ASSERT_TRUE(table_.Read(r, 5, 0b010, &out).ok());
  EXPECT_EQ(out[1], 51u);
  (void)r.Commit();
}

TEST_F(IuhTest, UpdateAppendsPreImageToHistory) {
  EXPECT_EQ(table_.history_size(), 0u);
  Txn txn = table_.Begin();
  ASSERT_TRUE(table_.Update(txn, 5, 0b010, {0, 51, 0}).ok());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(table_.history_size(), 1u);
}

TEST_F(IuhTest, AbortUndoesInPlaceUpdate) {
  Txn txn = table_.Begin();
  ASSERT_TRUE(table_.Update(txn, 5, 0b010, {0, 999, 0}).ok());
  txn.Abort();
  Txn r = table_.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(r, 5, 0b010, &out).ok());
  EXPECT_EQ(out[1], 50u);  // pre-image restored from history
  (void)r.Commit();
}

TEST_F(IuhTest, AbortUndoesChainOfOwnUpdates) {
  Txn txn = table_.Begin();
  ASSERT_TRUE(table_.Update(txn, 5, 0b010, {0, 1, 0}).ok());
  ASSERT_TRUE(table_.Update(txn, 5, 0b100, {0, 0, 2}).ok());
  ASSERT_TRUE(table_.Update(txn, 5, 0b010, {0, 3, 0}).ok());
  txn.Abort();
  Txn r = table_.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(r, 5, 0b110, &out).ok());
  EXPECT_EQ(out[1], 50u);
  EXPECT_EQ(out[2], 500u);
  (void)r.Commit();
}

TEST_F(IuhTest, SnapshotReadReconstructsFromHistory) {
  Timestamp before = table_.txn_manager().clock().Tick();
  for (Value v = 0; v < 5; ++v) {
    Txn txn = table_.Begin();
    ASSERT_TRUE(table_.Update(txn, 7, 0b010, {0, 700 + v, 0}).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  Txn snap = table_.Begin(IsolationLevel::kSnapshot);
  // Rewind the snapshot by reading as-of `before` through a direct
  // snapshot-isolation transaction started... the version at `before`
  // is only reachable through the history chain.
  (void)snap;
  Txn r = table_.Begin(IsolationLevel::kSnapshot);
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(r, 7, 0b010, &out).ok());
  EXPECT_EQ(out[1], 704u);  // latest for a fresh snapshot
  (void)r.Commit();
  (void)snap.Commit();
  (void)before;
}

TEST_F(IuhTest, SnapshotTransactionSeesStableVersionDespiteUpdates) {
  Txn snap = table_.Begin(IsolationLevel::kSnapshot);
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(snap, 7, 0b010, &out).ok());
  EXPECT_EQ(out[1], 70u);
  Txn w = table_.Begin();
  ASSERT_TRUE(table_.Update(w, 7, 0b010, {0, 71, 0}).ok());
  ASSERT_TRUE(w.Commit().ok());
  ASSERT_TRUE(table_.Read(snap, 7, 0b010, &out).ok());
  EXPECT_EQ(out[1], 70u);  // history walk reconstructs the old version
  (void)snap.Commit();
}

TEST_F(IuhTest, WriteWriteConflictAborts) {
  Txn t1 = table_.Begin();
  ASSERT_TRUE(table_.Update(t1, 9, 0b010, {0, 1, 0}).ok());
  Txn t2 = table_.Begin();
  EXPECT_TRUE(table_.Update(t2, 9, 0b010, {0, 2, 0}).IsAborted());
  t2.Abort();
  ASSERT_TRUE(t1.Commit().ok());
}

TEST_F(IuhTest, DeleteHidesAndAbortRestores) {
  Txn t1 = table_.Begin();
  ASSERT_TRUE(table_.Delete(t1, 3).ok());
  t1.Abort();
  Txn r = table_.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(r, 3, 0b010, &out).ok());
  EXPECT_EQ(out[1], 30u);
  (void)r.Commit();
  Txn t2 = table_.Begin();
  ASSERT_TRUE(table_.Delete(t2, 3).ok());
  ASSERT_TRUE(t2.Commit().ok());
  Txn r2 = table_.Begin();
  EXPECT_TRUE(table_.Read(r2, 3, 0b010, &out).IsNotFound());
  (void)r2.Commit();
}

TEST_F(IuhTest, ScanSumsVisibleVersions) {
  uint64_t sum = 0;
  Timestamp now = table_.txn_manager().clock().Tick();
  ASSERT_TRUE(table_.SumColumn(1, now, &sum).ok());
  uint64_t expect = 0;
  for (Value k = 0; k < 20; ++k) expect += k * 10;
  EXPECT_EQ(sum, expect);
}

// ---------------------------------------------------------------------------
// DBM
// ---------------------------------------------------------------------------

class DbmTest : public ::testing::Test {
 protected:
  DbmTest() : table_(Schema(3), BaselineConfig()) {
    Txn txn = table_.Begin();
    for (Value k = 0; k < 20; ++k) {
      EXPECT_TRUE(table_.Insert(txn, {k, k * 10, k * 100}).ok());
    }
    EXPECT_TRUE(txn.Commit().ok());
  }
  DbmTable table_;
};

TEST_F(DbmTest, ReadsResolveThroughDelta) {
  Txn txn = table_.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(txn, 4, 0b110, &out).ok());
  EXPECT_EQ(out[1], 40u);
  EXPECT_EQ(out[2], 400u);
  ASSERT_TRUE(table_.Update(txn, 4, 0b010, {0, 41, 0}).ok());
  ASSERT_TRUE(txn.Commit().ok());
  Txn r = table_.Begin();
  ASSERT_TRUE(table_.Read(r, 4, 0b110, &out).ok());
  EXPECT_EQ(out[1], 41u);
  EXPECT_EQ(out[2], 400u);  // untouched column from the insert delta
  (void)r.Commit();
}

TEST_F(DbmTest, MergeConsolidatesDeltaIntoMain) {
  for (Value k = 0; k < 20; ++k) {
    Txn txn = table_.Begin();
    ASSERT_TRUE(table_.Update(txn, k, 0b010, {0, k + 1000, 0}).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  ASSERT_TRUE(table_.MergeRange(0));
  EXPECT_EQ(table_.merges_performed(), 1u);
  Txn r = table_.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(r, 6, 0b110, &out).ok());
  EXPECT_EQ(out[1], 1006u);
  EXPECT_EQ(out[2], 600u);
  (void)r.Commit();
  uint64_t sum = 0;
  Timestamp now = table_.txn_manager().clock().Tick();
  ASSERT_TRUE(table_.SumColumn(1, now, &sum).ok());
  uint64_t expect = 0;
  for (Value k = 0; k < 20; ++k) expect += k + 1000;
  EXPECT_EQ(sum, expect);
}

TEST_F(DbmTest, AbortedDeltasNeverMerge) {
  Txn good = table_.Begin();
  ASSERT_TRUE(table_.Update(good, 2, 0b010, {0, 222, 0}).ok());
  ASSERT_TRUE(good.Commit().ok());
  Txn bad = table_.Begin();
  ASSERT_TRUE(table_.Update(bad, 2, 0b010, {0, 666, 0}).ok());
  bad.Abort();
  ASSERT_TRUE(table_.MergeRange(0));
  Txn r = table_.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(r, 2, 0b010, &out).ok());
  EXPECT_EQ(out[1], 222u);
  (void)r.Commit();
}

TEST_F(DbmTest, MergeDrainsActiveTransactions) {
  // The defining behaviour: a merge must WAIT for active transactions
  // and BLOCK new ones until it finishes.
  Txn open = table_.Begin();
  ASSERT_TRUE(table_.Update(open, 1, 0b010, {0, 11, 0}).ok());

  std::atomic<bool> merge_done{false};
  std::thread merger([&] {
    table_.MergeRange(0);
    merge_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(merge_done.load()) << "merge must wait for the open txn";
  ASSERT_TRUE(open.Commit().ok());
  merger.join();
  EXPECT_TRUE(merge_done.load());
  EXPECT_GT(table_.drain_waits_us(), 0u);
  // Data is intact after the drained merge.
  Txn r = table_.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(r, 1, 0b010, &out).ok());
  EXPECT_EQ(out[1], 11u);
  (void)r.Commit();
}

TEST_F(DbmTest, WriteWriteConflictAborts) {
  Txn t1 = table_.Begin();
  ASSERT_TRUE(table_.Update(t1, 9, 0b010, {0, 1, 0}).ok());
  Txn t2 = table_.Begin();
  EXPECT_TRUE(table_.Update(t2, 9, 0b010, {0, 2, 0}).IsAborted());
  t2.Abort();
  ASSERT_TRUE(t1.Commit().ok());
}

TEST_F(DbmTest, BackgroundMergeTriggersOnThreshold) {
  TableConfig cfg = BaselineConfig(/*merge_thread=*/true);
  cfg.merge_threshold = 16;
  DbmTable t(Schema(3), cfg);
  {
    Txn txn = t.Begin();
    for (Value k = 0; k < 20; ++k) {
      ASSERT_TRUE(t.Insert(txn, {k, k, k}).ok());
    }
    ASSERT_TRUE(txn.Commit().ok());
  }
  Random rng(9);
  for (int i = 0; i < 200; ++i) {
    Txn txn = t.Begin();
    if (t.Update(txn, rng.Uniform(20), 0b010, {0, Value(i), 0}).ok()) {
      (void)txn.Commit();
    } else {
      txn.Abort();
    }
  }
  for (int i = 0; i < 100 && t.merges_performed() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(t.merges_performed(), 0u);
}

}  // namespace
}  // namespace lstore
