// Merge tests (Section 4): Algorithm 1 correctness, in-page lineage
// (TPS), contention-free behaviour, insert merges, epoch reclamation,
// and independent per-column merges (Lemma 3 / Theorem 2).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "core/query.h"
#include "core/table.h"

namespace lstore {
namespace {

TableConfig MergeConfig(bool merge_thread = false) {
  TableConfig cfg;
  cfg.range_size = 64;
  cfg.insert_range_size = 64;
  cfg.tail_page_slots = 16;
  cfg.merge_threshold = 16;
  cfg.enable_merge_thread = merge_thread;
  return cfg;
}

class MergeTest : public ::testing::Test {
 protected:
  MergeTest() : table_("t", Schema(4), MergeConfig()) {}

  void LoadRows(uint64_t n) {
    Txn txn = table_.Begin();
    for (Value k = 0; k < n; ++k) {
      ASSERT_TRUE(table_.Insert(txn, {k, k * 10, k * 100, k * 1000}).ok());
    }
    ASSERT_TRUE(txn.Commit().ok());
  }

  void UpdateKey(Value key, ColumnMask mask, Value v) {
    Txn txn = table_.Begin();
    std::vector<Value> row(4, 0);
    for (int c = 0; c < 4; ++c) {
      if (mask & (1ull << c)) row[c] = v;
    }
    ASSERT_TRUE(table_.Update(txn, key, mask, row).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }

  Value ReadCol(Value key, ColumnId col) {
    Txn txn = table_.Begin();
    std::vector<Value> out;
    Status s = table_.Read(txn, key, 1ull << col, &out);
    (void)txn.Commit();
    return s.ok() ? out[col] : kNull;
  }

  Table table_;
};

TEST_F(MergeTest, InsertMergeBuildsBaseSegments) {
  LoadRows(64);  // fills range 0 exactly
  EXPECT_TRUE(table_.InsertMergeNow(0));
  EXPECT_EQ(table_.stats().insert_merges.load(), 1u);
  // Data still readable after the table-level tail pages are merged.
  for (Value k = 0; k < 64; ++k) {
    EXPECT_EQ(ReadCol(k, 1), k * 10);
  }
}

TEST_F(MergeTest, InsertMergeOfPartialRangeCoversCommittedPrefix) {
  LoadRows(20);
  EXPECT_TRUE(table_.InsertMergeNow(0));
  for (Value k = 0; k < 20; ++k) EXPECT_EQ(ReadCol(k, 2), k * 100);
  // Extension: more inserts then a second insert merge.
  LoadRows(0);  // no-op
  Txn txn = table_.Begin();
  for (Value k = 20; k < 40; ++k) {
    ASSERT_TRUE(table_.Insert(txn, {k, k * 10, k * 100, k * 1000}).ok());
  }
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_TRUE(table_.InsertMergeNow(0));
  for (Value k = 0; k < 40; ++k) EXPECT_EQ(ReadCol(k, 2), k * 100);
}

TEST_F(MergeTest, UpdateMergeConsolidatesAndAdvancesTps) {
  LoadRows(64);
  ASSERT_TRUE(table_.InsertMergeNow(0));
  for (Value k = 0; k < 32; ++k) UpdateKey(k, 0b0010, 7000 + k);
  uint32_t tail_before = table_.RangeTailLength(0);
  EXPECT_GT(tail_before, 0u);
  EXPECT_EQ(table_.RangeTps(0), 0u);
  ASSERT_TRUE(table_.MergeRangeNow(0));
  // All committed tail records consolidated: TPS = tail length.
  EXPECT_EQ(table_.RangeTps(0), tail_before);
  // Values unchanged for readers.
  for (Value k = 0; k < 32; ++k) EXPECT_EQ(ReadCol(k, 1), 7000 + k);
  for (Value k = 32; k < 64; ++k) EXPECT_EQ(ReadCol(k, 1), k * 10);
}

TEST_F(MergeTest, MergeIsRelaxedOnlyCommittedPrefix) {
  LoadRows(64);
  ASSERT_TRUE(table_.InsertMergeNow(0));
  UpdateKey(1, 0b0010, 11);
  // An uncommitted update interrupts the committed prefix.
  Txn open = table_.Begin();
  std::vector<Value> row(4, 0);
  row[1] = 99;
  ASSERT_TRUE(table_.Update(open, 2, 0b0010, row).ok());
  UpdateKey(3, 0b0010, 33);  // committed, but after the open one
  ASSERT_TRUE(table_.MergeRangeNow(0));
  uint32_t tps = table_.RangeTps(0);
  EXPECT_LT(tps, table_.RangeTailLength(0));
  // Readers still see a correct view regardless of the merge horizon.
  EXPECT_EQ(ReadCol(1, 1), 11u);
  EXPECT_EQ(ReadCol(2, 1), 20u);
  EXPECT_EQ(ReadCol(3, 1), 33u);
  ASSERT_TRUE(open.Commit().ok());
  ASSERT_TRUE(table_.MergeRangeNow(0));
  EXPECT_EQ(ReadCol(2, 1), 99u);
}

TEST_F(MergeTest, OnlyLatestVersionConsolidated) {
  LoadRows(64);
  ASSERT_TRUE(table_.InsertMergeNow(0));
  for (int i = 0; i < 10; ++i) UpdateKey(5, 0b0010, 100 + i);
  ASSERT_TRUE(table_.MergeRangeNow(0));
  EXPECT_EQ(ReadCol(5, 1), 109u);
  // Merged fast path serves the read: no chain hops afterwards.
  uint64_t hops_before = table_.stats().tail_chain_hops.load();
  EXPECT_EQ(ReadCol(5, 1), 109u);
  EXPECT_EQ(table_.stats().tail_chain_hops.load(), hops_before);
}

TEST_F(MergeTest, DeleteSurvivesMerge) {
  LoadRows(64);
  ASSERT_TRUE(table_.InsertMergeNow(0));
  {
    Txn txn = table_.Begin();
    ASSERT_TRUE(table_.Delete(txn, 9).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  ASSERT_TRUE(table_.MergeRangeNow(0));
  EXPECT_EQ(ReadCol(9, 1), kNull);  // still deleted after consolidation
  EXPECT_EQ(ReadCol(10, 1), 100u);
}

TEST_F(MergeTest, AbortedUpdatesAreSkippedByMerge) {
  LoadRows(64);
  ASSERT_TRUE(table_.InsertMergeNow(0));
  UpdateKey(4, 0b0010, 41);
  {
    Txn txn = table_.Begin();
    std::vector<Value> row(4, 0);
    row[1] = 666;
    ASSERT_TRUE(table_.Update(txn, 4, 0b0010, row).ok());
    txn.Abort();
  }
  ASSERT_TRUE(table_.MergeRangeNow(0));
  // TPS advanced past the tombstone, but the aborted value never wins.
  EXPECT_EQ(table_.RangeTps(0), table_.RangeTailLength(0));
  EXPECT_EQ(ReadCol(4, 1), 41u);
}

TEST_F(MergeTest, SnapshotReadsSurviveMerge) {
  // Lemma 2: pre-image snapshots make it safe to discard outdated
  // base pages — old snapshots remain answerable from tail pages.
  LoadRows(64);
  ASSERT_TRUE(table_.InsertMergeNow(0));
  Timestamp before = table_.txn_manager().clock().Tick();
  for (Value k = 0; k < 64; ++k) UpdateKey(k, 0b0010, 5000 + k);
  ASSERT_TRUE(table_.MergeRangeNow(0));
  table_.epochs().TryReclaim();
  std::vector<Value> out;
  for (Value k = 0; k < 64; k += 7) {
    ASSERT_TRUE(table_.ReadAsOf(k, before, 0b0010, &out).ok());
    EXPECT_EQ(out[1], k * 10) << "pre-merge value must survive";
  }
}

TEST_F(MergeTest, MergeRetiresOldSegmentsThroughEpochs) {
  LoadRows(64);
  ASSERT_TRUE(table_.InsertMergeNow(0));
  for (Value k = 0; k < 32; ++k) UpdateKey(k, 0b0010, k);
  size_t pending_before = table_.epochs().pending();
  ASSERT_TRUE(table_.MergeRangeNow(0));
  EXPECT_GT(table_.epochs().pending(), pending_before);
  EXPECT_GT(table_.stats().segments_retired.load(), 0u);
  table_.epochs().TryReclaim();
  EXPECT_EQ(table_.epochs().pending(), 0u);
}

TEST_F(MergeTest, PerColumnMergeYieldsMixedTpsDetectableState) {
  // Section 4.2: "the different columns of the same record can be
  // merged completely independent of each other" — Lemma 3 says the
  // resulting mixed-TPS state is detectable; Theorem 2 says reads can
  // still be answered.
  LoadRows(64);
  ASSERT_TRUE(table_.InsertMergeNow(0));
  for (Value k = 0; k < 16; ++k) UpdateKey(k, 0b0110, 900 + k);
  ASSERT_TRUE(table_.MergeRangeColumns(0, 0b0010));  // merge column 1 only
  auto tps = table_.RangeColumnTps(0);
  EXPECT_GT(tps[1], tps[2]);  // inconsistent lineage across columns
  // Reads across both columns remain consistent (Theorem 2).
  Txn txn = table_.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(txn, 3, 0b0110, &out).ok());
  EXPECT_EQ(out[1], 903u);
  EXPECT_EQ(out[2], 903u);
  (void)txn.Commit();
  // Completing the merge equalizes the lineage.
  ASSERT_TRUE(table_.MergeRangeColumns(0, 0b0100));
  tps = table_.RangeColumnTps(0);
  EXPECT_EQ(tps[1], tps[2]);
}

TEST_F(MergeTest, MergeIsIdempotentOnRepeat) {
  LoadRows(64);
  ASSERT_TRUE(table_.InsertMergeNow(0));
  for (Value k = 0; k < 20; ++k) UpdateKey(k, 0b0010, 3000 + k);
  ASSERT_TRUE(table_.MergeRangeNow(0));
  uint32_t tps = table_.RangeTps(0);
  EXPECT_FALSE(table_.MergeRangeNow(0));  // nothing new to merge
  EXPECT_EQ(table_.RangeTps(0), tps);
  for (Value k = 0; k < 20; ++k) EXPECT_EQ(ReadCol(k, 1), 3000 + k);
}

TEST_F(MergeTest, CumulationResetAtTpsHighWaterMark) {
  // Section 4.2 / Table 5: cumulative updates reset at the merge
  // boundary; readers combine merged pages with post-reset tails.
  LoadRows(64);
  ASSERT_TRUE(table_.InsertMergeNow(0));
  UpdateKey(2, 0b0010, 21);   // col1
  UpdateKey(2, 0b0100, 22);   // col2 (cumulative: carries col1)
  ASSERT_TRUE(table_.MergeRangeNow(0));
  UpdateKey(2, 0b1000, 23);   // col3, cumulation was reset at merge
  Txn txn = table_.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(txn, 2, 0b1110, &out).ok());
  EXPECT_EQ(out[1], 21u);
  EXPECT_EQ(out[2], 22u);
  EXPECT_EQ(out[3], 23u);
  (void)txn.Commit();
}

TEST_F(MergeTest, NonCumulativeModeStillCorrect) {
  TableConfig cfg = MergeConfig();
  cfg.cumulative_updates = false;
  Table t("nc", Schema(4), cfg);
  Txn txn = t.Begin();
  ASSERT_TRUE(t.Insert(txn, {1, 10, 20, 30}).ok());
  ASSERT_TRUE(txn.Commit().ok());
  for (Value v = 0; v < 5; ++v) {
    Txn u = t.Begin();
    std::vector<Value> row(4, 0);
    row[1] = 100 + v;
    ASSERT_TRUE(t.Update(u, 1, 0b0010, row).ok());
    row[1] = 0;
    row[2] = 200 + v;
    ASSERT_TRUE(t.Update(u, 1, 0b0100, row).ok());
    ASSERT_TRUE(u.Commit().ok());
  }
  Txn r = t.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(t.Read(r, 1, 0b0110, &out).ok());
  EXPECT_EQ(out[1], 104u);  // readers walk the chain without cumulation
  EXPECT_EQ(out[2], 204u);
  (void)r.Commit();
}

TEST_F(MergeTest, BackgroundMergeKeepsUpWithWriters) {
  TableConfig cfg = MergeConfig(/*merge_thread=*/true);
  Table t("bg", Schema(4), cfg);
  Txn setup = t.Begin();
  for (Value k = 0; k < 128; ++k) {
    ASSERT_TRUE(t.Insert(setup, {k, k, k, k}).ok());
  }
  ASSERT_TRUE(setup.Commit().ok());
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Random rng(3);
    int i = 0;
    while (!stop.load()) {
      Txn txn = t.Begin();
      std::vector<Value> row(4, 0);
      row[1] = ++i;
      Value key = rng.Uniform(128);
      if (t.Update(txn, key, 0b0010, row).ok()) {
        (void)txn.Commit();
      } else {
        txn.Abort();
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop = true;
  writer.join();
  t.WaitForMergeQueue();
  EXPECT_GT(t.stats().merges.load() + t.stats().insert_merges.load(), 0u);
  // Table remains fully readable.
  for (Value k = 0; k < 128; ++k) {
    Txn txn = t.Begin();
    std::vector<Value> out;
    EXPECT_TRUE(t.Read(txn, k, 0b0001, &out).ok());
    (void)txn.Commit();
  }
}

// Property sweep: merged view must equal the chain-replayed view for
// every key, across range sizes and update volumes.
struct MergeSweepCase {
  const char* name;
  uint32_t range_size;
  uint32_t rows;
  uint32_t updates;
  bool cumulative;
};

class MergeEquivalence : public ::testing::TestWithParam<MergeSweepCase> {};

TEST_P(MergeEquivalence, MergedViewMatchesUnmergedView) {
  const auto& p = GetParam();
  TableConfig cfg;
  cfg.range_size = p.range_size;
  cfg.insert_range_size = p.range_size;
  cfg.tail_page_slots = 16;
  cfg.enable_merge_thread = false;
  cfg.cumulative_updates = p.cumulative;

  // Twin tables: one merged, one not; they must agree everywhere.
  Table merged("m", Schema(4), cfg);
  Table plain("p", Schema(4), cfg);
  Random rng(p.rows * 31 + p.updates);

  for (Table* t : {&merged, &plain}) {
    Txn txn = t->Begin();
    for (Value k = 0; k < p.rows; ++k) {
      ASSERT_TRUE(t->Insert(txn, {k, k, k, k}).ok());
    }
    ASSERT_TRUE(txn.Commit().ok());
  }
  for (uint32_t i = 0; i < p.updates; ++i) {
    Value key = rng.Uniform(p.rows);
    ColumnMask mask = 1ull << (1 + rng.Uniform(3));
    Value v = rng.Uniform(100000);
    for (Table* t : {&merged, &plain}) {
      Txn txn = t->Begin();
      std::vector<Value> row(4, v);
      ASSERT_TRUE(t->Update(txn, key, mask, row).ok());
      ASSERT_TRUE(txn.Commit().ok());
    }
  }
  merged.FlushAll();
  for (Value k = 0; k < p.rows; ++k) {
    Txn tm = merged.Begin();
    Txn tp = plain.Begin();
    std::vector<Value> a, b;
    ASSERT_TRUE(merged.Read(tm, k, 0b1111, &a).ok());
    ASSERT_TRUE(plain.Read(tp, k, 0b1111, &b).ok());
    EXPECT_EQ(a, b) << "key " << k;
    (void)tm.Commit();
    (void)tp.Commit();
  }
  // Scans agree too.
  uint64_t sm = 0, sp = 0;
  ASSERT_TRUE(merged.NewQuery().Sum(1, &sm).ok());
  ASSERT_TRUE(plain.NewQuery().Sum(1, &sp).ok());
  EXPECT_EQ(sm, sp);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MergeEquivalence,
    ::testing::Values(
        MergeSweepCase{"tiny_range", 16, 50, 100, true},
        MergeSweepCase{"exact_range", 64, 64, 200, true},
        MergeSweepCase{"multi_range", 64, 300, 500, true},
        MergeSweepCase{"non_cumulative", 64, 120, 300, false},
        MergeSweepCase{"hot_keys", 32, 40, 600, true},
        MergeSweepCase{"sparse", 128, 500, 50, true}),
    [](const ::testing::TestParamInfo<MergeSweepCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace lstore
