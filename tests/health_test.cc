// Health-model tests (src/obs/health.h, event_log.h, and the HEALTH
// wire op): watchdog verdict transitions driven by an injected fake
// clock (zero wall-clock sleeps), busy-scoped classification (idle
// actors never flagged; slow-but-beating actors never false-positive),
// exactly one flight-recorder dump per stall episode, event-ring
// wraparound and severity filtering, events.log JSON schema + size
// rotation, a deterministic end-to-end merge-thread stall injected
// through TableConfig::merge_test_park, HEALTH over the wire, and
// clean teardown ordering (watchdog stops before watched subsystems).

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "core/database.h"
#include "core/table.h"
#include "obs/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "server/client.h"
#include "server/server.h"

namespace lstore {
namespace {

namespace fs = std::filesystem;

// Injected registry clock: a single atomic read, so beats and sweeps
// from any thread stay race-free under TSan.
std::atomic<uint64_t> g_fake_now_ns{0};
uint64_t FakeNow() { return g_fake_now_ns.load(std::memory_order_relaxed); }

constexpr uint64_t kMsNs = 1000000ull;

std::string FreshDir(const std::string& stem) {
  std::string dir = std::string(::testing::TempDir()) + stem + "_" +
                    std::to_string(::getpid());
  fs::remove_all(dir);
  return dir;
}

size_t CountStallDumps(const std::string& dir) {
  size_t n = 0;
  if (!fs::exists(dir)) return 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    std::string name = e.path().filename().string();
    if (name.rfind("stall-", 0) == 0 &&
        name.size() > 11 &&
        name.compare(name.size() - 11, 11, ".trace.json") == 0) {
      ++n;
    }
  }
  return n;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

const ActorHealth* FindActor(const HealthReport& report,
                             const std::string& name) {
  for (const ActorHealth& a : report.actors) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

// --- watchdog verdict machine (fake clock, no database) --------------------

TEST(WatchdogTest, TransitionsEmitEventsAndDumpOncePerEpisode) {
  g_fake_now_ns.store(0);
  std::string dump_dir = FreshDir("lstore_health_dumps");
  fs::create_directories(dump_dir);

  HealthRegistry registry;
  registry.SetClockForTest(&FakeNow);
  EventLog events(64);
  MetricsRegistry metrics;
  std::atomic<uint64_t> dump_calls{0};
  Watchdog dog(&registry, &events, &metrics, [&dump_calls] {
    dump_calls.fetch_add(1);
    return std::string("{\"traceEvents\":[]}");
  });
  dog.set_dump_dir(dump_dir);

  auto hb = registry.Register("merge:orders", /*slow_ms=*/100,
                              /*stall_ms=*/500);
  hb->BeginWork();  // busy from t=0

  // t=50ms: busy but inside the slow deadline.
  g_fake_now_ns.store(50 * kMsNs);
  HealthReport r = dog.SweepOnce();
  ASSERT_EQ(r.actors.size(), 1u);
  EXPECT_EQ(r.actors[0].verdict, HealthVerdict::kHealthy);
  EXPECT_TRUE(r.actors[0].busy);
  EXPECT_EQ(r.healthy, 1u);
  EXPECT_EQ(events.total(), 0u);  // no verdict change yet

  // t=150ms: past slow_ms -> slow, one warn event.
  g_fake_now_ns.store(150 * kMsNs);
  r = dog.SweepOnce();
  EXPECT_EQ(r.actors[0].verdict, HealthVerdict::kSlow);
  EXPECT_EQ(r.slow, 1u);
  std::vector<Event> ev = events.Recent(16);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].severity, EventSeverity::kWarn);
  EXPECT_EQ(ev[0].actor, "merge:orders");
  EXPECT_EQ(ev[0].kind, "watchdog");
  EXPECT_NE(ev[0].fields.find("\"verdict\":\"slow\""), std::string::npos);
  EXPECT_NE(ev[0].fields.find("\"prev\":\"healthy\""), std::string::npos);
  EXPECT_EQ(dog.stall_dumps(), 0u);

  // t=600ms: past stall_ms -> stalled, error event, exactly one dump.
  g_fake_now_ns.store(600 * kMsNs);
  r = dog.SweepOnce();
  EXPECT_EQ(r.actors[0].verdict, HealthVerdict::kStalled);
  EXPECT_EQ(r.stalled, 1u);
  EXPECT_EQ(dog.stall_dumps(), 1u);
  EXPECT_EQ(dump_calls.load(), 1u);
  EXPECT_EQ(CountStallDumps(dump_dir), 1u);
  EXPECT_EQ(metrics.GetGauge("lstore_health_stalled")->value(), 1);
  EXPECT_EQ(metrics.GetGauge("lstore_health_healthy")->value(), 0);
  EXPECT_EQ(metrics.GetGauge("lstore_health_actors")->value(), 1);

  // Still stalled on later sweeps: the episode does NOT dump again.
  g_fake_now_ns.store(700 * kMsNs);
  r = dog.SweepOnce();
  EXPECT_EQ(r.actors[0].verdict, HealthVerdict::kStalled);
  EXPECT_EQ(dog.stall_dumps(), 1u);
  EXPECT_EQ(dump_calls.load(), 1u);

  // Recovery: a fresh beat (still busy) flips the verdict back and
  // emits an info event.
  uint64_t before = events.total();
  hb->Beat();
  r = dog.SweepOnce();
  EXPECT_EQ(r.actors[0].verdict, HealthVerdict::kHealthy);
  EXPECT_EQ(metrics.GetGauge("lstore_health_stalled")->value(), 0);
  ev = events.Recent(1);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].severity, EventSeverity::kInfo);
  EXPECT_NE(ev[0].fields.find("\"prev\":\"stalled\""), std::string::npos);
  EXPECT_EQ(events.total(), before + 1);

  // A second stall is a NEW episode: the dump re-arms.
  g_fake_now_ns.store(g_fake_now_ns.load() + 600 * kMsNs);
  r = dog.SweepOnce();
  EXPECT_EQ(r.actors[0].verdict, HealthVerdict::kStalled);
  EXPECT_EQ(dog.stall_dumps(), 2u);
  EXPECT_EQ(dump_calls.load(), 2u);

  hb->EndWork();
  r = dog.SweepOnce();
  EXPECT_EQ(r.actors[0].verdict, HealthVerdict::kHealthy);
  EXPECT_FALSE(r.actors[0].busy);
}

TEST(WatchdogTest, IdleActorsNeverFlagged) {
  g_fake_now_ns.store(0);
  HealthRegistry registry;
  registry.SetClockForTest(&FakeNow);
  EventLog events(16);
  Watchdog dog(&registry, &events, nullptr, nullptr);

  // Registered but never BeginWork'd: parked on its cv waiting for
  // work. Silence for an hour is not a liveness failure.
  auto hb = registry.Register("checkpointer", 100, 500);
  g_fake_now_ns.store(3600ull * 1000 * kMsNs);
  HealthReport r = dog.SweepOnce();
  ASSERT_EQ(r.actors.size(), 1u);
  EXPECT_EQ(r.actors[0].verdict, HealthVerdict::kHealthy);
  EXPECT_EQ(r.stalled, 0u);
  EXPECT_EQ(events.total(), 0u);
  EXPECT_EQ(dog.stall_dumps(), 0u);
}

TEST(WatchdogTest, SlowButBeatingActorNeverFalsePositives) {
  g_fake_now_ns.store(0);
  HealthRegistry registry;
  registry.SetClockForTest(&FakeNow);
  EventLog events(16);
  Watchdog dog(&registry, &events, nullptr, nullptr);

  auto hb = registry.Register("group_commit", 100, 500);
  hb->BeginWork();
  // Ten deliberate slow beats: 50ms of simulated work between each —
  // never past the 100ms slow deadline at sweep time, even though the
  // unit of work spans 500ms+ in total.
  for (int i = 0; i < 10; ++i) {
    g_fake_now_ns.store(g_fake_now_ns.load() + 50 * kMsNs);
    hb->Beat();
    HealthReport r = dog.SweepOnce();
    ASSERT_EQ(r.actors.size(), 1u);
    EXPECT_EQ(r.actors[0].verdict, HealthVerdict::kHealthy) << "beat " << i;
  }
  hb->EndWork();
  EXPECT_EQ(events.total(), 0u);
  EXPECT_EQ(dog.stall_dumps(), 0u);
  EXPECT_GE(hb->beats(), 11u);
}

TEST(WatchdogTest, DroppedHeartbeatUnregistersActor) {
  g_fake_now_ns.store(0);
  HealthRegistry registry;
  registry.SetClockForTest(&FakeNow);
  Watchdog dog(&registry, nullptr, nullptr, nullptr);

  auto hb = registry.Register("server.reader.7");
  EXPECT_EQ(dog.SweepOnce().actors.size(), 1u);
  hb.reset();  // actor teardown = dropping the shared_ptr
  EXPECT_EQ(dog.SweepOnce().actors.size(), 0u);
}

// --- event log -------------------------------------------------------------

TEST(EventLogTest, RingWrapsAndFiltersBySeverity) {
  EventLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.Emit(EventSeverity::kInfo, "t", "tick", "\"i\":" + std::to_string(i));
  }
  EXPECT_EQ(log.total(), 10u);
  std::vector<Event> recent = log.Recent(100);
  ASSERT_EQ(recent.size(), 4u);  // ring bounded at capacity
  for (size_t i = 0; i < 4; ++i) {
    // Oldest-first, retaining exactly the newest four (6..9).
    EXPECT_EQ(recent[i].fields, "\"i\":" + std::to_string(6 + i));
  }

  log.Emit(EventSeverity::kWarn, "t", "pressure");
  log.Emit(EventSeverity::kError, "t", "stall");
  std::vector<Event> serious = log.Recent(100, EventSeverity::kWarn);
  ASSERT_EQ(serious.size(), 2u);
  EXPECT_EQ(serious[0].kind, "pressure");
  EXPECT_EQ(serious[1].kind, "stall");
  EXPECT_EQ(log.Recent(1, EventSeverity::kWarn).size(), 1u);
}

TEST(EventLogTest, JsonLinesRoundTripAndRotate) {
  std::string dir = FreshDir("lstore_health_events");
  fs::create_directories(dir);
  std::string path = dir + "/events.log";

  // Exact line schema (the shape check_events_json.py validates).
  Event e;
  e.ts_ms = 1234;
  e.severity = EventSeverity::kWarn;
  e.actor = "buffer\"pool";  // escaping round-trips
  e.kind = "budget_pressure";
  e.fields = "\"resident_bytes\":9,\"budget_bytes\":8";
  EXPECT_EQ(RenderEventJson(e),
            "{\"ts_ms\":1234,\"severity\":\"warn\","
            "\"actor\":\"buffer\\\"pool\",\"kind\":\"budget_pressure\","
            "\"resident_bytes\":9,\"budget_bytes\":8}");

  // Tight size bound: the file rotates to .1 instead of growing.
  EventLog log(8);
  log.Configure(path, /*max_bytes=*/256);
  for (int i = 0; i < 32; ++i) {
    log.Emit(EventSeverity::kInfo, "checkpointer", "checkpoint_begin",
             "\"id\":" + std::to_string(i));
  }
  EXPECT_TRUE(fs::exists(path));
  EXPECT_TRUE(fs::exists(path + ".1"));
  EXPECT_LT(fs::file_size(path), 256u + 128u);  // bounded, not unbounded

  // Every surviving line keeps the fixed leading keys in order.
  for (const std::string& f : {path, path + ".1"}) {
    std::vector<std::string> lines = ReadLines(f);
    ASSERT_FALSE(lines.empty()) << f;
    for (const std::string& line : lines) {
      EXPECT_EQ(line.rfind("{\"ts_ms\":", 0), 0u) << line;
      EXPECT_NE(line.find("\"severity\":\"info\""), std::string::npos);
      EXPECT_NE(line.find("\"actor\":\"checkpointer\""), std::string::npos);
      EXPECT_NE(line.find("\"kind\":\"checkpoint_begin\""), std::string::npos);
      EXPECT_EQ(line.back(), '}');
    }
  }
  fs::remove_all(dir);
}

// --- end-to-end: injected merge stall on a durable database ----------------

TEST(HealthDatabaseTest, MergeStallDetectedDumpedOnceAndRecovers) {
  std::string dir = FreshDir("lstore_health_stall");
  std::atomic<int> park{0};
  {
    DurabilityOptions opts;
    opts.watchdog_interval_ms = 0;  // sweeps only via Health(): no races
    opts.health_slow_ms = 100;
    opts.health_stall_ms = 500;
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(dir, opts, &db).ok());

    // Fake clock BEFORE the table exists, so the merge heartbeat's
    // whole life runs on it. (A pre-swap real-clock stamp would only
    // clamp since_beat to zero — never a spurious stall.)
    g_fake_now_ns.store(1 * kMsNs);
    db->health().SetClockForTest(&FakeNow);

    TableConfig cfg;
    cfg.range_size = 64;
    cfg.insert_range_size = 64;
    cfg.tail_page_slots = 16;
    cfg.merge_threshold = 8;
    cfg.enable_merge_thread = true;
    cfg.merge_test_park = &park;
    park.store(1, std::memory_order_release);  // park the FIRST task
    ASSERT_TRUE(db->CreateTable("t", Schema(2), cfg).ok());
    Table* table = db->GetTable("t");
    ASSERT_NE(table, nullptr);

    // Enough committed work to trigger a background merge task.
    {
      Txn txn = db->Begin();
      for (Value k = 0; k < 64; ++k) {
        ASSERT_TRUE(table->Insert(txn, {k, k * 10}).ok());
      }
      ASSERT_TRUE(txn.Commit().ok());
    }
    for (Value k = 0; k < 16; ++k) {
      Txn txn = db->Begin();
      ASSERT_TRUE(table->Update(txn, k, 0b10, {0, 7000 + k}).ok());
      ASSERT_TRUE(txn.Commit().ok());
    }

    // Wait (bounded, real time) for the merge thread to claim the task
    // and ack the park — it is now busy and silent, by construction.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(30);
    while (park.load(std::memory_order_acquire) != 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(park.load(std::memory_order_acquire), 2)
        << "merge thread never claimed the parked task";

    // Cross the stall deadline on the fake clock: detected within one
    // sweep, gauge flips 0 -> 1, exactly one flight-recorder dump.
    g_fake_now_ns.store(g_fake_now_ns.load() + 600 * kMsNs);
    HealthReport report = db->Health();
    const ActorHealth* merge_actor = FindActor(report, "merge:t");
    ASSERT_NE(merge_actor, nullptr);
    EXPECT_EQ(merge_actor->verdict, HealthVerdict::kStalled);
    EXPECT_TRUE(merge_actor->busy);
    EXPECT_GE(merge_actor->since_beat_ms, 600u);
    EXPECT_EQ(report.stalled, 1u);
    EXPECT_EQ(db->metrics().GetGauge("lstore_health_stalled")->value(), 1);
    EXPECT_EQ(db->watchdog()->stall_dumps(), 1u);
    EXPECT_EQ(CountStallDumps(dir), 1u);

    // The report carries the watchdog event; so does <dir>/events.log.
    bool saw_event = false;
    for (const Event& e : report.recent_events) {
      if (e.kind == "watchdog" && e.actor == "merge:t" &&
          e.severity == EventSeverity::kError &&
          e.fields.find("\"verdict\":\"stalled\"") != std::string::npos) {
        saw_event = true;
      }
    }
    EXPECT_TRUE(saw_event);
    bool saw_line = false;
    for (const std::string& line : ReadLines(dir + "/events.log")) {
      if (line.find("\"kind\":\"watchdog\"") != std::string::npos &&
          line.find("\"actor\":\"merge:t\"") != std::string::npos &&
          line.find("\"verdict\":\"stalled\"") != std::string::npos) {
        saw_line = true;
      }
    }
    EXPECT_TRUE(saw_line);

    // Still stalled on the next sweep: no second dump for the episode.
    g_fake_now_ns.store(g_fake_now_ns.load() + 100 * kMsNs);
    report = db->Health();
    EXPECT_EQ(FindActor(report, "merge:t")->verdict, HealthVerdict::kStalled);
    EXPECT_EQ(db->watchdog()->stall_dumps(), 1u);
    EXPECT_EQ(CountStallDumps(dir), 1u);

    // Release the park; the merge finishes (beating as it goes) and
    // the verdict returns to healthy.
    park.store(0, std::memory_order_release);
    table->WaitForMergeQueue();
    report = db->Health();
    EXPECT_EQ(FindActor(report, "merge:t")->verdict, HealthVerdict::kHealthy);
    EXPECT_EQ(report.stalled, 0u);
    EXPECT_EQ(db->metrics().GetGauge("lstore_health_stalled")->value(), 0);
    EXPECT_EQ(db->watchdog()->stall_dumps(), 1u);  // episode ended cleanly

    bool saw_recovery = false;
    for (const Event& e : db->event_log().Recent(64)) {
      if (e.kind == "watchdog" && e.actor == "merge:t" &&
          e.fields.find("\"prev\":\"stalled\"") != std::string::npos) {
        saw_recovery = true;
      }
    }
    EXPECT_TRUE(saw_recovery);
  }
  fs::remove_all(dir);
}

// --- HEALTH over the wire --------------------------------------------------

TEST(HealthWireTest, HealthOpRoundTripsActorsAndEvents) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", Schema(2), {}).ok());
  db.event_log().Emit(EventSeverity::kWarn, "test", "marker",
                      "\"token\":42");

  Server server(&db, {});
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  HealthReport report;
  ASSERT_TRUE(client.Health(&report).ok());
  // The server's own pool registered heartbeats; the sweep saw them.
  EXPECT_NE(FindActor(report, "server.worker.0"), nullptr);
  EXPECT_FALSE(report.actors.empty());
  EXPECT_EQ(report.healthy + report.slow + report.stalled,
            report.actors.size());
  // Actor rows arrive sorted (server-side contract preserved).
  for (size_t i = 1; i < report.actors.size(); ++i) {
    EXPECT_LT(report.actors[i - 1].name, report.actors[i].name);
  }

  bool saw_marker = false;
  bool saw_start = false;
  for (const Event& e : report.recent_events) {
    if (e.kind == "marker" && e.actor == "test" &&
        e.severity == EventSeverity::kWarn &&
        e.fields == "\"token\":42") {
      saw_marker = true;
    }
    if (e.kind == "start" && e.actor == "server") saw_start = true;
  }
  EXPECT_TRUE(saw_marker);
  EXPECT_TRUE(saw_start);

  // The JSON rendering (lstore_cli status --json) covers the report.
  std::string json = RenderHealthJson(report);
  EXPECT_EQ(json.rfind("{\"healthy\":", 0), 0u);
  EXPECT_NE(json.find("\"name\":\"server.worker.0\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"marker\""), std::string::npos);

  server.Stop();
  std::vector<Event> after = db.event_log().Recent(64);
  bool saw_stop = false;
  for (const Event& e : after) {
    if (e.kind == "stop" && e.actor == "server") saw_stop = true;
  }
  EXPECT_TRUE(saw_stop);
}

TEST(HealthWireTest, ServerSampledTraceIdsProduceSpans) {
  Database db;
  ServerConfig cfg;
  cfg.trace_sample_every = 1;  // every un-flagged request is sampled
  Server server(&db, cfg);
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  uint64_t before = FlightRecorder::Instance().recorded();
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Ping().ok());
  uint64_t after = FlightRecorder::Instance().recorded();
  if (kTraceEnabled) {
    // Server-minted ids trace the requests end to end: each ping
    // records at least its decode + root spans.
    EXPECT_GE(after, before + 2);
  } else {
    // Sampling compiles away with tracing: no spans, no crash.
    EXPECT_EQ(after, before);
  }
}

// --- teardown ordering -----------------------------------------------------

TEST(HealthDatabaseTest, BackgroundWatchdogTearsDownBeforeActors) {
  std::string dir = FreshDir("lstore_health_teardown");
  {
    DurabilityOptions opts;
    opts.watchdog_interval_ms = 1;  // aggressive background sweeps
    opts.metrics_report_interval_ms = 1;
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(dir, opts, &db).ok());

    TableConfig cfg;
    cfg.range_size = 64;
    cfg.insert_range_size = 64;
    cfg.merge_threshold = 8;
    cfg.enable_merge_thread = true;
    ASSERT_TRUE(db->CreateTable("t", Schema(2), cfg).ok());
    Table* table = db->GetTable("t");
    {
      Txn txn = db->Begin();
      for (Value k = 0; k < 64; ++k) {
        ASSERT_TRUE(table->Insert(txn, {k, k}).ok());
      }
      ASSERT_TRUE(txn.Commit().ok());
    }
    // Let the watchdog thread overlap live merge/commit actors, then
    // destroy the Database: ~Database stops the watchdog FIRST, so no
    // sweep may observe a half-destroyed actor (the TSan target).
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace lstore
