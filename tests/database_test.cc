// Database facade tests: table registry, shared clock/manager, and
// atomic multi-table transactions.

#include <gtest/gtest.h>

#include "core/database.h"

namespace lstore {
namespace {

TableConfig Cfg() {
  TableConfig cfg;
  cfg.range_size = 64;
  cfg.enable_merge_thread = false;
  return cfg;
}

TEST(DatabaseTest, CreateGetDropTables) {
  Database db;
  EXPECT_TRUE(db.CreateTable("a", Schema(3), Cfg()).ok());
  EXPECT_TRUE(db.CreateTable("b", Schema(4), Cfg()).ok());
  EXPECT_TRUE(db.CreateTable("a", Schema(3), Cfg()).IsAlreadyExists());
  EXPECT_NE(db.GetTable("a"), nullptr);
  EXPECT_EQ(db.GetTable("c"), nullptr);
  EXPECT_EQ(db.TableNames().size(), 2u);
  EXPECT_TRUE(db.DropTable("b").ok());
  EXPECT_TRUE(db.DropTable("b").IsNotFound());
  EXPECT_EQ(db.TableNames().size(), 1u);
}

TEST(DatabaseTest, TablesShareTheClock) {
  Database db;
  ASSERT_TRUE(db.CreateTable("a", Schema(3), Cfg()).ok());
  ASSERT_TRUE(db.CreateTable("b", Schema(3), Cfg()).ok());
  Table* a = db.GetTable("a");
  Table* b = db.GetTable("b");
  EXPECT_EQ(&a->txn_manager(), &b->txn_manager());
  Timestamp t1 = a->txn_manager().clock().Tick();
  Timestamp t2 = b->txn_manager().clock().Tick();
  EXPECT_LT(t1, t2);
}

TEST(DatabaseTest, CrossTableTransactionCommitsAtomically) {
  Database db;
  ASSERT_TRUE(db.CreateTable("accounts", Schema(2), Cfg()).ok());
  ASSERT_TRUE(db.CreateTable("audit", Schema(2), Cfg()).ok());
  Table* accounts = db.GetTable("accounts");
  Table* audit = db.GetTable("audit");

  Txn txn = db.Begin();
  ASSERT_TRUE(accounts->Insert(txn, {1, 500}).ok());
  ASSERT_TRUE(audit->Insert(txn, {100, 1}).ok());

  // Before commit: invisible in BOTH tables.
  Txn peek = db.Begin();
  std::vector<Value> out;
  EXPECT_TRUE(accounts->Read(peek, 1, 0b11, &out).IsNotFound());
  EXPECT_TRUE(audit->Read(peek, 100, 0b11, &out).IsNotFound());
  ASSERT_TRUE(peek.Commit().ok());

  ASSERT_TRUE(txn.Commit().ok());

  // After commit: visible in BOTH.
  Txn check = db.Begin();
  EXPECT_TRUE(accounts->Read(check, 1, 0b11, &out).ok());
  EXPECT_EQ(out[1], 500u);
  EXPECT_TRUE(audit->Read(check, 100, 0b11, &out).ok());
  EXPECT_EQ(out[1], 1u);
  ASSERT_TRUE(check.Commit().ok());
}

TEST(DatabaseTest, CrossTableAbortRollsBackEverything) {
  Database db;
  ASSERT_TRUE(db.CreateTable("a", Schema(2), Cfg()).ok());
  ASSERT_TRUE(db.CreateTable("b", Schema(2), Cfg()).ok());
  Table* a = db.GetTable("a");
  Table* b = db.GetTable("b");
  {
    Txn setup = db.Begin();
    ASSERT_TRUE(a->Insert(setup, {1, 10}).ok());
    ASSERT_TRUE(b->Insert(setup, {1, 20}).ok());
    ASSERT_TRUE(setup.Commit().ok());
  }
  Txn txn = db.Begin();
  ASSERT_TRUE(a->Update(txn, 1, 0b10, {0, 11}).ok());
  ASSERT_TRUE(b->Update(txn, 1, 0b10, {0, 21}).ok());
  txn.Abort();

  Txn check = db.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(a->Read(check, 1, 0b10, &out).ok());
  EXPECT_EQ(out[1], 10u);
  ASSERT_TRUE(b->Read(check, 1, 0b10, &out).ok());
  EXPECT_EQ(out[1], 20u);
  ASSERT_TRUE(check.Commit().ok());
}

TEST(DatabaseTest, CrossTableSerializableValidation) {
  Database db;
  ASSERT_TRUE(db.CreateTable("a", Schema(2), Cfg()).ok());
  ASSERT_TRUE(db.CreateTable("b", Schema(2), Cfg()).ok());
  Table* a = db.GetTable("a");
  Table* b = db.GetTable("b");
  {
    Txn setup = db.Begin();
    ASSERT_TRUE(a->Insert(setup, {1, 10}).ok());
    ASSERT_TRUE(b->Insert(setup, {1, 20}).ok());
    ASSERT_TRUE(setup.Commit().ok());
  }
  // t1 reads from table a; a concurrent writer invalidates that read;
  // t1's write to table b must not commit (cross-table consistency).
  Txn t1 = db.Begin(IsolationLevel::kSerializable);
  std::vector<Value> out;
  ASSERT_TRUE(a->Read(t1, 1, 0b10, &out).ok());
  ASSERT_TRUE(b->Update(t1, 1, 0b10, {0, out[1] + 100}).ok());

  Txn t2 = db.Begin();
  ASSERT_TRUE(a->Update(t2, 1, 0b10, {0, 99}).ok());
  ASSERT_TRUE(t2.Commit().ok());

  EXPECT_TRUE(t1.Commit().IsAborted());
  // b unchanged.
  Txn check = db.Begin();
  ASSERT_TRUE(b->Read(check, 1, 0b10, &out).ok());
  EXPECT_EQ(out[1], 20u);
  ASSERT_TRUE(check.Commit().ok());
}

TEST(DatabaseTest, SingleTableCommitStillWorksThroughTable) {
  // Transactions confined to one table may commit through the table
  // directly, even when it belongs to a database.
  Database db;
  ASSERT_TRUE(db.CreateTable("a", Schema(2), Cfg()).ok());
  Table* a = db.GetTable("a");
  Txn txn = a->Begin();
  ASSERT_TRUE(a->Insert(txn, {5, 50}).ok());
  ASSERT_TRUE(txn.Commit().ok());
  Txn check = a->Begin();
  std::vector<Value> out;
  ASSERT_TRUE(a->Read(check, 5, 0b10, &out).ok());
  EXPECT_EQ(out[1], 50u);
  ASSERT_TRUE(check.Commit().ok());
}

}  // namespace
}  // namespace lstore
