// Observability substrate (src/obs/): counters, gauges, histograms,
// snapshots, renderers, and the engine wiring.
//
// The concurrency suites are the point: counter sharding must not lose
// increments under contention, and a histogram snapshot racing
// concurrent Record()s must stay internally consistent (count == sum
// of its buckets, quantiles monotone) — the design derives the count
// FROM the snapshotted buckets precisely so this holds. The Database
// integration test runs a durable cross-table workload with merges,
// checkpoints, and archiving, then asserts every subsystem reported.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/query.h"
#include "core/table.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "server/client.h"
#include "server/server.h"

namespace lstore {
namespace {

namespace fs = std::filesystem;

// --- bucket math -----------------------------------------------------------

TEST(HistogramBuckets, ExactBelowFour) {
  for (uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    EXPECT_EQ(Histogram::BucketUpperBound(Histogram::BucketIndex(v)), v);
  }
}

TEST(HistogramBuckets, BoundsContainValueWithin25Percent) {
  std::vector<uint64_t> probes = {4,    5,    7,      8,       100,
                                  1000, 4095, 123456, 1u << 30};
  for (uint64_t p = 4; p < (1ull << 40); p = p * 3 + 7) probes.push_back(p);
  probes.push_back(~0ull);  // clamps into the last row, must not crash
  for (uint64_t v : probes) {
    unsigned i = Histogram::BucketIndex(v);
    ASSERT_LT(i, Histogram::kBuckets) << v;
    uint64_t hi = Histogram::BucketUpperBound(i);
    if (v <= Histogram::BucketUpperBound(Histogram::kBuckets - 1)) {
      EXPECT_GE(hi, v) << v;
      // <= 25% relative width: the bound overestimates by at most 1/4.
      EXPECT_LE(hi, v + v / 4 + 1) << v;
    }
  }
  // Indices partition the value space: bounds strictly increase.
  for (unsigned i = 1; i < Histogram::kBuckets; ++i) {
    EXPECT_GT(Histogram::BucketUpperBound(i), Histogram::BucketUpperBound(i - 1))
        << i;
  }
}

// --- counter sharding ------------------------------------------------------

TEST(CounterTest, NoLostIncrementsUnderContention) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddValue) {
  Gauge g;
  g.Set(42);
  g.Add(-50);
  EXPECT_EQ(g.value(), -8);
}

// --- histogram percentiles -------------------------------------------------

TEST(HistogramTest, PercentilesBoundTheTrueQuantile) {
  Histogram h;
  // 1..1000: p50 is 500, p95 is 950, p99 is 990, p999 is 999.
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, 1000u * 1001 / 2);
  struct Case {
    double q;
    uint64_t truth;
  } cases[] = {{0.5, 500}, {0.95, 950}, {0.99, 990}, {0.999, 999}};
  for (const Case& c : cases) {
    uint64_t est = s.Percentile(c.q);
    EXPECT_GE(est, c.truth) << c.q;             // bounded overestimate...
    EXPECT_LE(est, c.truth + c.truth / 4 + 1)   // ...within bucket width
        << c.q;
  }
  EXPECT_EQ(s.Percentile(0.0), s.Percentile(0.001));
  EXPECT_LE(s.Percentile(1.0), s.max_bound);
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram h;
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.Percentile(0.5), 0u);
}

TEST(HistogramTest, SnapshotConsistentUnderConcurrentRecords) {
  Histogram h;
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&h, &stop, t] {
      uint64_t v = 17 + t;
      while (!stop.load(std::memory_order_relaxed)) {
        h.Record(v);
        v = v * 2654435761u % (1u << 20);
      }
    });
  }
  uint64_t last_count = 0;
  for (int iter = 0; iter < 200; ++iter) {
    HistogramSnapshot s = h.Snapshot();
    // The count is DERIVED from the snapshotted buckets, so these hold
    // even mid-race — a torn snapshot would break one of them.
    uint64_t bucket_sum = 0;
    for (uint64_t b : s.buckets) bucket_sum += b;
    ASSERT_EQ(s.count, bucket_sum);
    ASSERT_GE(s.count, last_count);  // monotone between snapshots
    last_count = s.count;
    uint64_t p50 = s.Percentile(0.5), p95 = s.Percentile(0.95),
             p99 = s.Percentile(0.99), p999 = s.Percentile(0.999);
    ASSERT_LE(p50, p95);
    ASSERT_LE(p95, p99);
    ASSERT_LE(p99, p999);
    if (s.count > 0) {
      ASSERT_LE(p999, s.max_bound);
    }
  }
  stop.store(true);
  for (auto& w : writers) w.join();
}

// --- registry --------------------------------------------------------------

TEST(RegistryTest, HandlesAreStableAndIdempotent) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("a_total", "first help wins");
  Counter* c2 = reg.GetCounter("a_total", "ignored");
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(reg.GetGauge("g"), reg.GetGauge("g"));
  EXPECT_EQ(reg.GetHistogram("h_ns"), reg.GetHistogram("h_ns"));
  c1->Add(3);
  MetricsSnapshot s = reg.Snapshot();
  ASSERT_NE(s.FindCounter("a_total"), nullptr);
  EXPECT_EQ(s.FindCounter("a_total")->help, "first help wins");
  EXPECT_EQ(s.CounterValue("a_total"), 3u);
  EXPECT_EQ(s.CounterValue("missing"), 0u);
}

TEST(RegistryTest, CollectorsRunAtSnapshot) {
  MetricsRegistry reg;
  int runs = 0;
  reg.AddCollector([&runs](MetricsRegistry& r) {
    r.GetGauge("mirrored")->Set(++runs);
  });
  EXPECT_EQ(reg.Snapshot().FindGauge("mirrored")->value, 1);
  EXPECT_EQ(reg.Snapshot().FindGauge("mirrored")->value, 2);
}

TEST(RegistryTest, ConcurrentGetAndRecord) {
  MetricsRegistry reg;
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&reg] {
      for (int i = 0; i < 200; ++i) {
        reg.GetCounter("shared_total")->Add(1);
        reg.GetHistogram("shared_ns")->Record(i);
        if (i % 50 == 0) (void)reg.Snapshot();
      }
    });
  }
  for (auto& w : workers) w.join();
  MetricsSnapshot s = reg.Snapshot();
  EXPECT_EQ(s.CounterValue("shared_total"), 8u * 200);
  EXPECT_EQ(s.FindHistogram("shared_ns")->hist.count, 8u * 200);
}

// --- renderers -------------------------------------------------------------

TEST(RenderTest, PrometheusExposition) {
  MetricsRegistry reg;
  reg.GetCounter("lstore_ops_total", "Operations")->Add(7);
  reg.GetGauge("lstore_depth", "Queue depth")->Set(-2);
  Histogram* h = reg.GetHistogram("lstore_lat_ns", "Latency");
  for (uint64_t v = 1; v <= 100; ++v) h->Record(v);
  std::string text = reg.Snapshot().RenderPrometheus();

  EXPECT_NE(text.find("# HELP lstore_ops_total Operations"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE lstore_ops_total counter"), std::string::npos);
  EXPECT_NE(text.find("lstore_ops_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lstore_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("lstore_depth -2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lstore_lat_ns summary"), std::string::npos);
  EXPECT_NE(text.find("lstore_lat_ns{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("lstore_lat_ns{quantile=\"0.999\"}"),
            std::string::npos);
  EXPECT_NE(text.find("lstore_lat_ns_sum 5050\n"), std::string::npos);
  EXPECT_NE(text.find("lstore_lat_ns_count 100\n"), std::string::npos);
  // Every non-comment line is "name[{labels}] value".
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);  // text ends with a newline
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    ASSERT_GT(sp, 0u) << line;
  }
}

TEST(RenderTest, JsonRoundTrip) {
  MetricsRegistry reg;
  reg.GetCounter("c_total")->Add(11);
  reg.GetGauge("g")->Set(5);
  reg.GetHistogram("h_ns")->Record(1000);
  std::string json = reg.Snapshot().RenderJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"c_total\":11"), std::string::npos);
  EXPECT_NE(json.find("\"g\":5"), std::string::npos);
  EXPECT_NE(json.find("\"h_ns\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p999\":"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // single line
}

// --- standalone table ------------------------------------------------------

TEST(TableMetricsTest, StandaloneTableOwnsARegistry) {
  TableConfig cfg;
  cfg.range_size = 64;
  cfg.insert_range_size = 64;
  cfg.merge_threshold = 16;
  cfg.enable_merge_thread = false;
  Table table("t", Schema(3), cfg);
  ASSERT_NE(table.metrics(), nullptr);

  Txn txn = table.Begin();
  for (Value k = 0; k < 512; ++k) {
    ASSERT_TRUE(table.Insert(txn, {k, k, k}).ok());
  }
  ASSERT_TRUE(txn.Commit().ok());
  Txn u = table.Begin();
  for (Value k = 0; k < 512; ++k) {
    ASSERT_TRUE(table.Update(u, k, 0b010, {0, k + 1, 0}).ok());
  }
  ASSERT_TRUE(u.Commit().ok());
  table.FlushAll();

  uint64_t sum = 0;
  ASSERT_TRUE(table.NewQuery().Workers(2).Sum(1, &sum).ok());

  MetricsSnapshot s = table.metrics()->Snapshot();
  EXPECT_GE(s.CounterValue("lstore_commits_total"), 2u);
  EXPECT_GT(s.CounterValue("lstore_merge_insert_rows_total"), 0u);
  EXPECT_GT(s.CounterValue("lstore_merge_rows_consolidated_total"), 0u);
  ASSERT_NE(s.FindGauge("lstore_epoch_pending"), nullptr);
  if (kTraceEnabled) {
    const auto* q = s.FindHistogram("lstore_query_partition_ns");
    ASSERT_NE(q, nullptr);
    EXPECT_GT(q->hist.count, 0u);
    const auto* m = s.FindHistogram("lstore_merge_update_ns");
    ASSERT_NE(m, nullptr);
    EXPECT_GT(m->hist.count, 0u);
  }
}

// --- database integration --------------------------------------------------

class DatabaseMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::string(::testing::TempDir()) + "lstore_metrics_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static TableConfig SmallConfig() {
    TableConfig cfg;
    cfg.range_size = 32;
    cfg.insert_range_size = 32;
    cfg.tail_page_slots = 8;
    cfg.merge_threshold = 1u << 20;  // manual merges only
    cfg.enable_merge_thread = false;
    return cfg;
  }

  std::string dir_;
};

TEST_F(DatabaseMetricsTest, EverySubsystemReports) {
  DurabilityOptions opts;
  opts.sync_commit = true;
  opts.group_commit_window_us = 100;
  opts.archive_enabled = true;
  std::atomic<uint64_t> shim_fsyncs{0};
  opts.sync_counter = &shim_fsyncs;  // compat shim still serviced
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(dir_, opts, &db).ok());
  ASSERT_TRUE(db->CreateTable("A", Schema({"k", "v"}), SmallConfig()).ok());
  ASSERT_TRUE(db->CreateTable("B", Schema({"k", "v"}), SmallConfig()).ok());
  Table* a = db->GetTable("A");
  Table* b = db->GetTable("B");

  // Cross-table commits from several threads so the group-commit queue
  // actually batches; then merges and a checkpoint (seals archives).
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (Value i = 0; i < 64; ++i) {
        Value k = t * 64 + i;
        Txn txn = db->Begin();
        ASSERT_TRUE(a->Insert(txn, {k, k}).ok());
        ASSERT_TRUE(b->Insert(txn, {k, k}).ok());
        ASSERT_TRUE(txn.Commit().ok());
      }
    });
  }
  for (auto& w : workers) w.join();
  {
    Txn txn = db->Begin();
    for (Value k = 0; k < 256; ++k) {
      ASSERT_TRUE(a->Update(txn, k, 0b10, {0, k + 1}).ok());
    }
    ASSERT_TRUE(txn.Commit().ok());
  }
  a->FlushAll();
  ASSERT_TRUE(db->Checkpoint().ok());

  uint64_t sum = 0;
  ASSERT_TRUE(a->NewQuery().Workers(2).Sum(1, &sum).ok());

  MetricsSnapshot s = db->Metrics();
  // Commit pipeline + group commit.
  EXPECT_GE(s.CounterValue("lstore_commits_total"), 257u);
  EXPECT_GT(s.CounterValue("lstore_group_commit_batches_total"), 0u);
  ASSERT_NE(s.FindHistogram("lstore_group_commit_batch_size"), nullptr);
  EXPECT_GT(s.FindHistogram("lstore_group_commit_batch_size")->hist.count,
            0u);
  // Logs: redo + commit log, appends and fsyncs.
  EXPECT_GT(s.CounterValue("lstore_redo_appends_total"), 0u);
  EXPECT_GT(s.CounterValue("lstore_redo_append_bytes_total"), 0u);
  EXPECT_GT(s.CounterValue("lstore_redo_fsyncs_total"), 0u);
  EXPECT_GT(s.CounterValue("lstore_commit_log_appends_total"), 0u);
  EXPECT_GT(s.CounterValue("lstore_commit_log_fsyncs_total"), 0u);
  // The injected test counter and the registry see the same events.
  EXPECT_EQ(shim_fsyncs.load(),
            s.CounterValue("lstore_redo_fsyncs_total") +
                s.CounterValue("lstore_commit_log_fsyncs_total"));
  // Merge.
  EXPECT_GT(s.CounterValue("lstore_merge_rows_consolidated_total"), 0u);
  EXPECT_GT(s.CounterValue("lstore_merge_insert_rows_total"), 0u);
  // Checkpoint + archive.
  EXPECT_EQ(s.CounterValue("lstore_checkpoints_total"), 1u);
  EXPECT_GT(s.CounterValue("lstore_archive_seals_total"), 0u);
  // Buffer pool + epoch gauges (collector-mirrored).
  ASSERT_NE(s.FindGauge("lstore_buffer_hits"), nullptr);
  ASSERT_NE(s.FindGauge("lstore_buffer_misses"), nullptr);
  ASSERT_NE(s.FindGauge("lstore_buffer_evictions"), nullptr);
  ASSERT_NE(s.FindGauge("lstore_epoch_pending"), nullptr);
  // Stage timings (compiled in by default).
  if (kTraceEnabled) {
    for (const char* name :
         {"lstore_commit_queue_wait_ns", "lstore_commit_log_fsync_ns",
          "lstore_redo_flush_ns", "lstore_commit_publish_ns",
          "lstore_checkpoint_capture_ns", "lstore_archive_seal_ns"}) {
      const auto* h = s.FindHistogram(name);
      ASSERT_NE(h, nullptr) << name;
      EXPECT_GT(h->hist.count, 0u) << name;
    }
  }
  // Both renderers produce something parseable-looking.
  EXPECT_NE(s.RenderPrometheus().find("lstore_commits_total"),
            std::string::npos);
  EXPECT_NE(s.RenderJson().find("lstore_commits_total"), std::string::npos);
}

TEST_F(DatabaseMetricsTest, RestoreRecordsDuration) {
  DurabilityOptions opts;
  opts.archive_enabled = true;
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(dir_, opts, &db).ok());
  ASSERT_TRUE(db->CreateTable("A", Schema({"k", "v"}), SmallConfig()).ok());
  Table* a = db->GetTable("A");
  Txn txn = db->Begin();
  ASSERT_TRUE(a->Insert(txn, {1, 2}).ok());
  ASSERT_TRUE(txn.Commit().ok());
  Timestamp point = db->Now() - 1;
  ASSERT_TRUE(db->Checkpoint().ok());
  db.reset();

  std::unique_ptr<Database> rdb;
  ASSERT_TRUE(
      Database::RestoreToPoint(dir_, RestorePoint::AtTime(point), &rdb).ok());
  if (kTraceEnabled) {
    MetricsSnapshot s = rdb->Metrics();
    const auto* h = s.FindHistogram("lstore_restore_ns");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->hist.count, 1u);
  }
}

// --- reporter --------------------------------------------------------------

TEST_F(DatabaseMetricsTest, ReporterWritesAndSurvivesRotation) {
  DurabilityOptions opts;
  opts.metrics_report_interval_ms = 5;
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(dir_, opts, &db).ok());
  ASSERT_TRUE(db->CreateTable("A", Schema({"k", "v"}), SmallConfig()).ok());
  Table* a = db->GetTable("A");
  std::string log_path = dir_ + "/metrics.log";

  for (Value k = 0; k < 32; ++k) {
    Txn txn = db->Begin();
    ASSERT_TRUE(a->Insert(txn, {k, k}).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  // Wait for at least one tick, then rotate the file away mid-run: the
  // reporter must recreate it on the next tick (open-per-tick design).
  for (int i = 0; i < 200 && !fs::exists(log_path); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(fs::exists(log_path));
  fs::remove(log_path);
  for (int i = 0; i < 200 && !fs::exists(log_path); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(fs::exists(log_path));

  // Close: the reporter writes one final line and stops BEFORE the
  // registry it samples is torn down.
  db.reset();
  std::ifstream in(log_path);
  std::string line, last;
  size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    last = line;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
  }
  EXPECT_GE(lines, 1u);
  EXPECT_NE(last.find("\"counters\""), std::string::npos);

  // Reopen over the same directory: the stale metrics.log must not
  // confuse recovery, and a fresh reporter appends to it.
  std::unique_ptr<Database> db2;
  ASSERT_TRUE(Database::Open(dir_, opts, &db2).ok());
  EXPECT_NE(db2->GetTable("A"), nullptr);
}

// The reporter's metrics.log and the slow-op log share <dir>: both are
// open-append-close line writers, so rotating (deleting) either one
// mid-run must recreate just that file on its next write, leave the
// other untouched, and never mix content between them.
TEST_F(DatabaseMetricsTest, ReporterAndSlowOpLogCoexistAcrossRotation) {
  DurabilityOptions opts;
  opts.metrics_report_interval_ms = 5;
  opts.slow_op_threshold_us = 1;  // every traced request dumps
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(dir_, opts, &db).ok());
  ASSERT_TRUE(db->CreateTable("A", Schema({"k", "v"}), SmallConfig()).ok());
  std::string metrics_path = dir_ + "/metrics.log";
  std::string slow_path = dir_ + "/slowops.log";

  Server server(db.get(), {});
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  auto traced_insert = [&](Value k) {
    client.set_next_trace_id(TraceContext::NewTraceId());
    ASSERT_TRUE(client.Insert("A", {k, k}).ok());
  };
  auto count_lines = [](const std::string& path) {
    std::ifstream in(path);
    std::string line;
    size_t n = 0;
    while (std::getline(in, line)) ++n;
    return n;
  };
  // The slow-op dump lands AFTER the reply (it includes the reply
  // span), so a completed client call does not imply the line is on
  // disk yet — poll for it.
  auto wait_slow_lines = [&](size_t want) {
    for (int i = 0; i < 400 && count_lines(slow_path) < want; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return count_lines(slow_path);
  };

  traced_insert(1);
  for (int i = 0; i < 200 && !fs::exists(metrics_path); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(fs::exists(metrics_path));
  if (kTraceEnabled) {
    ASSERT_EQ(wait_slow_lines(1), 1u);
  }

  // Rotate the reporter's file away: slowops.log must survive, and
  // the next traced request must append to it, not to a fresh file.
  fs::remove(metrics_path);
  traced_insert(2);
  if (kTraceEnabled) {
    ASSERT_EQ(wait_slow_lines(2), 2u);
  }
  for (int i = 0; i < 200 && !fs::exists(metrics_path); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(fs::exists(metrics_path));

  if (kTraceEnabled) {
    // Rotate the slow-op log too: recreated by the next slow op.
    fs::remove(slow_path);
    traced_insert(3);
    ASSERT_EQ(wait_slow_lines(1), 1u);
  }

  server.Stop();
  db.reset();

  // Each file holds only its own schema, every line intact.
  if (kTraceEnabled) {
    std::ifstream slow(slow_path);
    std::string line;
    size_t slow_lines = 0;
    while (std::getline(slow, line)) {
      ++slow_lines;
      EXPECT_EQ(line.rfind("{\"ts_ms\":", 0), 0u) << line;
      EXPECT_NE(line.find("\"spans\":["), std::string::npos) << line;
      EXPECT_EQ(line.find("\"counters\""), std::string::npos) << line;
    }
    EXPECT_EQ(slow_lines, 1u);  // insert 3 only — the pre-rotation
                                // lines left with the rotated file
  } else {
    EXPECT_FALSE(fs::exists(slow_path));
  }
  std::ifstream rep(metrics_path);
  std::string line;
  size_t rep_lines = 0;
  while (std::getline(rep, line)) {
    if (line.empty()) continue;
    ++rep_lines;
    EXPECT_NE(line.find("\"counters\""), std::string::npos) << line;
    EXPECT_EQ(line.find("ts_ms"), std::string::npos) << line;
  }
  EXPECT_GE(rep_lines, 1u);
}

TEST(ReporterTest, StandaloneStopIsIdempotent) {
  MetricsRegistry reg;
  reg.GetCounter("x_total")->Add(1);
  std::string path = std::string(::testing::TempDir()) + "lstore_rep.log";
  fs::remove(path);
  {
    StatsReporter rep(path, 2, [&reg] { return reg.Snapshot(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    rep.Stop();
    rep.Stop();  // idempotent
  }  // dtor stops again
  std::ifstream in(path);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    if (!line.empty()) ++lines;
  }
  EXPECT_GE(lines, 1u);
  fs::remove(path);
}

}  // namespace
}  // namespace lstore
