// Ownership Relaying protocol tests (Section 5.2): the pageLSN is
// maintained by at most one exclusive-latch holder per writer burst,
// all writers otherwise share latches, and the starvation valve forces
// periodic drains.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "log/page_lsn.h"

namespace lstore {
namespace {

TEST(OrProtocolTest, SingleWriterUpdatesPageLsn) {
  OrProtocolPage page;
  page.BeginWrite();
  page.EndWrite(5);
  EXPECT_EQ(page.page_lsn(), 5u);
  EXPECT_EQ(page.owner_lsn(), 5u);
  EXPECT_EQ(page.exclusive_promotions(), 1u);
}

TEST(OrProtocolTest, SequentialWritersMonotonePageLsn) {
  OrProtocolPage page;
  for (uint64_t lsn = 1; lsn <= 10; ++lsn) {
    page.BeginWrite();
    page.EndWrite(lsn);
    EXPECT_EQ(page.page_lsn(), lsn);
  }
}

TEST(OrProtocolTest, ConcurrentWritersConvergeToMaxLsn) {
  // The core invariant: once all writers finish, pageLSN equals the
  // highest LSN any of them wrote — even though most writers never
  // took an exclusive latch.
  OrProtocolPage page;
  constexpr int kThreads = 8, kPerThread = 500;
  std::atomic<uint64_t> next_lsn{0};
  std::atomic<uint64_t> max_lsn{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        page.BeginWrite();
        uint64_t lsn = next_lsn.fetch_add(1) + 1;
        uint64_t cur = max_lsn.load();
        while (cur < lsn && !max_lsn.compare_exchange_weak(cur, lsn)) {
        }
        page.EndWrite(lsn);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(page.page_lsn(), max_lsn.load());
  EXPECT_EQ(page.page_lsn(), static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(OrProtocolTest, PromotionsAreFarFewerThanWriters) {
  // "if there are 100 concurrent writers, then only one writer will
  // get an exclusive latch on behalf of all the writers" — in bursts,
  // promotions << writes.
  OrProtocolPage page(/*flush_threshold=*/1u << 30);
  constexpr int kThreads = 8, kPerThread = 2000;
  std::atomic<uint64_t> next_lsn{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        page.BeginWrite();
        page.EndWrite(next_lsn.fetch_add(1) + 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  uint64_t total = kThreads * kPerThread;
  EXPECT_EQ(page.page_lsn(), total);
  // With hardware parallelism, overlapping writers relay ownership and
  // promotions collapse; on a single hardware thread execution is
  // effectively serial, so every writer legitimately promotes.
  if (std::thread::hardware_concurrency() > 1) {
    EXPECT_LT(page.exclusive_promotions(), total);
  } else {
    EXPECT_LE(page.exclusive_promotions(), total);
  }
}

TEST(OrProtocolTest, StarvationValveForcesDrains) {
  OrProtocolPage page(/*flush_threshold=*/64);
  constexpr int kThreads = 4, kPerThread = 1000;
  std::atomic<uint64_t> next_lsn{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        page.BeginWrite();
        page.EndWrite(next_lsn.fetch_add(1) + 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(page.page_lsn(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_GT(page.forced_drains(), 0u);
}

TEST(OrProtocolTest, OutOfOrderLsnCompletionIsHandled) {
  // Writer with the lower LSN finishes LAST: ownership must already
  // have moved to the higher LSN, and the low writer must not regress
  // the pageLSN.
  OrProtocolPage page;
  page.BeginWrite();  // writer A (this thread)
  std::thread b([&] {
    page.BeginWrite();
    page.EndWrite(10);  // B: owner; its promotion waits for A to drain
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  page.EndWrite(3);  // A: lower LSN, not the owner -> releases shared
  b.join();
  EXPECT_EQ(page.page_lsn(), 10u);
  EXPECT_EQ(page.owner_lsn(), 10u);
}

TEST(OrProtocolTest, StressManyPagesManyWriters) {
  constexpr int kPages = 4, kThreads = 4, kOps = 3000;
  std::vector<OrProtocolPage> pages(kPages);
  std::atomic<uint64_t> next_lsn{0};
  std::vector<uint64_t> page_max(kPages, 0);
  std::mutex max_mu;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t seed = t * 2654435761u + 1;
      for (int i = 0; i < kOps; ++i) {
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
        int p = static_cast<int>((seed >> 33) % kPages);
        pages[p].BeginWrite();
        uint64_t lsn = next_lsn.fetch_add(1) + 1;
        {
          std::lock_guard<std::mutex> g(max_mu);
          if (lsn > page_max[p]) page_max[p] = lsn;
        }
        pages[p].EndWrite(lsn);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int p = 0; p < kPages; ++p) {
    EXPECT_EQ(pages[p].page_lsn(), page_max[p]) << "page " << p;
  }
}

}  // namespace
}  // namespace lstore
