// Tests for the primary hash index (key -> base RID; indexes only ever
// reference base records, Section 2.2) and the secondary index with
// lazy posting removal (Section 3.1, footnote 3).

#include <gtest/gtest.h>

#include <thread>

#include "index/primary_index.h"
#include "index/secondary_index.h"

namespace lstore {
namespace {

TEST(PrimaryIndexTest, InsertGetErase) {
  PrimaryIndex idx;
  EXPECT_TRUE(idx.Insert(10, 100));
  EXPECT_EQ(idx.Get(10), 100u);
  EXPECT_EQ(idx.Get(11), kInvalidRid);
  EXPECT_TRUE(idx.Erase(10));
  EXPECT_FALSE(idx.Erase(10));
  EXPECT_EQ(idx.Get(10), kInvalidRid);
}

TEST(PrimaryIndexTest, DuplicateInsertRejected) {
  PrimaryIndex idx;
  EXPECT_TRUE(idx.Insert(5, 1));
  EXPECT_FALSE(idx.Insert(5, 2));
  EXPECT_EQ(idx.Get(5), 1u);  // original mapping survives
}

TEST(PrimaryIndexTest, SizeAcrossShards) {
  PrimaryIndex idx(8);
  for (Value k = 0; k < 1000; ++k) EXPECT_TRUE(idx.Insert(k, k * 2));
  EXPECT_EQ(idx.size(), 1000u);
  for (Value k = 0; k < 1000; ++k) EXPECT_EQ(idx.Get(k), k * 2);
}

TEST(PrimaryIndexTest, ConcurrentDisjointInserts) {
  PrimaryIndex idx;
  constexpr int kThreads = 4, kPer = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        Value k = static_cast<Value>(t) * kPer + i;
        EXPECT_TRUE(idx.Insert(k, k + 7));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(idx.size(), static_cast<size_t>(kThreads * kPer));
  for (Value k = 0; k < kThreads * kPer; ++k) EXPECT_EQ(idx.Get(k), k + 7);
}

TEST(PrimaryIndexTest, ConcurrentDuplicateInsertsExactlyOneWins) {
  PrimaryIndex idx;
  constexpr int kThreads = 4;
  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      if (idx.Insert(77, 1000 + t)) wins.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), 1);
}

TEST(SecondaryIndexTest, LookupReturnsCandidates) {
  SecondaryIndex idx;
  idx.Add(50, 1);
  idx.Add(50, 2);
  idx.Add(60, 3);
  auto c = idx.Lookup(50);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(idx.Lookup(99).size(), 0u);
}

TEST(SecondaryIndexTest, DuplicatePostingsTolerated) {
  // The paper defers removal of changed values, so the same (v, rid)
  // may legitimately appear twice after an A->B->A update cycle.
  SecondaryIndex idx;
  idx.Add(50, 1);
  idx.Add(50, 1);
  EXPECT_EQ(idx.Lookup(50).size(), 2u);
}

TEST(SecondaryIndexTest, RangeLookupAcrossShards) {
  SecondaryIndex idx(4);
  for (Value v = 0; v < 100; ++v) idx.Add(v, v + 1000);
  auto c = idx.LookupRange(10, 19);
  EXPECT_EQ(c.size(), 10u);
  EXPECT_EQ(c.front(), 1010u);
  EXPECT_EQ(c.back(), 1019u);
}

TEST(SecondaryIndexTest, MarkStaleThenGarbageCollect) {
  SecondaryIndex idx;
  idx.Add(50, 1);
  idx.Add(50, 2);
  idx.MarkStale(50, 1);
  // Stale postings remain visible until GC (old snapshots may need
  // them, Section 3.1 footnote 3).
  EXPECT_EQ(idx.Lookup(50).size(), 2u);
  EXPECT_EQ(idx.GarbageCollect(), 1u);
  auto c = idx.Lookup(50);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], 2u);
}

TEST(SecondaryIndexTest, ValidatorDrivenGc) {
  SecondaryIndex idx;
  idx.Add(50, 1);
  idx.Add(50, 2);
  idx.Add(60, 3);
  size_t removed = idx.GarbageCollect(
      [](Value v, Rid rid) { return v == 50 && rid == 1; });
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(idx.size(), 2u);
}

TEST(SecondaryIndexTest, GcRemovesEmptyValueEntries) {
  SecondaryIndex idx;
  idx.Add(50, 1);
  idx.MarkStale(50, 1);
  idx.GarbageCollect();
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.Lookup(50).size(), 0u);
}

}  // namespace
}  // namespace lstore
