// Buffer-managed base storage tests: demand paging, clock eviction,
// the pin/epoch safety contract under racing scans, lazy restart
// recovery, and stats consistency.
//
// The crucial invariants:
//  * correctness is independent of residency — a scan racing eviction
//    returns exactly what a fully resident table returns, because
//    pinned (epoch-guarded) frames are never reclaimed under a reader;
//  * a tiny budget is respected once pins drain (clean cold frames are
//    evictable, so bytes_resident converges to <= budget);
//  * a restart maps segments lazily: cold point reads demand-load only
//    the ranges they touch.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "buffer/buffer_pool.h"
#include "buffer/segment_store.h"
#include "checkpoint/checkpoint_manager.h"
#include "checkpoint/serde.h"
#include "common/epoch.h"
#include "common/random.h"
#include "core/database.h"
#include "core/query.h"
#include "core/table.h"
#include "log/framed_log.h"
#include "storage/compressed_column.h"
#include "storage/compression/varint.h"

namespace lstore {
namespace {

std::string ScratchDir(const std::string& name) {
  std::string dir = std::filesystem::temp_directory_path().string() +
                    "/lstore_buffer_test_" + name + "_" +
                    std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

TableConfig SmallConfig() {
  TableConfig cfg;
  cfg.range_size = 128;
  cfg.insert_range_size = 128;
  cfg.tail_page_slots = 32;
  cfg.merge_threshold = 64;
  cfg.enable_merge_thread = false;
  return cfg;
}

/// A standalone table wired to its own tiny pool + temp spill store —
/// the exact path the LSTORE_BUFFER_POOL_BYTES knob takes.
struct PooledTable {
  explicit PooledTable(uint64_t budget, TableConfig cfg = SmallConfig())
      : pool(budget) {
    EXPECT_TRUE(store.OpenTemp().ok());
    cfg.buffer_pool = &pool;
    cfg.segment_store = &store;
    table = std::make_unique<Table>("buf", Schema(4), cfg);
  }
  BufferPool pool;
  SegmentStore store;
  std::unique_ptr<Table> table;
};

void LoadRows(Table& t, uint64_t rows) {
  Txn txn = t.Begin();
  std::vector<std::vector<Value>> batch;
  for (Value k = 0; k < rows; ++k) batch.push_back({k, k + 1, k * 2, k % 7});
  ASSERT_TRUE(t.InsertBatch(txn, batch).ok());
  ASSERT_TRUE(txn.Commit().ok());
  t.FlushAll();  // insert-merge everything into base segments
}

TEST(BufferPoolTest, SegmentStoreRoundTrip) {
  SegmentStore store;
  ASSERT_TRUE(store.OpenTemp().ok());
  uint64_t off1 = 0, off2 = 0;
  ASSERT_TRUE(store.Append("hello", &off1).ok());
  ASSERT_TRUE(store.Append("world!", &off2).ok());
  EXPECT_EQ(off1, 0u);
  EXPECT_EQ(off2, 5u);
  std::string out;
  ASSERT_TRUE(store.ReadAt(off2, 6, &out).ok());
  EXPECT_EQ(out, "world!");
  ASSERT_TRUE(store.ReadAt(off1, 5, &out).ok());
  EXPECT_EQ(out, "hello");
  EXPECT_TRUE(store.Contains(0, 11));
  EXPECT_FALSE(store.Contains(7, 5));
  EXPECT_FALSE(store.ReadAt(7, 5, &out).ok());
}

TEST(BufferPoolTest, MissEvictReloadKeepsResultsExact) {
  constexpr uint64_t kRows = 2000;
  // A budget far below the base footprint: every scan works through
  // the miss/evict path.
  PooledTable pt(/*budget=*/2048);
  LoadRows(*pt.table, kRows);

  uint64_t sum = 0, nrows = 0;
  ASSERT_TRUE(pt.table->NewQuery().Sum(1, &sum, &nrows).ok());
  EXPECT_EQ(nrows, kRows);
  EXPECT_EQ(sum, kRows * (kRows + 1) / 2);

  BufferPoolStats s = pt.pool.stats();
  EXPECT_GT(s.misses, 0u);
  EXPECT_GT(s.evictions, 0u);
  EXPECT_GT(s.pages, 0u);

  // Point reads through cold ranges stay exact.
  Txn txn = pt.table->Begin();
  for (Value k : {Value{0}, Value{777}, Value{kRows - 1}}) {
    std::vector<Value> row;
    ASSERT_TRUE(pt.table->Read(txn, k, 0b1111, &row).ok());
    EXPECT_EQ(row[1], k + 1);
    EXPECT_EQ(row[2], k * 2);
  }
  ASSERT_TRUE(txn.Commit().ok());
}

TEST(BufferPoolTest, BudgetRespectedOnceUnpinned) {
  constexpr uint64_t kRows = 4000;
  constexpr uint64_t kBudget = 4096;
  PooledTable pt(kBudget);
  LoadRows(*pt.table, kRows);

  // Randomized workload: point reads, updates, merges, scans.
  Random rng(7);
  for (int round = 0; round < 5; ++round) {
    Txn txn = pt.table->Begin();
    for (int i = 0; i < 50; ++i) {
      std::vector<Value> row(4, 0);
      Value k = rng.Uniform(kRows);
      row[3] = round;
      (void)pt.table->Update(txn, k, 0b1000, row);
      std::vector<Value> out;
      (void)pt.table->Read(txn, rng.Uniform(kRows), 0b0110, &out);
    }
    ASSERT_TRUE(txn.Commit().ok());
    pt.table->FlushAll();
    uint64_t sum = 0;
    ASSERT_TRUE(pt.table->NewQuery().Sum(2, &sum).ok());
  }

  // With no pins outstanding, every frame is a clean cold candidate:
  // one enforcement pass must land at or under budget.
  pt.pool.EnforceBudget();
  BufferPoolStats s = pt.pool.stats();
  EXPECT_LE(s.bytes_resident, kBudget);
  EXPECT_EQ(s.budget_bytes, kBudget);
}

TEST(BufferPoolTest, StatsCountersConsistent) {
  constexpr uint64_t kRows = 1000;
  PooledTable pt(/*budget=*/1024);
  LoadRows(*pt.table, kRows);
  uint64_t sum = 0;
  ASSERT_TRUE(pt.table->NewQuery().Sum(1, &sum).ok());
  BufferPoolStats s = pt.pool.stats();
  // The scan touched frames (pins resolve through the pool), the tiny
  // budget forced demand loads, and eviction ran to make room.
  EXPECT_GT(s.hits + s.misses, 0u);
  EXPECT_GT(s.misses, 0u);
  EXPECT_GT(s.evictions, 0u);
  EXPECT_GT(s.pages, 0u);
  EXPECT_EQ(s.budget_bytes, 1024u);
  // With no pins outstanding the gauge converges under the budget.
  pt.pool.EnforceBudget();
  EXPECT_LE(pt.pool.stats().bytes_resident, 1024u);
}

TEST(BufferPoolTest, ScansRacingEvictionAndMergesStayExact) {
  // Writers churn merges (creating and retiring segments) while
  // readers scan with a budget small enough that eviction constantly
  // steals cold frames. Sum(col1) over key k is invariant: updates
  // only touch col3, so any divergence means a reader observed a
  // reclaimed or half-built frame. Latest-mode scans keep the race on
  // the pin/evict/reload path itself (snapshot scans racing continuous
  // merges take the Lemma 3 retry path, which multiplies demand loads
  // — exercised separately below, quiescent).
  constexpr uint64_t kRows = 2000;
  TableConfig cfg = SmallConfig();
  cfg.enable_merge_thread = true;
  PooledTable pt(/*budget=*/16384, cfg);
  {
    Txn txn = pt.table->Begin();
    std::vector<std::vector<Value>> batch;
    for (Value k = 0; k < kRows; ++k) batch.push_back({k, k + 1, k * 2, 0});
    ASSERT_TRUE(pt.table->InsertBatch(txn, batch).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  pt.table->FlushAll();

  const uint64_t expect_sum1 = kRows * (kRows + 1) / 2;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scan_errors{0};

  std::thread writer([&] {
    Random rng(11);
    uint64_t tick = 0;
    while (!stop.load(std::memory_order_acquire)) {
      Txn txn = pt.table->Begin();
      std::vector<Value> row(4, 0);
      for (int i = 0; i < 32; ++i) {
        row[3] = ++tick;
        (void)pt.table->Update(txn, rng.Uniform(kRows), 0b1000, row);
      }
      (void)txn.Commit();
    }
  });
  std::thread merger([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (uint64_t rid = 0; rid < pt.table->num_ranges(); ++rid) {
        pt.table->MergeRangeNow(rid);
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> scanners;
  for (int t = 0; t < 3; ++t) {
    scanners.emplace_back([&] {
      for (int i = 0; i < 15; ++i) {
        uint64_t sum = 0, nrows = 0;
        Status s = pt.table->NewQuery()
                       .AsOf(kMaxTimestamp)
                       .Workers(2)
                       .Sum(1, &sum, &nrows);
        if (!s.ok() || sum != expect_sum1 || nrows != kRows) {
          scan_errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& s : scanners) s.join();
  stop.store(true, std::memory_order_release);
  writer.join();
  merger.join();

  EXPECT_EQ(scan_errors.load(), 0u);
  BufferPoolStats s = pt.pool.stats();
  EXPECT_GT(s.evictions, 0u);  // the race actually happened

  // Snapshot reads through the mostly cold table (no concurrent
  // merges): time travel works against demand-loaded segments.
  pt.table->WaitForMergeQueue();
  Timestamp snap = pt.table->Now();
  uint64_t sum = 0, nrows = 0;
  ASSERT_TRUE(pt.table->NewQuery().AsOf(snap).Sum(1, &sum, &nrows).ok());
  EXPECT_EQ(sum, expect_sum1);
  EXPECT_EQ(nrows, kRows);
}

TEST(BufferPoolTest, RestartMapsSegmentsLazilyAndColdReadsWork) {
  const std::string dir = ScratchDir("restart");
  constexpr uint64_t kRows = 4000;
  DurabilityOptions opts;
  opts.buffer_pool_bytes = 1ull << 20;  // roomy on first open
  TableConfig cfg = SmallConfig();

  {
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(dir, opts, &db).ok());
    ASSERT_TRUE(db->CreateTable("t", Schema(4), cfg).ok());
    Table* t = db->GetTable("t");
    Txn txn = db->Begin();
    std::vector<std::vector<Value>> batch;
    for (Value k = 0; k < kRows; ++k) batch.push_back({k, k + 1, k * 2, k % 7});
    ASSERT_TRUE(t->InsertBatch(txn, batch).ok());
    ASSERT_TRUE(txn.Commit().ok());
    t->FlushAll();
    ASSERT_TRUE(db->Checkpoint().ok());
  }

  // Reopen with a small budget: the checkpoint's segment references
  // restore as cold mappings, so only the index-rebuild columns (key
  // + start time) fault in — data columns load on first touch.
  opts.buffer_pool_bytes = 16384;
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(dir, opts, &db).ok());
  Table* t = db->GetTable("t");
  ASSERT_NE(t, nullptr);

  BufferPoolStats after_open = db->buffer_stats();
  EXPECT_GT(after_open.pages, 0u);
  // Lazy restore: far fewer loads than registered pages (only the
  // rebuild columns were touched, and they were evicted back down to
  // budget as recovery walked the ranges).
  EXPECT_LT(after_open.misses, after_open.pages);
  EXPECT_LE(after_open.bytes_resident,
            after_open.budget_bytes + 16384);  // transient pin slack

  // A cold point read demand-loads exactly its range's segments and
  // returns the right row.
  uint64_t misses_before = db->buffer_stats().misses;
  Txn txn = t->Begin();
  std::vector<Value> row;
  ASSERT_TRUE(t->Read(txn, 3777, 0b0110, &row).ok());
  EXPECT_EQ(row[1], 3778u);
  EXPECT_EQ(row[2], 2u * 3777);
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_GT(db->buffer_stats().misses, misses_before);

  // Full scan over the mostly cold table is exact.
  uint64_t sum = 0, nrows = 0;
  ASSERT_TRUE(t->NewQuery().Sum(1, &sum, &nrows).ok());
  EXPECT_EQ(nrows, kRows);
  EXPECT_EQ(sum, kRows * (kRows + 1) / 2);

  db.reset();
  std::filesystem::remove_all(dir);
}

TEST(BufferPoolTest, VerifyOnOpenCatchesStoreCorruption) {
  const std::string dir = ScratchDir("verify_segs");
  constexpr uint64_t kRows = 2000;
  DurabilityOptions opts;
  opts.buffer_pool_bytes = 1ull << 20;
  {
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(dir, opts, &db).ok());
    ASSERT_TRUE(db->CreateTable("t", Schema(4), SmallConfig()).ok());
    Table* t = db->GetTable("t");
    Txn txn = db->Begin();
    std::vector<std::vector<Value>> batch;
    for (Value k = 0; k < kRows; ++k) batch.push_back({k, k + 1, k, k});
    ASSERT_TRUE(t->InsertBatch(txn, batch).ok());
    ASSERT_TRUE(txn.Commit().ok());
    t->FlushAll();
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  // Sanity: with verification on, an intact store opens fine.
  opts.verify_segment_store_on_open = true;
  {
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(dir, opts, &db).ok());
  }
  // Flip one byte inside a checkpoint-referenced DATA column segment
  // (never touched by the open-time index rebuild, which only faults
  // in the key + start-time columns): located through the manifest's
  // segment-ref frames so the test is independent of store layout.
  {
    Manifest m;
    bool exists = false;
    ASSERT_TRUE(ReadManifest(dir, &m, &exists).ok());
    ASSERT_TRUE(exists);
    FrameReader r;
    ASSERT_TRUE(
        r.Open(dir + "/" + m.entries.front().file, kCheckpointMagic).ok());
    uint64_t corrupt_at = 0;
    FrameType type;
    std::string_view p;
    while (r.Next(&type, &p)) {
      if (type != FrameType::kBaseSegmentRef) continue;
      size_t pos = 0;
      uint64_t id, pc, tps, num_slots, offset, length;
      ASSERT_TRUE(GetU64(p, &pos, &id) && GetU64(p, &pos, &pc) &&
                  GetU64(p, &pos, &tps) && GetU64(p, &pos, &num_slots) &&
                  GetU64(p, &pos, &offset) && GetU64(p, &pos, &length));
      if (pc >= 1 && pc <= 3) {  // a pure data column
        corrupt_at = offset + length / 2;
        break;
      }
    }
    ASSERT_GT(corrupt_at, 0u);
    std::FILE* f = std::fopen((dir + "/t.segs").c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(corrupt_at), SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, static_cast<long>(corrupt_at), SEEK_SET);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  // Verification surfaces the corruption as a clean recovery error...
  {
    std::unique_ptr<Database> db;
    Status s = Database::Open(dir, opts, &db);
    EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  }
  // ...while the default (lazy) mode still opens — the damage is only
  // hit if the affected range is ever demand-loaded.
  opts.verify_segment_store_on_open = false;
  {
    std::unique_ptr<Database> db;
    EXPECT_TRUE(Database::Open(dir, opts, &db).ok());
  }
  std::filesystem::remove_all(dir);
}

TEST(BufferPoolTest, ReopenWithoutPoolHydratesLazily) {
  // A database checkpointed WITH a pool (segment references in the
  // checkpoint) must reopen with buffer_pool_bytes = 0: segments
  // hydrate from the swap store on first touch and stay resident.
  const std::string dir = ScratchDir("nopool_reopen");
  constexpr uint64_t kRows = 1500;
  {
    DurabilityOptions opts;
    opts.buffer_pool_bytes = 1ull << 20;
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(dir, opts, &db).ok());
    ASSERT_TRUE(db->CreateTable("t", Schema(4), SmallConfig()).ok());
    Table* t = db->GetTable("t");
    Txn txn = db->Begin();
    std::vector<std::vector<Value>> batch;
    for (Value k = 0; k < kRows; ++k) batch.push_back({k, k + 1, k * 2, 0});
    ASSERT_TRUE(t->InsertBatch(txn, batch).ok());
    ASSERT_TRUE(txn.Commit().ok());
    t->FlushAll();
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(dir, DurabilityOptions{}, &db).ok());
  if (BufferPool::EnvBudgetBytes() == 0) {
    EXPECT_EQ(db->buffer_pool(), nullptr);
  }
  Table* t = db->GetTable("t");
  ASSERT_NE(t, nullptr);
  uint64_t sum = 0, nrows = 0;
  ASSERT_TRUE(t->NewQuery().Sum(1, &sum, &nrows).ok());
  EXPECT_EQ(nrows, kRows);
  EXPECT_EQ(sum, kRows * (kRows + 1) / 2);
  Txn txn = t->Begin();
  std::vector<Value> row;
  ASSERT_TRUE(t->Read(txn, 1234, 0b0110, &row).ok());
  EXPECT_EQ(row[1], 1235u);
  ASSERT_TRUE(txn.Commit().ok());
  db.reset();
  std::filesystem::remove_all(dir);
}

TEST(BufferPoolTest, ResidentModeMatchesBufferedResults) {
  // budget 0 = no pool (today's behavior): identical results to a
  // pooled table over the same workload, and no pool stats.
  constexpr uint64_t kRows = 1500;
  Table resident("r", Schema(4), SmallConfig());
  PooledTable pooled(/*budget=*/2048);
  LoadRows(resident, kRows);
  LoadRows(*pooled.table, kRows);
  if (BufferPool::EnvBudgetBytes() == 0) {
    // Without the CI knob a plain table has no pool at all.
    EXPECT_EQ(resident.buffer_pool(), nullptr);
  }

  for (ColumnId c : {1u, 2u, 3u}) {
    uint64_t s1 = 0, s2 = 0, r1 = 0, r2 = 0;
    ASSERT_TRUE(resident.NewQuery().Sum(c, &s1, &r1).ok());
    ASSERT_TRUE(pooled.table->NewQuery().Sum(c, &s2, &r2).ok());
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(r1, r2);
  }
}

TEST(BufferPoolTest, ColdSlotReadDecodesOneSlotWithoutInflating) {
  // Unit-level: a fixed-width swapped page serves single-slot reads
  // from the store without hydrating; a varint page declines.
  SegmentStore store;
  ASSERT_TRUE(store.OpenTemp().ok());
  EpochManager epochs;
  constexpr uint32_t kSlots = 300;
  // Fixed payload: [count varint][width byte][values LE], width 2.
  std::string fixed;
  PutVarint64(&fixed, kSlots);
  fixed.push_back(2);
  for (uint32_t i = 0; i < kSlots; ++i) {
    uint64_t v = 20000 + i;
    fixed.push_back(static_cast<char>(v & 0xff));
    fixed.push_back(static_cast<char>((v >> 8) & 0xff));
  }
  uint64_t off = 0;
  ASSERT_TRUE(store.Append(fixed, &off).ok());
  SegmentPage page(&epochs, kSlots, /*compress=*/true);
  page.SetSwap(&store, off, fixed.size(), Fnv1a32(fixed.data(), fixed.size()),
               SwapFormat::kFixed, 2);
  for (uint32_t slot : {0u, 1u, 137u, kSlots - 1}) {
    Value v = 0;
    ASSERT_TRUE(BufferPool::ReadColdSlot(&page, slot, &v));
    EXPECT_EQ(v, 20000u + slot);
  }
  EXPECT_FALSE(page.resident());  // never inflated
  Value v = 0;
  EXPECT_FALSE(BufferPool::ReadColdSlot(&page, kSlots, &v));  // OOB

  // Full hydration of the same fixed payload decodes identically.
  bool won = false;
  const CompressedColumn* col = BufferPool::LoadColdPayload(&page, &won);
  ASSERT_TRUE(won);
  for (uint32_t slot = 0; slot < kSlots; ++slot) {
    EXPECT_EQ(col->Get(slot), 20000u + slot);
  }
  // Resident now: the cold path declines and the pin path serves.
  EXPECT_FALSE(BufferPool::ReadColdSlot(&page, 0, &v));

  // Varint-coded page: cold slot reads decline (full-inflate path).
  std::string varint;
  PutVarint64(&varint, 4u);
  for (uint64_t x : {1u, 2u, 3u, 4u}) PutVarint64(&varint, x);
  ASSERT_TRUE(store.Append(varint, &off).ok());
  SegmentPage vp(&epochs, 4, true);
  vp.SetSwap(&store, off, varint.size(),
             Fnv1a32(varint.data(), varint.size()));
  EXPECT_FALSE(BufferPool::ReadColdSlot(&vp, 1, &v));
  epochs.DrainAllUnsafe();
}

TEST(BufferPoolTest, PointReadMissOnFixedSegmentSkipsInflation) {
  // Values in [2^14, 2^16): 3-byte varints vs 2-byte fixed width, so
  // the write-through picks the fixed layout and a cold point read
  // costs O(1) — counted by stats().cold_point_reads, with no
  // corresponding full-segment miss for the data column.
  constexpr uint64_t kRows = 2000;
  PooledTable pt(/*budget=*/2048);
  {
    Txn txn = pt.table->Begin();
    std::vector<std::vector<Value>> batch;
    for (Value k = 0; k < kRows; ++k) {
      batch.push_back({k, 20000 + k, 40000 + k, 30000 + (k % 7)});
    }
    ASSERT_TRUE(pt.table->InsertBatch(txn, batch).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  pt.table->FlushAll();
  pt.pool.EnforceBudget();  // everything clean + unpinned: go cold

  Txn txn = pt.table->Begin();
  for (Value k : {Value{3}, Value{777}, Value{kRows - 1}}) {
    std::vector<Value> row;
    ASSERT_TRUE(pt.table->Read(txn, k, 0b0110, &row).ok());
    EXPECT_EQ(row[1], 20000 + k);
    EXPECT_EQ(row[2], 40000 + k);
  }
  ASSERT_TRUE(txn.Commit().ok());
  BufferPoolStats s = pt.pool.stats();
  EXPECT_GT(s.cold_point_reads, 0u);

  // Promotion: hammering one key's segments past the cold-read budget
  // hydrates them, so the burst's cold reads are bounded by the
  // promotion gate (times the handful of pages a read touches, plus
  // slack for evict/rehydrate cycles under this tiny budget) — far
  // below one pread per read.
  {
    const int kBurst = 20 * static_cast<int>(BufferPool::kColdReadPromotion);
    uint64_t before_burst = pt.pool.stats().cold_point_reads;
    Txn hot = pt.table->Begin();
    for (int rep = 0; rep < kBurst; ++rep) {
      std::vector<Value> row;
      ASSERT_TRUE(pt.table->Read(hot, 42, 0b0010, &row).ok());
      EXPECT_EQ(row[1], 20000 + 42);
    }
    ASSERT_TRUE(hot.Commit().ok());
    uint64_t burst_delta = pt.pool.stats().cold_point_reads - before_burst;
    EXPECT_LT(burst_delta, static_cast<uint64_t>(kBurst) / 2);
  }

  // And a full scan over the same segments still decodes exactly.
  uint64_t sum = 0, n = 0;
  ASSERT_TRUE(pt.table->NewQuery().Sum(1, &sum, &n).ok());
  EXPECT_EQ(n, kRows);
  EXPECT_EQ(sum, kRows * 20000 + kRows * (kRows - 1) / 2);
}

TEST(BufferPoolTest, FixedFormatSurvivesCheckpointRestart) {
  // The format + width travel through the checkpoint's segment-ref
  // frames: after a restart the lazily mapped segments still serve
  // O(1) cold point reads.
  std::string dir = ScratchDir("fixed_restart");
  DurabilityOptions opts;
  opts.buffer_pool_bytes = 2048;
  constexpr uint64_t kRows = 1500;
  {
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(dir, opts, &db).ok());
    ASSERT_TRUE(db->CreateTable("t", Schema(3), SmallConfig()).ok());
    Table* t = db->GetTable("t");
    Txn txn = t->Begin();
    std::vector<std::vector<Value>> batch;
    for (Value k = 0; k < kRows; ++k) {
      batch.push_back({k, 20000 + 2 * k, 50000 + k});
    }
    ASSERT_TRUE(t->InsertBatch(txn, batch).ok());
    ASSERT_TRUE(txn.Commit().ok());
    t->FlushAll();
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  {
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(dir, opts, &db).ok());
    Table* t = db->GetTable("t");
    ASSERT_NE(t, nullptr);
    Txn txn = t->Begin();
    std::vector<Value> row;
    ASSERT_TRUE(t->Read(txn, 444, 0b110, &row).ok());
    EXPECT_EQ(row[1], 20000 + 2 * 444);
    EXPECT_EQ(row[2], 50000 + 444);
    ASSERT_TRUE(txn.Commit().ok());
    EXPECT_GT(db->buffer_stats().cold_point_reads, 0u);
  }
  std::filesystem::remove_all(dir);
}

TEST(BufferPoolTest, DroppedTableDetachesCleanly) {
  // Destroying a pooled table while another pooled table keeps the
  // shared pool busy must not leave dangling ring entries.
  BufferPool pool(2048);
  SegmentStore store1, store2;
  ASSERT_TRUE(store1.OpenTemp().ok());
  ASSERT_TRUE(store2.OpenTemp().ok());
  TableConfig cfg = SmallConfig();
  cfg.buffer_pool = &pool;
  cfg.segment_store = &store1;
  auto t1 = std::make_unique<Table>("t1", Schema(4), cfg);
  cfg.segment_store = &store2;
  Table t2("t2", Schema(4), cfg);
  LoadRows(*t1, 1000);
  LoadRows(t2, 1000);
  uint64_t pages_both = pool.stats().pages;
  t1.reset();  // DetachDomain path
  BufferPoolStats s = pool.stats();
  EXPECT_LT(s.pages, pages_both);
  // The survivor still scans correctly through the shared pool.
  uint64_t sum = 0;
  ASSERT_TRUE(t2.NewQuery().Sum(1, &sum).ok());
  EXPECT_EQ(sum, 1000u * 1001 / 2);
}

}  // namespace
}  // namespace lstore
