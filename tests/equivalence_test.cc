// Cross-engine equivalence: L-Store (column), L-Store (Row), IUH, and
// DBM execute the same randomized committed operation trace and must
// agree with a plain std::map reference model on every read and scan.
// This is the strongest end-to-end correctness property we can state:
// the four storage architectures are interchangeable in semantics and
// differ only in performance (Section 6.1 "for fairness...").

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "baselines/dbm/dbm_table.h"
#include "baselines/iuh/iuh_table.h"
#include "common/bitutil.h"
#include "common/random.h"
#include "core/row_table.h"
#include "core/query.h"
#include "core/table.h"

namespace lstore {
namespace {

constexpr uint32_t kCols = 4;

TableConfig Config(uint32_t range_size) {
  TableConfig cfg;
  cfg.range_size = range_size;
  cfg.insert_range_size = range_size;
  cfg.tail_page_slots = 16;
  cfg.base_page_slots = 16;
  cfg.merge_threshold = 24;
  cfg.enable_merge_thread = false;
  return cfg;
}

struct SweepCase {
  const char* name;
  uint64_t seed;
  uint32_t range_size;
  int ops;
  bool merge_mid_trace;
};

class EngineEquivalence : public ::testing::TestWithParam<SweepCase> {};

TEST_P(EngineEquivalence, AllEnginesMatchReferenceModel) {
  const SweepCase& p = GetParam();
  TableConfig cfg = Config(p.range_size);
  Table col("c", Schema(kCols), cfg);
  RowTable row(Schema(kCols), cfg);
  IuhTable iuh(Schema(kCols), cfg);
  DbmTable dbm(Schema(kCols), cfg);
  std::map<Value, std::vector<Value>> model;

  Random rng(p.seed);
  Value next_key = 0;

  auto run_all = [&](auto&& fn) {
    // fn(table) -> Status; must succeed or fail identically everywhere.
    Status a = fn(col), b = fn(row), c = fn(iuh), d = fn(dbm);
    ASSERT_EQ(a.ok(), b.ok()) << a.ToString() << " vs " << b.ToString();
    ASSERT_EQ(a.ok(), c.ok()) << a.ToString() << " vs " << c.ToString();
    ASSERT_EQ(a.ok(), d.ok()) << a.ToString() << " vs " << d.ToString();
  };

  for (int i = 0; i < p.ops; ++i) {
    int op = static_cast<int>(rng.Uniform(100));
    if (op < 30 || model.empty()) {
      // Insert a fresh key.
      Value key = next_key++;
      std::vector<Value> r(kCols);
      r[0] = key;
      for (uint32_t c = 1; c < kCols; ++c) r[c] = rng.Uniform(100000);
      run_all([&](auto& t) {
        Txn txn = t.Begin();
        Status s = t.Insert(txn, r);
        if (!s.ok()) {
          txn.Abort();
          return s;
        }
        return txn.Commit();
      });
      model[key] = r;
    } else if (op < 75) {
      // Update 1-3 random columns of an existing key.
      Value key = rng.Uniform(next_key);
      ColumnMask mask = 0;
      uint32_t n = 1 + static_cast<uint32_t>(rng.Uniform(3));
      while (PopCount(mask) < static_cast<int>(n)) {
        mask |= 1ull << (1 + rng.Uniform(kCols - 1));
      }
      std::vector<Value> r(kCols, 0);
      for (BitIter it(mask); it; ++it) r[*it] = rng.Uniform(100000);
      bool exists = model.count(key) > 0;
      run_all([&](auto& t) {
        Txn txn = t.Begin();
        Status s = t.Update(txn, key, mask, r);
        if (!s.ok()) {
          txn.Abort();
          return s;
        }
        return txn.Commit();
      });
      if (exists) {
        for (BitIter it(mask); it; ++it) model[key][*it] = r[*it];
      }
    } else if (op < 80) {
      // Delete: all engines agree, including on double-deletes.
      Value key = rng.Uniform(next_key);
      run_all([&](auto& t) {
        Txn txn = t.Begin();
        Status s = t.Delete(txn, key);
        if (!s.ok()) {
          txn.Abort();
          return s;
        }
        return txn.Commit();
      });
      model.erase(key);
    } else if (op < 85) {
      // Aborted update: must leave no trace anywhere.
      Value key = rng.Uniform(next_key);
      std::vector<Value> r(kCols, rng.Uniform(100000));
      run_all([&](auto& t) {
        Txn txn = t.Begin();
        Status s = t.Update(txn, key, 0b0010, r);
        txn.Abort();
        return s;
      });
    } else if (op < 90 && p.merge_mid_trace) {
      // Merge / flush maintenance mid-trace (no semantic effect).
      col.FlushAll();
      col.epochs().TryReclaim();
      for (uint64_t rid = 0; rid < 4; ++rid) (void)dbm.MergeRange(rid);
    } else {
      // Point read of a random key: everyone matches the model.
      Value key = rng.Uniform(next_key);
      auto expect = model.find(key);
      std::vector<Value> a, b, c, d;
      Txn ta = col.Begin();
      Txn tb = row.Begin();
      Txn tc = iuh.Begin();
      Txn td = dbm.Begin();
      ColumnMask all = (1ull << kCols) - 1;
      Status sa = col.Read(ta, key, all, &a);
      Status sb = row.Read(tb, key, all, &b);
      Status sc = iuh.Read(tc, key, all, &c);
      Status sd = dbm.Read(td, key, all, &d);
      (void)ta.Commit();
      (void)tb.Commit();
      (void)tc.Commit();
      (void)td.Commit();
      if (expect == model.end()) {
        EXPECT_TRUE(sa.IsNotFound());
        EXPECT_TRUE(sb.IsNotFound());
        EXPECT_TRUE(sc.IsNotFound());
        EXPECT_TRUE(sd.IsNotFound());
      } else {
        ASSERT_TRUE(sa.ok() && sb.ok() && sc.ok() && sd.ok());
        EXPECT_EQ(a, expect->second) << "L-Store col, key " << key;
        EXPECT_EQ(b, expect->second) << "L-Store row, key " << key;
        EXPECT_EQ(c, expect->second) << "IUH, key " << key;
        EXPECT_EQ(d, expect->second) << "DBM, key " << key;
      }
    }
  }

  // Final scans across all engines match the model.
  uint64_t expect_sum = 0;
  for (const auto& [k, r] : model) expect_sum += r[1];
  uint64_t sums[4] = {0, 0, 0, 0};
  ASSERT_TRUE(col.NewQuery().Sum(1, &sums[0]).ok());
  ASSERT_TRUE(row.SumColumn(1, row.Now(), &sums[1]).ok());
  ASSERT_TRUE(iuh.SumColumn(1, iuh.Now(), &sums[2]).ok());
  ASSERT_TRUE(dbm.SumColumn(1, dbm.Now(), &sums[3]).ok());
  EXPECT_EQ(sums[0], expect_sum) << "L-Store col scan";
  EXPECT_EQ(sums[1], expect_sum) << "L-Store row scan";
  EXPECT_EQ(sums[2], expect_sum) << "IUH scan";
  EXPECT_EQ(sums[3], expect_sum) << "DBM scan";

  // And after a full merge everywhere, scans still agree.
  col.FlushAll();
  uint64_t after = 0;
  ASSERT_TRUE(col.NewQuery().Sum(1, &after).ok());
  EXPECT_EQ(after, expect_sum);
}

INSTANTIATE_TEST_SUITE_P(
    Traces, EngineEquivalence,
    ::testing::Values(SweepCase{"seed1", 1, 32, 400, false},
                      SweepCase{"seed2", 2, 32, 400, true},
                      SweepCase{"seed3", 3, 16, 600, true},
                      SweepCase{"big_range", 4, 256, 400, false},
                      SweepCase{"merge_heavy", 5, 16, 800, true},
                      SweepCase{"seed6", 6, 64, 500, true}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace lstore
