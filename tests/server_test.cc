// Network service layer tests (src/server/): wire-codec robustness
// (torn / oversized / bit-flipped frames, mirroring archive_test's
// torn-segment style), the full request surface over a real TCP
// loopback socket, per-session transaction isolation, auto-abort on
// disconnect, admission-control Busy under a tiny queue bound, 32
// concurrent sessions of mixed traffic (the TSan target), and clean
// shutdown with requests in flight.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/database.h"
#include "core/query.h"
#include "log/framed_log.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"

namespace lstore {
namespace {

// --- harness ---------------------------------------------------------------

/// In-memory Database + Server on an ephemeral loopback port.
/// (Server is declared after db so it stops before the engine dies.)
struct TestServer {
  Database db;
  std::unique_ptr<Server> server;

  Status Start(ServerConfig cfg = {}) {
    server = std::make_unique<Server>(&db, cfg);
    return server->Start();
  }
  uint16_t port() const { return server->port(); }
  ServerStats stats() const { return server->stats(); }
};

Status Connect(const TestServer& ts, Client* c) {
  return c->Connect("127.0.0.1", ts.port());
}

bool WaitUntil(const std::function<bool()>& pred, int timeout_ms = 5000) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

// --- raw-socket helpers (for pipelining and fuzzing) -----------------------

int RawConnect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void SendRaw(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n <= 0) return;  // peer hung up mid-fuzz: that is fine
    off += static_cast<size_t>(n);
  }
}

/// Frame a payload exactly as wire::WriteFrame does.
std::string Frame(const std::string& payload) {
  std::string f;
  wire::PutU32(&f, static_cast<uint32_t>(payload.size()));
  f.append(payload);
  wire::PutU32(&f, Fnv1a32(payload.data(), payload.size()));
  return f;
}

std::string PingPayload(uint32_t request_id) {
  std::string p;
  wire::PutU32(&p, request_id);
  wire::PutU8(&p, static_cast<uint8_t>(wire::Op::kPing));
  return p;
}

/// Read one response frame; returns false on EOF/error.
bool ReadResponse(int fd, uint32_t* id, uint8_t* code) {
  std::string payload;
  if (!wire::ReadFrame(fd, wire::kDefaultMaxFrameBytes, &payload).ok()) {
    return false;
  }
  wire::Reader in(payload);
  std::string msg;
  return in.U32(id) && in.U8(code) && in.String(&msg);
}

// --- scan-pool sizing (must run first: the pool is built lazily) -----------

TEST(ScanPoolConfig, FirstConfigurationWins) {
  if (std::getenv("LSTORE_SCAN_THREADS") != nullptr) {
    GTEST_SKIP() << "LSTORE_SCAN_THREADS overrides ConfigureShared";
  }
  // First configuration (before any Shared() use in this process)
  // sticks; re-stating the same value is still accepted.
  EXPECT_TRUE(ThreadPool::ConfigureShared(2));
  EXPECT_TRUE(ThreadPool::ConfigureShared(2));
  EXPECT_EQ(ThreadPool::Shared().num_threads(), 2u);
  // The pool exists now: later reconfiguration attempts (e.g. a
  // Server::Start in the tests below) are advisory no-ops.
  EXPECT_FALSE(ThreadPool::ConfigureShared(5));
  EXPECT_EQ(ThreadPool::Shared().num_threads(), 2u);
}

// --- wire codec ------------------------------------------------------------

TEST(WireCodec, ReaderRejectsHostileCounts) {
  // A Values count of 2^31 with 4 bytes of payload behind it must
  // fail before allocating, not reserve gigabytes.
  std::string buf;
  wire::PutU32(&buf, 0x80000000u);
  wire::PutU32(&buf, 7);
  wire::Reader in(buf);
  std::vector<Value> vs;
  EXPECT_FALSE(in.Values(&vs));
  EXPECT_FALSE(in.ok());

  std::string rows_buf;
  wire::PutU32(&rows_buf, 0xffffffffu);
  wire::Reader in2(rows_buf);
  std::vector<std::vector<Value>> rows;
  EXPECT_FALSE(in2.Rows(&rows));
}

TEST(WireCodec, RoundTrip) {
  std::string buf;
  wire::PutU8(&buf, 200);
  wire::PutU32(&buf, 0xdeadbeef);
  wire::PutU64(&buf, ~0ull - 1);
  wire::PutString(&buf, "hello");
  wire::PutValues(&buf, {1, kNull, 3});
  wire::PutRows(&buf, {{4, 5}, {}});

  wire::Reader in(buf);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  std::string s;
  std::vector<Value> vs;
  std::vector<std::vector<Value>> rows;
  ASSERT_TRUE(in.U8(&u8));
  ASSERT_TRUE(in.U32(&u32));
  ASSERT_TRUE(in.U64(&u64));
  ASSERT_TRUE(in.String(&s));
  ASSERT_TRUE(in.Values(&vs));
  ASSERT_TRUE(in.Rows(&rows));
  EXPECT_TRUE(in.done());
  EXPECT_EQ(u8, 200);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, ~0ull - 1);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(vs, (std::vector<Value>{1, kNull, 3}));
  EXPECT_EQ(rows, (std::vector<std::vector<Value>>{{4, 5}, {}}));
}

// --- full request surface over one connection ------------------------------

TEST(ServerTest, RoundTripCatalogPointAndQueryOps) {
  TestServer ts;
  ASSERT_TRUE(ts.Start().ok());
  Client c;
  ASSERT_TRUE(Connect(ts, &c).ok());

  EXPECT_TRUE(c.Ping().ok());

  ASSERT_TRUE(c.CreateTable("acct", {"id", "bal", "flag"}).ok());
  EXPECT_TRUE(c.CreateTable("acct", {"id", "bal", "flag"}).IsAlreadyExists());
  std::vector<std::string> names;
  ASSERT_TRUE(c.ListTables(&names).ok());
  EXPECT_EQ(names, std::vector<std::string>{"acct"});
  std::vector<std::string> cols;
  ASSERT_TRUE(c.GetSchema("acct", &cols).ok());
  EXPECT_EQ(cols, (std::vector<std::string>{"id", "bal", "flag"}));
  EXPECT_TRUE(c.GetSchema("nope", &cols).IsNotFound());

  // Point ops (auto-committed one-shots).
  for (Value k = 0; k < 10; ++k) {
    ASSERT_TRUE(c.Insert("acct", {k, k * 10, k % 2}).ok());
  }
  std::vector<Value> row;
  ASSERT_TRUE(c.Read("acct", 5, ~0ull, &row).ok());
  EXPECT_EQ(row, (std::vector<Value>{5, 50, 1}));
  ASSERT_TRUE(c.Update("acct", 5, 1ull << 1, {5, 500, 1}).ok());
  ASSERT_TRUE(c.Read("acct", 5, ~0ull, &row).ok());
  EXPECT_EQ(row[1], 500u);
  ASSERT_TRUE(c.Delete("acct", 9).ok());
  EXPECT_TRUE(c.Read("acct", 9, ~0ull, &row).IsNotFound());

  // MultiRead: per-key outcomes travel inside an OK response.
  std::vector<std::vector<Value>> rows;
  std::vector<Status> statuses;
  ASSERT_TRUE(c.MultiRead("acct", {1, 2, 42}, ~0ull, &rows, &statuses).ok());
  ASSERT_EQ(rows.size(), 3u);
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<Value>{1, 10, 1}));
  EXPECT_TRUE(statuses[1].ok());
  EXPECT_TRUE(statuses[2].IsNotFound());

  // Batch ops.
  std::vector<std::vector<Value>> batch;
  for (Value k = 100; k < 132; ++k) batch.push_back({k, 7, 0});
  ASSERT_TRUE(c.InsertBatch("acct", batch).ok());
  ASSERT_TRUE(c.UpdateBatch("acct", {100, 101}, 1ull << 1,
                            {{100, 9, 0}, {101, 9, 0}})
                  .ok());
  ASSERT_TRUE(c.DeleteBatch("acct", {130, 131}).ok());

  // Queries: range, where, aggregate kinds.
  uint64_t count = 0;
  ASSERT_TRUE(c.Count("acct", {}, &count).ok());
  EXPECT_EQ(count, 9u + 30u);  // 10-1 point rows + 32-2 batch rows
  uint64_t sum = 0, seen = 0;
  Client::QuerySpec odd;
  odd.where = {{2, 1}};  // flag == 1
  ASSERT_TRUE(c.Sum("acct", 1, odd, &sum, &seen).ok());
  EXPECT_EQ(seen, 4u);    // odd point keys 1,3,5,7 (9 was deleted)
  EXPECT_EQ(sum, 610u);   // 10 + 30 + 500 (updated) + 70
  Value mn = 0, mx = 0;
  ASSERT_TRUE(c.Min("acct", 0, {}, &mn).ok());
  EXPECT_EQ(mn, 0u);
  ASSERT_TRUE(c.Max("acct", 0, {}, &mx).ok());
  EXPECT_EQ(mx, 129u);
  std::vector<Value> keys;
  Client::QuerySpec spec;
  spec.where = {{1, 9}};  // bal == 9 (the two updated batch rows)
  ASSERT_TRUE(c.Keys("acct", spec, &keys).ok());
  EXPECT_EQ(keys, (std::vector<Value>{100, 101}));

  // Time travel: a timestamp taken now must hide later writes.
  Timestamp now = ts.db.Begin().begin_time();
  ASSERT_TRUE(c.Insert("acct", {900, 1, 1}).ok());
  Client::QuerySpec as_of;
  as_of.as_of = now;
  uint64_t then_count = 0;
  ASSERT_TRUE(c.Count("acct", as_of, &then_count).ok());
  EXPECT_EQ(then_count, count);
  ASSERT_TRUE(c.Count("acct", {}, &then_count).ok());
  EXPECT_EQ(then_count, count + 1);

  // Unknown opcode → clean InvalidArgument, connection stays usable.
  {
    int fd = RawConnect(ts.port());
    ASSERT_GE(fd, 0);
    std::string p;
    wire::PutU32(&p, 77);
    wire::PutU8(&p, 200);  // no such op
    SendRaw(fd, Frame(p));
    uint32_t id = 0;
    uint8_t code = 0;
    ASSERT_TRUE(ReadResponse(fd, &id, &code));
    EXPECT_EQ(id, 77u);
    EXPECT_EQ(code, static_cast<uint8_t>(Status::Code::kInvalidArgument));
    SendRaw(fd, Frame(PingPayload(78)));
    ASSERT_TRUE(ReadResponse(fd, &id, &code));
    EXPECT_EQ(id, 78u);
    EXPECT_EQ(code, 0);
    ::close(fd);
  }

  // Metrics over the protocol: server and engine families together.
  std::string text;
  ASSERT_TRUE(c.Metrics(&text).ok());
  EXPECT_NE(text.find("lstore_server_requests_total"), std::string::npos);
  EXPECT_NE(text.find("lstore_server_sessions"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lstore_server_requests_total counter"),
            std::string::npos);
}

// --- transactions and per-session isolation --------------------------------

TEST(ServerTest, TxnLifecycleAndPerSessionIsolation) {
  TestServer ts;
  ASSERT_TRUE(ts.Start().ok());
  Client a, b;
  ASSERT_TRUE(Connect(ts, &a).ok());
  ASSERT_TRUE(Connect(ts, &b).ok());
  ASSERT_TRUE(a.CreateTable("t", {"k", "v"}).ok());

  // Uncommitted writes are invisible to the other session.
  ASSERT_TRUE(a.Begin().ok());
  ASSERT_TRUE(a.Insert("t", {1, 10}).ok());
  uint64_t count = ~0ull;
  ASSERT_TRUE(b.Count("t", {}, &count).ok());
  EXPECT_EQ(count, 0u);
  std::vector<Value> row;
  EXPECT_TRUE(b.Read("t", 1, ~0ull, &row).IsNotFound());
  ASSERT_TRUE(a.Commit().ok());
  ASSERT_TRUE(b.Count("t", {}, &count).ok());
  EXPECT_EQ(count, 1u);

  // Abort discards.
  ASSERT_TRUE(a.Begin().ok());
  ASSERT_TRUE(a.Insert("t", {2, 20}).ok());
  ASSERT_TRUE(a.Abort().ok());
  EXPECT_TRUE(b.Read("t", 2, ~0ull, &row).IsNotFound());

  // Session state machine: one open txn per session, no stray commits.
  ASSERT_TRUE(a.Begin().ok());
  EXPECT_TRUE(a.Begin().IsInvalidArgument());
  ASSERT_TRUE(a.Abort().ok());
  EXPECT_TRUE(a.Commit().IsInvalidArgument());
  EXPECT_TRUE(a.Abort().IsInvalidArgument());

  // Write-write conflict across sessions: the second writer loses at
  // update time (indirection latch), the first commits fine.
  ASSERT_TRUE(a.Begin().ok());
  ASSERT_TRUE(b.Begin().ok());
  ASSERT_TRUE(a.Update("t", 1, 1ull << 1, {1, 11}).ok());
  EXPECT_FALSE(b.Update("t", 1, 1ull << 1, {1, 12}).ok());
  ASSERT_TRUE(b.Abort().ok());
  ASSERT_TRUE(a.Commit().ok());
  ASSERT_TRUE(b.Read("t", 1, ~0ull, &row).ok());
  EXPECT_EQ(row[1], 11u);
}

TEST(ServerTest, DisconnectAutoAbortsOpenTransaction) {
  TestServer ts;
  ASSERT_TRUE(ts.Start().ok());
  {
    Client a;
    ASSERT_TRUE(Connect(ts, &a).ok());
    ASSERT_TRUE(a.CreateTable("t", {"k", "v"}).ok());
    ASSERT_TRUE(a.Begin().ok());
    ASSERT_TRUE(a.Insert("t", {7, 70}).ok());
    // Vanish mid-transaction.
  }
  ASSERT_TRUE(WaitUntil([&] { return ts.stats().sessions_active == 0; }))
      << "session not finalized after disconnect";

  Client b;
  ASSERT_TRUE(Connect(ts, &b).ok());
  uint64_t count = ~0ull;
  ASSERT_TRUE(b.Count("t", {}, &count).ok());
  EXPECT_EQ(count, 0u) << "disconnected session's txn was not aborted";
  std::vector<Value> row;
  EXPECT_TRUE(b.Read("t", 7, ~0ull, &row).IsNotFound());
}

// --- admission control -----------------------------------------------------

TEST(ServerTest, BusyWhenJobQueueFull) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_queue_depth = 2;
  cfg.test_delay_us = 20000;  // each request holds the worker 20ms
  TestServer ts;
  ASSERT_TRUE(ts.Start(cfg).ok());

  constexpr int kClients = 8;
  std::atomic<int> ok{0}, busy{0}, other{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      Client c;
      if (!Connect(ts, &c).ok()) {
        ++other;
        return;
      }
      Status s = c.Ping();
      if (s.ok()) {
        ++ok;
      } else if (s.IsBusy()) {
        ++busy;
      } else {
        ++other;
      }
    });
  }
  for (auto& t : threads) t.join();

  // 1 executing + 2 queued can be accepted; the rest must be turned
  // away *immediately* (a Busy client never waits behind the queue).
  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(ok.load() + busy.load(), kClients);
  EXPECT_GE(busy.load(), 1) << "overload did not produce Busy";
  EXPECT_GE(ok.load(), 1);
  EXPECT_EQ(ts.stats().rejected_busy, static_cast<uint64_t>(busy.load()));

  // Once the burst drains, the server accepts again.
  Client c;
  ASSERT_TRUE(Connect(ts, &c).ok());
  EXPECT_TRUE(WaitUntil([&] { return c.Ping().ok(); }));
}

TEST(ServerTest, BusyWhenSessionPipelineFull) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_queue_depth = 64;  // global bound out of the way
  cfg.max_inflight_per_session = 2;
  cfg.test_delay_us = 20000;
  TestServer ts;
  ASSERT_TRUE(ts.Start(cfg).ok());

  int fd = RawConnect(ts.port());
  ASSERT_GE(fd, 0);
  constexpr uint32_t kPipelined = 8;
  std::string burst;
  for (uint32_t id = 1; id <= kPipelined; ++id) {
    burst += Frame(PingPayload(id));
  }
  SendRaw(fd, burst);

  // All 8 get responses — Busy rejections immediately (possibly out
  // of order, hence the ids), accepted pongs as the worker drains.
  std::vector<bool> seen(kPipelined + 1, false);
  int ok = 0, busy = 0;
  for (uint32_t i = 0; i < kPipelined; ++i) {
    uint32_t id = 0;
    uint8_t code = 0;
    ASSERT_TRUE(ReadResponse(fd, &id, &code)) << "response " << i;
    ASSERT_GE(id, 1u);
    ASSERT_LE(id, kPipelined);
    EXPECT_FALSE(seen[id]) << "duplicate response id " << id;
    seen[id] = true;
    if (code == 0) {
      ++ok;
    } else {
      EXPECT_EQ(code, static_cast<uint8_t>(Status::Code::kBusy));
      ++busy;
    }
  }
  ::close(fd);
  EXPECT_GE(busy, 1) << "pipeline overrun did not produce Busy";
  EXPECT_GE(ok, 2) << "accepted pipeline depth not honored";
}

// --- wire-codec robustness against a hostile/broken peer -------------------

TEST(WireFuzzTest, TornOversizedAndBitFlippedFramesNeverCrash) {
  TestServer ts;
  ASSERT_TRUE(ts.Start().ok());
  const std::string good = Frame(PingPayload(1));
  std::mt19937 rng(0xeda7);  // deterministic: CI failures must replay

  // Torn frames: every cut point of a valid frame, then hang up.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    int fd = RawConnect(ts.port());
    ASSERT_GE(fd, 0);
    SendRaw(fd, good.substr(0, cut));
    ::close(fd);
  }

  // Bit flips anywhere in the frame: the server answers with an error
  // or just hangs up — never crashes, never leaks the session.
  for (int trial = 0; trial < 64; ++trial) {
    std::string bad = good;
    size_t byte = rng() % bad.size();
    bad[byte] = static_cast<char>(bad[byte] ^ (1u << (rng() % 8)));
    int fd = RawConnect(ts.port());
    ASSERT_GE(fd, 0);
    SendRaw(fd, bad);
    ::shutdown(fd, SHUT_WR);  // EOF ends any wait for more payload
    uint32_t id = 0;
    uint8_t code = 0;
    while (ReadResponse(fd, &id, &code)) {
      // Whatever arrives must be a well-formed response frame; a
      // flipped ping may still decode as some valid request.
    }
    ::close(fd);
  }

  // Oversized length header: rejected before allocation.
  {
    int fd = RawConnect(ts.port());
    ASSERT_GE(fd, 0);
    std::string huge;
    wire::PutU32(&huge, wire::kDefaultMaxFrameBytes + 1);
    SendRaw(fd, huge);
    uint32_t id = 0;
    uint8_t code = 0;
    ASSERT_TRUE(ReadResponse(fd, &id, &code));
    EXPECT_EQ(code, static_cast<uint8_t>(Status::Code::kInvalidArgument));
    EXPECT_FALSE(ReadResponse(fd, &id, &code));  // then it hangs up
    ::close(fd);
  }

  // Random garbage streams.
  for (int trial = 0; trial < 16; ++trial) {
    int fd = RawConnect(ts.port());
    ASSERT_GE(fd, 0);
    std::string garbage(1 + rng() % 64, '\0');
    for (char& ch : garbage) ch = static_cast<char>(rng());
    SendRaw(fd, garbage);
    ::shutdown(fd, SHUT_WR);
    uint32_t id = 0;
    uint8_t code = 0;
    while (ReadResponse(fd, &id, &code)) {
    }
    ::close(fd);
  }

  // A short request header inside a well-formed frame keeps the
  // session alive (the stream is still in sync).
  {
    int fd = RawConnect(ts.port());
    ASSERT_GE(fd, 0);
    std::string tiny;
    wire::PutU32(&tiny, 5);  // id but no opcode
    SendRaw(fd, Frame(tiny));
    uint32_t id = 0;
    uint8_t code = 0;
    ASSERT_TRUE(ReadResponse(fd, &id, &code));
    EXPECT_EQ(code, static_cast<uint8_t>(Status::Code::kInvalidArgument));
    SendRaw(fd, Frame(PingPayload(6)));
    ASSERT_TRUE(ReadResponse(fd, &id, &code));
    EXPECT_EQ(id, 6u);
    EXPECT_EQ(code, 0);
    ::close(fd);
  }

  // Every fuzz session must drain, and a fresh client still works.
  EXPECT_TRUE(WaitUntil([&] { return ts.stats().sessions_active == 0; }))
      << "fuzz connections leaked sessions";
  Client c;
  ASSERT_TRUE(Connect(ts, &c).ok());
  EXPECT_TRUE(c.Ping().ok());
  EXPECT_GT(ts.stats().errors, 0u);
}

// --- concurrency: the TSan target ------------------------------------------

TEST(ServerTest, ThirtyTwoConcurrentSessionsMixedTraffic) {
  TestServer ts;
  ASSERT_TRUE(ts.Start().ok());
  {
    Client admin;
    ASSERT_TRUE(Connect(ts, &admin).ok());
    ASSERT_TRUE(admin.CreateTable("t", {"k", "v"}).ok());
  }

  constexpr uint64_t kSessions = 32;
  constexpr uint64_t kRows = 32;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (uint64_t tid = 0; tid < kSessions; ++tid) {
    threads.emplace_back([&, tid] {
      Client c;
      if (!Connect(ts, &c).ok()) {
        ++failures;
        return;
      }
      const uint64_t base = tid * 1000;
      auto check = [&](const Status& s) {
        if (!s.ok()) ++failures;
        return s.ok();
      };

      // Committed batch: this session's persistent rows.
      std::vector<std::vector<Value>> rows;
      std::vector<Value> keys;
      for (uint64_t i = 0; i < kRows; ++i) {
        rows.push_back({base + i, 1});
        keys.push_back(base + i);
      }
      if (!check(c.Begin())) return;
      if (!check(c.InsertBatch("t", rows))) return;
      if (!check(c.Commit())) return;

      // Aborted txn: must leave no trace.
      if (!check(c.Begin())) return;
      if (!check(c.Insert("t", {base + 500, 9}))) return;
      if (!check(c.Abort())) return;

      // One-shot updates on our own keys (no cross-session conflicts).
      std::vector<Value> half(keys.begin(), keys.begin() + kRows / 2);
      std::vector<std::vector<Value>> updates;
      for (Value k : half) updates.push_back({k, 2});
      if (!check(c.UpdateBatch("t", half, 1ull << 1, updates))) return;

      // Read back and verify this session's slice.
      std::vector<std::vector<Value>> got;
      if (!check(c.MultiRead("t", keys, ~0ull, &got))) return;
      if (got.size() != keys.size()) {
        ++failures;
        return;
      }
      for (uint64_t i = 0; i < kRows; ++i) {
        Value want = i < kRows / 2 ? 2 : 1;
        if (got[i].size() != 2 || got[i][1] != want) {
          ++failures;
          return;
        }
      }
      uint64_t n = 0;
      if (!check(c.Count("t", {}, &n))) return;
      if (n < kRows) ++failures;  // at least our own committed rows
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  Client c;
  ASSERT_TRUE(Connect(ts, &c).ok());
  uint64_t count = 0, sum = 0;
  ASSERT_TRUE(c.Count("t", {}, &count).ok());
  EXPECT_EQ(count, kSessions * kRows);
  ASSERT_TRUE(c.Sum("t", 1, {}, &sum).ok());
  EXPECT_EQ(sum, kSessions * (kRows / 2 * 2 + kRows / 2 * 1));
  EXPECT_EQ(ts.stats().errors, 0u);
  EXPECT_GE(ts.stats().accepted, kSessions * 6);
}

// --- shutdown --------------------------------------------------------------

TEST(ServerTest, CleanShutdownWithRequestsInFlight) {
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.test_delay_us = 3000;
  TestServer ts;
  ASSERT_TRUE(ts.Start(cfg).ok());

  constexpr int kClients = 8;
  std::atomic<bool> go{true};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      Client c;
      if (!Connect(ts, &c).ok()) return;
      // Hammer until the server goes away under us.
      while (go.load(std::memory_order_relaxed)) {
        Status s = c.Ping();
        if (!s.ok() && !s.IsBusy()) break;
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ts.server->Stop();  // requests are mid-queue and mid-execution now
  go.store(false, std::memory_order_relaxed);
  for (auto& t : threads) t.join();

  EXPECT_FALSE(ts.server->running());
  EXPECT_EQ(ts.stats().sessions_active, 0u);
  EXPECT_EQ(ts.stats().queue_depth, 0u);
  ts.server->Stop();  // idempotent
}

TEST(ServerTest, StopAbortsOpenTransactions) {
  TestServer ts;
  ASSERT_TRUE(ts.Start().ok());
  Client a;
  ASSERT_TRUE(Connect(ts, &a).ok());
  ASSERT_TRUE(a.CreateTable("t", {"k", "v"}).ok());
  ASSERT_TRUE(a.Begin().ok());
  ASSERT_TRUE(a.Insert("t", {1, 10}).ok());

  ts.server->Stop();

  // The engine outlives the server; the orphaned txn must be gone.
  uint64_t count = ~0ull;
  ASSERT_TRUE(ts.db.GetTable("t")->NewQuery().Count(&count).ok());
  EXPECT_EQ(count, 0u);

  // And the engine is still fully usable after the front-end is gone.
  Txn txn = ts.db.Begin();
  ASSERT_TRUE(ts.db.GetTable("t")->Insert(txn, {2, 20}).ok());
  ASSERT_TRUE(txn.Commit().ok());
  ASSERT_TRUE(ts.db.GetTable("t")->NewQuery().Count(&count).ok());
  EXPECT_EQ(count, 1u);
}

}  // namespace
}  // namespace lstore
