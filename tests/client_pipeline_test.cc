// Pipelined-client tests (src/server/client_channel.h + the
// Submit/Await surface of src/server/client.h): several requests in
// flight on one connection with out-of-order, id-matched completion;
// the client-side in-flight cap; server admission-control Busy
// arriving mid-pipeline (a genuinely out-of-order response — the
// reader thread writes it while earlier requests are still
// executing); and channel breakage when the server goes away with
// requests outstanding. Runs in CI's TSan job alongside server_test.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "server/client.h"
#include "server/client_channel.h"
#include "server/server.h"
#include "server/wire.h"

namespace lstore {
namespace {

/// In-memory Database + Server on an ephemeral loopback port.
struct TestServer {
  Database db;
  std::unique_ptr<Server> server;

  Status Start(ServerConfig cfg = {}) {
    server = std::make_unique<Server>(&db, cfg);
    return server->Start();
  }
  uint16_t port() const { return server->port(); }
};

Status Connect(const TestServer& ts, Client* c) {
  return c->Connect("127.0.0.1", ts.port());
}

/// Blocking-load a tiny table: key + 2 data columns, rows 0..n-1
/// with row[c] = key + c.
void LoadTable(const TestServer& ts, uint64_t n) {
  Client c;
  ASSERT_TRUE(Connect(ts, &c).ok());
  ASSERT_TRUE(c.CreateTable("t", {"k", "a", "b"}).ok());
  std::vector<std::vector<Value>> rows;
  for (uint64_t k = 0; k < n; ++k) rows.push_back({k, k + 1, k + 2});
  ASSERT_TRUE(c.InsertBatch("t", rows).ok());
}

// --- out-of-order completion ----------------------------------------------

TEST(ClientPipeline, SustainsInFlightAndMatchesOutOfOrderAwaits) {
  TestServer ts;
  ASSERT_TRUE(ts.Start().ok());
  LoadTable(ts, 16);

  Client c;
  ASSERT_TRUE(Connect(ts, &c).ok());

  // Four reads in flight at once on the one connection.
  RequestId ids[4];
  for (uint64_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(c.SubmitRead("t", k, ~0ull, &ids[k]).ok());
  }
  EXPECT_EQ(c.channel().in_flight(), 4u);
  EXPECT_GE(c.channel().in_flight(), 2u);  // the acceptance bar

  // Await in REVERSE submit order: the channel must read responses
  // (which the server delivers in request order), park the ones for
  // other ids, and hand each Await exactly its own id's row.
  for (int k = 3; k >= 0; --k) {
    std::vector<Value> row;
    ASSERT_TRUE(c.AwaitRead(ids[k], &row).ok()) << "k=" << k;
    ASSERT_EQ(row.size(), 3u);
    EXPECT_EQ(row[0], static_cast<Value>(k));
    EXPECT_EQ(row[1], static_cast<Value>(k + 1));
    EXPECT_EQ(row[2], static_cast<Value>(k + 2));
  }
  EXPECT_EQ(c.channel().in_flight(), 0u);

  // An id is consumed by its Await: a second Await on it is an error,
  // not a hang or a stale result.
  EXPECT_TRUE(c.Await(ids[0]).IsInvalidArgument());
}

TEST(ClientPipeline, OldestInFlightTracksSubmitOrder) {
  TestServer ts;
  ASSERT_TRUE(ts.Start().ok());
  LoadTable(ts, 4);

  Client c;
  ASSERT_TRUE(Connect(ts, &c).ok());
  RequestId a, b;
  ASSERT_TRUE(c.SubmitRead("t", 0, ~0ull, &a).ok());
  ASSERT_TRUE(c.SubmitRead("t", 1, ~0ull, &b).ok());

  RequestId oldest = 0;
  ASSERT_TRUE(c.channel().OldestInFlight(&oldest));
  EXPECT_EQ(oldest, a);
  ASSERT_TRUE(c.AwaitRead(a, nullptr).ok());
  ASSERT_TRUE(c.channel().OldestInFlight(&oldest));
  EXPECT_EQ(oldest, b);
  ASSERT_TRUE(c.AwaitRead(b, nullptr).ok());
  EXPECT_FALSE(c.channel().OldestInFlight(&oldest));
}

// --- the in-flight cap -----------------------------------------------------

TEST(ClientPipeline, ClientSideCapReturnsBusy) {
  TestServer ts;
  ASSERT_TRUE(ts.Start().ok());
  LoadTable(ts, 8);

  Client c;
  ASSERT_TRUE(Connect(ts, &c).ok());
  c.channel().set_max_in_flight(2);

  RequestId a, b, d;
  ASSERT_TRUE(c.SubmitRead("t", 0, ~0ull, &a).ok());
  ASSERT_TRUE(c.SubmitRead("t", 1, ~0ull, &b).ok());
  EXPECT_TRUE(c.SubmitRead("t", 2, ~0ull, &d).IsBusy());

  // Claiming one response frees a slot.
  ASSERT_TRUE(c.AwaitRead(a, nullptr).ok());
  EXPECT_TRUE(c.SubmitRead("t", 2, ~0ull, &d).ok());
  EXPECT_TRUE(c.AwaitRead(b, nullptr).ok());
  EXPECT_TRUE(c.AwaitRead(d, nullptr).ok());
}

// --- server Busy mid-pipeline ---------------------------------------------

TEST(ClientPipeline, ServerBusyArrivesOutOfOrderMidPipeline) {
  // Session admission budget of 2 with every request stalled 20ms:
  // the reader thread answers Busy for the pipeline's tail while its
  // head is still executing, so the Busy responses genuinely overtake
  // earlier requests' responses on the wire.
  ServerConfig cfg;
  cfg.max_inflight_per_session = 2;
  cfg.test_delay_us = 20000;
  TestServer ts;
  ASSERT_TRUE(ts.Start(cfg).ok());

  Client c;
  ASSERT_TRUE(Connect(ts, &c).ok());
  c.channel().set_max_in_flight(6);

  RequestId ids[6];
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(c.channel().Submit(wire::Op::kPing, "", &ids[i]).ok());
  }
  // Await in SUBMIT order. The first awaits force the channel to read
  // (and park) the Busy responses the reader already wrote for the
  // tail — out-of-order arrival, in-order claims.
  int ok = 0, busy = 0;
  for (int i = 0; i < 6; ++i) {
    Status s = c.channel().Await(ids[i], nullptr);
    if (s.ok()) ++ok;
    else if (s.IsBusy()) ++busy;
    else FAIL() << "unexpected status: " << s.ToString();
  }
  EXPECT_GE(ok, 2) << "admitted head of the pipeline";
  EXPECT_GE(busy, 1) << "admission control rejected the tail";
  EXPECT_EQ(ok + busy, 6);

  // A Busy mid-pipeline is an op outcome, not a channel failure: the
  // connection keeps working.
  EXPECT_TRUE(c.Ping().ok());
  EXPECT_EQ(c.channel().in_flight(), 0u);
}

// --- disconnect with requests outstanding ---------------------------------

TEST(ClientPipeline, ServerStopBreaksChannelOncePerOutstandingId) {
  ServerConfig cfg;
  cfg.test_delay_us = 100000;  // park the pipeline server-side
  TestServer ts;
  ASSERT_TRUE(ts.Start(cfg).ok());

  Client c;
  ASSERT_TRUE(Connect(ts, &c).ok());
  RequestId ids[3];
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(c.channel().Submit(wire::Op::kPing, "", &ids[i]).ok());
  }
  ts.server->Stop();

  // Every outstanding id resolves — to its response if the server got
  // it out before stopping, otherwise to the breaking status. Nothing
  // hangs, nothing is reported twice.
  for (int i = 0; i < 3; ++i) {
    Status s = c.channel().Await(ids[i], nullptr);
    if (!s.ok()) {
      EXPECT_TRUE(s.IsIOError() || s.IsCorruption()) << s.ToString();
    }
  }
  EXPECT_EQ(c.channel().in_flight(), 0u);
  // The channel is dead: new traffic fails, consumed ids are unknown.
  EXPECT_FALSE(c.Ping().ok());
  EXPECT_TRUE(c.channel().Await(ids[0], nullptr).IsInvalidArgument());
}

// --- blocking facade over the pipelined core -------------------------------

TEST(ClientPipeline, BlockingCallComposesWithOutstandingPipeline) {
  TestServer ts;
  ASSERT_TRUE(ts.Start().ok());
  LoadTable(ts, 4);

  Client c;
  ASSERT_TRUE(Connect(ts, &c).ok());
  RequestId rid;
  ASSERT_TRUE(c.SubmitRead("t", 2, ~0ull, &rid).ok());
  // A blocking call while the read is outstanding awaits its own id
  // and parks the read's response for later.
  EXPECT_TRUE(c.Ping().ok());
  std::vector<Value> row;
  ASSERT_TRUE(c.AwaitRead(rid, &row).ok());
  EXPECT_EQ(row[0], 2u);
}

TEST(ClientPipeline, TypedSubmitAwaitRoundTrip) {
  TestServer ts;
  ASSERT_TRUE(ts.Start().ok());
  LoadTable(ts, 8);

  Client c;
  ASSERT_TRUE(Connect(ts, &c).ok());

  // Pipelined insert + update + delete, acked via the generic Await.
  RequestId ins, upd, del;
  ASSERT_TRUE(c.SubmitInsert("t", {100, 101, 102}, &ins).ok());
  ASSERT_TRUE(c.SubmitUpdate("t", 0, 0b010, {0, 77, 0}, &upd).ok());
  ASSERT_TRUE(c.SubmitDelete("t", 7, &del).ok());
  EXPECT_TRUE(c.Await(ins).ok());
  EXPECT_TRUE(c.Await(upd).ok());
  EXPECT_TRUE(c.Await(del).ok());

  // Pipelined multiread sees all three effects at once.
  RequestId mr;
  std::vector<std::vector<Value>> rows;
  std::vector<Status> statuses;
  ASSERT_TRUE(c.SubmitMultiRead("t", {100, 0, 7}, ~0ull, &mr).ok());
  // The frame is OK; per-key outcomes arrive in `statuses` (key 7 was
  // deleted above, so its row is empty and its status NotFound).
  ASSERT_TRUE(c.AwaitMultiRead(mr, 3, &rows, &statuses).ok());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][1], 101u);
  EXPECT_EQ(rows[1][1], 77u);
  EXPECT_TRUE(rows[2].empty());
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_TRUE(statuses[2].IsNotFound());

  // Pipelined aggregate: SUM(a) via the wire query path.
  RequestId q;
  Client::QuerySpec spec;
  ASSERT_TRUE(c.SubmitQuery("t", wire::QueryKind::kCount, 0, spec, &q).ok());
  uint64_t count = 0;
  ASSERT_TRUE(c.AwaitAggregate(q, &count).ok());
  EXPECT_EQ(count, 8u);  // 8 loaded - 1 deleted + 1 inserted
}

}  // namespace
}  // namespace lstore
