// Logging & recovery tests (Section 5.1.3): redo-only log for tail
// pages, commit/abort outcomes, torn-tail handling, indirection
// rebuild, and merge idempotence after recovery.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/table.h"
#include "log/redo_log.h"

namespace lstore {
namespace {

std::string TempLogPath(const char* name) {
  return std::string(::testing::TempDir()) + "lstore_" + name + ".log";
}

TableConfig LogConfig(const std::string& path) {
  TableConfig cfg;
  cfg.range_size = 32;
  cfg.insert_range_size = 32;
  cfg.tail_page_slots = 8;
  cfg.enable_merge_thread = false;
  cfg.enable_logging = true;
  cfg.log_path = path;
  return cfg;
}

TEST(RedoLogTest, PayloadRoundTrip) {
  LogRecord rec;
  rec.type = LogRecordType::kTailAppend;
  rec.txn_id = kTxnIdTag | 42;
  rec.range_id = 3;
  rec.seq = 17;
  rec.base_slot = 9;
  rec.backptr = 16;
  rec.schema_encoding = 0b0110 | kSnapshotFlag;
  rec.start_raw = 12345;
  rec.mask = 0b0110;
  rec.values = {111, 222};
  std::string payload;
  RedoLog::EncodePayload(rec, &payload);
  LogRecord out;
  ASSERT_TRUE(RedoLog::DecodePayload(payload.data(), payload.size(), &out));
  EXPECT_EQ(out.txn_id, rec.txn_id);
  EXPECT_EQ(out.seq, rec.seq);
  EXPECT_EQ(out.backptr, rec.backptr);
  EXPECT_EQ(out.schema_encoding, rec.schema_encoding);
  EXPECT_EQ(out.start_raw, rec.start_raw);
  EXPECT_EQ(out.values, rec.values);
}

TEST(RedoLogTest, ReplayStopsAtTornTail) {
  std::string path = TempLogPath("torn");
  {
    RedoLog log;
    ASSERT_TRUE(log.Open(path, true).ok());
    for (int i = 0; i < 5; ++i) {
      LogRecord rec;
      rec.type = LogRecordType::kCommit;
      rec.txn_id = kTxnIdTag | (100 + i);
      rec.commit_time = 100 + i;
      log.Append(rec);
    }
    ASSERT_TRUE(log.Flush(false).ok());
  }
  // Truncate mid-frame to simulate a crash during a write.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    std::fseek(f, 0, SEEK_END);
    long sz = std::ftell(f);
    ASSERT_EQ(0, ::truncate(path.c_str(), sz - 3));
    std::fclose(f);
  }
  int count = 0;
  ASSERT_TRUE(RedoLog::Replay(path, [&](const LogRecord&) { ++count; }).ok());
  EXPECT_EQ(count, 4);  // last frame torn, first four intact
  std::remove(path.c_str());
}

TEST(RedoLogTest, ReplayStopsAtCorruptChecksum) {
  std::string path = TempLogPath("corrupt");
  {
    RedoLog log;
    ASSERT_TRUE(log.Open(path, true).ok());
    for (int i = 0; i < 3; ++i) {
      LogRecord rec;
      rec.type = LogRecordType::kAbort;
      rec.txn_id = kTxnIdTag | (7 + i);
      log.Append(rec);
    }
    ASSERT_TRUE(log.Flush(false).ok());
  }
  {
    // Flip a byte in the middle of the file (second record's payload).
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    std::fseek(f, 0, SEEK_END);
    long sz = std::ftell(f);
    std::fseek(f, sz / 2, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, sz / 2, SEEK_SET);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  int count = 0;
  ASSERT_TRUE(RedoLog::Replay(path, [&](const LogRecord&) { ++count; }).ok());
  EXPECT_LT(count, 3);
  std::remove(path.c_str());
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempLogPath(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(RecoveryTest, CommittedDataSurvivesRestart) {
  {
    Table table("t", Schema(3), LogConfig(path_));
    Txn txn = table.Begin();
    for (Value k = 0; k < 10; ++k) {
      ASSERT_TRUE(table.Insert(txn, {k, k * 2, k * 3}).ok());
    }
    ASSERT_TRUE(txn.Commit().ok());
    Txn u = table.Begin();
    ASSERT_TRUE(table.Update(u, 4, 0b010, {0, 999, 0}).ok());
    ASSERT_TRUE(u.Commit().ok());
    // Destructor closes the log; the "crash" discards all memory.
  }
  Table table("t", Schema(3), LogConfig(path_));
  ASSERT_TRUE(table.RecoverFromLog().ok());
  Txn r = table.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table.Read(r, 4, 0b111, &out).ok());
  EXPECT_EQ(out, (std::vector<Value>{4, 999, 12}));
  ASSERT_TRUE(table.Read(r, 7, 0b111, &out).ok());
  EXPECT_EQ(out, (std::vector<Value>{7, 14, 21}));
  (void)r.Commit();
}

TEST_F(RecoveryTest, UncommittedTransactionRolledBackOnRecovery) {
  {
    Table table("t", Schema(3), LogConfig(path_));
    Txn setup = table.Begin();
    ASSERT_TRUE(table.Insert(setup, {1, 10, 20}).ok());
    ASSERT_TRUE(setup.Commit().ok());
    // In-flight transaction: tail records logged, no commit record.
    Txn open = table.Begin();
    ASSERT_TRUE(table.Update(open, 1, 0b010, {0, 777, 0}).ok());
    ASSERT_TRUE(table.Insert(open, {2, 30, 40}).ok());
    // Force the appends to disk without committing.
    // (Flush happens on commit normally; simulate via a committed
    // no-op transaction that triggers the group-commit flush.)
    Txn noop = table.Begin();
    ASSERT_TRUE(noop.Commit().ok());
  }
  Table table("t", Schema(3), LogConfig(path_));
  ASSERT_TRUE(table.RecoverFromLog().ok());
  Txn r = table.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table.Read(r, 1, 0b010, &out).ok());
  EXPECT_EQ(out[1], 10u);  // uncommitted update rolled back
  EXPECT_TRUE(table.Read(r, 2, 0b111, &out).IsNotFound());
  (void)r.Commit();
}

TEST_F(RecoveryTest, AbortRecordHonoredOnRecovery) {
  {
    Table table("t", Schema(3), LogConfig(path_));
    Txn setup = table.Begin();
    ASSERT_TRUE(table.Insert(setup, {1, 10, 20}).ok());
    ASSERT_TRUE(setup.Commit().ok());
    Txn bad = table.Begin();
    ASSERT_TRUE(table.Update(bad, 1, 0b010, {0, 666, 0}).ok());
    bad.Abort();
    Txn good = table.Begin();
    ASSERT_TRUE(table.Update(good, 1, 0b010, {0, 42, 0}).ok());
    ASSERT_TRUE(good.Commit().ok());
  }
  Table table("t", Schema(3), LogConfig(path_));
  ASSERT_TRUE(table.RecoverFromLog().ok());
  Txn r = table.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table.Read(r, 1, 0b010, &out).ok());
  EXPECT_EQ(out[1], 42u);
  (void)r.Commit();
}

TEST_F(RecoveryTest, RecoveredTableAcceptsNewTransactions) {
  {
    Table table("t", Schema(3), LogConfig(path_));
    Txn txn = table.Begin();
    ASSERT_TRUE(table.Insert(txn, {1, 10, 20}).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  Table table("t", Schema(3), LogConfig(path_));
  ASSERT_TRUE(table.RecoverFromLog().ok());
  // The clock resumed beyond replayed times: new updates win.
  Txn u = table.Begin();
  ASSERT_TRUE(table.Update(u, 1, 0b010, {0, 11, 0}).ok());
  ASSERT_TRUE(u.Commit().ok());
  Txn n = table.Begin();
  ASSERT_TRUE(table.Insert(n, {2, 20, 30}).ok());
  ASSERT_TRUE(n.Commit().ok());
  Txn r = table.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table.Read(r, 1, 0b010, &out).ok());
  EXPECT_EQ(out[1], 11u);
  (void)r.Commit();
}

TEST_F(RecoveryTest, DoubleRecoveryIsIdempotent) {
  {
    Table table("t", Schema(3), LogConfig(path_));
    Txn txn = table.Begin();
    for (Value k = 0; k < 5; ++k) {
      ASSERT_TRUE(table.Insert(txn, {k, k, k}).ok());
    }
    ASSERT_TRUE(txn.Commit().ok());
  }
  for (int round = 0; round < 2; ++round) {
    Table table("t", Schema(3), LogConfig(path_));
    ASSERT_TRUE(table.RecoverFromLog().ok());
    EXPECT_EQ(table.num_rows(), 5u);
    Txn r = table.Begin();
    std::vector<Value> out;
    ASSERT_TRUE(table.Read(r, 3, 0b010, &out).ok());
    EXPECT_EQ(out[1], 3u);
    (void)r.Commit();
  }
}

TEST_F(RecoveryTest, MergeAfterRecoveryIsConsistent) {
  // "The merge process is idempotent ... If crash occurs during the
  // merge, simply the partial merge results can be ignored and the
  // merge can be restarted." Merges are not logged; after recovery the
  // merge re-runs from TPS 0 and must produce the same visible state.
  {
    Table table("t", Schema(3), LogConfig(path_));
    Txn txn = table.Begin();
    for (Value k = 0; k < 32; ++k) {
      ASSERT_TRUE(table.Insert(txn, {k, k, k}).ok());
    }
    ASSERT_TRUE(txn.Commit().ok());
    for (Value k = 0; k < 32; ++k) {
      Txn u = table.Begin();
      ASSERT_TRUE(table.Update(u, k, 0b010, {0, k + 1000, 0}).ok());
      ASSERT_TRUE(u.Commit().ok());
    }
    table.FlushAll();  // merge ran before the crash
  }
  Table table("t", Schema(3), LogConfig(path_));
  ASSERT_TRUE(table.RecoverFromLog().ok());
  table.FlushAll();  // restart the merge from scratch
  for (Value k = 0; k < 32; ++k) {
    Txn r = table.Begin();
    std::vector<Value> out;
    ASSERT_TRUE(table.Read(r, k, 0b010, &out).ok());
    EXPECT_EQ(out[1], k + 1000);
    (void)r.Commit();
  }
}

// An abort record may FOLLOW a commit record of the same transaction:
// the pipeline appends per-table commit records first and aborts if a
// later step fails. Recovery must honor the abort — replaying such a
// log as committed would resurrect writes the live process tombstoned.
TEST(RecoveryOutcomeTest, AbortRecordAfterCommitRecordWins) {
  std::string path = TempLogPath("abort_after_commit");
  std::remove(path.c_str());
  const TxnId txn_id = kTxnIdTag | 77;
  {
    RedoLog log;
    ASSERT_TRUE(log.Open(path, /*truncate=*/true).ok());
    LogRecord ins;
    ins.type = LogRecordType::kInsertAppend;
    ins.txn_id = txn_id;
    ins.range_id = 0;
    ins.seq = 1;
    ins.base_slot = 0;
    ins.backptr = 0;
    ins.schema_encoding = 0;
    ins.start_raw = txn_id;
    ins.mask = 0b111;
    ins.values = {5, 50, 500};
    log.Append(ins);
    LogRecord commit;
    commit.type = LogRecordType::kCommit;
    commit.txn_id = txn_id;
    commit.commit_time = 99;
    log.Append(commit);
    LogRecord abort;
    abort.type = LogRecordType::kAbort;
    abort.txn_id = txn_id;
    log.Append(abort);
    ASSERT_TRUE(log.Flush(true).ok());
  }
  Table table("t", Schema(3), LogConfig(path));
  ASSERT_TRUE(table.RecoverFromLog().ok());
  Txn r = table.Begin();
  std::vector<Value> out;
  EXPECT_TRUE(table.Read(r, 5, 0b111, &out).IsNotFound());
  std::remove(path.c_str());
}

// --- truncation under load -------------------------------------------------

// Commits proceed while TruncateTo rewrites the log: the mutex-held
// window is O(appends since the scan), so appends interleave with the
// rewrite and every record beyond the watermark must survive with its
// LSN intact.
TEST(RedoLogTruncateTest, CommitsConcurrentWithTruncation) {
  std::string path = TempLogPath("concurrent_truncate");
  std::remove(path.c_str());
  RedoLog log;
  ASSERT_TRUE(log.Open(path, /*truncate=*/true).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> appended{0};
  std::thread committer([&] {
    while (!stop.load()) {
      LogRecord rec;
      rec.type = LogRecordType::kCommit;
      rec.txn_id = kTxnIdTag | (appended.load() + 1);
      rec.commit_time = appended.load() + 1;
      log.Append(rec);
      ASSERT_TRUE(log.Flush(false).ok());
      appended.fetch_add(1);
    }
  });

  // Interleave several truncations with the append stream.
  uint64_t last_watermark = 0;
  for (int i = 0; i < 20; ++i) {
    while (appended.load() < static_cast<uint64_t>(i + 1) * 20) {
      std::this_thread::yield();
    }
    last_watermark = log.last_lsn() / 2;
    ASSERT_TRUE(log.TruncateTo(last_watermark).ok());
  }
  stop = true;
  committer.join();
  ASSERT_TRUE(log.Flush(false).ok());
  uint64_t total = appended.load();
  log.Close();

  // Replay: LSNs are contiguous from the final truncation point and
  // every record beyond it survived (commit_time encodes the append
  // index, so continuity proves no loss and no duplication).
  uint64_t prev_lsn = 0, first_lsn = 0, records = 0;
  RedoLog::ReplayStats stats;
  ASSERT_TRUE(RedoLog::Replay(
                  path,
                  [&](const LogRecord& rec, uint64_t lsn) {
                    if (records == 0) {
                      first_lsn = lsn;
                    } else {
                      EXPECT_EQ(lsn, prev_lsn + 1);
                    }
                    EXPECT_EQ(rec.commit_time, lsn);  // append i == LSN i
                    prev_lsn = lsn;
                    ++records;
                  },
                  &stats)
                  .ok());
  EXPECT_TRUE(stats.clean_end);
  EXPECT_GT(records, 0u);
  EXPECT_GT(first_lsn, last_watermark);  // prefix actually dropped
  EXPECT_EQ(prev_lsn, total);            // tail fully retained
}

// A batch frame straddling the watermark is retained whole; the
// truncation point's base LSN backs up so the numbering of the
// surviving records does not shift.
TEST(RedoLogTruncateTest, BatchFrameStraddlingWatermarkKeepsLsns) {
  std::string path = TempLogPath("batch_straddle");
  std::remove(path.c_str());
  RedoLog log;
  ASSERT_TRUE(log.Open(path, /*truncate=*/true).ok());
  std::vector<LogRecord> batch;
  for (int i = 0; i < 10; ++i) {
    LogRecord rec;
    rec.type = LogRecordType::kCommit;
    rec.txn_id = kTxnIdTag | (i + 1);
    rec.commit_time = i + 1;  // record i+1 carries its own LSN
    batch.push_back(rec);
  }
  EXPECT_EQ(log.AppendBatch(batch), 10u);
  ASSERT_TRUE(log.Flush(false).ok());
  // Watermark falls INSIDE the batch: the whole frame must survive.
  ASSERT_TRUE(log.TruncateTo(5).ok());
  log.Close();
  uint64_t records = 0;
  std::vector<uint64_t> lsns;
  ASSERT_TRUE(RedoLog::Replay(
                  path,
                  [&](const LogRecord& rec, uint64_t lsn) {
                    EXPECT_EQ(rec.commit_time, lsn);  // numbering unshifted
                    lsns.push_back(lsn);
                    ++records;
                  },
                  nullptr)
                  .ok());
  EXPECT_EQ(records, 10u);  // retained whole; replay filters by LSN
  EXPECT_EQ(lsns.front(), 1u);
  EXPECT_EQ(lsns.back(), 10u);
}

}  // namespace
}  // namespace lstore
