// Logging & recovery tests (Section 5.1.3): redo-only log for tail
// pages, commit/abort outcomes, torn-tail handling, indirection
// rebuild, and merge idempotence after recovery.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "core/table.h"
#include "log/redo_log.h"

namespace lstore {
namespace {

std::string TempLogPath(const char* name) {
  return std::string(::testing::TempDir()) + "lstore_" + name + ".log";
}

TableConfig LogConfig(const std::string& path) {
  TableConfig cfg;
  cfg.range_size = 32;
  cfg.insert_range_size = 32;
  cfg.tail_page_slots = 8;
  cfg.enable_merge_thread = false;
  cfg.enable_logging = true;
  cfg.log_path = path;
  return cfg;
}

TEST(RedoLogTest, PayloadRoundTrip) {
  LogRecord rec;
  rec.type = LogRecordType::kTailAppend;
  rec.txn_id = kTxnIdTag | 42;
  rec.range_id = 3;
  rec.seq = 17;
  rec.base_slot = 9;
  rec.backptr = 16;
  rec.schema_encoding = 0b0110 | kSnapshotFlag;
  rec.start_raw = 12345;
  rec.mask = 0b0110;
  rec.values = {111, 222};
  std::string payload;
  RedoLog::EncodePayload(rec, &payload);
  LogRecord out;
  ASSERT_TRUE(RedoLog::DecodePayload(payload.data(), payload.size(), &out));
  EXPECT_EQ(out.txn_id, rec.txn_id);
  EXPECT_EQ(out.seq, rec.seq);
  EXPECT_EQ(out.backptr, rec.backptr);
  EXPECT_EQ(out.schema_encoding, rec.schema_encoding);
  EXPECT_EQ(out.start_raw, rec.start_raw);
  EXPECT_EQ(out.values, rec.values);
}

TEST(RedoLogTest, ReplayStopsAtTornTail) {
  std::string path = TempLogPath("torn");
  {
    RedoLog log;
    ASSERT_TRUE(log.Open(path, true).ok());
    for (int i = 0; i < 5; ++i) {
      LogRecord rec;
      rec.type = LogRecordType::kCommit;
      rec.txn_id = kTxnIdTag | (100 + i);
      rec.commit_time = 100 + i;
      log.Append(rec);
    }
    ASSERT_TRUE(log.Flush(false).ok());
  }
  // Truncate mid-frame to simulate a crash during a write.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    std::fseek(f, 0, SEEK_END);
    long sz = std::ftell(f);
    ASSERT_EQ(0, ::truncate(path.c_str(), sz - 3));
    std::fclose(f);
  }
  int count = 0;
  ASSERT_TRUE(RedoLog::Replay(path, [&](const LogRecord&) { ++count; }).ok());
  EXPECT_EQ(count, 4);  // last frame torn, first four intact
  std::remove(path.c_str());
}

TEST(RedoLogTest, ReplayStopsAtCorruptChecksum) {
  std::string path = TempLogPath("corrupt");
  {
    RedoLog log;
    ASSERT_TRUE(log.Open(path, true).ok());
    for (int i = 0; i < 3; ++i) {
      LogRecord rec;
      rec.type = LogRecordType::kAbort;
      rec.txn_id = kTxnIdTag | (7 + i);
      log.Append(rec);
    }
    ASSERT_TRUE(log.Flush(false).ok());
  }
  {
    // Flip a byte in the middle of the file (second record's payload).
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    std::fseek(f, 0, SEEK_END);
    long sz = std::ftell(f);
    std::fseek(f, sz / 2, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, sz / 2, SEEK_SET);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  int count = 0;
  ASSERT_TRUE(RedoLog::Replay(path, [&](const LogRecord&) { ++count; }).ok());
  EXPECT_LT(count, 3);
  std::remove(path.c_str());
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempLogPath(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(RecoveryTest, CommittedDataSurvivesRestart) {
  {
    Table table("t", Schema(3), LogConfig(path_));
    Transaction txn = table.Begin();
    for (Value k = 0; k < 10; ++k) {
      ASSERT_TRUE(table.Insert(&txn, {k, k * 2, k * 3}).ok());
    }
    ASSERT_TRUE(table.Commit(&txn).ok());
    Transaction u = table.Begin();
    ASSERT_TRUE(table.Update(&u, 4, 0b010, {0, 999, 0}).ok());
    ASSERT_TRUE(table.Commit(&u).ok());
    // Destructor closes the log; the "crash" discards all memory.
  }
  Table table("t", Schema(3), LogConfig(path_));
  ASSERT_TRUE(table.RecoverFromLog().ok());
  Transaction r = table.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table.Read(&r, 4, 0b111, &out).ok());
  EXPECT_EQ(out, (std::vector<Value>{4, 999, 12}));
  ASSERT_TRUE(table.Read(&r, 7, 0b111, &out).ok());
  EXPECT_EQ(out, (std::vector<Value>{7, 14, 21}));
  (void)table.Commit(&r);
}

TEST_F(RecoveryTest, UncommittedTransactionRolledBackOnRecovery) {
  {
    Table table("t", Schema(3), LogConfig(path_));
    Transaction setup = table.Begin();
    ASSERT_TRUE(table.Insert(&setup, {1, 10, 20}).ok());
    ASSERT_TRUE(table.Commit(&setup).ok());
    // In-flight transaction: tail records logged, no commit record.
    Transaction open = table.Begin();
    ASSERT_TRUE(table.Update(&open, 1, 0b010, {0, 777, 0}).ok());
    ASSERT_TRUE(table.Insert(&open, {2, 30, 40}).ok());
    // Force the appends to disk without committing.
    // (Flush happens on commit normally; simulate via a committed
    // no-op transaction that triggers the group-commit flush.)
    Transaction noop = table.Begin();
    ASSERT_TRUE(table.Commit(&noop).ok());
  }
  Table table("t", Schema(3), LogConfig(path_));
  ASSERT_TRUE(table.RecoverFromLog().ok());
  Transaction r = table.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table.Read(&r, 1, 0b010, &out).ok());
  EXPECT_EQ(out[1], 10u);  // uncommitted update rolled back
  EXPECT_TRUE(table.Read(&r, 2, 0b111, &out).IsNotFound());
  (void)table.Commit(&r);
}

TEST_F(RecoveryTest, AbortRecordHonoredOnRecovery) {
  {
    Table table("t", Schema(3), LogConfig(path_));
    Transaction setup = table.Begin();
    ASSERT_TRUE(table.Insert(&setup, {1, 10, 20}).ok());
    ASSERT_TRUE(table.Commit(&setup).ok());
    Transaction bad = table.Begin();
    ASSERT_TRUE(table.Update(&bad, 1, 0b010, {0, 666, 0}).ok());
    table.Abort(&bad);
    Transaction good = table.Begin();
    ASSERT_TRUE(table.Update(&good, 1, 0b010, {0, 42, 0}).ok());
    ASSERT_TRUE(table.Commit(&good).ok());
  }
  Table table("t", Schema(3), LogConfig(path_));
  ASSERT_TRUE(table.RecoverFromLog().ok());
  Transaction r = table.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table.Read(&r, 1, 0b010, &out).ok());
  EXPECT_EQ(out[1], 42u);
  (void)table.Commit(&r);
}

TEST_F(RecoveryTest, RecoveredTableAcceptsNewTransactions) {
  {
    Table table("t", Schema(3), LogConfig(path_));
    Transaction txn = table.Begin();
    ASSERT_TRUE(table.Insert(&txn, {1, 10, 20}).ok());
    ASSERT_TRUE(table.Commit(&txn).ok());
  }
  Table table("t", Schema(3), LogConfig(path_));
  ASSERT_TRUE(table.RecoverFromLog().ok());
  // The clock resumed beyond replayed times: new updates win.
  Transaction u = table.Begin();
  ASSERT_TRUE(table.Update(&u, 1, 0b010, {0, 11, 0}).ok());
  ASSERT_TRUE(table.Commit(&u).ok());
  Transaction n = table.Begin();
  ASSERT_TRUE(table.Insert(&n, {2, 20, 30}).ok());
  ASSERT_TRUE(table.Commit(&n).ok());
  Transaction r = table.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table.Read(&r, 1, 0b010, &out).ok());
  EXPECT_EQ(out[1], 11u);
  (void)table.Commit(&r);
}

TEST_F(RecoveryTest, DoubleRecoveryIsIdempotent) {
  {
    Table table("t", Schema(3), LogConfig(path_));
    Transaction txn = table.Begin();
    for (Value k = 0; k < 5; ++k) {
      ASSERT_TRUE(table.Insert(&txn, {k, k, k}).ok());
    }
    ASSERT_TRUE(table.Commit(&txn).ok());
  }
  for (int round = 0; round < 2; ++round) {
    Table table("t", Schema(3), LogConfig(path_));
    ASSERT_TRUE(table.RecoverFromLog().ok());
    EXPECT_EQ(table.num_rows(), 5u);
    Transaction r = table.Begin();
    std::vector<Value> out;
    ASSERT_TRUE(table.Read(&r, 3, 0b010, &out).ok());
    EXPECT_EQ(out[1], 3u);
    (void)table.Commit(&r);
  }
}

TEST_F(RecoveryTest, MergeAfterRecoveryIsConsistent) {
  // "The merge process is idempotent ... If crash occurs during the
  // merge, simply the partial merge results can be ignored and the
  // merge can be restarted." Merges are not logged; after recovery the
  // merge re-runs from TPS 0 and must produce the same visible state.
  {
    Table table("t", Schema(3), LogConfig(path_));
    Transaction txn = table.Begin();
    for (Value k = 0; k < 32; ++k) {
      ASSERT_TRUE(table.Insert(&txn, {k, k, k}).ok());
    }
    ASSERT_TRUE(table.Commit(&txn).ok());
    for (Value k = 0; k < 32; ++k) {
      Transaction u = table.Begin();
      ASSERT_TRUE(table.Update(&u, k, 0b010, {0, k + 1000, 0}).ok());
      ASSERT_TRUE(table.Commit(&u).ok());
    }
    table.FlushAll();  // merge ran before the crash
  }
  Table table("t", Schema(3), LogConfig(path_));
  ASSERT_TRUE(table.RecoverFromLog().ok());
  table.FlushAll();  // restart the merge from scratch
  for (Value k = 0; k < 32; ++k) {
    Transaction r = table.Begin();
    std::vector<Value> out;
    ASSERT_TRUE(table.Read(&r, k, 0b010, &out).ok());
    EXPECT_EQ(out[1], k + 1000);
    (void)table.Commit(&r);
  }
}

}  // namespace
}  // namespace lstore
