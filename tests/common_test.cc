// Unit tests for the common runtime: Status, type encodings, the
// logical clock, bit utilities, latches, and random generators.

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/bitutil.h"
#include "common/clock.h"
#include "common/latch.h"
#include "common/random.h"
#include "common/status.h"
#include "common/types.h"

namespace lstore {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, AllConstructorsMapToPredicates) {
  EXPECT_TRUE(Status::AlreadyExists().IsAlreadyExists());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::IOError().IsIOError());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::Busy().IsBusy());
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto inner = []() { return Status::Aborted("inner"); };
  auto outer = [&]() -> Status {
    LSTORE_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsAborted());
}

TEST(TypesTest, TailRidRoundTrip) {
  Rid rid = MakeTailRid(12345, 678);
  EXPECT_TRUE(IsTailRid(rid));
  EXPECT_EQ(TailRidRange(rid), 12345u);
  EXPECT_EQ(TailRidSeq(rid), 678u);
}

TEST(TypesTest, BaseRidsAreNotTailRids) {
  EXPECT_FALSE(IsTailRid(0));
  EXPECT_FALSE(IsTailRid(123456789));
}

TEST(TypesTest, TxnIdTaggingDistinguishesTimes) {
  TxnId id = kTxnIdTag | 42;
  EXPECT_TRUE(IsTxnId(id));
  EXPECT_FALSE(IsTxnId(42));
  EXPECT_FALSE(IsTxnId(kAbortedStamp));
  EXPECT_TRUE(IsAbortedStamp(kAbortedStamp));
}

TEST(TypesTest, IndirectionLatchBit) {
  uint64_t v = 99;
  EXPECT_FALSE(IndirLatched(v));
  EXPECT_TRUE(IndirLatched(v | kIndirLatchBit));
  EXPECT_EQ(IndirSeq(v | kIndirLatchBit), 99u);
}

TEST(TypesTest, SchemaEncodingFlags) {
  uint64_t enc = 0b0101 | kSnapshotFlag;
  EXPECT_TRUE(IsSnapshotRecord(enc));
  EXPECT_FALSE(IsDeleteRecord(enc));
  EXPECT_EQ(SchemaColumns(enc), 0b0101u);
  EXPECT_TRUE(IsDeleteRecord(kDeleteFlag));
}

TEST(ClockTest, TickIsStrictlyMonotone) {
  LogicalClock clock;
  Timestamp a = clock.Tick();
  Timestamp b = clock.Tick();
  EXPECT_LT(a, b);
  EXPECT_EQ(clock.Now(), b);
}

TEST(ClockTest, AdvanceToNeverMovesBackwards) {
  LogicalClock clock;
  clock.AdvanceTo(100);
  EXPECT_EQ(clock.Now(), 100u);
  clock.AdvanceTo(50);
  EXPECT_EQ(clock.Now(), 100u);
}

TEST(ClockTest, ConcurrentTicksAreUnique) {
  LogicalClock clock;
  constexpr int kThreads = 4, kTicks = 2000;
  std::vector<std::vector<Timestamp>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kTicks; ++i) seen[t].push_back(clock.Tick());
    });
  }
  for (auto& th : threads) th.join();
  std::set<Timestamp> all;
  for (auto& v : seen) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kTicks));
}

TEST(BitUtilTest, PopCountAndBitsNeeded) {
  EXPECT_EQ(PopCount(0), 0);
  EXPECT_EQ(PopCount(0b1011), 3);
  EXPECT_EQ(BitsNeeded(0), 0);
  EXPECT_EQ(BitsNeeded(1), 1);
  EXPECT_EQ(BitsNeeded(255), 8);
  EXPECT_EQ(BitsNeeded(256), 9);
}

TEST(BitUtilTest, BitIterVisitsAllSetBits) {
  uint64_t mask = (1ull << 3) | (1ull << 17) | (1ull << 63);
  std::vector<int> bits;
  for (BitIter it(mask); it; ++it) bits.push_back(*it);
  EXPECT_EQ(bits, (std::vector<int>{3, 17, 63}));
}

TEST(BitUtilTest, ZigzagRoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{12345},
                    int64_t{-987654321}, INT64_MAX, INT64_MIN}) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
  // Small magnitudes map to small codes (what makes varints compact).
  EXPECT_LE(ZigzagEncode(-3), 6u);
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, ZipfianSkewsTowardSmallKeys) {
  ZipfianGenerator zipf(1000, 0.99, 3);
  uint64_t low = 0, total = 20000;
  for (uint64_t i = 0; i < total; ++i) {
    if (zipf.Next() < 100) ++low;  // first 10% of the key space
  }
  // Under uniform, low/total ~ 10%; Zipf 0.99 concentrates far more.
  EXPECT_GT(low, total / 3);
}

TEST(SpinLatchTest, MutualExclusionUnderContention) {
  SpinLatch latch;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        SpinGuard g(latch);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 80000);
}

TEST(RWSpinLatchTest, SharedReadersDoNotBlockEachOther) {
  RWSpinLatch latch;
  latch.LockShared();
  EXPECT_TRUE(true);  // second shared acquire must not deadlock:
  latch.LockShared();
  latch.UnlockShared();
  latch.UnlockShared();
}

TEST(RWSpinLatchTest, ExclusiveExcludesReadersAndWriters) {
  RWSpinLatch latch;
  std::atomic<int> in_critical{0};
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        latch.LockExclusive();
        if (in_critical.fetch_add(1) != 0) ok = false;
        in_critical.fetch_sub(1);
        latch.UnlockExclusive();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(ok.load());
}

}  // namespace
}  // namespace lstore
