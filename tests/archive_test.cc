// Log archiving + point-in-time recovery (src/archive/).
//
// The heart of the suite is an oracle schedule: a mixed single- and
// cross-table workload that records, after EVERY commit, the point's
// timestamp and the full expected state of both tables. Each recorded
// point is then restored with Database::RestoreToPoint and compared
// exactly — across multiple checkpoint/truncation cycles, merges, and
// crash-shaped archive states. Fault injection covers torn archive
// segments (clean Corruption, never silent loss), stale seal temps,
// crash-between-seal-and-truncate overlaps, and retention eviction
// (points behind the floor fail cleanly; everything at or after the
// floor stays exactly restorable).

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "archive/archive_manager.h"
#include "checkpoint/checkpoint_manager.h"
#include "core/database.h"
#include "core/table.h"
#include "log/commit_log.h"
#include "log/framed_log.h"
#include "log/redo_log.h"

namespace lstore {
namespace {

namespace fs = std::filesystem;

using TableState = std::map<Value, std::vector<Value>>;

class ArchiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::string(::testing::TempDir()) + "lstore_arc_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    fs::remove_all(dir_);
    fs::remove_all(dir_ + "_crash");
  }

  static TableConfig SmallConfig() {
    TableConfig cfg;
    cfg.range_size = 32;
    cfg.insert_range_size = 32;
    cfg.tail_page_slots = 8;
    cfg.merge_threshold = 1u << 20;  // manual merges only
    cfg.enable_merge_thread = false;
    return cfg;
  }

  static DurabilityOptions ArchiveOpts() {
    DurabilityOptions opts;
    opts.archive_enabled = true;
    return opts;
  }

  static TableState Snapshot(Table* t, const std::vector<Value>& keys,
                             Timestamp as_of) {
    TableState s;
    ColumnMask all = (1u << t->schema().num_columns()) - 1;
    for (Value k : keys) {
      std::vector<Value> row;
      if (t->ReadAsOf(k, as_of, all, &row).ok()) s[k] = row;
    }
    return s;
  }

  struct OraclePoint {
    Timestamp t = 0;          ///< restore point (inclusive commit time)
    uint64_t commit_lsn = 0;  ///< commit-log LSN when the op was cross-table
    TableState a, b;
  };

  struct Oracle {
    std::vector<OraclePoint> points;
    std::vector<Value> keys_a, keys_b;
  };

  /// Run `nops` mixed operations against tables A (k,v1,v2) and
  /// B (k,v), checkpointing every `ckpt_every` ops, recording an
  /// oracle point after every commit. Keys 100..104 / 200..204 are the
  /// cross-table pool (each cross txn writes the SAME value to
  /// A.v2 and B.v of a paired key — a split transaction breaks the
  /// pairing). Appends to `oracle` so the schedule can resume after a
  /// simulated crash.
  void RunSchedule(Database* db, Oracle* oracle, int nops, int ckpt_every,
                   uint32_t seed) {
    Table* a = db->GetTable("A");
    Table* b = db->GetTable("B");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    std::mt19937 rng(seed);
    if (oracle->keys_a.empty()) {
      for (Value j = 0; j < 5; ++j) {
        Txn txn = db->Begin();
        ASSERT_TRUE(a->Insert(txn, {100 + j, 0, 0}).ok());
        ASSERT_TRUE(b->Insert(txn, {200 + j, 0}).ok());
        ASSERT_TRUE(txn.Commit().ok());
        oracle->keys_a.push_back(100 + j);
        oracle->keys_b.push_back(200 + j);
        Record(db, oracle, 0);
      }
    }
    Value next_a = 1000 + static_cast<Value>(oracle->points.size());
    Value next_b = 2000 + static_cast<Value>(oracle->points.size());
    for (int i = 0; i < nops; ++i) {
      int op = static_cast<int>(rng() % 5);
      uint64_t cross_lsn = 0;
      Txn txn = db->Begin();
      switch (op) {
        case 0: {  // insert into A
          ASSERT_TRUE(a->Insert(txn, {next_a, rng() % 97, 0}).ok());
          oracle->keys_a.push_back(next_a++);
          break;
        }
        case 1: {  // update a random A key's v1
          Value k = oracle->keys_a[rng() % oracle->keys_a.size()];
          (void)a->Update(txn, k, 0b010, {0, rng() % 997, 0});
          break;
        }
        case 2: {  // delete a non-pool A key, if any exists
          if (oracle->keys_a.size() > 5) {
            Value k = oracle->keys_a[5 + rng() % (oracle->keys_a.size() - 5)];
            (void)a->Delete(txn, k);
          } else {
            Value k = oracle->keys_a[rng() % oracle->keys_a.size()];
            (void)a->Update(txn, k, 0b010, {0, rng() % 997, 0});
          }
          break;
        }
        case 3: {  // B traffic — pool keys stay exclusive to cross txns
          if (oracle->keys_b.size() < 8 || rng() % 3 == 0) {
            ASSERT_TRUE(b->Insert(txn, {next_b, rng() % 97}).ok());
            oracle->keys_b.push_back(next_b++);
          } else {
            Value k =
                oracle->keys_b[5 + rng() % (oracle->keys_b.size() - 5)];
            (void)b->Update(txn, k, 0b10, {0, rng() % 997});
          }
          break;
        }
        case 4: {  // cross-table: same value to a paired key of A and B
          Value j = rng() % 5;
          Value v = 10000 + static_cast<Value>(oracle->points.size());
          ASSERT_TRUE(a->Update(txn, 100 + j, 0b100, {0, 0, v}).ok());
          ASSERT_TRUE(b->Update(txn, 200 + j, 0b10, {0, v}).ok());
          break;
        }
      }
      Status cs = txn.Commit();
      ASSERT_TRUE(cs.ok()) << cs.ToString();
      if (op == 4 && db->commit_log() != nullptr) {
        cross_lsn = db->commit_log()->last_lsn();
      }
      Record(db, oracle, cross_lsn);
      if (i % 9 == 5) {
        a->FlushAll();  // merges: base segments + lineage move
        b->FlushAll();
      }
      if (ckpt_every > 0 && (i + 1) % ckpt_every == 0) {
        ASSERT_TRUE(db->Checkpoint().ok());
      }
    }
  }

  void Record(Database* db, Oracle* oracle, uint64_t cross_lsn) {
    OraclePoint p;
    // db->Now() = clock + 1 (covers every commit); the point itself is
    // the newest commit time, so restore-inclusive matches the
    // snapshot read at as_of = t + 1.
    p.t = db->Now() - 1;
    p.commit_lsn = cross_lsn;
    p.a = Snapshot(db->GetTable("A"), oracle->keys_a, p.t + 1);
    p.b = Snapshot(db->GetTable("B"), oracle->keys_b, p.t + 1);
    oracle->points.push_back(std::move(p));
  }

  void OpenWithTables(const DurabilityOptions& opts,
                      std::unique_ptr<Database>* db) {
    ASSERT_TRUE(Database::Open(dir_, opts, db).ok());
    if ((*db)->GetTable("A") == nullptr) {
      ASSERT_TRUE(
          (*db)->CreateTable("A", Schema({"k", "v1", "v2"}), SmallConfig())
              .ok());
      ASSERT_TRUE(
          (*db)->CreateTable("B", Schema({"k", "v"}), SmallConfig()).ok());
    }
  }

  /// Restore `point` and compare both tables exactly; also check the
  /// cross-table pairing invariant.
  void VerifyPoint(const OraclePoint& p, const Oracle& oracle) {
    std::unique_ptr<Database> rdb;
    Status s = Database::RestoreToPoint(dir_, RestorePoint::AtTime(p.t), &rdb);
    ASSERT_TRUE(s.ok()) << "restore to " << p.t << ": " << s.ToString();
    TableState ra =
        Snapshot(rdb->GetTable("A"), oracle.keys_a, p.t + 1);
    TableState rb =
        Snapshot(rdb->GetTable("B"), oracle.keys_b, p.t + 1);
    EXPECT_EQ(ra, p.a) << "table A diverged at point " << p.t;
    EXPECT_EQ(rb, p.b) << "table B diverged at point " << p.t;
    // No split transactions: every cross-table write pairs A.v2 with
    // B.v — and the restored database's own Now() must already sit at
    // the point (default reads need no explicit as_of).
    TableState na = Snapshot(rdb->GetTable("A"), oracle.keys_a,
                             rdb->GetTable("A")->Now());
    for (Value j = 0; j < 5; ++j) {
      auto ia = na.find(100 + j);
      auto ib = rb.find(200 + j);
      if (ia != na.end() && ib != rb.end()) {
        EXPECT_EQ(ia->second[2], ib->second[1])
            << "split cross-table txn at point " << p.t << " pair " << j;
      }
    }
  }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// The oracle: restore to EVERY recorded commit point
// ---------------------------------------------------------------------------

TEST_F(ArchiveTest, RestoreToEveryCommitPointMatchesOracle) {
  Oracle oracle;
  {
    std::unique_ptr<Database> db;
    OpenWithTables(ArchiveOpts(), &db);
    RunSchedule(db.get(), &oracle, 60, 12, /*seed=*/7);
    // >= 2 checkpoint/truncation cycles with sealed segments.
    ASSERT_GE(ArchiveManager::ListManifests(dir_).size(), 2u);
    ASSERT_FALSE(ArchiveManager::ListRedoSegments(dir_, "A").empty());
  }
  ASSERT_GT(oracle.points.size(), 60u);
  for (const OraclePoint& p : oracle.points) VerifyPoint(p, oracle);
}

TEST_F(ArchiveTest, RestoreSurvivesReopenBetweenCycles) {
  // Same oracle discipline, but the database is closed and reopened
  // (full restart recovery) between schedule segments — archived
  // state must compose across process lifetimes.
  Oracle oracle;
  for (uint32_t round = 0; round < 3; ++round) {
    std::unique_ptr<Database> db;
    OpenWithTables(ArchiveOpts(), &db);
    RunSchedule(db.get(), &oracle, 18, 8, /*seed=*/100 + round);
  }
  for (size_t i = 0; i < oracle.points.size(); i += 3) {
    VerifyPoint(oracle.points[i], oracle);
  }
  VerifyPoint(oracle.points.back(), oracle);
}

TEST_F(ArchiveTest, RestoreByCommitLsn) {
  Oracle oracle;
  {
    std::unique_ptr<Database> db;
    OpenWithTables(ArchiveOpts(), &db);
    RunSchedule(db.get(), &oracle, 40, 10, /*seed=*/21);
  }
  size_t checked = 0;
  for (const OraclePoint& p : oracle.points) {
    if (p.commit_lsn == 0) continue;
    std::unique_ptr<Database> rdb;
    ASSERT_TRUE(Database::RestoreToPoint(
                    dir_, RestorePoint::AtCommitLsn(p.commit_lsn), &rdb)
                    .ok());
    EXPECT_EQ(Snapshot(rdb->GetTable("A"), oracle.keys_a, p.t + 1), p.a);
    EXPECT_EQ(Snapshot(rdb->GetTable("B"), oracle.keys_b, p.t + 1), p.b);
    ++checked;
  }
  EXPECT_GT(checked, 3u);

  std::unique_ptr<Database> rdb;
  EXPECT_TRUE(Database::RestoreToPoint(dir_, RestorePoint::AtCommitLsn(1u << 20),
                                       &rdb)
                  .IsNotFound());
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

TEST_F(ArchiveTest, TornArchiveSegmentRejectedNeverSilentlyWrong) {
  Oracle oracle;
  {
    std::unique_ptr<Database> db;
    OpenWithTables(ArchiveOpts(), &db);
    RunSchedule(db.get(), &oracle, 40, 10, /*seed=*/3);
  }
  auto segs = ArchiveManager::ListRedoSegments(dir_, "A");
  ASSERT_FALSE(segs.empty());
  const std::string victim = segs.front().path;
  std::string original;
  {
    std::ifstream in(victim, std::ios::binary);
    original.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(original.size(), 16u);
  const OraclePoint& early = oracle.points[2];

  std::mt19937 rng(11);
  for (int trial = 0; trial < 6; ++trial) {
    size_t cut = 1 + rng() % (original.size() - 1);
    ASSERT_EQ(::truncate(victim.c_str(), static_cast<off_t>(cut)), 0);
    std::unique_ptr<Database> rdb;
    Status s =
        Database::RestoreToPoint(dir_, RestorePoint::AtTime(early.t), &rdb);
    // A truncated segment must surface as a clean error — it must
    // never restore with records silently missing.
    EXPECT_TRUE(s.IsCorruption()) << "cut=" << cut << " -> " << s.ToString();
  }
  // Bit flip mid-file: frame checksum catches it.
  {
    std::string corrupt = original;
    corrupt[corrupt.size() / 2] ^= 0x40;
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
  }
  {
    std::unique_ptr<Database> rdb;
    EXPECT_TRUE(
        Database::RestoreToPoint(dir_, RestorePoint::AtTime(early.t), &rdb)
            .IsCorruption());
  }
  // Restoring the original bytes heals the archive completely.
  {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out.write(original.data(), static_cast<std::streamsize>(original.size()));
  }
  VerifyPoint(early, oracle);
  // The newest point never needed the victim segment: restorable even
  // while the old segment was torn (checked last so the heal above
  // does not mask it).
  VerifyPoint(oracle.points.back(), oracle);
}

TEST_F(ArchiveTest, StaleSealTempSweptAtOpen) {
  {
    std::unique_ptr<Database> db;
    OpenWithTables(ArchiveOpts(), &db);
  }
  std::string stale = ArchiveManager::ArchiveDirOf(dir_) + "/A.redo.1-9.arc.tmp";
  {
    std::ofstream out(stale, std::ios::binary);
    out << "torn seal";
  }
  {
    std::unique_ptr<Database> db;
    OpenWithTables(ArchiveOpts(), &db);
  }
  EXPECT_FALSE(fs::exists(stale));
}

TEST_F(ArchiveTest, CrashBetweenSealAndTruncateReplaysIdempotently) {
  // Simulate the crash window where archive segments (and the
  // manifest copy) are durable but the live logs were never
  // truncated: snapshot the directory BEFORE a checkpoint, take the
  // checkpoint on the live tree, then overlay only the archive
  // artifacts onto the snapshot. The snapshot now holds sealed
  // prefixes AND full live logs — the overlap crash state.
  const std::string crash_dir = dir_ + "_crash";
  Oracle oracle;
  for (uint32_t seed = 40; seed < 43; ++seed) {
    fs::remove_all(dir_);
    fs::remove_all(crash_dir);
    oracle = Oracle{};
    {
      std::unique_ptr<Database> db;
      OpenWithTables(ArchiveOpts(), &db);
      std::mt19937 rng(seed);
      RunSchedule(db.get(), &oracle, 10 + static_cast<int>(rng() % 12),
                  /*ckpt_every=*/9, seed);
      db->GetTable("A")->FlushAll();
      // Pre-checkpoint snapshot = the state a crash rolls back to.
      fs::copy(dir_, crash_dir, fs::copy_options::recursive);
      ASSERT_TRUE(db->Checkpoint().ok());
      // Overlay a random subset of the sealed artifacts (a crash can
      // land between any two seals).
      fs::create_directories(crash_dir + "/archive");
      for (const auto& entry :
           fs::directory_iterator(ArchiveManager::ArchiveDirOf(dir_))) {
        if (rng() % 2 == 0) continue;
        fs::copy(entry.path(),
                 crash_dir + "/archive/" + entry.path().filename().string(),
                 fs::copy_options::overwrite_existing);
      }
    }
    size_t pre_crash_points = oracle.points.size();
    {
      // Reopen the crash image: recovery must converge, later
      // checkpoints must re-seal (superseding the overlap), and the
      // whole pre-crash history stays restorable.
      std::unique_ptr<Database> db;
      ASSERT_TRUE(Database::Open(crash_dir, ArchiveOpts(), &db).ok());
      Table* a = db->GetTable("A");
      ASSERT_NE(a, nullptr);
      EXPECT_EQ(Snapshot(a, oracle.keys_a,
                         oracle.points.back().t + 1),
                oracle.points.back().a);
      Oracle more = oracle;
      RunSchedule(db.get(), &more, 12, 6, seed + 1000);
      oracle = std::move(more);
    }
    std::swap(dir_, const_cast<std::string&>(crash_dir));
    for (size_t i = 0; i < pre_crash_points; i += 2) {
      VerifyPoint(oracle.points[i], oracle);
    }
    VerifyPoint(oracle.points.back(), oracle);
    std::swap(dir_, const_cast<std::string&>(crash_dir));
  }
}

// ---------------------------------------------------------------------------
// Retention
// ---------------------------------------------------------------------------

TEST_F(ArchiveTest, RetentionEvictsOldestEpochsOnly) {
  DurabilityOptions opts = ArchiveOpts();
  opts.archive_max_segments = 6;
  Oracle oracle;
  {
    std::unique_ptr<Database> db;
    OpenWithTables(opts, &db);
    RunSchedule(db.get(), &oracle, 80, 8, /*seed=*/5);
  }
  // The policy held: segments were evicted down toward the cap.
  auto count_segments = [&] {
    return ArchiveManager::ListRedoSegments(dir_, "A").size() +
           ArchiveManager::ListRedoSegments(dir_, "B").size() +
           ArchiveManager::ListCommitSegments(dir_).size();
  };
  EXPECT_LE(count_segments(), 6u + 3u);  // at most one fresh cycle over

  // The floor: the oldest retained archived manifest. Everything at or
  // after its capture time restores exactly; sufficiently old points
  // are gone — with a clean NotFound, never wrong data.
  auto manifests = ArchiveManager::ListManifests(dir_);
  ASSERT_FALSE(manifests.empty());
  Manifest floor;
  bool exists = false;
  ASSERT_TRUE(ReadManifestFile(manifests.front().path, &floor, &exists).ok());
  ASSERT_TRUE(exists);
  ASSERT_GT(floor.capture_time, 0u);

  size_t restored = 0, evicted = 0;
  for (const OraclePoint& p : oracle.points) {
    std::unique_ptr<Database> rdb;
    Status s = Database::RestoreToPoint(dir_, RestorePoint::AtTime(p.t), &rdb);
    if (p.t + 1 >= floor.capture_time) {
      ASSERT_TRUE(s.ok()) << "point " << p.t << " at/after floor "
                          << floor.capture_time << ": " << s.ToString();
      EXPECT_EQ(Snapshot(rdb->GetTable("A"), oracle.keys_a, p.t + 1), p.a);
      EXPECT_EQ(Snapshot(rdb->GetTable("B"), oracle.keys_b, p.t + 1), p.b);
      ++restored;
    } else if (s.ok()) {
      // An older point may still be coincidentally coverable; if the
      // restore claims success it must be exact.
      EXPECT_EQ(Snapshot(rdb->GetTable("A"), oracle.keys_a, p.t + 1), p.a);
      EXPECT_EQ(Snapshot(rdb->GetTable("B"), oracle.keys_b, p.t + 1), p.b);
    } else {
      EXPECT_TRUE(s.IsNotFound()) << s.ToString();
      ++evicted;
    }
  }
  EXPECT_GT(restored, 0u);
  EXPECT_GT(evicted, 0u);
}

TEST_F(ArchiveTest, ArchivingOffKeepsDeleteBehavior) {
  {
    std::unique_ptr<Database> db;
    OpenWithTables(DurabilityOptions{}, &db);
    Oracle oracle;
    RunSchedule(db.get(), &oracle, 20, 10, /*seed=*/1);
  }
  EXPECT_FALSE(fs::exists(ArchiveManager::ArchiveDirOf(dir_)));
  std::unique_ptr<Database> rdb;
  EXPECT_TRUE(
      Database::RestoreToPoint(dir_, RestorePoint::AtTime(5), &rdb)
          .IsNotFound());
}

// ---------------------------------------------------------------------------
// Framed-core seal mechanics
// ---------------------------------------------------------------------------

TEST_F(ArchiveTest, SealSinkFailureLeavesLogIntact) {
  fs::create_directories(dir_);
  std::string path = dir_ + "/t.log";
  RedoLog log;
  ASSERT_TRUE(log.Open(path, true).ok());
  for (int i = 0; i < 8; ++i) {
    LogRecord rec;
    rec.type = LogRecordType::kCommit;
    rec.txn_id = kTxnIdTag | (10 + i);
    rec.commit_time = 10 + i;
    log.Append(rec);
  }
  ASSERT_TRUE(log.Flush(false).ok());

  // A failing sink aborts the truncation before anything is dropped.
  Status s = log.TruncateTo(5, [](uint64_t, uint64_t, std::string_view) {
    return Status::IOError("archive disk full");
  });
  EXPECT_FALSE(s.ok());
  size_t seen = 0;
  ASSERT_TRUE(
      RedoLog::Replay(path, [&](const LogRecord&) { ++seen; }).ok());
  EXPECT_EQ(seen, 8u);

  // A successful sink receives a self-describing framed prefix: the
  // sealed bytes replay standalone with the original LSNs.
  std::string sealed;
  uint64_t lo = 0, hi = 0;
  ASSERT_TRUE(log.TruncateTo(5,
                             [&](uint64_t l, uint64_t h,
                                 std::string_view bytes) {
                               lo = l;
                               hi = h;
                               sealed.assign(bytes.data(), bytes.size());
                               return Status::OK();
                             })
                  .ok());
  EXPECT_EQ(lo, 1u);
  EXPECT_EQ(hi, 5u);
  std::string seg_path = dir_ + "/sealed.arc";
  {
    std::ofstream out(seg_path, std::ios::binary);
    out.write(sealed.data(), static_cast<std::streamsize>(sealed.size()));
  }
  std::vector<uint64_t> lsns;
  RedoLog::ReplayStats stats;
  ASSERT_TRUE(RedoLog::Replay(
                  seg_path,
                  [&](const LogRecord&, uint64_t lsn) { lsns.push_back(lsn); },
                  &stats)
                  .ok());
  EXPECT_EQ(lsns, (std::vector<uint64_t>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(stats.clean_end);
  EXPECT_EQ(stats.last_lsn, 5u);
  // And the live log kept exactly the suffix.
  std::vector<uint64_t> live;
  ASSERT_TRUE(RedoLog::Replay(
                  path,
                  [&](const LogRecord&, uint64_t lsn) { live.push_back(lsn); },
                  nullptr)
                  .ok());
  EXPECT_EQ(live, (std::vector<uint64_t>{6, 7, 8}));
}

TEST_F(ArchiveTest, ManifestCarriesArchiveWatermarks) {
  std::unique_ptr<Database> db;
  OpenWithTables(ArchiveOpts(), &db);
  Oracle oracle;
  RunSchedule(db.get(), &oracle, 15, 0, /*seed=*/2);
  ASSERT_TRUE(db->Checkpoint().ok());
  Manifest m;
  bool exists = false;
  ASSERT_TRUE(ReadManifest(dir_, &m, &exists).ok());
  ASSERT_TRUE(exists);
  EXPECT_GT(m.capture_time, 0u);
  // Round-trips through the archived copy too.
  auto archived = ArchiveManager::ListManifests(dir_);
  ASSERT_EQ(archived.size(), 1u);
  Manifest am;
  ASSERT_TRUE(ReadManifestFile(archived.front().path, &am, &exists).ok());
  EXPECT_EQ(am.capture_time, m.capture_time);
  EXPECT_EQ(am.commit_log_mark, m.commit_log_mark);
  EXPECT_EQ(am.checkpoint_id, m.checkpoint_id);
}

}  // namespace
}  // namespace lstore
