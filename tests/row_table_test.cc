// Tests for L-Store (Row), the row-layout lineage variant used by the
// layout comparison of Section 6.2 (Tables 8-9).

#include <gtest/gtest.h>

#include <thread>

#include "common/random.h"
#include "core/row_table.h"

namespace lstore {
namespace {

TableConfig Config() {
  TableConfig cfg;
  cfg.range_size = 64;
  cfg.enable_merge_thread = false;
  return cfg;
}

class RowTableTest : public ::testing::Test {
 protected:
  RowTableTest() : table_(Schema(4), Config()) {
    Txn txn = table_.Begin();
    for (Value k = 0; k < 30; ++k) {
      EXPECT_TRUE(table_.Insert(txn, {k, k * 10, k * 100, k * 1000}).ok());
    }
    EXPECT_TRUE(txn.Commit().ok());
  }
  RowTable table_;
};

TEST_F(RowTableTest, InsertAndReadFullRow) {
  Txn txn = table_.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(txn, 7, 0b1111, &out).ok());
  EXPECT_EQ(out, (std::vector<Value>{7, 70, 700, 7000}));
  (void)txn.Commit();
}

TEST_F(RowTableTest, UpdateWritesCompleteRowVersion) {
  Txn txn = table_.Begin();
  ASSERT_TRUE(table_.Update(txn, 7, 0b0010, {0, 71, 0, 0}).ok());
  ASSERT_TRUE(txn.Commit().ok());
  Txn r = table_.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(r, 7, 0b1111, &out).ok());
  // A row-store version is complete: untouched columns carried over.
  EXPECT_EQ(out, (std::vector<Value>{7, 71, 700, 7000}));
  (void)r.Commit();
}

TEST_F(RowTableTest, DuplicateKeyRejected) {
  Txn txn = table_.Begin();
  EXPECT_TRUE(table_.Insert(txn, {7, 0, 0, 0}).IsAlreadyExists());
  txn.Abort();
}

TEST_F(RowTableTest, WriteWriteConflictAborts) {
  Txn t1 = table_.Begin();
  ASSERT_TRUE(table_.Update(t1, 3, 0b0010, {0, 1, 0, 0}).ok());
  Txn t2 = table_.Begin();
  EXPECT_TRUE(table_.Update(t2, 3, 0b0010, {0, 2, 0, 0}).IsAborted());
  t2.Abort();
  ASSERT_TRUE(t1.Commit().ok());
}

TEST_F(RowTableTest, AbortHidesVersion) {
  Txn t1 = table_.Begin();
  ASSERT_TRUE(table_.Update(t1, 3, 0b0010, {0, 999, 0, 0}).ok());
  t1.Abort();
  Txn r = table_.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(r, 3, 0b0010, &out).ok());
  EXPECT_EQ(out[1], 30u);
  (void)r.Commit();
}

TEST_F(RowTableTest, SnapshotReadStable) {
  Txn snap = table_.Begin(IsolationLevel::kSnapshot);
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(snap, 5, 0b0010, &out).ok());
  EXPECT_EQ(out[1], 50u);
  Txn w = table_.Begin();
  ASSERT_TRUE(table_.Update(w, 5, 0b0010, {0, 51, 0, 0}).ok());
  ASSERT_TRUE(w.Commit().ok());
  ASSERT_TRUE(table_.Read(snap, 5, 0b0010, &out).ok());
  EXPECT_EQ(out[1], 50u);
  (void)snap.Commit();
}

TEST_F(RowTableTest, ScanSumsVisibleRows) {
  uint64_t sum = 0;
  Timestamp now = table_.txn_manager().clock().Tick();
  ASSERT_TRUE(table_.SumColumn(1, now, &sum).ok());
  uint64_t expect = 0;
  for (Value k = 0; k < 30; ++k) expect += k * 10;
  EXPECT_EQ(sum, expect);
}

TEST_F(RowTableTest, ScanReflectsUpdatesImmediately) {
  Txn txn = table_.Begin();
  ASSERT_TRUE(table_.Update(txn, 0, 0b0010, {0, 5, 0, 0}).ok());
  ASSERT_TRUE(txn.Commit().ok());
  uint64_t sum = 0;
  Timestamp now = table_.txn_manager().clock().Tick();
  ASSERT_TRUE(table_.SumColumn(1, now, &sum).ok());
  uint64_t expect = 5;
  for (Value k = 1; k < 30; ++k) expect += k * 10;
  EXPECT_EQ(sum, expect);
}

TEST_F(RowTableTest, VersionChainAcrossManyUpdates) {
  for (Value v = 0; v < 50; ++v) {
    Txn txn = table_.Begin();
    ASSERT_TRUE(table_.Update(txn, 9, 0b0100, {0, 0, v, 0}).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  Txn r = table_.Begin();
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(r, 9, 0b0100, &out).ok());
  EXPECT_EQ(out[2], 49u);
  (void)r.Commit();
}

TEST_F(RowTableTest, ConcurrentUpdatersAndScanners) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> commits{0};
  std::thread writer([&] {
    Random rng(2);
    while (!stop.load()) {
      Txn txn = table_.Begin();
      std::vector<Value> row(4, 0);
      row[1] = rng.Uniform(1000);
      if (table_.Update(txn, rng.Uniform(30), 0b0010, row).ok() &&
          txn.Commit().ok()) {
        commits.fetch_add(1);
      } else {
        txn.Abort();  // no-op if the commit already finished it
      }
    }
  });
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  while (std::chrono::steady_clock::now() < deadline) {
    uint64_t sum = 0;
    Timestamp now = table_.txn_manager().clock().Tick();
    ASSERT_TRUE(table_.SumColumn(1, now, &sum).ok());
  }
  stop = true;
  writer.join();
  EXPECT_GT(commits.load(), 0u);
}

}  // namespace
}  // namespace lstore
