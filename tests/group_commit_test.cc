// Group commit + database commit log (the single atomic commit point
// for cross-table transactions): fsync sharing across concurrent
// committers, torn-commit-log fault injection (all-or-nothing
// recovery on every participant), mixed single-/cross-table recovery
// equivalence, and commit-log truncation at checkpoints.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "checkpoint/checkpoint_manager.h"
#include "core/commit_pipeline.h"
#include "core/database.h"
#include "core/table.h"
#include "log/commit_log.h"
#include "log/redo_log.h"

namespace lstore {
namespace {

class GroupCommitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::string(::testing::TempDir()) + "lstore_gc_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static TableConfig SmallConfig() {
    TableConfig cfg;
    cfg.range_size = 32;
    cfg.insert_range_size = 32;
    cfg.tail_page_slots = 8;
    cfg.merge_threshold = 1u << 20;  // manual merges only
    cfg.enable_merge_thread = false;
    return cfg;
  }

  static uint64_t FileBytes(const std::string& path) {
    struct ::stat st;
    return ::stat(path.c_str(), &st) == 0 ? st.st_size : 0;
  }

  /// Open a durable database with tables "a" and "b".
  std::unique_ptr<Database> OpenDb(const DurabilityOptions& opts,
                                   bool create_tables = true) {
    std::unique_ptr<Database> db;
    Status s = Database::Open(dir_, opts, &db);
    EXPECT_TRUE(s.ok()) << s.ToString();
    if (create_tables && db->GetTable("a") == nullptr) {
      EXPECT_TRUE(db->CreateTable("a", Schema(3), SmallConfig()).ok());
      EXPECT_TRUE(db->CreateTable("b", Schema(3), SmallConfig()).ok());
    }
    return db;
  }

  /// One cross-table transaction: insert (k, v, 0) into "a" AND
  /// (k + 1000, v, 0) into "b".
  static Status CrossInsert(Database* db, Value k, Value v) {
    Txn txn = db->Begin();
    Table* a = db->GetTable("a");
    Table* b = db->GetTable("b");
    Status s = a->Insert(txn, {k, v, 0});
    if (s.ok()) s = b->Insert(txn, {k + 1000, v, 0});
    if (s.ok()) return txn.Commit();
    return s;
  }

  /// True iff `key` is visible in `table`.
  static bool Visible(Database* db, const std::string& table, Value key) {
    Txn txn = db->Begin();
    std::vector<Value> row;
    Status s = db->GetTable(table)->Read(txn, key, 0b111, &row);
    (void)txn.Commit();
    return s.ok();
  }

  /// Number of records currently in the live commit log.
  static size_t CommitLogRecords(Database* db) {
    size_t n = 0;
    EXPECT_TRUE(db->commit_log()
                    ->Scan([&n](const CommitLogRecord&, uint64_t) { ++n; })
                    .ok());
    return n;
  }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// CommitLog unit: framing, LSNs, torn-tail repair, truncation
// ---------------------------------------------------------------------------

TEST_F(GroupCommitTest, CommitLogRoundTripAndTruncation) {
  std::filesystem::create_directories(dir_);
  std::string path = dir_ + "/clog";
  {
    CommitLog log;
    ASSERT_TRUE(log.Open(path, true).ok());
    for (uint64_t i = 0; i < 5; ++i) {
      CommitLogRecord rec;
      rec.txn_id = kTxnIdTag | (10 + i);
      rec.commit_time = 100 + i;
      rec.participants = {{"a", 7 + i}, {"b", 9 + i}};
      EXPECT_EQ(log.Append(rec), i + 1);
    }
    ASSERT_TRUE(log.Flush(false).ok());
    ASSERT_TRUE(log.TruncateTo(3).ok());
    CommitLogRecord rec;
    rec.txn_id = kTxnIdTag | 77;
    rec.commit_time = 200;
    rec.participants = {{"a", 20}};
    EXPECT_EQ(log.Append(rec), 6u);  // LSNs continue across truncation
    ASSERT_TRUE(log.Flush(false).ok());
  }
  std::vector<uint64_t> lsns;
  std::vector<Timestamp> times;
  CommitLog::ReplayStats stats;
  ASSERT_TRUE(CommitLog::Replay(
                  path,
                  [&](const CommitLogRecord& rec, uint64_t lsn) {
                    lsns.push_back(lsn);
                    times.push_back(rec.commit_time);
                    ASSERT_FALSE(rec.participants.empty());
                    EXPECT_EQ(rec.participants[0].table, "a");
                  },
                  &stats)
                  .ok());
  EXPECT_EQ(lsns, (std::vector<uint64_t>{4, 5, 6}));
  EXPECT_EQ(times, (std::vector<Timestamp>{103, 104, 200}));
  EXPECT_EQ(stats.base_lsn, 3u);
  EXPECT_TRUE(stats.clean_end);
}

TEST_F(GroupCommitTest, CommitLogAbortMarkerOverridesCommitRecord) {
  std::filesystem::create_directories(dir_);
  std::string path = dir_ + "/clog";
  {
    CommitLog log;
    ASSERT_TRUE(log.Open(path, true).ok());
    CommitLogRecord commit;
    commit.txn_id = kTxnIdTag | 7;
    commit.commit_time = 42;
    commit.participants = {{"a", 1}, {"b", 2}};
    log.Append(commit);
    // The commit record's flush failed at runtime: the authoritative
    // abort marker follows it in the log.
    CommitLogRecord abort;
    abort.txn_id = kTxnIdTag | 7;
    abort.aborted = true;
    log.Append(abort);
    ASSERT_TRUE(log.Flush(false).ok());
  }
  std::vector<bool> aborted;
  ASSERT_TRUE(CommitLog::Replay(path,
                                [&](const CommitLogRecord& rec, uint64_t) {
                                  aborted.push_back(rec.aborted);
                                  EXPECT_EQ(rec.txn_id, kTxnIdTag | 7);
                                })
                  .ok());
  EXPECT_EQ(aborted, (std::vector<bool>{false, true}));
}

TEST_F(GroupCommitTest, CommitLogOpenRepairsTornTail) {
  std::filesystem::create_directories(dir_);
  std::string path = dir_ + "/clog";
  {
    CommitLog log;
    ASSERT_TRUE(log.Open(path, true).ok());
    for (uint64_t i = 0; i < 3; ++i) {
      CommitLogRecord rec;
      rec.txn_id = kTxnIdTag | (10 + i);
      rec.commit_time = 100 + i;
      rec.participants = {{"table_with_a_long_name", i}};
      log.Append(rec);
    }
    ASSERT_TRUE(log.Flush(false).ok());
  }
  // Crash mid-append: chop into the final frame.
  ASSERT_EQ(0, ::truncate(path.c_str(), FileBytes(path) - 3));
  {
    CommitLog log;
    ASSERT_TRUE(log.Open(path, false).ok());
    EXPECT_EQ(log.last_lsn(), 2u);  // torn record discarded
  }
  size_t n = 0;
  CommitLog::ReplayStats stats;
  ASSERT_TRUE(CommitLog::Replay(
                  path, [&n](const CommitLogRecord&, uint64_t) { ++n; },
                  &stats)
                  .ok());
  EXPECT_EQ(n, 2u);
  EXPECT_TRUE(stats.clean_end);
}

// ---------------------------------------------------------------------------
// The single commit point: record placement
// ---------------------------------------------------------------------------

TEST_F(GroupCommitTest, CrossTableCommitWritesOneCommitLogRecordAndNoPerTableOnes) {
  {
    auto db = OpenDb(DurabilityOptions{});
    ASSERT_TRUE(CrossInsert(db.get(), 1, 11).ok());
    // A single-table commit keeps its per-table commit record.
    Txn txn = db->Begin();
    ASSERT_TRUE(db->GetTable("a")->Insert(txn, {2, 22, 0}).ok());
    ASSERT_TRUE(txn.Commit().ok());
    EXPECT_EQ(CommitLogRecords(db.get()), 1u);
  }
  // Inspect the closed logs: the cross-table transaction must have
  // NO commit record in either table log; its only commit point is
  // the database commit log.
  size_t a_commits = 0, b_commits = 0;
  ASSERT_TRUE(RedoLog::Replay(dir_ + "/a.log",
                              [&](const LogRecord& rec) {
                                if (rec.type == LogRecordType::kCommit) {
                                  ++a_commits;
                                }
                              })
                  .ok());
  ASSERT_TRUE(RedoLog::Replay(dir_ + "/b.log",
                              [&](const LogRecord& rec) {
                                if (rec.type == LogRecordType::kCommit) {
                                  ++b_commits;
                                }
                              })
                  .ok());
  EXPECT_EQ(a_commits, 1u);  // only the single-table commit
  EXPECT_EQ(b_commits, 0u);

  size_t clog_records = 0;
  ASSERT_TRUE(CommitLog::Replay(dir_ + "/COMMIT_LOG",
                                [&](const CommitLogRecord& rec, uint64_t) {
                                  ++clog_records;
                                  EXPECT_EQ(rec.participants.size(), 2u);
                                })
                  .ok());
  EXPECT_EQ(clog_records, 1u);

  // Everything recovers.
  auto db = OpenDb(DurabilityOptions{}, /*create_tables=*/false);
  EXPECT_TRUE(Visible(db.get(), "a", 1));
  EXPECT_TRUE(Visible(db.get(), "b", 1001));
  EXPECT_TRUE(Visible(db.get(), "a", 2));
}

// ---------------------------------------------------------------------------
// Fault injection: all-or-nothing across participants
// ---------------------------------------------------------------------------

TEST_F(GroupCommitTest, TornCommitLogTailDropsTxnOnEveryParticipant) {
  {
    auto db = OpenDb(DurabilityOptions{});
    ASSERT_TRUE(CrossInsert(db.get(), 1, 11).ok());  // survives
    ASSERT_TRUE(CrossInsert(db.get(), 2, 22).ok());  // torn below
  }
  // Crash while appending the second commit record: tear into the
  // commit log's final frame. Both participants' payloads are intact
  // in a.log / b.log — only the commit point is gone.
  std::string clog = dir_ + "/COMMIT_LOG";
  ASSERT_GT(FileBytes(clog), 4u);
  ASSERT_EQ(0, ::truncate(clog.c_str(), FileBytes(clog) - 4));

  auto db = OpenDb(DurabilityOptions{}, /*create_tables=*/false);
  EXPECT_TRUE(Visible(db.get(), "a", 1));
  EXPECT_TRUE(Visible(db.get(), "b", 1001));
  // The torn transaction is aborted on BOTH tables, not split.
  EXPECT_FALSE(Visible(db.get(), "a", 2));
  EXPECT_FALSE(Visible(db.get(), "b", 1002));
}

TEST_F(GroupCommitTest, CrashBetweenParticipantWritesRecoversAllOrNothing) {
  {
    auto db = OpenDb(DurabilityOptions{});
    ASSERT_TRUE(CrossInsert(db.get(), 1, 11).ok());
  }
  // Crash before the commit-log append: participant logs carry the
  // payloads (in any flushed subset), the commit log has no record.
  // Deleting the commit log wholesale models the strongest version:
  // every participant write landed, the commit point didn't.
  ASSERT_EQ(0, std::remove((dir_ + "/COMMIT_LOG").c_str()));

  auto db = OpenDb(DurabilityOptions{}, /*create_tables=*/false);
  EXPECT_FALSE(Visible(db.get(), "a", 1));
  EXPECT_FALSE(Visible(db.get(), "b", 1001));

  // The recovered database accepts and persists new transactions.
  ASSERT_TRUE(CrossInsert(db.get(), 3, 33).ok());
  EXPECT_TRUE(Visible(db.get(), "a", 3));
  EXPECT_TRUE(Visible(db.get(), "b", 1003));
}

// ---------------------------------------------------------------------------
// Mixed single-/cross-table recovery equivalence
// ---------------------------------------------------------------------------

TEST_F(GroupCommitTest, MixedSingleAndCrossTableCommitsRecoverEquivalently) {
  {
    auto db = OpenDb(DurabilityOptions{});
    Table* a = db->GetTable("a");
    Table* b = db->GetTable("b");
    // Interleave: cross, single-on-a, cross, single-on-b, updates.
    ASSERT_TRUE(CrossInsert(db.get(), 1, 11).ok());
    {
      Txn txn = db->Begin();
      ASSERT_TRUE(a->Insert(txn, {2, 22, 0}).ok());
      ASSERT_TRUE(txn.Commit().ok());
    }
    ASSERT_TRUE(CrossInsert(db.get(), 3, 33).ok());
    {
      Txn txn = db->Begin();
      ASSERT_TRUE(b->Insert(txn, {1002, 22, 0}).ok());
      ASSERT_TRUE(txn.Commit().ok());
    }
    // A checkpoint mid-stream: later commits replay from log tails.
    ASSERT_TRUE(db->Checkpoint().ok());
    {
      Txn txn = db->Begin();
      std::vector<Value> row{0, 99, 0};
      ASSERT_TRUE(a->Update(txn, 1, 0b010, row).ok());
      ASSERT_TRUE(b->Update(txn, 1001, 0b010, row).ok());
      ASSERT_TRUE(txn.Commit().ok());
    }
    ASSERT_TRUE(CrossInsert(db.get(), 4, 44).ok());
    // An aborted cross-table transaction leaves nothing.
    {
      Txn txn = db->Begin();
      ASSERT_TRUE(a->Insert(txn, {5, 55, 0}).ok());
      ASSERT_TRUE(b->Insert(txn, {1005, 55, 0}).ok());
      txn.Abort();
    }
  }
  auto db = OpenDb(DurabilityOptions{}, /*create_tables=*/false);
  Txn txn = db->Begin();
  std::vector<Value> row;
  ASSERT_TRUE(db->GetTable("a")->Read(txn, 1, 0b111, &row).ok());
  EXPECT_EQ(row[1], 99u);  // cross-table update replayed on a
  ASSERT_TRUE(db->GetTable("b")->Read(txn, 1001, 0b111, &row).ok());
  EXPECT_EQ(row[1], 99u);  // ... and on b
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_TRUE(Visible(db.get(), "a", 2));
  EXPECT_TRUE(Visible(db.get(), "b", 1002));
  EXPECT_TRUE(Visible(db.get(), "a", 3));
  EXPECT_TRUE(Visible(db.get(), "b", 1003));
  EXPECT_TRUE(Visible(db.get(), "a", 4));
  EXPECT_TRUE(Visible(db.get(), "b", 1004));
  EXPECT_FALSE(Visible(db.get(), "a", 5));
  EXPECT_FALSE(Visible(db.get(), "b", 1005));
}

// ---------------------------------------------------------------------------
// Group commit: concurrent committers share fsyncs
// ---------------------------------------------------------------------------

TEST_F(GroupCommitTest, ConcurrentCommittersShareFsyncs) {
  std::atomic<uint64_t> fsyncs{0};
  DurabilityOptions opts;
  opts.sync_commit = true;
  opts.group_commit_window_us = 50000;  // 50 ms: let followers join
  opts.sync_counter = &fsyncs;
  auto db = OpenDb(opts);

  // Load one row per thread in each table (these commits also fsync;
  // measure only around the concurrent phase).
  constexpr int kThreads = 8;
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_TRUE(CrossInsert(db.get(), i, i).ok());
  }

  uint64_t before_fsyncs = fsyncs.load();
  uint64_t before_batches = db->group_commit()->batches();
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      Txn txn = db->Begin();
      std::vector<Value> row{0, static_cast<Value>(100 + i), 0};
      Status s = db->GetTable("a")->Update(txn, i, 0b010, row);
      if (s.ok()) s = db->GetTable("b")->Update(txn, i + 1000, 0b010, row);
      if (s.ok()) s = txn.Commit();
      if (s.ok()) ok.fetch_add(1);
    });
  }
  while (ready.load() != kThreads) std::this_thread::yield();
  go.store(true);
  for (auto& t : threads) t.join();
  ASSERT_EQ(ok.load(), kThreads);

  uint64_t delta_fsyncs = fsyncs.load() - before_fsyncs;
  uint64_t delta_batches = db->group_commit()->batches() - before_batches;
  // Unshared, 8 cross-table commits over 2 tables would cost
  // 8 * (2 table fsyncs + 1 commit-log fsync) = 24. Group commit
  // must do better than one batch per committer.
  EXPECT_GT(delta_fsyncs, 0u);
  EXPECT_LT(delta_fsyncs, 3u * kThreads);
  EXPECT_LT(delta_batches, static_cast<uint64_t>(kThreads));

  // And the shared flushes really committed everyone.
  for (int i = 0; i < kThreads; ++i) {
    Txn txn = db->Begin();
    std::vector<Value> row;
    ASSERT_TRUE(db->GetTable("a")->Read(txn, i, 0b111, &row).ok());
    EXPECT_EQ(row[1], static_cast<Value>(100 + i));
    ASSERT_TRUE(txn.Commit().ok());
  }
}

// ---------------------------------------------------------------------------
// Checkpoint integration: quiesce + commit-log truncation
// ---------------------------------------------------------------------------

TEST_F(GroupCommitTest, CheckpointTruncatesCoveredCommitLogPrefix) {
  auto db = OpenDb(DurabilityOptions{});
  for (Value k = 0; k < 4; ++k) {
    ASSERT_TRUE(CrossInsert(db.get(), k, k).ok());
  }
  EXPECT_EQ(CommitLogRecords(db.get()), 4u);
  uint64_t lsn_before = db->commit_log()->last_lsn();

  // The checkpoint covers every participant payload, so all four
  // records are dead weight and the covered prefix is dropped.
  ASSERT_TRUE(db->Checkpoint().ok());
  EXPECT_EQ(CommitLogRecords(db.get()), 0u);
  EXPECT_EQ(db->commit_log()->last_lsn(), lsn_before);  // LSNs stable

  // New cross-table commits append afresh and replay on restart.
  ASSERT_TRUE(CrossInsert(db.get(), 10, 1).ok());
  EXPECT_EQ(CommitLogRecords(db.get()), 1u);
  db.reset();

  auto db2 = OpenDb(DurabilityOptions{}, /*create_tables=*/false);
  for (Value k = 0; k < 4; ++k) {
    EXPECT_TRUE(Visible(db2.get(), "a", k));
    EXPECT_TRUE(Visible(db2.get(), "b", k + 1000));
  }
  EXPECT_TRUE(Visible(db2.get(), "a", 10));
  EXPECT_TRUE(Visible(db2.get(), "b", 1010));
}

TEST_F(GroupCommitTest, CheckpointDoesNotOrphanPostQuiesceCommits) {
  // Commits racing a checkpoint keep their commit-log record until
  // the NEXT checkpoint covers them; a restart right after the first
  // checkpoint must see them on every participant.
  auto db = OpenDb(DurabilityOptions{});
  ASSERT_TRUE(CrossInsert(db.get(), 1, 11).ok());

  std::atomic<bool> stop{false};
  std::atomic<Value> next_key{10};
  std::thread committer([&] {
    while (!stop.load()) {
      Value k = next_key.fetch_add(1);
      (void)CrossInsert(db.get(), k, k);
    }
  });
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  stop.store(true);
  committer.join();
  Value last = next_key.load();
  db.reset();

  auto db2 = OpenDb(DurabilityOptions{}, /*create_tables=*/false);
  EXPECT_TRUE(Visible(db2.get(), "a", 1));
  // Every committed cross-table insert is visible on BOTH tables or
  // NEITHER — never split.
  for (Value k = 10; k < last; ++k) {
    EXPECT_EQ(Visible(db2.get(), "a", k), Visible(db2.get(), "b", k + 1000))
        << "split transaction at key " << k;
  }
}

}  // namespace
}  // namespace lstore
