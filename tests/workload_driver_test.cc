// Unit tests for the shared bench-driver API (bench/bench_common.h)
// and its key generators (src/common/random.h): scrambled-zipfian
// shape and determinism, latency-reservoir percentiles validated
// against the engine's log-scale obs Histogram, and the OpMix /
// SloSpec / BenchArgs parsers the whole bench suite shares.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "obs/metrics.h"

namespace lstore {
namespace {

using bench::BenchArgs;
using bench::LatencyReservoir;
using bench::OpMix;
using bench::SloSpec;

// --- scrambled zipfian -----------------------------------------------------

TEST(ScrambledZipfian, SameSeedSameSequence) {
  ScrambledZipfianGenerator a(10000, 0.99, 7);
  ScrambledZipfianGenerator b(10000, 0.99, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(ScrambledZipfian, DifferentSeedsDiverge) {
  ScrambledZipfianGenerator a(10000, 0.99, 7);
  ScrambledZipfianGenerator b(10000, 0.99, 8);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 50);
}

TEST(ScrambledZipfian, StaysInRange) {
  const uint64_t n = 1000;
  ScrambledZipfianGenerator gen(n, 0.99, 3);
  for (int i = 0; i < 100000; ++i) EXPECT_LT(gen.Next(), n);
}

// The scramble scatters the zipfian *ranks* across the keyspace, but
// must preserve the frequency distribution: a handful of (arbitrary)
// keys soaks up a large share of the draws, far beyond anything a
// uniform draw produces.
TEST(ScrambledZipfian, SkewedShapeSurvivesScramble) {
  const uint64_t n = 1000;
  const int kDraws = 100000;
  auto top_share = [&](auto& gen) {
    std::map<uint64_t, uint64_t> freq;
    for (int i = 0; i < kDraws; ++i) ++freq[gen.Next()];
    std::vector<uint64_t> counts;
    for (const auto& [k, c] : freq) counts.push_back(c);
    std::sort(counts.rbegin(), counts.rend());
    uint64_t top10 = 0;
    for (size_t i = 0; i < 10 && i < counts.size(); ++i) top10 += counts[i];
    return static_cast<double>(top10) / kDraws;
  };

  ScrambledZipfianGenerator zipf(n, 0.99, 11);
  double zipf_top = top_share(zipf);

  KeyGenerator uniform(n, 0.0, 11);  // theta 0 = uniform
  double uniform_top = top_share(uniform);

  // Zipf(0.99, n=1000): the 10 hottest keys draw ~30% of the mass;
  // uniform gives each key 0.1%, so its top 10 sit near 1%.
  EXPECT_GT(zipf_top, 0.20);
  EXPECT_LT(uniform_top, 0.05);
  EXPECT_GT(zipf_top, uniform_top * 4);
}

TEST(KeyGenerator, UniformCoversKeyspace) {
  const uint64_t n = 100;
  KeyGenerator gen(n, 0.0, 5);
  std::vector<bool> seen(n, false);
  for (int i = 0; i < 10000; ++i) seen[gen.Next()] = true;
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

// --- latency reservoir -----------------------------------------------------

TEST(LatencyReservoir, ExactPercentilesUnderCap) {
  LatencyReservoir r;
  for (uint64_t v = 1; v <= 1000; ++v) r.Record(v);
  EXPECT_EQ(r.count(), 1000u);
  EXPECT_NEAR(static_cast<double>(r.PercentileNs(0.50)), 500, 2);
  EXPECT_NEAR(static_cast<double>(r.PercentileNs(0.99)), 990, 2);
  EXPECT_EQ(r.PercentileNs(0.0), 1u);
  EXPECT_EQ(r.PercentileNs(1.0), 1000u);
}

TEST(LatencyReservoir, MergePoolsSamples) {
  LatencyReservoir a, b;
  for (uint64_t v = 1; v <= 500; ++v) a.Record(v);
  for (uint64_t v = 501; v <= 1000; ++v) b.Record(v);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1000u);
  EXPECT_NEAR(static_cast<double>(a.PercentileNs(0.50)), 500, 2);
}

// The engine's obs Histogram has <= 25% relative bucket width and its
// Percentile() is a bounded overestimate (the bucket's upper bound).
// The reservoir's exact-sample percentile must land within that band:
// at or below the histogram's answer, and no more than 25% below it.
TEST(LatencyReservoir, AgreesWithObsHistogramWithinBucketError) {
  LatencyReservoir r(1u << 16);
  Histogram h;
  Random rng(99);
  // A long-tailed latency-like distribution: mix of a tight body and
  // a sparse tail, like a real op-latency profile.
  for (int i = 0; i < 50000; ++i) {
    uint64_t v = 1000 + rng.Uniform(2000);        // body: 1-3us
    if (rng.Uniform(100) < 2) v += rng.Uniform(200000);  // 2% tail
    r.Record(v);
    h.Record(v);
  }
  HistogramSnapshot snap = h.Snapshot();
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    double exact = static_cast<double>(r.PercentileNs(q));
    double bucketed = static_cast<double>(snap.Percentile(q));
    EXPECT_LE(exact, bucketed * 1.001)
        << "q=" << q << " exact=" << exact << " hist=" << bucketed;
    EXPECT_GE(exact, bucketed * 0.75 - 1.0)
        << "q=" << q << " exact=" << exact << " hist=" << bucketed;
  }
}

TEST(LatencyReservoir, SamplesPastCapStayRepresentative) {
  LatencyReservoir r(1024, 3);
  // 100k uniform values through a 1k-slot reservoir: percentile
  // estimates stay near the true quantiles (generous tolerance — the
  // reservoir is for tail *reporting*, not statistics).
  for (uint64_t i = 0; i < 100000; ++i) r.Record(i % 10000);
  EXPECT_EQ(r.count(), 100000u);
  EXPECT_NEAR(static_cast<double>(r.PercentileNs(0.5)), 5000, 1500);
  EXPECT_GT(r.PercentileNs(0.99), r.PercentileNs(0.5));
}

// --- OpMix -----------------------------------------------------------------

TEST(OpMix, ParsesFullSpec) {
  OpMix m;
  std::string err;
  ASSERT_TRUE(
      m.Parse("read=70,update=20,insert=5,delete=1,scan=2,multiread=2", &err))
      << err;
  EXPECT_EQ(m.read, 70u);
  EXPECT_EQ(m.update, 20u);
  EXPECT_EQ(m.insert, 5u);
  EXPECT_EQ(m.del, 1u);
  EXPECT_EQ(m.scan, 2u);
  EXPECT_EQ(m.multiread, 2u);
}

TEST(OpMix, OmittedClassesZero) {
  OpMix m;  // defaults read=95, update=5
  std::string err;
  ASSERT_TRUE(m.Parse("read=100", &err)) << err;
  EXPECT_EQ(m.read, 100u);
  EXPECT_EQ(m.update, 0u);
}

TEST(OpMix, RejectsBadSpecs) {
  OpMix m;
  std::string err;
  EXPECT_FALSE(m.Parse("read=50", &err));          // doesn't total 100
  EXPECT_FALSE(m.Parse("read=99,write=1", &err));  // unknown class
  EXPECT_FALSE(m.Parse("read", &err));             // no '='
}

// --- SloSpec ---------------------------------------------------------------

TEST(SloSpec, UpperAndLowerBounds) {
  SloSpec slo;
  std::string err;
  ASSERT_TRUE(slo.Parse("p99_read_us=500,min_total_ops_s=1000", &err)) << err;
  ASSERT_EQ(slo.bounds.size(), 2u);
  EXPECT_FALSE(slo.bounds[0].lower);
  EXPECT_EQ(slo.bounds[0].stat, "p99_read_us");
  EXPECT_TRUE(slo.bounds[1].lower);
  EXPECT_EQ(slo.bounds[1].stat, "total_ops_s");

  std::map<std::string, double> ok_stats{{"p99_read_us", 499.0},
                                         {"total_ops_s", 1001.0}};
  std::vector<std::string> v;
  EXPECT_EQ(slo.Check(ok_stats, &v), 0u);
  EXPECT_TRUE(v.empty());

  std::map<std::string, double> bad_stats{{"p99_read_us", 501.0},
                                          {"total_ops_s", 999.0}};
  EXPECT_EQ(slo.Check(bad_stats, &v), 2u);
  EXPECT_EQ(v.size(), 2u);
}

TEST(SloSpec, MissingStatIsViolation) {
  SloSpec slo;
  std::string err;
  ASSERT_TRUE(slo.Parse("p99_scan_us=100", &err)) << err;
  std::vector<std::string> v;
  EXPECT_EQ(slo.Check({}, &v), 1u);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("not measured"), std::string::npos);
}

TEST(SloSpec, RejectsBadSpecs) {
  SloSpec slo;
  std::string err;
  EXPECT_FALSE(slo.Parse("p99_read_us", &err));  // no '='
  EXPECT_FALSE(slo.Parse("min_=5", &err));       // empty stat after prefix
}

// --- BenchArgs -------------------------------------------------------------

TEST(BenchArgs, ParsesSharedVocabulary) {
  const char* argv[] = {"bench",        "--rows",   "5000",  "--threads",
                        "1,2,4",        "--theta",  "0.5",   "--mix",
                        "read=100",     "--mode",   "wire",  "--port",
                        "7411",         "--slo",    "p99_read_us=500"};
  BenchArgs args;
  std::string err;
  ASSERT_TRUE(args.Parse(15, const_cast<char**>(argv), &err)) << err;
  EXPECT_EQ(args.rows, 5000u);
  EXPECT_EQ(args.threads, (std::vector<uint32_t>{1, 2, 4}));
  EXPECT_DOUBLE_EQ(args.theta, 0.5);
  EXPECT_EQ(args.mix.read, 100u);
  EXPECT_EQ(args.mode, "wire");
  EXPECT_EQ(args.port, 7411);
  EXPECT_EQ(args.slo.bounds.size(), 1u);
}

TEST(BenchArgs, RejectsUnknownAndTruncatedFlags) {
  std::string err;
  {
    const char* argv[] = {"bench", "--frobnicate", "1"};
    BenchArgs args;
    EXPECT_FALSE(args.Parse(3, const_cast<char**>(argv), &err));
  }
  {
    const char* argv[] = {"bench", "--rows"};
    BenchArgs args;
    EXPECT_FALSE(args.Parse(2, const_cast<char**>(argv), &err));
    EXPECT_NE(err.find("missing value"), std::string::npos);
  }
}

TEST(BenchArgs, DistUniformZeroesTheta) {
  const char* argv[] = {"bench", "--dist", "uniform"};
  BenchArgs args;
  std::string err;
  ASSERT_TRUE(args.Parse(3, const_cast<char**>(argv), &err)) << err;
  EXPECT_DOUBLE_EQ(args.theta, 0.0);
}

}  // namespace
}  // namespace lstore
