// Analytical scan tests (Section 6.2 "Scan Scalability"): SUM over a
// continuously updated column, snapshot stability, scans concurrent
// with updates and merges.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "core/query.h"
#include "core/table.h"

namespace lstore {
namespace {

TableConfig ScanConfig(bool merge_thread) {
  TableConfig cfg;
  cfg.range_size = 128;
  cfg.insert_range_size = 128;
  cfg.tail_page_slots = 32;
  cfg.merge_threshold = 64;
  cfg.enable_merge_thread = merge_thread;
  return cfg;
}

class ScanTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kRows = 500;

  ScanTest() : table_("s", Schema(3), ScanConfig(false)) {
    Txn txn = table_.Begin();
    for (Value k = 0; k < kRows; ++k) {
      EXPECT_TRUE(table_.Insert(txn, {k, 1, k}).ok());
    }
    EXPECT_TRUE(txn.Commit().ok());
  }

  uint64_t Sum(ColumnId col) {
    uint64_t sum = 0;
    EXPECT_TRUE(table_.NewQuery().Sum(col, &sum).ok());
    return sum;
  }

  Table table_;
};

TEST_F(ScanTest, SumOverFreshTable) {
  EXPECT_EQ(Sum(1), kRows);  // all ones
  EXPECT_EQ(Sum(2), kRows * (kRows - 1) / 2);
}

TEST_F(ScanTest, SumReflectsCommittedUpdates) {
  Txn txn = table_.Begin();
  ASSERT_TRUE(table_.Update(txn, 10, 0b010, {0, 5, 0}).ok());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(Sum(1), kRows + 4);
}

TEST_F(ScanTest, SumIgnoresUncommittedUpdates) {
  Txn open = table_.Begin();
  ASSERT_TRUE(table_.Update(open, 10, 0b010, {0, 100, 0}).ok());
  EXPECT_EQ(Sum(1), kRows);
  open.Abort();
  EXPECT_EQ(Sum(1), kRows);
}

TEST_F(ScanTest, SumIgnoresDeletedRecords) {
  Txn txn = table_.Begin();
  ASSERT_TRUE(table_.Delete(txn, 42).ok());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(Sum(1), kRows - 1);
}

TEST_F(ScanTest, SumSameBeforeAndAfterMerge) {
  Random rng(1);
  for (int i = 0; i < 300; ++i) {
    Txn txn = table_.Begin();
    Value key = rng.Uniform(kRows);
    ASSERT_TRUE(table_.Update(txn, key, 0b010, {0, 1, 0}).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  uint64_t before = Sum(1);
  table_.FlushAll();
  table_.epochs().TryReclaim();
  EXPECT_EQ(Sum(1), before);
  EXPECT_EQ(before, kRows);  // all updates wrote 1 again
}

TEST_F(ScanTest, PartialRangeScan) {
  uint64_t sum = 0;
  ASSERT_TRUE(table_.NewQuery().Range(100, 50).Sum(2, &sum).ok());
  uint64_t expect = 0;
  for (uint64_t k = 100; k < 150; ++k) expect += k;
  EXPECT_EQ(sum, expect);
}

TEST_F(ScanTest, SnapshotScanIsStableAgainstLaterUpdates) {
  Timestamp snap = table_.Now();
  for (Value k = 0; k < 100; ++k) {
    Txn txn = table_.Begin();
    ASSERT_TRUE(table_.Update(txn, k, 0b010, {0, 1000, 0}).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  uint64_t sum = 0;
  ASSERT_TRUE(table_.NewQuery().AsOf(snap).Sum(1, &sum).ok());
  EXPECT_EQ(sum, kRows);  // the old snapshot
}

TEST_F(ScanTest, VisitDeliversKeysAndProjectedColumns) {
  uint64_t rows = 0, key_sum = 0;
  ASSERT_TRUE(table_.NewQuery()
                  .Project(0b010)
                  .Visit([&](Value key, const std::vector<Value>& row) {
                    ++rows;
                    key_sum += key;
                    EXPECT_EQ(row[1], 1u);
                    EXPECT_EQ(row[2], kNull);  // not projected
                  })
                  .ok());
  EXPECT_EQ(rows, kRows);
  EXPECT_EQ(key_sum, kRows * (kRows - 1) / 2);
}

TEST_F(ScanTest, CountAndPredicates) {
  uint64_t n = 0;
  ASSERT_TRUE(table_.NewQuery()
                  .Where(2, [](Value v) { return v < 100; })
                  .Count(&n)
                  .ok());
  EXPECT_EQ(n, 100u);
  std::vector<Value> keys;
  ASSERT_TRUE(table_.NewQuery().Where(2, Value{42}).Keys(&keys).ok());
  EXPECT_EQ(keys, (std::vector<Value>{42}));
}

// The invariant at the heart of real-time OLAP: concurrent balanced
// transfers never change the aggregate a snapshot scan observes.
TEST(ScanConcurrencyTest, SumConservationUnderConcurrentTransfers) {
  Table table("c", Schema(3), ScanConfig(true));
  constexpr uint64_t kRows = 256;
  constexpr Value kInitial = 1000;
  {
    Txn txn = table.Begin();
    for (Value k = 0; k < kRows; ++k) {
      ASSERT_TRUE(table.Insert(txn, {k, kInitial, 0}).ok());
    }
    ASSERT_TRUE(txn.Commit().ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> transfers{0};
  // Writers move amounts between rows; every committed txn is
  // balance-preserving.
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      Random rng(55 + t);
      while (!stop.load()) {
        Value from = rng.Uniform(kRows), to = rng.Uniform(kRows);
        if (from == to) continue;
        Value amount = 1 + rng.Uniform(5);
        // Serializable: read validation rejects lost updates, which
        // read-committed would permit (and which would break the
        // conservation invariant this test checks).
        Txn txn = table.Begin(IsolationLevel::kSerializable);
        std::vector<Value> a, b;
        if (!table.Read(txn, from, 0b010, &a).ok() ||
            !table.Read(txn, to, 0b010, &b).ok() || a[1] < amount) {
          txn.Abort();
          continue;
        }
        std::vector<Value> row(3, 0);
        row[1] = a[1] - amount;
        if (!table.Update(txn, from, 0b010, row).ok()) {
          txn.Abort();
          continue;
        }
        row[1] = b[1] + amount;
        if (!table.Update(txn, to, 0b010, row).ok()) {
          txn.Abort();
          continue;
        }
        if (txn.Commit().ok()) transfers.fetch_add(1);
      }
    });
  }
  // Scanner verifies conservation on live snapshots. Keep scanning
  // until the writers have actually committed work (on a single-core
  // host they may not be scheduled immediately) or a deadline passes.
  uint64_t expected = kRows * kInitial;
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  int i = 0;
  while ((i < 50 || transfers.load() == 0) &&
         std::chrono::steady_clock::now() < deadline) {
    uint64_t sum = 0;
    ASSERT_TRUE(table.NewQuery().Sum(1, &sum).ok());
    EXPECT_EQ(sum, expected) << "iteration " << i;
    ++i;
    std::this_thread::yield();
  }
  stop = true;
  for (auto& th : writers) th.join();
  EXPECT_GT(transfers.load(), 0u);
  // Final state conserved too, after merges settle.
  table.WaitForMergeQueue();
  table.FlushAll();
  uint64_t sum = 0;
  ASSERT_TRUE(table.NewQuery().Sum(1, &sum).ok());
  EXPECT_EQ(sum, expected);
}

}  // namespace
}  // namespace lstore
