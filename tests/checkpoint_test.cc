// Durability subsystem tests (Section 5.1.3): lineage-consistent
// checkpoints, redo-log LSNs + truncation, full restart recovery
// through Database::Open, and fault injection (torn log tails, bit
// flips in checkpointed pages, crash between checkpoint and log
// truncation).

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "checkpoint/checkpoint_manager.h"
#include "checkpoint/serde.h"
#include "core/database.h"
#include "core/query.h"
#include "core/table.h"
#include "log/redo_log.h"

namespace lstore {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::string(::testing::TempDir()) + "lstore_ckpt_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static TableConfig SmallConfig() {
    TableConfig cfg;
    cfg.range_size = 32;
    cfg.insert_range_size = 32;
    cfg.tail_page_slots = 8;
    cfg.merge_threshold = 1u << 20;  // manual merges only
    cfg.enable_merge_thread = false;
    return cfg;
  }

  static uint64_t LogFileBytes(const std::string& path) {
    struct ::stat st;
    return ::stat(path.c_str(), &st) == 0 ? st.st_size : 0;
  }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// RedoLog: LSNs, truncation, tail repair
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, LogAssignsLsnsAndTruncates) {
  std::filesystem::create_directories(dir_);
  std::string path = dir_ + "/t.log";
  {
    RedoLog log;
    ASSERT_TRUE(log.Open(path, true).ok());
    for (int i = 0; i < 6; ++i) {
      LogRecord rec;
      rec.type = LogRecordType::kCommit;
      rec.txn_id = kTxnIdTag | (10 + i);
      rec.commit_time = 10 + i;
      EXPECT_EQ(log.Append(rec), static_cast<uint64_t>(i + 1));
    }
    ASSERT_TRUE(log.Flush(false).ok());
    EXPECT_EQ(log.last_lsn(), 6u);
    ASSERT_TRUE(log.TruncateTo(4).ok());
    // LSNs continue across the truncation.
    LogRecord rec;
    rec.type = LogRecordType::kAbort;
    rec.txn_id = kTxnIdTag | 99;
    EXPECT_EQ(log.Append(rec), 7u);
    ASSERT_TRUE(log.Flush(false).ok());
  }
  std::vector<uint64_t> lsns;
  RedoLog::ReplayStats stats;
  ASSERT_TRUE(RedoLog::Replay(
                  path,
                  [&](const LogRecord&, uint64_t lsn) { lsns.push_back(lsn); },
                  &stats)
                  .ok());
  EXPECT_EQ(lsns, (std::vector<uint64_t>{5, 6, 7}));
  EXPECT_EQ(stats.base_lsn, 4u);
  EXPECT_EQ(stats.last_lsn, 7u);
  EXPECT_TRUE(stats.clean_end);
}

TEST_F(CheckpointTest, LogOpenRestoresLsnAndRepairsTornTail) {
  std::filesystem::create_directories(dir_);
  std::string path = dir_ + "/t.log";
  {
    RedoLog log;
    ASSERT_TRUE(log.Open(path, true).ok());
    for (int i = 0; i < 3; ++i) {
      LogRecord rec;
      rec.type = LogRecordType::kCommit;
      rec.txn_id = kTxnIdTag | (10 + i);
      rec.commit_time = 10 + i;
      log.Append(rec);
    }
    ASSERT_TRUE(log.Flush(false).ok());
  }
  // Crash mid-write: chop the final frame.
  ASSERT_EQ(0, ::truncate(path.c_str(), LogFileBytes(path) - 2));
  {
    RedoLog log;
    ASSERT_TRUE(log.Open(path, false).ok());
    EXPECT_EQ(log.last_lsn(), 2u);  // torn record discarded
    LogRecord rec;
    rec.type = LogRecordType::kAbort;
    rec.txn_id = kTxnIdTag | 50;
    EXPECT_EQ(log.Append(rec), 3u);
    ASSERT_TRUE(log.Flush(false).ok());
  }
  // The repaired log replays cleanly: 2 old records + the new one.
  int count = 0;
  RedoLog::ReplayStats stats;
  ASSERT_TRUE(RedoLog::Replay(
                  path, [&](const LogRecord&, uint64_t) { ++count; }, &stats)
                  .ok());
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(stats.clean_end);
}

// ---------------------------------------------------------------------------
// Round-trip durability (the acceptance scenario)
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, RoundTripAcrossTwoTablesWithTimeTravel) {
  Timestamp before_update = 0, after_update = 0;
  uint64_t accounts_watermark = 0;
  {
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(dir_, &db).ok());
    ASSERT_TRUE(db->CreateTable("accounts", Schema(3), SmallConfig()).ok());
    ASSERT_TRUE(db->CreateTable("orders", Schema(4), SmallConfig()).ok());
    Table* accounts = db->GetTable("accounts");
    Table* orders = db->GetTable("orders");

    Txn load = db->Begin();
    for (Value k = 0; k < 50; ++k) {
      ASSERT_TRUE(accounts->Insert(load, {k, 1000 + k, 7}).ok());
      ASSERT_TRUE(orders->Insert(load, {k, k * 2, k * 3, 1}).ok());
    }
    ASSERT_TRUE(load.Commit().ok());

    before_update = db->Now();
    Txn mut = db->Begin();
    for (Value k = 0; k < 50; k += 5) {
      ASSERT_TRUE(accounts->Update(mut, k, 0b010, {0, 2000 + k, 0}).ok());
    }
    ASSERT_TRUE(orders->Update(mut, 10, 0b0100, {0, 0, 777, 0}).ok());
    ASSERT_TRUE(mut.Commit().ok());
    after_update = db->Now();

    Txn del = db->Begin();
    ASSERT_TRUE(accounts->Delete(del, 49).ok());
    ASSERT_TRUE(orders->Delete(del, 48).ok());
    ASSERT_TRUE(del.Commit().ok());

    ASSERT_TRUE(db->Checkpoint().ok());
    // The redo log is truncated to the checkpoint watermark: nothing
    // is left to replay.
    int replayed = 0;
    RedoLog::ReplayStats stats;
    ASSERT_TRUE(RedoLog::Replay(
                    dir_ + "/accounts.log",
                    [&](const LogRecord&, uint64_t) { ++replayed; }, &stats)
                    .ok());
    EXPECT_EQ(replayed, 0);
    EXPECT_GT(stats.base_lsn, 0u);
    accounts_watermark = stats.base_lsn;
    // Crash: the database object dies with all in-memory state.
  }

  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(dir_, &db).ok());
  ASSERT_EQ(db->TableNames().size(), 2u);
  Table* accounts = db->GetTable("accounts");
  Table* orders = db->GetTable("orders");
  ASSERT_NE(accounts, nullptr);
  ASSERT_NE(orders, nullptr);

  Txn r = db->Begin();
  std::vector<Value> out;
  for (Value k = 0; k < 48; ++k) {
    ASSERT_TRUE(accounts->Read(r, k, 0b111, &out).ok()) << k;
    Value expect_balance = (k % 5 == 0) ? 2000 + k : 1000 + k;
    EXPECT_EQ(out[1], expect_balance) << k;
    EXPECT_EQ(out[2], 7u) << k;
    ASSERT_TRUE(orders->Read(r, k, 0b1111, &out).ok()) << k;
    EXPECT_EQ(out[2], k == 10 ? 777 : k * 3) << k;
  }
  // Deletes survived.
  EXPECT_TRUE(accounts->Read(r, 49, 0b111, &out).IsNotFound());
  EXPECT_TRUE(orders->Read(r, 48, 0b1111, &out).IsNotFound());
  (void)r.Commit();

  // Historic versions remain readable under time travel.
  ASSERT_TRUE(accounts->ReadAsOf(10, before_update, 0b010, &out).ok());
  EXPECT_EQ(out[1], 1010u);
  ASSERT_TRUE(accounts->ReadAsOf(10, after_update, 0b010, &out).ok());
  EXPECT_EQ(out[1], 2010u);
  ASSERT_TRUE(accounts->ReadAsOf(49, after_update, 0b010, &out).ok());
  EXPECT_EQ(out[1], 1049u);  // deleted later, alive at this snapshot
  ASSERT_TRUE(orders->ReadAsOf(10, before_update, 0b0100, &out).ok());
  EXPECT_EQ(out[2], 30u);

  // New transactions work and LSNs continue beyond the old watermark.
  Txn w = db->Begin();
  ASSERT_TRUE(accounts->Insert(w, {100, 1, 2}).ok());
  ASSERT_TRUE(w.Commit().ok());
  RedoLog::ReplayStats stats;
  ASSERT_TRUE(RedoLog::Replay(
                  dir_ + "/accounts.log", [](const LogRecord&, uint64_t) {},
                  &stats)
                  .ok());
  EXPECT_GT(stats.last_lsn, accounts_watermark);
}

TEST_F(CheckpointTest, RecoversFromLogAloneWithoutCheckpoint) {
  {
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(dir_, &db).ok());
    ASSERT_TRUE(db->CreateTable("t", Schema(3), SmallConfig()).ok());
    Txn txn = db->Begin();
    for (Value k = 0; k < 10; ++k) {
      ASSERT_TRUE(db->GetTable("t")->Insert(txn, {k, k * 7, 0}).ok());
    }
    ASSERT_TRUE(txn.Commit().ok());
    // No checkpoint: the catalog + log carry everything.
  }
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(dir_, &db).ok());
  Table* t = db->GetTable("t");
  ASSERT_NE(t, nullptr);
  Txn r = db->Begin();
  std::vector<Value> out;
  ASSERT_TRUE(t->Read(r, 4, 0b010, &out).ok());
  EXPECT_EQ(out[1], 28u);
  (void)r.Commit();
}

TEST_F(CheckpointTest, PostCheckpointWritesReplayFromLogTail) {
  {
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(dir_, &db).ok());
    ASSERT_TRUE(db->CreateTable("t", Schema(3), SmallConfig()).ok());
    Table* t = db->GetTable("t");
    Txn a = db->Begin();
    for (Value k = 0; k < 10; ++k) {
      ASSERT_TRUE(t->Insert(a, {k, k, 0}).ok());
    }
    ASSERT_TRUE(a.Commit().ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    // Writes after the checkpoint live only in the log tail.
    Txn b = db->Begin();
    ASSERT_TRUE(t->Update(b, 3, 0b010, {0, 999, 0}).ok());
    ASSERT_TRUE(t->Insert(b, {20, 20, 20}).ok());
    ASSERT_TRUE(b.Commit().ok());
    Txn c = db->Begin();
    ASSERT_TRUE(t->Delete(c, 7).ok());
    ASSERT_TRUE(c.Commit().ok());
  }
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(dir_, &db).ok());
  Table* t = db->GetTable("t");
  Txn r = db->Begin();
  std::vector<Value> out;
  ASSERT_TRUE(t->Read(r, 3, 0b010, &out).ok());
  EXPECT_EQ(out[1], 999u);
  ASSERT_TRUE(t->Read(r, 20, 0b111, &out).ok());
  EXPECT_EQ(out[2], 20u);
  EXPECT_TRUE(t->Read(r, 7, 0b010, &out).IsNotFound());
  (void)r.Commit();
}

TEST_F(CheckpointTest, TransactionOpenDuringCheckpointResolvedByLogTail) {
  {
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(dir_, &db).ok());
    ASSERT_TRUE(db->CreateTable("t", Schema(3), SmallConfig()).ok());
    Table* t = db->GetTable("t");
    Txn setup = db->Begin();
    ASSERT_TRUE(t->Insert(setup, {1, 10, 0}).ok());
    ASSERT_TRUE(t->Insert(setup, {2, 20, 0}).ok());
    ASSERT_TRUE(setup.Commit().ok());

    // Two in-flight transactions at checkpoint time: one commits
    // after the checkpoint (outcome in the log tail), one never does.
    Txn wins = db->Begin();
    ASSERT_TRUE(t->Update(wins, 1, 0b010, {0, 111, 0}).ok());
    Txn loses = db->Begin();
    ASSERT_TRUE(t->Update(loses, 2, 0b010, {0, 222, 0}).ok());

    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(wins.Commit().ok());
    // `loses` crashes without an outcome record.
  }
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(dir_, &db).ok());
  Table* t = db->GetTable("t");
  Txn r = db->Begin();
  std::vector<Value> out;
  ASSERT_TRUE(t->Read(r, 1, 0b010, &out).ok());
  EXPECT_EQ(out[1], 111u);  // committed after the watermark
  ASSERT_TRUE(t->Read(r, 2, 0b010, &out).ok());
  EXPECT_EQ(out[1], 20u);  // rolled back: no commit record
  (void)r.Commit();
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, TornLogTailRecoversCommittedPrefix) {
  {
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(dir_, &db).ok());
    ASSERT_TRUE(db->CreateTable("t", Schema(3), SmallConfig()).ok());
    Table* t = db->GetTable("t");
    Txn a = db->Begin();
    for (Value k = 0; k < 5; ++k) {
      ASSERT_TRUE(t->Insert(a, {k, k, 0}).ok());
    }
    ASSERT_TRUE(a.Commit().ok());
    Txn b = db->Begin();
    ASSERT_TRUE(t->Update(b, 2, 0b010, {0, 55, 0}).ok());
    ASSERT_TRUE(b.Commit().ok());
  }
  // Crash mid-write: the final bytes of the log are torn off.
  std::string log = dir_ + "/t.log";
  ASSERT_EQ(0, ::truncate(log.c_str(), LogFileBytes(log) - 3));

  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(dir_, &db).ok());
  Table* t = db->GetTable("t");
  Txn r = db->Begin();
  std::vector<Value> out;
  // The torn commit record aborts txn b; the first transaction stands.
  ASSERT_TRUE(t->Read(r, 2, 0b010, &out).ok());
  EXPECT_EQ(out[1], 2u);
  ASSERT_TRUE(t->Read(r, 4, 0b010, &out).ok());
  EXPECT_EQ(out[1], 4u);
  (void)r.Commit();
}

TEST_F(CheckpointTest, FlippedByteInCheckpointFailsCleanly) {
  {
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(dir_, &db).ok());
    ASSERT_TRUE(db->CreateTable("t", Schema(3), SmallConfig()).ok());
    Table* t = db->GetTable("t");
    Txn a = db->Begin();
    for (Value k = 0; k < 20; ++k) {
      ASSERT_TRUE(t->Insert(a, {k, k, 0}).ok());
    }
    ASSERT_TRUE(a.Commit().ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  // Flip one byte in the middle of the checkpointed pages.
  std::string ckpt;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    if (e.path().extension() == ".ckpt") ckpt = e.path().string();
  }
  ASSERT_FALSE(ckpt.empty());
  {
    std::FILE* f = std::fopen(ckpt.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long sz = std::ftell(f);
    std::fseek(f, sz / 2, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, sz / 2, SEEK_SET);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }
  std::unique_ptr<Database> db;
  Status s = Database::Open(dir_, &db);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(CheckpointTest, CrashBetweenCheckpointAndTruncationConverges) {
  DurabilityOptions opts;
  opts.truncate_log_after_checkpoint = false;  // simulate the crash
  {
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(dir_, opts, &db).ok());
    ASSERT_TRUE(db->CreateTable("t", Schema(3), SmallConfig()).ok());
    Table* t = db->GetTable("t");
    Txn a = db->Begin();
    for (Value k = 0; k < 10; ++k) {
      ASSERT_TRUE(t->Insert(a, {k, k * 3, 0}).ok());
    }
    ASSERT_TRUE(a.Commit().ok());
    Txn u = db->Begin();
    ASSERT_TRUE(t->Update(u, 5, 0b010, {0, 500, 0}).ok());
    ASSERT_TRUE(u.Commit().ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    // The full log is still on disk (manifest written, truncation
    // "crashed"): replay below the watermark must be idempotent.
    int replayed = 0;
    ASSERT_TRUE(RedoLog::Replay(dir_ + "/t.log",
                                [&](const LogRecord&) { ++replayed; })
                    .ok());
    EXPECT_GT(replayed, 0);
  }
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(dir_, opts, &db).ok());
  Table* t = db->GetTable("t");
  Txn r = db->Begin();
  std::vector<Value> out;
  ASSERT_TRUE(t->Read(r, 5, 0b010, &out).ok());
  EXPECT_EQ(out[1], 500u);
  ASSERT_TRUE(t->Read(r, 9, 0b010, &out).ok());
  EXPECT_EQ(out[1], 27u);
  (void)r.Commit();
}

// ---------------------------------------------------------------------------
// Lineage state: merges, historic compression, secondary indexes
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, MergedAndHistoricStateSurvivesRestart) {
  Timestamp early = 0;
  {
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(dir_, &db).ok());
    ASSERT_TRUE(db->CreateTable("t", Schema(3), SmallConfig()).ok());
    Table* t = db->GetTable("t");
    Txn a = db->Begin();
    for (Value k = 0; k < 32; ++k) {
      ASSERT_TRUE(t->Insert(a, {k, k, 0}).ok());
    }
    ASSERT_TRUE(a.Commit().ok());
    early = db->Now();
    for (int round = 0; round < 3; ++round) {
      Txn u = db->Begin();
      for (Value k = 0; k < 32; ++k) {
        ASSERT_TRUE(
            t->Update(u, k, 0b010, {0, 1000 * (round + 1) + k, 0}).ok());
      }
      ASSERT_TRUE(u.Commit().ok());
    }
    t->FlushAll();                       // consolidate into base pages
    ASSERT_GT(t->CompressHistoricNow(0), 0u);  // move old tail versions
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(dir_, &db).ok());
  Table* t = db->GetTable("t");
  EXPECT_GT(t->RangeTps(0), 0u);  // merge lineage restored
  Txn r = db->Begin();
  std::vector<Value> out;
  for (Value k = 0; k < 32; ++k) {
    ASSERT_TRUE(t->Read(r, k, 0b010, &out).ok());
    EXPECT_EQ(out[1], 3000 + k);
  }
  (void)r.Commit();
  // Versions that live in the compressed historic store still answer
  // time-travel queries after restart.
  ASSERT_TRUE(t->ReadAsOf(4, early, 0b010, &out).ok());
  EXPECT_EQ(out[1], 4u);
}

TEST_F(CheckpointTest, SecondaryIndexesRebuiltOnOpen) {
  {
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(dir_, &db).ok());
    ASSERT_TRUE(db->CreateTable("t", Schema(3), SmallConfig()).ok());
    ASSERT_TRUE(db->CreateTable("u", Schema(3), SmallConfig()).ok());
    Table* t = db->GetTable("t");
    Table* u = db->GetTable("u");
    Txn a = db->Begin();
    for (Value k = 0; k < 20; ++k) {
      ASSERT_TRUE(t->Insert(a, {k, k % 4, 0}).ok());
      ASSERT_TRUE(u->Insert(a, {k, k % 5, 0}).ok());
    }
    ASSERT_TRUE(a.Commit().ok());
    // Index on t reaches the durable state via the checkpoint
    // manifest; index on u only via the catalog (no checkpoint after).
    t->CreateSecondaryIndex(1);
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(db->CreateSecondaryIndex("u", 1).ok());
  }
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(dir_, &db).ok());
  std::vector<Value> keys;
  ASSERT_TRUE(db->GetTable("t")
                  ->NewQuery()
                  .Where(1, Value{2})
                  .AsOf(db->Now())
                  .Keys(&keys)
                  .ok());
  EXPECT_EQ(keys, (std::vector<Value>{2, 6, 10, 14, 18}));
  ASSERT_TRUE(db->GetTable("u")
                  ->NewQuery()
                  .Where(1, Value{2})
                  .AsOf(db->Now())
                  .Keys(&keys)
                  .ok());
  EXPECT_EQ(keys, (std::vector<Value>{2, 7, 12, 17}));
}

TEST_F(CheckpointTest, TableLifecycleSurvivesRestart) {
  {
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(dir_, &db).ok());
    ASSERT_TRUE(db->CreateTable("keep", Schema(3), SmallConfig()).ok());
    ASSERT_TRUE(db->CreateTable("drop_me", Schema(3), SmallConfig()).ok());
    Txn a = db->Begin();
    ASSERT_TRUE(db->GetTable("keep")->Insert(a, {1, 2, 3}).ok());
    ASSERT_TRUE(a.Commit().ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(db->DropTable("drop_me").ok());
    // Created after the checkpoint: recovered from catalog + log only.
    ASSERT_TRUE(db->CreateTable("late", Schema(2), SmallConfig()).ok());
    Txn b = db->Begin();
    ASSERT_TRUE(db->GetTable("late")->Insert(b, {7, 70}).ok());
    ASSERT_TRUE(b.Commit().ok());
  }
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(dir_, &db).ok());
  EXPECT_EQ(db->GetTable("drop_me"), nullptr);
  ASSERT_NE(db->GetTable("keep"), nullptr);
  ASSERT_NE(db->GetTable("late"), nullptr);
  Txn r = db->Begin();
  std::vector<Value> out;
  ASSERT_TRUE(db->GetTable("keep")->Read(r, 1, 0b111, &out).ok());
  EXPECT_EQ(out[2], 3u);
  ASSERT_TRUE(db->GetTable("late")->Read(r, 7, 0b11, &out).ok());
  EXPECT_EQ(out[1], 70u);
  (void)r.Commit();
}

TEST_F(CheckpointTest, RecreatedTableDoesNotResurrectDroppedData) {
  {
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(dir_, &db).ok());
    ASSERT_TRUE(db->CreateTable("t", Schema(3), SmallConfig()).ok());
    Table* t = db->GetTable("t");
    Txn a = db->Begin();
    for (Value k = 0; k < 20; ++k) {
      ASSERT_TRUE(t->Insert(a, {k, 111, 0}).ok());
    }
    ASSERT_TRUE(a.Commit().ok());
    // Checkpoint pins the old incarnation in the manifest with a high
    // watermark; a stale entry must not shadow the new table's log.
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(db->DropTable("t").ok());
    ASSERT_TRUE(db->CreateTable("t", Schema(3), SmallConfig()).ok());
    t = db->GetTable("t");
    Txn b = db->Begin();
    ASSERT_TRUE(t->Insert(b, {5, 222, 0}).ok());
    ASSERT_TRUE(b.Commit().ok());
  }
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(dir_, &db).ok());
  Table* t = db->GetTable("t");
  Txn r = db->Begin();
  std::vector<Value> out;
  ASSERT_TRUE(t->Read(r, 5, 0b010, &out).ok());
  EXPECT_EQ(out[1], 222u);  // new incarnation, not the dropped one
  EXPECT_TRUE(t->Read(r, 6, 0b010, &out).IsNotFound());
  (void)r.Commit();
}

TEST_F(CheckpointTest, BackgroundCheckpointThreadTriggers) {
  DurabilityOptions opts;
  opts.checkpoint_interval_ms = 20;
  {
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(dir_, opts, &db).ok());
    ASSERT_TRUE(db->CreateTable("t", Schema(3), SmallConfig()).ok());
    Table* t = db->GetTable("t");
    for (Value k = 0; k < 50; ++k) {
      Txn txn = db->Begin();
      ASSERT_TRUE(t->Insert(txn, {k, k, 0}).ok());
      ASSERT_TRUE(txn.Commit().ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    for (int i = 0; i < 100 &&
                    db->checkpoint_manager()->checkpoints_taken() == 0;
         ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GT(db->checkpoint_manager()->checkpoints_taken(), 0u);
    EXPECT_TRUE(db->checkpoint_manager()->last_background_status().ok());
  }
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(dir_, &db).ok());
  Table* t = db->GetTable("t");
  Txn r = db->Begin();
  std::vector<Value> out;
  ASSERT_TRUE(t->Read(r, 42, 0b010, &out).ok());
  EXPECT_EQ(out[1], 42u);
  (void)r.Commit();
}

TEST_F(CheckpointTest, RepeatedCheckpointsPruneOldFiles) {
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(dir_, &db).ok());
  ASSERT_TRUE(db->CreateTable("t", Schema(3), SmallConfig()).ok());
  Table* t = db->GetTable("t");
  for (int round = 0; round < 3; ++round) {
    Txn txn = db->Begin();
    ASSERT_TRUE(t->Insert(txn, {static_cast<Value>(round), 1, 2}).ok());
    ASSERT_TRUE(txn.Commit().ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  int ckpt_files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    if (e.path().extension() == ".ckpt") ++ckpt_files;
  }
  EXPECT_EQ(ckpt_files, 1);  // only the latest checkpoint remains
}

}  // namespace
}  // namespace lstore
