// Query-layer tests: builder semantics (projection, row ranges,
// predicates, time travel), parallel partitioned execution, the
// secondary-index candidate plan, and — the crucial invariant —
// parallel queries racing update-merge, insert-merge, and historic
// compression must match single-threaded results exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "core/query.h"
#include "core/table.h"

namespace lstore {
namespace {

TableConfig QueryConfig(bool merge_thread) {
  TableConfig cfg;
  cfg.range_size = 128;
  cfg.insert_range_size = 128;
  cfg.tail_page_slots = 32;
  cfg.merge_threshold = 64;
  cfg.enable_merge_thread = merge_thread;
  return cfg;
}

class QueryTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kRows = 600;

  QueryTest() : table_("q", Schema(4), QueryConfig(false)) {
    Txn txn = table_.Begin();
    std::vector<std::vector<Value>> rows;
    for (Value k = 0; k < kRows; ++k) {
      rows.push_back({k, 1, k, k % 10});
    }
    EXPECT_TRUE(table_.InsertBatch(txn, rows).ok());
    EXPECT_TRUE(txn.Commit().ok());
  }

  Table table_;
};

TEST_F(QueryTest, SumCountOverFreshTable) {
  uint64_t sum = 0, rows = 0;
  ASSERT_TRUE(table_.NewQuery().Sum(1, &sum, &rows).ok());
  EXPECT_EQ(sum, kRows);
  EXPECT_EQ(rows, kRows);
  ASSERT_TRUE(table_.NewQuery().Sum(2, &sum).ok());
  EXPECT_EQ(sum, kRows * (kRows - 1) / 2);
  uint64_t n = 0;
  ASSERT_TRUE(table_.NewQuery().Count(&n).ok());
  EXPECT_EQ(n, kRows);
}

TEST_F(QueryTest, MinMaxTerminals) {
  Value v = 0;
  uint64_t rows = 0;
  ASSERT_TRUE(table_.NewQuery().Min(2, &v, &rows).ok());
  EXPECT_EQ(v, 0u);
  EXPECT_EQ(rows, kRows);
  ASSERT_TRUE(table_.NewQuery().Max(2, &v, &rows).ok());
  EXPECT_EQ(v, kRows - 1);
  EXPECT_EQ(rows, kRows);
  // Filters compose: col2 == k restricted to k % 10 == 4.
  ASSERT_TRUE(table_.NewQuery().Where(3, Value{4}).Min(2, &v).ok());
  EXPECT_EQ(v, 4u);
  ASSERT_TRUE(table_.NewQuery().Where(3, Value{4}).Max(2, &v).ok());
  EXPECT_EQ(v, kRows - 6);  // 594 for kRows = 600
  // Row ranges restrict the scan interval.
  ASSERT_TRUE(table_.NewQuery().Range(100, 50).Min(2, &v).ok());
  EXPECT_EQ(v, 100u);
  ASSERT_TRUE(table_.NewQuery().Range(100, 50).Max(2, &v).ok());
  EXPECT_EQ(v, 149u);
  // No matching rows: the result is ∅.
  ASSERT_TRUE(table_.NewQuery()
                  .Where(2, [](Value x) { return x > kRows * 2; })
                  .Min(2, &v, &rows)
                  .ok());
  EXPECT_EQ(v, kNull);
  EXPECT_EQ(rows, 0u);
  // Merged fast path (compressed-segment cursors) gives the same
  // answers, sequential or parallel.
  table_.FlushAll();
  ASSERT_TRUE(table_.NewQuery().Workers(4).Min(2, &v).ok());
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(table_.NewQuery().Workers(4).Max(2, &v).ok());
  EXPECT_EQ(v, kRows - 1);
}

TEST_F(QueryTest, MinMaxTimeTravelAndDeletes) {
  Timestamp snap = table_.Now();
  {
    Txn txn = table_.Begin();
    // Push the maximum up and delete the old maximum row.
    ASSERT_TRUE(table_.Update(txn, 7, 0b0100, {0, 0, 100000, 0}).ok());
    ASSERT_TRUE(table_.Delete(txn, kRows - 1).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  Value v = 0;
  ASSERT_TRUE(table_.NewQuery().Max(2, &v).ok());
  EXPECT_EQ(v, 100000u);
  // The old snapshot still sees the pre-update world.
  ASSERT_TRUE(table_.NewQuery().AsOf(snap).Max(2, &v).ok());
  EXPECT_EQ(v, kRows - 1);
  uint64_t rows = 0;
  ASSERT_TRUE(table_.NewQuery().Min(2, &v, &rows).ok());
  EXPECT_EQ(v, 0u);
  EXPECT_EQ(rows, kRows - 1);  // the deleted row is gone
}

TEST_F(QueryTest, RowRangeRestriction) {
  uint64_t sum = 0;
  ASSERT_TRUE(table_.NewQuery().Range(100, 50).Sum(2, &sum).ok());
  uint64_t expect = 0;
  for (uint64_t k = 100; k < 150; ++k) expect += k;
  EXPECT_EQ(sum, expect);
  // Range past the end clamps.
  ASSERT_TRUE(table_.NewQuery().Range(kRows - 10, 1000).Sum(1, &sum).ok());
  EXPECT_EQ(sum, 10u);
  // Empty range sums to zero.
  ASSERT_TRUE(table_.NewQuery().Range(kRows, 10).Sum(1, &sum).ok());
  EXPECT_EQ(sum, 0u);
}

TEST_F(QueryTest, PredicatesComposeAndPushDown) {
  // Equality + arbitrary predicate on different columns.
  uint64_t rows = 0, sum = 0;
  ASSERT_TRUE(table_.NewQuery()
                  .Where(3, Value{4})
                  .Where(2, [](Value v) { return v < 300; })
                  .Sum(2, &sum, &rows)
                  .ok());
  uint64_t expect_sum = 0, expect_rows = 0;
  for (uint64_t k = 0; k < kRows; ++k) {
    if (k % 10 == 4 && k < 300) {
      expect_sum += k;
      ++expect_rows;
    }
  }
  EXPECT_EQ(sum, expect_sum);
  EXPECT_EQ(rows, expect_rows);
  // The same result from merged base segments.
  table_.FlushAll();
  uint64_t sum2 = 0, rows2 = 0;
  ASSERT_TRUE(table_.NewQuery()
                  .Where(3, Value{4})
                  .Where(2, [](Value v) { return v < 300; })
                  .Sum(2, &sum2, &rows2)
                  .ok());
  EXPECT_EQ(sum2, expect_sum);
  EXPECT_EQ(rows2, expect_rows);
}

TEST_F(QueryTest, VisitProjectsRequestedColumnsOnly) {
  uint64_t rows = 0;
  ASSERT_TRUE(table_.NewQuery()
                  .Project(0b0100)
                  .Range(10, 5)
                  .Visit([&](Value key, const std::vector<Value>& row) {
                    ++rows;
                    EXPECT_EQ(row[2], key);      // projected
                    EXPECT_EQ(row[1], kNull);    // not projected
                    EXPECT_EQ(row[3], kNull);    // not projected
                  })
                  .ok());
  EXPECT_EQ(rows, 5u);
}

TEST_F(QueryTest, VisitNeverLeaksFilterColumnsAcrossRows) {
  // Mixed fast/slow slots: merge everything, then update a few keys
  // so their chain head moves past the merged TPS (slow path). The
  // reused scratch row must not leak a slow-path row's filter value
  // into a following fast-path row's unprojected column.
  table_.FlushAll();
  for (Value k = 100; k < 110; ++k) {
    Txn txn = table_.Begin();
    ASSERT_TRUE(table_.Update(txn, k, 0b0010, {0, 2, 0, 0}).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  uint64_t rows = 0;
  ASSERT_TRUE(table_.NewQuery()
                  .Project(0b0010)
                  .Where(2, [](Value v) { return v < kRows; })  // col 2 needed
                  .Visit([&](Value key, const std::vector<Value>& row) {
                    ++rows;
                    EXPECT_EQ(row[2], kNull) << "key " << key;  // unprojected
                    EXPECT_EQ(row[3], kNull) << "key " << key;
                  })
                  .ok());
  EXPECT_EQ(rows, kRows);
}

TEST_F(QueryTest, OperationsOnFinishedSessionAreRejected) {
  Txn txn = table_.Begin();
  ASSERT_TRUE(txn.Commit().ok());
  std::vector<Value> out;
  EXPECT_TRUE(table_.Read(txn, 1, 0b0010, &out).IsInvalidArgument());
  EXPECT_TRUE(table_.Insert(txn, {9999, 0, 0, 0}).IsInvalidArgument());
  EXPECT_TRUE(
      table_.Update(txn, 1, 0b0010, {0, 5, 0, 0}).IsInvalidArgument());
  EXPECT_TRUE(
      table_.InsertBatch(txn, {{9998, 0, 0, 0}}).IsInvalidArgument());
  // The rejected insert left no phantom index entry.
  Txn fresh = table_.Begin();
  EXPECT_TRUE(table_.Insert(fresh, {9999, 1, 2, 3}).ok());
  ASSERT_TRUE(fresh.Commit().ok());
}

TEST_F(QueryTest, AsOfReconstructsOldSnapshots) {
  Timestamp snap = table_.Now();
  for (Value k = 0; k < 100; ++k) {
    Txn txn = table_.Begin();
    ASSERT_TRUE(table_.Update(txn, k, 0b0010, {0, 1000, 0, 0}).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  uint64_t sum = 0;
  ASSERT_TRUE(table_.NewQuery().AsOf(snap).Sum(1, &sum).ok());
  EXPECT_EQ(sum, kRows);  // the old snapshot
  ASSERT_TRUE(table_.NewQuery().Sum(1, &sum).ok());
  EXPECT_EQ(sum, kRows - 100 + 100 * 1000);
  // Merging does not change either snapshot.
  table_.FlushAll();
  ASSERT_TRUE(table_.NewQuery().AsOf(snap).Sum(1, &sum).ok());
  EXPECT_EQ(sum, kRows);
}

TEST_F(QueryTest, BadColumnsAreRejected) {
  uint64_t sum = 0;
  EXPECT_TRUE(table_.NewQuery().Sum(9, &sum).IsInvalidArgument());
  EXPECT_TRUE(table_.NewQuery()
                  .Where(17, Value{0})
                  .Count(&sum)
                  .IsInvalidArgument());
}

TEST_F(QueryTest, ParallelMatchesSequential) {
  // Mixed state: some updates, a delete, a partial merge.
  Random rng(7);
  for (int i = 0; i < 400; ++i) {
    Txn txn = table_.Begin();
    ASSERT_TRUE(
        table_.Update(txn, rng.Uniform(kRows), 0b0010, {0, 5, 0, 0}).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  {
    Txn txn = table_.Begin();
    ASSERT_TRUE(table_.Delete(txn, 42).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  table_.InsertMergeNow(0);
  table_.MergeRangeNow(0);

  Timestamp snap = table_.Now();
  uint64_t seq_sum = 0, seq_rows = 0;
  ASSERT_TRUE(
      table_.NewQuery().AsOf(snap).Workers(1).Sum(1, &seq_sum, &seq_rows).ok());
  for (uint32_t workers : {2u, 4u, 8u}) {
    uint64_t par_sum = 0, par_rows = 0;
    ASSERT_TRUE(table_.NewQuery()
                    .AsOf(snap)
                    .Workers(workers)
                    .Sum(1, &par_sum, &par_rows)
                    .ok());
    EXPECT_EQ(par_sum, seq_sum) << workers << " workers";
    EXPECT_EQ(par_rows, seq_rows) << workers << " workers";
  }
  // Parallel Visit delivers the same multiset of keys.
  std::vector<Value> seq_keys, par_keys;
  ASSERT_TRUE(table_.NewQuery().AsOf(snap).Workers(1).Keys(&seq_keys).ok());
  ASSERT_TRUE(table_.NewQuery().AsOf(snap).Workers(8).Keys(&par_keys).ok());
  EXPECT_EQ(par_keys, seq_keys);
}

TEST_F(QueryTest, SecondaryIndexPlanRevalidatesCandidates) {
  table_.CreateSecondaryIndex(3);
  std::vector<Value> keys;
  ASSERT_TRUE(table_.NewQuery().Where(3, Value{7}).Keys(&keys).ok());
  std::vector<Value> expect;
  for (Value k = 7; k < kRows; k += 10) expect.push_back(k);
  EXPECT_EQ(keys, expect);
  // Move key 7 out of bucket 7: the stale posting must be filtered.
  Txn txn = table_.Begin();
  ASSERT_TRUE(table_.Update(txn, 7, 0b1000, {0, 0, 0, 3}).ok());
  ASSERT_TRUE(txn.Commit().ok());
  ASSERT_TRUE(table_.NewQuery().Where(3, Value{7}).Keys(&keys).ok());
  expect.erase(expect.begin());
  EXPECT_EQ(keys, expect);
  // Composing the indexed filter with another predicate still works.
  uint64_t n = 0;
  ASSERT_TRUE(table_.NewQuery()
                  .Where(3, Value{7})
                  .Where(2, [](Value v) { return v < 100; })
                  .Count(&n)
                  .ok());
  EXPECT_EQ(n, 9u);  // 17, 27, ..., 97
}

// The satellite invariant: parallel Sum/Visit racing update-merge,
// insert-merge, and historic compression always observe a consistent
// snapshot — identical to what a single-threaded scan of the same
// snapshot sees (balance conservation makes any divergence visible).
TEST(QueryMaintenanceRaceTest, ParallelScansRaceMergesAndCompression) {
  Table table("race", Schema(3), QueryConfig(true));
  constexpr uint64_t kRows = 512;
  constexpr Value kInitial = 1000;
  {
    Txn txn = table.Begin();
    std::vector<std::vector<Value>> rows;
    for (Value k = 0; k < kRows; ++k) rows.push_back({k, kInitial, 0});
    ASSERT_TRUE(table.InsertBatch(txn, rows).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> transfers{0};
  // Balance-preserving transfers keep the total invariant.
  std::thread writer([&] {
    Random rng(55);
    while (!stop.load()) {
      Value from = rng.Uniform(kRows), to = rng.Uniform(kRows);
      if (from == to) continue;
      Value amount = 1 + rng.Uniform(5);
      Txn txn = table.Begin(IsolationLevel::kSerializable);
      std::vector<Value> a, b;
      if (!table.Read(txn, from, 0b010, &a).ok() ||
          !table.Read(txn, to, 0b010, &b).ok() || a[1] < amount) {
        continue;  // auto-abort
      }
      std::vector<Value> row(3, 0);
      row[1] = a[1] - amount;
      if (!table.Update(txn, from, 0b010, row).ok()) continue;
      row[1] = b[1] + amount;
      if (!table.Update(txn, to, 0b010, row).ok()) continue;
      if (txn.Commit().ok()) transfers.fetch_add(1);
    }
  });
  // Maintenance thread: forces merges and historic compression under
  // the scans (beyond what the background merge thread does).
  std::thread maintenance([&] {
    Random rng(99);
    while (!stop.load()) {
      uint64_t range = rng.Uniform(kRows / 128);
      table.InsertMergeNow(range);
      table.MergeRangeNow(range);
      table.CompressHistoricNow(range);
      table.epochs().TryReclaim();
      std::this_thread::yield();
    }
  });

  const uint64_t expected = kRows * kInitial;
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  int i = 0;
  while ((i < 40 || transfers.load() == 0) &&
         std::chrono::steady_clock::now() < deadline) {
    Timestamp snap = table.Now();
    uint64_t par = 0, seq = 0, par_rows = 0;
    ASSERT_TRUE(
        table.NewQuery().AsOf(snap).Workers(4).Sum(1, &par, &par_rows).ok());
    ASSERT_TRUE(table.NewQuery().AsOf(snap).Workers(1).Sum(1, &seq).ok());
    EXPECT_EQ(par, expected) << "iteration " << i;
    EXPECT_EQ(seq, expected) << "iteration " << i;
    EXPECT_EQ(par_rows, kRows) << "iteration " << i;
    ++i;
  }
  stop = true;
  writer.join();
  maintenance.join();
  EXPECT_GT(transfers.load(), 0u);
  table.WaitForMergeQueue();
  table.FlushAll();
  uint64_t sum = 0;
  ASSERT_TRUE(table.NewQuery().Workers(8).Sum(1, &sum).ok());
  EXPECT_EQ(sum, expected);
}

}  // namespace
}  // namespace lstore
