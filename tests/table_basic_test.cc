// Basic fine-grained manipulation on the L-Store table (Section 3):
// insert, point read with projection, update (with pre-image
// snapshots), delete, and error paths.

#include <gtest/gtest.h>

#include "core/query.h"
#include "core/table.h"

namespace lstore {
namespace {

TableConfig SmallConfig() {
  TableConfig cfg;
  cfg.range_size = 64;
  cfg.insert_range_size = 64;
  cfg.tail_page_slots = 16;
  cfg.merge_threshold = 32;
  cfg.enable_merge_thread = false;  // deterministic foreground tests
  return cfg;
}

class TableBasicTest : public ::testing::Test {
 protected:
  TableBasicTest() : table_("t", Schema(4), SmallConfig()) {}

  // Commits a single-insert transaction.
  Status InsertRow(const std::vector<Value>& row) {
    Txn txn = table_.Begin();
    Status s = table_.Insert(txn, row);
    if (!s.ok()) {
      txn.Abort();
      return s;
    }
    return txn.Commit();
  }

  Status UpdateRow(Value key, ColumnMask mask, const std::vector<Value>& row) {
    Txn txn = table_.Begin();
    Status s = table_.Update(txn, key, mask, row);
    if (!s.ok()) {
      txn.Abort();
      return s;
    }
    return txn.Commit();
  }

  std::vector<Value> ReadRow(Value key, ColumnMask mask,
                             Status* status = nullptr) {
    Txn txn = table_.Begin();
    std::vector<Value> out;
    Status s = table_.Read(txn, key, mask, &out);
    (void)txn.Commit();
    if (status != nullptr) *status = s;
    return out;
  }

  Table table_;
};

TEST_F(TableBasicTest, InsertThenReadAllColumns) {
  ASSERT_TRUE(InsertRow({1, 10, 20, 30}).ok());
  Status s;
  auto row = ReadRow(1, 0b1111, &s);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(row, (std::vector<Value>{1, 10, 20, 30}));
}

TEST_F(TableBasicTest, ProjectionReadsOnlyRequestedColumns) {
  ASSERT_TRUE(InsertRow({1, 10, 20, 30}).ok());
  auto row = ReadRow(1, 0b0100);
  EXPECT_EQ(row[2], 20u);
  EXPECT_EQ(row[0], kNull);  // unrequested columns come back as null
  EXPECT_EQ(row[1], kNull);
  EXPECT_EQ(row[3], kNull);
}

TEST_F(TableBasicTest, ReadMissingKeyIsNotFound) {
  Status s;
  ReadRow(42, 0b1111, &s);
  EXPECT_TRUE(s.IsNotFound());
}

TEST_F(TableBasicTest, DuplicateKeyRejected) {
  ASSERT_TRUE(InsertRow({1, 10, 20, 30}).ok());
  EXPECT_TRUE(InsertRow({1, 11, 21, 31}).IsAlreadyExists());
  // Original row intact.
  EXPECT_EQ(ReadRow(1, 0b0010)[1], 10u);
}

TEST_F(TableBasicTest, UpdateSingleColumn) {
  ASSERT_TRUE(InsertRow({1, 10, 20, 30}).ok());
  ASSERT_TRUE(UpdateRow(1, 0b0010, {0, 11, 0, 0}).ok());
  auto row = ReadRow(1, 0b1111);
  EXPECT_EQ(row, (std::vector<Value>{1, 11, 20, 30}));
}

TEST_F(TableBasicTest, UpdateMultipleColumnsAtOnce) {
  ASSERT_TRUE(InsertRow({1, 10, 20, 30}).ok());
  ASSERT_TRUE(UpdateRow(1, 0b1010, {0, 11, 0, 31}).ok());
  auto row = ReadRow(1, 0b1111);
  EXPECT_EQ(row, (std::vector<Value>{1, 11, 20, 31}));
}

TEST_F(TableBasicTest, RepeatedUpdatesSeeLatest) {
  ASSERT_TRUE(InsertRow({1, 10, 20, 30}).ok());
  for (Value v = 100; v < 110; ++v) {
    ASSERT_TRUE(UpdateRow(1, 0b0010, {0, v, 0, 0}).ok());
  }
  EXPECT_EQ(ReadRow(1, 0b0010)[1], 109u);
}

TEST_F(TableBasicTest, UpdateKeyColumnRejected) {
  ASSERT_TRUE(InsertRow({1, 10, 20, 30}).ok());
  Txn txn = table_.Begin();
  EXPECT_TRUE(table_.Update(txn, 1, 0b0001, {9, 0, 0, 0})
                  .IsInvalidArgument());
  txn.Abort();
}

TEST_F(TableBasicTest, UpdateUnknownColumnRejected) {
  ASSERT_TRUE(InsertRow({1, 10, 20, 30}).ok());
  Txn txn = table_.Begin();
  EXPECT_TRUE(table_.Update(txn, 1, 1ull << 40, {}).IsInvalidArgument());
  txn.Abort();
}

TEST_F(TableBasicTest, InsertArityMismatchRejected) {
  Txn txn = table_.Begin();
  EXPECT_TRUE(table_.Insert(txn, {1, 2}).IsInvalidArgument());
  txn.Abort();
}

TEST_F(TableBasicTest, DeleteMakesRecordInvisible) {
  ASSERT_TRUE(InsertRow({1, 10, 20, 30}).ok());
  Txn txn = table_.Begin();
  ASSERT_TRUE(table_.Delete(txn, 1).ok());
  ASSERT_TRUE(txn.Commit().ok());
  Status s;
  ReadRow(1, 0b1111, &s);
  EXPECT_TRUE(s.IsNotFound());
}

TEST_F(TableBasicTest, UpdateAfterDeleteIsNotFound) {
  ASSERT_TRUE(InsertRow({1, 10, 20, 30}).ok());
  Txn txn = table_.Begin();
  ASSERT_TRUE(table_.Delete(txn, 1).ok());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_TRUE(UpdateRow(1, 0b0010, {0, 99, 0, 0}).IsNotFound());
}

TEST_F(TableBasicTest, DeletedRecordStillVisibleToOlderSnapshot) {
  ASSERT_TRUE(InsertRow({1, 10, 20, 30}).ok());
  Timestamp before = table_.txn_manager().clock().Tick();
  Txn txn = table_.Begin();
  ASSERT_TRUE(table_.Delete(txn, 1).ok());
  ASSERT_TRUE(txn.Commit().ok());
  std::vector<Value> out;
  ASSERT_TRUE(table_.ReadAsOf(1, before, 0b0010, &out).ok());
  EXPECT_EQ(out[1], 10u);
}

TEST_F(TableBasicTest, InsertsSpanMultipleRanges) {
  for (Value k = 0; k < 200; ++k) {  // range_size 64 -> 4 ranges
    ASSERT_TRUE(InsertRow({k, k + 1, k + 2, k + 3}).ok());
  }
  EXPECT_GE(table_.num_ranges(), 3u);
  for (Value k = 0; k < 200; ++k) {
    EXPECT_EQ(ReadRow(k, 0b0010)[1], k + 1);
  }
}

TEST_F(TableBasicTest, MultiStatementTransactionIsAtomicOnAbort) {
  ASSERT_TRUE(InsertRow({1, 10, 20, 30}).ok());
  Txn txn = table_.Begin();
  ASSERT_TRUE(table_.Update(txn, 1, 0b0010, {0, 99, 0, 0}).ok());
  ASSERT_TRUE(table_.Insert(txn, {2, 200, 201, 202}).ok());
  txn.Abort();
  // Neither the update nor the insert took effect.
  EXPECT_EQ(ReadRow(1, 0b0010)[1], 10u);
  Status s;
  ReadRow(2, 0b0001, &s);
  EXPECT_TRUE(s.IsNotFound());
}

TEST_F(TableBasicTest, AbortedInsertKeyIsReusable) {
  Txn txn = table_.Begin();
  ASSERT_TRUE(table_.Insert(txn, {7, 1, 2, 3}).ok());
  txn.Abort();
  EXPECT_TRUE(InsertRow({7, 4, 5, 6}).ok());
  EXPECT_EQ(ReadRow(7, 0b0010)[1], 4u);
}

TEST_F(TableBasicTest, ReadYourOwnWrites) {
  ASSERT_TRUE(InsertRow({1, 10, 20, 30}).ok());
  Txn txn = table_.Begin();
  ASSERT_TRUE(table_.Update(txn, 1, 0b0010, {0, 77, 0, 0}).ok());
  std::vector<Value> out;
  ASSERT_TRUE(table_.Read(txn, 1, 0b0010, &out).ok());
  EXPECT_EQ(out[1], 77u);  // own uncommitted write visible to self
  // ... but not to others.
  Txn other = table_.Begin();
  std::vector<Value> out2;
  ASSERT_TRUE(table_.Read(other, 1, 0b0010, &out2).ok());
  EXPECT_EQ(out2[1], 10u);
  (void)txn.Commit();
  (void)other.Commit();
}

TEST_F(TableBasicTest, UncommittedInsertInvisibleToOthers) {
  Txn txn = table_.Begin();
  ASSERT_TRUE(table_.Insert(txn, {5, 1, 2, 3}).ok());
  Txn other = table_.Begin();
  std::vector<Value> out;
  EXPECT_TRUE(table_.Read(other, 5, 0b1111, &out).IsNotFound());
  (void)txn.Commit();
  (void)other.Commit();
  // After commit it is visible.
  EXPECT_EQ(ReadRow(5, 0b0010)[1], 1u);
}

TEST_F(TableBasicTest, TimeTravelReadSeesEachVersion) {
  ASSERT_TRUE(InsertRow({1, 10, 20, 30}).ok());
  std::vector<Timestamp> stamps;
  stamps.push_back(table_.txn_manager().clock().Tick());
  for (Value v : {100, 200, 300}) {
    ASSERT_TRUE(UpdateRow(1, 0b0010, {0, v, 0, 0}).ok());
    stamps.push_back(table_.txn_manager().clock().Tick());
  }
  std::vector<Value> out;
  ASSERT_TRUE(table_.ReadAsOf(1, stamps[0], 0b0010, &out).ok());
  EXPECT_EQ(out[1], 10u);
  ASSERT_TRUE(table_.ReadAsOf(1, stamps[1], 0b0010, &out).ok());
  EXPECT_EQ(out[1], 100u);
  ASSERT_TRUE(table_.ReadAsOf(1, stamps[2], 0b0010, &out).ok());
  EXPECT_EQ(out[1], 200u);
  ASSERT_TRUE(table_.ReadAsOf(1, stamps[3], 0b0010, &out).ok());
  EXPECT_EQ(out[1], 300u);
}

TEST_F(TableBasicTest, TimeTravelBeforeInsertIsNotFound) {
  Timestamp before = table_.txn_manager().clock().Tick();
  ASSERT_TRUE(InsertRow({1, 10, 20, 30}).ok());
  std::vector<Value> out;
  EXPECT_TRUE(table_.ReadAsOf(1, before, 0b1111, &out).IsNotFound());
}

TEST_F(TableBasicTest, StatsCountOperations) {
  ASSERT_TRUE(InsertRow({1, 10, 20, 30}).ok());
  ASSERT_TRUE(UpdateRow(1, 0b0010, {0, 11, 0, 0}).ok());
  ReadRow(1, 0b0010);
  EXPECT_EQ(table_.stats().inserts.load(), 1u);
  EXPECT_EQ(table_.stats().updates.load(), 1u);
  EXPECT_GE(table_.stats().reads.load(), 1u);
}

TEST_F(TableBasicTest, SecondaryIndexSelectsAndReevaluates) {
  for (Value k = 0; k < 10; ++k) {
    ASSERT_TRUE(InsertRow({k, k % 3, 0, 0}).ok());
  }
  table_.CreateSecondaryIndex(1);
  std::vector<Value> keys;
  ASSERT_TRUE(table_.NewQuery().Where(1, Value{0}).Keys(&keys).ok());
  EXPECT_EQ(keys, (std::vector<Value>{0, 3, 6, 9}));
  // Update key 0's value: index keeps the stale posting but the
  // predicate re-evaluation must filter it (Section 3.1).
  ASSERT_TRUE(UpdateRow(0, 0b0010, {0, 2, 0, 0}).ok());
  ASSERT_TRUE(table_.NewQuery().Where(1, Value{0}).Keys(&keys).ok());
  EXPECT_EQ(keys, (std::vector<Value>{3, 6, 9}));
  // And the new value is findable.
  ASSERT_TRUE(table_.NewQuery().Where(1, Value{2}).Keys(&keys).ok());
  EXPECT_EQ(keys, (std::vector<Value>{0, 2, 5, 8}));
}

}  // namespace
}  // namespace lstore
