// Logical clock used for begin/commit timestamps.
//
// Section 5.1.1: "it receives a begin time from a synchronized clock
// (time is advanced before it is returned)". A single atomic counter
// per database instance provides the total order of begin and commit
// events that the optimistic concurrency protocol relies on.

#ifndef LSTORE_COMMON_CLOCK_H_
#define LSTORE_COMMON_CLOCK_H_

#include <atomic>

#include "common/types.h"

namespace lstore {

/// Monotonic logical clock. `Tick()` advances time before returning
/// it, so no two callers observe the same timestamp.
class LogicalClock {
 public:
  /// Advance the clock and return the new time.
  Timestamp Tick() { return now_.fetch_add(1, std::memory_order_relaxed) + 1; }

  /// Read the current time without advancing.
  Timestamp Now() const { return now_.load(std::memory_order_relaxed); }

  /// Fast-forward (used by recovery to resume beyond replayed times).
  void AdvanceTo(Timestamp t) {
    Timestamp cur = now_.load(std::memory_order_relaxed);
    while (cur < t &&
           !now_.compare_exchange_weak(cur, t, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<Timestamp> now_{0};
};

}  // namespace lstore

#endif  // LSTORE_COMMON_CLOCK_H_
