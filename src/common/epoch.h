// Epoch-based, contention-free resource reclamation.
//
// Section 4.1 / Figure 6: after a merge swaps the page directory to
// the consolidated pages, the outdated base pages "are de-allocated
// once the current readers are drained naturally via an epoch-based
// approach ... the outdated base pages must be kept around as long as
// there is an active query that started before the merge process".
//
// Readers pin the current epoch for the duration of a query via an
// EpochGuard. Retiring a resource records the epoch at retire time;
// the resource is freed once every pinned epoch is newer.

#ifndef LSTORE_COMMON_EPOCH_H_
#define LSTORE_COMMON_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <mutex>

namespace lstore {

class EpochManager {
 public:
  static constexpr uint64_t kIdle = std::numeric_limits<uint64_t>::max();
  static constexpr int kMaxThreads = 256;

  EpochManager();
  ~EpochManager();

  /// Pin the current epoch for the calling thread (query start).
  /// Returns the slot index to pass to Exit.
  int Enter();

  /// Unpin (query end). May opportunistically reclaim.
  void Exit(int slot);

  /// Register a deleter to run once all queries that were active at
  /// the time of the call have finished.
  void Retire(std::function<void()> deleter);

  /// Attempt to free retired resources whose epoch has been drained.
  /// Returns the number of deleters executed.
  size_t TryReclaim();

  /// Run every pending deleter regardless of reader pins. Only safe
  /// during owner teardown, when no readers can exist; owners must
  /// call this BEFORE freeing structures the deleters reference.
  size_t DrainAllUnsafe();

  /// Number of retired-but-not-yet-freed entries (for tests/stats).
  size_t pending() const;

  uint64_t current_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

 private:
  uint64_t MinActiveEpoch() const;

  std::atomic<uint64_t> epoch_{1};
  struct alignas(64) Slot {
    std::atomic<uint64_t> pinned{kIdle};
  };
  Slot slots_[kMaxThreads];
  std::atomic<int> next_slot_hint_{0};

  mutable std::mutex retired_mu_;
  struct Retired {
    uint64_t epoch;
    std::function<void()> deleter;
  };
  std::deque<Retired> retired_;
};

/// RAII epoch pin for the duration of a read/scan.
class EpochGuard {
 public:
  explicit EpochGuard(EpochManager& mgr) : mgr_(&mgr), slot_(mgr.Enter()) {}
  ~EpochGuard() {
    if (mgr_ != nullptr) mgr_->Exit(slot_);
  }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;
  EpochGuard(EpochGuard&& other) noexcept
      : mgr_(other.mgr_), slot_(other.slot_) {
    other.mgr_ = nullptr;
  }

 private:
  EpochManager* mgr_;
  int slot_;
};

}  // namespace lstore

#endif  // LSTORE_COMMON_EPOCH_H_
