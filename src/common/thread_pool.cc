#include "common/thread_pool.h"

#include <cstdlib>

namespace lstore {

ThreadPool::ThreadPool(uint32_t threads) {
  workers_.reserve(threads);
  for (uint32_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> g(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::Joinable(const Job& job) {
  return job.next.load(std::memory_order_relaxed) < job.num_tasks &&
         (job.max_workers == 0 ||
          job.executors.load(std::memory_order_relaxed) < job.max_workers);
}

void ThreadPool::Execute(const std::shared_ptr<Job>& job) {
  uint64_t t;
  while ((t = job->next.fetch_add(1, std::memory_order_relaxed)) <
         job->num_tasks) {
    job->fn(t);
    if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job->num_tasks) {
      std::lock_guard<std::mutex> g(job->mu);
      job->cv.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> g(mu_);
      cv_.wait(g, [this, &job] {
        if (stop_) return true;
        // Drop fully-claimed jobs from the front, then join the first
        // job still accepting executors.
        while (!jobs_.empty() &&
               jobs_.front()->next.load(std::memory_order_relaxed) >=
                   jobs_.front()->num_tasks) {
          jobs_.pop_front();
        }
        for (const auto& j : jobs_) {
          if (Joinable(*j)) {
            job = j;
            return true;
          }
        }
        return false;
      });
      if (stop_) return;
      job->executors.fetch_add(1, std::memory_order_relaxed);
    }
    Execute(job);
    job->executors.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ThreadPool::ParallelFor(uint64_t num_tasks, uint32_t max_workers,
                             const std::function<void(uint64_t)>& fn) {
  if (num_tasks == 0) return;
  if (num_tasks == 1 || max_workers == 1 || workers_.empty()) {
    for (uint64_t t = 0; t < num_tasks; ++t) fn(t);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->num_tasks = num_tasks;
  job->max_workers = max_workers;
  // The caller participates (progress is guaranteed even when every
  // pool thread is parked on another job) and counts toward the
  // executor cap, so it claims its slot BEFORE the job is published.
  job->executors.store(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> g(mu_);
    jobs_.push_back(job);
  }
  cv_.notify_all();
  Execute(job);
  job->executors.fetch_sub(1, std::memory_order_relaxed);
  {
    std::unique_lock<std::mutex> g(job->mu);
    job->cv.wait(g, [&] {
      return job->done.load(std::memory_order_acquire) == job->num_tasks;
    });
  }
}

namespace {
/// Desired shared-pool size from ConfigureShared: -1 = unset, else the
/// exact worker count. -2 marks "pool already built" so later calls
/// can report that configuration no longer applies.
std::atomic<int64_t> g_shared_pool_threads{-1};
}  // namespace

bool ThreadPool::ConfigureShared(uint32_t threads) {
  int64_t expected = -1;
  return g_shared_pool_threads.compare_exchange_strong(
             expected, static_cast<int64_t>(threads),
             std::memory_order_acq_rel) ||
         expected == static_cast<int64_t>(threads);
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    uint32_t n = std::thread::hardware_concurrency();
    uint32_t workers = n > 0 ? n - 1 : 0;
    int64_t configured = g_shared_pool_threads.load(std::memory_order_acquire);
    if (configured >= 0) workers = static_cast<uint32_t>(configured);
    if (const char* env = std::getenv("LSTORE_SCAN_THREADS")) {
      long v = std::atol(env);
      if (v >= 0) workers = static_cast<uint32_t>(v);
    }
    // Later ConfigureShared calls must see that the size is frozen.
    g_shared_pool_threads.store(-2, std::memory_order_release);
    return new ThreadPool(workers);
  }();
  return *pool;
}

}  // namespace lstore
