// Pseudo-random generators for the benchmark harness and tests.
//
// The micro benchmark of [18, 33] draws keys uniformly from a
// configurable *active set*; we additionally provide a Zipfian
// generator for skewed-workload ablations.

#ifndef LSTORE_COMMON_RANDOM_H_
#define LSTORE_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace lstore {

/// xorshift128+ generator: fast, decent quality, reproducible.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    s0_ = seed ^ 0x2545f4914f6cdd1dull;
    s1_ = seed * 0xbf58476d1ce4e5b9ull + 1;
    for (int i = 0; i < 8; ++i) Next();
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform in [lo, hi).
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo);
  }

  /// True with probability pct/100.
  bool Percent(uint32_t pct) { return Uniform(100) < pct; }

  double NextDouble() {  // [0, 1)
    return static_cast<double>(Next() >> 11) * (1.0 / (1ull << 53));
  }

 private:
  uint64_t s0_, s1_;
};

/// Zipfian distribution over [0, n) using the Gray et al. method
/// (as popularized by YCSB). theta in (0, 1); higher = more skew.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed = 1);

  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  double Zeta(uint64_t n, double theta) const;

  uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  double zeta2theta_;
  Random rng_;
};

/// FNV-1a over the 8 bytes of `v` (the YCSB key-scrambling hash).
inline uint64_t FnvHash64(uint64_t v) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Zipfian-distributed *popularity ranks* hashed across the key space
/// (YCSB's ScrambledZipfian): item popularity follows a Zipfian law,
/// but the hot items are scattered uniformly over [0, n) instead of
/// clustering at the low keys — so skewed workloads still spread
/// across index shards and update ranges the way production hotspots
/// do. Deterministic per (n, theta, seed).
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t n, double theta, uint64_t seed = 1)
      : n_(n), zipf_(n, theta, seed) {}

  uint64_t Next() { return FnvHash64(zipf_.Next()) % n_; }

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  ZipfianGenerator zipf_;
};

/// Workload key source: uniform or scrambled-zipfian over [0, n).
class KeyGenerator {
 public:
  /// theta <= 0 selects uniform; otherwise scrambled-zipfian(theta).
  KeyGenerator(uint64_t n, double theta, uint64_t seed)
      : uniform_(theta <= 0.0),
        n_(n),
        rng_(seed),
        zipf_(n, theta > 0.0 ? theta : 0.5, seed) {}

  uint64_t Next() { return uniform_ ? rng_.Uniform(n_) : zipf_.Next(); }

  uint64_t n() const { return n_; }

 private:
  bool uniform_;
  uint64_t n_;
  Random rng_;
  ScrambledZipfianGenerator zipf_;
};

}  // namespace lstore

#endif  // LSTORE_COMMON_RANDOM_H_
