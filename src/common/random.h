// Pseudo-random generators for the benchmark harness and tests.
//
// The micro benchmark of [18, 33] draws keys uniformly from a
// configurable *active set*; we additionally provide a Zipfian
// generator for skewed-workload ablations.

#ifndef LSTORE_COMMON_RANDOM_H_
#define LSTORE_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace lstore {

/// xorshift128+ generator: fast, decent quality, reproducible.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    s0_ = seed ^ 0x2545f4914f6cdd1dull;
    s1_ = seed * 0xbf58476d1ce4e5b9ull + 1;
    for (int i = 0; i < 8; ++i) Next();
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform in [lo, hi).
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo);
  }

  /// True with probability pct/100.
  bool Percent(uint32_t pct) { return Uniform(100) < pct; }

  double NextDouble() {  // [0, 1)
    return static_cast<double>(Next() >> 11) * (1.0 / (1ull << 53));
  }

 private:
  uint64_t s0_, s1_;
};

/// Zipfian distribution over [0, n) using the Gray et al. method
/// (as popularized by YCSB). theta in (0, 1); higher = more skew.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed = 1);

  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  double Zeta(uint64_t n, double theta) const;

  uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  double zeta2theta_;
  Random rng_;
};

}  // namespace lstore

#endif  // LSTORE_COMMON_RANDOM_H_
