#include "common/epoch.h"

namespace lstore {

EpochManager::EpochManager() = default;

EpochManager::~EpochManager() {
  // Free everything that is still pending; no readers can remain.
  DrainAllUnsafe();
}

size_t EpochManager::DrainAllUnsafe() {
  // Swap out and run outside the lock (see TryReclaim); loop in case
  // a deleter retires further resources.
  size_t n = 0;
  for (;;) {
    std::deque<Retired> ready;
    {
      std::lock_guard<std::mutex> g(retired_mu_);
      if (retired_.empty()) return n;
      ready.swap(retired_);
    }
    n += ready.size();
    for (auto& r : ready) r.deleter();
  }
}

namespace {

// Publishing a pin requires the classic EBR double-check: a pin read
// BEFORE it is visible to reclaimers is worthless — a Retire +
// TryReclaim pair can slip between reading the epoch and storing the
// pin, freeing a resource this reader is about to dereference. After
// publishing, re-read the epoch and advance the pin until it is
// stable: once stable, (a) entries retired at older epochs were
// retired by threads whose epoch increment we have synchronized with,
// so we can only reach their replacements, and (b) entries retired at
// our epoch or later observe our pin and stay blocked.
void PinSlot(std::atomic<uint64_t>& slot, std::atomic<uint64_t>& epoch) {
  for (;;) {
    uint64_t e = epoch.load(std::memory_order_acquire);
    if (slot.load(std::memory_order_relaxed) == e) return;
    slot.store(e, std::memory_order_seq_cst);
  }
}

}  // namespace

int EpochManager::Enter() {
  int start = next_slot_hint_.fetch_add(1, std::memory_order_relaxed) %
              kMaxThreads;
  for (int i = 0; i < kMaxThreads; ++i) {
    int s = (start + i) % kMaxThreads;
    uint64_t expected = kIdle;
    if (slots_[s].pinned.compare_exchange_strong(
            expected, epoch_.load(std::memory_order_acquire),
            std::memory_order_seq_cst)) {
      PinSlot(slots_[s].pinned, epoch_);
      return s;
    }
  }
  // All slots busy: extremely unlikely (kMaxThreads concurrent
  // queries). Spin until one frees up.
  for (;;) {
    for (int s = 0; s < kMaxThreads; ++s) {
      uint64_t expected = kIdle;
      if (slots_[s].pinned.compare_exchange_strong(
              expected, epoch_.load(std::memory_order_acquire),
              std::memory_order_seq_cst)) {
        PinSlot(slots_[s].pinned, epoch_);
        return s;
      }
    }
  }
}

void EpochManager::Exit(int slot) {
  slots_[slot].pinned.store(kIdle, std::memory_order_release);
}

void EpochManager::Retire(std::function<void()> deleter) {
  // Advance the epoch so that queries starting after this retire do
  // not block reclamation of the retired resource.
  uint64_t e = epoch_.fetch_add(1, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> g(retired_mu_);
  retired_.push_back(Retired{e, std::move(deleter)});
}

uint64_t EpochManager::MinActiveEpoch() const {
  uint64_t min = kIdle;
  for (const auto& s : slots_) {
    // seq_cst pairs with the seq_cst pin publication in Enter(): the
    // reclaimer must never miss a pin that was published before the
    // pinning thread dereferenced anything.
    uint64_t v = s.pinned.load(std::memory_order_seq_cst);
    if (v < min) min = v;
  }
  return min;
}

size_t EpochManager::TryReclaim() {
  uint64_t min_active = MinActiveEpoch();
  // Collect under the lock, run outside it: deleters may take foreign
  // locks (e.g. a segment page unregistering from the buffer pool,
  // whose eviction path itself calls Retire) — running them under
  // retired_mu_ would invert that order and deadlock.
  std::deque<Retired> ready;
  {
    std::lock_guard<std::mutex> g(retired_mu_);
    while (!retired_.empty() && retired_.front().epoch < min_active) {
      ready.push_back(std::move(retired_.front()));
      retired_.pop_front();
    }
  }
  for (auto& r : ready) r.deleter();
  return ready.size();
}

size_t EpochManager::pending() const {
  std::lock_guard<std::mutex> g(retired_mu_);
  return retired_.size();
}

}  // namespace lstore
