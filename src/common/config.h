// Tuning knobs of the lineage-based storage engine.
//
// Defaults follow the paper's evaluation (Section 6.1): 32 KB base
// pages, smaller tail pages (footnote 13), update ranges of 2^12..2^16
// records (Section 4.4), merge triggered once ~50% of the range size
// worth of tail records accumulated (Figure 8 discussion).

#ifndef LSTORE_COMMON_CONFIG_H_
#define LSTORE_COMMON_CONFIG_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace lstore {

class BufferPool;
class HealthRegistry;
class MetricsRegistry;
class SegmentStore;

struct TableConfig {
  /// Number of records per (virtual) update range. Power of two.
  /// Paper: 2^12 .. 2^16 (Section 4.4).
  uint32_t range_size = 1u << 12;

  /// Slots per base page. 32 KB pages of 8-byte values = 4096 slots.
  uint32_t base_page_slots = 4096;

  /// Slots per tail page. Tail pages may be smaller than base pages
  /// (footnote 13: "tail pages could be 4 KB while base pages are
  /// 32 KB").
  uint32_t tail_page_slots = 512;

  /// Merge a range once this many committed-but-unmerged tail records
  /// accumulated. Figure 8: best around 50% of the range size.
  uint32_t merge_threshold = 1u << 11;

  /// Coarser granularity for the merge: merge N consecutive update
  /// ranges together (Section 4.4: fine ranges for update locality,
  /// coarse merges for space utilization). 1 = merge range by range.
  uint32_t merge_fanin = 1;

  /// Cumulative updates (Section 3.1): a new tail record repeats the
  /// latest values of all columns updated since the last cumulation
  /// reset. Reset happens at merge boundaries (TPS high-water mark,
  /// Section 4.2). Disabling forces readers to walk the full chain.
  bool cumulative_updates = true;

  /// Compress base pages produced by the merge (dictionary/RLE/plain,
  /// chosen per page).
  bool compress_merged_pages = true;

  /// Size of an insert range: the pre-allocated block of base RIDs
  /// backed by table-level tail pages (Section 3.2; "at least a
  /// million RIDs" in production — smaller default here so tests
  /// exercise multiple insert ranges).
  uint32_t insert_range_size = 1u << 16;

  /// Run the asynchronous merge thread (true in all experiments).
  bool enable_merge_thread = true;

  /// Redo logging of tail appends (Section 5.1.3). Off by default to
  /// match the evaluation ("logging has been turned off for all
  /// systems"); recovery tests enable it.
  bool enable_logging = false;
  std::string log_path;  ///< file path when logging is enabled

  /// fsync the log on commit (group commit still batches writes).
  bool sync_commit = false;

  /// Test hook: counts every Flush(sync=true) fsync of this table's
  /// redo log (nullptr = off). Not persisted to the catalog.
  std::atomic<uint64_t>* sync_counter = nullptr;

  /// Buffer-managed base storage (src/buffer/): the pool that owns the
  /// table's base-segment frames and the swap store behind them. Wired
  /// by the owning Database (buffer_pool_bytes > 0) or by tests; both
  /// nullptr = fully resident base pages, as before. When only the
  /// LSTORE_BUFFER_POOL_BYTES env knob is set, a standalone table
  /// creates an owned pool spilling to an anonymous temp file, so
  /// every suite can be forced through the miss/evict path. Not
  /// persisted to the catalog.
  BufferPool* buffer_pool = nullptr;
  SegmentStore* segment_store = nullptr;

  /// Verify the checksum of every checkpoint-referenced segment-store
  /// byte range while loading the checkpoint (wired from
  /// DurabilityOptions::verify_segment_store_on_open).
  bool verify_segment_refs = false;

  /// Metrics registry the table records into (src/obs/metrics.h).
  /// Wired by the owning Database so every table of a database shares
  /// one registry; nullptr = a standalone table creates an owned
  /// registry, so Table::metrics() is always valid. Not persisted to
  /// the catalog.
  MetricsRegistry* metrics = nullptr;

  /// Health registry (src/obs/health.h) the table's merge thread
  /// registers its heartbeat with ("merge:<table>"). Wired by the
  /// owning Database like `metrics`; nullptr = no heartbeat (the
  /// standalone-table case). Not persisted to the catalog.
  HealthRegistry* health = nullptr;

  /// Test hook: while non-null and set, the merge loop parks right
  /// after claiming a task (busy, not beating) — how health tests
  /// inject a deterministic stall without touching merge internals.
  /// Not persisted to the catalog.
  std::atomic<int>* merge_test_park = nullptr;
};

/// Durability knobs of a database directory (Section 5.1.3). A durable
/// database pairs the per-table redo logs with lineage-consistent
/// checkpoints; recovery = load latest checkpoint + replay log tail.
struct DurabilityOptions {
  /// fsync redo logs on every commit (propagated to TableConfig).
  bool sync_commit = false;

  /// Drop redo records at or below the checkpoint watermark once the
  /// manifest is durable. Disable to simulate a crash between
  /// checkpoint write and truncation (recovery must still converge).
  bool truncate_log_after_checkpoint = true;

  /// Background checkpoint thread: take a checkpoint every
  /// `checkpoint_interval_ms` milliseconds (0 = no timed trigger).
  uint64_t checkpoint_interval_ms = 0;

  /// Background checkpoint thread: take a checkpoint once the total
  /// redo-log bytes across tables exceed this (0 = no size trigger).
  uint64_t checkpoint_log_bytes = 0;

  /// Group commit: how long a lone leader waits (microseconds) for
  /// concurrent committers to join its batch before flushing. 0 =
  /// no explicit wait; batching still happens naturally while a
  /// leader's flush is in flight.
  uint64_t group_commit_window_us = 0;

  /// Test hook: counts every commit-path fsync (commit log and every
  /// table redo log) so group-commit tests can assert that concurrent
  /// committers share fsyncs (nullptr = off).
  std::atomic<uint64_t>* sync_counter = nullptr;

  /// Byte budget of the database-wide buffer pool for read-optimized
  /// base segments (src/buffer/buffer_pool.h). 0 = no pool: base
  /// pages stay fully resident, exactly the pre-buffer behavior.
  /// With a budget, merge output writes base segments through to
  /// per-table .segs swap files, cold ranges demand-load, and a
  /// clock sweep evicts clean cold frames over budget — so a table's
  /// base footprint can exceed RAM. The LSTORE_BUFFER_POOL_BYTES env
  /// knob supplies the budget when this field is 0 (CI's
  /// memory-capped job).
  uint64_t buffer_pool_bytes = 0;

  /// Log archiving / point-in-time recovery (src/archive/): when
  /// enabled, checkpoint truncation seals the retired log prefixes
  /// (per-table redo logs and the commit log) into checksummed,
  /// LSN-range-named segments under <dir>/archive, and superseded
  /// checkpoints/manifests move there instead of being deleted — so
  /// Database::RestoreToPoint can rebuild the exact cross-table-
  /// consistent state at any archived commit point. Off (default) =
  /// truncation deletes the prefix, exactly the pre-archive behavior.
  bool archive_enabled = false;

  /// Retention policy of the archive (each 0 = unbounded on that
  /// axis). Enforcement drops whole restore epochs oldest-first: an
  /// archived checkpoint plus exactly the log segments that only
  /// serve points older than the next retained checkpoint — never a
  /// segment newer than the oldest restorable checkpoint.
  uint64_t archive_max_bytes = 0;        ///< total bytes under <dir>/archive
  uint64_t archive_max_segments = 0;     ///< number of .arc segments
  uint64_t archive_max_age_seconds = 0;  ///< age horizon (file mtimes)

  /// Background stats reporter (src/obs/reporter.h): every this many
  /// milliseconds, append one JSON MetricsSnapshot line to
  /// <dir>/metrics.log for post-mortem timelines. 0 (default) = no
  /// reporter thread.
  uint64_t metrics_report_interval_ms = 0;

  /// Worker-thread count of the process-wide scan pool
  /// (ThreadPool::Shared) that parallel Query partitions execute on.
  /// 0 = leave the pool's own sizing (hardware_concurrency - 1, or
  /// LSTORE_SCAN_THREADS). Non-zero requests that exact count so the
  /// scan pool and a co-resident Server's worker pool can split the
  /// cores instead of both sizing to the whole machine. Applied at
  /// Open via ThreadPool::ConfigureShared — first configuration wins,
  /// and it only takes effect before the pool's first use.
  uint32_t scan_threads = 0;

  /// Slow-op log (src/obs/slow_op_log.h): a traced request whose total
  /// latency exceeds this many microseconds dumps its span timeline as
  /// one JSON line to <dir>/slowops.log. 0 (default) = no slow-op log.
  /// Requires tracing compiled in (LSTORE_TRACING=ON) and applies to
  /// traced requests only — untraced requests have no timeline to dump.
  uint64_t slow_op_threshold_us = 0;

  /// Size bound of <dir>/slowops.log: once the file reaches this many
  /// bytes it rotates to slowops.log.1 before the next dump (the pair
  /// bounds disk at ~2x the limit). 0 (default) = unbounded.
  uint64_t slow_op_log_max_bytes = 0;

  /// Watchdog sweep interval (src/obs/health.h): every this many
  /// milliseconds the background watchdog classifies each registered
  /// actor healthy|slow|stalled, publishes lstore_health_* gauges,
  /// and on a new stall emits an event + one flight-recorder dump.
  /// 0 = no background thread (Database::Health() still sweeps on
  /// demand).
  uint64_t watchdog_interval_ms = 1000;

  /// Per-actor watchdog deadlines applied at heartbeat registration:
  /// a busy actor silent past `health_slow_ms` is slow, past
  /// `health_stall_ms` stalled. 0 = the registry defaults (1s / 10s).
  uint64_t health_slow_ms = 0;
  uint64_t health_stall_ms = 0;

  /// Structured event log (src/obs/event_log.h): lifecycle events go
  /// to a bounded in-memory ring of this many entries plus (durable
  /// databases) JSON lines in <dir>/events.log, size-rotated to
  /// events.log.1 past `event_log_max_bytes` (0 = unbounded file).
  uint64_t event_ring_capacity = 256;
  uint64_t event_log_max_bytes = 0;

  /// Eagerly verify every segment-store byte range the checkpoint
  /// references during Open (reads the ranges back and checks their
  /// checksums; the segments themselves still restore lazily/cold).
  /// Off by default: verification reads O(table) base bytes, trading
  /// away the O(hot set) restart. When off, corruption in a .segs
  /// file is detected at first demand-load — which is fail-stop
  /// (abort), not a clean error, exactly like a flipped bit under an
  /// mmap'd file. Turn this on where .segs integrity is suspect and
  /// a clean Corruption status from Open is required.
  bool verify_segment_store_on_open = false;
};

}  // namespace lstore

#endif  // LSTORE_COMMON_CONFIG_H_
