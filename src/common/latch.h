// Low-level synchronization primitives.
//
// L-Store's lineage-based storage needs very little latching (Section
// 5.1.2): readers never latch base or committed tail pages, and the
// Indirection column is manipulated with CAS. The primitives here are
// used for the few remaining structured-mutation points (page
// directory growth, index shards) and, heavily, by the baseline
// engines which *do* latch pages (that contrast is the point of the
// evaluation).

#ifndef LSTORE_COMMON_LATCH_H_
#define LSTORE_COMMON_LATCH_H_

#include <atomic>
#include <thread>

namespace lstore {

/// Test-and-test-and-set spin latch for short critical sections.
class SpinLatch {
 public:
  void Lock() {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
        std::this_thread::yield();
      }
    }
  }
  bool TryLock() { return !flag_.exchange(true, std::memory_order_acquire); }
  void Unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard for SpinLatch.
class SpinGuard {
 public:
  explicit SpinGuard(SpinLatch& l) : latch_(l) { latch_.Lock(); }
  ~SpinGuard() { latch_.Unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLatch& latch_;
};

/// Reader-writer spin latch (shared/exclusive). Writer-preferring to
/// model the page latches of the In-place Update + History baseline,
/// where an update blocks incoming readers (Section 6.1).
class RWSpinLatch {
 public:
  void LockShared() {
    for (;;) {
      uint32_t v = state_.load(std::memory_order_relaxed);
      if ((v & kWriterBit) == 0 &&
          state_.compare_exchange_weak(v, v + 1,
                                       std::memory_order_acquire)) {
        return;
      }
      std::this_thread::yield();
    }
  }
  void UnlockShared() { state_.fetch_sub(1, std::memory_order_release); }

  void LockExclusive() {
    // Announce the writer, then wait for readers to drain.
    for (;;) {
      uint32_t v = state_.load(std::memory_order_relaxed);
      if ((v & kWriterBit) == 0 &&
          state_.compare_exchange_weak(v, v | kWriterBit,
                                       std::memory_order_acquire)) {
        break;
      }
      std::this_thread::yield();
    }
    while ((state_.load(std::memory_order_acquire) & ~kWriterBit) != 0) {
      std::this_thread::yield();
    }
  }
  void UnlockExclusive() {
    state_.fetch_and(~kWriterBit, std::memory_order_release);
  }

  /// Promote shared → exclusive, assuming the caller holds one shared
  /// reference. Used by the Ownership Relaying protocol (Section 5.2:
  /// "promotes its shared latch to an exclusive one").
  void PromoteSharedToExclusive() {
    for (;;) {
      uint32_t v = state_.load(std::memory_order_relaxed);
      if ((v & kWriterBit) == 0 &&
          state_.compare_exchange_weak(v, v | kWriterBit,
                                       std::memory_order_acquire)) {
        break;
      }
      std::this_thread::yield();
    }
    // Drop our own shared count, then wait for remaining readers.
    state_.fetch_sub(1, std::memory_order_release);
    while ((state_.load(std::memory_order_acquire) & ~kWriterBit) != 0) {
      std::this_thread::yield();
    }
  }

 private:
  static constexpr uint32_t kWriterBit = 1u << 31;
  std::atomic<uint32_t> state_{0};
};

}  // namespace lstore

#endif  // LSTORE_COMMON_LATCH_H_
