// Bit-manipulation helpers shared by the schema-encoding logic and the
// compression codecs.

#ifndef LSTORE_COMMON_BITUTIL_H_
#define LSTORE_COMMON_BITUTIL_H_

#include <bit>
#include <cstdint>

namespace lstore {

inline int PopCount(uint64_t v) { return std::popcount(v); }

/// Number of bits needed to represent v (0 -> 0 bits).
inline int BitsNeeded(uint64_t v) {
  return v == 0 ? 0 : 64 - std::countl_zero(v);
}

/// Index of the lowest set bit; undefined for v == 0.
inline int LowestSetBit(uint64_t v) { return std::countr_zero(v); }

/// Iterate the set bits of a mask: for (auto it = BitIter(m); it; ++it) *it.
class BitIter {
 public:
  explicit BitIter(uint64_t mask) : mask_(mask) {}
  explicit operator bool() const { return mask_ != 0; }
  int operator*() const { return LowestSetBit(mask_); }
  BitIter& operator++() {
    mask_ &= mask_ - 1;
    return *this;
  }

 private:
  uint64_t mask_;
};

/// Zigzag encoding maps signed deltas to small unsigned values so the
/// varint codec stores them compactly (used by the historic
/// delta-compression of Section 4.3).
inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace lstore

#endif  // LSTORE_COMMON_BITUTIL_H_
