// Shared worker pool for parallel snapshot scans (Section 6.2: the
// scan workload partitions naturally along update-range boundaries).
//
// One process-wide pool is shared by every Query so that concurrent
// analytical queries multiplex a bounded set of threads instead of
// each spawning its own. The submitting thread always participates in
// its own job, so ParallelFor makes progress even when every pool
// thread is busy (or the pool has size 0).

#ifndef LSTORE_COMMON_THREAD_POOL_H_
#define LSTORE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lstore {

class ThreadPool {
 public:
  /// A pool of `threads` workers (0 = no worker threads; ParallelFor
  /// then runs entirely on the calling thread).
  explicit ThreadPool(uint32_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Run fn(task) for every task in [0, num_tasks), using at most
  /// `max_workers` concurrent executors (caller included; 0 = no cap).
  /// Blocks until every task finished. Tasks are claimed dynamically
  /// from a shared counter, so skewed task costs balance out.
  void ParallelFor(uint64_t num_tasks, uint32_t max_workers,
                   const std::function<void(uint64_t task)>& fn);

  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// Process-wide pool, lazily constructed with hardware_concurrency-1
  /// workers (overridable via LSTORE_SCAN_THREADS).
  static ThreadPool& Shared();

  /// Set the worker-thread count the shared pool is built with, so
  /// co-resident executors (server workers vs. parallel Query
  /// partitions) can split the core budget instead of both sizing to
  /// the whole machine. Takes effect only BEFORE the pool's lazy
  /// construction (first Shared() call); the first configuration
  /// wins, and the LSTORE_SCAN_THREADS env knob overrides both.
  /// Returns false when the pool was already built (or already
  /// configured) with a different count — callers treat that as
  /// advisory, not an error.
  static bool ConfigureShared(uint32_t threads);

 private:
  struct Job {
    std::function<void(uint64_t)> fn;
    uint64_t num_tasks = 0;
    std::atomic<uint64_t> next{0};
    std::atomic<uint64_t> done{0};
    std::atomic<uint32_t> executors{0};
    uint32_t max_workers = 0;
    std::mutex mu;
    std::condition_variable cv;  // signalled when done == num_tasks
  };

  /// Claim and run tasks of `job` until none remain.
  static void Execute(const std::shared_ptr<Job>& job);
  /// Whether the job still has unclaimed tasks and executor headroom.
  static bool Joinable(const Job& job);

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> jobs_;  ///< jobs accepting executors
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace lstore

#endif  // LSTORE_COMMON_THREAD_POOL_H_
