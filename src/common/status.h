// Lightweight error-handling type used throughout L-Store.
//
// L-Store follows the convention of mature storage engines (RocksDB,
// Arrow): no exceptions on hot paths; every fallible operation returns
// a `Status` that callers must inspect.

#ifndef LSTORE_COMMON_STATUS_H_
#define LSTORE_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace lstore {

/// Result of a fallible operation.
///
/// A default-constructed Status is OK. Error statuses carry a code and
/// a human-readable message. The class is cheap to copy for the OK
/// case (no allocation).
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound,        ///< key or version does not exist / not visible
    kAlreadyExists,   ///< duplicate primary key on insert
    kAborted,         ///< transaction aborted (write-write conflict,
                      ///< failed validation, or explicit abort)
    kInvalidArgument, ///< malformed request (bad column id, arity, ...)
    kIOError,         ///< log file I/O failure
    kCorruption,      ///< log replay / checksum failure
    kNotSupported,    ///< feature disabled by configuration
    kBusy,            ///< resource momentarily unavailable
  };

  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg = "") {
    return Status(Code::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg = "") {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status Aborted(std::string_view msg = "") {
    return Status(Code::kAborted, msg);
  }
  static Status InvalidArgument(std::string_view msg = "") {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status IOError(std::string_view msg = "") {
    return Status(Code::kIOError, msg);
  }
  static Status Corruption(std::string_view msg = "") {
    return Status(Code::kCorruption, msg);
  }
  static Status NotSupported(std::string_view msg = "") {
    return Status(Code::kNotSupported, msg);
  }
  static Status Busy(std::string_view msg = "") {
    return Status(Code::kBusy, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsBusy() const { return code_ == Code::kBusy; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable rendering, e.g. "Aborted: write-write conflict".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = CodeName(code_);
    if (!msg_.empty()) {
      out += ": ";
      out += msg_;
    }
    return out;
  }

 private:
  Status(Code code, std::string_view msg) : code_(code), msg_(msg) {}

  static const char* CodeName(Code c) {
    switch (c) {
      case Code::kOk: return "OK";
      case Code::kNotFound: return "NotFound";
      case Code::kAlreadyExists: return "AlreadyExists";
      case Code::kAborted: return "Aborted";
      case Code::kInvalidArgument: return "InvalidArgument";
      case Code::kIOError: return "IOError";
      case Code::kCorruption: return "Corruption";
      case Code::kNotSupported: return "NotSupported";
      case Code::kBusy: return "Busy";
    }
    return "Unknown";
  }

  Code code_ = Code::kOk;
  std::string msg_;
};

/// Propagate a non-OK status to the caller.
#define LSTORE_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::lstore::Status _s = (expr);               \
    if (!_s.ok()) return _s;                    \
  } while (0)

}  // namespace lstore

#endif  // LSTORE_COMMON_STATUS_H_
