// Core value / identifier types of the lineage-based storage model.
//
// Paper mapping (Section 2.2):
//  * Records in base and tail pages share a single RID key space; we
//    tag tail RIDs with the MSB and encode (update range id, in-range
//    tail sequence number). The in-range sequence number is the
//    monotonically increasing value that is compared against a page's
//    TPS (tail-page sequence number, Section 4.2).
//  * The special null value (∅ in the paper) marks non-materialized
//    columns of tail records and deleted data columns.
//  * Start Time slots hold either a commit timestamp or a transaction
//    id; the two are distinguished by the MSB (Section 5.1.1: "The
//    Start Time column may also hold transaction ID").

#ifndef LSTORE_COMMON_TYPES_H_
#define LSTORE_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace lstore {

using Value = uint64_t;
using Rid = uint64_t;
using ColumnId = uint32_t;
/// Bitmap over data columns (Schema Encoding payload). Supports up to
/// 56 data columns; the top byte is reserved for flags.
using ColumnMask = uint64_t;

/// The special null value ∅: pre-assigned to never-updated columns of
/// tail records and to all data columns of delete records.
inline constexpr Value kNull = std::numeric_limits<uint64_t>::max();

inline constexpr Rid kInvalidRid = std::numeric_limits<uint64_t>::max();

// ---------------------------------------------------------------------------
// Tail RID encoding: [63]=1 | [62:24]=update range id | [23:0]=sequence.
// Sequence numbers start at 1 within each range (0 encodes "none", the
// ⊥ indirection). Base RIDs have bit 63 clear, so page-directory scans
// over base records never visit tail entries (the paper achieves the
// same via reverse RID allocation, Section 4.4).
// ---------------------------------------------------------------------------

inline constexpr uint64_t kTailRidTag = 1ull << 63;
inline constexpr uint32_t kTailSeqBits = 24;
inline constexpr uint32_t kMaxTailSeq = (1u << kTailSeqBits) - 1;

constexpr Rid MakeTailRid(uint64_t range_id, uint32_t seq) {
  return kTailRidTag | (range_id << kTailSeqBits) | seq;
}
constexpr bool IsTailRid(Rid rid) { return (rid & kTailRidTag) != 0; }
constexpr uint64_t TailRidRange(Rid rid) {
  return (rid & ~kTailRidTag) >> kTailSeqBits;
}
constexpr uint32_t TailRidSeq(Rid rid) {
  return static_cast<uint32_t>(rid & kMaxTailSeq);
}

// ---------------------------------------------------------------------------
// Timestamps and transaction ids.
// ---------------------------------------------------------------------------

using Timestamp = uint64_t;
using TxnId = uint64_t;

/// MSB tag: a Start Time slot whose MSB is set holds a transaction id
/// (the writer has not been lazily stamped with its commit time yet).
inline constexpr uint64_t kTxnIdTag = 1ull << 63;

/// Stamp written into the Start Time slot of tail records belonging to
/// aborted transactions (the tombstone of Section 5.1.3: "the tail
/// record is marked as invalid").
inline constexpr uint64_t kAbortedStamp = kTxnIdTag | (1ull << 62);

constexpr bool IsTxnId(uint64_t start_time_raw) {
  return (start_time_raw & kTxnIdTag) != 0 && start_time_raw != kAbortedStamp;
}
constexpr bool IsAbortedStamp(uint64_t start_time_raw) {
  return start_time_raw == kAbortedStamp;
}

inline constexpr Timestamp kMaxTimestamp = kTxnIdTag - 1;

// ---------------------------------------------------------------------------
// Indirection slot encoding (base records). The Indirection column is
// the only in-place-updated column (Section 3.1). Bit 63 is the write
// latch used for write-write conflict detection via CAS (Section
// 5.1.1: "Each indirection pointer reserves one bit for latching").
// The low 24 bits hold the latest tail sequence number (0 = ⊥).
// ---------------------------------------------------------------------------

inline constexpr uint64_t kIndirLatchBit = 1ull << 63;

constexpr uint32_t IndirSeq(uint64_t indir_raw) {
  return static_cast<uint32_t>(indir_raw & kMaxTailSeq);
}
constexpr bool IndirLatched(uint64_t indir_raw) {
  return (indir_raw & kIndirLatchBit) != 0;
}

// ---------------------------------------------------------------------------
// Schema Encoding flags (Section 3.1). Bits [0..55] form the data
// column bitmap; the top byte carries record-level flags:
//  * kSnapshotFlag marks a pre-image record ("0001*" in Table 2): the
//    snapshot of original values taken on the first update of a column
//    so that outdated base pages can be discarded safely (Lemma 2).
//  * kDeleteFlag marks a delete record (all data columns ∅).
// ---------------------------------------------------------------------------

inline constexpr uint64_t kSnapshotFlag = 1ull << 62;
inline constexpr uint64_t kDeleteFlag = 1ull << 63;
/// Set on a tail record when the SAME transaction later appended a
/// record covering all of its columns (Section 3.1: "each update is
/// written as a separate entry ... only the final update becomes
/// visible to other transactions. The prior entries are implicitly
/// invalidated and skipped by readers"). Readers treat such records
/// as invisible even after the transaction commits.
inline constexpr uint64_t kSupersededFlag = 1ull << 61;
inline constexpr uint64_t kSchemaMaskBits = (1ull << 56) - 1;

constexpr ColumnMask SchemaColumns(uint64_t enc) {
  return enc & kSchemaMaskBits;
}
constexpr bool IsSnapshotRecord(uint64_t enc) {
  return (enc & kSnapshotFlag) != 0;
}
constexpr bool IsDeleteRecord(uint64_t enc) {
  return (enc & kDeleteFlag) != 0;
}
constexpr bool IsSupersededRecord(uint64_t enc) {
  return (enc & kSupersededFlag) != 0;
}

}  // namespace lstore

#endif  // LSTORE_COMMON_TYPES_H_
