// Baseline 2: Delta + Blocking Merge (Section 6.1).
//
// "Inspired by HANA [15], where it consists of a main store and a
// delta store, and undergoes a periodic merging ... the periodic
// merging requires the draining of all active transactions before the
// merge begins and after the merge ends." Paper optimizations
// retained: columnar delta holding only updated columns, and range
// partitioning of the delta store (a separate delta per record range).
//
// The blocking drain is the measured contrast with L-Store's
// contention-free merge: every transaction (including scans) enters a
// gate at begin and exits at commit/abort; a merge closes the gate,
// waits for the active count to reach zero, rewrites the main store
// and clears the delta, then reopens.

#ifndef LSTORE_BASELINES_DBM_DBM_TABLE_H_
#define LSTORE_BASELINES_DBM_DBM_TABLE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/latch.h"
#include "common/status.h"
#include "common/types.h"
#include "core/schema.h"
#include "index/primary_index.h"
#include "txn/transaction.h"
#include "txn/transaction_manager.h"
#include "txn/txn.h"

namespace lstore {

class DbmTable : public TxnContext {
 public:
  DbmTable(Schema schema, TableConfig config,
           TransactionManager* txn_manager = nullptr);
  ~DbmTable();

  /// RAII session (same surface as Table): commit via txn.Commit(),
  /// auto-abort on destruction.
  Txn Begin(IsolationLevel iso = IsolationLevel::kReadCommitted);

  /// Non-ticking read snapshot for scans.
  Timestamp Now() const { return txn_manager_->SnapshotNow(); }

  Status Insert(Txn& txn, const std::vector<Value>& row) {
    LSTORE_RETURN_IF_ERROR(CheckActive(txn));
    return Insert(txn.raw(), row);
  }
  Status Update(Txn& txn, Value key, ColumnMask mask,
                const std::vector<Value>& row) {
    LSTORE_RETURN_IF_ERROR(CheckActive(txn));
    return Update(txn.raw(), key, mask, row);
  }
  /// Delete: appends a delta entry flagged as a tombstone; merge
  /// marks the main-store record deleted.
  Status Delete(Txn& txn, Value key) {
    LSTORE_RETURN_IF_ERROR(CheckActive(txn));
    return Delete(txn.raw(), key);
  }
  Status Read(Txn& txn, Value key, ColumnMask mask, std::vector<Value>* out) {
    LSTORE_RETURN_IF_ERROR(CheckActive(txn));
    return Read(txn.raw(), key, mask, out);
  }
  Status SumColumn(ColumnId col, Timestamp as_of, uint64_t* sum);

  /// Merge one range's delta into its main store, draining all active
  /// transactions (the blocking behaviour under test). Exposed for
  /// tests; normally driven by the background thread.
  bool MergeRange(uint64_t range_id);

  const Schema& schema() const { return schema_; }
  TransactionManager& txn_manager() { return *txn_manager_; }
  uint64_t num_rows() const { return next_row_.load(std::memory_order_acquire); }
  uint64_t merges_performed() const {
    return merges_.load(std::memory_order_acquire);
  }
  uint64_t drain_waits_us() const {
    return drain_wait_us_.load(std::memory_order_acquire);
  }

 private:
  // Session plumbing (TxnContext) + transaction-pointer cores.
  static Status CheckActive(const Txn& txn) {
    return txn.active() ? Status::OK()
                        : Status::InvalidArgument("transaction finished");
  }
  Status CommitTxn(Transaction* txn) override;
  void AbortTxn(Transaction* txn) override;
  Status Insert(Transaction* txn, const std::vector<Value>& row);
  Status Update(Transaction* txn, Value key, ColumnMask mask,
                const std::vector<Value>& row);
  Status Delete(Transaction* txn, Value key);
  Status Read(Transaction* txn, Value key, ColumnMask mask,
              std::vector<Value>* out);

  // Delta entry stride layout:
  // [0]=start_raw, [1]=prev_idx, [2]=slot, [3]=mask, [4..4+ncols).
  static constexpr uint32_t kDeltaHeader = 4;
  static constexpr uint32_t kDeltaChunk = 1024;

  struct DeltaStore {
    explicit DeltaStore(uint32_t stride) : stride(stride) {}
    uint32_t stride;
    std::atomic<uint64_t> next{0};
    mutable SpinLatch grow_latch;
    std::vector<std::unique_ptr<std::atomic<Value>[]>> chunks;
    std::atomic<size_t> num_chunks{0};

    std::atomic<Value>* Slot(uint64_t idx, uint32_t field);
    uint64_t Reserve();
    void Clear();
  };

  struct MainRange {
    MainRange(uint32_t range_size, uint32_t ncols, uint32_t stride);
    /// Read-only main store (rewritten wholesale by merges, which run
    /// with all transactions drained, so plain storage suffices).
    std::vector<Value> data;   // range*ncols
    std::vector<Value> start;  // per record commit times
    std::vector<uint8_t> deleted;
    std::unique_ptr<std::atomic<uint64_t>[]> indirection;  // delta idx
    std::atomic<uint32_t> occupied{0};
    DeltaStore delta;
    std::atomic<bool> queued{false};
  };

  MainRange* GetRange(uint64_t id) const;
  MainRange* EnsureRange(uint64_t id);

  // Transaction gate (drain machinery).
  void GateEnter();
  void GateExit();

  bool VisibleRaw(std::atomic<Value>* sref, Value& raw, Timestamp as_of,
                  Transaction* txn) const;
  Status ResolveRecord(MainRange& r, uint32_t slot, Timestamp as_of,
                       Transaction* txn, ColumnMask mask,
                       std::vector<Value>* out);

  void MergeLoop();

  Schema schema_;
  TableConfig config_;
  std::unique_ptr<TransactionManager> owned_txn_manager_;
  TransactionManager* txn_manager_;
  PrimaryIndex primary_;

  static constexpr uint64_t kMaxRanges = 1 << 16;
  std::atomic<uint64_t> next_row_{0};
  mutable SpinLatch ranges_latch_;
  std::unique_ptr<std::atomic<MainRange*>[]> ranges_;
  std::atomic<uint64_t> num_ranges_{0};

  // Gate state.
  std::mutex gate_mu_;
  std::condition_variable gate_cv_;
  uint64_t active_txns_ = 0;
  bool merge_pending_ = false;

  // Background merge thread.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<uint64_t> merge_queue_;
  bool running_ = false;
  std::thread merge_thread_;

  std::atomic<uint64_t> merges_{0};
  std::atomic<uint64_t> drain_wait_us_{0};
};

}  // namespace lstore

#endif  // LSTORE_BASELINES_DBM_DBM_TABLE_H_
