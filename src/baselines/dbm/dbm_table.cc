#include "baselines/dbm/dbm_table.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "common/bitutil.h"

namespace lstore {

// ---------------------------------------------------------------------------
// DeltaStore
// ---------------------------------------------------------------------------

std::atomic<Value>* DbmTable::DeltaStore::Slot(uint64_t idx, uint32_t field) {
  uint64_t i = idx - 1;
  size_t chunk = i / kDeltaChunk;
  size_t off = (i % kDeltaChunk) * stride + field;
  return &chunks[chunk][off];
}

uint64_t DbmTable::DeltaStore::Reserve() {
  uint64_t idx = next.fetch_add(1, std::memory_order_relaxed) + 1;
  size_t need = (idx - 1) / kDeltaChunk + 1;
  if (num_chunks.load(std::memory_order_acquire) < need) {
    SpinGuard g(grow_latch);
    while (chunks.size() < need) {
      auto chunk = std::make_unique<std::atomic<Value>[]>(
          static_cast<size_t>(kDeltaChunk) * stride);
      for (size_t i = 0; i < static_cast<size_t>(kDeltaChunk) * stride; ++i) {
        chunk[i].store(kNull, std::memory_order_relaxed);
      }
      chunks.push_back(std::move(chunk));
    }
    num_chunks.store(chunks.size(), std::memory_order_release);
  }
  return idx;
}

void DbmTable::DeltaStore::Clear() {
  // Only called with all transactions drained.
  chunks.clear();
  num_chunks.store(0, std::memory_order_release);
  next.store(0, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// MainRange
// ---------------------------------------------------------------------------

DbmTable::MainRange::MainRange(uint32_t range_size, uint32_t ncols,
                               uint32_t stride)
    : data(static_cast<size_t>(range_size) * ncols, kNull),
      start(range_size, kNull),
      deleted(range_size, 0),
      indirection(std::make_unique<std::atomic<uint64_t>[]>(range_size)),
      delta(stride) {
  for (uint32_t i = 0; i < range_size; ++i) {
    indirection[i].store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

DbmTable::DbmTable(Schema schema, TableConfig config,
                   TransactionManager* txn_manager)
    : schema_(std::move(schema)),
      config_(config),
      ranges_(std::make_unique<std::atomic<MainRange*>[]>(kMaxRanges)) {
  for (uint64_t i = 0; i < kMaxRanges; ++i) {
    ranges_[i].store(nullptr, std::memory_order_relaxed);
  }
  if (txn_manager != nullptr) {
    txn_manager_ = txn_manager;
  } else {
    owned_txn_manager_ = std::make_unique<TransactionManager>();
    txn_manager_ = owned_txn_manager_.get();
  }
  if (config_.enable_merge_thread) {
    running_ = true;
    merge_thread_ = std::thread([this] { MergeLoop(); });
  }
}

DbmTable::~DbmTable() {
  {
    std::lock_guard<std::mutex> g(queue_mu_);
    running_ = false;
  }
  queue_cv_.notify_all();
  if (merge_thread_.joinable()) merge_thread_.join();
  for (uint64_t i = 0; i < kMaxRanges; ++i) {
    delete ranges_[i].load(std::memory_order_relaxed);
  }
}

DbmTable::MainRange* DbmTable::GetRange(uint64_t id) const {
  if (id >= kMaxRanges) return nullptr;
  return ranges_[id].load(std::memory_order_acquire);
}

DbmTable::MainRange* DbmTable::EnsureRange(uint64_t id) {
  MainRange* r = GetRange(id);
  if (r != nullptr) return r;
  SpinGuard g(ranges_latch_);
  r = ranges_[id].load(std::memory_order_acquire);
  if (r == nullptr) {
    r = new MainRange(config_.range_size, schema_.num_columns(),
                      kDeltaHeader + schema_.num_columns());
    ranges_[id].store(r, std::memory_order_release);
    uint64_t n = num_ranges_.load(std::memory_order_relaxed);
    while (n < id + 1 && !num_ranges_.compare_exchange_weak(
                             n, id + 1, std::memory_order_acq_rel)) {
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// Gate: the blocking drain
// ---------------------------------------------------------------------------

void DbmTable::GateEnter() {
  std::unique_lock<std::mutex> lk(gate_mu_);
  gate_cv_.wait(lk, [this] { return !merge_pending_; });
  ++active_txns_;
}

void DbmTable::GateExit() {
  std::lock_guard<std::mutex> g(gate_mu_);
  --active_txns_;
  gate_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

Txn DbmTable::Begin(IsolationLevel iso) {
  GateEnter();
  return Txn(this, txn_manager_->Begin(iso));
}

Status DbmTable::CommitTxn(Transaction* txn) {
  if (txn->finished()) return Status::InvalidArgument("finished");
  Timestamp commit_time = txn_manager_->EnterPreCommit(txn);
  txn_manager_->MarkCommitted(txn);
  for (const WriteEntry& w : txn->writeset()) {
    MainRange* r = GetRange(w.range_id);
    if (r == nullptr) continue;
    std::atomic<Value>* sref = r->delta.Slot(w.seq, 0);
    Value expected = txn->id();
    sref->compare_exchange_strong(expected, commit_time,
                                  std::memory_order_acq_rel);
  }
  txn_manager_->Retire(txn->id());
  txn->set_finished();
  GateExit();
  return Status::OK();
}

void DbmTable::AbortTxn(Transaction* txn) {
  if (txn->finished()) return;
  txn_manager_->MarkAborted(txn);
  for (const WriteEntry& w : txn->writeset()) {
    MainRange* r = GetRange(w.range_id);
    if (r == nullptr) continue;
    std::atomic<Value>* sref = r->delta.Slot(w.seq, 0);
    Value expected = txn->id();
    sref->compare_exchange_strong(expected, kAbortedStamp,
                                  std::memory_order_acq_rel);
    if (w.is_insert) primary_.Erase(w.inserted_key);
  }
  txn_manager_->Retire(txn->id());
  txn->set_finished();
  GateExit();
}

// ---------------------------------------------------------------------------
// Writes: inserts and updates both append to the range's delta store
// ---------------------------------------------------------------------------

Status DbmTable::Insert(Transaction* txn, const std::vector<Value>& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  uint64_t rid = next_row_.fetch_add(1, std::memory_order_relaxed);
  MainRange* r = EnsureRange(rid / config_.range_size);
  uint32_t slot = static_cast<uint32_t>(rid % config_.range_size);
  uint32_t cur = r->occupied.load(std::memory_order_relaxed);
  while (cur < slot + 1 && !r->occupied.compare_exchange_weak(
                               cur, slot + 1, std::memory_order_acq_rel)) {
  }
  if (!primary_.Insert(row[0], rid)) {
    return Status::AlreadyExists("duplicate key");
  }
  uint64_t idx = r->delta.Reserve();
  const uint32_t ncols = schema_.num_columns();
  for (ColumnId c = 0; c < ncols; ++c) {
    r->delta.Slot(idx, kDeltaHeader + c)->store(row[c],
                                                std::memory_order_relaxed);
  }
  r->delta.Slot(idx, 1)->store(0, std::memory_order_relaxed);
  r->delta.Slot(idx, 2)->store(slot, std::memory_order_relaxed);
  r->delta.Slot(idx, 3)->store(schema_.AllColumns(),
                               std::memory_order_relaxed);
  r->delta.Slot(idx, 0)->store(txn->id(), std::memory_order_release);
  r->indirection[slot].store(idx, std::memory_order_release);
  txn->writeset().push_back(WriteEntry{rid / config_.range_size, slot,
                                       static_cast<uint32_t>(idx),
                                       /*is_insert=*/true, row[0]});
  return Status::OK();
}

Status DbmTable::Update(Transaction* txn, Value key, ColumnMask mask,
                        const std::vector<Value>& row) {
  if (mask == 0 || (mask & 1ull) != 0) {
    return Status::InvalidArgument("bad mask");
  }
  Rid rid = primary_.Get(key);
  if (rid == kInvalidRid) return Status::NotFound("no such key");
  MainRange* r = GetRange(rid / config_.range_size);
  if (r == nullptr) return Status::NotFound("no range");
  uint32_t slot = static_cast<uint32_t>(rid % config_.range_size);

  // Latch-free write-write detection on the indirection (as L-Store).
  auto& ind = r->indirection[slot];
  uint64_t iv = ind.load(std::memory_order_acquire);
  for (;;) {
    if ((iv & kIndirLatchBit) != 0) {
      return Status::Aborted("write-write conflict");
    }
    if (ind.compare_exchange_weak(iv, iv | kIndirLatchBit,
                                  std::memory_order_acq_rel)) {
      break;
    }
  }
  uint64_t prev = iv & ~kIndirLatchBit;
  Value latest_raw = prev != 0
                         ? r->delta.Slot(prev, 0)->load(
                               std::memory_order_acquire)
                         : (slot < r->start.size() ? r->start[slot] : kNull);
  if (IsTxnId(latest_raw) && latest_raw != txn->id()) {
    TransactionManager::StateView view = txn_manager_->GetState(latest_raw);
    if (view.found && (view.state == TxnState::kActive ||
                       view.state == TxnState::kPreCommit)) {
      ind.store(iv, std::memory_order_release);
      return Status::Aborted("write-write conflict");
    }
  }

  // Refuse updates of deleted records.
  {
    std::vector<Value> probe(schema_.num_columns(), kNull);
    Status s = ResolveRecord(*r, slot, kMaxTimestamp, txn, 1ull, &probe);
    if (!s.ok()) {
      ind.store(iv, std::memory_order_release);
      return s;
    }
  }

  // Same-transaction stacking: mark the previous own delta superseded
  // when the new one covers all of its columns (Section 3.1).
  if (prev != 0 && latest_raw == txn->id()) {
    std::atomic<Value>* pm = r->delta.Slot(prev, 3);
    Value pmv = pm->load(std::memory_order_acquire);
    if ((mask & SchemaColumns(pmv)) == SchemaColumns(pmv)) {
      pm->store(pmv | kSupersededFlag, std::memory_order_release);
    }
  }

  uint64_t idx = r->delta.Reserve();
  for (BitIter it(mask); it; ++it) {
    r->delta.Slot(idx, kDeltaHeader + static_cast<uint32_t>(*it))
        ->store(row[*it], std::memory_order_relaxed);
  }
  r->delta.Slot(idx, 1)->store(prev, std::memory_order_relaxed);
  r->delta.Slot(idx, 2)->store(slot, std::memory_order_relaxed);
  r->delta.Slot(idx, 3)->store(mask, std::memory_order_relaxed);
  r->delta.Slot(idx, 0)->store(txn->id(), std::memory_order_release);
  txn->writeset().push_back(WriteEntry{rid / config_.range_size, slot,
                                       static_cast<uint32_t>(idx),
                                       /*is_insert=*/false, 0});
  ind.store(idx, std::memory_order_release);

  // Merge trigger: delta reached the threshold.
  if (config_.enable_merge_thread &&
      r->delta.next.load(std::memory_order_relaxed) >=
          config_.merge_threshold) {
    bool expected = false;
    if (r->queued.compare_exchange_strong(expected, true)) {
      {
        std::lock_guard<std::mutex> g(queue_mu_);
        merge_queue_.push_back(rid / config_.range_size);
      }
      queue_cv_.notify_one();
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

Status DbmTable::Delete(Transaction* txn, Value key) {
  Rid rid = primary_.Get(key);
  if (rid == kInvalidRid) return Status::NotFound("no such key");
  MainRange* r = GetRange(rid / config_.range_size);
  if (r == nullptr) return Status::NotFound("no range");
  uint32_t slot = static_cast<uint32_t>(rid % config_.range_size);

  auto& ind = r->indirection[slot];
  uint64_t iv = ind.load(std::memory_order_acquire);
  for (;;) {
    if ((iv & kIndirLatchBit) != 0) {
      return Status::Aborted("write-write conflict");
    }
    if (ind.compare_exchange_weak(iv, iv | kIndirLatchBit,
                                  std::memory_order_acq_rel)) {
      break;
    }
  }
  uint64_t prev = iv & ~kIndirLatchBit;
  Value latest_raw = prev != 0
                         ? r->delta.Slot(prev, 0)->load(
                               std::memory_order_acquire)
                         : (slot < r->start.size() ? r->start[slot] : kNull);
  if (IsTxnId(latest_raw) && latest_raw != txn->id()) {
    TransactionManager::StateView view = txn_manager_->GetState(latest_raw);
    if (view.found && (view.state == TxnState::kActive ||
                       view.state == TxnState::kPreCommit)) {
      ind.store(iv, std::memory_order_release);
      return Status::Aborted("write-write conflict");
    }
  }
  // Refuse double-delete.
  {
    std::vector<Value> probe(schema_.num_columns(), kNull);
    Status s = ResolveRecord(*r, slot, kMaxTimestamp, txn, 1ull, &probe);
    if (!s.ok()) {
      ind.store(iv, std::memory_order_release);
      return s;
    }
  }
  uint64_t idx = r->delta.Reserve();
  r->delta.Slot(idx, 1)->store(prev, std::memory_order_relaxed);
  r->delta.Slot(idx, 2)->store(slot, std::memory_order_relaxed);
  r->delta.Slot(idx, 3)->store(kDeleteFlag, std::memory_order_relaxed);
  r->delta.Slot(idx, 0)->store(txn->id(), std::memory_order_release);
  txn->writeset().push_back(WriteEntry{rid / config_.range_size, slot,
                                       static_cast<uint32_t>(idx),
                                       /*is_insert=*/false, 0});
  ind.store(idx, std::memory_order_release);
  return Status::OK();
}

bool DbmTable::VisibleRaw(std::atomic<Value>* sref, Value& raw,
                          Timestamp as_of, Transaction* txn) const {
  for (;;) {
    if (raw == kNull || IsAbortedStamp(raw)) return false;
    if (!IsTxnId(raw)) return raw < as_of;
    if (txn != nullptr && raw == txn->id()) return true;
    TransactionManager::StateView view = txn_manager_->GetState(raw);
    if (!view.found) {
      Value reread = sref->load(std::memory_order_acquire);
      if (reread == raw) {
        std::this_thread::yield();
        continue;
      }
      raw = reread;
      continue;
    }
    if (view.state == TxnState::kCommitted) {
      Value expected = raw;
      sref->compare_exchange_strong(expected, view.commit,
                                    std::memory_order_acq_rel);
      raw = view.commit;
      return raw < as_of;
    }
    if (view.state == TxnState::kAborted) {
      Value expected = raw;
      sref->compare_exchange_strong(expected, kAbortedStamp,
                                    std::memory_order_acq_rel);
      return false;
    }
    if (view.state == TxnState::kPreCommit && as_of != kMaxTimestamp &&
        (view.commit == 0 || view.commit < as_of)) {
      // Pre-commit writer inside this snapshot: wait for its outcome
      // so the snapshot stays internally consistent.
      std::this_thread::yield();
      continue;
    }
    return false;
  }
}

Status DbmTable::ResolveRecord(MainRange& r, uint32_t slot, Timestamp as_of,
                               Transaction* txn, ColumnMask mask,
                               std::vector<Value>* out) {
  ColumnMask remaining = mask;
  uint64_t idx =
      r.indirection[slot].load(std::memory_order_acquire) & ~kIndirLatchBit;
  bool first = true;
  bool insert_seen = false;
  while (idx != 0 && (remaining != 0 || first)) {
    std::atomic<Value>* sref = r.delta.Slot(idx, 0);
    Value raw = sref->load(std::memory_order_acquire);
    Value m = r.delta.Slot(idx, 3)->load(std::memory_order_acquire);
    uint64_t prev = r.delta.Slot(idx, 1)->load(std::memory_order_acquire);
    if (IsSupersededRecord(m)) {
      idx = prev;  // intermediate same-txn delta: implicitly invalid
      continue;
    }
    if (VisibleRaw(sref, raw, as_of, txn)) {
      if (first && IsDeleteRecord(m)) {
        return Status::NotFound("deleted");
      }
      if (m == schema_.AllColumns() && prev == 0) insert_seen = true;
      first = false;
      ColumnMask take = SchemaColumns(m) & remaining;
      for (BitIter it(take); it; ++it) {
        (*out)[*it] = r.delta.Slot(idx, kDeltaHeader +
                                            static_cast<uint32_t>(*it))
                          ->load(std::memory_order_acquire);
      }
      remaining &= ~take;
    }
    idx = prev;
  }
  if (remaining != 0 || first) {
    // Fall through to the main store.
    Value start = slot < r.start.size() ? r.start[slot] : kNull;
    bool main_visible = start != kNull && start < as_of &&
                        (slot >= r.deleted.size() || r.deleted[slot] == 0);
    if (first && !main_visible && !insert_seen) {
      return Status::NotFound("not visible");
    }
    if (main_visible) {
      const uint32_t ncols = schema_.num_columns();
      for (BitIter it(remaining); it; ++it) {
        (*out)[*it] = r.data[static_cast<size_t>(slot) * ncols + *it];
      }
    }
  }
  return Status::OK();
}

Status DbmTable::Read(Transaction* txn, Value key, ColumnMask mask,
                      std::vector<Value>* out) {
  out->assign(schema_.num_columns(), kNull);
  Rid rid = primary_.Get(key);
  if (rid == kInvalidRid) return Status::NotFound("no such key");
  MainRange* r = GetRange(rid / config_.range_size);
  if (r == nullptr) return Status::NotFound("no range");
  Timestamp as_of = txn->isolation() == IsolationLevel::kReadCommitted
                        ? kMaxTimestamp
                        : txn->begin_time();
  return ResolveRecord(*r, static_cast<uint32_t>(rid % config_.range_size),
                       as_of, txn, mask, out);
}

Status DbmTable::SumColumn(ColumnId col, Timestamp as_of, uint64_t* sum) {
  // Scans are transactions too: they hold the gate, so merges must
  // wait for them (and they wait for merges).
  GateEnter();
  const uint32_t ncols = schema_.num_columns();
  uint64_t acc = 0;
  std::vector<Value> tmp(ncols, kNull);
  uint64_t nranges = num_ranges_.load(std::memory_order_acquire);
  for (uint64_t ri = 0; ri < nranges; ++ri) {
    MainRange* r = GetRange(ri);
    if (r == nullptr) continue;
    uint32_t occ = r->occupied.load(std::memory_order_acquire);
    for (uint32_t slot = 0; slot < occ; ++slot) {
      uint64_t idx = r->indirection[slot].load(std::memory_order_acquire) &
                     ~kIndirLatchBit;
      if (idx == 0) {
        Value start = r->start[slot];
        if (start != kNull && start < as_of && r->deleted[slot] == 0) {
          acc += r->data[static_cast<size_t>(slot) * ncols + col];
        }
        continue;
      }
      tmp[col] = kNull;
      Status s = ResolveRecord(*r, slot, as_of, nullptr, 1ull << col, &tmp);
      if (s.ok() && tmp[col] != kNull) acc += tmp[col];
    }
  }
  *sum = acc;
  GateExit();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Blocking merge
// ---------------------------------------------------------------------------

bool DbmTable::MergeRange(uint64_t range_id) {
  MainRange* r = GetRange(range_id);
  if (r == nullptr) return false;
  uint64_t delta_len = r->delta.next.load(std::memory_order_acquire);
  if (delta_len == 0) return false;

  // Drain: close the gate and wait for active transactions to finish.
  auto t0 = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lk(gate_mu_);
    gate_cv_.wait(lk, [this] { return !merge_pending_; });
    merge_pending_ = true;
    gate_cv_.wait(lk, [this] { return active_txns_ == 0; });
  }
  auto t1 = std::chrono::steady_clock::now();
  drain_wait_us_.fetch_add(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count(),
      std::memory_order_relaxed);

  // All deltas are decided now (no active transactions). Apply the
  // newest committed version per (slot, column).
  const uint32_t ncols = schema_.num_columns();
  delta_len = r->delta.next.load(std::memory_order_acquire);
  std::unordered_map<uint32_t, ColumnMask> seen;
  for (uint64_t idx = delta_len; idx >= 1; --idx) {
    Value raw = r->delta.Slot(idx, 0)->load(std::memory_order_acquire);
    if (raw == kNull || IsAbortedStamp(raw)) continue;
    if (IsTxnId(raw)) {
      TransactionManager::StateView view = txn_manager_->GetState(raw);
      if (view.found && view.state == TxnState::kCommitted) {
        raw = view.commit;
      } else if (!view.found) {
        // Retired: the outcome was stamped into the slot; re-read.
        raw = r->delta.Slot(idx, 0)->load(std::memory_order_acquire);
        if (IsTxnId(raw) || IsAbortedStamp(raw) || raw == kNull) continue;
      } else {
        continue;  // aborted
      }
    }
    uint32_t slot = static_cast<uint32_t>(
        r->delta.Slot(idx, 2)->load(std::memory_order_acquire));
    Value m_flags = r->delta.Slot(idx, 3)->load(std::memory_order_acquire);
    if (IsSupersededRecord(m_flags)) continue;
    if (IsDeleteRecord(m_flags) && seen[slot] == 0) {
      r->deleted[slot] = 1;
      seen[slot] = schema_.AllColumns();
      if (r->start[slot] == kNull || raw > r->start[slot]) {
        r->start[slot] = raw;
      }
      continue;
    }
    ColumnMask m = SchemaColumns(m_flags);
    ColumnMask take = m & ~seen[slot];
    for (BitIter it(take); it; ++it) {
      r->data[static_cast<size_t>(slot) * ncols + *it] =
          r->delta.Slot(idx, kDeltaHeader + static_cast<uint32_t>(*it))
              ->load(std::memory_order_acquire);
    }
    seen[slot] |= m;
    if (r->start[slot] == kNull || raw > r->start[slot]) {
      r->start[slot] = raw;
    }
  }
  // Reset indirection and clear the delta.
  for (uint32_t slot = 0; slot < config_.range_size; ++slot) {
    r->indirection[slot].store(0, std::memory_order_relaxed);
  }
  r->delta.Clear();
  r->queued.store(false, std::memory_order_release);
  merges_.fetch_add(1, std::memory_order_relaxed);

  // Reopen the gate.
  {
    std::lock_guard<std::mutex> g(gate_mu_);
    merge_pending_ = false;
  }
  gate_cv_.notify_all();
  return true;
}

void DbmTable::MergeLoop() {
  for (;;) {
    uint64_t range_id;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_cv_.wait(lk, [this] { return !running_ || !merge_queue_.empty(); });
      if (!running_) return;
      range_id = merge_queue_.front();
      merge_queue_.pop_front();
    }
    MergeRange(range_id);
  }
}

}  // namespace lstore
