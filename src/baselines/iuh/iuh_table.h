// Baseline 1: In-place Update + History (Section 6.1).
//
// "A prominent storage organization is to append old versions of
// records to a history table and only retain the most recent version
// in the main table, updating it in-place" (inspired by Oracle
// Flashback Archive). Characteristics faithfully modelled:
//  * columnar main store, updated in place,
//  * standard shared/exclusive page latches — updates block readers
//    on the same page (the contention the evaluation measures),
//  * history table holds only the updated columns (the paper's
//    optimization), chained via the embedded indirection column,
//  * undo on abort restores the pre-image from the history,
//  * same transaction-manager timestamps/visibility as L-Store
//    ("for fairness, across all techniques...").

#ifndef LSTORE_BASELINES_IUH_IUH_TABLE_H_
#define LSTORE_BASELINES_IUH_IUH_TABLE_H_

#include <atomic>
#include <memory>
#include <vector>

#include "common/config.h"
#include "common/latch.h"
#include "common/status.h"
#include "common/types.h"
#include "core/schema.h"
#include "index/primary_index.h"
#include "txn/transaction.h"
#include "txn/transaction_manager.h"
#include "txn/txn.h"

namespace lstore {

class IuhTable : public TxnContext {
 public:
  IuhTable(Schema schema, TableConfig config,
           TransactionManager* txn_manager = nullptr);
  ~IuhTable();

  /// RAII session (same surface as Table): commit via txn.Commit(),
  /// auto-abort on destruction.
  Txn Begin(IsolationLevel iso = IsolationLevel::kReadCommitted);

  /// Non-ticking read snapshot for scans.
  Timestamp Now() const { return txn_manager_->SnapshotNow(); }

  Status Insert(Txn& txn, const std::vector<Value>& row) {
    LSTORE_RETURN_IF_ERROR(CheckActive(txn));
    return Insert(txn.raw(), row);
  }
  Status Update(Txn& txn, Value key, ColumnMask mask,
                const std::vector<Value>& row) {
    LSTORE_RETURN_IF_ERROR(CheckActive(txn));
    return Update(txn.raw(), key, mask, row);
  }
  Status Delete(Txn& txn, Value key) {
    LSTORE_RETURN_IF_ERROR(CheckActive(txn));
    return Delete(txn.raw(), key);
  }
  Status Read(Txn& txn, Value key, ColumnMask mask, std::vector<Value>* out) {
    LSTORE_RETURN_IF_ERROR(CheckActive(txn));
    return Read(txn.raw(), key, mask, out);
  }
  Status SumColumn(ColumnId col, Timestamp as_of, uint64_t* sum) const;

  const Schema& schema() const { return schema_; }
  TransactionManager& txn_manager() { return *txn_manager_; }
  uint64_t num_rows() const { return next_row_.load(std::memory_order_acquire); }

  /// History entries appended so far (tests/stats).
  uint64_t history_size() const {
    return hist_next_.load(std::memory_order_acquire);
  }

 private:
  // Session plumbing (TxnContext) + transaction-pointer cores.
  static Status CheckActive(const Txn& txn) {
    return txn.active() ? Status::OK()
                        : Status::InvalidArgument("transaction finished");
  }
  Status CommitTxn(Transaction* txn) override;
  void AbortTxn(Transaction* txn) override;
  Status Insert(Transaction* txn, const std::vector<Value>& row);
  Status Update(Transaction* txn, Value key, ColumnMask mask,
                const std::vector<Value>& row);
  Status Delete(Transaction* txn, Value key);
  Status Read(Transaction* txn, Value key, ColumnMask mask,
              std::vector<Value>* out);

  // History entry fields (flat stride layout):
  // [0]=rid, [1]=prev_idx, [2]=old_start_raw, [3]=mask|flags,
  // [4..4+ncols) = old values of updated columns (∅ elsewhere).
  static constexpr uint32_t kHistHeader = 4;
  static constexpr uint32_t kHistChunk = 4096;

  struct MainRange {
    MainRange(uint32_t range_size, uint32_t ncols, uint32_t page_slots);
    std::unique_ptr<std::atomic<Value>[]> data;        // range*ncols, in place
    std::unique_ptr<std::atomic<Value>[]> start;       // per record
    std::unique_ptr<std::atomic<uint64_t>[]> indirection;  // latest hist idx
    std::unique_ptr<std::atomic<uint8_t>[]> deleted;
    std::atomic<uint32_t> occupied{0};
    std::vector<RWSpinLatch> page_latches;             // per page of rows
  };

  MainRange* GetRange(uint64_t id) const;
  MainRange* EnsureRange(uint64_t id);
  RWSpinLatch& PageLatch(MainRange& r, uint32_t slot) const {
    return r.page_latches[slot / config_.base_page_slots];
  }

  std::atomic<Value>* HistSlot(uint64_t idx, uint32_t field);
  const std::atomic<Value>* HistSlot(uint64_t idx, uint32_t field) const;
  uint64_t HistReserve();

  bool VisibleRaw(std::atomic<Value>* sref, Value& raw, Timestamp as_of,
                  Transaction* txn) const;
  /// Resolve (possibly via history) the visible value of columns.
  Status ResolveUnderLatch(MainRange& r, uint32_t slot, Timestamp as_of,
                           Transaction* txn, ColumnMask mask,
                           std::vector<Value>* out) const;

  Schema schema_;
  TableConfig config_;
  std::unique_ptr<TransactionManager> owned_txn_manager_;
  TransactionManager* txn_manager_;
  PrimaryIndex primary_;

  static constexpr uint64_t kMaxRanges = 1 << 16;
  std::atomic<uint64_t> next_row_{0};
  mutable SpinLatch ranges_latch_;
  std::unique_ptr<std::atomic<MainRange*>[]> ranges_;
  std::atomic<uint64_t> num_ranges_{0};

  // History table (global, append-only; reduced read locality is part
  // of the baseline's cost profile, Section 6.2).
  uint32_t hist_stride_;
  mutable SpinLatch hist_latch_;
  std::vector<std::unique_ptr<std::atomic<Value>[]>> hist_chunks_;
  std::atomic<size_t> hist_num_chunks_{0};
  std::atomic<uint64_t> hist_next_{0};
};

}  // namespace lstore

#endif  // LSTORE_BASELINES_IUH_IUH_TABLE_H_
