#include "baselines/iuh/iuh_table.h"

#include <thread>

#include "common/bitutil.h"

namespace lstore {

IuhTable::MainRange::MainRange(uint32_t range_size, uint32_t ncols,
                               uint32_t page_slots)
    : data(std::make_unique<std::atomic<Value>[]>(
          static_cast<size_t>(range_size) * ncols)),
      start(std::make_unique<std::atomic<Value>[]>(range_size)),
      indirection(std::make_unique<std::atomic<uint64_t>[]>(range_size)),
      deleted(std::make_unique<std::atomic<uint8_t>[]>(range_size)),
      page_latches((range_size + page_slots - 1) / page_slots) {
  for (size_t i = 0; i < static_cast<size_t>(range_size) * ncols; ++i) {
    data[i].store(kNull, std::memory_order_relaxed);
  }
  for (uint32_t i = 0; i < range_size; ++i) {
    start[i].store(kNull, std::memory_order_relaxed);
    indirection[i].store(0, std::memory_order_relaxed);
    deleted[i].store(0, std::memory_order_relaxed);
  }
}

IuhTable::IuhTable(Schema schema, TableConfig config,
                   TransactionManager* txn_manager)
    : schema_(std::move(schema)),
      config_(config),
      ranges_(std::make_unique<std::atomic<MainRange*>[]>(kMaxRanges)),
      hist_stride_(kHistHeader + schema_.num_columns()) {
  for (uint64_t i = 0; i < kMaxRanges; ++i) {
    ranges_[i].store(nullptr, std::memory_order_relaxed);
  }
  if (txn_manager != nullptr) {
    txn_manager_ = txn_manager;
  } else {
    owned_txn_manager_ = std::make_unique<TransactionManager>();
    txn_manager_ = owned_txn_manager_.get();
  }
}

IuhTable::~IuhTable() {
  for (uint64_t i = 0; i < kMaxRanges; ++i) {
    delete ranges_[i].load(std::memory_order_relaxed);
  }
}

IuhTable::MainRange* IuhTable::GetRange(uint64_t id) const {
  if (id >= kMaxRanges) return nullptr;
  return ranges_[id].load(std::memory_order_acquire);
}

IuhTable::MainRange* IuhTable::EnsureRange(uint64_t id) {
  MainRange* r = GetRange(id);
  if (r != nullptr) return r;
  SpinGuard g(ranges_latch_);
  r = ranges_[id].load(std::memory_order_acquire);
  if (r == nullptr) {
    r = new MainRange(config_.range_size, schema_.num_columns(),
                      config_.base_page_slots);
    ranges_[id].store(r, std::memory_order_release);
    uint64_t n = num_ranges_.load(std::memory_order_relaxed);
    while (n < id + 1 && !num_ranges_.compare_exchange_weak(
                             n, id + 1, std::memory_order_acq_rel)) {
    }
  }
  return r;
}

std::atomic<Value>* IuhTable::HistSlot(uint64_t idx, uint32_t field) {
  uint64_t i = idx - 1;
  size_t chunk = i / kHistChunk;
  size_t off = (i % kHistChunk) * hist_stride_ + field;
  return &hist_chunks_[chunk][off];
}

const std::atomic<Value>* IuhTable::HistSlot(uint64_t idx,
                                             uint32_t field) const {
  uint64_t i = idx - 1;
  size_t chunk = i / kHistChunk;
  size_t off = (i % kHistChunk) * hist_stride_ + field;
  return &hist_chunks_[chunk][off];
}

uint64_t IuhTable::HistReserve() {
  uint64_t idx = hist_next_.fetch_add(1, std::memory_order_relaxed) + 1;
  size_t need = (idx - 1) / kHistChunk + 1;
  if (hist_num_chunks_.load(std::memory_order_acquire) < need) {
    SpinGuard g(hist_latch_);
    while (hist_chunks_.size() < need) {
      auto chunk = std::make_unique<std::atomic<Value>[]>(
          static_cast<size_t>(kHistChunk) * hist_stride_);
      for (size_t i = 0; i < static_cast<size_t>(kHistChunk) * hist_stride_;
           ++i) {
        chunk[i].store(kNull, std::memory_order_relaxed);
      }
      hist_chunks_.push_back(std::move(chunk));
    }
    hist_num_chunks_.store(hist_chunks_.size(), std::memory_order_release);
  }
  return idx;
}

Txn IuhTable::Begin(IsolationLevel iso) {
  return Txn(this, txn_manager_->Begin(iso));
}

Status IuhTable::CommitTxn(Transaction* txn) {
  if (txn->finished()) return Status::InvalidArgument("finished");
  Timestamp commit_time = txn_manager_->EnterPreCommit(txn);
  txn_manager_->MarkCommitted(txn);
  for (const WriteEntry& w : txn->writeset()) {
    MainRange* r = GetRange(w.range_id);
    if (r == nullptr) continue;
    std::atomic<Value>* sref = &r->start[w.base_slot];
    Value expected = txn->id();
    sref->compare_exchange_strong(expected, commit_time,
                                  std::memory_order_acq_rel);
  }
  txn_manager_->Retire(txn->id());
  txn->set_finished();
  return Status::OK();
}

void IuhTable::AbortTxn(Transaction* txn) {
  if (txn->finished()) return;
  txn_manager_->MarkAborted(txn);
  const uint32_t ncols = schema_.num_columns();
  // In-place storage requires *undo*: restore pre-images in reverse
  // order (this, and the undo logging it implies, is a structural cost
  // of the baseline — Section 6.1).
  auto& ws = txn->writeset();
  for (auto it = ws.rbegin(); it != ws.rend(); ++it) {
    MainRange* r = GetRange(it->range_id);
    if (r == nullptr) continue;
    if (it->is_insert) {
      RWSpinLatch& latch = PageLatch(*r, it->base_slot);
      latch.LockExclusive();
      r->deleted[it->base_slot].store(1, std::memory_order_release);
      r->start[it->base_slot].store(kAbortedStamp, std::memory_order_release);
      latch.UnlockExclusive();
      primary_.Erase(it->inserted_key);
      continue;
    }
    uint64_t hist_idx = it->inserted_key;  // repurposed: undo pointer
    RWSpinLatch& latch = PageLatch(*r, it->base_slot);
    latch.LockExclusive();
    if (r->indirection[it->base_slot].load(std::memory_order_acquire) ==
        hist_idx) {
      Value mask_flags = HistSlot(hist_idx, 3)->load(std::memory_order_acquire);
      ColumnMask mask = SchemaColumns(mask_flags);
      for (BitIter b(mask); b; ++b) {
        Value old = HistSlot(hist_idx, kHistHeader + static_cast<uint32_t>(*b))
                        ->load(std::memory_order_acquire);
        r->data[static_cast<size_t>(it->base_slot) * ncols + *b].store(
            old, std::memory_order_release);
      }
      if (IsDeleteRecord(mask_flags)) {
        r->deleted[it->base_slot].store(0, std::memory_order_release);
      }
      r->start[it->base_slot].store(
          HistSlot(hist_idx, 2)->load(std::memory_order_acquire),
          std::memory_order_release);
      r->indirection[it->base_slot].store(
          HistSlot(hist_idx, 1)->load(std::memory_order_acquire),
          std::memory_order_release);
    }
    latch.UnlockExclusive();
  }
  txn_manager_->Retire(txn->id());
  txn->set_finished();
}

Status IuhTable::Insert(Transaction* txn, const std::vector<Value>& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  uint64_t rid = next_row_.fetch_add(1, std::memory_order_relaxed);
  MainRange* r = EnsureRange(rid / config_.range_size);
  uint32_t slot = static_cast<uint32_t>(rid % config_.range_size);
  uint32_t cur = r->occupied.load(std::memory_order_relaxed);
  while (cur < slot + 1 && !r->occupied.compare_exchange_weak(
                               cur, slot + 1, std::memory_order_acq_rel)) {
  }
  if (!primary_.Insert(row[0], rid)) {
    r->start[slot].store(kAbortedStamp, std::memory_order_release);
    r->deleted[slot].store(1, std::memory_order_release);
    return Status::AlreadyExists("duplicate key");
  }
  const uint32_t ncols = schema_.num_columns();
  RWSpinLatch& latch = PageLatch(*r, slot);
  latch.LockExclusive();
  for (ColumnId c = 0; c < ncols; ++c) {
    r->data[static_cast<size_t>(slot) * ncols + c].store(
        row[c], std::memory_order_relaxed);
  }
  r->start[slot].store(txn->id(), std::memory_order_release);
  latch.UnlockExclusive();
  txn->writeset().push_back(WriteEntry{rid / config_.range_size, slot, 0,
                                       /*is_insert=*/true, row[0]});
  return Status::OK();
}

bool IuhTable::VisibleRaw(std::atomic<Value>* sref, Value& raw,
                          Timestamp as_of, Transaction* txn) const {
  for (;;) {
    if (raw == kNull || IsAbortedStamp(raw)) return false;
    if (!IsTxnId(raw)) return raw < as_of;
    if (txn != nullptr && raw == txn->id()) return true;
    TransactionManager::StateView view = txn_manager_->GetState(raw);
    if (!view.found) {
      Value reread = sref->load(std::memory_order_acquire);
      if (reread == raw) {
        std::this_thread::yield();
        continue;
      }
      raw = reread;
      continue;
    }
    if (view.state == TxnState::kCommitted) {
      Value expected = raw;
      sref->compare_exchange_strong(expected, view.commit,
                                    std::memory_order_acq_rel);
      raw = view.commit;
      return raw < as_of;
    }
    if (view.state == TxnState::kPreCommit && as_of != kMaxTimestamp &&
        (view.commit == 0 || view.commit < as_of)) {
      // Pre-commit writer inside this snapshot: wait for its outcome
      // so the snapshot stays internally consistent.
      std::this_thread::yield();
      continue;
    }
    return false;  // active / pre-commit / aborted (undo in flight)
  }
}

Status IuhTable::ResolveUnderLatch(MainRange& r, uint32_t slot,
                                   Timestamp as_of, Transaction* txn,
                                   ColumnMask mask,
                                   std::vector<Value>* out) const {
  const uint32_t ncols = schema_.num_columns();
  // Current (in-place) version.
  std::vector<Value> vals(ncols, kNull);
  for (BitIter it(mask); it; ++it) {
    vals[*it] = r.data[static_cast<size_t>(slot) * ncols + *it].load(
        std::memory_order_acquire);
  }
  std::atomic<Value>* sref = &r.start[slot];
  Value raw = sref->load(std::memory_order_acquire);
  bool cur_deleted = r.deleted[slot].load(std::memory_order_acquire) != 0;
  if (VisibleRaw(sref, raw, as_of, txn)) {
    if (cur_deleted) return Status::NotFound("deleted");
    for (BitIter it(mask); it; ++it) (*out)[*it] = vals[*it];
    return Status::OK();
  }
  // Walk the history chain, applying pre-images newest -> oldest until
  // a visible version emerges.
  uint64_t idx = r.indirection[slot].load(std::memory_order_acquire);
  Value cur_start = raw;
  while (idx != 0) {
    Value mask_flags = HistSlot(idx, 3)->load(std::memory_order_acquire);
    ColumnMask m = SchemaColumns(mask_flags) & mask;
    for (BitIter it(m); it; ++it) {
      vals[*it] = HistSlot(idx, kHistHeader + static_cast<uint32_t>(*it))
                      ->load(std::memory_order_acquire);
    }
    if (IsDeleteRecord(mask_flags)) cur_deleted = false;  // undo the delete
    cur_start = HistSlot(idx, 2)->load(std::memory_order_acquire);
    if (cur_start != kNull && !IsTxnId(cur_start) &&
        !IsAbortedStamp(cur_start) && cur_start < as_of) {
      if (cur_deleted) return Status::NotFound("deleted");
      for (BitIter it(mask); it; ++it) (*out)[*it] = vals[*it];
      return Status::OK();
    }
    idx = HistSlot(idx, 1)->load(std::memory_order_acquire);
  }
  return Status::NotFound("no visible version");
}

Status IuhTable::Update(Transaction* txn, Value key, ColumnMask mask,
                        const std::vector<Value>& row) {
  if (mask == 0 || (mask & 1ull) != 0) {
    return Status::InvalidArgument("bad mask");
  }
  Rid rid = primary_.Get(key);
  if (rid == kInvalidRid) return Status::NotFound("no such key");
  MainRange* r = GetRange(rid / config_.range_size);
  if (r == nullptr) return Status::NotFound("no range");
  uint32_t slot = static_cast<uint32_t>(rid % config_.range_size);
  const uint32_t ncols = schema_.num_columns();

  RWSpinLatch& latch = PageLatch(*r, slot);
  latch.LockExclusive();

  Value raw = r->start[slot].load(std::memory_order_acquire);
  if (IsTxnId(raw) && raw != txn->id()) {
    TransactionManager::StateView view = txn_manager_->GetState(raw);
    if (view.found && (view.state == TxnState::kActive ||
                       view.state == TxnState::kPreCommit)) {
      latch.UnlockExclusive();
      return Status::Aborted("write-write conflict");
    }
  }
  if (r->deleted[slot].load(std::memory_order_acquire) != 0) {
    latch.UnlockExclusive();
    return Status::NotFound("deleted");
  }

  // Append the pre-image to the history, then update in place.
  uint64_t hist_idx = HistReserve();
  HistSlot(hist_idx, 0)->store(rid, std::memory_order_relaxed);
  HistSlot(hist_idx, 1)->store(
      r->indirection[slot].load(std::memory_order_acquire),
      std::memory_order_relaxed);
  HistSlot(hist_idx, 2)->store(raw, std::memory_order_relaxed);
  HistSlot(hist_idx, 3)->store(mask, std::memory_order_release);
  for (BitIter it(mask); it; ++it) {
    HistSlot(hist_idx, kHistHeader + static_cast<uint32_t>(*it))
        ->store(r->data[static_cast<size_t>(slot) * ncols + *it].load(
                    std::memory_order_acquire),
                std::memory_order_relaxed);
  }
  r->indirection[slot].store(hist_idx, std::memory_order_release);
  for (BitIter it(mask); it; ++it) {
    r->data[static_cast<size_t>(slot) * ncols + *it].store(
        row[*it], std::memory_order_release);
  }
  r->start[slot].store(txn->id(), std::memory_order_release);
  latch.UnlockExclusive();

  txn->writeset().push_back(WriteEntry{rid / config_.range_size, slot, 0,
                                       /*is_insert=*/false, hist_idx});
  return Status::OK();
}

Status IuhTable::Delete(Transaction* txn, Value key) {
  Rid rid = primary_.Get(key);
  if (rid == kInvalidRid) return Status::NotFound("no such key");
  MainRange* r = GetRange(rid / config_.range_size);
  if (r == nullptr) return Status::NotFound("no range");
  uint32_t slot = static_cast<uint32_t>(rid % config_.range_size);

  RWSpinLatch& latch = PageLatch(*r, slot);
  latch.LockExclusive();
  Value raw = r->start[slot].load(std::memory_order_acquire);
  if (IsTxnId(raw) && raw != txn->id()) {
    TransactionManager::StateView view = txn_manager_->GetState(raw);
    if (view.found && (view.state == TxnState::kActive ||
                       view.state == TxnState::kPreCommit)) {
      latch.UnlockExclusive();
      return Status::Aborted("write-write conflict");
    }
  }
  if (r->deleted[slot].load(std::memory_order_acquire) != 0) {
    latch.UnlockExclusive();
    return Status::NotFound("already deleted");
  }
  uint64_t hist_idx = HistReserve();
  HistSlot(hist_idx, 0)->store(rid, std::memory_order_relaxed);
  HistSlot(hist_idx, 1)->store(
      r->indirection[slot].load(std::memory_order_acquire),
      std::memory_order_relaxed);
  HistSlot(hist_idx, 2)->store(raw, std::memory_order_relaxed);
  HistSlot(hist_idx, 3)->store(kDeleteFlag, std::memory_order_release);
  r->indirection[slot].store(hist_idx, std::memory_order_release);
  r->deleted[slot].store(1, std::memory_order_release);
  r->start[slot].store(txn->id(), std::memory_order_release);
  latch.UnlockExclusive();

  txn->writeset().push_back(WriteEntry{rid / config_.range_size, slot, 0,
                                       /*is_insert=*/false, hist_idx});
  return Status::OK();
}

Status IuhTable::Read(Transaction* txn, Value key, ColumnMask mask,
                      std::vector<Value>* out) {
  out->assign(schema_.num_columns(), kNull);
  Rid rid = primary_.Get(key);
  if (rid == kInvalidRid) return Status::NotFound("no such key");
  MainRange* r = GetRange(rid / config_.range_size);
  if (r == nullptr) return Status::NotFound("no range");
  uint32_t slot = static_cast<uint32_t>(rid % config_.range_size);
  Timestamp as_of = txn->isolation() == IsolationLevel::kReadCommitted
                        ? kMaxTimestamp
                        : txn->begin_time();
  // Readers pay the shared page latch — this is the structural
  // contention with in-place writers (Section 6.2).
  RWSpinLatch& latch = PageLatch(*r, slot);
  latch.LockShared();
  Status s = ResolveUnderLatch(*r, slot, as_of, txn, mask, out);
  latch.UnlockShared();
  return s;
}

Status IuhTable::SumColumn(ColumnId col, Timestamp as_of,
                           uint64_t* sum) const {
  const uint32_t ncols = schema_.num_columns();
  uint64_t acc = 0;
  std::vector<Value> tmp(ncols, kNull);
  uint64_t nranges = num_ranges_.load(std::memory_order_acquire);
  for (uint64_t ri = 0; ri < nranges; ++ri) {
    MainRange* r = GetRange(ri);
    if (r == nullptr) continue;
    uint32_t occ = r->occupied.load(std::memory_order_acquire);
    uint32_t pages = (occ + config_.base_page_slots - 1) /
                     config_.base_page_slots;
    for (uint32_t p = 0; p < pages; ++p) {
      uint32_t lo = p * config_.base_page_slots;
      uint32_t hi = std::min(occ, lo + config_.base_page_slots);
      RWSpinLatch& latch = r->page_latches[p];
      latch.LockShared();
      for (uint32_t slot = lo; slot < hi; ++slot) {
        tmp[col] = kNull;
        Status s = ResolveUnderLatch(*r, slot, as_of, nullptr, 1ull << col,
                                     &tmp);
        if (s.ok() && tmp[col] != kNull) acc += tmp[col];
      }
      latch.UnlockShared();
    }
  }
  *sum = acc;
  return Status::OK();
}

}  // namespace lstore
