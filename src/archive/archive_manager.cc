#include "archive/archive_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <unordered_map>

#include "checkpoint/checkpoint_manager.h"
#include "obs/event_log.h"
#include "obs/trace.h"

namespace lstore {

namespace fs = std::filesystem;

namespace {

constexpr char kArcSuffix[] = ".arc";
constexpr char kManifestPrefix[] = "MANIFEST.";
constexpr char kCommitStem[] = "commit";
constexpr char kRedoStemSuffix[] = ".redo";

bool AllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

uint64_t ParseU64(std::string_view s) {
  uint64_t v = 0;
  for (char c : s) v = v * 10 + static_cast<uint64_t>(c - '0');
  return v;
}

/// Parse "<stem>.<lo>-<hi>.arc"; false for anything else.
bool ParseArcName(std::string_view name, std::string* stem, uint64_t* lo,
                  uint64_t* hi) {
  if (name.size() <= sizeof(kArcSuffix) - 1 ||
      name.substr(name.size() - 4) != kArcSuffix) {
    return false;
  }
  name.remove_suffix(4);
  size_t dot = name.rfind('.');
  if (dot == std::string_view::npos) return false;
  std::string_view range = name.substr(dot + 1);
  size_t dash = range.find('-');
  if (dash == std::string_view::npos) return false;
  std::string_view lo_s = range.substr(0, dash);
  std::string_view hi_s = range.substr(dash + 1);
  if (!AllDigits(lo_s) || !AllDigits(hi_s)) return false;
  *stem = std::string(name.substr(0, dot));
  *lo = ParseU64(lo_s);
  *hi = ParseU64(hi_s);
  return *lo != 0 && *hi >= *lo;
}

std::string SegmentName(const std::string& stem, uint64_t lo, uint64_t hi) {
  return stem + "." + std::to_string(lo) + "-" + std::to_string(hi) +
         kArcSuffix;
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open dir for fsync: " + dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IOError("dir fsync failed: " + dir);
  return Status::OK();
}

uint64_t FileMtime(const std::string& path) {
  struct ::stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_mtime)
                                        : 0;
}

struct RawSegment {
  std::string stem;
  uint64_t lo = 0, hi = 0;
  std::string path;
  uint64_t bytes = 0;
  uint64_t mtime = 0;
};

std::vector<RawSegment> ListSegmentsRaw(const std::string& archive_dir) {
  std::vector<RawSegment> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(archive_dir, ec)) {
    RawSegment seg;
    std::string name = entry.path().filename().string();
    if (!ParseArcName(name, &seg.stem, &seg.lo, &seg.hi)) continue;
    seg.path = entry.path().string();
    std::error_code sec;
    seg.bytes = static_cast<uint64_t>(fs::file_size(entry.path(), sec));
    seg.mtime = FileMtime(seg.path);
    out.push_back(std::move(seg));
  }
  std::sort(out.begin(), out.end(),
            [](const RawSegment& a, const RawSegment& b) {
              return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
            });
  return out;
}

}  // namespace

ArchiveManager::ArchiveManager(std::string db_dir, DurabilityOptions opts)
    : db_dir_(std::move(db_dir)),
      archive_dir_(ArchiveDirOf(db_dir_)),
      opts_(opts) {}

std::string ArchiveManager::ArchiveDirOf(const std::string& db_dir) {
  return db_dir + "/archive";
}

Status ArchiveManager::EnsureDir() {
  std::error_code ec;
  fs::create_directories(archive_dir_, ec);
  if (ec) {
    return Status::IOError("cannot create archive directory: " + archive_dir_);
  }
  // A crash mid-seal leaves a .tmp whose content still lives in the
  // not-yet-truncated live log; sweeping it keeps the directory clean
  // and guarantees a stale temp can never shadow a future seal.
  for (const auto& entry : fs::directory_iterator(archive_dir_, ec)) {
    if (entry.path().extension() == ".tmp") {
      std::error_code rec;
      fs::remove(entry.path(), rec);
    }
  }
  return Status::OK();
}

Status ArchiveManager::WriteFileAtomic(const std::string& final_path,
                                       std::string_view bytes) {
  std::string tmp = final_path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create archive temp: " + tmp);
  }
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = ok && std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IOError("short write sealing archive file: " + tmp);
  }
  if (std::rename(tmp.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot publish archive file: " + final_path);
  }
  return SyncDir(archive_dir_);
}

void ArchiveManager::PruneSubsumed(const std::string& stem, uint64_t lo,
                                   uint64_t hi, const std::string& keep) {
  for (const RawSegment& seg : ListSegmentsRaw(archive_dir_)) {
    if (seg.stem != stem || seg.path == keep) continue;
    if (seg.lo >= lo && seg.hi <= hi) {
      // Fully covered by the new seal (a crash between an earlier seal
      // and its log truncation re-seals a longer prefix): every LSN it
      // carries replays identically from the superseding segment.
      std::remove(seg.path.c_str());
    }
  }
}

Status ArchiveManager::SealSegment(const std::string& name,
                                   std::string_view bytes) {
  uint64_t seal_t0 = (kTraceEnabled && seal_ns_ != nullptr) ? NowNanos() : 0;
  std::string path = archive_dir_ + "/" + name;
  LSTORE_RETURN_IF_ERROR(WriteFileAtomic(path, bytes));
  std::string stem;
  uint64_t lo = 0, hi = 0;
  if (ParseArcName(name, &stem, &lo, &hi)) {
    PruneSubsumed(stem, lo, hi, path);
  }
  if (seals_total_ != nullptr) seals_total_->Add(1);
  if (seal_t0 != 0) seal_ns_->Record(NowNanos() - seal_t0);
  return Status::OK();
}

Status ArchiveManager::SealRedoPrefix(const std::string& table, uint64_t lo,
                                      uint64_t hi, std::string_view bytes) {
  std::lock_guard<std::mutex> g(mu_);
  Status s = SealSegment(SegmentName(table + kRedoStemSuffix, lo, hi), bytes);
  if (s.ok() && events_ != nullptr) {
    events_->Emit(EventSeverity::kInfo, "archive", "archive_seal",
                  "\"log\":\"" + JsonEscape(table) + ".redo\",\"lo\":" +
                      std::to_string(lo) + ",\"hi\":" + std::to_string(hi) +
                      ",\"bytes\":" + std::to_string(bytes.size()));
  }
  return s;
}

Status ArchiveManager::SealCommitPrefix(uint64_t lo, uint64_t hi,
                                        std::string_view bytes) {
  std::lock_guard<std::mutex> g(mu_);
  Status s = SealSegment(SegmentName(kCommitStem, lo, hi), bytes);
  if (s.ok() && events_ != nullptr) {
    events_->Emit(EventSeverity::kInfo, "archive", "archive_seal",
                  "\"log\":\"commit\",\"lo\":" + std::to_string(lo) +
                      ",\"hi\":" + std::to_string(hi) +
                      ",\"bytes\":" + std::to_string(bytes.size()));
  }
  return s;
}

Status ArchiveManager::ArchiveManifestCopy(uint64_t checkpoint_id) {
  std::lock_guard<std::mutex> g(mu_);
  std::string src = ManifestPath(db_dir_);
  std::FILE* f = std::fopen(src.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot read manifest: " + src);
  std::string bytes;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.append(chunk, n);
  }
  std::fclose(f);
  return WriteFileAtomic(
      archive_dir_ + "/" + kManifestPrefix + std::to_string(checkpoint_id),
      bytes);
}

Status ArchiveManager::ArchiveCheckpointFile(const std::string& file) {
  std::lock_guard<std::mutex> g(mu_);
  std::string src = db_dir_ + "/" + file;
  std::string dst = archive_dir_ + "/" + file;
  if (std::rename(src.c_str(), dst.c_str()) != 0) {
    return Status::OK();  // already moved (crash replay) or never written
  }
  return SyncDir(archive_dir_);
}

// ---------------------------------------------------------------------------
// Listings
// ---------------------------------------------------------------------------

std::vector<ArchiveSegment> ArchiveManager::ListRedoSegments(
    const std::string& db_dir, const std::string& table) {
  std::vector<ArchiveSegment> out;
  std::string want = table + kRedoStemSuffix;
  for (const RawSegment& seg : ListSegmentsRaw(ArchiveDirOf(db_dir))) {
    if (seg.stem != want) continue;
    out.push_back(ArchiveSegment{seg.lo, seg.hi, seg.path});
  }
  return out;
}

std::vector<ArchiveSegment> ArchiveManager::ListCommitSegments(
    const std::string& db_dir) {
  std::vector<ArchiveSegment> out;
  for (const RawSegment& seg : ListSegmentsRaw(ArchiveDirOf(db_dir))) {
    if (seg.stem != kCommitStem) continue;
    out.push_back(ArchiveSegment{seg.lo, seg.hi, seg.path});
  }
  return out;
}

std::vector<ArchivedManifest> ArchiveManager::ListManifests(
    const std::string& db_dir) {
  std::vector<ArchivedManifest> out;
  std::error_code ec;
  for (const auto& entry :
       fs::directory_iterator(ArchiveDirOf(db_dir), ec)) {
    std::string name = entry.path().filename().string();
    if (name.rfind(kManifestPrefix, 0) != 0) continue;
    std::string_view id = std::string_view(name).substr(
        sizeof(kManifestPrefix) - 1);
    if (!AllDigits(id)) continue;
    out.push_back(ArchivedManifest{ParseU64(id), entry.path().string()});
  }
  std::sort(out.begin(), out.end(),
            [](const ArchivedManifest& a, const ArchivedManifest& b) {
              return a.id < b.id;
            });
  return out;
}

std::string ArchiveManager::ResolveCheckpointFile(const std::string& db_dir,
                                                  const std::string& file) {
  std::string live = db_dir + "/" + file;
  struct ::stat st;
  if (::stat(live.c_str(), &st) == 0) return live;
  std::string archived = ArchiveDirOf(db_dir) + "/" + file;
  if (::stat(archived.c_str(), &st) == 0) return archived;
  return "";
}

void ArchiveManager::ForgetTable(const std::string& table) {
  std::lock_guard<std::mutex> g(mu_);
  std::string want = table + kRedoStemSuffix;
  for (const RawSegment& seg : ListSegmentsRaw(archive_dir_)) {
    if (seg.stem == want) std::remove(seg.path.c_str());
  }
}

// ---------------------------------------------------------------------------
// Retention
// ---------------------------------------------------------------------------

Status ArchiveManager::EnforceRetention() {
  if (!enabled()) return Status::OK();
  if (opts_.archive_max_bytes == 0 && opts_.archive_max_segments == 0 &&
      opts_.archive_max_age_seconds == 0) {
    return Status::OK();
  }
  LSTORE_TRACE(retention_ns_);
  std::lock_guard<std::mutex> g(mu_);
  uint64_t now = static_cast<uint64_t>(::time(nullptr));

  for (;;) {
    // Snapshot the archive state.
    std::vector<RawSegment> segments = ListSegmentsRaw(archive_dir_);
    std::vector<ArchivedManifest> manifests = ListManifests(db_dir_);
    uint64_t bytes = 0, oldest_mtime = UINT64_MAX;
    for (const RawSegment& s : segments) {
      bytes += s.bytes;
      oldest_mtime = std::min(oldest_mtime, s.mtime);
    }
    std::error_code ec;
    for (const ArchivedManifest& m : manifests) {
      bytes += static_cast<uint64_t>(fs::file_size(m.path, ec));
      oldest_mtime = std::min(oldest_mtime, FileMtime(m.path));
    }
    for (const auto& entry : fs::directory_iterator(archive_dir_, ec)) {
      if (entry.path().extension() == ".ckpt") {
        std::error_code sec;
        bytes += static_cast<uint64_t>(fs::file_size(entry.path(), sec));
      }
    }

    bool violated =
        (opts_.archive_max_bytes != 0 && bytes > opts_.archive_max_bytes) ||
        (opts_.archive_max_segments != 0 &&
         segments.size() > opts_.archive_max_segments) ||
        (opts_.archive_max_age_seconds != 0 && oldest_mtime != UINT64_MAX &&
         oldest_mtime + opts_.archive_max_age_seconds < now);
    if (!violated) return Status::OK();

    // Evict the oldest restore epoch. The floor is the oldest retained
    // manifest (archived, falling back to the live one): segments at
    // or below ITS watermarks only serve points older than the oldest
    // restorable checkpoint, so they go first; once none remain, the
    // oldest archived manifest itself (with its checkpoint files) is
    // retired — unless it IS the live checkpoint, which always stays.
    Manifest floor;
    bool exists = false;
    if (!manifests.empty()) {
      LSTORE_RETURN_IF_ERROR(
          ReadManifestFile(manifests.front().path, &floor, &exists));
    } else {
      LSTORE_RETURN_IF_ERROR(ReadManifest(db_dir_, &floor, &exists));
    }
    if (!exists) return Status::OK();  // nothing to anchor eviction on

    std::unordered_map<std::string, uint64_t> watermarks;
    for (const ManifestEntry& e : floor.entries) {
      watermarks[e.table] = e.log_watermark;
    }
    bool dropped = false;
    for (const RawSegment& seg : segments) {
      uint64_t mark = 0;
      if (seg.stem == kCommitStem) {
        mark = floor.commit_log_mark;
      } else if (seg.stem.size() > sizeof(kRedoStemSuffix) - 1 &&
                 seg.stem.substr(seg.stem.size() -
                                 (sizeof(kRedoStemSuffix) - 1)) ==
                     kRedoStemSuffix) {
        std::string table = seg.stem.substr(
            0, seg.stem.size() - (sizeof(kRedoStemSuffix) - 1));
        auto it = watermarks.find(table);
        if (it == watermarks.end()) continue;  // not covered by the floor
        mark = it->second;
      } else {
        continue;
      }
      if (seg.hi <= mark) {
        std::remove(seg.path.c_str());
        if (events_ != nullptr) {
          events_->Emit(EventSeverity::kInfo, "archive", "retention_evict",
                        "\"what\":\"segment\",\"stem\":\"" +
                            JsonEscape(seg.stem) + "\",\"lo\":" +
                            std::to_string(seg.lo) + ",\"hi\":" +
                            std::to_string(seg.hi));
        }
        dropped = true;
      }
    }
    if (dropped) continue;

    // No below-floor segments left: retire the floor manifest itself.
    if (manifests.empty()) return Status::OK();
    Manifest live;
    bool live_exists = false;
    LSTORE_RETURN_IF_ERROR(ReadManifest(db_dir_, &live, &live_exists));
    if (live_exists && live.checkpoint_id == manifests.front().id) {
      return Status::OK();  // the current epoch is never evicted
    }
    // Manifest first, then its checkpoint files: a crash in between
    // leaves unreferenced .ckpt orphans (reclaimed on the next pass),
    // never a manifest pointing at deleted files.
    std::remove(manifests.front().path.c_str());
    for (const ManifestEntry& e : floor.entries) {
      std::remove((archive_dir_ + "/" + e.file).c_str());
    }
    if (events_ != nullptr) {
      events_->Emit(EventSeverity::kInfo, "archive", "retention_evict",
                    "\"what\":\"epoch\",\"checkpoint_id\":" +
                        std::to_string(manifests.front().id));
    }
  }
}

}  // namespace lstore
