// Log archiving: turns checkpoint truncation from deletion into
// archival, so the database can be restored to any archived
// cross-table-consistent commit point (Database::RestoreToPoint).
//
// Layout under <db_dir>/archive/:
//   <table>.redo.<lo>-<hi>.arc   sealed redo-log prefix covering LSNs
//                                [lo, hi] — a self-describing framed
//                                file (leading truncation point), so it
//                                replays through RedoLog::Replay
//   commit.<lo>-<hi>.arc         sealed commit-log prefix, same scheme
//   MANIFEST.<id>                the manifest as published by
//                                checkpoint <id> (carries the archive
//                                watermarks: capture_time +
//                                commit_log_mark)
//   ckpt_<id>_<table>.ckpt       superseded checkpoint files, moved
//                                here instead of deleted
//
// Every seal is atomic (tmp + rename + directory fsync) and happens
// BEFORE the truncated log is published, so a crash anywhere in the
// checkpoint sequence loses nothing: the prefix exists in the archive,
// the live log, or both — overlapping segments from a crash replay
// idempotently and are pruned by the next seal that subsumes them.
//
// Retention (DurabilityOptions::archive_max_*) evicts whole restore
// epochs oldest-first: the oldest archived manifest, its checkpoint
// files, and exactly the segments that only serve points older than
// the next retained manifest — never a segment newer than the oldest
// restorable checkpoint.

#ifndef LSTORE_ARCHIVE_ARCHIVE_MANAGER_H_
#define LSTORE_ARCHIVE_ARCHIVE_MANAGER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace lstore {

class EventLog;

/// One sealed log segment, parsed from its file name.
struct ArchiveSegment {
  uint64_t lo = 0;     ///< first LSN the segment carries
  uint64_t hi = 0;     ///< last LSN the segment carries
  std::string path;    ///< absolute path
};

/// One archived manifest, parsed from its file name.
struct ArchivedManifest {
  uint64_t id = 0;
  std::string path;
};

class ArchiveManager {
 public:
  ArchiveManager(std::string db_dir, DurabilityOptions opts);

  bool enabled() const { return opts_.archive_enabled; }
  const std::string& archive_dir() const { return archive_dir_; }

  /// Wire registry metrics: seal counts/durations and retention-pass
  /// durations. Call before concurrent use (Database::Open does).
  void set_metrics(MetricsRegistry* registry) {
    if (registry == nullptr) return;
    seals_total_ = registry->GetCounter("lstore_archive_seals_total",
                                        "Log prefixes sealed into segments");
    seal_ns_ = registry->GetHistogram("lstore_archive_seal_ns",
                                      "Segment seal duration (ns)");
    retention_ns_ = registry->GetHistogram(
        "lstore_archive_retention_ns", "Retention enforcement pass (ns)");
  }

  /// Wire the engine event log (nullable): seals emit `archive_seal`,
  /// retention deletions emit `retention_evict`. Call before
  /// concurrent use (Database::Open does, next to set_metrics).
  void set_event_log(EventLog* events) { events_ = events; }

  /// Create the archive directory and sweep stale .tmp files (a crash
  /// mid-seal leaves at most one; the sealed data still lives in the
  /// not-yet-truncated log). Called once at Database::Open.
  Status EnsureDir();

  /// Seal the retired prefix of `table`'s redo log covering [lo, hi]
  /// (FramedLog::SealSink contract: bytes are durable on OK return).
  /// Segments this one subsumes are pruned afterwards.
  Status SealRedoPrefix(const std::string& table, uint64_t lo, uint64_t hi,
                        std::string_view bytes);

  /// Same for the database commit log.
  Status SealCommitPrefix(uint64_t lo, uint64_t hi, std::string_view bytes);

  /// Copy the just-published live MANIFEST to MANIFEST.<id> (atomic),
  /// making checkpoint `id` a restorable epoch boundary.
  Status ArchiveManifestCopy(uint64_t checkpoint_id);

  /// Move a superseded checkpoint file into the archive (it is still
  /// referenced by the archived manifests). A missing source is
  /// ignored — a crash may have moved it already.
  Status ArchiveCheckpointFile(const std::string& file);

  /// Apply the retention policy (no-op when every limit is 0).
  Status EnforceRetention();

  /// Drop every archived redo segment of `table`: called when the
  /// table is dropped or its name is reused — a recreated table's log
  /// restarts at LSN 1, so stale segments would poison the stitch.
  void ForgetTable(const std::string& table);

  // --- restore-side listings (static: need no live database) ---------------

  static std::string ArchiveDirOf(const std::string& db_dir);

  /// Sealed redo segments of `table`, sorted by lo.
  static std::vector<ArchiveSegment> ListRedoSegments(
      const std::string& db_dir, const std::string& table);

  /// Sealed commit-log segments, sorted by lo.
  static std::vector<ArchiveSegment> ListCommitSegments(
      const std::string& db_dir);

  /// Archived manifests, sorted by checkpoint id.
  static std::vector<ArchivedManifest> ListManifests(
      const std::string& db_dir);

  /// Resolve a checkpoint file name against the live directory, then
  /// the archive; empty string when absent from both.
  static std::string ResolveCheckpointFile(const std::string& db_dir,
                                           const std::string& file);

 private:
  Status SealSegment(const std::string& name, std::string_view bytes);
  Status WriteFileAtomic(const std::string& final_path,
                         std::string_view bytes);
  /// Delete segments of `stem` ("<table>.redo" / "commit") fully
  /// contained in [lo, hi], except `keep`.
  void PruneSubsumed(const std::string& stem, uint64_t lo, uint64_t hi,
                     const std::string& keep);

  std::string db_dir_;
  std::string archive_dir_;
  DurabilityOptions opts_;
  /// Serializes mutations (seals, retention) — checkpoints already
  /// serialize them, this is belt-and-braces for direct test use.
  std::mutex mu_;
  Counter* seals_total_ = nullptr;
  Histogram* seal_ns_ = nullptr;
  Histogram* retention_ns_ = nullptr;
  EventLog* events_ = nullptr;
};

}  // namespace lstore

#endif  // LSTORE_ARCHIVE_ARCHIVE_MANAGER_H_
