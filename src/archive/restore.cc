// Point-in-time recovery: Database::RestoreToPoint.
//
// A restore point T (an inclusive commit time, or a commit-log LSN
// resolved to one) is rebuilt as:
//   1. collect every commit-log record — sealed commit segments in LSN
//      order, then the live COMMIT_LOG — and fold them into ONE
//      outcome map truncated at T (abort markers stay authoritative);
//      every table replays against this map, so a cross-table
//      transaction lands on all of its participants or none,
//   2. pick the newest checkpoint manifest (archived or live) whose
//      capture_time watermark proves it contains no commit beyond T;
//      with none, the restore starts from the empty state,
//   3. per table: stitch the sealed redo segments and the live log
//      into one LSN-continuous stream from the checkpoint watermark
//      (a gap at the front means retention evicted the point —
//      NotFound; a gap in the middle or a torn segment is Corruption;
//      overlaps replay idempotently), and run the ordinary restart
//      recovery over the stitched stream with the outcome horizon T,
//   4. fast-forward the clock past every included commit, so the
//      restored database's Now() IS the point: commits at or before T
//      are visible, everything later never happened.
//
// The restored Database is in-memory (no logs, no checkpoints); the
// target directory is only read — checkpoint-referenced base segments
// map lazily onto a read-only handle of the table's .segs store.

#include <sys/stat.h>

#include <algorithm>
#include <map>
#include <unordered_map>

#include "archive/archive_manager.h"
#include "checkpoint/checkpoint_manager.h"
#include "core/database.h"
#include "core/table.h"
#include "log/commit_log.h"
#include "log/framed_log.h"
#include "log/redo_log.h"
#include "obs/trace.h"

namespace lstore {

namespace {

bool FileExists(const std::string& path) {
  struct ::stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// Verify a sealed segment really carries LSNs up to the hi its name
/// claims: a torn tail or truncated file scans clean-short and would
/// otherwise silently drop committed records into the stitch.
Status ValidateSegment(const ArchiveSegment& seg,
                       const FramedLog::Codec& codec) {
  FramedLog::ScanStats stats;
  Status s = FramedLog::ScanFile(seg.path, codec, nullptr, &stats);
  if (!s.ok()) {
    return Status::IOError("cannot read archive segment: " + seg.path);
  }
  if (!stats.clean_end || stats.last_lsn != seg.hi ||
      stats.bytes_consumed == 0) {
    return Status::Corruption("torn or truncated archive segment: " +
                              seg.path);
  }
  return Status::OK();
}

/// Select the segments that cover (from, ...] and verify the chain is
/// LSN-continuous through to the live log's truncation base. Subsumed
/// segments are skipped; partial overlaps stay (replay filters by LSN
/// and the writes are idempotent).
Status StitchSegments(const std::vector<ArchiveSegment>& segments,
                      uint64_t from, const std::string& live_path,
                      const FramedLog::Codec& codec,
                      std::vector<std::string>* paths) {
  uint64_t covered = from;
  bool first_needed = true;
  for (const ArchiveSegment& seg : segments) {
    if (seg.hi <= covered) continue;  // below the watermark or subsumed
    if (seg.lo > covered + 1) {
      // LSNs (covered, seg.lo) are gone. At the very front of the
      // chain that means retention (or never-enabled archiving) aged
      // the point out; mid-chain it means a segment vanished.
      return first_needed
                 ? Status::NotFound(
                       "restore point precedes the archived history")
                 : Status::Corruption("gap in archived log segments before " +
                                      seg.path);
    }
    LSTORE_RETURN_IF_ERROR(ValidateSegment(seg, codec));
    paths->push_back(seg.path);
    covered = seg.hi;
    first_needed = false;
  }
  if (FileExists(live_path)) {
    uint64_t live_base = FramedLog::ReadBaseLsn(live_path);
    if (live_base > covered) {
      return first_needed
                 ? Status::NotFound(
                       "restore point precedes the archived history")
                 : Status::Corruption(
                       "gap between archived segments and live log: " +
                       live_path);
    }
    paths->push_back(live_path);
  }
  return Status::OK();
}

}  // namespace

Status Database::RestoreToPoint(const std::string& dir,
                                const RestorePoint& point,
                                std::unique_ptr<Database>* out) {
  // Manual timing: the duration lands in the RESTORED database's
  // registry, which only exists on the success path.
  uint64_t restore_t0 = kTraceEnabled ? NowNanos() : 0;
  std::vector<CatalogEntry> catalog;
  bool catalog_exists = false;
  LSTORE_RETURN_IF_ERROR(ReadCatalog(dir, &catalog, &catalog_exists));
  if (!catalog_exists) {
    return Status::NotFound("not a durable database directory: " + dir);
  }

  // --- step 1: one cross-table outcome map, truncated at the point --------
  std::vector<ArchiveSegment> commit_segments =
      ArchiveManager::ListCommitSegments(dir);
  for (const ArchiveSegment& seg : commit_segments) {
    LSTORE_RETURN_IF_ERROR(
        ValidateSegment(seg, &CommitLog::ValidatePayload));
  }
  // Ordered by LSN so later abort markers override, and overlapping
  // segments (crash between seal and truncate) dedup naturally.
  std::map<uint64_t, CommitLogRecord> commit_records;
  auto collect = [&commit_records](const CommitLogRecord& rec, uint64_t lsn) {
    commit_records[lsn] = rec;
  };
  for (const ArchiveSegment& seg : commit_segments) {
    LSTORE_RETURN_IF_ERROR(CommitLog::Replay(seg.path, collect));
  }
  const std::string commit_live = dir + "/COMMIT_LOG";
  LSTORE_RETURN_IF_ERROR(CommitLog::Replay(commit_live, collect));

  Timestamp T = point.commit_time;
  if (point.commit_lsn != 0) {
    auto it = commit_records.find(point.commit_lsn);
    if (it == commit_records.end() || it->second.aborted) {
      return Status::NotFound("no committed commit-log record at LSN " +
                              std::to_string(point.commit_lsn));
    }
    T = it->second.commit_time;
  }
  if (T == 0) {
    return Status::InvalidArgument(
        "restore point needs a commit_time or commit_lsn");
  }

  std::unordered_map<TxnId, Timestamp> db_commits;
  for (const auto& [lsn, rec] : commit_records) {
    (void)lsn;
    if (rec.aborted) {
      // Authoritative: the commit record's flush failed and the client
      // saw the abort — regardless of any restore point.
      db_commits.erase(rec.txn_id);
    } else if (rec.commit_time <= T) {
      db_commits[rec.txn_id] = rec.commit_time;
    }
  }

  // --- step 2: newest checkpoint provably at or before the point ----------
  Manifest chosen;
  bool have_manifest = false;
  {
    Manifest live;
    bool exists = false;
    LSTORE_RETURN_IF_ERROR(ReadManifest(dir, &live, &exists));
    // capture_time is a STRICT upper bound on every stamped commit
    // time in the checkpoint, so capture_time <= T + 1 proves nothing
    // beyond T is baked in. A pre-archive manifest (capture_time 0)
    // proves nothing and never qualifies.
    auto qualifies = [T](const Manifest& m) {
      return m.capture_time != 0 && m.capture_time <= T + 1;
    };
    if (exists && qualifies(live)) {
      chosen = std::move(live);
      have_manifest = true;
    }
    if (!have_manifest) {
      std::vector<ArchivedManifest> archived =
          ArchiveManager::ListManifests(dir);
      for (auto it = archived.rbegin(); it != archived.rend(); ++it) {
        Manifest m;
        bool m_exists = false;
        LSTORE_RETURN_IF_ERROR(ReadManifestFile(it->path, &m, &m_exists));
        if (m_exists && qualifies(m)) {
          chosen = std::move(m);
          have_manifest = true;
          break;
        }
      }
    }
  }

  // Commit-record coverage: the stitch must reach from the chosen
  // checkpoint's commit-log mark to the live log without a hole
  // (records below the mark are stamped into the checkpoint itself).
  {
    std::vector<std::string> unused;
    LSTORE_RETURN_IF_ERROR(StitchSegments(
        commit_segments, have_manifest ? chosen.commit_log_mark : 0,
        commit_live, &CommitLog::ValidatePayload, &unused));
  }

  // --- steps 3+4: per-table stitched recovery ------------------------------
  auto db = std::unique_ptr<Database>(new Database());
  for (const CatalogEntry& ce : catalog) {
    TableConfig cfg = ce.config;
    cfg.enable_logging = false;
    cfg.log_path.clear();
    cfg.sync_commit = false;
    cfg.sync_counter = nullptr;
    cfg.buffer_pool = nullptr;
    cfg.segment_store = nullptr;
    std::string segs_path = dir + "/" + ce.name + ".segs";
    if (FileExists(segs_path)) {
      auto store = std::make_unique<SegmentStore>();
      LSTORE_RETURN_IF_ERROR(store->OpenReadOnly(segs_path));
      cfg.segment_store = store.get();
      db->segment_stores_[ce.name] = std::move(store);
    }

    Table* t;
    {
      SpinGuard g(db->latch_);
      db->tables_.push_back(Entry{
          ce.name, std::make_unique<Table>(ce.name, Schema(ce.columns),
                                           std::move(cfg),
                                           &db->txn_manager_)});
      db->tables_.back().table->txn_scope_ = db.get();
      t = db->tables_.back().table.get();
    }

    const ManifestEntry* me = nullptr;
    if (have_manifest) {
      for (const ManifestEntry& e : chosen.entries) {
        if (e.table == ce.name) me = &e;
      }
    }
    std::string ckpt_path;
    uint64_t watermark = 0, checksum = 0;
    if (me != nullptr) {
      ckpt_path = ArchiveManager::ResolveCheckpointFile(dir, me->file);
      if (ckpt_path.empty()) {
        return Status::Corruption("checkpoint file missing: " + me->file);
      }
      watermark = me->log_watermark;
      checksum = me->file_checksum;
    }

    std::vector<std::string> paths;
    LSTORE_RETURN_IF_ERROR(
        StitchSegments(ArchiveManager::ListRedoSegments(dir, ce.name),
                       watermark, dir + "/" + ce.name + ".log",
                       &RedoLog::ValidatePayload, &paths));
    LSTORE_RETURN_IF_ERROR(t->RecoverDurable(ckpt_path, watermark, checksum,
                                             &db_commits, &paths, T));

    std::vector<ColumnId> secs = ce.secondary_columns;
    if (me != nullptr) {
      secs.insert(secs.end(), me->secondary_columns.begin(),
                  me->secondary_columns.end());
    }
    std::sort(secs.begin(), secs.end());
    secs.erase(std::unique(secs.begin(), secs.end()), secs.end());
    for (ColumnId col : secs) t->CreateSecondaryIndex(col);
  }

  // The clock lands just past the newest included commit, so Now()
  // reads see exactly the state at the point — mirrors Open's resume,
  // bounded by T instead of the full history.
  Timestamp max_commit = 0;
  for (const auto& [txn, ct] : db_commits) {
    (void)txn;
    if (ct > max_commit) max_commit = ct;
  }
  if (max_commit > 0) db->txn_manager_.clock().AdvanceTo(max_commit + 1);

  if (restore_t0 != 0) {
    db->metrics_
        .GetHistogram("lstore_restore_ns",
                      "Point-in-time restore duration (ns)")
        ->Record(NowNanos() - restore_t0);
  }

  *out = std::move(db);
  return Status::OK();
}

}  // namespace lstore
