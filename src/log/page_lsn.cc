#include "log/page_lsn.h"

#include <algorithm>
#include <thread>

namespace lstore {

namespace {
constexpr uint32_t kWriterBit = 1u << 31;
}

// Shared/exclusive state is managed directly (not via RWSpinLatch)
// because the OR protocol requires a *bailable* promotion: a writer
// waiting to promote must abandon the wait the moment a higher-LSN
// writer takes over ownership ("checks if it is still the owner while
// waiting otherwise the latch is released"). Without the bail-out two
// aspiring owners would deadlock, each holding a shared reference the
// other waits on.

void OrProtocolPage::BeginWrite() {
  for (;;) {
    while (draining_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    // Acquire shared: increment if no writer holds the latch.
    uint32_t s = latch_state_.load(std::memory_order_relaxed);
    if ((s & kWriterBit) == 0 &&
        latch_state_.compare_exchange_weak(s, s + 1,
                                           std::memory_order_acquire)) {
      if (!draining_.load(std::memory_order_acquire)) break;
      latch_state_.fetch_sub(1, std::memory_order_release);
      continue;
    }
    std::this_thread::yield();
  }
  uint64_t g = grants_since_flush_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (g >= flush_threshold_) {
    // Starvation valve: stop admitting writers; the next owner flush
    // resets the gate.
    draining_.store(true, std::memory_order_release);
  }
}

void OrProtocolPage::EndWrite(uint64_t lsn) {
  // Step 1: try to become the owner (highest LSN wins).
  uint64_t cur = owner_lsn_.load(std::memory_order_relaxed);
  bool owner = false;
  while (lsn > cur) {
    if (owner_lsn_.compare_exchange_weak(cur, lsn,
                                         std::memory_order_acq_rel)) {
      owner = true;
      break;
    }
  }
  if (!owner) {
    // A writer with a higher LSN exists; it will update the pageLSN on
    // our behalf. Just release the shared latch.
    latch_state_.fetch_sub(1, std::memory_order_release);
    return;
  }

  // Step 2: promote shared -> exclusive, bailing if dethroned.
  for (;;) {
    if (owner_lsn_.load(std::memory_order_acquire) != lsn) {
      latch_state_.fetch_sub(1, std::memory_order_release);
      return;  // dethroned before acquiring the writer bit
    }
    uint32_t s = latch_state_.load(std::memory_order_relaxed);
    if ((s & kWriterBit) == 0 &&
        latch_state_.compare_exchange_weak(s, s | kWriterBit,
                                           std::memory_order_acquire)) {
      break;
    }
    std::this_thread::yield();
  }
  // Drop our own shared reference, then wait for the rest to drain.
  latch_state_.fetch_sub(1, std::memory_order_release);
  for (;;) {
    if ((latch_state_.load(std::memory_order_acquire) & ~kWriterBit) == 0) {
      break;
    }
    if (owner_lsn_.load(std::memory_order_acquire) != lsn) {
      // Dethroned while draining: hand the writer bit to the new
      // owner (which is spinning to acquire it) and leave.
      latch_state_.fetch_and(~kWriterBit, std::memory_order_release);
      return;
    }
    std::this_thread::yield();
  }

  // Step 3: exclusive section — publish the pageLSN.
  promotions_.fetch_add(1, std::memory_order_relaxed);
  uint64_t final_owner = owner_lsn_.load(std::memory_order_acquire);
  uint64_t prev = page_lsn_.load(std::memory_order_relaxed);
  while (prev < final_owner &&
         !page_lsn_.compare_exchange_weak(prev, final_owner,
                                          std::memory_order_acq_rel)) {
  }
  if (draining_.load(std::memory_order_acquire)) {
    grants_since_flush_.store(0, std::memory_order_relaxed);
    drains_.fetch_add(1, std::memory_order_relaxed);
    draining_.store(false, std::memory_order_release);
  }
  latch_state_.fetch_and(~kWriterBit, std::memory_order_release);
}

}  // namespace lstore
