#include "log/commit_log.h"

#include <sys/stat.h>

#include "storage/compression/varint.h"

namespace lstore {

namespace {

/// Payload type bytes (first byte of every payload). The truncation
/// point (tag 5) is owned by the framed core.
constexpr char kCommitRecord = 1;
constexpr char kAbortMarker = 2;  ///< authoritative cross-table abort

}  // namespace

void CommitLog::EncodePayload(const CommitLogRecord& rec, std::string* out) {
  if (rec.aborted) {
    out->push_back(kAbortMarker);
    PutVarint64(out, rec.txn_id);
    return;
  }
  out->push_back(kCommitRecord);
  PutVarint64(out, rec.txn_id);
  PutVarint64(out, rec.commit_time);
  PutVarint64(out, rec.participants.size());
  for (const CommitLogRecord::Participant& p : rec.participants) {
    PutVarint64(out, p.table.size());
    out->append(p.table);
    PutVarint64(out, p.last_lsn);
  }
}

bool CommitLog::DecodePayload(const char* data, size_t size,
                              CommitLogRecord* rec) {
  if (size == 0) return false;
  size_t pos = 1;
  uint64_t v;
  if (data[0] == kAbortMarker) {
    if (!GetVarint64(data, size, &pos, &v)) return false;
    rec->txn_id = v;
    rec->aborted = true;
    rec->commit_time = 0;
    rec->participants.clear();
    return pos == size;
  }
  if (data[0] != kCommitRecord) return false;
  rec->aborted = false;
  if (!GetVarint64(data, size, &pos, &v)) return false;
  rec->txn_id = v;
  if (!GetVarint64(data, size, &pos, &v)) return false;
  rec->commit_time = v;
  uint64_t nparts;
  if (!GetVarint64(data, size, &pos, &nparts)) return false;
  rec->participants.clear();
  for (uint64_t i = 0; i < nparts; ++i) {
    uint64_t len;
    if (!GetVarint64(data, size, &pos, &len) || len > size - pos) {
      return false;
    }
    CommitLogRecord::Participant p;
    p.table.assign(data + pos, len);
    pos += len;
    if (!GetVarint64(data, size, &pos, &v)) return false;
    p.last_lsn = v;
    rec->participants.push_back(std::move(p));
  }
  return pos == size;
}

bool CommitLog::ValidatePayload(const char* payload, size_t len,
                                uint64_t* lsn_count) {
  CommitLogRecord rec;
  if (!DecodePayload(payload, len, &rec)) return false;
  *lsn_count = 1;
  return true;
}

Status CommitLog::Open(
    const std::string& path, bool truncate,
    const std::function<void(const CommitLogRecord&, uint64_t lsn)>&
        replay_fn) {
  // The replay rides the open-time scan (one file read). A torn final
  // record is repaired by the scan and never delivered — it never
  // committed, on any participant.
  if (replay_fn == nullptr) return framed_.Open(path, truncate);
  return framed_.Open(
      path, truncate,
      [&replay_fn](std::string_view payload, uint64_t first_lsn, uint64_t,
                   size_t, size_t) {
        CommitLogRecord rec;
        DecodePayload(payload.data(), payload.size(), &rec);
        replay_fn(rec, first_lsn);
      });
}

uint64_t CommitLog::Append(const CommitLogRecord& rec) {
  std::string payload;
  EncodePayload(rec, &payload);
  return framed_.Append(payload, 1);
}

Status CommitLog::Scan(
    const std::function<void(const CommitLogRecord&, uint64_t lsn)>& fn) {
  LSTORE_RETURN_IF_ERROR(Flush(false));
  // Concurrent appends land beyond the flushed prefix; the scan stops
  // cleanly at whatever boundary it finds.
  Status s = Replay(framed_.path(), fn);
  if (!s.ok()) {
    return Status::IOError("cannot read commit log: " + framed_.path());
  }
  return s;
}

Status CommitLog::Replay(
    const std::string& path,
    const std::function<void(const CommitLogRecord&, uint64_t lsn)>& fn,
    ReplayStats* stats) {
  struct ::stat st;
  if (::stat(path.c_str(), &st) != 0) return Status::OK();  // no log yet
  Status s = FramedLog::ScanFile(
      path, &CommitLog::ValidatePayload,
      [&fn](std::string_view payload, uint64_t first_lsn, uint64_t, size_t,
            size_t) {
        if (!fn) return;
        CommitLogRecord rec;
        DecodePayload(payload.data(), payload.size(), &rec);
        fn(rec, first_lsn);
      },
      stats);
  if (!s.ok()) return Status::IOError("cannot open commit log for replay");
  return Status::OK();
}

}  // namespace lstore
