#include "log/commit_log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "log/redo_log.h"
#include "storage/compression/varint.h"

namespace lstore {

namespace {

/// Payload type bytes (first byte of every payload).
constexpr char kCommitRecord = 1;
constexpr char kAbortMarker = 2;      ///< authoritative cross-table abort
constexpr char kTruncationPoint = 5;  ///< same value as the redo log's

bool SlurpFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    out->append(chunk, n);
  }
  std::fclose(f);
  return true;
}

void AppendFrame(std::string* out, const std::string& payload) {
  PutVarint64(out, payload.size());
  out->append(payload);
  uint32_t crc = Fnv1a32(payload.data(), payload.size());
  out->append(reinterpret_cast<const char*>(&crc), sizeof(crc));
}

}  // namespace

CommitLog::~CommitLog() { Close(); }

void CommitLog::EncodePayload(const CommitLogRecord& rec, std::string* out) {
  if (rec.aborted) {
    out->push_back(kAbortMarker);
    PutVarint64(out, rec.txn_id);
    return;
  }
  out->push_back(kCommitRecord);
  PutVarint64(out, rec.txn_id);
  PutVarint64(out, rec.commit_time);
  PutVarint64(out, rec.participants.size());
  for (const CommitLogRecord::Participant& p : rec.participants) {
    PutVarint64(out, p.table.size());
    out->append(p.table);
    PutVarint64(out, p.last_lsn);
  }
}

bool CommitLog::DecodePayload(const char* data, size_t size,
                              CommitLogRecord* rec) {
  if (size == 0) return false;
  size_t pos = 1;
  uint64_t v;
  if (data[0] == kAbortMarker) {
    if (!GetVarint64(data, size, &pos, &v)) return false;
    rec->txn_id = v;
    rec->aborted = true;
    rec->commit_time = 0;
    rec->participants.clear();
    return pos == size;
  }
  if (data[0] != kCommitRecord) return false;
  rec->aborted = false;
  if (!GetVarint64(data, size, &pos, &v)) return false;
  rec->txn_id = v;
  if (!GetVarint64(data, size, &pos, &v)) return false;
  rec->commit_time = v;
  uint64_t nparts;
  if (!GetVarint64(data, size, &pos, &nparts)) return false;
  rec->participants.clear();
  for (uint64_t i = 0; i < nparts; ++i) {
    uint64_t len;
    if (!GetVarint64(data, size, &pos, &len) || len > size - pos) {
      return false;
    }
    CommitLogRecord::Participant p;
    p.table.assign(data + pos, len);
    pos += len;
    if (!GetVarint64(data, size, &pos, &v)) return false;
    p.last_lsn = v;
    rec->participants.push_back(std::move(p));
  }
  return pos == size;
}

Status CommitLog::Open(
    const std::string& path, bool truncate,
    const std::function<void(const CommitLogRecord&, uint64_t lsn)>&
        replay_fn) {
  Close();
  path_ = path;
  last_lsn_.store(0, std::memory_order_release);
  if (!truncate) {
    std::string data;
    if (SlurpFile(path, &data) && !data.empty()) {
      ReplayStats stats;
      ScanFrames(data,
                 replay_fn == nullptr
                     ? std::function<void(const CommitLogRecord&, uint64_t,
                                          size_t, size_t)>()
                     : [&replay_fn](const CommitLogRecord& rec, uint64_t lsn,
                                    size_t, size_t) { replay_fn(rec, lsn); },
                 &stats);
      last_lsn_.store(stats.last_lsn, std::memory_order_release);
      if (!stats.clean_end) {
        // A torn commit record never reached its durability point: the
        // transaction is uncommitted on every participant. Cut it away
        // so new appends are not hidden behind garbage.
        if (::truncate(path.c_str(),
                       static_cast<off_t>(stats.bytes_consumed)) != 0) {
          return Status::IOError("cannot repair torn commit log: " + path);
        }
      }
    }
  }
  file_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (file_ == nullptr) {
    return Status::IOError("cannot open commit log: " + path);
  }
  return Status::OK();
}

void CommitLog::Close() {
  if (file_ != nullptr) {
    Flush(false);
    std::fclose(file_);
    file_ = nullptr;
  }
}

uint64_t CommitLog::Append(const CommitLogRecord& rec) {
  std::string payload;
  EncodePayload(rec, &payload);
  std::lock_guard<std::mutex> g(mu_);
  AppendFrame(&buffer_, payload);
  return last_lsn_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

Status CommitLog::FlushBufferLocked() {
  if (file_ == nullptr) return Status::IOError("commit log not open");
  if (!buffer_.empty()) {
    size_t n = std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
    if (n != buffer_.size()) {
      // Drop exactly the consumed prefix on a short write (ENOSPC):
      // the file holds a partial frame, and a later retry must
      // continue at the same byte — re-writing the whole buffer after
      // the partial prefix would corrupt the log mid-file and take
      // every LATER (acknowledged) record down with it at the next
      // open's tail scan.
      std::string rest(buffer_, n);
      buffer_ = std::move(rest);
      return Status::IOError("short commit-log write");
    }
    buffer_.clear();
  }
  if (std::fflush(file_) != 0) return Status::IOError("fflush failed");
  return Status::OK();
}

Status CommitLog::Flush(bool sync) {
  std::lock_guard<std::mutex> g(mu_);
  LSTORE_RETURN_IF_ERROR(FlushBufferLocked());
  if (sync) {
    if (sync_counter_ != nullptr) {
      sync_counter_->fetch_add(1, std::memory_order_relaxed);
    }
    if (::fsync(::fileno(file_)) != 0) {
      return Status::IOError("commit-log fsync failed");
    }
  }
  return Status::OK();
}

Status CommitLog::Scan(
    const std::function<void(const CommitLogRecord&, uint64_t lsn)>& fn) {
  {
    std::lock_guard<std::mutex> g(mu_);
    LSTORE_RETURN_IF_ERROR(FlushBufferLocked());
  }
  // Concurrent appends land beyond the flushed prefix; the scan stops
  // cleanly at whatever boundary it finds.
  std::string data;
  if (!SlurpFile(path_, &data)) {
    return Status::IOError("cannot read commit log: " + path_);
  }
  ReplayStats stats;
  ScanFrames(
      data,
      [&fn](const CommitLogRecord& rec, uint64_t lsn, size_t, size_t) {
        fn(rec, lsn);
      },
      &stats);
  return Status::OK();
}

Status CommitLog::TruncateTo(uint64_t watermark_lsn) {
  std::lock_guard<std::mutex> g(mu_);
  LSTORE_RETURN_IF_ERROR(FlushBufferLocked());
  std::string data;
  if (!SlurpFile(path_, &data)) {
    return Status::IOError("cannot read commit log for truncation: " + path_);
  }
  ReplayStats stats;
  size_t cut = 0;
  uint64_t base_lsn = 0;
  bool found_cut = false;
  ScanFrames(
      data,
      [&](const CommitLogRecord&, uint64_t lsn, size_t begin, size_t) {
        if (!found_cut && lsn > watermark_lsn) {
          found_cut = true;
          cut = begin;
          base_lsn = lsn - 1;
        }
      },
      &stats);
  if (!found_cut) {
    cut = stats.bytes_consumed;
    base_lsn = stats.last_lsn;
  }

  std::string head;
  {
    std::string payload;
    payload.push_back(kTruncationPoint);
    PutVarint64(&payload, base_lsn);
    AppendFrame(&head, payload);
  }
  std::string tmp = path_ + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    return Status::IOError("cannot open temp commit log: " + tmp);
  }
  bool ok = std::fwrite(head.data(), 1, head.size(), out) == head.size() &&
            (data.size() == cut ||
             std::fwrite(data.data() + cut, 1, data.size() - cut, out) ==
                 data.size() - cut);
  ok = ok && std::fflush(out) == 0 && ::fsync(::fileno(out)) == 0;
  std::fclose(out);
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IOError("short write during commit-log truncation");
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot publish truncated commit log");
  }
  // Make the rename itself durable (same discipline as the redo log's
  // truncation): the file data alone does not survive a power loss
  // that forgets the directory entry swap.
  {
    std::string dir = path_.find_last_of('/') == std::string::npos
                          ? "."
                          : path_.substr(0, path_.find_last_of('/'));
    int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd >= 0) {
      (void)::fsync(fd);
      ::close(fd);
    }
  }
  // Re-point the handle at the new file (the old inode is unlinked).
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IOError("cannot reopen truncated commit log: " + path_);
  }
  return Status::OK();
}

void CommitLog::ScanFrames(
    const std::string& data,
    const std::function<void(const CommitLogRecord&, uint64_t lsn,
                             size_t frame_begin, size_t frame_end)>& fn,
    ReplayStats* stats) {
  size_t pos = 0;
  uint64_t lsn = 0;
  stats->clean_end = true;
  while (pos < data.size()) {
    size_t frame_start = pos;
    uint64_t len;
    if (!GetVarint64(data, &pos, &len)) {  // torn length varint
      stats->clean_end = false;
      pos = frame_start;
      break;
    }
    size_t remain = data.size() - pos;
    if (remain < sizeof(uint32_t) || len > remain - sizeof(uint32_t)) {
      stats->clean_end = false;
      pos = frame_start;
      break;
    }
    const char* payload = data.data() + pos;
    uint32_t stored;
    std::memcpy(&stored, data.data() + pos + len, sizeof(stored));
    if (Fnv1a32(payload, len) != stored) {  // corrupt frame
      stats->clean_end = false;
      pos = frame_start;
      break;
    }
    if (len > 0 && payload[0] == kTruncationPoint) {
      size_t sub = 1;
      uint64_t base = 0;
      if (!GetVarint64(payload, len, &sub, &base) || sub != len) {
        stats->clean_end = false;
        pos = frame_start;
        break;
      }
      pos += len + sizeof(uint32_t);
      lsn = base;
      stats->base_lsn = base;
      stats->last_lsn = lsn;
      continue;
    }
    CommitLogRecord rec;
    if (!DecodePayload(payload, len, &rec)) {  // malformed payload
      stats->clean_end = false;
      pos = frame_start;
      break;
    }
    pos += len + sizeof(uint32_t);
    ++lsn;
    stats->last_lsn = lsn;
    if (fn) fn(rec, lsn, frame_start, pos);
  }
  stats->bytes_consumed = pos;
}

Status CommitLog::Replay(
    const std::string& path,
    const std::function<void(const CommitLogRecord&, uint64_t lsn)>& fn,
    ReplayStats* stats) {
  struct ::stat st;
  if (::stat(path.c_str(), &st) != 0) return Status::OK();  // no log yet
  std::string data;
  if (!SlurpFile(path, &data)) {
    return Status::IOError("cannot open commit log for replay");
  }
  ReplayStats local;
  ScanFrames(
      data,
      [&fn](const CommitLogRecord& rec, uint64_t lsn, size_t, size_t) {
        if (fn) fn(rec, lsn);
      },
      stats != nullptr ? stats : &local);
  return Status::OK();
}

}  // namespace lstore
