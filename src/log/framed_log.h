// Shared framed-log core: the one implementation of the durability
// frame format used by the redo log, the commit log, and the archive
// stitcher.
//
// Frame format: [payload_len varint][payload][fnv1a32 over payload].
// Records carry implicit LSNs, numbered 1, 2, ... in append order; a
// frame may carry several LSNs (batch frames). A log whose prefix was
// truncated starts with a truncation-point frame (payload tag 5 +
// varint base) restoring the numbering, so LSNs are stable across
// truncations and archival.
//
// The core owns: buffered appends with short-write (ENOSPC) recovery,
// fsync (with the injectable commit-path sync counter), open-time LSN
// restore + torn-tail repair, the three-phase low-lock truncation, and
// the frame scan that every reader shares. What a payload *means* is
// the wrapper's business: the core calls a Codec to validate a record
// payload and learn how many LSNs it carries — so RedoLog, CommitLog,
// and the archive reader cannot diverge on framing, torn-tail, or
// truncation behavior.
//
// Truncation can archive instead of delete: TruncateTo accepts a
// SealSink that receives the retired prefix as a self-describing
// framed byte string (leading truncation point + the retired frames),
// which is exactly the content of an archive segment — replayable by
// the same scan as a live log.

#ifndef LSTORE_LOG_FRAMED_LOG_H_
#define LSTORE_LOG_FRAMED_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/metrics.h"

namespace lstore {

/// Registry handles a framed log records into (all optional): frames /
/// bytes appended, commit-path fsyncs, and append/flush latencies.
/// Wired by the owner (Table for redo logs, Database for the commit
/// log) with per-log metric names; a default-constructed struct (all
/// null) records nothing.
struct FramedLogMetrics {
  Counter* appends = nullptr;       ///< record frames appended
  Counter* append_bytes = nullptr;  ///< framed bytes appended
  Counter* fsyncs = nullptr;        ///< Flush(sync=true) calls
  Histogram* append_ns = nullptr;   ///< Append latency (lock + buffer)
  Histogram* flush_ns = nullptr;    ///< Flush latency (write [+ fsync])
};

/// FNV-1a 32-bit checksum over a byte range (per-frame checksums).
uint32_t Fnv1a32(const char* data, size_t n);

/// Incremental FNV-1a 64-bit (whole-file checksums of checkpoints).
inline constexpr uint64_t kFnv1a64Seed = 14695981039346656037ull;
inline uint64_t Fnv1a64(const char* data, size_t n,
                        uint64_t h = kFnv1a64Seed) {
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

class FramedLog {
 public:
  /// Outcome of scanning a framed file (replay, open repair, truncate).
  struct ScanStats {
    uint64_t base_lsn = 0;     ///< LSN numbering base (truncation point)
    uint64_t last_lsn = 0;     ///< LSN of the last well-formed record
    size_t bytes_consumed = 0; ///< file prefix covered by good frames
    bool clean_end = true;     ///< false: stopped at a torn/corrupt frame
  };

  /// Validates one record payload and reports how many LSNs it
  /// carries (1 for plain records, N for batch frames). Returning
  /// false marks the frame malformed: the scan stops there and treats
  /// the rest of the file as a torn tail. Truncation-point frames are
  /// handled by the core and never reach the codec.
  using Codec =
      std::function<bool(const char* payload, size_t len, uint64_t* lsn_count)>;

  /// Scan callback: one well-formed record frame with its first LSN,
  /// LSN count, and byte span [begin, end) in the scanned data.
  using FrameFn = std::function<void(std::string_view payload,
                                     uint64_t first_lsn, uint64_t lsn_count,
                                     size_t begin, size_t end)>;

  /// Archive sink for TruncateTo: receives the retired prefix covering
  /// LSNs [lo, hi] as a self-describing framed byte string (leading
  /// truncation point + retired frames). Must make the bytes durable
  /// before returning OK; an error aborts the truncation, leaving the
  /// log intact (retried at the next checkpoint).
  using SealSink =
      std::function<Status(uint64_t lo, uint64_t hi, std::string_view bytes)>;

  /// Payload tag of a truncation-point frame (shared by every log).
  static constexpr uint8_t kTruncationPointTag = 5;

  explicit FramedLog(Codec codec) : codec_(std::move(codec)) {}
  ~FramedLog() { Close(); }

  FramedLog(const FramedLog&) = delete;
  FramedLog& operator=(const FramedLog&) = delete;

  /// Open for appending. An existing file is scanned to restore the
  /// LSN counter; a torn tail (crash mid-write) is truncated away so
  /// new appends are not hidden behind garbage. `replay_fn` (optional)
  /// receives every well-formed frame during that same scan, so
  /// restart recovery reads the file once.
  Status Open(const std::string& path, bool truncate,
              const FrameFn& replay_fn = nullptr);
  void Close();
  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Append one framed payload carrying `lsn_count` LSNs (buffered).
  /// Returns the last LSN it received (0 when lsn_count == 0).
  uint64_t Append(std::string_view payload, uint64_t lsn_count);

  /// Flush buffered frames to the OS; fsync when `sync`.
  Status Flush(bool sync);

  /// LSN of the most recently appended record (0 = empty log).
  uint64_t last_lsn() const {
    return last_lsn_.load(std::memory_order_acquire);
  }

  /// Test hook: counts fsyncs issued by Flush(sync=true) so group
  /// commit tests can assert fsync count < committer count. Kept as a
  /// compatibility shim alongside set_metrics — both are incremented.
  void set_sync_counter(std::atomic<uint64_t>* counter) {
    sync_counter_ = counter;
  }

  /// Wire registry metrics (obs/metrics.h). Must be called before the
  /// log sees concurrent use (handles are read without a lock).
  void set_metrics(const FramedLogMetrics& m) { metrics_ = m; }

  /// Drop every record with LSN <= watermark: the retained tail is
  /// rewritten behind a truncation-point record via temp file + atomic
  /// rename + directory fsync. The bulk of the work (scanning the
  /// prefix, writing the retained tail) runs WITHOUT the log mutex, so
  /// concurrent appends are stalled only for the
  /// O(appends-since-scan) handle swap. A batch frame straddling the
  /// watermark is retained whole; the truncation point's LSN base
  /// backs up accordingly so numbering stays stable.
  ///
  /// With a `seal` sink, the retired prefix is handed over (durably)
  /// BEFORE the truncated log is published — archival turns the
  /// deletion into a move, and a crash between the two leaves at worst
  /// an overlapping segment that the next seal supersedes.
  Status TruncateTo(uint64_t watermark_lsn, const SealSink& seal = nullptr);

  // --- static framing helpers ----------------------------------------------

  /// Frame `payload` ([len][payload][fnv1a32]) onto `out`.
  static void AppendFrame(std::string* out, std::string_view payload);

  /// A complete truncation-point frame restoring `base_lsn`.
  static std::string TruncationPointFrame(uint64_t base_lsn);

  /// Scan `data`, invoking `fn` per good record frame; stops cleanly
  /// at the first torn or corrupt frame. The single source of truth
  /// for frame parsing.
  static void ScanFrames(std::string_view data, const Codec& codec,
                         const FrameFn& fn, ScanStats* stats);

  /// Scan a whole file (missing file = IOError).
  static Status ScanFile(const std::string& path, const Codec& codec,
                         const FrameFn& fn, ScanStats* stats);

  /// LSN base of the file's leading truncation-point frame (0 when
  /// the file is missing, empty, or starts with a record frame).
  static uint64_t ReadBaseLsn(const std::string& path);

 private:
  /// Flush `buffer_` into `file_` (caller holds mu_).
  Status FlushBufferLocked();

  /// Push the accumulated append/byte tallies to the registry
  /// counters (caller holds mu_). Appends tally into plain members on
  /// the mutex-protected path and publish every 64 frames and at every
  /// flush, so a sub-microsecond append never pays sharded-atomic
  /// traffic of its own.
  void PublishPendingLocked();

  Codec codec_;
  std::FILE* file_ = nullptr;
  std::string path_;
  std::mutex mu_;
  /// Serializes whole truncations against each other (mu_ still
  /// protects every file_/buffer_ touch). Ordering: truncate_mu_
  /// before mu_.
  std::mutex truncate_mu_;
  std::string buffer_;
  std::atomic<uint64_t> last_lsn_{0};
  std::atomic<uint64_t>* sync_counter_ = nullptr;
  FramedLogMetrics metrics_;
  uint64_t pending_appends_ = 0;      ///< under mu_, batched to metrics_
  uint64_t pending_append_bytes_ = 0; ///< under mu_, batched to metrics_
};

}  // namespace lstore

#endif  // LSTORE_LOG_FRAMED_LOG_H_
