// Database-level commit log: the single atomic commit point for
// cross-table transactions.
//
// The per-table redo logs carry only payload records (tail/insert
// appends) for a cross-table transaction; whether the transaction
// committed is decided by exactly ONE record here. The durability
// order is: flush every participant's redo log first, then append and
// flush the commit record — so a commit record's presence implies all
// of its payloads are durable, and its absence (crash anywhere before
// the commit-log flush, including a torn final record) aborts the
// transaction on every participant at recovery. Single-table commits
// keep their per-table commit records and never touch this log.
//
// Each record carries the participant tables with the redo-log LSN
// each had reached at commit time. Checkpoint truncation uses those
// watermarks as the low-water mark: a record whose participants are
// all covered by the latest checkpoint is dead weight, but records are
// only dropped from the contiguous prefix so LSN numbering stays
// stable (same kTruncationPoint scheme as RedoLog).
//
// Framing matches the redo log: [payload_len varint][payload][fnv1a32].

#ifndef LSTORE_LOG_COMMIT_LOG_H_
#define LSTORE_LOG_COMMIT_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace lstore {

/// One committed cross-table transaction — or, with `aborted` set, an
/// abort marker: written when the commit record's own flush failed and
/// may or may not have reached the disk, so ONE authoritative record
/// here (not N per-table abort records) decides the outcome for every
/// participant at recovery.
struct CommitLogRecord {
  TxnId txn_id = 0;
  Timestamp commit_time = 0;
  bool aborted = false;
  struct Participant {
    std::string table;       ///< table name (log files are named by it)
    uint64_t last_lsn = 0;   ///< that table's redo-log LSN at commit
  };
  std::vector<Participant> participants;  ///< empty on abort markers
};

class CommitLog {
 public:
  struct ReplayStats {
    uint64_t base_lsn = 0;     ///< LSN numbering base (truncation point)
    uint64_t last_lsn = 0;     ///< LSN of the last well-formed record
    size_t bytes_consumed = 0; ///< file prefix covered by good frames
    bool clean_end = true;     ///< false: stopped at a torn/corrupt frame
  };

  CommitLog() = default;
  ~CommitLog();

  CommitLog(const CommitLog&) = delete;
  CommitLog& operator=(const CommitLog&) = delete;

  /// Open for appending. An existing file is scanned to restore the
  /// LSN counter; a torn tail (crash mid-append) is truncated away —
  /// a torn commit record never committed, on any participant.
  /// `replay_fn` (optional) receives every well-formed record during
  /// that same scan, so restart recovery reads the file once.
  Status Open(const std::string& path, bool truncate,
              const std::function<void(const CommitLogRecord&, uint64_t lsn)>&
                  replay_fn = nullptr);
  void Close();
  bool is_open() const { return file_ != nullptr; }

  /// Append one commit record (buffered); returns its LSN.
  uint64_t Append(const CommitLogRecord& rec);

  /// Flush buffered records to the OS; fsync when `sync`. The fsync
  /// that returns from here IS the commit point of every record
  /// flushed by it.
  Status Flush(bool sync);

  uint64_t last_lsn() const {
    return last_lsn_.load(std::memory_order_acquire);
  }

  /// Test hook: counts fsyncs issued by Flush(sync=true) so group
  /// commit tests can assert fsync count < committer count.
  void set_sync_counter(std::atomic<uint64_t>* counter) {
    sync_counter_ = counter;
  }

  /// Deliver every well-formed record of the live log in append order
  /// (flushes the buffer first; does not fsync).
  Status Scan(const std::function<void(const CommitLogRecord&, uint64_t lsn)>&
                  fn);

  /// Drop every record with LSN <= watermark (the checkpoint-derived
  /// low-water mark): the retained tail is rewritten behind a
  /// truncation-point record via temp file + atomic rename. The commit
  /// log is small (one record per cross-table commit since the last
  /// checkpoint), so the rewrite runs under the log mutex.
  Status TruncateTo(uint64_t watermark_lsn);

  /// Replay a closed commit-log file, stopping cleanly at the first
  /// torn or corrupt frame. A missing file is an empty log (OK).
  static Status Replay(
      const std::string& path,
      const std::function<void(const CommitLogRecord&, uint64_t lsn)>& fn,
      ReplayStats* stats = nullptr);

  /// Serialize / deserialize one payload (exposed for tests).
  static void EncodePayload(const CommitLogRecord& rec, std::string* out);
  static bool DecodePayload(const char* data, size_t size,
                            CommitLogRecord* rec);

 private:
  /// Scan `data`, invoking `fn` per good commit record with its LSN;
  /// fills `stats`. The single source of truth for frame parsing.
  static void ScanFrames(
      const std::string& data,
      const std::function<void(const CommitLogRecord&, uint64_t lsn,
                               size_t frame_begin, size_t frame_end)>& fn,
      ReplayStats* stats);

  Status FlushBufferLocked();

  std::FILE* file_ = nullptr;
  std::string path_;
  std::mutex mu_;
  std::string buffer_;
  std::atomic<uint64_t> last_lsn_{0};
  std::atomic<uint64_t>* sync_counter_ = nullptr;
};

}  // namespace lstore

#endif  // LSTORE_LOG_COMMIT_LOG_H_
