// Database-level commit log: the single atomic commit point for
// cross-table transactions.
//
// The per-table redo logs carry only payload records (tail/insert
// appends) for a cross-table transaction; whether the transaction
// committed is decided by exactly ONE record here. The durability
// order is: flush every participant's redo log first, then append and
// flush the commit record — so a commit record's presence implies all
// of its payloads are durable, and its absence (crash anywhere before
// the commit-log flush, including a torn final record) aborts the
// transaction on every participant at recovery. Single-table commits
// keep their per-table commit records and never touch this log.
//
// Each record carries the participant tables with the redo-log LSN
// each had reached at commit time. Checkpoint truncation uses those
// watermarks as the low-water mark: a record whose participants are
// all covered by the latest checkpoint is dead weight, but records are
// only dropped from the contiguous prefix so LSN numbering stays
// stable (the shared truncation-point scheme of log/framed_log.h,
// which also owns the framing, torn-tail repair, and truncation
// machinery — this class supplies only the commit payload codec).

#ifndef LSTORE_LOG_COMMIT_LOG_H_
#define LSTORE_LOG_COMMIT_LOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "log/framed_log.h"

namespace lstore {

/// One committed cross-table transaction — or, with `aborted` set, an
/// abort marker: written when the commit record's own flush failed and
/// may or may not have reached the disk, so ONE authoritative record
/// here (not N per-table abort records) decides the outcome for every
/// participant at recovery.
struct CommitLogRecord {
  TxnId txn_id = 0;
  Timestamp commit_time = 0;
  bool aborted = false;
  struct Participant {
    std::string table;       ///< table name (log files are named by it)
    uint64_t last_lsn = 0;   ///< that table's redo-log LSN at commit
  };
  std::vector<Participant> participants;  ///< empty on abort markers
};

class CommitLog {
 public:
  using ReplayStats = FramedLog::ScanStats;

  CommitLog() : framed_(&CommitLog::ValidatePayload) {}

  CommitLog(const CommitLog&) = delete;
  CommitLog& operator=(const CommitLog&) = delete;

  /// Open for appending. An existing file is scanned to restore the
  /// LSN counter; a torn tail (crash mid-append) is truncated away —
  /// a torn commit record never committed, on any participant.
  /// `replay_fn` (optional) receives every well-formed record during
  /// that same scan, so restart recovery reads the file once.
  Status Open(const std::string& path, bool truncate,
              const std::function<void(const CommitLogRecord&, uint64_t lsn)>&
                  replay_fn = nullptr);
  void Close() { framed_.Close(); }
  bool is_open() const { return framed_.is_open(); }

  /// Append one commit record (buffered); returns its LSN.
  uint64_t Append(const CommitLogRecord& rec);

  /// Flush buffered records to the OS; fsync when `sync`. The fsync
  /// that returns from here IS the commit point of every record
  /// flushed by it.
  Status Flush(bool sync) { return framed_.Flush(sync); }

  uint64_t last_lsn() const { return framed_.last_lsn(); }

  /// Test hook: counts fsyncs issued by Flush(sync=true) so group
  /// commit tests can assert fsync count < committer count.
  void set_sync_counter(std::atomic<uint64_t>* counter) {
    framed_.set_sync_counter(counter);
  }

  /// Wire registry metrics (obs/metrics.h) into the framed core.
  void set_metrics(const FramedLogMetrics& m) { framed_.set_metrics(m); }

  /// Deliver every well-formed record of the live log in append order
  /// (flushes the buffer first; does not fsync).
  Status Scan(const std::function<void(const CommitLogRecord&, uint64_t lsn)>&
                  fn);

  /// Drop every record with LSN <= watermark (the checkpoint-derived
  /// low-water mark) via the framed core's truncation. With a `seal`
  /// sink (log archiving), the retired prefix is handed over durably
  /// before the truncated log is published.
  Status TruncateTo(uint64_t watermark_lsn,
                    const FramedLog::SealSink& seal = nullptr) {
    return framed_.TruncateTo(watermark_lsn, seal);
  }

  /// Replay a closed commit-log file, stopping cleanly at the first
  /// torn or corrupt frame. A missing file is an empty log (OK).
  /// Archive segments sealed from this log replay the same way.
  static Status Replay(
      const std::string& path,
      const std::function<void(const CommitLogRecord&, uint64_t lsn)>& fn,
      ReplayStats* stats = nullptr);

  /// Serialize / deserialize one payload (exposed for tests).
  static void EncodePayload(const CommitLogRecord& rec, std::string* out);
  static bool DecodePayload(const char* data, size_t size,
                            CommitLogRecord* rec);

  /// The framed-log codec for commit payloads (always one LSN).
  static bool ValidatePayload(const char* payload, size_t len,
                              uint64_t* lsn_count);

 private:
  FramedLog framed_;
};

}  // namespace lstore

#endif  // LSTORE_LOG_COMMIT_LOG_H_
