#include "log/redo_log.h"

#include <cstdint>
#include <cstring>

#include "common/bitutil.h"
#include "storage/compression/varint.h"

namespace lstore {

void RedoLog::EncodePayload(const LogRecord& rec, std::string* out) {
  out->push_back(static_cast<char>(rec.type));
  if (rec.type == LogRecordType::kTruncationPoint) {
    PutVarint64(out, rec.base_lsn);
    return;
  }
  PutVarint64(out, rec.txn_id);
  switch (rec.type) {
    case LogRecordType::kCommit:
      PutVarint64(out, rec.commit_time);
      break;
    case LogRecordType::kAbort:
      break;
    case LogRecordType::kTailAppend:
    case LogRecordType::kInsertAppend:
      PutVarint64(out, rec.range_id);
      PutVarint64(out, rec.seq);
      PutVarint64(out, rec.base_slot);
      PutVarint64(out, rec.backptr);
      PutVarint64(out, rec.schema_encoding);
      PutVarint64(out, rec.start_raw);
      PutVarint64(out, rec.mask);
      for (Value v : rec.values) PutVarint64(out, v);
      break;
    case LogRecordType::kTruncationPoint:
    case LogRecordType::kBatch:
      break;  // truncation handled above; batches framed by AppendBatch
  }
}

bool RedoLog::DecodePayload(const char* data, size_t size, LogRecord* rec) {
  if (size == 0) return false;
  size_t pos = 0;
  rec->type = static_cast<LogRecordType>(data[pos++]);
  uint64_t v;
  if (rec->type == LogRecordType::kTruncationPoint) {
    if (!GetVarint64(data, size, &pos, &v)) return false;
    rec->base_lsn = v;
    return pos == size;
  }
  if (!GetVarint64(data, size, &pos, &v)) return false;
  rec->txn_id = v;
  switch (rec->type) {
    case LogRecordType::kCommit:
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->commit_time = v;
      return pos == size;
    case LogRecordType::kAbort:
      return pos == size;
    case LogRecordType::kTailAppend:
    case LogRecordType::kInsertAppend: {
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->range_id = v;
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->seq = static_cast<uint32_t>(v);
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->base_slot = static_cast<uint32_t>(v);
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->backptr = static_cast<uint32_t>(v);
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->schema_encoding = v;
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->start_raw = v;
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->mask = v;
      int n = PopCount(rec->mask);
      rec->values.clear();
      for (int i = 0; i < n; ++i) {
        if (!GetVarint64(data, size, &pos, &v)) return false;
        rec->values.push_back(v);
      }
      return pos == size;
    }
    default:
      return false;
  }
}

bool RedoLog::ValidatePayload(const char* payload, size_t len,
                              uint64_t* lsn_count) {
  if (len == 0) return false;
  if (static_cast<LogRecordType>(payload[0]) == LogRecordType::kBatch) {
    // One frame, N records: every sub-payload must decode, or the
    // whole frame is malformed (treated as a torn tail by the scan).
    size_t pos = 1;
    uint64_t count = 0;
    if (!GetVarint64(payload, len, &pos, &count)) return false;
    LogRecord rec;
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t sub_len = 0;
      if (!GetVarint64(payload, len, &pos, &sub_len) || sub_len > len - pos) {
        return false;
      }
      if (!DecodePayload(payload + pos, sub_len, &rec) ||
          rec.type == LogRecordType::kTruncationPoint ||
          rec.type == LogRecordType::kBatch) {
        return false;
      }
      pos += sub_len;
    }
    if (pos != len) return false;
    *lsn_count = count;
    return true;
  }
  LogRecord rec;
  if (!DecodePayload(payload, len, &rec)) return false;
  *lsn_count = 1;
  return true;
}

uint64_t RedoLog::Append(const LogRecord& rec) {
  std::string payload;
  EncodePayload(rec, &payload);
  return framed_.Append(payload, 1);
}

void RedoLog::Batch::Add(const LogRecord& rec) {
  scratch_.clear();
  EncodePayload(rec, &scratch_);
  PutVarint64(&body_, scratch_.size());
  body_.append(scratch_);
  ++count_;
}

uint64_t RedoLog::AppendBatch(const Batch& batch) {
  if (batch.count_ == 0) return 0;
  std::string payload;
  payload.reserve(batch.body_.size() + 10);
  payload.push_back(static_cast<char>(LogRecordType::kBatch));
  PutVarint64(&payload, batch.count_);
  payload.append(batch.body_);
  return framed_.Append(payload, batch.count_);
}

uint64_t RedoLog::AppendBatch(const std::vector<LogRecord>& recs) {
  Batch batch;
  for (const LogRecord& rec : recs) batch.Add(rec);
  return AppendBatch(batch);
}

Status RedoLog::Replay(
    const std::string& path,
    const std::function<void(const LogRecord&, uint64_t lsn)>& fn,
    ReplayStats* stats) {
  Status s = FramedLog::ScanFile(
      path, &RedoLog::ValidatePayload,
      [&fn](std::string_view payload, uint64_t first_lsn, uint64_t, size_t,
            size_t) {
        if (!fn) return;
        const char* data = payload.data();
        size_t len = payload.size();
        if (static_cast<LogRecordType>(data[0]) == LogRecordType::kBatch) {
          // Already validated by the codec; deliver each sub-record
          // with its own LSN.
          size_t pos = 1;
          uint64_t count = 0;
          GetVarint64(data, len, &pos, &count);
          LogRecord rec;
          for (uint64_t i = 0; i < count; ++i) {
            uint64_t sub_len = 0;
            GetVarint64(data, len, &pos, &sub_len);
            DecodePayload(data + pos, sub_len, &rec);
            pos += sub_len;
            fn(rec, first_lsn + i);
          }
          return;
        }
        LogRecord rec;
        DecodePayload(data, len, &rec);
        fn(rec, first_lsn);
      },
      stats);
  if (!s.ok()) return Status::IOError("cannot open log for replay");
  return Status::OK();
}

Status RedoLog::Replay(const std::string& path,
                       const std::function<void(const LogRecord&)>& fn) {
  return Replay(
      path, [&fn](const LogRecord& rec, uint64_t) { fn(rec); }, nullptr);
}

}  // namespace lstore
