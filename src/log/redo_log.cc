#include "log/redo_log.h"

#include <cstring>

#include "common/bitutil.h"
#include "storage/compression/varint.h"

namespace lstore {

uint32_t Fnv1a32(const char* data, size_t n) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 16777619u;
  }
  return h;
}

RedoLog::~RedoLog() { Close(); }

Status RedoLog::Open(const std::string& path, bool truncate) {
  Close();
  file_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (file_ == nullptr) {
    return Status::IOError("cannot open log file: " + path);
  }
  return Status::OK();
}

void RedoLog::Close() {
  if (file_ != nullptr) {
    Flush(false);
    std::fclose(file_);
    file_ = nullptr;
  }
}

void RedoLog::EncodePayload(const LogRecord& rec, std::string* out) {
  out->push_back(static_cast<char>(rec.type));
  PutVarint64(out, rec.txn_id);
  switch (rec.type) {
    case LogRecordType::kCommit:
      PutVarint64(out, rec.commit_time);
      break;
    case LogRecordType::kAbort:
      break;
    case LogRecordType::kTailAppend:
    case LogRecordType::kInsertAppend:
      PutVarint64(out, rec.range_id);
      PutVarint64(out, rec.seq);
      PutVarint64(out, rec.base_slot);
      PutVarint64(out, rec.backptr);
      PutVarint64(out, rec.schema_encoding);
      PutVarint64(out, rec.start_raw);
      PutVarint64(out, rec.mask);
      for (Value v : rec.values) PutVarint64(out, v);
      break;
  }
}

bool RedoLog::DecodePayload(const char* data, size_t size, LogRecord* rec) {
  if (size == 0) return false;
  size_t pos = 0;
  rec->type = static_cast<LogRecordType>(data[pos++]);
  uint64_t v;
  if (!GetVarint64(data, size, &pos, &v)) return false;
  rec->txn_id = v;
  switch (rec->type) {
    case LogRecordType::kCommit:
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->commit_time = v;
      return pos == size;
    case LogRecordType::kAbort:
      return pos == size;
    case LogRecordType::kTailAppend:
    case LogRecordType::kInsertAppend: {
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->range_id = v;
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->seq = static_cast<uint32_t>(v);
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->base_slot = static_cast<uint32_t>(v);
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->backptr = static_cast<uint32_t>(v);
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->schema_encoding = v;
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->start_raw = v;
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->mask = v;
      int n = PopCount(rec->mask);
      rec->values.clear();
      for (int i = 0; i < n; ++i) {
        if (!GetVarint64(data, size, &pos, &v)) return false;
        rec->values.push_back(v);
      }
      return pos == size;
    }
  }
  return false;
}

void RedoLog::Append(const LogRecord& rec) {
  std::string payload;
  EncodePayload(rec, &payload);
  std::lock_guard<std::mutex> g(mu_);
  PutVarint64(&buffer_, payload.size());
  buffer_.append(payload);
  uint32_t crc = Fnv1a32(payload.data(), payload.size());
  buffer_.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
}

Status RedoLog::Flush(bool sync) {
  std::lock_guard<std::mutex> g(mu_);
  if (file_ == nullptr) return Status::IOError("log not open");
  if (!buffer_.empty()) {
    size_t n = std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
    if (n != buffer_.size()) return Status::IOError("short log write");
    buffer_.clear();
  }
  if (std::fflush(file_) != 0) return Status::IOError("fflush failed");
  if (sync) {
    // fsync via fileno; ignore failure on exotic filesystems.
    (void)::fflush(file_);
  }
  return Status::OK();
}

Status RedoLog::Replay(const std::string& path,
                       const std::function<void(const LogRecord&)>& fn) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open log for replay");
  std::string data;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    data.append(chunk, n);
  }
  std::fclose(f);

  size_t pos = 0;
  while (pos < data.size()) {
    size_t frame_start = pos;
    uint64_t len;
    if (!GetVarint64(data, &pos, &len)) break;  // torn length
    if (pos + len + sizeof(uint32_t) > data.size()) {
      pos = frame_start;  // torn payload: stop (crash tail)
      break;
    }
    const char* payload = data.data() + pos;
    uint32_t stored;
    std::memcpy(&stored, data.data() + pos + len, sizeof(stored));
    if (Fnv1a32(payload, len) != stored) break;  // corrupt frame: stop
    LogRecord rec;
    if (!DecodePayload(payload, len, &rec)) break;
    fn(rec);
    pos += len + sizeof(uint32_t);
  }
  return Status::OK();
}

}  // namespace lstore
