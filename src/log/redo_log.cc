#include "log/redo_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>

#include "common/bitutil.h"
#include "storage/compression/varint.h"

namespace lstore {

namespace {

/// Read a whole file into `out`; false if it cannot be opened.
bool SlurpFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    out->append(chunk, n);
  }
  std::fclose(f);
  return true;
}

}  // namespace

uint32_t Fnv1a32(const char* data, size_t n) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 16777619u;
  }
  return h;
}

RedoLog::~RedoLog() { Close(); }

Status RedoLog::Open(const std::string& path, bool truncate) {
  Close();
  path_ = path;
  last_lsn_.store(0, std::memory_order_release);
  if (!truncate) {
    // Restore the LSN counter from the existing records and repair a
    // torn tail: appending after garbage would hide the new records
    // from every future replay.
    std::string data;
    if (SlurpFile(path, &data) && !data.empty()) {
      ReplayStats stats;
      ScanFrames(data, nullptr, &stats);
      last_lsn_.store(stats.last_lsn, std::memory_order_release);
      if (!stats.clean_end) {
        if (::truncate(path.c_str(),
                       static_cast<off_t>(stats.bytes_consumed)) != 0) {
          return Status::IOError("cannot repair torn log tail: " + path);
        }
      }
    }
  }
  file_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (file_ == nullptr) {
    return Status::IOError("cannot open log file: " + path);
  }
  return Status::OK();
}

void RedoLog::Close() {
  if (file_ != nullptr) {
    Flush(false);
    std::fclose(file_);
    file_ = nullptr;
  }
}

void RedoLog::EncodePayload(const LogRecord& rec, std::string* out) {
  out->push_back(static_cast<char>(rec.type));
  if (rec.type == LogRecordType::kTruncationPoint) {
    PutVarint64(out, rec.base_lsn);
    return;
  }
  PutVarint64(out, rec.txn_id);
  switch (rec.type) {
    case LogRecordType::kCommit:
      PutVarint64(out, rec.commit_time);
      break;
    case LogRecordType::kAbort:
      break;
    case LogRecordType::kTailAppend:
    case LogRecordType::kInsertAppend:
      PutVarint64(out, rec.range_id);
      PutVarint64(out, rec.seq);
      PutVarint64(out, rec.base_slot);
      PutVarint64(out, rec.backptr);
      PutVarint64(out, rec.schema_encoding);
      PutVarint64(out, rec.start_raw);
      PutVarint64(out, rec.mask);
      for (Value v : rec.values) PutVarint64(out, v);
      break;
    case LogRecordType::kTruncationPoint:
      break;  // handled above
  }
}

bool RedoLog::DecodePayload(const char* data, size_t size, LogRecord* rec) {
  if (size == 0) return false;
  size_t pos = 0;
  rec->type = static_cast<LogRecordType>(data[pos++]);
  uint64_t v;
  if (rec->type == LogRecordType::kTruncationPoint) {
    if (!GetVarint64(data, size, &pos, &v)) return false;
    rec->base_lsn = v;
    return pos == size;
  }
  if (!GetVarint64(data, size, &pos, &v)) return false;
  rec->txn_id = v;
  switch (rec->type) {
    case LogRecordType::kCommit:
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->commit_time = v;
      return pos == size;
    case LogRecordType::kAbort:
      return pos == size;
    case LogRecordType::kTailAppend:
    case LogRecordType::kInsertAppend: {
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->range_id = v;
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->seq = static_cast<uint32_t>(v);
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->base_slot = static_cast<uint32_t>(v);
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->backptr = static_cast<uint32_t>(v);
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->schema_encoding = v;
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->start_raw = v;
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->mask = v;
      int n = PopCount(rec->mask);
      rec->values.clear();
      for (int i = 0; i < n; ++i) {
        if (!GetVarint64(data, size, &pos, &v)) return false;
        rec->values.push_back(v);
      }
      return pos == size;
    }
    default:
      return false;
  }
}

void RedoLog::AppendFrame(std::string* out, const std::string& payload) {
  PutVarint64(out, payload.size());
  out->append(payload);
  uint32_t crc = Fnv1a32(payload.data(), payload.size());
  out->append(reinterpret_cast<const char*>(&crc), sizeof(crc));
}

uint64_t RedoLog::Append(const LogRecord& rec) {
  std::string payload;
  EncodePayload(rec, &payload);
  std::lock_guard<std::mutex> g(mu_);
  AppendFrame(&buffer_, payload);
  return last_lsn_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

Status RedoLog::Flush(bool sync) {
  std::lock_guard<std::mutex> g(mu_);
  if (file_ == nullptr) return Status::IOError("log not open");
  if (!buffer_.empty()) {
    size_t n = std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
    if (n != buffer_.size()) return Status::IOError("short log write");
    buffer_.clear();
  }
  if (std::fflush(file_) != 0) return Status::IOError("fflush failed");
  if (sync) {
    if (::fsync(::fileno(file_)) != 0) {
      return Status::IOError("fsync failed");
    }
  }
  return Status::OK();
}

Status RedoLog::TruncateTo(uint64_t watermark_lsn) {
  std::lock_guard<std::mutex> g(mu_);
  if (file_ == nullptr) return Status::IOError("log not open");
  // Push pending appends into the file first so the scan sees them.
  if (!buffer_.empty()) {
    size_t n = std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
    if (n != buffer_.size()) return Status::IOError("short log write");
    buffer_.clear();
  }
  if (std::fflush(file_) != 0) return Status::IOError("fflush failed");

  std::string data;
  if (!SlurpFile(path_, &data)) {
    return Status::IOError("cannot read log for truncation: " + path_);
  }

  // New head: a truncation point restoring the LSN numbering, then
  // every well-formed frame beyond the watermark (byte-for-byte).
  std::string retained;
  {
    LogRecord tp;
    tp.type = LogRecordType::kTruncationPoint;
    tp.base_lsn = watermark_lsn;
    std::string payload;
    EncodePayload(tp, &payload);
    AppendFrame(&retained, payload);
  }
  ReplayStats stats;
  ScanFrames(
      data,
      [&](const LogRecord&, uint64_t lsn, size_t begin, size_t end) {
        if (lsn > watermark_lsn) retained.append(data, begin, end - begin);
      },
      &stats);

  std::string tmp = path_ + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) return Status::IOError("cannot open temp log: " + tmp);
  size_t n = std::fwrite(retained.data(), 1, retained.size(), out);
  bool write_ok = n == retained.size() && std::fflush(out) == 0 &&
                  ::fsync(::fileno(out)) == 0;
  std::fclose(out);
  if (!write_ok) {
    std::remove(tmp.c_str());
    return Status::IOError("short write during log truncation");
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot publish truncated log");
  }
  // Make the rename itself durable before dropping the old handle.
  {
    std::string dir = path_.find_last_of('/') == std::string::npos
                          ? "."
                          : path_.substr(0, path_.find_last_of('/'));
    int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd >= 0) {
      (void)::fsync(fd);
      ::close(fd);
    }
  }
  // Re-point the handle at the new file (the old inode is unlinked).
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IOError("cannot reopen truncated log: " + path_);
  }
  return Status::OK();
}

void RedoLog::ScanFrames(
    const std::string& data,
    const std::function<void(const LogRecord&, uint64_t lsn,
                             size_t frame_begin, size_t frame_end)>& fn,
    ReplayStats* stats) {
  size_t pos = 0;
  uint64_t lsn = 0;
  stats->clean_end = true;
  while (pos < data.size()) {
    size_t frame_start = pos;
    uint64_t len;
    if (!GetVarint64(data, &pos, &len)) {  // torn length varint
      stats->clean_end = false;
      pos = frame_start;
      break;
    }
    size_t remain = data.size() - pos;
    // Overflow-safe: a torn tail can present an absurd length whose
    // naive `pos + len` bound check would wrap around.
    if (remain < sizeof(uint32_t) || len > remain - sizeof(uint32_t)) {
      stats->clean_end = false;
      pos = frame_start;
      break;
    }
    const char* payload = data.data() + pos;
    uint32_t stored;
    std::memcpy(&stored, data.data() + pos + len, sizeof(stored));
    if (Fnv1a32(payload, len) != stored) {  // corrupt frame
      stats->clean_end = false;
      pos = frame_start;
      break;
    }
    LogRecord rec;
    if (!DecodePayload(payload, len, &rec)) {  // malformed payload
      stats->clean_end = false;
      pos = frame_start;
      break;
    }
    pos += len + sizeof(uint32_t);
    if (rec.type == LogRecordType::kTruncationPoint) {
      lsn = rec.base_lsn;
      stats->base_lsn = rec.base_lsn;
      stats->last_lsn = lsn;
      continue;
    }
    ++lsn;
    stats->last_lsn = lsn;
    if (fn) fn(rec, lsn, frame_start, pos);
  }
  stats->bytes_consumed = pos;
}

Status RedoLog::Replay(
    const std::string& path,
    const std::function<void(const LogRecord&, uint64_t lsn)>& fn,
    ReplayStats* stats) {
  std::string data;
  if (!SlurpFile(path, &data)) {
    return Status::IOError("cannot open log for replay");
  }
  ReplayStats local;
  ScanFrames(
      data,
      [&fn](const LogRecord& rec, uint64_t lsn, size_t, size_t) {
        if (fn) fn(rec, lsn);
      },
      stats != nullptr ? stats : &local);
  return Status::OK();
}

Status RedoLog::Replay(const std::string& path,
                       const std::function<void(const LogRecord&)>& fn) {
  return Replay(
      path, [&fn](const LogRecord& rec, uint64_t) { fn(rec); }, nullptr);
}

}  // namespace lstore
