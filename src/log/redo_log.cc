#include "log/redo_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "common/bitutil.h"
#include "storage/compression/varint.h"

namespace lstore {

namespace {

/// Read a whole file into `out`; false if it cannot be opened.
bool SlurpFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    out->append(chunk, n);
  }
  std::fclose(f);
  return true;
}

}  // namespace

uint32_t Fnv1a32(const char* data, size_t n) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 16777619u;
  }
  return h;
}

RedoLog::~RedoLog() { Close(); }

Status RedoLog::Open(const std::string& path, bool truncate) {
  Close();
  path_ = path;
  last_lsn_.store(0, std::memory_order_release);
  if (!truncate) {
    // Restore the LSN counter from the existing records and repair a
    // torn tail: appending after garbage would hide the new records
    // from every future replay.
    std::string data;
    if (SlurpFile(path, &data) && !data.empty()) {
      ReplayStats stats;
      ScanFrames(data, nullptr, &stats);
      last_lsn_.store(stats.last_lsn, std::memory_order_release);
      if (!stats.clean_end) {
        if (::truncate(path.c_str(),
                       static_cast<off_t>(stats.bytes_consumed)) != 0) {
          return Status::IOError("cannot repair torn log tail: " + path);
        }
      }
    }
  }
  file_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (file_ == nullptr) {
    return Status::IOError("cannot open log file: " + path);
  }
  return Status::OK();
}

void RedoLog::Close() {
  if (file_ != nullptr) {
    Flush(false);
    std::fclose(file_);
    file_ = nullptr;
  }
}

void RedoLog::EncodePayload(const LogRecord& rec, std::string* out) {
  out->push_back(static_cast<char>(rec.type));
  if (rec.type == LogRecordType::kTruncationPoint) {
    PutVarint64(out, rec.base_lsn);
    return;
  }
  PutVarint64(out, rec.txn_id);
  switch (rec.type) {
    case LogRecordType::kCommit:
      PutVarint64(out, rec.commit_time);
      break;
    case LogRecordType::kAbort:
      break;
    case LogRecordType::kTailAppend:
    case LogRecordType::kInsertAppend:
      PutVarint64(out, rec.range_id);
      PutVarint64(out, rec.seq);
      PutVarint64(out, rec.base_slot);
      PutVarint64(out, rec.backptr);
      PutVarint64(out, rec.schema_encoding);
      PutVarint64(out, rec.start_raw);
      PutVarint64(out, rec.mask);
      for (Value v : rec.values) PutVarint64(out, v);
      break;
    case LogRecordType::kTruncationPoint:
    case LogRecordType::kBatch:
      break;  // truncation handled above; batches framed by AppendBatch
  }
}

bool RedoLog::DecodePayload(const char* data, size_t size, LogRecord* rec) {
  if (size == 0) return false;
  size_t pos = 0;
  rec->type = static_cast<LogRecordType>(data[pos++]);
  uint64_t v;
  if (rec->type == LogRecordType::kTruncationPoint) {
    if (!GetVarint64(data, size, &pos, &v)) return false;
    rec->base_lsn = v;
    return pos == size;
  }
  if (!GetVarint64(data, size, &pos, &v)) return false;
  rec->txn_id = v;
  switch (rec->type) {
    case LogRecordType::kCommit:
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->commit_time = v;
      return pos == size;
    case LogRecordType::kAbort:
      return pos == size;
    case LogRecordType::kTailAppend:
    case LogRecordType::kInsertAppend: {
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->range_id = v;
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->seq = static_cast<uint32_t>(v);
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->base_slot = static_cast<uint32_t>(v);
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->backptr = static_cast<uint32_t>(v);
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->schema_encoding = v;
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->start_raw = v;
      if (!GetVarint64(data, size, &pos, &v)) return false;
      rec->mask = v;
      int n = PopCount(rec->mask);
      rec->values.clear();
      for (int i = 0; i < n; ++i) {
        if (!GetVarint64(data, size, &pos, &v)) return false;
        rec->values.push_back(v);
      }
      return pos == size;
    }
    default:
      return false;
  }
}

void RedoLog::AppendFrame(std::string* out, const std::string& payload) {
  PutVarint64(out, payload.size());
  out->append(payload);
  uint32_t crc = Fnv1a32(payload.data(), payload.size());
  out->append(reinterpret_cast<const char*>(&crc), sizeof(crc));
}

uint64_t RedoLog::Append(const LogRecord& rec) {
  std::string payload;
  EncodePayload(rec, &payload);
  std::lock_guard<std::mutex> g(mu_);
  AppendFrame(&buffer_, payload);
  return last_lsn_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

void RedoLog::Batch::Add(const LogRecord& rec) {
  scratch_.clear();
  EncodePayload(rec, &scratch_);
  PutVarint64(&body_, scratch_.size());
  body_.append(scratch_);
  ++count_;
}

uint64_t RedoLog::AppendBatch(const Batch& batch) {
  if (batch.count_ == 0) return 0;
  std::string payload;
  payload.reserve(batch.body_.size() + 10);
  payload.push_back(static_cast<char>(LogRecordType::kBatch));
  PutVarint64(&payload, batch.count_);
  payload.append(batch.body_);
  std::lock_guard<std::mutex> g(mu_);
  AppendFrame(&buffer_, payload);
  return last_lsn_.fetch_add(batch.count_, std::memory_order_acq_rel) +
         batch.count_;
}

uint64_t RedoLog::AppendBatch(const std::vector<LogRecord>& recs) {
  Batch batch;
  for (const LogRecord& rec : recs) batch.Add(rec);
  return AppendBatch(batch);
}

Status RedoLog::FlushBufferLocked() {
  if (file_ == nullptr) return Status::IOError("log not open");
  if (!buffer_.empty()) {
    size_t n = std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
    if (n != buffer_.size()) {
      // Drop exactly the consumed prefix on a short write (ENOSPC):
      // the file holds a partial frame, and a later retry must
      // continue at the same byte — re-writing the whole buffer after
      // the partial prefix would corrupt the log mid-file and take
      // every LATER (acknowledged) record down with it at the next
      // open's tail scan.
      std::string rest(buffer_, n);
      buffer_ = std::move(rest);
      return Status::IOError("short log write");
    }
    buffer_.clear();
  }
  if (std::fflush(file_) != 0) return Status::IOError("fflush failed");
  return Status::OK();
}

Status RedoLog::Flush(bool sync) {
  std::lock_guard<std::mutex> g(mu_);
  LSTORE_RETURN_IF_ERROR(FlushBufferLocked());
  if (sync) {
    if (sync_counter_ != nullptr) {
      sync_counter_->fetch_add(1, std::memory_order_relaxed);
    }
    if (::fsync(::fileno(file_)) != 0) {
      return Status::IOError("fsync failed");
    }
  }
  return Status::OK();
}

Status RedoLog::TruncateTo(uint64_t watermark_lsn) {
  std::lock_guard<std::mutex> tg(truncate_mu_);

  // Phase 1 (mutex, O(pending appends)): make every appended frame
  // file-resident and snapshot the frame-aligned prefix length.
  size_t snap_size = 0;
  {
    std::lock_guard<std::mutex> g(mu_);
    LSTORE_RETURN_IF_ERROR(FlushBufferLocked());
    long pos = std::ftell(file_);
    if (pos < 0) return Status::IOError("cannot size log for truncation");
    snap_size = static_cast<size_t>(pos);
  }

  // Phase 2 (NO mutex — commits proceed): scan the snapshot prefix,
  // locate the byte offset of the first frame that must survive, and
  // write the new head (truncation point + retained bytes) to a temp
  // file. Frames appended after phase 1 are untouched: they live in
  // the old file beyond snap_size and are copied in phase 3.
  std::string data;
  if (!SlurpFile(path_, &data)) {
    return Status::IOError("cannot read log for truncation: " + path_);
  }
  data.resize(std::min(data.size(), snap_size));
  ReplayStats stats;
  size_t cut = 0;
  uint64_t base_lsn = 0;
  bool found_cut = false;
  size_t cur_frame_begin = SIZE_MAX;
  uint64_t cur_frame_first_lsn = 0;
  ScanFrames(
      data,
      [&](const LogRecord&, uint64_t lsn, size_t begin, size_t) {
        if (begin != cur_frame_begin) {
          cur_frame_begin = begin;
          cur_frame_first_lsn = lsn;
        }
        if (!found_cut && lsn > watermark_lsn) {
          // A batch frame straddling the watermark is kept whole; the
          // LSN base backs up to renumber its first record correctly.
          found_cut = true;
          cut = cur_frame_begin;
          base_lsn = cur_frame_first_lsn - 1;
        }
      },
      &stats);
  if (!found_cut) {
    cut = stats.bytes_consumed;
    base_lsn = stats.last_lsn;
  }

  std::string head;
  {
    LogRecord tp;
    tp.type = LogRecordType::kTruncationPoint;
    tp.base_lsn = base_lsn;
    std::string payload;
    EncodePayload(tp, &payload);
    AppendFrame(&head, payload);
  }
  std::string tmp = path_ + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) return Status::IOError("cannot open temp log: " + tmp);
  bool write_ok =
      std::fwrite(head.data(), 1, head.size(), out) == head.size() &&
      (data.size() == cut ||
       std::fwrite(data.data() + cut, 1, data.size() - cut, out) ==
           data.size() - cut);
  if (!write_ok) {
    std::fclose(out);
    std::remove(tmp.c_str());
    return Status::IOError("short write during log truncation");
  }

  // Phase 3 (mutex, O(appends since phase 1)): drain the buffer, copy
  // the live suffix [snap_size, EOF) byte-for-byte, and swap handles.
  std::lock_guard<std::mutex> g(mu_);
  Status flush = FlushBufferLocked();
  if (!flush.ok()) {
    std::fclose(out);
    std::remove(tmp.c_str());
    return flush;
  }
  {
    std::FILE* in = std::fopen(path_.c_str(), "rb");
    if (in == nullptr || std::fseek(in, static_cast<long>(snap_size),
                                    SEEK_SET) != 0) {
      if (in != nullptr) std::fclose(in);
      std::fclose(out);
      std::remove(tmp.c_str());
      return Status::IOError("cannot read log suffix for truncation");
    }
    char chunk[1 << 16];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), in)) > 0) {
      if (std::fwrite(chunk, 1, n, out) != n) {
        std::fclose(in);
        std::fclose(out);
        std::remove(tmp.c_str());
        return Status::IOError("short write during log truncation");
      }
    }
    std::fclose(in);
  }
  write_ok = std::fflush(out) == 0 && ::fsync(::fileno(out)) == 0;
  std::fclose(out);
  if (!write_ok) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot sync truncated log");
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot publish truncated log");
  }
  // Make the rename itself durable before dropping the old handle.
  {
    std::string dir = path_.find_last_of('/') == std::string::npos
                          ? "."
                          : path_.substr(0, path_.find_last_of('/'));
    int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd >= 0) {
      (void)::fsync(fd);
      ::close(fd);
    }
  }
  // Re-point the handle at the new file (the old inode is unlinked).
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IOError("cannot reopen truncated log: " + path_);
  }
  return Status::OK();
}

void RedoLog::ScanFrames(
    const std::string& data,
    const std::function<void(const LogRecord&, uint64_t lsn,
                             size_t frame_begin, size_t frame_end)>& fn,
    ReplayStats* stats) {
  size_t pos = 0;
  uint64_t lsn = 0;
  stats->clean_end = true;
  while (pos < data.size()) {
    size_t frame_start = pos;
    uint64_t len;
    if (!GetVarint64(data, &pos, &len)) {  // torn length varint
      stats->clean_end = false;
      pos = frame_start;
      break;
    }
    size_t remain = data.size() - pos;
    // Overflow-safe: a torn tail can present an absurd length whose
    // naive `pos + len` bound check would wrap around.
    if (remain < sizeof(uint32_t) || len > remain - sizeof(uint32_t)) {
      stats->clean_end = false;
      pos = frame_start;
      break;
    }
    const char* payload = data.data() + pos;
    uint32_t stored;
    std::memcpy(&stored, data.data() + pos + len, sizeof(stored));
    if (Fnv1a32(payload, len) != stored) {  // corrupt frame
      stats->clean_end = false;
      pos = frame_start;
      break;
    }
    if (len > 0 &&
        static_cast<LogRecordType>(payload[0]) == LogRecordType::kBatch) {
      // One frame, N records: decode each sub-payload; every record
      // carries its own LSN but shares the frame's byte span.
      size_t sub_pos = 1;
      uint64_t count = 0;
      bool ok = GetVarint64(payload, len, &sub_pos, &count);
      std::vector<LogRecord> recs;
      for (uint64_t i = 0; ok && i < count; ++i) {
        uint64_t sub_len = 0;
        ok = GetVarint64(payload, len, &sub_pos, &sub_len) &&
             sub_len <= len - sub_pos;
        if (!ok) break;
        recs.emplace_back();
        ok = DecodePayload(payload + sub_pos, sub_len, &recs.back()) &&
             recs.back().type != LogRecordType::kTruncationPoint &&
             recs.back().type != LogRecordType::kBatch;
        sub_pos += sub_len;
      }
      if (!ok || sub_pos != len) {  // malformed batch
        stats->clean_end = false;
        pos = frame_start;
        break;
      }
      pos += len + sizeof(uint32_t);
      for (const LogRecord& rec : recs) {
        ++lsn;
        stats->last_lsn = lsn;
        if (fn) fn(rec, lsn, frame_start, pos);
      }
      continue;
    }
    LogRecord rec;
    if (!DecodePayload(payload, len, &rec)) {  // malformed payload
      stats->clean_end = false;
      pos = frame_start;
      break;
    }
    pos += len + sizeof(uint32_t);
    if (rec.type == LogRecordType::kTruncationPoint) {
      lsn = rec.base_lsn;
      stats->base_lsn = rec.base_lsn;
      stats->last_lsn = lsn;
      continue;
    }
    ++lsn;
    stats->last_lsn = lsn;
    if (fn) fn(rec, lsn, frame_start, pos);
  }
  stats->bytes_consumed = pos;
}

Status RedoLog::Replay(
    const std::string& path,
    const std::function<void(const LogRecord&, uint64_t lsn)>& fn,
    ReplayStats* stats) {
  std::string data;
  if (!SlurpFile(path, &data)) {
    return Status::IOError("cannot open log for replay");
  }
  ReplayStats local;
  ScanFrames(
      data,
      [&fn](const LogRecord& rec, uint64_t lsn, size_t, size_t) {
        if (fn) fn(rec, lsn);
      },
      stats != nullptr ? stats : &local);
  return Status::OK();
}

Status RedoLog::Replay(const std::string& path,
                       const std::function<void(const LogRecord&)>& fn) {
  return Replay(
      path, [&fn](const LogRecord& rec, uint64_t) { fn(rec); }, nullptr);
}

}  // namespace lstore
