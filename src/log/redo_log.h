// Redo-only write-ahead log for tail pages.
//
// Section 5.1.3: base pages are read-only (no logging); tail pages are
// append-only and never updated in place, so only *redo* records are
// required. Aborted transactions leave tombstones (the aborted stamp)
// rather than being undone physically. The Indirection column is
// rebuilt at recovery from the Base RID column / backpointers, so it
// needs no log of its own (recovery option 2 in the paper).
//
// Record framing, LSN numbering, torn-tail repair, and truncation are
// the shared framed-log core's (log/framed_log.h): this class is a
// thin wrapper that owns only the redo payload codec — what the bytes
// of a record MEAN. Records are numbered 1, 2, ... in append order; a
// truncated log starts with a truncation-point record whose base_lsn
// restores the numbering, so LSNs are stable across truncations and a
// checkpoint manifest can reference its watermark by LSN alone.

#ifndef LSTORE_LOG_REDO_LOG_H_
#define LSTORE_LOG_REDO_LOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "log/framed_log.h"

namespace lstore {

enum class LogRecordType : uint8_t {
  kTailAppend = 1,   ///< update/delete tail record (regular tail pages)
  kInsertAppend = 2, ///< insert into table-level tail pages
  kCommit = 3,
  kAbort = 4,
  kTruncationPoint = 5, ///< head of a truncated log; carries the LSN base
  kBatch = 6,        ///< one frame holding N append records (batched ops)
};

/// In-memory form of a redo record.
struct LogRecord {
  LogRecordType type;
  TxnId txn_id = 0;
  Timestamp commit_time = 0;  // kCommit only
  uint64_t range_id = 0;
  uint32_t seq = 0;           // tail seq (kTailAppend) / slot+1 (kInsertAppend)
  uint32_t base_slot = 0;
  uint32_t backptr = 0;
  uint64_t schema_encoding = 0;
  /// Raw Start Time at append: the writer's txn id, or — for pre-image
  /// snapshot records — the copied start time of the old version.
  uint64_t start_raw = 0;
  ColumnMask mask = 0;              // materialized data columns
  std::vector<Value> values;        // one per set bit of mask, low→high
  uint64_t base_lsn = 0;            // kTruncationPoint only
};

/// Append-only log writer with group commit: appends accumulate in a
/// buffer and are flushed together when a commit record arrives.
class RedoLog {
 public:
  using ReplayStats = FramedLog::ScanStats;

  RedoLog() : framed_(&RedoLog::ValidatePayload) {}

  RedoLog(const RedoLog&) = delete;
  RedoLog& operator=(const RedoLog&) = delete;

  /// Open for appending. An existing file is scanned to restore the
  /// LSN counter; a torn tail (crash mid-write) is truncated away so
  /// new appends are not hidden behind garbage.
  Status Open(const std::string& path, bool truncate) {
    return framed_.Open(path, truncate);
  }
  void Close() { framed_.Close(); }
  bool is_open() const { return framed_.is_open(); }

  /// Append one record; returns its LSN.
  uint64_t Append(const LogRecord& rec);

  /// Streaming builder for a batch frame: records are encoded as they
  /// are added, so the writer never retains N LogRecords. One Batch
  /// becomes ONE log frame (one length/checksum envelope, one buffer
  /// append, one mutex acquisition) — the amortization behind
  /// InsertBatch / UpdateBatch.
  class Batch {
   public:
    void Add(const LogRecord& rec);
    size_t count() const { return count_; }
    bool empty() const { return count_ == 0; }

   private:
    friend class RedoLog;
    size_t count_ = 0;
    std::string body_;  ///< concatenated [len varint][payload] entries
    std::string scratch_;
  };

  /// Append a batch as one frame. Each contained record still
  /// receives its own LSN; returns the LSN of the last one (0 when
  /// empty). Replay delivers the contained records individually.
  uint64_t AppendBatch(const Batch& batch);
  uint64_t AppendBatch(const std::vector<LogRecord>& recs);

  /// LSN of the most recently appended record (0 = empty log).
  uint64_t last_lsn() const { return framed_.last_lsn(); }

  /// Flush buffered records to the OS; fsync when `sync`.
  Status Flush(bool sync) { return framed_.Flush(sync); }

  /// Test hook: counts fsyncs issued by Flush(sync=true) so group
  /// commit tests can assert fsync count < committer count.
  void set_sync_counter(std::atomic<uint64_t>* counter) {
    framed_.set_sync_counter(counter);
  }

  /// Wire registry metrics (obs/metrics.h) into the framed core.
  void set_metrics(const FramedLogMetrics& m) { framed_.set_metrics(m); }

  /// Drop every record with LSN <= watermark (checkpoint truncation,
  /// Section 5.1.3) via the framed core's three-phase low-lock
  /// rewrite. With a `seal` sink (log archiving), the retired prefix
  /// is handed over durably before the truncated log is published.
  Status TruncateTo(uint64_t watermark_lsn,
                    const FramedLog::SealSink& seal = nullptr) {
    return framed_.TruncateTo(watermark_lsn, seal);
  }

  /// Replay every well-formed record, stopping cleanly at the first
  /// torn or corrupt frame (crash tail). Static: operates on a closed
  /// file. The extended overload reports each record's LSN and fills
  /// `stats` (recovered-up-to LSN, torn-tail flag). Archive segments
  /// sealed from this log replay through the same entry point.
  static Status Replay(const std::string& path,
                       const std::function<void(const LogRecord&)>& fn);
  static Status Replay(
      const std::string& path,
      const std::function<void(const LogRecord&, uint64_t lsn)>& fn,
      ReplayStats* stats);

  /// Serialize / deserialize one payload (exposed for tests).
  static void EncodePayload(const LogRecord& rec, std::string* out);
  static bool DecodePayload(const char* data, size_t size, LogRecord* rec);

  /// The framed-log codec for redo payloads: full validation (batch
  /// sub-records included) + LSN count. Exposed so the archive
  /// stitcher can scan sealed redo segments.
  static bool ValidatePayload(const char* payload, size_t len,
                              uint64_t* lsn_count);

 private:
  FramedLog framed_;
};

}  // namespace lstore

#endif  // LSTORE_LOG_REDO_LOG_H_
