// Redo-only write-ahead log for tail pages.
//
// Section 5.1.3: base pages are read-only (no logging); tail pages are
// append-only and never updated in place, so only *redo* records are
// required. Aborted transactions leave tombstones (the aborted stamp)
// rather than being undone physically. The Indirection column is
// rebuilt at recovery from the Base RID column / backpointers, so it
// needs no log of its own (recovery option 2 in the paper).
//
// Record framing: [payload_len varint][payload][fnv1a32 checksum].
// Payload starts with a type byte.

#ifndef LSTORE_LOG_REDO_LOG_H_
#define LSTORE_LOG_REDO_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace lstore {

enum class LogRecordType : uint8_t {
  kTailAppend = 1,   ///< update/delete tail record (regular tail pages)
  kInsertAppend = 2, ///< insert into table-level tail pages
  kCommit = 3,
  kAbort = 4,
};

/// In-memory form of a redo record.
struct LogRecord {
  LogRecordType type;
  TxnId txn_id = 0;
  Timestamp commit_time = 0;  // kCommit only
  uint64_t range_id = 0;
  uint32_t seq = 0;           // tail seq (kTailAppend) / slot+1 (kInsertAppend)
  uint32_t base_slot = 0;
  uint32_t backptr = 0;
  uint64_t schema_encoding = 0;
  /// Raw Start Time at append: the writer's txn id, or — for pre-image
  /// snapshot records — the copied start time of the old version.
  uint64_t start_raw = 0;
  ColumnMask mask = 0;              // materialized data columns
  std::vector<Value> values;        // one per set bit of mask, low→high
};

/// Append-only log writer with group commit: appends accumulate in a
/// buffer and are flushed together when a commit record arrives.
class RedoLog {
 public:
  RedoLog() = default;
  ~RedoLog();

  Status Open(const std::string& path, bool truncate);
  void Close();
  bool is_open() const { return file_ != nullptr; }

  /// Monotonic LSN source (consumed by the OR protocol, Section 5.2).
  uint64_t NextLsn() { return next_lsn_.fetch_add(1) + 1; }

  void Append(const LogRecord& rec);

  /// Flush buffered records to the OS; fsync when `sync`.
  Status Flush(bool sync);

  /// Replay every well-formed record, stopping at the first torn or
  /// corrupt frame (crash tail). Static: operates on a closed file.
  static Status Replay(const std::string& path,
                       const std::function<void(const LogRecord&)>& fn);

  /// Serialize / deserialize one payload (exposed for tests).
  static void EncodePayload(const LogRecord& rec, std::string* out);
  static bool DecodePayload(const char* data, size_t size, LogRecord* rec);

 private:
  std::FILE* file_ = nullptr;
  std::mutex mu_;
  std::string buffer_;
  std::atomic<uint64_t> next_lsn_{0};
};

/// FNV-1a 32-bit checksum over a byte range.
uint32_t Fnv1a32(const char* data, size_t n);

}  // namespace lstore

#endif  // LSTORE_LOG_REDO_LOG_H_
