// Redo-only write-ahead log for tail pages.
//
// Section 5.1.3: base pages are read-only (no logging); tail pages are
// append-only and never updated in place, so only *redo* records are
// required. Aborted transactions leave tombstones (the aborted stamp)
// rather than being undone physically. The Indirection column is
// rebuilt at recovery from the Base RID column / backpointers, so it
// needs no log of its own (recovery option 2 in the paper).
//
// Record framing: [payload_len varint][payload][fnv1a32 checksum].
// Payload starts with a type byte.
//
// Every record carries an implicit LSN: records are numbered 1, 2, ...
// in append order. A log that has been truncated after a checkpoint
// starts with a kTruncationPoint record whose base_lsn restores the
// numbering, so LSNs are stable across truncations and a checkpoint
// manifest can reference its watermark by LSN alone.

#ifndef LSTORE_LOG_REDO_LOG_H_
#define LSTORE_LOG_REDO_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace lstore {

enum class LogRecordType : uint8_t {
  kTailAppend = 1,   ///< update/delete tail record (regular tail pages)
  kInsertAppend = 2, ///< insert into table-level tail pages
  kCommit = 3,
  kAbort = 4,
  kTruncationPoint = 5, ///< head of a truncated log; carries the LSN base
  kBatch = 6,        ///< one frame holding N append records (batched ops)
};

/// In-memory form of a redo record.
struct LogRecord {
  LogRecordType type;
  TxnId txn_id = 0;
  Timestamp commit_time = 0;  // kCommit only
  uint64_t range_id = 0;
  uint32_t seq = 0;           // tail seq (kTailAppend) / slot+1 (kInsertAppend)
  uint32_t base_slot = 0;
  uint32_t backptr = 0;
  uint64_t schema_encoding = 0;
  /// Raw Start Time at append: the writer's txn id, or — for pre-image
  /// snapshot records — the copied start time of the old version.
  uint64_t start_raw = 0;
  ColumnMask mask = 0;              // materialized data columns
  std::vector<Value> values;        // one per set bit of mask, low→high
  uint64_t base_lsn = 0;            // kTruncationPoint only
};

/// Append-only log writer with group commit: appends accumulate in a
/// buffer and are flushed together when a commit record arrives.
class RedoLog {
 public:
  /// Outcome of scanning a log file (replay or open-time repair).
  struct ReplayStats {
    uint64_t base_lsn = 0;    ///< LSN numbering base (truncation point)
    uint64_t last_lsn = 0;    ///< LSN of the last well-formed record
    size_t bytes_consumed = 0;///< file prefix covered by good frames
    bool clean_end = true;    ///< false: stopped at a torn/corrupt frame
  };

  RedoLog() = default;
  ~RedoLog();

  /// Open for appending. An existing file is scanned to restore the
  /// LSN counter; a torn tail (crash mid-write) is truncated away so
  /// new appends are not hidden behind garbage.
  Status Open(const std::string& path, bool truncate);
  void Close();
  bool is_open() const { return file_ != nullptr; }

  /// Append one record; returns its LSN.
  uint64_t Append(const LogRecord& rec);

  /// Streaming builder for a batch frame: records are encoded as they
  /// are added, so the writer never retains N LogRecords. One Batch
  /// becomes ONE log frame (one length/checksum envelope, one buffer
  /// append, one mutex acquisition) — the amortization behind
  /// InsertBatch / UpdateBatch.
  class Batch {
   public:
    void Add(const LogRecord& rec);
    size_t count() const { return count_; }
    bool empty() const { return count_ == 0; }

   private:
    friend class RedoLog;
    size_t count_ = 0;
    std::string body_;  ///< concatenated [len varint][payload] entries
    std::string scratch_;
  };

  /// Append a batch as one frame. Each contained record still
  /// receives its own LSN; returns the LSN of the last one (0 when
  /// empty). Replay delivers the contained records individually.
  uint64_t AppendBatch(const Batch& batch);
  uint64_t AppendBatch(const std::vector<LogRecord>& recs);

  /// LSN of the most recently appended record (0 = empty log).
  uint64_t last_lsn() const {
    return last_lsn_.load(std::memory_order_acquire);
  }

  /// Flush buffered records to the OS; fsync when `sync`.
  Status Flush(bool sync);

  /// Test hook: counts fsyncs issued by Flush(sync=true) so group
  /// commit tests can assert fsync count < committer count.
  void set_sync_counter(std::atomic<uint64_t>* counter) {
    sync_counter_ = counter;
  }

  /// Drop every record with LSN <= watermark (checkpoint truncation,
  /// Section 5.1.3): the retained tail is rewritten behind a
  /// kTruncationPoint record via temp file + atomic rename. The bulk
  /// of the work (scanning the prefix, writing the retained tail) runs
  /// WITHOUT the log mutex, so concurrent commits are stalled only for
  /// the O(appends-since-scan) handle swap, not for the whole rewrite.
  /// A batch frame straddling the watermark is retained whole; the
  /// truncation point's LSN base backs up accordingly so numbering
  /// stays stable (replay filters the already-checkpointed prefix).
  Status TruncateTo(uint64_t watermark_lsn);

  /// Replay every well-formed record, stopping cleanly at the first
  /// torn or corrupt frame (crash tail). Static: operates on a closed
  /// file. The extended overload reports each record's LSN and fills
  /// `stats` (recovered-up-to LSN, torn-tail flag).
  static Status Replay(const std::string& path,
                       const std::function<void(const LogRecord&)>& fn);
  static Status Replay(
      const std::string& path,
      const std::function<void(const LogRecord&, uint64_t lsn)>& fn,
      ReplayStats* stats);

  /// Serialize / deserialize one payload (exposed for tests).
  static void EncodePayload(const LogRecord& rec, std::string* out);
  static bool DecodePayload(const char* data, size_t size, LogRecord* rec);

 private:
  /// Scan `data`, invoking `fn` per good non-truncation-point frame
  /// with its LSN and byte span; fills `stats`. The single source of
  /// truth for frame parsing (Replay, Open repair, and TruncateTo).
  static void ScanFrames(
      const std::string& data,
      const std::function<void(const LogRecord&, uint64_t lsn,
                               size_t frame_begin, size_t frame_end)>& fn,
      ReplayStats* stats);

  static void AppendFrame(std::string* out, const std::string& payload);

  /// Flush `buffer_` into `file_` (caller holds mu_).
  Status FlushBufferLocked();

  std::FILE* file_ = nullptr;
  std::string path_;
  std::mutex mu_;
  /// Serializes whole truncations against each other (mu_ still
  /// protects every file_/buffer_ touch). Ordering: truncate_mu_
  /// before mu_.
  std::mutex truncate_mu_;
  std::string buffer_;
  std::atomic<uint64_t> last_lsn_{0};
  std::atomic<uint64_t>* sync_counter_ = nullptr;
};

/// FNV-1a 32-bit checksum over a byte range.
uint32_t Fnv1a32(const char* data, size_t n);

/// Incremental FNV-1a 64-bit (whole-file checksums of checkpoints).
inline constexpr uint64_t kFnv1a64Seed = 14695981039346656037ull;
inline uint64_t Fnv1a64(const char* data, size_t n,
                        uint64_t h = kFnv1a64Seed) {
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace lstore

#endif  // LSTORE_LOG_REDO_LOG_H_
