#include "log/framed_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "obs/span.h"
#include "obs/trace.h"
#include "storage/compression/varint.h"

namespace lstore {

namespace {

/// Read a whole file into `out`; false if it cannot be opened.
bool SlurpFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    out->append(chunk, n);
  }
  std::fclose(f);
  return true;
}

/// fsync the directory containing `path` so a rename inside it
/// survives power loss (file data alone is not enough).
void SyncDirOf(const std::string& path) {
  std::string dir = path.find_last_of('/') == std::string::npos
                        ? "."
                        : path.substr(0, path.find_last_of('/'));
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    (void)::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

uint32_t Fnv1a32(const char* data, size_t n) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 16777619u;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Static framing helpers
// ---------------------------------------------------------------------------

void FramedLog::AppendFrame(std::string* out, std::string_view payload) {
  PutVarint64(out, payload.size());
  out->append(payload);
  uint32_t crc = Fnv1a32(payload.data(), payload.size());
  out->append(reinterpret_cast<const char*>(&crc), sizeof(crc));
}

std::string FramedLog::TruncationPointFrame(uint64_t base_lsn) {
  std::string payload;
  payload.push_back(static_cast<char>(kTruncationPointTag));
  PutVarint64(&payload, base_lsn);
  std::string frame;
  AppendFrame(&frame, payload);
  return frame;
}

void FramedLog::ScanFrames(std::string_view data, const Codec& codec,
                           const FrameFn& fn, ScanStats* stats) {
  size_t pos = 0;
  uint64_t lsn = 0;
  stats->clean_end = true;
  while (pos < data.size()) {
    size_t frame_start = pos;
    uint64_t len;
    if (!GetVarint64(data.data(), data.size(), &pos, &len)) {
      stats->clean_end = false;  // torn length varint
      pos = frame_start;
      break;
    }
    size_t remain = data.size() - pos;
    // Overflow-safe: a torn tail can present an absurd length whose
    // naive `pos + len` bound check would wrap around.
    if (remain < sizeof(uint32_t) || len > remain - sizeof(uint32_t)) {
      stats->clean_end = false;
      pos = frame_start;
      break;
    }
    const char* payload = data.data() + pos;
    uint32_t stored;
    std::memcpy(&stored, data.data() + pos + len, sizeof(stored));
    if (Fnv1a32(payload, len) != stored) {  // corrupt frame
      stats->clean_end = false;
      pos = frame_start;
      break;
    }
    if (len > 0 &&
        static_cast<uint8_t>(payload[0]) == kTruncationPointTag) {
      size_t sub = 1;
      uint64_t base = 0;
      if (!GetVarint64(payload, len, &sub, &base) || sub != len) {
        stats->clean_end = false;
        pos = frame_start;
        break;
      }
      pos += len + sizeof(uint32_t);
      lsn = base;
      stats->base_lsn = base;
      stats->last_lsn = lsn;
      continue;
    }
    uint64_t count = 0;
    if (!codec(payload, len, &count)) {  // malformed payload
      stats->clean_end = false;
      pos = frame_start;
      break;
    }
    pos += len + sizeof(uint32_t);
    if (fn) {
      fn(std::string_view(payload, len), lsn + 1, count, frame_start, pos);
    }
    lsn += count;
    if (count > 0) stats->last_lsn = lsn;
  }
  stats->bytes_consumed = pos;
}

Status FramedLog::ScanFile(const std::string& path, const Codec& codec,
                           const FrameFn& fn, ScanStats* stats) {
  std::string data;
  if (!SlurpFile(path, &data)) {
    return Status::IOError("cannot open log for scan: " + path);
  }
  ScanStats local;
  ScanFrames(data, codec, fn, stats != nullptr ? stats : &local);
  return Status::OK();
}

uint64_t FramedLog::ReadBaseLsn(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  char head[32];
  size_t n = std::fread(head, 1, sizeof(head), f);
  std::fclose(f);
  size_t pos = 0;
  uint64_t len;
  if (!GetVarint64(head, n, &pos, &len) || len == 0 || len > n - pos) return 0;
  if (static_cast<uint8_t>(head[pos]) != kTruncationPointTag) return 0;
  size_t sub = pos + 1;
  uint64_t base = 0;
  if (!GetVarint64(head, pos + len, &sub, &base)) return 0;
  return base;
}

// ---------------------------------------------------------------------------
// Appender
// ---------------------------------------------------------------------------

Status FramedLog::Open(const std::string& path, bool truncate,
                       const FrameFn& replay_fn) {
  Close();
  path_ = path;
  last_lsn_.store(0, std::memory_order_release);
  if (!truncate) {
    // Restore the LSN counter from the existing records and repair a
    // torn tail: appending after garbage would hide the new records
    // from every future replay.
    std::string data;
    if (SlurpFile(path, &data) && !data.empty()) {
      ScanStats stats;
      ScanFrames(data, codec_, replay_fn, &stats);
      last_lsn_.store(stats.last_lsn, std::memory_order_release);
      if (!stats.clean_end) {
        if (::truncate(path.c_str(),
                       static_cast<off_t>(stats.bytes_consumed)) != 0) {
          return Status::IOError("cannot repair torn log tail: " + path);
        }
      }
    }
  }
  file_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (file_ == nullptr) {
    return Status::IOError("cannot open log file: " + path);
  }
  return Status::OK();
}

void FramedLog::Close() {
  if (file_ != nullptr) {
    Flush(false);
    std::fclose(file_);
    file_ = nullptr;
  }
}

uint64_t FramedLog::Append(std::string_view payload, uint64_t lsn_count) {
  if (lsn_count == 0) return 0;
  // Time 1 in 64 appends: a clock read costs as much as the append
  // itself, and the latency histogram only needs a sample of the
  // distribution, not every point.
  uint64_t t0 = 0;
  if (kTraceEnabled && metrics_.append_ns != nullptr) {
    thread_local uint64_t sample_tick = 0;
    if ((sample_tick++ & 63) == 0) t0 = NowNanos();
  }
  // A traced request times every one of its appends (its timeline has
  // to be complete), independent of the 1-in-64 histogram sampling.
  uint64_t span_trace = kTraceEnabled ? TraceContext::Current() : 0;
  uint64_t span_t0 = span_trace != 0 ? NowNanos() : 0;
  uint64_t last;
  {
    std::lock_guard<std::mutex> g(mu_);
    size_t before = buffer_.size();
    AppendFrame(&buffer_, payload);
    // Load+store, NOT fetch_add(n)+n: every writer holds mu_ (readers
    // are lock-free), and gcc 12 miscompiles the fetch_add form with a
    // variable operand (the xadd clobbers the addend register,
    // yielding old+old).
    last = last_lsn_.load(std::memory_order_relaxed) + lsn_count;
    last_lsn_.store(last, std::memory_order_release);
    ++pending_appends_;
    pending_append_bytes_ += buffer_.size() - before;
    if (pending_appends_ >= 64) PublishPendingLocked();
  }
  if (t0 != 0) metrics_.append_ns->Record(NowNanos() - t0);
  if (span_trace != 0) {
    RecordSpan(span_trace, "log_append", span_t0, NowNanos() - span_t0);
  }
  return last;
}

void FramedLog::PublishPendingLocked() {
  if (pending_appends_ == 0) return;
  if (metrics_.appends != nullptr) metrics_.appends->Add(pending_appends_);
  if (metrics_.append_bytes != nullptr) {
    metrics_.append_bytes->Add(pending_append_bytes_);
  }
  pending_appends_ = 0;
  pending_append_bytes_ = 0;
}

Status FramedLog::FlushBufferLocked() {
  if (file_ == nullptr) return Status::IOError("log not open");
  if (!buffer_.empty()) {
    size_t n = std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
    if (n != buffer_.size()) {
      // Drop exactly the consumed prefix on a short write (ENOSPC):
      // the file holds a partial frame, and a later retry must
      // continue at the same byte — re-writing the whole buffer after
      // the partial prefix would corrupt the log mid-file and take
      // every LATER (acknowledged) record down with it at the next
      // open's tail scan.
      std::string rest(buffer_, n);
      buffer_ = std::move(rest);
      return Status::IOError("short log write");
    }
    buffer_.clear();
  }
  if (std::fflush(file_) != 0) return Status::IOError("fflush failed");
  return Status::OK();
}

Status FramedLog::Flush(bool sync) {
  uint64_t t0 =
      (kTraceEnabled && metrics_.flush_ns != nullptr) ? NowNanos() : 0;
  std::lock_guard<std::mutex> g(mu_);
  PublishPendingLocked();  // flush = a snapshot-visible point
  LSTORE_RETURN_IF_ERROR(FlushBufferLocked());
  if (sync) {
    if (sync_counter_ != nullptr) {
      sync_counter_->fetch_add(1, std::memory_order_relaxed);
    }
    if (metrics_.fsyncs != nullptr) metrics_.fsyncs->Add(1);
    if (::fsync(::fileno(file_)) != 0) {
      return Status::IOError("fsync failed");
    }
  }
  if (t0 != 0) metrics_.flush_ns->Record(NowNanos() - t0);
  return Status::OK();
}

Status FramedLog::TruncateTo(uint64_t watermark_lsn, const SealSink& seal) {
  std::lock_guard<std::mutex> tg(truncate_mu_);

  // Phase 1 (mutex, O(pending appends)): make every appended frame
  // file-resident and snapshot the frame-aligned prefix length.
  size_t snap_size = 0;
  {
    std::lock_guard<std::mutex> g(mu_);
    LSTORE_RETURN_IF_ERROR(FlushBufferLocked());
    long pos = std::ftell(file_);
    if (pos < 0) return Status::IOError("cannot size log for truncation");
    snap_size = static_cast<size_t>(pos);
  }

  // Phase 2 (NO mutex — appends proceed): scan the snapshot prefix,
  // locate the byte offset of the first frame that must survive, and
  // write the new head (truncation point + retained bytes) to a temp
  // file. Frames appended after phase 1 are untouched: they live in
  // the old file beyond snap_size and are copied in phase 3.
  std::string data;
  if (!SlurpFile(path_, &data)) {
    return Status::IOError("cannot read log for truncation: " + path_);
  }
  data.resize(std::min(data.size(), snap_size));
  ScanStats stats;
  size_t cut = 0;
  uint64_t base_lsn = 0;
  bool found_cut = false;
  uint64_t prefix_first_lsn = 0;  ///< first record LSN in the file
  ScanFrames(
      data, codec_,
      [&](std::string_view, uint64_t first_lsn, uint64_t count, size_t begin,
          size_t) {
        if (count == 0) return;
        if (prefix_first_lsn == 0) prefix_first_lsn = first_lsn;
        if (!found_cut && first_lsn + count - 1 > watermark_lsn) {
          // A batch frame straddling the watermark is kept whole; the
          // LSN base backs up to renumber its first record correctly.
          found_cut = true;
          cut = begin;
          base_lsn = first_lsn - 1;
        }
      },
      &stats);
  if (!found_cut) {
    cut = stats.bytes_consumed;
    base_lsn = stats.last_lsn;
  }

  // Archive the retired prefix before anything is dropped: the sink
  // must have it durable before the truncated log below is published,
  // so a crash anywhere in between loses nothing (the prefix exists in
  // the archive, the live log, or both).
  if (seal != nullptr && cut > 0 && prefix_first_lsn != 0 &&
      prefix_first_lsn <= base_lsn) {
    std::string sealed = TruncationPointFrame(prefix_first_lsn - 1);
    sealed.append(data.data(), cut);
    LSTORE_RETURN_IF_ERROR(seal(prefix_first_lsn, base_lsn, sealed));
  }

  std::string head = TruncationPointFrame(base_lsn);
  std::string tmp = path_ + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) return Status::IOError("cannot open temp log: " + tmp);
  bool write_ok =
      std::fwrite(head.data(), 1, head.size(), out) == head.size() &&
      (data.size() == cut ||
       std::fwrite(data.data() + cut, 1, data.size() - cut, out) ==
           data.size() - cut);
  if (!write_ok) {
    std::fclose(out);
    std::remove(tmp.c_str());
    return Status::IOError("short write during log truncation");
  }

  // Phase 3 (mutex, O(appends since phase 1)): drain the buffer, copy
  // the live suffix [snap_size, EOF) byte-for-byte, and swap handles.
  std::lock_guard<std::mutex> g(mu_);
  Status flush = FlushBufferLocked();
  if (!flush.ok()) {
    std::fclose(out);
    std::remove(tmp.c_str());
    return flush;
  }
  {
    std::FILE* in = std::fopen(path_.c_str(), "rb");
    if (in == nullptr ||
        std::fseek(in, static_cast<long>(snap_size), SEEK_SET) != 0) {
      if (in != nullptr) std::fclose(in);
      std::fclose(out);
      std::remove(tmp.c_str());
      return Status::IOError("cannot read log suffix for truncation");
    }
    char chunk[1 << 16];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), in)) > 0) {
      if (std::fwrite(chunk, 1, n, out) != n) {
        std::fclose(in);
        std::fclose(out);
        std::remove(tmp.c_str());
        return Status::IOError("short write during log truncation");
      }
    }
    std::fclose(in);
  }
  write_ok = std::fflush(out) == 0 && ::fsync(::fileno(out)) == 0;
  std::fclose(out);
  if (!write_ok) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot sync truncated log");
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot publish truncated log");
  }
  // Make the rename itself durable before dropping the old handle.
  SyncDirOf(path_);
  // Re-point the handle at the new file (the old inode is unlinked).
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IOError("cannot reopen truncated log: " + path_);
  }
  return Status::OK();
}

}  // namespace lstore
