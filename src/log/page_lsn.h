// Ownership Relaying (OR) protocol for pageLSN maintenance.
//
// Section 5.2: naive write-ahead logging on columnar pages would hold
// an exclusive page latch across {modify page, write log record,
// update pageLSN}. The OR protocol lets all writers hold *shared*
// latches; only the writer holding the highest LSN becomes the page
// "owner", promotes to exclusive once the others drain, and updates
// the pageLSN on behalf of everyone: "if there are 100 concurrent
// writers, then only one writer will get an exclusive latch on behalf
// of all the writers".
//
// A starvation valve (theta_s) forces a drain-and-flush after a
// bounded number of shared grants, mirroring the forced flushing
// policy of the paper.

#ifndef LSTORE_LOG_PAGE_LSN_H_
#define LSTORE_LOG_PAGE_LSN_H_

#include <atomic>
#include <cstdint>

#include "common/latch.h"

namespace lstore {

class OrProtocolPage {
 public:
  explicit OrProtocolPage(uint64_t flush_threshold = 1024)
      : flush_threshold_(flush_threshold) {}

  /// Acquire a shared latch before modifying the page. Blocks while a
  /// forced drain is in progress (starvation valve).
  void BeginWrite();

  /// Called after the modification is done and its log record has
  /// received `lsn`. Implements the ownership hand-off: either the
  /// caller is (or becomes) the owner and updates the pageLSN under a
  /// promoted exclusive latch, or it simply releases its shared latch
  /// because a higher-LSN owner exists.
  void EndWrite(uint64_t lsn);

  /// The durable-consistency watermark: every modification with
  /// LSN <= pageLSN has been applied (invariant checked by tests).
  uint64_t page_lsn() const { return page_lsn_.load(std::memory_order_acquire); }
  uint64_t owner_lsn() const {
    return owner_lsn_.load(std::memory_order_acquire);
  }

  /// Diagnostics: how many EndWrite calls promoted to exclusive
  /// (should be far fewer than the number of writers).
  uint64_t exclusive_promotions() const {
    return promotions_.load(std::memory_order_relaxed);
  }
  uint64_t forced_drains() const {
    return drains_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint32_t> latch_state_{0};  // [writer bit | shared count]
  std::atomic<uint64_t> page_lsn_{0};
  std::atomic<uint64_t> owner_lsn_{0};
  std::atomic<uint64_t> promotions_{0};
  std::atomic<uint64_t> drains_{0};
  std::atomic<uint64_t> grants_since_flush_{0};
  std::atomic<bool> draining_{false};
  uint64_t flush_threshold_;
};

}  // namespace lstore

#endif  // LSTORE_LOG_PAGE_LSN_H_
