// Concurrent primary-key index: key → base RID.
//
// Section 2.2: "all indexes only reference base records (base RIDs)",
// which eliminates index maintenance on updates — the index is touched
// only by inserts and (deferred) deletes. Sharded hash map with
// per-shard spin latches; point lookups take one latch acquire.

#ifndef LSTORE_INDEX_PRIMARY_INDEX_H_
#define LSTORE_INDEX_PRIMARY_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/latch.h"
#include "common/types.h"

namespace lstore {

class PrimaryIndex {
 public:
  explicit PrimaryIndex(size_t num_shards = 64);

  /// Insert; fails (returns false) if the key already exists —
  /// enforces primary-key uniqueness.
  bool Insert(Value key, Rid rid);

  /// Point lookup. Returns kInvalidRid if absent.
  Rid Get(Value key) const;

  /// Batched lookup: out[i] = RID of keys[i] (kInvalidRid if absent).
  /// Groups probes by shard so each shard latch is taken once per
  /// batch instead of once per key (the MultiRead hot-path win).
  void MultiGet(const Value* keys, size_t n, Rid* out) const;

  /// Remove the key (used when an insert aborts or after a delete
  /// falls out of every snapshot).
  bool Erase(Value key);

  size_t size() const;

 private:
  struct Shard {
    mutable SpinLatch latch;
    std::unordered_map<Value, Rid> map;
  };
  size_t ShardOf(Value key) const {
    // Fibonacci hashing spreads sequential keys across shards.
    return (key * 0x9e3779b97f4a7c15ull >> 32) % shards_.size();
  }
  mutable std::vector<Shard> shards_;
};

}  // namespace lstore

#endif  // LSTORE_INDEX_PRIMARY_INDEX_H_
