#include "index/secondary_index.h"

#include <algorithm>

namespace lstore {

SecondaryIndex::SecondaryIndex(size_t num_shards) : shards_(num_shards) {}

void SecondaryIndex::Add(Value v, Rid rid) {
  Shard& s = shards_[ShardOf(v)];
  SpinGuard g(s.latch);
  s.map[v].push_back(Posting{rid, false});
}

void SecondaryIndex::MarkStale(Value v, Rid rid) {
  Shard& s = shards_[ShardOf(v)];
  SpinGuard g(s.latch);
  auto it = s.map.find(v);
  if (it == s.map.end()) return;
  for (auto& p : it->second) {
    if (p.rid == rid && !p.stale) {
      p.stale = true;
      return;
    }
  }
}

std::vector<Rid> SecondaryIndex::Lookup(Value v) const {
  const Shard& s = shards_[ShardOf(v)];
  SpinGuard g(s.latch);
  std::vector<Rid> out;
  auto it = s.map.find(v);
  if (it != s.map.end()) {
    for (const auto& p : it->second) out.push_back(p.rid);
  }
  return out;
}

std::vector<Rid> SecondaryIndex::LookupRange(Value lo, Value hi) const {
  std::vector<Rid> out;
  for (const auto& s : shards_) {
    SpinGuard g(s.latch);
    for (auto it = s.map.lower_bound(lo);
         it != s.map.end() && it->first <= hi; ++it) {
      for (const auto& p : it->second) out.push_back(p.rid);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

size_t SecondaryIndex::GarbageCollect() {
  size_t removed = 0;
  for (auto& s : shards_) {
    SpinGuard g(s.latch);
    for (auto it = s.map.begin(); it != s.map.end();) {
      auto& vec = it->second;
      size_t before = vec.size();
      vec.erase(std::remove_if(vec.begin(), vec.end(),
                               [](const Posting& p) { return p.stale; }),
                vec.end());
      removed += before - vec.size();
      it = vec.empty() ? s.map.erase(it) : std::next(it);
    }
  }
  return removed;
}

size_t SecondaryIndex::GarbageCollect(
    const std::function<bool(Value, Rid)>& is_stale) {
  size_t removed = 0;
  for (auto& s : shards_) {
    SpinGuard g(s.latch);
    for (auto it = s.map.begin(); it != s.map.end();) {
      Value v = it->first;
      auto& vec = it->second;
      size_t before = vec.size();
      vec.erase(std::remove_if(vec.begin(), vec.end(),
                               [&](const Posting& p) {
                                 return p.stale || is_stale(v, p.rid);
                               }),
                vec.end());
      removed += before - vec.size();
      it = vec.empty() ? s.map.erase(it) : std::next(it);
    }
  }
  return removed;
}

size_t SecondaryIndex::size() const {
  size_t n = 0;
  for (const auto& s : shards_) {
    SpinGuard g(s.latch);
    for (const auto& [v, vec] : s.map) n += vec.size();
  }
  return n;
}

}  // namespace lstore
