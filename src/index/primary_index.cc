#include "index/primary_index.h"

namespace lstore {

PrimaryIndex::PrimaryIndex(size_t num_shards) : shards_(num_shards) {}

bool PrimaryIndex::Insert(Value key, Rid rid) {
  Shard& s = shards_[ShardOf(key)];
  SpinGuard g(s.latch);
  return s.map.emplace(key, rid).second;
}

Rid PrimaryIndex::Get(Value key) const {
  const Shard& s = shards_[ShardOf(key)];
  SpinGuard g(s.latch);
  auto it = s.map.find(key);
  return it == s.map.end() ? kInvalidRid : it->second;
}

bool PrimaryIndex::Erase(Value key) {
  Shard& s = shards_[ShardOf(key)];
  SpinGuard g(s.latch);
  return s.map.erase(key) > 0;
}

size_t PrimaryIndex::size() const {
  size_t n = 0;
  for (const auto& s : shards_) {
    SpinGuard g(s.latch);
    n += s.map.size();
  }
  return n;
}

}  // namespace lstore
