#include "index/primary_index.h"

#include <algorithm>

namespace lstore {

PrimaryIndex::PrimaryIndex(size_t num_shards) : shards_(num_shards) {}

bool PrimaryIndex::Insert(Value key, Rid rid) {
  Shard& s = shards_[ShardOf(key)];
  SpinGuard g(s.latch);
  return s.map.emplace(key, rid).second;
}

Rid PrimaryIndex::Get(Value key) const {
  const Shard& s = shards_[ShardOf(key)];
  SpinGuard g(s.latch);
  auto it = s.map.find(key);
  return it == s.map.end() ? kInvalidRid : it->second;
}

void PrimaryIndex::MultiGet(const Value* keys, size_t n, Rid* out) const {
  // Bucket probe positions by shard, then visit each touched shard
  // once (one latch acquisition per shard per batch). The scratch
  // arrays live on the stack for typical batches, on the heap beyond.
  constexpr size_t kStackBatch = 256;
  uint32_t order_stack[kStackBatch];
  uint32_t shard_stack[kStackBatch];
  std::vector<uint32_t> order_heap, shard_heap;
  uint32_t* order = order_stack;
  uint32_t* shard_of = shard_stack;
  if (n > kStackBatch) {
    order_heap.resize(n);
    shard_heap.resize(n);
    order = order_heap.data();
    shard_of = shard_heap.data();
  }
  for (size_t i = 0; i < n; ++i) {
    order[i] = static_cast<uint32_t>(i);
    shard_of[i] = static_cast<uint32_t>(ShardOf(keys[i]));
  }
  std::sort(order, order + n,
            [&](uint32_t a, uint32_t b) { return shard_of[a] < shard_of[b]; });
  size_t i = 0;
  while (i < n) {
    uint32_t shard = shard_of[order[i]];
    const Shard& s = shards_[shard];
    SpinGuard g(s.latch);
    for (; i < n && shard_of[order[i]] == shard; ++i) {
      auto it = s.map.find(keys[order[i]]);
      out[order[i]] = it == s.map.end() ? kInvalidRid : it->second;
    }
  }
}

bool PrimaryIndex::Erase(Value key) {
  Shard& s = shards_[ShardOf(key)];
  SpinGuard g(s.latch);
  return s.map.erase(key) > 0;
}

size_t PrimaryIndex::size() const {
  size_t n = 0;
  for (const auto& s : shards_) {
    SpinGuard g(s.latch);
    n += s.map.size();
  }
  return n;
}

}  // namespace lstore
