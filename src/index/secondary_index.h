// Secondary index: column value → base RIDs.
//
// Section 3.1: on update, "only the affected indexes are modified with
// the updated values, but they continue to point to base records".
// Readers landing on a base record "must determine the visible version
// ... and must check if the visible version has the value", i.e. the
// index returns *candidates* and the caller re-evaluates the predicate
// under its snapshot. Old entries are removed lazily (footnote 3:
// defer "until the changed entries fall outside the snapshot of all
// relevant active queries"), implemented here as an explicit
// garbage-collection call driven by the table's epoch manager.

#ifndef LSTORE_INDEX_SECONDARY_INDEX_H_
#define LSTORE_INDEX_SECONDARY_INDEX_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/latch.h"
#include "common/types.h"

namespace lstore {

class SecondaryIndex {
 public:
  explicit SecondaryIndex(size_t num_shards = 16);

  /// Add a (value, base rid) posting; duplicates are tolerated.
  void Add(Value v, Rid rid);

  /// Mark a posting as removable once current snapshots drain.
  void MarkStale(Value v, Rid rid);

  /// All candidate base RIDs whose (some) version has value v.
  std::vector<Rid> Lookup(Value v) const;

  /// Candidates for the inclusive value range [lo, hi].
  std::vector<Rid> LookupRange(Value lo, Value hi) const;

  /// Physically remove postings marked stale before this call.
  /// Invoke from the epoch manager once old snapshots have drained.
  size_t GarbageCollect();

  /// Validator-driven collection: removes every posting for which
  /// `is_stale(value, rid)` returns true (e.g. "the visible version of
  /// rid no longer carries this value").
  size_t GarbageCollect(const std::function<bool(Value, Rid)>& is_stale);

  size_t size() const;

 private:
  struct Posting {
    Rid rid;
    bool stale;
  };
  struct Shard {
    mutable SpinLatch latch;
    std::map<Value, std::vector<Posting>> map;  // ordered for ranges
  };
  size_t ShardOf(Value v) const {
    return (v * 0x9e3779b97f4a7c15ull >> 32) % shards_.size();
  }
  mutable std::vector<Shard> shards_;
};

}  // namespace lstore

#endif  // LSTORE_INDEX_SECONDARY_INDEX_H_
