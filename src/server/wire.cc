#include "server/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "log/framed_log.h"

namespace lstore {
namespace wire {

namespace {

/// recv() exactly n bytes. Returns 1 on success, 0 on clean EOF
/// before the first byte, -1 on error or EOF mid-read.
int RecvAll(int fd, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r == 0) return got == 0 ? 0 : -1;
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    got += static_cast<size_t>(r);
  }
  return 1;
}

Status SendAll(int fd, const char* buf, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not kill
    // the process with SIGPIPE.
    ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, std::string_view payload) {
  std::string frame;
  frame.reserve(payload.size() + kFrameOverhead);
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload.data(), payload.size());
  PutU32(&frame, Fnv1a32(payload.data(), payload.size()));
  return SendAll(fd, frame.data(), frame.size());
}

Status ReadFrame(int fd, uint32_t max_frame_bytes, std::string* payload) {
  char hdr[4];
  int r = RecvAll(fd, hdr, 4);
  if (r == 0) return Status::NotFound("connection closed");
  if (r < 0) return Status::IOError("torn frame header");
  Reader len_reader(std::string_view(hdr, 4));
  uint32_t len = 0;
  len_reader.U32(&len);
  if (len > max_frame_bytes) {
    // The announced body is not trustworthy, so the stream position
    // after it is unknowable: callers must close the connection.
    return Status::InvalidArgument("frame exceeds size cap");
  }
  payload->resize(len);
  if (len > 0 && RecvAll(fd, payload->data(), len) <= 0) {
    return Status::IOError("torn frame payload");
  }
  char crc_buf[4];
  if (RecvAll(fd, crc_buf, 4) <= 0) {
    return Status::IOError("torn frame checksum");
  }
  Reader crc_reader(std::string_view(crc_buf, 4));
  uint32_t crc = 0;
  crc_reader.U32(&crc);
  if (crc != Fnv1a32(payload->data(), payload->size())) {
    return Status::Corruption("frame checksum mismatch");
  }
  return Status::OK();
}

}  // namespace wire
}  // namespace lstore
