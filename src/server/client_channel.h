// Pipelined client core for the L-Store network service: the
// Submit/Await half of the client split.
//
// The wire protocol has always carried a client-chosen request id,
// echoed verbatim in the response, precisely so a client can keep
// several requests in flight on one connection and match responses
// arriving out of request order (the server executes a session's
// requests in order, but admission-control Busy rejections are
// written by the reader thread and overtake in-flight work). The
// original Client never used that: it was strictly blocking, one
// request at a time, so a benchmark driver could never keep a
// connection's pipeline full.
//
// ClientChannel is the pipelined core:
//
//   RequestId id;
//   channel.Submit(wire::Op::kRead, body, &id);   // send, don't wait
//   ... submit more, up to max_in_flight() ...
//   Status s = channel.Await(id, &resp_body);     // match by id
//
// Submit writes the request frame and records the id as in flight;
// it never reads the socket. Await reads response frames until the
// requested id's response arrives, parking responses for *other*
// in-flight ids in a ready buffer — so requests can be awaited in
// any order, not just submission order. When the pipeline is full
// (in_flight() == max_in_flight()), Submit returns Busy: the caller
// awaits something before submitting more.
//
// Failure model: the channel is fail-stop. A socket error, a torn or
// checksum-failed frame, or a response id that was never submitted
// breaks the channel — the socket closes, the breaking status is
// remembered, and every outstanding (and future) Submit/Await returns
// it. There is no resynchronization: a blocking facade can simply
// reconnect, and a pipelined caller must treat its outstanding
// requests as lost (their commit state on the server is unknown,
// exactly as with any network cut).
//
// Not thread-safe, by design: one ClientChannel per thread, like the
// blocking Client (a session's pipeline is single-consumer state; the
// server already serializes a session's execution).

#ifndef LSTORE_SERVER_CLIENT_CHANNEL_H_
#define LSTORE_SERVER_CLIENT_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "common/status.h"
#include "server/wire.h"

namespace lstore {

/// Handle to one in-flight request (the echoed wire request id).
using RequestId = uint32_t;

class ClientChannel {
 public:
  /// Default cap on submitted-but-unawaited requests. Matches the
  /// server's default ServerConfig::max_inflight_per_session, so an
  /// unconfigured pipeline saturates the session's admission budget
  /// without tripping it.
  static constexpr uint32_t kDefaultMaxInFlight = 16;

  ClientChannel() = default;
  ~ClientChannel() { Close(); }

  ClientChannel(const ClientChannel&) = delete;
  ClientChannel& operator=(const ClientChannel&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Send [id][op][body] without waiting for the response. Returns
  /// the id to Await on via *id. Fails with Busy when in_flight() is
  /// already at max_in_flight() (await something first), and with the
  /// channel's breaking status once it is broken.
  Status Submit(wire::Op op, std::string_view body, RequestId* id);

  /// Block until `id`'s response arrives (or is already parked in the
  /// ready buffer), then return the operation's status; an OK body is
  /// left in *resp_body (may be nullptr). Responses read while
  /// waiting are parked for their own Await — ids may be awaited in
  /// any order. InvalidArgument for an id that is neither in flight
  /// nor ready (never submitted, or already awaited).
  Status Await(RequestId id, std::string* resp_body);

  /// Submitted-but-unawaited requests (includes responses already
  /// parked in the ready buffer but not yet claimed).
  size_t in_flight() const { return inflight_.size() + ready_.size(); }

  /// Oldest submitted id whose response has not been awaited yet —
  /// what a closed-loop pipelining driver awaits when full. False
  /// when nothing is in flight.
  bool OldestInFlight(RequestId* id) const;

  uint32_t max_in_flight() const { return max_in_flight_; }
  /// Adjust the pipeline cap (>= 1). Takes effect on the next Submit;
  /// already-submitted requests are unaffected.
  void set_max_in_flight(uint32_t n) { max_in_flight_ = n == 0 ? 1 : n; }

  void set_max_frame_bytes(uint32_t n) { max_frame_bytes_ = n; }

  /// Stamp the NEXT Submit with this trace id (one-shot; cleared by
  /// that Submit): the request travels with `op | kTracedOpFlag` plus
  /// the 64-bit id, and a tracing server records its span timeline
  /// under the id. 0 clears a pending stamp.
  void set_next_trace_id(uint64_t trace_id) { next_trace_id_ = trace_id; }

 private:
  struct Ready {
    uint8_t code = 0;
    std::string message;
    std::string body;
  };

  /// Read one response frame and park it in ready_. Breaks the
  /// channel on any framing/matching failure.
  Status ReadOne();

  /// Close the socket, remember `s` as the breaking status, and fail
  /// every outstanding request with it.
  Status Break(const Status& s);

  int fd_ = -1;
  uint32_t next_request_id_ = 1;
  uint64_t next_trace_id_ = 0;  ///< one-shot stamp for the next Submit
  uint32_t max_frame_bytes_ = wire::kDefaultMaxFrameBytes;
  uint32_t max_in_flight_ = kDefaultMaxInFlight;

  /// Ids submitted, response not yet received; order_ is submit order.
  std::unordered_set<RequestId> inflight_;
  std::deque<RequestId> order_;
  /// Responses received but not yet Await()ed, keyed by id.
  std::unordered_map<RequestId, Ready> ready_;
  /// Breaking status once the channel failed (OK while healthy).
  Status broken_;
};

/// Rebuild a Status from its wire code + message (shared by the
/// channel and the typed decode helpers in client.cc).
Status StatusFromWire(uint8_t code, const std::string& msg);

}  // namespace lstore

#endif  // LSTORE_SERVER_CLIENT_CHANNEL_H_
