#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/thread_pool.h"
#include "core/query.h"
#include "obs/slow_op_log.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace lstore {

Server::Server(Database* db, ServerConfig config)
    : db_(db), cfg_(std::move(config)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already running");
  }

  uint32_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  if (cfg_.workers == 0) {
    cfg_.workers = std::clamp<uint32_t>(hw / 2, 2, 8);
  }
  if (cfg_.max_queue_depth == 0) cfg_.max_queue_depth = 1;
  if (cfg_.max_inflight_per_session == 0) cfg_.max_inflight_per_session = 1;
  if (cfg_.scan_threads != UINT32_MAX) {
    // Keep server workers + Query scan partitions inside one core
    // budget: by default the scan pool gets whatever the workers
    // don't. First-configuration-wins (see ThreadPool::ConfigureShared),
    // so an explicit DurabilityOptions::scan_threads set at Open
    // still takes precedence.
    uint32_t scan = cfg_.scan_threads != 0
                        ? cfg_.scan_threads
                        : (hw > cfg_.workers ? hw - cfg_.workers : 1);
    ThreadPool::ConfigureShared(scan);
  }

  MetricsRegistry& reg = db_->metrics();
  m_accepted_ = reg.GetCounter("lstore_server_requests_total",
                               "Requests admitted to the job queue");
  m_rejected_ = reg.GetCounter(
      "lstore_server_rejected_total",
      "Requests answered Busy at admission (queue or session cap)");
  m_errors_ = reg.GetCounter("lstore_server_errors_total",
                             "Malformed frames and request payloads");
  m_connections_ = reg.GetCounter("lstore_server_connections_total",
                                  "Client connections accepted");
  m_bytes_in_ = reg.GetCounter("lstore_server_bytes_in_total",
                               "Request bytes received (incl. framing)");
  m_bytes_out_ = reg.GetCounter("lstore_server_bytes_out_total",
                                "Response bytes sent (incl. framing)");
  g_sessions_ = reg.GetGauge("lstore_server_sessions", "Connected sessions");
  g_queue_depth_ =
      reg.GetGauge("lstore_server_queue_depth", "Requests queued, all sessions");
  h_queue_wait_ns_ = reg.GetHistogram(
      "lstore_server_queue_wait_ns",
      "Admission-to-execution wait of accepted requests");
  h_request_ns_ = reg.GetHistogram("lstore_server_request_ns",
                                   "Request execution latency (engine time)");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host: " + cfg_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    Status s = Status::IOError(std::string("bind/listen: ") +
                               std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t alen = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(cfg_.workers);
  for (uint32_t i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  db_->event_log().Emit(EventSeverity::kInfo, "server", "start",
                        "\"port\":" + std::to_string(port_) + ",\"workers\":" +
                            std::to_string(cfg_.workers));
  return Status::OK();
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);

  // 1. Stop accepting: shutdown() unblocks a blocked accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // 2. Unblock every connection's reader (EOF on next recv). The fds
  //    are only *closed* at finalization, after readers are gone.
  {
    std::lock_guard<std::mutex> g(mu_);
    for (auto& [id, s] : sessions_) {
      if (s->fd >= 0) ::shutdown(s->fd, SHUT_RDWR);
    }
  }

  // 3. Drain the workers: each finishes its in-flight request, then
  //    exits (queued-but-unstarted requests are dropped — their
  //    clients observe the connection closing).
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();

  // 4. Wait out the (detached) readers, then finalize every session
  //    left: open transactions abort, sockets close.
  std::unique_lock<std::mutex> l(mu_);
  reader_cv_.wait(l, [this] { return reader_threads_ == 0; });
  runq_.clear();
  while (!sessions_.empty()) {
    std::shared_ptr<Session> s = sessions_.begin()->second;
    queued_ -= static_cast<uint32_t>(s->pending.size());
    s->pending.clear();
    FinalizeSessionLocked(s);
  }
  if (g_queue_depth_ != nullptr) g_queue_depth_->Set(0);
  l.unlock();
  db_->event_log().Emit(EventSeverity::kInfo, "server", "stop",
                        "\"port\":" + std::to_string(port_));
}

ServerStats Server::stats() const {
  ServerStats st;
  if (m_accepted_ != nullptr) st.accepted = m_accepted_->value();
  if (m_rejected_ != nullptr) st.rejected_busy = m_rejected_->value();
  if (m_errors_ != nullptr) st.errors = m_errors_->value();
  std::lock_guard<std::mutex> g(mu_);
  st.sessions_active = sessions_.size();
  st.queue_depth = queued_;
  return st;
}

void Server::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // shutdown()/close() of the listen socket lands here.
      if (stopping_.load(std::memory_order_acquire)) return;
      if (errno == ECONNABORTED) continue;
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto session = std::make_shared<Session>();
    session->fd = fd;
    {
      std::lock_guard<std::mutex> g(mu_);
      session->id = next_session_id_++;
      sessions_.emplace(session->id, session);
      ++reader_threads_;
    }
    m_connections_->Increment();
    g_sessions_->Add(1);
    std::thread([this, session]() mutable {
      ReaderLoop(std::move(session));
    }).detach();
  }
}

void Server::ReaderLoop(std::shared_ptr<Session> session) {
  // Busy-scoped heartbeat: a reader blocked in ReadFrame is waiting on
  // the client (healthy); only frame processing counts as work. Local
  // shared_ptr → the actor unregisters when the connection ends.
  std::shared_ptr<Heartbeat> hb =
      db_->health().Register("server.reader." + std::to_string(session->id));
  for (;;) {
    std::string payload;
    Status s = wire::ReadFrame(session->fd, cfg_.max_frame_bytes, &payload);
    HeartbeatWorkScope work(hb.get());
    if (!s.ok()) {
      if (s.IsCorruption() || s.IsInvalidArgument()) {
        // A checksum mismatch or a hostile length header leaves the
        // stream position unknowable: report once, then hang up.
        m_errors_->Increment();
        SendResponse(session.get(), 0, s);
      }
      break;
    }
    m_bytes_in_->Add(payload.size() + wire::kFrameOverhead);
    uint64_t t0 = kTraceEnabled ? NowNanos() : 0;

    wire::Reader hdr(payload);
    uint32_t request_id = 0;
    uint8_t op = 0;
    uint64_t trace_id = 0;
    // The trace-id header field is parsed UNCONDITIONALLY — wire
    // compatibility cannot depend on the tracing build; an untraced
    // build still has to skip the 8 bytes a stamping client sent.
    if (!hdr.U32(&request_id) || !hdr.U8(&op) ||
        ((op & wire::kTracedOpFlag) != 0 && !hdr.U64(&trace_id))) {
      // The *frame* was well-formed, so the stream stays in sync: a
      // clean error response, not a hangup.
      m_errors_->Increment();
      SendResponse(session.get(), request_id,
                   Status::InvalidArgument("short request header"));
      continue;
    }

    // Sample-profile mode: stamp a server-minted trace id on every Nth
    // otherwise-untraced request, so span timelines and slow-op dumps
    // exist without client cooperation. Client-stamped ids win.
    if (kTraceEnabled && trace_id == 0 && cfg_.trace_sample_every > 0 &&
        sample_counter_.fetch_add(1, std::memory_order_relaxed) %
                cfg_.trace_sample_every ==
            0) {
      trace_id = TraceContext::NewTraceId();
    }

    // Admission control — decided here, before anything queues, so
    // overload turns into immediate Busy responses while the backlog
    // (and therefore accepted-request latency) stays bounded.
    const char* busy_reason = nullptr;
    bool enqueued = false;
    uint64_t enqueue_ns = 0;
    // Admission engage/disengage edge, detected under mu_ but emitted
    // outside it (the event log does file I/O).
    int admission_edge = 0;
    {
      std::lock_guard<std::mutex> g(mu_);
      if (stopping_.load(std::memory_order_relaxed) || session->closing) {
        break;
      }
      if (queued_ >= cfg_.max_queue_depth) {
        busy_reason = "server overloaded: job queue full";
        if (!admission_engaged_) {
          admission_engaged_ = true;
          admission_edge = 1;
        }
      } else if (session->pending.size() >= cfg_.max_inflight_per_session) {
        busy_reason = "session pipeline full";
      } else {
        Request req;
        req.payload = std::move(payload);
        // Every ADMITTED request is stamped here; Busy rejections never
        // construct a Request at all — so the worker's queue-wait
        // sample needs only the compile-time kTraceEnabled guard, not a
        // runtime zero-check (which used to conflate "untraced build"
        // with "rejected request" and could skip real samples).
        enqueue_ns = kTraceEnabled ? NowNanos() : 0;
        req.enqueue_ns = enqueue_ns;
        req.trace_id = trace_id;
        req.t0_ns = t0;
        session->pending.push_back(std::move(req));
        ++queued_;
        g_queue_depth_->Set(queued_);
        if (!session->scheduled) {
          session->scheduled = true;
          runq_.push_back(session);
        }
        enqueued = true;
        if (admission_engaged_) {
          admission_engaged_ = false;
          admission_edge = -1;
        }
      }
    }
    if (admission_edge == 1) {
      db_->event_log().Emit(
          EventSeverity::kWarn, "server", "admission_engaged",
          "\"queue_depth\":" + std::to_string(cfg_.max_queue_depth));
    } else if (admission_edge == -1) {
      db_->event_log().Emit(EventSeverity::kInfo, "server",
                            "admission_disengaged");
    }
    if (enqueued) {
      // Frame arrival -> admitted to the queue (header parse + the
      // admission critical section). RecordSpan no-ops when untraced.
      RecordSpan(trace_id, "decode", t0, enqueue_ns - t0);
      m_accepted_->Increment();
      work_cv_.notify_one();
    } else {
      m_rejected_->Increment();
      SendResponse(session.get(), request_id, Status::Busy(busy_reason));
    }
  }

  // Disconnect (or shutdown). If the session is idle, finalize right
  // here; otherwise the worker holding it (or Stop's sweep) does, when
  // it observes `closing`. The notify runs under mu_ on purpose: once
  // this thread releases the lock it never touches the Server again,
  // so Stop() cannot race the (detached) tail of this function.
  {
    std::lock_guard<std::mutex> g(mu_);
    session->closing = true;
    if (!session->scheduled && !session->finalized) {
      FinalizeSessionLocked(session);
    }
    --reader_threads_;
    reader_cv_.notify_all();
  }
}

void Server::WorkerLoop(uint32_t index) {
  // Busy-scoped heartbeat: a worker parked on work_cv_ is healthy;
  // request execution (engine time, fsyncs included) is the monitored
  // window. Local shared_ptr → unregisters when the pool drains.
  std::shared_ptr<Heartbeat> hb =
      db_->health().Register("server.worker." + std::to_string(index));
  for (;;) {
    std::shared_ptr<Session> session;
    Request req;
    {
      std::unique_lock<std::mutex> l(mu_);
      work_cv_.wait(l, [this] {
        return stopping_.load(std::memory_order_relaxed) || !runq_.empty();
      });
      if (stopping_.load(std::memory_order_relaxed)) return;
      session = std::move(runq_.front());
      runq_.pop_front();
      if (session->closing) {
        queued_ -= static_cast<uint32_t>(session->pending.size());
        session->pending.clear();
        g_queue_depth_->Set(queued_);
        session->scheduled = false;
        if (!session->finalized) FinalizeSessionLocked(session);
        continue;
      }
      req = std::move(session->pending.front());
      session->pending.pop_front();
      --queued_;
      g_queue_depth_->Set(queued_);
    }

    if (kTraceEnabled) {
      // The stamp is trusted: every Request that reaches a worker was
      // stamped at admission (see ReaderLoop) — a zero check here
      // would only hide missing samples.
      uint64_t wait_ns = NowNanos() - req.enqueue_ns;
      h_queue_wait_ns_->Record(wait_ns);
      RecordSpan(req.trace_id, "queue_wait", req.enqueue_ns, wait_ns);
    }
    if (cfg_.test_delay_us != 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(cfg_.test_delay_us));
    }
    {
      // Propagate the request's trace id to everything this worker
      // calls into (commit pipeline, logs) for the request's duration.
      HeartbeatWorkScope work(hb.get());
      TraceContext::Scope trace_scope(req.trace_id);
      LSTORE_TRACE(h_request_ns_);
      HandleRequest(session.get(), req);
    }

    std::lock_guard<std::mutex> g(mu_);
    if (session->closing) {
      queued_ -= static_cast<uint32_t>(session->pending.size());
      session->pending.clear();
      g_queue_depth_->Set(queued_);
      session->scheduled = false;
      if (!session->finalized) FinalizeSessionLocked(session);
    } else if (!session->pending.empty()) {
      // More pipelined work: back of the queue, so sessions round-
      // robin instead of one chatty client starving the rest.
      runq_.push_back(session);
      work_cv_.notify_one();
    } else {
      session->scheduled = false;
    }
  }
}

void Server::FinalizeSessionLocked(const std::shared_ptr<Session>& session) {
  session->finalized = true;
  sessions_.erase(session->id);
  // Auto-abort: a disconnected client's open transaction must not
  // stay in flight (its writes become aborted tombstones).
  session->txn.reset();
  if (session->fd >= 0) {
    ::close(session->fd);
    session->fd = -1;
  }
  g_sessions_->Add(-1);
}

void Server::SendResponse(Session* session, uint32_t request_id,
                          const Status& s, std::string_view body) {
  std::string payload;
  payload.reserve(body.size() + 16);
  wire::PutU32(&payload, request_id);
  wire::PutU8(&payload, static_cast<uint8_t>(s.code()));
  wire::PutString(&payload, s.message());
  if (s.ok()) payload.append(body.data(), body.size());
  std::lock_guard<std::mutex> g(session->write_mu);
  if (session->fd < 0) return;
  // A failed write means the peer vanished; the reader thread will
  // observe the same and run the disconnect path.
  if (wire::WriteFrame(session->fd, payload).ok()) {
    m_bytes_out_->Add(payload.size() + wire::kFrameOverhead);
  }
}

namespace {

/// Static name of an op, for slow-op log lines (span-name lifetime
/// rules: the string must outlive any snapshot).
const char* OpName(wire::Op op) {
  switch (op) {
    case wire::Op::kPing: return "ping";
    case wire::Op::kCreateTable: return "create_table";
    case wire::Op::kListTables: return "list_tables";
    case wire::Op::kSchema: return "schema";
    case wire::Op::kBegin: return "begin";
    case wire::Op::kCommit: return "commit";
    case wire::Op::kAbort: return "abort";
    case wire::Op::kInsert: return "insert";
    case wire::Op::kRead: return "read";
    case wire::Op::kUpdate: return "update";
    case wire::Op::kDelete: return "delete";
    case wire::Op::kMultiRead: return "multiread";
    case wire::Op::kInsertBatch: return "insert_batch";
    case wire::Op::kUpdateBatch: return "update_batch";
    case wire::Op::kDeleteBatch: return "delete_batch";
    case wire::Op::kQuery: return "query";
    case wire::Op::kMetrics: return "metrics";
    case wire::Op::kTrace: return "trace";
    case wire::Op::kHealth: return "health";
  }
  return "unknown";
}

}  // namespace

void Server::HandleRequest(Session* session, const Request& req) {
  wire::Reader in(req.payload);
  uint32_t request_id = 0;
  uint8_t op = 0;
  in.U32(&request_id);
  in.U8(&op);  // both validated at admission
  if ((op & wire::kTracedOpFlag) != 0) {
    op &= static_cast<uint8_t>(~wire::kTracedOpFlag);
    uint64_t skip_trace_id = 0;
    in.U64(&skip_trace_id);  // validated and captured at admission
  }

  std::string body;
  Status s;
  {
    SpanScope span("execute");
    s = Execute(session, static_cast<wire::Op>(op), &in, &body);
  }
  if (s.IsInvalidArgument()) m_errors_->Increment();
  {
    SpanScope span("reply");
    SendResponse(session, request_id, s, body);
  }

  if (kTraceEnabled && req.trace_id != 0) {
    // Close the root span (frame arrival -> response written), then
    // dump the assembled timeline if the request blew the slow-op
    // threshold. Root first, so the dump includes it.
    uint64_t total_ns = NowNanos() - req.t0_ns;
    RecordSpan(req.trace_id, "request", req.t0_ns, total_ns);
    SlowOpLog* slow = db_->slow_op_log();
    if (slow != nullptr && total_ns >= slow->threshold_ns()) {
      slow->Dump(req.trace_id, OpName(static_cast<wire::Op>(op)), request_id,
                 total_ns,
                 FlightRecorder::Instance().SnapshotTrace(req.trace_id));
    }
  }
}

namespace {

/// Run `fn` inside the session's open transaction if it has one,
/// else inside a fresh auto-committed one (the CLI's one-shot mode).
template <typename Fn>
Status WithTxn(Database* db, std::optional<Txn>* open, Fn&& fn) {
  if (open->has_value()) return fn(**open);
  Txn txn = db->Begin();
  Status s = fn(txn);
  if (!s.ok()) {
    txn.Abort();
    return s;
  }
  return txn.Commit();
}

}  // namespace

Status Server::Execute(Session* session, wire::Op op, wire::Reader* in,
                       std::string* resp) {
  switch (op) {
    case wire::Op::kPing:
      return Status::OK();

    case wire::Op::kCreateTable: {
      std::string name;
      uint32_t ncols = 0;
      if (!in->String(&name) || !in->U32(&ncols) || ncols == 0 ||
          ncols > 56) {
        return Status::InvalidArgument("bad CreateTable request");
      }
      std::vector<std::string> cols(ncols);
      for (auto& c : cols) {
        if (!in->String(&c)) {
          return Status::InvalidArgument("bad CreateTable request");
        }
      }
      return db_->CreateTable(name, Schema(std::move(cols)), TableConfig{});
    }

    case wire::Op::kListTables: {
      std::vector<std::string> names = db_->TableNames();
      wire::PutU32(resp, static_cast<uint32_t>(names.size()));
      for (const auto& n : names) wire::PutString(resp, n);
      return Status::OK();
    }

    case wire::Op::kSchema: {
      std::string name;
      if (!in->String(&name)) return Status::InvalidArgument("bad request");
      Table* table = db_->GetTable(name);
      if (table == nullptr) return Status::NotFound("no such table: " + name);
      const Schema& schema = table->schema();
      wire::PutU32(resp, schema.num_columns());
      for (ColumnId c = 0; c < schema.num_columns(); ++c) {
        wire::PutString(resp, schema.name(c));
      }
      return Status::OK();
    }

    case wire::Op::kBegin: {
      uint8_t iso = 0;
      if (!in->U8(&iso) || iso > 2) {
        return Status::InvalidArgument("bad isolation level");
      }
      if (session->txn.has_value()) {
        return Status::InvalidArgument("transaction already open");
      }
      session->txn.emplace(db_->Begin(static_cast<IsolationLevel>(iso)));
      return Status::OK();
    }

    case wire::Op::kCommit: {
      if (!session->txn.has_value()) {
        return Status::InvalidArgument("no open transaction");
      }
      Status s = session->txn->Commit();
      session->txn.reset();
      return s;
    }

    case wire::Op::kAbort: {
      if (!session->txn.has_value()) {
        return Status::InvalidArgument("no open transaction");
      }
      session->txn->Abort();
      session->txn.reset();
      return Status::OK();
    }

    case wire::Op::kInsert: {
      std::string name;
      std::vector<Value> row;
      if (!in->String(&name) || !in->Values(&row)) {
        return Status::InvalidArgument("bad Insert request");
      }
      Table* table = db_->GetTable(name);
      if (table == nullptr) return Status::NotFound("no such table: " + name);
      return WithTxn(db_, &session->txn,
                     [&](Txn& txn) { return table->Insert(txn, row); });
    }

    case wire::Op::kRead: {
      std::string name;
      uint64_t key = 0, mask = 0;
      if (!in->String(&name) || !in->U64(&key) || !in->U64(&mask)) {
        return Status::InvalidArgument("bad Read request");
      }
      Table* table = db_->GetTable(name);
      if (table == nullptr) return Status::NotFound("no such table: " + name);
      std::vector<Value> row;
      Status s = WithTxn(db_, &session->txn, [&](Txn& txn) {
        return table->Read(txn, key, mask, &row);
      });
      if (s.ok()) wire::PutValues(resp, row);
      return s;
    }

    case wire::Op::kUpdate: {
      std::string name;
      uint64_t key = 0, mask = 0;
      std::vector<Value> row;
      if (!in->String(&name) || !in->U64(&key) || !in->U64(&mask) ||
          !in->Values(&row)) {
        return Status::InvalidArgument("bad Update request");
      }
      Table* table = db_->GetTable(name);
      if (table == nullptr) return Status::NotFound("no such table: " + name);
      return WithTxn(db_, &session->txn, [&](Txn& txn) {
        return table->Update(txn, key, mask, row);
      });
    }

    case wire::Op::kDelete: {
      std::string name;
      uint64_t key = 0;
      if (!in->String(&name) || !in->U64(&key)) {
        return Status::InvalidArgument("bad Delete request");
      }
      Table* table = db_->GetTable(name);
      if (table == nullptr) return Status::NotFound("no such table: " + name);
      return WithTxn(db_, &session->txn,
                     [&](Txn& txn) { return table->Delete(txn, key); });
    }

    case wire::Op::kMultiRead: {
      std::string name;
      uint64_t mask = 0;
      std::vector<Value> keys;
      if (!in->String(&name) || !in->U64(&mask) || !in->Values(&keys)) {
        return Status::InvalidArgument("bad MultiRead request");
      }
      Table* table = db_->GetTable(name);
      if (table == nullptr) return Status::NotFound("no such table: " + name);
      std::vector<std::vector<Value>> rows;
      std::vector<Status> statuses;
      Status s = WithTxn(db_, &session->txn, [&](Txn& txn) {
        Status rs = table->MultiRead(txn, keys, mask, &rows, &statuses);
        // Per-key misses travel as per-key codes; only a call-level
        // failure (inactive txn) aborts the whole response.
        return rows.size() == keys.size() ? Status::OK() : rs;
      });
      if (!s.ok()) return s;
      wire::PutRows(resp, rows);
      wire::PutU32(resp, static_cast<uint32_t>(statuses.size()));
      for (const Status& ks : statuses) {
        wire::PutU8(resp, static_cast<uint8_t>(ks.code()));
      }
      return Status::OK();
    }

    case wire::Op::kInsertBatch: {
      std::string name;
      std::vector<std::vector<Value>> rows;
      if (!in->String(&name) || !in->Rows(&rows)) {
        return Status::InvalidArgument("bad InsertBatch request");
      }
      Table* table = db_->GetTable(name);
      if (table == nullptr) return Status::NotFound("no such table: " + name);
      return WithTxn(db_, &session->txn,
                     [&](Txn& txn) { return table->InsertBatch(txn, rows); });
    }

    case wire::Op::kUpdateBatch: {
      std::string name;
      uint64_t mask = 0;
      std::vector<Value> keys;
      std::vector<std::vector<Value>> rows;
      if (!in->String(&name) || !in->U64(&mask) || !in->Values(&keys) ||
          !in->Rows(&rows) || rows.size() != keys.size()) {
        return Status::InvalidArgument("bad UpdateBatch request");
      }
      Table* table = db_->GetTable(name);
      if (table == nullptr) return Status::NotFound("no such table: " + name);
      return WithTxn(db_, &session->txn, [&](Txn& txn) {
        return table->UpdateBatch(txn, keys, mask, rows);
      });
    }

    case wire::Op::kDeleteBatch: {
      std::string name;
      std::vector<Value> keys;
      if (!in->String(&name) || !in->Values(&keys)) {
        return Status::InvalidArgument("bad DeleteBatch request");
      }
      Table* table = db_->GetTable(name);
      if (table == nullptr) return Status::NotFound("no such table: " + name);
      return WithTxn(db_, &session->txn,
                     [&](Txn& txn) { return table->DeleteBatch(txn, keys); });
    }

    case wire::Op::kQuery:
      return ExecuteQuery(in, resp);

    case wire::Op::kMetrics:
      wire::PutString(resp, db_->Metrics().RenderPrometheus());
      return Status::OK();

    case wire::Op::kTrace:
      wire::PutString(resp, db_->DumpTrace());
      return Status::OK();

    case wire::Op::kHealth: {
      HealthReport report = db_->Health();
      wire::PutU32(resp, static_cast<uint32_t>(report.actors.size()));
      for (const ActorHealth& a : report.actors) {
        wire::PutString(resp, a.name);
        wire::PutU8(resp, static_cast<uint8_t>(a.verdict));
        wire::PutU8(resp, a.busy ? 1 : 0);
        wire::PutU64(resp, a.since_beat_ms);
        wire::PutU64(resp, a.beats);
        wire::PutU64(resp, a.slow_ms);
        wire::PutU64(resp, a.stall_ms);
      }
      wire::PutU32(resp, static_cast<uint32_t>(report.recent_events.size()));
      for (const Event& e : report.recent_events) {
        wire::PutU64(resp, e.ts_ms);
        wire::PutU8(resp, static_cast<uint8_t>(e.severity));
        wire::PutString(resp, e.actor);
        wire::PutString(resp, e.kind);
        wire::PutString(resp, e.fields);
      }
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown opcode");
}

Status Server::ExecuteQuery(wire::Reader* in, std::string* resp) {
  std::string name;
  uint8_t kind = 0;
  uint32_t col = 0, nfilters = 0;
  uint64_t first_row = 0, row_count = 0, as_of = 0;
  if (!in->String(&name) || !in->U8(&kind) ||
      kind > static_cast<uint8_t>(wire::QueryKind::kKeys) || !in->U32(&col) ||
      !in->U64(&first_row) || !in->U64(&row_count) || !in->U64(&as_of) ||
      !in->U32(&nfilters)) {
    return Status::InvalidArgument("bad Query request");
  }
  Table* table = db_->GetTable(name);
  if (table == nullptr) return Status::NotFound("no such table: " + name);

  Query q = table->NewQuery();
  q.Range(first_row, row_count);
  if (as_of != 0) q.AsOf(as_of);
  for (uint32_t i = 0; i < nfilters; ++i) {
    uint32_t fcol = 0;
    uint64_t fval = 0;
    if (!in->U32(&fcol) || !in->U64(&fval)) {
      return Status::InvalidArgument("bad Query filter");
    }
    q.Where(fcol, fval);
  }

  uint64_t value = 0, rows = 0;
  Status s;
  switch (static_cast<wire::QueryKind>(kind)) {
    case wire::QueryKind::kSum:
      s = q.Sum(col, &value, &rows);
      break;
    case wire::QueryKind::kCount:
      s = q.Count(&value);
      rows = value;
      break;
    case wire::QueryKind::kMin:
      s = q.Min(col, &value, &rows);
      break;
    case wire::QueryKind::kMax:
      s = q.Max(col, &value, &rows);
      break;
    case wire::QueryKind::kKeys: {
      std::vector<Value> keys;
      s = q.Keys(&keys);
      if (s.ok()) wire::PutValues(resp, keys);
      return s;
    }
  }
  if (s.ok()) {
    wire::PutU64(resp, value);
    wire::PutU64(resp, rows);
  }
  return s;
}

}  // namespace lstore
