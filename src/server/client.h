// Blocking client for the L-Store network service (src/server/).
//
// One Client = one connection = one server-side session: BEGIN opens
// the session's transaction, COMMIT/ABORT close it, and closing the
// connection (or the Client) auto-aborts whatever is still open on
// the server. Point/batch/query calls issued outside BEGIN..COMMIT
// run as server-side auto-committed one-shots.
//
// The client is intentionally synchronous — one request in flight at
// a time — so it is trivially correct to use from tests, benches, and
// the CLI. It is not thread-safe; use one Client per thread (each
// gets its own session, which is exactly the isolation the tests
// want to exercise).

#ifndef LSTORE_SERVER_CLIENT_H_
#define LSTORE_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "server/wire.h"
#include "txn/transaction.h"

namespace lstore {

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // --- session -------------------------------------------------------------

  Status Ping();
  Status Begin(IsolationLevel iso = IsolationLevel::kReadCommitted);
  Status Commit();
  Status Abort();

  // --- DDL / catalog -------------------------------------------------------

  Status CreateTable(const std::string& table,
                     const std::vector<std::string>& columns);
  Status ListTables(std::vector<std::string>* names);
  Status GetSchema(const std::string& table,
                   std::vector<std::string>* columns);

  // --- point and batch operations ------------------------------------------

  Status Insert(const std::string& table, const std::vector<Value>& row);
  Status Read(const std::string& table, Value key, ColumnMask mask,
              std::vector<Value>* row);
  Status Update(const std::string& table, Value key, ColumnMask mask,
                const std::vector<Value>& row);
  Status Delete(const std::string& table, Value key);

  /// rows->at(i) holds keys[i]'s columns (empty when missing);
  /// statuses (optional) receives each key's individual outcome.
  Status MultiRead(const std::string& table, const std::vector<Value>& keys,
                   ColumnMask mask, std::vector<std::vector<Value>>* rows,
                   std::vector<Status>* statuses = nullptr);
  Status InsertBatch(const std::string& table,
                     const std::vector<std::vector<Value>>& rows);
  Status UpdateBatch(const std::string& table, const std::vector<Value>& keys,
                     ColumnMask mask,
                     const std::vector<std::vector<Value>>& rows);
  Status DeleteBatch(const std::string& table,
                     const std::vector<Value>& keys);

  // --- queries -------------------------------------------------------------

  /// Wire form of the Query builder: row range, equality filters,
  /// time travel. (Predicate filters cannot cross the wire.)
  struct QuerySpec {
    uint64_t first_row = 0;
    uint64_t row_count = ~0ull;
    uint64_t as_of = 0;  ///< 0 = server-side Now()
    std::vector<std::pair<ColumnId, Value>> where;  ///< equality filters
  };

  Status Sum(const std::string& table, ColumnId col, const QuerySpec& spec,
             uint64_t* sum, uint64_t* visible_rows = nullptr);
  Status Count(const std::string& table, const QuerySpec& spec,
               uint64_t* count);
  Status Min(const std::string& table, ColumnId col, const QuerySpec& spec,
             Value* out, uint64_t* visible_rows = nullptr);
  Status Max(const std::string& table, ColumnId col, const QuerySpec& spec,
             Value* out, uint64_t* visible_rows = nullptr);
  Status Keys(const std::string& table, const QuerySpec& spec,
              std::vector<Value>* keys);

  // --- observability -------------------------------------------------------

  /// The server's Database::Metrics() as Prometheus exposition text.
  Status Metrics(std::string* prometheus_text);

 private:
  /// Send [id][op][body], await the matching response, surface its
  /// status, and leave the OK body in *resp_body.
  Status Call(wire::Op op, const std::string& body, std::string* resp_body);

  Status RunQuery(const std::string& table, wire::QueryKind kind,
                  ColumnId col, const QuerySpec& spec, std::string* resp);

  int fd_ = -1;
  uint32_t next_request_id_ = 1;
  uint32_t max_frame_bytes_ = wire::kDefaultMaxFrameBytes;
};

}  // namespace lstore

#endif  // LSTORE_SERVER_CLIENT_H_
