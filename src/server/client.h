// Client for the L-Store network service (src/server/): a blocking
// facade over the pipelined ClientChannel core.
//
// One Client = one connection = one server-side session: BEGIN opens
// the session's transaction, COMMIT/ABORT close it, and closing the
// connection (or the Client) auto-aborts whatever is still open on
// the server. Point/batch/query calls issued outside BEGIN..COMMIT
// run as server-side auto-committed one-shots.
//
// Two call styles share the connection:
//
//  - Blocking: every named method (Read, Insert, Sum, ...) submits
//    one request and awaits its response — trivially correct for
//    tests, the CLI, and simple tools. Each is a thin Submit+Await
//    wrapper over the channel.
//  - Pipelined: SubmitX/AwaitX pairs keep up to
//    channel().max_in_flight() requests in flight on the one
//    connection, matched by the echoed request id, so a closed-loop
//    driver is not limited to one round trip per op. Await order is
//    free — responses for other ids are parked until their Await.
//
// The two styles compose: a blocking call issued while pipelined
// requests are outstanding simply awaits its own id and parks theirs.
//
// Not thread-safe; use one Client per thread (each gets its own
// session, which is exactly the isolation the tests want).

#ifndef LSTORE_SERVER_CLIENT_H_
#define LSTORE_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "obs/health.h"
#include "server/client_channel.h"
#include "server/wire.h"
#include "txn/transaction.h"

namespace lstore {

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect(const std::string& host, uint16_t port) {
    return channel_.Connect(host, port);
  }
  void Close() { channel_.Close(); }
  bool connected() const { return channel_.connected(); }

  /// The pipelined core: submit/await generic ops, tune the in-flight
  /// cap, inspect the pipeline.
  ClientChannel& channel() { return channel_; }

  // --- session -------------------------------------------------------------

  Status Ping();
  Status Begin(IsolationLevel iso = IsolationLevel::kReadCommitted);
  Status Commit();
  Status Abort();

  // --- DDL / catalog -------------------------------------------------------

  Status CreateTable(const std::string& table,
                     const std::vector<std::string>& columns);
  Status ListTables(std::vector<std::string>* names);
  Status GetSchema(const std::string& table,
                   std::vector<std::string>* columns);

  // --- point and batch operations ------------------------------------------

  Status Insert(const std::string& table, const std::vector<Value>& row);
  Status Read(const std::string& table, Value key, ColumnMask mask,
              std::vector<Value>* row);
  Status Update(const std::string& table, Value key, ColumnMask mask,
                const std::vector<Value>& row);
  Status Delete(const std::string& table, Value key);

  /// rows->at(i) holds keys[i]'s columns (empty when missing);
  /// statuses (optional) receives each key's individual outcome.
  Status MultiRead(const std::string& table, const std::vector<Value>& keys,
                   ColumnMask mask, std::vector<std::vector<Value>>* rows,
                   std::vector<Status>* statuses = nullptr);
  Status InsertBatch(const std::string& table,
                     const std::vector<std::vector<Value>>& rows);
  Status UpdateBatch(const std::string& table, const std::vector<Value>& keys,
                     ColumnMask mask,
                     const std::vector<std::vector<Value>>& rows);
  Status DeleteBatch(const std::string& table,
                     const std::vector<Value>& keys);

  // --- pipelined point operations ------------------------------------------
  // Submit sends without waiting; the matching Await surfaces the
  // operation's status (and decodes the body where there is one).
  // Ack-only submissions (insert/update/delete) are awaited with the
  // generic Await(id).

  Status SubmitRead(const std::string& table, Value key, ColumnMask mask,
                    RequestId* id);
  Status AwaitRead(RequestId id, std::vector<Value>* row);

  Status SubmitInsert(const std::string& table, const std::vector<Value>& row,
                      RequestId* id);
  Status SubmitUpdate(const std::string& table, Value key, ColumnMask mask,
                      const std::vector<Value>& row, RequestId* id);
  Status SubmitDelete(const std::string& table, Value key, RequestId* id);

  Status SubmitMultiRead(const std::string& table,
                         const std::vector<Value>& keys, ColumnMask mask,
                         RequestId* id);
  Status AwaitMultiRead(RequestId id, size_t num_keys,
                        std::vector<std::vector<Value>>* rows,
                        std::vector<Status>* statuses = nullptr);

  /// Await an ack-only submission (or discard a body you don't need).
  Status Await(RequestId id) { return channel_.Await(id, nullptr); }

  // --- queries -------------------------------------------------------------

  /// Wire form of the Query builder: row range, equality filters,
  /// time travel. (Predicate filters cannot cross the wire.)
  struct QuerySpec {
    uint64_t first_row = 0;
    uint64_t row_count = ~0ull;
    uint64_t as_of = 0;  ///< 0 = server-side Now()
    std::vector<std::pair<ColumnId, Value>> where;  ///< equality filters
  };

  Status Sum(const std::string& table, ColumnId col, const QuerySpec& spec,
             uint64_t* sum, uint64_t* visible_rows = nullptr);
  Status Count(const std::string& table, const QuerySpec& spec,
               uint64_t* count);
  Status Min(const std::string& table, ColumnId col, const QuerySpec& spec,
             Value* out, uint64_t* visible_rows = nullptr);
  Status Max(const std::string& table, ColumnId col, const QuerySpec& spec,
             Value* out, uint64_t* visible_rows = nullptr);
  Status Keys(const std::string& table, const QuerySpec& spec,
              std::vector<Value>* keys);

  /// Pipelined aggregate (sum/count/min/max share the wire shape).
  Status SubmitQuery(const std::string& table, wire::QueryKind kind,
                     ColumnId col, const QuerySpec& spec, RequestId* id);
  Status AwaitAggregate(RequestId id, uint64_t* value,
                        uint64_t* visible_rows = nullptr);

  // --- observability -------------------------------------------------------

  /// The server's Database::Metrics() as Prometheus exposition text.
  Status Metrics(std::string* prometheus_text);

  /// The server's flight recorder as Chrome trace-event JSON
  /// (Database::DumpTrace); empty event list when the server was
  /// built with LSTORE_TRACING=OFF.
  Status Trace(std::string* trace_json);

  /// The server's Database::Health(): per-actor watchdog verdicts plus
  /// the most recent structured events.
  Status Health(HealthReport* report);

  /// Expose the pipelined core's one-shot trace stamp (see
  /// ClientChannel::set_next_trace_id): the next request this client
  /// sends carries the id.
  void set_next_trace_id(uint64_t trace_id);

 private:
  /// Submit [id][op][body], await the matching response, and leave
  /// the OK body in *resp_body — the blocking facade's one primitive.
  Status Call(wire::Op op, const std::string& body, std::string* resp_body);

  Status RunQuery(const std::string& table, wire::QueryKind kind,
                  ColumnId col, const QuerySpec& spec, std::string* resp);

  ClientChannel channel_;
};

}  // namespace lstore

#endif  // LSTORE_SERVER_CLIENT_H_
