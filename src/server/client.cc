#include "server/client.h"

#include <utility>

namespace lstore {

namespace {

// --- request-body encoders (shared by blocking and pipelined paths) --------

std::string EncodeRead(const std::string& table, Value key, ColumnMask mask) {
  std::string body;
  wire::PutString(&body, table);
  wire::PutU64(&body, key);
  wire::PutU64(&body, mask);
  return body;
}

std::string EncodeInsert(const std::string& table,
                         const std::vector<Value>& row) {
  std::string body;
  wire::PutString(&body, table);
  wire::PutValues(&body, row);
  return body;
}

std::string EncodeUpdate(const std::string& table, Value key, ColumnMask mask,
                         const std::vector<Value>& row) {
  std::string body;
  wire::PutString(&body, table);
  wire::PutU64(&body, key);
  wire::PutU64(&body, mask);
  wire::PutValues(&body, row);
  return body;
}

std::string EncodeDelete(const std::string& table, Value key) {
  std::string body;
  wire::PutString(&body, table);
  wire::PutU64(&body, key);
  return body;
}

std::string EncodeMultiRead(const std::string& table,
                            const std::vector<Value>& keys, ColumnMask mask) {
  std::string body;
  wire::PutString(&body, table);
  wire::PutU64(&body, mask);
  wire::PutValues(&body, keys);
  return body;
}

// --- response-body decoders ------------------------------------------------

Status DecodeRead(const std::string& resp, std::vector<Value>* row) {
  wire::Reader in(resp);
  if (!in.Values(row)) return Status::Corruption("malformed Read response");
  return Status::OK();
}

Status DecodeMultiRead(const std::string& resp, size_t num_keys,
                       std::vector<std::vector<Value>>* rows,
                       std::vector<Status>* statuses) {
  wire::Reader in(resp);
  uint32_t ncodes = 0;
  if (!in.Rows(rows) || !in.U32(&ncodes) || ncodes != num_keys) {
    return Status::Corruption("malformed MultiRead response");
  }
  if (statuses != nullptr) statuses->clear();
  for (uint32_t i = 0; i < ncodes; ++i) {
    uint8_t code = 0;
    if (!in.U8(&code)) {
      return Status::Corruption("malformed MultiRead response");
    }
    if (statuses != nullptr) statuses->push_back(StatusFromWire(code, ""));
  }
  return Status::OK();
}

Status DecodeAggregate(const std::string& resp, uint64_t* value,
                       uint64_t* visible_rows) {
  wire::Reader in(resp);
  uint64_t v = 0, rows = 0;
  if (!in.U64(&v) || !in.U64(&rows)) {
    return Status::Corruption("malformed Query response");
  }
  if (value != nullptr) *value = v;
  if (visible_rows != nullptr) *visible_rows = rows;
  return Status::OK();
}

}  // namespace

Status Client::Call(wire::Op op, const std::string& body,
                    std::string* resp_body) {
  RequestId id = 0;
  LSTORE_RETURN_IF_ERROR(channel_.Submit(op, body, &id));
  return channel_.Await(id, resp_body);
}

Status Client::Ping() { return Call(wire::Op::kPing, {}, nullptr); }

Status Client::Begin(IsolationLevel iso) {
  std::string body;
  wire::PutU8(&body, static_cast<uint8_t>(iso));
  return Call(wire::Op::kBegin, body, nullptr);
}

Status Client::Commit() { return Call(wire::Op::kCommit, {}, nullptr); }

Status Client::Abort() { return Call(wire::Op::kAbort, {}, nullptr); }

Status Client::CreateTable(const std::string& table,
                           const std::vector<std::string>& columns) {
  std::string body;
  wire::PutString(&body, table);
  wire::PutU32(&body, static_cast<uint32_t>(columns.size()));
  for (const auto& c : columns) wire::PutString(&body, c);
  return Call(wire::Op::kCreateTable, body, nullptr);
}

Status Client::ListTables(std::vector<std::string>* names) {
  std::string resp;
  LSTORE_RETURN_IF_ERROR(Call(wire::Op::kListTables, {}, &resp));
  wire::Reader in(resp);
  uint32_t n = 0;
  if (!in.U32(&n)) return Status::Corruption("malformed ListTables response");
  names->clear();
  for (uint32_t i = 0; i < n; ++i) {
    std::string s;
    if (!in.String(&s)) {
      return Status::Corruption("malformed ListTables response");
    }
    names->push_back(std::move(s));
  }
  return Status::OK();
}

Status Client::GetSchema(const std::string& table,
                         std::vector<std::string>* columns) {
  std::string body, resp;
  wire::PutString(&body, table);
  LSTORE_RETURN_IF_ERROR(Call(wire::Op::kSchema, body, &resp));
  wire::Reader in(resp);
  uint32_t n = 0;
  if (!in.U32(&n)) return Status::Corruption("malformed Schema response");
  columns->clear();
  for (uint32_t i = 0; i < n; ++i) {
    std::string s;
    if (!in.String(&s)) return Status::Corruption("malformed Schema response");
    columns->push_back(std::move(s));
  }
  return Status::OK();
}

// --- blocking point/batch ops: thin Submit+Await wrappers ------------------

Status Client::Insert(const std::string& table,
                      const std::vector<Value>& row) {
  return Call(wire::Op::kInsert, EncodeInsert(table, row), nullptr);
}

Status Client::Read(const std::string& table, Value key, ColumnMask mask,
                    std::vector<Value>* row) {
  std::string resp;
  LSTORE_RETURN_IF_ERROR(
      Call(wire::Op::kRead, EncodeRead(table, key, mask), &resp));
  return DecodeRead(resp, row);
}

Status Client::Update(const std::string& table, Value key, ColumnMask mask,
                      const std::vector<Value>& row) {
  return Call(wire::Op::kUpdate, EncodeUpdate(table, key, mask, row), nullptr);
}

Status Client::Delete(const std::string& table, Value key) {
  return Call(wire::Op::kDelete, EncodeDelete(table, key), nullptr);
}

Status Client::MultiRead(const std::string& table,
                         const std::vector<Value>& keys, ColumnMask mask,
                         std::vector<std::vector<Value>>* rows,
                         std::vector<Status>* statuses) {
  std::string resp;
  LSTORE_RETURN_IF_ERROR(
      Call(wire::Op::kMultiRead, EncodeMultiRead(table, keys, mask), &resp));
  return DecodeMultiRead(resp, keys.size(), rows, statuses);
}

Status Client::InsertBatch(const std::string& table,
                           const std::vector<std::vector<Value>>& rows) {
  std::string body;
  wire::PutString(&body, table);
  wire::PutRows(&body, rows);
  return Call(wire::Op::kInsertBatch, body, nullptr);
}

Status Client::UpdateBatch(const std::string& table,
                           const std::vector<Value>& keys, ColumnMask mask,
                           const std::vector<std::vector<Value>>& rows) {
  std::string body;
  wire::PutString(&body, table);
  wire::PutU64(&body, mask);
  wire::PutValues(&body, keys);
  wire::PutRows(&body, rows);
  return Call(wire::Op::kUpdateBatch, body, nullptr);
}

Status Client::DeleteBatch(const std::string& table,
                           const std::vector<Value>& keys) {
  std::string body;
  wire::PutString(&body, table);
  wire::PutValues(&body, keys);
  return Call(wire::Op::kDeleteBatch, body, nullptr);
}

// --- pipelined point ops ---------------------------------------------------

Status Client::SubmitRead(const std::string& table, Value key,
                          ColumnMask mask, RequestId* id) {
  return channel_.Submit(wire::Op::kRead, EncodeRead(table, key, mask), id);
}

Status Client::AwaitRead(RequestId id, std::vector<Value>* row) {
  std::string resp;
  LSTORE_RETURN_IF_ERROR(channel_.Await(id, &resp));
  // nullptr row = await the status, discard the body.
  std::vector<Value> scratch;
  return DecodeRead(resp, row != nullptr ? row : &scratch);
}

Status Client::SubmitInsert(const std::string& table,
                            const std::vector<Value>& row, RequestId* id) {
  return channel_.Submit(wire::Op::kInsert, EncodeInsert(table, row), id);
}

Status Client::SubmitUpdate(const std::string& table, Value key,
                            ColumnMask mask, const std::vector<Value>& row,
                            RequestId* id) {
  return channel_.Submit(wire::Op::kUpdate,
                         EncodeUpdate(table, key, mask, row), id);
}

Status Client::SubmitDelete(const std::string& table, Value key,
                            RequestId* id) {
  return channel_.Submit(wire::Op::kDelete, EncodeDelete(table, key), id);
}

Status Client::SubmitMultiRead(const std::string& table,
                               const std::vector<Value>& keys,
                               ColumnMask mask, RequestId* id) {
  return channel_.Submit(wire::Op::kMultiRead,
                         EncodeMultiRead(table, keys, mask), id);
}

Status Client::AwaitMultiRead(RequestId id, size_t num_keys,
                              std::vector<std::vector<Value>>* rows,
                              std::vector<Status>* statuses) {
  std::string resp;
  LSTORE_RETURN_IF_ERROR(channel_.Await(id, &resp));
  return DecodeMultiRead(resp, num_keys, rows, statuses);
}

// --- queries ---------------------------------------------------------------

Status Client::SubmitQuery(const std::string& table, wire::QueryKind kind,
                           ColumnId col, const QuerySpec& spec,
                           RequestId* id) {
  std::string body;
  wire::PutString(&body, table);
  wire::PutU8(&body, static_cast<uint8_t>(kind));
  wire::PutU32(&body, col);
  wire::PutU64(&body, spec.first_row);
  wire::PutU64(&body, spec.row_count);
  wire::PutU64(&body, spec.as_of);
  wire::PutU32(&body, static_cast<uint32_t>(spec.where.size()));
  for (const auto& [fcol, fval] : spec.where) {
    wire::PutU32(&body, fcol);
    wire::PutU64(&body, fval);
  }
  return channel_.Submit(wire::Op::kQuery, body, id);
}

Status Client::AwaitAggregate(RequestId id, uint64_t* value,
                              uint64_t* visible_rows) {
  std::string resp;
  LSTORE_RETURN_IF_ERROR(channel_.Await(id, &resp));
  return DecodeAggregate(resp, value, visible_rows);
}

Status Client::RunQuery(const std::string& table, wire::QueryKind kind,
                        ColumnId col, const QuerySpec& spec,
                        std::string* resp) {
  RequestId id = 0;
  LSTORE_RETURN_IF_ERROR(SubmitQuery(table, kind, col, spec, &id));
  return channel_.Await(id, resp);
}

Status Client::Sum(const std::string& table, ColumnId col,
                   const QuerySpec& spec, uint64_t* sum,
                   uint64_t* visible_rows) {
  std::string resp;
  LSTORE_RETURN_IF_ERROR(
      RunQuery(table, wire::QueryKind::kSum, col, spec, &resp));
  return DecodeAggregate(resp, sum, visible_rows);
}

Status Client::Count(const std::string& table, const QuerySpec& spec,
                     uint64_t* count) {
  std::string resp;
  LSTORE_RETURN_IF_ERROR(
      RunQuery(table, wire::QueryKind::kCount, 0, spec, &resp));
  return DecodeAggregate(resp, count, nullptr);
}

Status Client::Min(const std::string& table, ColumnId col,
                   const QuerySpec& spec, Value* out,
                   uint64_t* visible_rows) {
  std::string resp;
  LSTORE_RETURN_IF_ERROR(
      RunQuery(table, wire::QueryKind::kMin, col, spec, &resp));
  return DecodeAggregate(resp, out, visible_rows);
}

Status Client::Max(const std::string& table, ColumnId col,
                   const QuerySpec& spec, Value* out,
                   uint64_t* visible_rows) {
  std::string resp;
  LSTORE_RETURN_IF_ERROR(
      RunQuery(table, wire::QueryKind::kMax, col, spec, &resp));
  return DecodeAggregate(resp, out, visible_rows);
}

Status Client::Keys(const std::string& table, const QuerySpec& spec,
                    std::vector<Value>* keys) {
  std::string resp;
  LSTORE_RETURN_IF_ERROR(
      RunQuery(table, wire::QueryKind::kKeys, 0, spec, &resp));
  wire::Reader in(resp);
  if (!in.Values(keys)) return Status::Corruption("malformed Keys response");
  return Status::OK();
}

Status Client::Metrics(std::string* prometheus_text) {
  std::string resp;
  LSTORE_RETURN_IF_ERROR(Call(wire::Op::kMetrics, {}, &resp));
  wire::Reader in(resp);
  if (!in.String(prometheus_text)) {
    return Status::Corruption("malformed Metrics response");
  }
  return Status::OK();
}

Status Client::Trace(std::string* trace_json) {
  std::string resp;
  LSTORE_RETURN_IF_ERROR(Call(wire::Op::kTrace, {}, &resp));
  wire::Reader in(resp);
  if (!in.String(trace_json)) {
    return Status::Corruption("malformed Trace response");
  }
  return Status::OK();
}

Status Client::Health(HealthReport* report) {
  std::string resp;
  LSTORE_RETURN_IF_ERROR(Call(wire::Op::kHealth, {}, &resp));
  wire::Reader in(resp);
  uint32_t actor_count = 0;
  if (!in.U32(&actor_count)) {
    return Status::Corruption("malformed Health response");
  }
  report->actors.clear();
  report->recent_events.clear();
  report->healthy = report->slow = report->stalled = 0;
  for (uint32_t i = 0; i < actor_count; ++i) {
    ActorHealth a;
    uint8_t verdict = 0, busy = 0;
    if (!in.String(&a.name) || !in.U8(&verdict) || !in.U8(&busy) ||
        !in.U64(&a.since_beat_ms) || !in.U64(&a.beats) || !in.U64(&a.slow_ms) ||
        !in.U64(&a.stall_ms) ||
        verdict > static_cast<uint8_t>(HealthVerdict::kStalled)) {
      return Status::Corruption("malformed Health response");
    }
    a.verdict = static_cast<HealthVerdict>(verdict);
    a.busy = busy != 0;
    switch (a.verdict) {
      case HealthVerdict::kHealthy: ++report->healthy; break;
      case HealthVerdict::kSlow: ++report->slow; break;
      case HealthVerdict::kStalled: ++report->stalled; break;
    }
    report->actors.push_back(std::move(a));
  }
  uint32_t event_count = 0;
  if (!in.U32(&event_count)) {
    return Status::Corruption("malformed Health response");
  }
  for (uint32_t i = 0; i < event_count; ++i) {
    Event e;
    uint8_t severity = 0;
    if (!in.U64(&e.ts_ms) || !in.U8(&severity) || !in.String(&e.actor) ||
        !in.String(&e.kind) || !in.String(&e.fields) ||
        severity > static_cast<uint8_t>(EventSeverity::kError)) {
      return Status::Corruption("malformed Health response");
    }
    e.severity = static_cast<EventSeverity>(severity);
    report->recent_events.push_back(std::move(e));
  }
  if (!in.done()) return Status::Corruption("malformed Health response");
  return Status::OK();
}

void Client::set_next_trace_id(uint64_t trace_id) {
  channel_.set_next_trace_id(trace_id);
}

}  // namespace lstore
