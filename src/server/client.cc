#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace lstore {

namespace {

/// Rebuild a Status from its wire code + message.
Status MakeStatus(uint8_t code, const std::string& msg) {
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kOk: return Status::OK();
    case Status::Code::kNotFound: return Status::NotFound(msg);
    case Status::Code::kAlreadyExists: return Status::AlreadyExists(msg);
    case Status::Code::kAborted: return Status::Aborted(msg);
    case Status::Code::kInvalidArgument: return Status::InvalidArgument(msg);
    case Status::Code::kIOError: return Status::IOError(msg);
    case Status::Code::kCorruption: return Status::Corruption(msg);
    case Status::Code::kNotSupported: return Status::NotSupported(msg);
    case Status::Code::kBusy: return Status::Busy(msg);
  }
  return Status::Corruption("unknown status code");
}

}  // namespace

Status Client::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::InvalidArgument("already connected");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::IOError(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::Call(wire::Op op, const std::string& body,
                    std::string* resp_body) {
  if (fd_ < 0) return Status::IOError("not connected");
  uint32_t id = next_request_id_++;
  std::string payload;
  payload.reserve(body.size() + 5);
  wire::PutU32(&payload, id);
  wire::PutU8(&payload, static_cast<uint8_t>(op));
  payload.append(body);
  Status s = wire::WriteFrame(fd_, payload);
  if (!s.ok()) {
    Close();
    return s;
  }

  std::string resp;
  s = wire::ReadFrame(fd_, max_frame_bytes_, &resp);
  if (!s.ok()) {
    Close();
    return s.IsNotFound() ? Status::IOError("server closed the connection")
                          : s;
  }
  wire::Reader in(resp);
  uint32_t resp_id = 0;
  uint8_t code = 0;
  std::string message;
  if (!in.U32(&resp_id) || !in.U8(&code) || !in.String(&message) ||
      code > static_cast<uint8_t>(Status::Code::kBusy)) {
    Close();
    return Status::Corruption("malformed response");
  }
  if (resp_id != id) {
    // This client never pipelines, so any id mismatch means the
    // stream is out of step — unrecoverable for a blocking caller.
    Close();
    return Status::Corruption("response id mismatch");
  }
  if (code != 0) return MakeStatus(code, message);
  if (resp_body != nullptr) *resp_body = std::string(in.rest());
  return Status::OK();
}

Status Client::Ping() { return Call(wire::Op::kPing, {}, nullptr); }

Status Client::Begin(IsolationLevel iso) {
  std::string body;
  wire::PutU8(&body, static_cast<uint8_t>(iso));
  return Call(wire::Op::kBegin, body, nullptr);
}

Status Client::Commit() { return Call(wire::Op::kCommit, {}, nullptr); }

Status Client::Abort() { return Call(wire::Op::kAbort, {}, nullptr); }

Status Client::CreateTable(const std::string& table,
                           const std::vector<std::string>& columns) {
  std::string body;
  wire::PutString(&body, table);
  wire::PutU32(&body, static_cast<uint32_t>(columns.size()));
  for (const auto& c : columns) wire::PutString(&body, c);
  return Call(wire::Op::kCreateTable, body, nullptr);
}

Status Client::ListTables(std::vector<std::string>* names) {
  std::string resp;
  LSTORE_RETURN_IF_ERROR(Call(wire::Op::kListTables, {}, &resp));
  wire::Reader in(resp);
  uint32_t n = 0;
  if (!in.U32(&n)) return Status::Corruption("malformed ListTables response");
  names->clear();
  for (uint32_t i = 0; i < n; ++i) {
    std::string s;
    if (!in.String(&s)) {
      return Status::Corruption("malformed ListTables response");
    }
    names->push_back(std::move(s));
  }
  return Status::OK();
}

Status Client::GetSchema(const std::string& table,
                         std::vector<std::string>* columns) {
  std::string body, resp;
  wire::PutString(&body, table);
  LSTORE_RETURN_IF_ERROR(Call(wire::Op::kSchema, body, &resp));
  wire::Reader in(resp);
  uint32_t n = 0;
  if (!in.U32(&n)) return Status::Corruption("malformed Schema response");
  columns->clear();
  for (uint32_t i = 0; i < n; ++i) {
    std::string s;
    if (!in.String(&s)) return Status::Corruption("malformed Schema response");
    columns->push_back(std::move(s));
  }
  return Status::OK();
}

Status Client::Insert(const std::string& table,
                      const std::vector<Value>& row) {
  std::string body;
  wire::PutString(&body, table);
  wire::PutValues(&body, row);
  return Call(wire::Op::kInsert, body, nullptr);
}

Status Client::Read(const std::string& table, Value key, ColumnMask mask,
                    std::vector<Value>* row) {
  std::string body, resp;
  wire::PutString(&body, table);
  wire::PutU64(&body, key);
  wire::PutU64(&body, mask);
  LSTORE_RETURN_IF_ERROR(Call(wire::Op::kRead, body, &resp));
  wire::Reader in(resp);
  if (!in.Values(row)) return Status::Corruption("malformed Read response");
  return Status::OK();
}

Status Client::Update(const std::string& table, Value key, ColumnMask mask,
                      const std::vector<Value>& row) {
  std::string body;
  wire::PutString(&body, table);
  wire::PutU64(&body, key);
  wire::PutU64(&body, mask);
  wire::PutValues(&body, row);
  return Call(wire::Op::kUpdate, body, nullptr);
}

Status Client::Delete(const std::string& table, Value key) {
  std::string body;
  wire::PutString(&body, table);
  wire::PutU64(&body, key);
  return Call(wire::Op::kDelete, body, nullptr);
}

Status Client::MultiRead(const std::string& table,
                         const std::vector<Value>& keys, ColumnMask mask,
                         std::vector<std::vector<Value>>* rows,
                         std::vector<Status>* statuses) {
  std::string body, resp;
  wire::PutString(&body, table);
  wire::PutU64(&body, mask);
  wire::PutValues(&body, keys);
  LSTORE_RETURN_IF_ERROR(Call(wire::Op::kMultiRead, body, &resp));
  wire::Reader in(resp);
  uint32_t ncodes = 0;
  if (!in.Rows(rows) || !in.U32(&ncodes) || ncodes != keys.size()) {
    return Status::Corruption("malformed MultiRead response");
  }
  if (statuses != nullptr) statuses->clear();
  for (uint32_t i = 0; i < ncodes; ++i) {
    uint8_t code = 0;
    if (!in.U8(&code)) {
      return Status::Corruption("malformed MultiRead response");
    }
    if (statuses != nullptr) statuses->push_back(MakeStatus(code, ""));
  }
  return Status::OK();
}

Status Client::InsertBatch(const std::string& table,
                           const std::vector<std::vector<Value>>& rows) {
  std::string body;
  wire::PutString(&body, table);
  wire::PutRows(&body, rows);
  return Call(wire::Op::kInsertBatch, body, nullptr);
}

Status Client::UpdateBatch(const std::string& table,
                           const std::vector<Value>& keys, ColumnMask mask,
                           const std::vector<std::vector<Value>>& rows) {
  std::string body;
  wire::PutString(&body, table);
  wire::PutU64(&body, mask);
  wire::PutValues(&body, keys);
  wire::PutRows(&body, rows);
  return Call(wire::Op::kUpdateBatch, body, nullptr);
}

Status Client::DeleteBatch(const std::string& table,
                           const std::vector<Value>& keys) {
  std::string body;
  wire::PutString(&body, table);
  wire::PutValues(&body, keys);
  return Call(wire::Op::kDeleteBatch, body, nullptr);
}

Status Client::RunQuery(const std::string& table, wire::QueryKind kind,
                        ColumnId col, const QuerySpec& spec,
                        std::string* resp) {
  std::string body;
  wire::PutString(&body, table);
  wire::PutU8(&body, static_cast<uint8_t>(kind));
  wire::PutU32(&body, col);
  wire::PutU64(&body, spec.first_row);
  wire::PutU64(&body, spec.row_count);
  wire::PutU64(&body, spec.as_of);
  wire::PutU32(&body, static_cast<uint32_t>(spec.where.size()));
  for (const auto& [fcol, fval] : spec.where) {
    wire::PutU32(&body, fcol);
    wire::PutU64(&body, fval);
  }
  return Call(wire::Op::kQuery, body, resp);
}

namespace {
Status DecodeAggregate(const std::string& resp, uint64_t* value,
                       uint64_t* visible_rows) {
  wire::Reader in(resp);
  uint64_t v = 0, rows = 0;
  if (!in.U64(&v) || !in.U64(&rows)) {
    return Status::Corruption("malformed Query response");
  }
  if (value != nullptr) *value = v;
  if (visible_rows != nullptr) *visible_rows = rows;
  return Status::OK();
}
}  // namespace

Status Client::Sum(const std::string& table, ColumnId col,
                   const QuerySpec& spec, uint64_t* sum,
                   uint64_t* visible_rows) {
  std::string resp;
  LSTORE_RETURN_IF_ERROR(
      RunQuery(table, wire::QueryKind::kSum, col, spec, &resp));
  return DecodeAggregate(resp, sum, visible_rows);
}

Status Client::Count(const std::string& table, const QuerySpec& spec,
                     uint64_t* count) {
  std::string resp;
  LSTORE_RETURN_IF_ERROR(
      RunQuery(table, wire::QueryKind::kCount, 0, spec, &resp));
  return DecodeAggregate(resp, count, nullptr);
}

Status Client::Min(const std::string& table, ColumnId col,
                   const QuerySpec& spec, Value* out,
                   uint64_t* visible_rows) {
  std::string resp;
  LSTORE_RETURN_IF_ERROR(
      RunQuery(table, wire::QueryKind::kMin, col, spec, &resp));
  return DecodeAggregate(resp, out, visible_rows);
}

Status Client::Max(const std::string& table, ColumnId col,
                   const QuerySpec& spec, Value* out,
                   uint64_t* visible_rows) {
  std::string resp;
  LSTORE_RETURN_IF_ERROR(
      RunQuery(table, wire::QueryKind::kMax, col, spec, &resp));
  return DecodeAggregate(resp, out, visible_rows);
}

Status Client::Keys(const std::string& table, const QuerySpec& spec,
                    std::vector<Value>* keys) {
  std::string resp;
  LSTORE_RETURN_IF_ERROR(
      RunQuery(table, wire::QueryKind::kKeys, 0, spec, &resp));
  wire::Reader in(resp);
  if (!in.Values(keys)) return Status::Corruption("malformed Keys response");
  return Status::OK();
}

Status Client::Metrics(std::string* prometheus_text) {
  std::string resp;
  LSTORE_RETURN_IF_ERROR(Call(wire::Op::kMetrics, {}, &resp));
  wire::Reader in(resp);
  if (!in.String(prometheus_text)) {
    return Status::Corruption("malformed Metrics response");
  }
  return Status::OK();
}

}  // namespace lstore
