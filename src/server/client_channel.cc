#include "server/client_channel.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace lstore {

Status StatusFromWire(uint8_t code, const std::string& msg) {
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kOk: return Status::OK();
    case Status::Code::kNotFound: return Status::NotFound(msg);
    case Status::Code::kAlreadyExists: return Status::AlreadyExists(msg);
    case Status::Code::kAborted: return Status::Aborted(msg);
    case Status::Code::kInvalidArgument: return Status::InvalidArgument(msg);
    case Status::Code::kIOError: return Status::IOError(msg);
    case Status::Code::kCorruption: return Status::Corruption(msg);
    case Status::Code::kNotSupported: return Status::NotSupported(msg);
    case Status::Code::kBusy: return Status::Busy(msg);
  }
  return Status::Corruption("unknown status code");
}

Status ClientChannel::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::InvalidArgument("already connected");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::IOError(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  broken_ = Status::OK();
  return Status::OK();
}

void ClientChannel::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inflight_.clear();
  order_.clear();
  ready_.clear();
}

Status ClientChannel::Break(const Status& s) {
  // Outstanding ids stay in inflight_ so Await(id) still recognizes
  // them — each Await drains its id and reports the breaking status.
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  broken_ = s;
  return s;
}

Status ClientChannel::Submit(wire::Op op, std::string_view body,
                             RequestId* id) {
  if (!broken_.ok()) return broken_;
  if (fd_ < 0) return Status::IOError("not connected");
  if (in_flight() >= max_in_flight_) {
    return Status::Busy("client pipeline full");
  }
  RequestId rid = next_request_id_++;
  std::string payload;
  payload.reserve(body.size() + 13);
  wire::PutU32(&payload, rid);
  // One-shot trace stamping: flag the op byte and append the id. Sent
  // regardless of this binary's tracing build — stamping expresses the
  // CLIENT's intent; whether spans get recorded is the server's build.
  if (next_trace_id_ != 0) {
    wire::PutU8(&payload, static_cast<uint8_t>(op) | wire::kTracedOpFlag);
    wire::PutU64(&payload, next_trace_id_);
    next_trace_id_ = 0;
  } else {
    wire::PutU8(&payload, static_cast<uint8_t>(op));
  }
  payload.append(body);
  Status s = wire::WriteFrame(fd_, payload);
  if (!s.ok()) return Break(s);
  inflight_.insert(rid);
  order_.push_back(rid);
  if (id != nullptr) *id = rid;
  return Status::OK();
}

Status ClientChannel::ReadOne() {
  std::string resp;
  Status s = wire::ReadFrame(fd_, max_frame_bytes_, &resp);
  if (!s.ok()) {
    return Break(s.IsNotFound()
                     ? Status::IOError("server closed the connection")
                     : s);
  }
  wire::Reader in(resp);
  Ready r;
  uint32_t resp_id = 0;
  if (!in.U32(&resp_id) || !in.U8(&r.code) || !in.String(&r.message) ||
      r.code > static_cast<uint8_t>(Status::Code::kBusy)) {
    return Break(Status::Corruption("malformed response"));
  }
  if (inflight_.erase(resp_id) == 0) {
    // A response for an id we never submitted (or already consumed):
    // the stream is out of step, which a pipelined matcher cannot
    // recover from any more than a blocking one could.
    return Break(Status::Corruption("response id mismatch"));
  }
  r.body = std::string(in.rest());
  ready_.emplace(resp_id, std::move(r));
  return Status::OK();
}

Status ClientChannel::Await(RequestId id, std::string* resp_body) {
  while (true) {
    auto it = ready_.find(id);
    if (it != ready_.end()) {
      Ready r = std::move(it->second);
      ready_.erase(it);
      if (!order_.empty() && order_.front() == id) order_.pop_front();
      else order_.erase(std::find(order_.begin(), order_.end(), id));
      if (r.code != 0) return StatusFromWire(r.code, r.message);
      if (resp_body != nullptr) *resp_body = std::move(r.body);
      return Status::OK();
    }
    bool outstanding = inflight_.count(id) != 0;
    if (!broken_.ok()) {
      // The channel died with this request outstanding: report the
      // break once per id, then treat the id as consumed.
      if (!outstanding) return Status::InvalidArgument("unknown request id");
      inflight_.erase(id);
      auto pos = std::find(order_.begin(), order_.end(), id);
      if (pos != order_.end()) order_.erase(pos);
      return broken_;
    }
    if (!outstanding) return Status::InvalidArgument("unknown request id");
    // On failure ReadOne breaks the channel; the next iteration's
    // broken_ branch consumes this id and reports the break.
    (void)ReadOne();
  }
}

bool ClientChannel::OldestInFlight(RequestId* id) const {
  if (order_.empty()) return false;
  *id = order_.front();
  return true;
}

}  // namespace lstore
