// Network service layer: multi-client sessions over TCP, scheduled
// onto the commit pipeline and Query executor by a bounded worker
// pool with admission control.
//
// The engine so far is embedded — one process owns the Database. The
// Server turns it into a system: it accepts many concurrent client
// connections, gives each a *session* (per-connection transaction
// state: at most one open Txn, auto-aborted on disconnect, so a
// vanished client can never leak an in-flight transaction), and
// drains their requests through a job queue onto a fixed pool of
// worker threads.
//
// Scheduling model (the ROADMAP's host/job-queue shape):
//
//   reader thread (1/connection)        workers (cfg.workers)
//     decode frame                        pop session from run queue
//     admission check ──Busy──> client    execute ONE request
//     append to session queue             write response
//     schedule session on run queue       reschedule if more pending
//
// A session executes at most one request at a time (its open Txn is
// single-threaded state), so per-session order is request order;
// across sessions, workers round-robin the run queue. Admission
// control is applied by the *reader*, before anything queues: when
// the global backlog reaches cfg.max_queue_depth, or the session
// already has cfg.max_inflight_per_session requests pending, the
// request is answered `Busy` immediately — overload degrades into
// fast rejections instead of unbounded queueing, and accepted-request
// latency stays bounded by the queue depth.
//
// Observability: sessions/queue-depth gauges, accepted/rejected/
// errored counters, queue-wait and request-latency histograms — all
// in the owning Database's MetricsRegistry (lstore_server_*), so one
// METRICS request (or Database::Metrics()) shows the front-end and
// the engine side by side.

#ifndef LSTORE_SERVER_SERVER_H_
#define LSTORE_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/database.h"
#include "server/wire.h"

namespace lstore {

struct ServerConfig {
  /// Listen address. Loopback by default: exposing the engine beyond
  /// the host is a deployment decision, not a default.
  std::string host = "127.0.0.1";

  /// TCP port; 0 = ephemeral (read the chosen one from port()).
  uint16_t port = 0;

  /// Worker threads draining the job queue (the only threads that
  /// touch the engine). 0 = auto: half the hardware threads, in
  /// [2, 8] — commit work blocks on fsync, so more workers than
  /// cores is fine; the scan pool handles query parallelism.
  uint32_t workers = 0;

  /// Admission control: total requests queued across all sessions
  /// beyond which new requests are answered Busy immediately.
  uint32_t max_queue_depth = 256;

  /// Admission control: requests one session may have queued at once
  /// (a pipelining client that outruns this gets Busy).
  uint32_t max_inflight_per_session = 16;

  /// Per-frame payload cap for requests arriving on a connection.
  uint32_t max_frame_bytes = wire::kDefaultMaxFrameBytes;

  /// Resize the process-wide scan pool (ThreadPool::Shared) so server
  /// workers + Query partitions together match the core budget:
  /// 0 = auto (hardware threads minus resolved worker count, min 1),
  /// UINT32_MAX = leave the shared pool alone.
  uint32_t scan_threads = 0;

  /// Sample-profile mode: mint a server-side trace id on every Nth
  /// un-flagged request (0 = off), so a fleet gets span timelines and
  /// slow-op dumps without any client stamping ids. Client-stamped
  /// requests keep their own id and do not consume a sample slot.
  uint64_t trace_sample_every = 0;

  /// Test hook: stall each request this long before executing, so
  /// tests can fill the queue deterministically and prove Busy.
  uint64_t test_delay_us = 0;
};

/// Counters a test/bench can read without scraping the registry.
struct ServerStats {
  uint64_t accepted = 0;       ///< requests admitted to the queue
  uint64_t rejected_busy = 0;  ///< requests answered Busy at admission
  uint64_t errors = 0;         ///< malformed frames / payloads
  uint64_t sessions_active = 0;
  uint64_t queue_depth = 0;
};

class Server {
 public:
  /// Serve `db` (not owned; must outlive Stop()).
  Server(Database* db, ServerConfig config);
  ~Server();  ///< Stop()s if still running.

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and start the acceptor + worker threads.
  Status Start();

  /// Stop accepting, unblock every connection, drain the workers, and
  /// finalize every session (open transactions abort). Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound TCP port (after Start; resolves port 0).
  uint16_t port() const { return port_; }

  ServerStats stats() const;

 private:
  struct Request {
    std::string payload;
    uint64_t enqueue_ns = 0;
    uint64_t trace_id = 0;  ///< wire-header trace id (0 = untraced)
    uint64_t t0_ns = 0;     ///< frame arrival; origin of the root span
  };

  /// One connected client: its socket, transaction state, and queued
  /// requests. Owned jointly by the session map, the run queue, and
  /// the reader thread via shared_ptr; *finalized* (txn aborted, fd
  /// closed, map entry erased) exactly once, by whichever of
  /// reader/worker/Stop observes it idle and closing last.
  struct Session {
    uint64_t id = 0;
    int fd = -1;
    /// Serializes response frames onto the socket (worker responses
    /// and reader-side Busy rejections interleave).
    std::mutex write_mu;
    /// The session's open transaction, if any (server-side state of
    /// BEGIN/COMMIT/ABORT). Only the executing worker touches it.
    std::optional<Txn> txn;

    // --- guarded by Server::mu_ ---
    std::deque<Request> pending;
    bool scheduled = false;  ///< in runq_ or executing on a worker
    bool closing = false;    ///< reader saw EOF/error or Stop() ran
    bool finalized = false;
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Session> session);
  void WorkerLoop(uint32_t index);

  /// Decode and execute one request, writing its response.
  void HandleRequest(Session* session, const Request& req);
  /// Execute `op` against db_, appending the response body to *resp.
  Status Execute(Session* session, wire::Op op, wire::Reader* in,
                 std::string* resp);
  Status ExecuteQuery(wire::Reader* in, std::string* resp);

  /// Write a [request_id][code][message] (+body) response frame.
  void SendResponse(Session* session, uint32_t request_id, const Status& s,
                    std::string_view body = {});

  /// Abort the open txn, close the socket, and drop the map entry.
  /// Caller holds mu_; runs at most once per session.
  void FinalizeSessionLocked(const std::shared_ptr<Session>& session);

  Database* db_;
  ServerConfig cfg_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers: runq_ / stopping_
  std::condition_variable reader_cv_; ///< Stop(): reader_threads_ == 0
  std::deque<std::shared_ptr<Session>> runq_;
  std::unordered_map<uint64_t, std::shared_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;
  uint32_t reader_threads_ = 0;  ///< live (detached) reader threads
  uint32_t queued_ = 0;          ///< total pending requests (admission)
  bool admission_engaged_ = false;  ///< queue-full Busy mode (event edge)

  /// Round-robin counter for trace_sample_every (all readers share it
  /// so the sampling rate is global, not per-connection).
  std::atomic<uint64_t> sample_counter_{0};

  // Registry handles (owned by db_->metrics(); valid for db_'s life).
  Counter* m_accepted_ = nullptr;
  Counter* m_rejected_ = nullptr;
  Counter* m_errors_ = nullptr;
  Counter* m_connections_ = nullptr;
  Counter* m_bytes_in_ = nullptr;
  Counter* m_bytes_out_ = nullptr;
  Gauge* g_sessions_ = nullptr;
  Gauge* g_queue_depth_ = nullptr;
  Histogram* h_queue_wait_ns_ = nullptr;
  Histogram* h_request_ns_ = nullptr;
};

}  // namespace lstore

#endif  // LSTORE_SERVER_SERVER_H_
