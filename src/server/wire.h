// Wire protocol of the network service layer (src/server/): a
// length-prefixed binary codec reusing the framed-log discipline.
//
// Every message travels as one frame:
//
//   [payload_len u32 LE][payload][fnv1a32(payload) u32 LE]
//
// — the same [len][payload][checksum] shape as the durability logs
// (log/framed_log.h), with the same torn/short-frame discipline: a
// short read, an oversized length, or a checksum mismatch never
// yields a partially-decoded message; the reader reports a clean
// error and the connection is closed or answered with an error
// response. The stream framing itself stays intact across a frame
// whose *payload* fails to decode (the frame boundary was still
// valid), so one malformed request does not poison the session.
//
// Payloads:
//   request  = [request_id u32][op u8][trace_id u64, iff op & 0x80]
//              [op-specific body]
//   response = [request_id u32][status code u8][message string]
//              [op-specific body when OK]
//
// The trace id is an optional header field signalled by the high bit
// of the op byte (kTracedOpFlag): a client stamping a request sends
// `op | 0x80` followed by the 64-bit id, and the server tags every
// stage the request touches with it (src/obs/span.h). Frames without
// the flag — i.e. every frame an older client sends — decode exactly
// as before; opcode values stay below 0x80 so the flag can never
// collide with an op.
//
// The request_id is chosen by the client and echoed verbatim, so a
// pipelining client can match responses that arrive out of request
// order (admission-control Busy rejections are written by the reader
// thread and can overtake in-flight responses of the same session).
//
// Scalars are fixed-width little-endian; strings and value vectors
// are u32-count-prefixed. Every decode is bounds-checked against the
// remaining payload — a hostile count cannot force an allocation
// larger than the (already length-capped) frame it arrived in.

#ifndef LSTORE_SERVER_WIRE_H_
#define LSTORE_SERVER_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace lstore {
namespace wire {

/// Default cap on one frame's payload (requests and responses). A
/// frame announcing more than the cap is rejected before any
/// allocation — the standard defense against a hostile length header.
inline constexpr uint32_t kDefaultMaxFrameBytes = 8u << 20;

/// Bytes a frame adds around its payload (length + checksum).
inline constexpr size_t kFrameOverhead = 8;

/// Request opcodes. Stable wire values: append, never renumber.
enum class Op : uint8_t {
  kPing = 1,
  kCreateTable = 2,   ///< name, column names
  kListTables = 3,
  kSchema = 4,        ///< table -> column names
  kBegin = 5,         ///< isolation level
  kCommit = 6,
  kAbort = 7,
  kInsert = 8,        ///< table, row
  kRead = 9,          ///< table, key, mask -> row
  kUpdate = 10,       ///< table, key, mask, row
  kDelete = 11,       ///< table, key
  kMultiRead = 12,    ///< table, mask, keys -> rows + per-key codes
  kInsertBatch = 13,  ///< table, rows
  kUpdateBatch = 14,  ///< table, mask, keys, rows
  kDeleteBatch = 15,  ///< table, keys
  kQuery = 16,        ///< table, kind, col, range, as_of, filters
  kMetrics = 17,      ///< -> Prometheus text exposition
  kTrace = 18,        ///< -> flight recorder as Chrome trace-event JSON
  kHealth = 19,       ///< -> actor health verdicts + recent events
};

/// High bit of the request op byte: a u64 trace id follows the op.
/// Ops must stay below this value (enforced where ops are decoded).
inline constexpr uint8_t kTracedOpFlag = 0x80;

/// Aggregation / terminal kind of a kQuery request.
enum class QueryKind : uint8_t {
  kSum = 0,
  kCount = 1,
  kMin = 2,
  kMax = 3,
  kKeys = 4,
};

// --- encoding --------------------------------------------------------------

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutU32(std::string* out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(b, 4);
}

inline void PutU64(std::string* out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(b, 8);
}

inline void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

inline void PutValues(std::string* out, const std::vector<Value>& vs) {
  PutU32(out, static_cast<uint32_t>(vs.size()));
  for (Value v : vs) PutU64(out, v);
}

/// Vector-of-rows: u32 row count, then each row as PutValues.
inline void PutRows(std::string* out,
                    const std::vector<std::vector<Value>>& rows) {
  PutU32(out, static_cast<uint32_t>(rows.size()));
  for (const auto& r : rows) PutValues(out, r);
}

// --- decoding --------------------------------------------------------------

/// Bounds-checked cursor over one payload. Every accessor returns
/// false (and poisons the reader) on truncation; check ok() once at
/// the end of a fixed-shape decode, or each call when branching.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v) {
    if (!Need(1)) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool U32(uint32_t* v) {
    if (!Need(4)) return false;
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) {
      r |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *v = r;
    return true;
  }

  bool U64(uint64_t* v) {
    if (!Need(8)) return false;
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) {
      r |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *v = r;
    return true;
  }

  bool String(std::string* s) {
    uint32_t n;
    if (!U32(&n) || !Need(n)) return false;
    s->assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  bool Values(std::vector<Value>* vs) {
    uint32_t n;
    // The count must be coverable by the remaining bytes BEFORE the
    // reserve — a hostile count cannot allocate past the frame cap.
    if (!U32(&n) || !Need(static_cast<size_t>(n) * 8)) return false;
    vs->clear();
    vs->reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      uint64_t v = 0;
      U64(&v);
      vs->push_back(v);
    }
    return true;
  }

  bool Rows(std::vector<std::vector<Value>>* rows) {
    uint32_t n;
    // Each row costs at least its 4-byte count.
    if (!U32(&n) || !Need(static_cast<size_t>(n) * 4)) return false;
    rows->clear();
    rows->reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      rows->emplace_back();
      if (!Values(&rows->back())) return false;
    }
    return true;
  }

  /// All accessors so far succeeded.
  bool ok() const { return ok_; }
  /// Whole payload consumed (strict decoders reject trailing bytes).
  bool done() const { return ok_ && pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }
  std::string_view rest() const { return data_.substr(pos_); }

 private:
  bool Need(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// --- frame I/O over a blocking socket --------------------------------------

/// Write one frame. Partial sends are retried; returns IOError when
/// the peer is gone (EPIPE/reset — never a signal, writes use
/// MSG_NOSIGNAL).
Status WriteFrame(int fd, std::string_view payload);

/// Read one frame into *payload.
///   NotFound   — clean EOF at a frame boundary (peer closed).
///   IOError    — socket error or EOF mid-frame (torn frame).
///   InvalidArgument — announced length exceeds max_frame_bytes; the
///                 stream cannot be resynchronized after this.
///   Corruption — checksum mismatch (bit flip in transit/memory).
Status ReadFrame(int fd, uint32_t max_frame_bytes, std::string* payload);

}  // namespace wire
}  // namespace lstore

#endif  // LSTORE_SERVER_WIRE_H_
