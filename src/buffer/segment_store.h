// Append-only swap store for read-optimized base segments.
//
// One SegmentStore backs one table's buffer-managed base segments:
// merge output writes each consolidated column through as a varint
// payload, records its {offset, length, checksum}, and from then on
// the in-memory copy is evictable — a cold page demand-loads by
// reading its recorded byte range back. Offsets are stable for the
// lifetime of the file (the store is never compacted in place), so
// checkpoint manifests may reference them across restarts.
//
// Durability contract: appends are NOT fsynced individually — a
// checkpoint that publishes references into the store calls Sync()
// first, so every offset a durable manifest names is on disk before
// the manifest rename. Demand loads within one process only need the
// OS cache. A torn tail from a crash is harmless: nothing durable
// references it, and new appends simply start beyond it.

#ifndef LSTORE_BUFFER_SEGMENT_STORE_H_
#define LSTORE_BUFFER_SEGMENT_STORE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "common/status.h"

namespace lstore {

class SegmentStore {
 public:
  SegmentStore() = default;
  ~SegmentStore();

  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  /// Open (or create) a named store; new appends go at the current
  /// end so previously recorded offsets stay valid.
  Status Open(const std::string& path);

  /// Open an existing store read-only (point-in-time restore reads a
  /// foreign directory without mutating it). Append fails; durable()
  /// stays false — nothing durable may reference a read-only handle.
  Status OpenReadOnly(const std::string& path);

  /// Anonymous spill file for standalone tables (unlinked immediately,
  /// so it vanishes with the process). Offsets from a temp store are
  /// never referenced by durable state: durable() stays false.
  Status OpenTemp();

  void Close();

  /// Append `payload` verbatim; `*offset` receives its stable position.
  Status Append(std::string_view payload, uint64_t* offset);

  /// Read back [offset, offset + length). Thread-safe against Append.
  Status ReadAt(uint64_t offset, uint64_t length, std::string* out) const;

  /// Whether [offset, offset + length) lies within the current file
  /// (recovery validates manifest references eagerly).
  bool Contains(uint64_t offset, uint64_t length) const;

  /// fsync the store (checkpoint publish barrier).
  Status Sync();

  /// True for named stores whose offsets may be referenced by durable
  /// checkpoints; false for anonymous spill files.
  bool durable() const { return durable_; }

  uint64_t size_bytes() const {
    return end_.load(std::memory_order_acquire);
  }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  bool durable_ = false;
  std::string path_;
  std::mutex append_mu_;
  std::atomic<uint64_t> end_{0};
};

}  // namespace lstore

#endif  // LSTORE_BUFFER_SEGMENT_STORE_H_
