#include "buffer/buffer_pool.h"

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "buffer/segment_store.h"
#include "common/epoch.h"
#include "log/redo_log.h"
#include "obs/event_log.h"
#include "storage/compressed_column.h"
#include "storage/compression/varint.h"

namespace lstore {

// ---------------------------------------------------------------------------
// SegmentPage
// ---------------------------------------------------------------------------

SegmentPage::SegmentPage(EpochManager* epochs, uint32_t num_slots,
                         bool compress)
    : num_slots_(num_slots), compress_(compress), epochs_(epochs) {}

SegmentPage::~SegmentPage() {
  BufferPool* pool = pool_.load(std::memory_order_acquire);
  if (pool != nullptr) pool->Unregister(this);
  // By the time the last owning segment is reclaimed, no reader from
  // before its retirement can still hold the payload (the retire
  // epoch drained), and no new reader can reach this page — direct
  // deletion is safe.
  delete payload_.exchange(nullptr, std::memory_order_acq_rel);
}

void SegmentPage::SetResident(const CompressedColumn* col) {
  resident_bytes_.store(col->byte_size(), std::memory_order_relaxed);
  payload_.store(col, std::memory_order_release);
}

void SegmentPage::SetSwap(SegmentStore* store, uint64_t offset,
                          uint64_t length, uint32_t checksum,
                          SwapFormat format, uint32_t width) {
  store_ = store;
  swap_offset_ = offset;
  swap_length_ = length;
  swap_checksum_ = checksum;
  swap_format_ = format;
  swap_value_width_ = width;
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

BufferPool::BufferPool(uint64_t budget_bytes) : budget_(budget_bytes) {}

BufferPool::~BufferPool() = default;

uint64_t BufferPool::EnvBudgetBytes() {
  static const uint64_t v = [] {
    const char* e = std::getenv("LSTORE_BUFFER_POOL_BYTES");
    return e != nullptr ? std::strtoull(e, nullptr, 10) : 0ull;
  }();
  return v;
}

void BufferPool::Register(SegmentPage* page) {
  uint64_t charge = 0;
  if (page->payload_.load(std::memory_order_acquire) != nullptr) {
    charge = page->resident_bytes_.load(std::memory_order_relaxed);
  }
  // Charge BEFORE the page becomes reachable by the eviction sweep: a
  // sweep that evicted it first would subtract bytes never added and
  // wrap the unsigned gauge.
  if (charge != 0) {
    bytes_resident_.fetch_add(charge, std::memory_order_acq_rel);
  }
  {
    std::lock_guard<std::mutex> g(mu_);
    page->pool_.store(this, std::memory_order_release);
    if (clock_hand_ == nullptr) {
      page->clock_next_ = page;
      page->clock_prev_ = page;
      clock_hand_ = page;
    } else {
      // Insert just behind the hand (longest time until first sweep).
      page->clock_next_ = clock_hand_;
      page->clock_prev_ = clock_hand_->clock_prev_;
      clock_hand_->clock_prev_->clock_next_ = page;
      clock_hand_->clock_prev_ = page;
    }
    ++ring_size_;
  }
  pages_.fetch_add(1, std::memory_order_relaxed);
  EnforceBudget();
}

void BufferPool::UnlinkLocked(SegmentPage* page) {
  page->pool_.store(nullptr, std::memory_order_release);
  if (page->clock_next_ == page) {
    clock_hand_ = nullptr;
  } else {
    page->clock_prev_->clock_next_ = page->clock_next_;
    page->clock_next_->clock_prev_ = page->clock_prev_;
    if (clock_hand_ == page) clock_hand_ = page->clock_next_;
  }
  page->clock_next_ = nullptr;
  page->clock_prev_ = nullptr;
  --ring_size_;
}

void BufferPool::Unregister(SegmentPage* page) {
  uint64_t uncharge = 0;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (page->pool_.load(std::memory_order_relaxed) != this) return;
    UnlinkLocked(page);
    if (page->payload_.load(std::memory_order_acquire) != nullptr) {
      uncharge = page->resident_bytes_.load(std::memory_order_relaxed);
    }
  }
  pages_.fetch_sub(1, std::memory_order_relaxed);
  if (uncharge != 0) {
    bytes_resident_.fetch_sub(uncharge, std::memory_order_acq_rel);
  }
}

void BufferPool::DetachDomain(EpochManager* epochs) {
  // The eviction fence: an in-flight EnforceBudget may already have
  // collected victims of this domain (with their EpochManager pointer)
  // but not yet retired them. Waiting out the whole pass here
  // guarantees no retire can land after the table's teardown proceeds
  // to destroy the manager.
  std::lock_guard<std::mutex> fence(evict_mu_);
  std::vector<SegmentPage*> detached;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (clock_hand_ == nullptr) return;
    SegmentPage* p = clock_hand_;
    // Collect first (unlinking while walking a circular list is
    // error-prone), then unlink.
    std::vector<SegmentPage*> all;
    do {
      all.push_back(p);
      p = p->clock_next_;
    } while (p != clock_hand_);
    for (SegmentPage* page : all) {
      if (page->epochs_ != epochs) continue;
      UnlinkLocked(page);
      detached.push_back(page);
    }
  }
  uint64_t uncharge = 0;
  for (SegmentPage* page : detached) {
    if (page->payload_.load(std::memory_order_acquire) != nullptr) {
      uncharge += page->resident_bytes_.load(std::memory_order_relaxed);
    }
  }
  pages_.fetch_sub(detached.size(), std::memory_order_relaxed);
  if (uncharge != 0) {
    bytes_resident_.fetch_sub(uncharge, std::memory_order_acq_rel);
  }
}

void BufferPool::CountHit() {
  static thread_local const size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kHitShards;
  hits_[shard].n.fetch_add(1, std::memory_order_relaxed);
}

const CompressedColumn* BufferPool::Acquire(SegmentPage* page) {
  const CompressedColumn* c = page->payload_.load(std::memory_order_acquire);
  if (c != nullptr) {
    page->referenced_.store(true, std::memory_order_relaxed);
    CountHit();
    return c;
  }
  return Load(page);
}

const CompressedColumn* BufferPool::LoadColdPayload(SegmentPage* page,
                                                    bool* won) {
  *won = false;
  // Only swapped pages can ever be cold (eviction requires a store).
  std::string payload;
  Status s = Status::OK();
  std::vector<Value> vals;
  if (page->store_ == nullptr) {
    s = Status::Corruption("cold page has no segment store");
  } else {
    s = page->store_->ReadAt(page->swap_offset_, page->swap_length_, &payload);
  }
  if (s.ok() &&
      Fnv1a32(payload.data(), payload.size()) != page->swap_checksum_) {
    s = Status::Corruption("segment payload checksum mismatch");
  }
  if (s.ok()) {
    size_t pos = 0;
    uint64_t count = 0;
    if (!GetVarint64(payload.data(), payload.size(), &pos, &count) ||
        count != page->num_slots_) {
      s = Status::Corruption("segment payload slot count mismatch");
    } else if (page->swap_format_ == SwapFormat::kFixed) {
      // [count varint][width byte][count * width bytes, little-endian]
      uint32_t width = pos < payload.size()
                           ? static_cast<uint8_t>(payload[pos])
                           : 0;
      ++pos;
      if (width != page->swap_value_width_ ||
          payload.size() != pos + count * width) {
        s = Status::Corruption("segment payload fixed-width mismatch");
      } else {
        vals.resize(count);
        for (uint64_t i = 0; i < count; ++i) {
          uint64_t v = 0;
          for (uint32_t b = 0; b < width; ++b) {
            v |= static_cast<uint64_t>(
                     static_cast<uint8_t>(payload[pos + i * width + b]))
                 << (8 * b);
          }
          vals[i] = v;
        }
      }
    } else {
      vals.resize(count);
      for (uint64_t i = 0; i < count && s.ok(); ++i) {
        if (!GetVarint64(payload.data(), payload.size(), &pos, &vals[i])) {
          s = Status::Corruption("segment payload truncated");
        }
      }
    }
  }
  if (!s.ok()) {
    // Storage-integrity fault: serving ∅ instead would silently
    // corrupt query results, so this is fail-stop — like a flipped
    // bit under an mmap'd file. Deployments that need corruption in a
    // restored store surfaced as a clean recovery error instead opt
    // into DurabilityOptions::verify_segment_store_on_open.
    std::fprintf(stderr,
                 "lstore: FATAL buffer pool demand-load failed (%s) "
                 "store=%s offset=%llu length=%llu\n",
                 s.ToString().c_str(),
                 page->store_ != nullptr ? page->store_->path().c_str() : "-",
                 (unsigned long long)page->swap_offset_,
                 (unsigned long long)page->swap_length_);
    std::abort();
  }

  const CompressedColumn* col =
      CompressedColumn::Build(std::move(vals), page->compress_).release();
  // resident_bytes_ is identical across reloads (Build is
  // deterministic), so writing it before the publish CAS is benign
  // even when two loaders race.
  page->resident_bytes_.store(col->byte_size(), std::memory_order_relaxed);
  const CompressedColumn* expected = nullptr;
  if (!page->payload_.compare_exchange_strong(expected, col,
                                              std::memory_order_acq_rel)) {
    delete col;  // another loader published first
    return expected;
  }
  *won = true;
  return col;
}

bool BufferPool::ReadColdSlot(SegmentPage* page, uint32_t slot, Value* out) {
  if (page == nullptr || page->store_ == nullptr ||
      page->swap_format_ != SwapFormat::kFixed ||
      slot >= page->num_slots_) {
    return false;
  }
  if (page->payload_.load(std::memory_order_acquire) != nullptr) {
    return false;  // resident: the pinned path is cheaper and counted
  }
  // Promotion gate: a page hot enough to absorb this many point reads
  // should hydrate — decline so the caller's pin loads it and later
  // reads become memory hits instead of preads.
  if (page->cold_reads_.fetch_add(1, std::memory_order_relaxed) >=
      kColdReadPromotion) {
    return false;
  }
  const uint32_t width = page->swap_value_width_;
  // Slot addressing: past the [count varint][width byte] header every
  // value occupies exactly `width` bytes.
  const uint64_t header = VarintLength(page->num_slots_) + 1;
  std::string bytes;
  if (!page->store_
           ->ReadAt(page->swap_offset_ + header +
                        static_cast<uint64_t>(slot) * width,
                    width, &bytes)
           .ok()) {
    return false;  // fall back to the full-inflate path (fail-stop there)
  }
  uint64_t v = 0;
  for (uint32_t b = 0; b < width; ++b) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[b])) << (8 * b);
  }
  *out = v;
  BufferPool* pool = page->pool_.load(std::memory_order_acquire);
  if (pool != nullptr) {
    pool->cold_point_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

const CompressedColumn* BufferPool::Load(SegmentPage* page) {
  bool won = false;
  const CompressedColumn* col = LoadColdPayload(page, &won);
  if (!won) {
    CountHit();  // another loader published first
    return col;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  page->referenced_.store(true, std::memory_order_relaxed);
  bytes_resident_.fetch_add(col->byte_size(), std::memory_order_acq_rel);
  EnforceBudget();
  return col;
}

void BufferPool::NoteBudgetPressure(bool over) {
  if (over_budget_.exchange(over, std::memory_order_acq_rel) == over) return;
  EventLog* events = events_.load(std::memory_order_acquire);
  if (events == nullptr) return;
  std::string fields =
      "\"resident_bytes\":" +
      std::to_string(bytes_resident_.load(std::memory_order_relaxed)) +
      ",\"budget_bytes\":" + std::to_string(budget_);
  if (over) {
    events->Emit(EventSeverity::kWarn, "buffer_pool", "budget_pressure",
                 std::move(fields));
  } else {
    events->Emit(EventSeverity::kInfo, "buffer_pool", "budget_relieved",
                 std::move(fields));
  }
}

void BufferPool::EnforceBudget() {
  if (budget_ == 0) return;
  if (bytes_resident_.load(std::memory_order_acquire) <= budget_) {
    NoteBudgetPressure(false);
    return;
  }
  // One pass at a time, and DetachDomain waits the pass out: between
  // collecting a victim and retiring it we hold a raw EpochManager
  // pointer, so a table must not finish tearing down mid-pass.
  std::lock_guard<std::mutex> fence(evict_mu_);
  // Victims are collected under the ring mutex but retired OUTSIDE it:
  // Retire takes the epoch manager's lock, whose reclamation path runs
  // deleters that re-enter this pool (page unregistration) — retiring
  // under mu_ would invert that order and deadlock.
  std::vector<std::pair<EpochManager*, const CompressedColumn*>> victims;
  {
    std::lock_guard<std::mutex> g(mu_);
    uint64_t steps = 2 * ring_size_ + 1;
    while (bytes_resident_.load(std::memory_order_acquire) > budget_ &&
           clock_hand_ != nullptr && steps-- > 0) {
      SegmentPage* p = clock_hand_;
      clock_hand_ = p->clock_next_;
      if (p->store_ == nullptr) continue;  // never written through
      if (p->pins_.load(std::memory_order_acquire) != 0) continue;
      if (p->payload_.load(std::memory_order_acquire) == nullptr) continue;
      if (p->referenced_.exchange(false, std::memory_order_acq_rel)) {
        continue;  // second chance
      }
      const CompressedColumn* victim =
          p->payload_.exchange(nullptr, std::memory_order_acq_rel);
      if (victim == nullptr) continue;
      // Fresh cold spell: the page earns kColdReadPromotion slot reads
      // before the next point read promotes it back to residency.
      p->cold_reads_.store(0, std::memory_order_relaxed);
      bytes_resident_.fetch_sub(
          p->resident_bytes_.load(std::memory_order_relaxed),
          std::memory_order_acq_rel);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      victims.emplace_back(p->epochs_, victim);
    }
  }
  // Readers that pinned just after our pin check may still be using a
  // victim — retire through the owning table's epochs, the same fence
  // merges use for outdated base pages (Figure 6). Then reclaim: in
  // scan-only workloads nothing else drains the retired queue, and an
  // evict-reload loop would otherwise grow it without bound.
  EpochManager* last = nullptr;
  for (auto& [epochs, victim] : victims) {
    epochs->Retire([victim] { delete victim; });
  }
  for (auto& [epochs, victim] : victims) {
    (void)victim;
    if (epochs != last) epochs->TryReclaim();
    last = epochs;
  }
  // Pressure = the sweep could not get back under budget (the pinned
  // working set alone exceeds it); transitions emit events.
  NoteBudgetPressure(bytes_resident_.load(std::memory_order_acquire) >
                     budget_);
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats s;
  for (const HitShard& h : hits_) {
    s.hits += h.n.load(std::memory_order_relaxed);
  }
  s.cold_point_reads = cold_point_reads_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.bytes_resident = bytes_resident_.load(std::memory_order_acquire);
  s.budget_bytes = budget_;
  s.pages = pages_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace lstore
