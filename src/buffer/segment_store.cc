#include "buffer/segment_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lstore {

SegmentStore::~SegmentStore() { Close(); }

Status SegmentStore::Open(const std::string& path) {
  Close();
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    return Status::IOError("cannot open segment store: " + path);
  }
  struct ::stat st;
  if (::fstat(fd_, &st) != 0) {
    ::close(fd_);
    fd_ = -1;
    return Status::IOError("cannot stat segment store: " + path);
  }
  path_ = path;
  durable_ = true;
  end_.store(static_cast<uint64_t>(st.st_size), std::memory_order_release);
  return Status::OK();
}

Status SegmentStore::OpenReadOnly(const std::string& path) {
  Close();
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) {
    return Status::IOError("cannot open segment store read-only: " + path);
  }
  struct ::stat st;
  if (::fstat(fd_, &st) != 0) {
    ::close(fd_);
    fd_ = -1;
    return Status::IOError("cannot stat segment store: " + path);
  }
  path_ = path;
  durable_ = false;
  end_.store(static_cast<uint64_t>(st.st_size), std::memory_order_release);
  return Status::OK();
}

Status SegmentStore::OpenTemp() {
  Close();
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                     "/lstore_spill_XXXXXX";
  std::string buf(tmpl);
  fd_ = ::mkstemp(buf.data());
  if (fd_ < 0) {
    return Status::IOError("cannot create spill file: " + tmpl);
  }
  ::unlink(buf.c_str());  // anonymous: reclaimed automatically on close
  path_ = buf;
  durable_ = false;
  end_.store(0, std::memory_order_release);
  return Status::OK();
}

void SegmentStore::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  durable_ = false;
  end_.store(0, std::memory_order_release);
}

Status SegmentStore::Append(std::string_view payload, uint64_t* offset) {
  if (fd_ < 0) return Status::IOError("segment store not open");
  std::lock_guard<std::mutex> g(append_mu_);
  uint64_t off = end_.load(std::memory_order_relaxed);
  size_t done = 0;
  while (done < payload.size()) {
    ssize_t n = ::pwrite(fd_, payload.data() + done, payload.size() - done,
                         static_cast<off_t>(off + done));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      // Nothing references [off, ...) yet; the next append retries the
      // same offset, so a short write cannot corrupt recorded ranges.
      return Status::IOError("segment store append failed");
    }
    done += static_cast<size_t>(n);
  }
  // Publish the new end only after the bytes are fully written:
  // Contains() must never cover a half-written payload.
  end_.store(off + payload.size(), std::memory_order_release);
  if (offset != nullptr) *offset = off;
  return Status::OK();
}

Status SegmentStore::ReadAt(uint64_t offset, uint64_t length,
                            std::string* out) const {
  if (fd_ < 0) return Status::IOError("segment store not open");
  if (!Contains(offset, length)) {
    return Status::Corruption("segment store read out of bounds");
  }
  out->resize(length);
  size_t done = 0;
  while (done < length) {
    ssize_t n = ::pread(fd_, out->data() + done, length - done,
                        static_cast<off_t>(offset + done));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IOError("segment store read failed");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

bool SegmentStore::Contains(uint64_t offset, uint64_t length) const {
  uint64_t end = end_.load(std::memory_order_acquire);
  return offset <= end && length <= end - offset;
}

Status SegmentStore::Sync() {
  if (fd_ < 0) return Status::IOError("segment store not open");
  if (::fsync(fd_) != 0) {
    return Status::IOError("segment store fsync failed: " + path_);
  }
  return Status::OK();
}

}  // namespace lstore
