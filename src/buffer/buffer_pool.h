// Buffer-managed base storage: a database-wide pool of read-optimized
// base-segment payloads with demand paging and clock eviction, so a
// table's base footprint can exceed RAM.
//
// The unit of residency is a SegmentPage: the compressed column of one
// base segment of one update range. Base segments are immutable
// between merges, which makes them ideal paging candidates — a page
// written through to its table's SegmentStore is always "clean", so
// eviction is a pointer swap plus an epoch-deferred free, never a
// write-back.
//
// Concurrency model (two rings of defense):
//  * PageHandle pins (pin count) keep a frame resident while a scan or
//    point read is actively using it — the eviction policy skips
//    pinned frames, so a pinned cursor never has its payload stolen
//    mid-partition.
//  * The owning table's epoch manager is the memory-safety backstop:
//    eviction retires the payload through it, exactly like a merge
//    retires outdated base pages (Figure 6), so even a reader that
//    loses the pin/evict race (pin lands after the evictor's check)
//    reads a retired-but-not-freed copy of identical immutable bytes.
//    Every PageHandle must therefore be held under an EpochGuard of
//    the owning table — the same guard every base-data reader already
//    holds.
//
// Budget: a byte budget shared by every table of the database
// (DurabilityOptions::buffer_pool_bytes; 0 = no pool, fully resident
// as before). Going over budget triggers a bounded clock/second-chance
// sweep that evicts cold clean frames; pinned and never-written-
// through frames are never victims, so the pool may transiently
// exceed the budget when the pinned working set alone is larger.

#ifndef LSTORE_BUFFER_BUFFER_POOL_H_
#define LSTORE_BUFFER_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/types.h"

namespace lstore {

class BufferPool;
class CompressedColumn;
class EpochManager;
class EventLog;
class SegmentStore;

/// On-disk layout of a swapped segment payload. kVarint is the
/// original format ([count varint][varint values...]): compact, but a
/// miss must inflate the whole segment. kFixed
/// ([count varint][width byte][count * width bytes, little-endian])
/// gives every slot a fixed offset, so a cold POINT read decodes just
/// the requested slot — O(1) instead of O(range). The writer picks
/// whichever is smaller; the format travels in the page metadata and
/// the checkpoint's segment-ref frames, never sniffed from bytes.
enum class SwapFormat : uint8_t { kVarint = 0, kFixed = 1 };

/// Aggregate pool counters (benchmarks, tests, Database::buffer_stats).
struct BufferPoolStats {
  uint64_t hits = 0;        ///< pin found the payload resident
  uint64_t misses = 0;      ///< pin demand-loaded from the segment store
  uint64_t evictions = 0;   ///< payloads dropped by the clock sweep
  /// Point reads served by decoding ONE slot of a cold fixed-width
  /// segment (no inflation, no residency change).
  uint64_t cold_point_reads = 0;
  uint64_t bytes_resident = 0;
  uint64_t budget_bytes = 0;  ///< 0 = unlimited
  uint64_t pages = 0;         ///< registered pages (resident or cold)
};

/// One buffer-managed payload. Shared across merge generations: an
/// update merge that leaves a column untouched shares the old page in
/// the fresh segment, so residency (and the swap location) carries
/// over for free. Destroyed when the last owning segment is reclaimed.
class SegmentPage {
 public:
  /// `epochs` is the owning table's reclamation domain — evicted
  /// payloads are retired through it.
  SegmentPage(EpochManager* epochs, uint32_t num_slots, bool compress);
  ~SegmentPage();

  SegmentPage(const SegmentPage&) = delete;
  SegmentPage& operator=(const SegmentPage&) = delete;

  /// Publish the freshly built payload (before the page becomes
  /// reachable through a range's segment directory).
  void SetResident(const CompressedColumn* col);

  /// Record the write-through location; from now on the page is
  /// evictable and can demand-load. `width` is the byte width per
  /// value for kFixed payloads (unused for kVarint).
  void SetSwap(SegmentStore* store, uint64_t offset, uint64_t length,
               uint32_t checksum, SwapFormat format = SwapFormat::kVarint,
               uint32_t width = 0);

  bool evictable() const { return store_ != nullptr; }
  bool resident() const {
    return payload_.load(std::memory_order_acquire) != nullptr;
  }
  SegmentStore* store() const { return store_; }
  uint64_t swap_offset() const { return swap_offset_; }
  uint64_t swap_length() const { return swap_length_; }
  uint32_t swap_checksum() const { return swap_checksum_; }
  SwapFormat swap_format() const { return swap_format_; }
  uint32_t swap_value_width() const { return swap_value_width_; }
  uint32_t num_slots() const { return num_slots_; }

 private:
  friend class BufferPool;
  friend class PageHandle;

  /// Resolve the payload for a pinned reader (hit fast path inline in
  /// BufferPool::Acquire; cold pages load from the store).
  std::atomic<const CompressedColumn*> payload_{nullptr};
  std::atomic<uint32_t> pins_{0};
  std::atomic<bool> referenced_{true};  ///< clock second-chance bit
  /// Cold slot reads since the page last went cold (promotion gate).
  std::atomic<uint32_t> cold_reads_{0};
  std::atomic<uint64_t> resident_bytes_{0};  ///< charged while resident
  uint32_t num_slots_;
  bool compress_;  ///< rebuild demand-loaded values with compression
  EpochManager* epochs_;
  SegmentStore* store_ = nullptr;
  uint64_t swap_offset_ = 0;
  uint64_t swap_length_ = 0;
  uint32_t swap_checksum_ = 0;
  SwapFormat swap_format_ = SwapFormat::kVarint;
  uint32_t swap_value_width_ = 0;  ///< bytes per value (kFixed only)

  /// Set at Register, cleared by Unregister/DetachDomain.
  std::atomic<BufferPool*> pool_{nullptr};
  // Clock ring links, guarded by the pool mutex.
  SegmentPage* clock_prev_ = nullptr;
  SegmentPage* clock_next_ = nullptr;
};

class BufferPool {
 public:
  /// `budget_bytes` = 0 means unlimited (track stats, never evict).
  explicit BufferPool(uint64_t budget_bytes);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Add a page to the clock ring (charging its resident bytes) and
  /// evict down to budget. Called once per page, before the owning
  /// segment is published to readers.
  void Register(SegmentPage* page);

  /// Remove a page (from ~SegmentPage). Idempotent.
  void Unregister(SegmentPage* page);

  /// Detach every page of one table's epoch domain from the ring
  /// WITHOUT freeing payloads — called at the start of Table teardown
  /// so no concurrent eviction can retire into an epoch manager that
  /// is being destroyed.
  void DetachDomain(EpochManager* epochs);

  /// Resolve the payload of a page the caller has already pinned;
  /// demand-loads on miss. Never returns null: a load failure of
  /// bytes this process wrote is a storage-integrity fault and aborts.
  const CompressedColumn* Acquire(SegmentPage* page);

  /// Pool-less demand load (a lazily restored segment on a database
  /// reopened WITHOUT a pool): read, verify, build, publish — no
  /// budget accounting, so the page stays resident once hydrated.
  /// `*won` reports whether this call published the payload.
  static const CompressedColumn* LoadColdPayload(SegmentPage* page,
                                                 bool* won);

  /// O(1) single-value demand read: serve a point read of one slot of
  /// a COLD fixed-width segment by reading exactly `width` bytes from
  /// the store — no inflation, no residency or clock-state change.
  /// Returns false (caller pins as usual) when the page is resident,
  /// varint-coded, or storeless — or once the page has absorbed
  /// kColdReadPromotion slot reads since it last went cold: a page
  /// that hot deserves residency, so declining hands it to the pin
  /// path, which hydrates it and serves every later read from memory
  /// (one pread per read forever would be the wrong steady state).
  /// Trade-off, mirroring an mmap'd read: the whole-payload checksum
  /// is only verified on full hydration, so a flipped bit inside the
  /// slot bytes is served as-is here —
  /// DurabilityOptions::verify_segment_store_on_open covers
  /// deployments that need eager integrity.
  static bool ReadColdSlot(SegmentPage* page, uint32_t slot, Value* out);

  /// Cold slot reads a page absorbs before ReadColdSlot declines and
  /// the next point read hydrates it (reset at each eviction).
  static constexpr uint32_t kColdReadPromotion = 8;

  /// Evict cold clean frames until bytes_resident <= budget (bounded
  /// sweep; public so tests can force the invariant point).
  void EnforceBudget();

  BufferPoolStats stats() const;
  uint64_t budget_bytes() const { return budget_; }

  /// Wire the engine event log (nullable): EnforceBudget emits
  /// `budget_pressure` (warn) when a sweep cannot get back under
  /// budget — the pinned working set alone exceeds it — and
  /// `budget_relieved` (info) once a later sweep succeeds.
  void set_event_log(EventLog* events) {
    events_.store(events, std::memory_order_release);
  }

  /// Value of the LSTORE_BUFFER_POOL_BYTES test knob (0 = unset): CI
  /// uses it to force every suite through the miss/evict path.
  static uint64_t EnvBudgetBytes();

 private:
  const CompressedColumn* Load(SegmentPage* page);
  /// Remove a page from the clock ring; caller holds mu_.
  void UnlinkLocked(SegmentPage* page);
  void CountHit();
  /// Record the post-sweep pressure state, emitting an event on each
  /// transition (see set_event_log).
  void NoteBudgetPressure(bool over);

  const uint64_t budget_;
  std::atomic<EventLog*> events_{nullptr};
  std::atomic<bool> over_budget_{false};
  /// Hit counting is the only pool-global write on the read hot path;
  /// shard it so point reads across threads do not all RMW one cache
  /// line. stats() sums the shards.
  static constexpr size_t kHitShards = 16;
  struct alignas(64) HitShard {
    std::atomic<uint64_t> n{0};
  };
  HitShard hits_[kHitShards];
  std::atomic<uint64_t> cold_point_reads_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> bytes_resident_{0};
  std::atomic<uint64_t> pages_{0};

  /// Held across one whole eviction pass (victim collection, retire,
  /// reclaim). DetachDomain takes it too, so a table being destroyed
  /// waits out any in-flight pass that may have collected its pages —
  /// no retire can land in an EpochManager after its table detached.
  /// Order: evict_mu_ before mu_.
  std::mutex evict_mu_;
  std::mutex mu_;  ///< clock ring structure + hand
  SegmentPage* clock_hand_ = nullptr;
  uint64_t ring_size_ = 0;
};

}  // namespace lstore

#endif  // LSTORE_BUFFER_BUFFER_POOL_H_
