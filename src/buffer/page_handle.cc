#include "buffer/page_handle.h"

namespace lstore {

PageHandle::PageHandle(SegmentPage* page) : page_(page) {
  if (page_ == nullptr) return;
  // Pin BEFORE resolving: from here on the eviction sweep skips this
  // frame, so the pointer below stays resident for the handle's life.
  page_->pins_.fetch_add(1, std::memory_order_acq_rel);
  BufferPool* pool = page_->pool_.load(std::memory_order_acquire);
  if (pool != nullptr) {
    col_ = pool->Acquire(page_);
    return;
  }
  // Pool-less page: resident since construction — or a lazily
  // restored segment on a database reopened without a pool, which
  // hydrates on first touch and then stays resident.
  col_ = page_->payload_.load(std::memory_order_acquire);
  if (col_ == nullptr && page_->evictable()) {
    bool won = false;
    col_ = BufferPool::LoadColdPayload(page_, &won);
  }
}

void PageHandle::Release() {
  if (page_ != nullptr) {
    page_->pins_.fetch_sub(1, std::memory_order_acq_rel);
  }
  page_ = nullptr;
  col_ = nullptr;
}

}  // namespace lstore
