// PageHandle: RAII pin of one buffer-managed segment page.
//
// While the handle lives, the payload stays resident (the eviction
// sweep skips pinned frames) and the pointer it resolved stays valid.
// Construction demand-loads cold pages from the table's SegmentStore.
//
// Contract: a PageHandle must be held under an EpochGuard of the
// owning table. The guard — which every base-data reader already
// holds — is what makes the pin/evict race benign: a reader that pins
// just after the evictor's pin check reads a retired-but-not-freed
// copy of the same immutable bytes (see buffer/buffer_pool.h).

#ifndef LSTORE_BUFFER_PAGE_HANDLE_H_
#define LSTORE_BUFFER_PAGE_HANDLE_H_

#include "buffer/buffer_pool.h"
#include "common/types.h"
#include "storage/compressed_column.h"

namespace lstore {

class PageHandle {
 public:
  PageHandle() = default;
  explicit PageHandle(SegmentPage* page);
  ~PageHandle() { Release(); }

  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  PageHandle(PageHandle&& other) noexcept
      : page_(other.page_), col_(other.col_) {
    other.page_ = nullptr;
    other.col_ = nullptr;
  }
  PageHandle& operator=(PageHandle&& other) noexcept {
    if (this != &other) {
      Release();
      page_ = other.page_;
      col_ = other.col_;
      other.page_ = nullptr;
      other.col_ = nullptr;
    }
    return *this;
  }

  Value Get(size_t i) const { return col_->Get(i); }
  CompressedColumn::Cursor cursor() const { return col_->cursor(); }

  const CompressedColumn* get() const { return col_; }
  const CompressedColumn* operator->() const { return col_; }
  explicit operator bool() const { return col_ != nullptr; }

 private:
  void Release();

  SegmentPage* page_ = nullptr;
  const CompressedColumn* col_ = nullptr;
};

}  // namespace lstore

#endif  // LSTORE_BUFFER_PAGE_HANDLE_H_
