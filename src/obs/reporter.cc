#include "obs/reporter.h"

#include <chrono>
#include <cstdio>

namespace lstore {

StatsReporter::StatsReporter(std::string path, uint64_t interval_ms,
                             std::function<MetricsSnapshot()> snapshot_fn,
                             std::shared_ptr<Heartbeat> hb)
    : path_(std::move(path)),
      interval_ms_(interval_ms == 0 ? 1 : interval_ms),
      snapshot_fn_(std::move(snapshot_fn)),
      hb_(std::move(hb)) {
  thread_ = std::thread(&StatsReporter::Loop, this);
}

void StatsReporter::Stop() {
  {
    std::lock_guard<std::mutex> g(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void StatsReporter::Loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    cv_.wait_for(lk, std::chrono::milliseconds(interval_ms_),
                 [this] { return stop_; });
    if (stop_) break;
    lk.unlock();
    {
      HeartbeatWorkScope work(hb_.get());
      WriteLine();
    }
    lk.lock();
  }
  lk.unlock();
  // One final line so short-lived runs still leave a record.
  WriteLine();
}

void StatsReporter::WriteLine() {
  std::string line = snapshot_fn_().RenderJson();
  line.push_back('\n');
  // Open-append-close per tick: rotation-safe by construction.
  std::FILE* f = std::fopen(path_.c_str(), "a");
  if (f == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), f);
  std::fclose(f);
}

}  // namespace lstore
