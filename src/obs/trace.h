// Lightweight stage tracing: an RAII scope that records its own
// duration (nanoseconds) into a Histogram, compiled to NOTHING when
// tracing is disabled.
//
// Usage — per-stage latency with one line at the top of a scope:
//
//   Histogram* h = registry->GetHistogram("lstore_merge_update_ns");
//   ...
//   { LSTORE_TRACE(h); RunUpdateMerge(range); }
//
// The macro expands to a TraceScope local when LSTORE_TRACE_ENABLED
// (the default; CMake option LSTORE_TRACING=OFF defines it to 0) and
// to nothing otherwise — zero overhead when disabled, by construction.
// A null histogram is also free of effect, so call sites never need a
// null check. For multi-stage timing inside one scope, branch on
// kTraceEnabled and use NowNanos() directly:
//
//   uint64_t t0 = kTraceEnabled ? NowNanos() : 0;
//   ...stage...
//   if (kTraceEnabled && hist != nullptr) hist->Record(NowNanos() - t0);

#ifndef LSTORE_OBS_TRACE_H_
#define LSTORE_OBS_TRACE_H_

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

#ifndef LSTORE_TRACE_ENABLED
#define LSTORE_TRACE_ENABLED 1
#endif

namespace lstore {

/// Monotonic clock reading in nanoseconds (steady across suspends of
/// the wall clock; the only clock timing sites use).
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// True when stage tracing is compiled in: timing sites branch on this
/// so a disabled build pays not even the clock reads.
inline constexpr bool kTraceEnabled = LSTORE_TRACE_ENABLED != 0;

/// RAII duration recorder; null-safe (hist == nullptr records nothing).
class TraceScope {
 public:
  explicit TraceScope(Histogram* hist)
      : hist_(hist), start_(hist != nullptr ? NowNanos() : 0) {}
  ~TraceScope() {
    if (hist_ != nullptr) hist_->Record(NowNanos() - start_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Histogram* hist_;
  uint64_t start_;
};

}  // namespace lstore

#if LSTORE_TRACE_ENABLED
#define LSTORE_TRACE_CAT2(a, b) a##b
#define LSTORE_TRACE_CAT(a, b) LSTORE_TRACE_CAT2(a, b)
#define LSTORE_TRACE(hist) \
  ::lstore::TraceScope LSTORE_TRACE_CAT(lstore_trace_scope_, __LINE__)(hist)
#else
#define LSTORE_TRACE(hist) \
  do {                     \
  } while (false)
#endif

#endif  // LSTORE_OBS_TRACE_H_
