// Slow-op log: when a traced request's total latency exceeds
// DurabilityOptions::slow_op_threshold_us, its assembled span timeline
// is dumped as one JSON line to <dir>/slowops.log — so the tail of the
// latency distribution explains itself without anyone having been
// watching.
//
// Line schema (one object per line, append-only):
//
//   {"ts_ms":<wall clock>,"op":"<op name>","request_id":<u32>,
//    "trace_id":"0x<hex>","total_us":<double>,
//    "spans":[{"name":"...","t0_ns":<u64>,"dur_ns":<u64>,"tid":<u64>},...]}
//
// Span t0s are monotonic-clock nanoseconds (the recorder's clock), so
// offsets *within* a line are exact; ts_ms anchors the line in wall
// time. Writes use the reporter's rotation-safe idiom: open-append-
// close per line, so `mv slowops.log slowops.log.1` just works.
//
// This class compiles in every build (it only needs the unconditional
// TraceSpan struct); under LSTORE_TRACING=OFF no caller ever has spans
// to dump, so it is simply never constructed.

#ifndef LSTORE_OBS_SLOW_OP_LOG_H_
#define LSTORE_OBS_SLOW_OP_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace lstore {

class SlowOpLog {
 public:
  /// `threshold_us` must be > 0 (the owner gates construction on it).
  /// `slow_ops_total` (nullable) is incremented once per dumped line.
  /// With `max_bytes` > 0 the file rotates to <path>.1 once it
  /// reaches the bound (DurabilityOptions::slow_op_log_max_bytes).
  SlowOpLog(std::string path, uint64_t threshold_us, Counter* slow_ops_total,
            uint64_t max_bytes = 0);

  SlowOpLog(const SlowOpLog&) = delete;
  SlowOpLog& operator=(const SlowOpLog&) = delete;

  /// The dump threshold in nanoseconds (callers compare before paying
  /// for the span snapshot).
  uint64_t threshold_ns() const { return threshold_ns_; }

  /// Append one slow-op line. `spans` is the request's timeline
  /// (typically FlightRecorder::SnapshotTrace(trace_id)); `op` must be
  /// a static or otherwise outliving string.
  void Dump(uint64_t trace_id, const char* op, uint32_t request_id,
            uint64_t total_ns, const std::vector<TraceSpan>& spans);

  const std::string& path() const { return path_; }

 private:
  const std::string path_;
  const uint64_t threshold_ns_;
  Counter* const slow_ops_total_;
  const uint64_t max_bytes_;  ///< 0 = unbounded
  std::mutex mu_;  ///< serializes concurrent dumps into the file
};

}  // namespace lstore

#endif  // LSTORE_OBS_SLOW_OP_LOG_H_
