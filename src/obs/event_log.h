// Structured engine event log: lifecycle transitions (checkpoint
// begin/end, log truncation, archive seal, retention eviction,
// buffer-pool budget pressure, admission-control engage/disengage,
// watchdog verdict changes, server start/stop) recorded as typed
// events into a bounded in-memory ring AND — on a durable database —
// appended as JSON lines to <dir>/events.log.
//
// Line schema (one object per line, append-only):
//
//   {"ts_ms":<wall clock>,"severity":"info|warn|error",
//    "actor":"<subsystem>","kind":"<event kind>", <fields...>}
//
// `fields` is a pre-rendered JSON fragment (`"key":value,...`) the
// emitter supplies, spliced into the top-level object — events stay
// flat and grep-able. File writes use the reporter's rotation-safe
// idiom (open-append-close per line) plus an optional size bound:
// when the file exceeds `max_bytes` it is renamed to `<path>.1`
// first, so the pair bounds disk usage at ~2x the limit. Events are
// rare (lifecycle edges, not per-request), so a mutex-guarded ring is
// plenty — nothing here is on a hot path.

#ifndef LSTORE_OBS_EVENT_LOG_H_
#define LSTORE_OBS_EVENT_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace lstore {

enum class EventSeverity : uint8_t {
  kInfo = 0,
  kWarn = 1,
  kError = 2,
};

/// Stable lowercase name ("info" / "warn" / "error").
const char* EventSeverityName(EventSeverity sev);

struct Event {
  uint64_t ts_ms = 0;  ///< wall-clock milliseconds since epoch
  EventSeverity severity = EventSeverity::kInfo;
  std::string actor;   ///< emitting subsystem ("checkpointer", "server", ...)
  std::string kind;    ///< event kind ("checkpoint_begin", "watchdog", ...)
  /// JSON fragment without braces (`"checkpoint_id":3,"tables":2`);
  /// empty = no extra fields. Spliced verbatim into the rendered line,
  /// so emitters must pass valid JSON key/value pairs.
  std::string fields;
};

/// Render one event as its JSON line (no trailing newline).
std::string RenderEventJson(const Event& e);

/// Append `line` (newline included by the caller) to `path` with the
/// rotation-safe open-append-close idiom. With `max_bytes` > 0, a file
/// already at or beyond the bound is renamed to `<path>.1` (replacing
/// any previous `.1`) before the append — shared by events.log and
/// slowops.log so both logs age out the same way.
void AppendLineRotated(const std::string& path, uint64_t max_bytes,
                       std::string_view line);

/// Escape `s` for embedding inside a JSON string literal.
std::string JsonEscape(std::string_view s);

class EventLog {
 public:
  /// Ring-only until Configure() attaches a file.
  explicit EventLog(size_t ring_capacity = 256);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Attach (or replace) the append-only file sink and its rotation
  /// bound; called once at Database::Open before any emitter runs.
  /// `events_total` (nullable) is incremented once per emitted event;
  /// `ring_capacity` > 0 resizes the ring.
  void Configure(std::string path, uint64_t max_bytes,
                 Counter* events_total = nullptr, size_t ring_capacity = 0);

  /// Record one event: ring (evicting the oldest past capacity) plus
  /// one JSON line to the file when configured.
  void Emit(EventSeverity severity, std::string actor, std::string kind,
            std::string fields = std::string());

  /// The newest `max` retained events at or above `min_severity`,
  /// oldest first.
  std::vector<Event> Recent(size_t max,
                            EventSeverity min_severity =
                                EventSeverity::kInfo) const;

  /// Events emitted over the log's lifetime (ring evictions included).
  uint64_t total() const;

  std::string path() const;

 private:
  size_t ring_capacity_;
  mutable std::mutex mu_;
  std::deque<Event> ring_;
  uint64_t total_ = 0;
  std::string path_;        ///< empty = ring only
  uint64_t max_bytes_ = 0;  ///< 0 = unbounded file
  Counter* events_total_ = nullptr;
};

}  // namespace lstore

#endif  // LSTORE_OBS_EVENT_LOG_H_
