#include "obs/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace lstore {

namespace {

// JSON string escaping for span names. Names are static literals under
// our control, but the renderer also feeds files consumed by external
// viewers — escape defensively rather than trust every future literal.
void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
}

}  // namespace

std::string RenderChromeTraceJson(std::vector<TraceSpan> spans) {
  std::sort(spans.begin(), spans.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
              return a.dur_ns > b.dur_ns;  // parents before children
            });
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  char buf[192];
  bool first = true;
  for (const TraceSpan& s : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, s.name != nullptr ? s.name : "?");
    // Complete events with microsecond ts/dur (the unit trace viewers
    // expect); 3 decimals preserves the underlying nanoseconds.
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                  "\"tid\":%" PRIu64 ",\"args\":{\"trace_id\":\"0x%" PRIx64
                  "\"}}",
                  static_cast<double>(s.t0_ns) / 1000.0,
                  static_cast<double>(s.dur_ns) / 1000.0, s.tid, s.trace_id);
    out += buf;
  }
  out += "]}";
  return out;
}

#if LSTORE_TRACE_ENABLED

namespace {

// Liveness registry for recorders, so a thread-exit holder (or a
// holder switching recorders) never releases a ring into a recorder
// that was already destroyed. Instance() is never destroyed, so in
// production this set holds exactly one live entry; tests add theirs.
// Lock order: registry mutex, then FlightRecorder::mu_.
std::mutex& RegistryMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::vector<FlightRecorder*>& LiveRecorders() {
  static std::vector<FlightRecorder*>* v = new std::vector<FlightRecorder*>;
  return *v;
}

bool IsLive(FlightRecorder* r) {
  std::vector<FlightRecorder*>& live = LiveRecorders();
  return std::find(live.begin(), live.end(), r) != live.end();
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

// One span ring, single writer (the owning thread), lock-free readers.
// Each slot is a seqlock: `seq` is odd while the writer is mid-publish,
// and bumps by 2 per completed write; a reader that sees an odd or
// changed sequence skips the slot. All payload fields are relaxed
// atomics so the scheme is data-race-free (and TSan-clean) by
// construction; the fences order payload against `seq`.
struct FlightRecorder::Ring {
  struct Slot {
    std::atomic<uint32_t> seq{0};  ///< 0 = never written
    std::atomic<uint64_t> trace_id{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> t0_ns{0};
    std::atomic<uint64_t> dur_ns{0};
  };

  Ring(size_t cap, uint64_t ord)
      : capacity(cap), mask(cap - 1), ordinal(ord), slots(new Slot[cap]) {}

  void Write(uint64_t trace_id, const char* name, uint64_t t0_ns,
             uint64_t dur_ns) {
    uint64_t h = head.load(std::memory_order_relaxed);
    Slot& s = slots[h & mask];
    uint32_t seq = s.seq.load(std::memory_order_relaxed);
    s.seq.store(seq + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    s.trace_id.store(trace_id, std::memory_order_relaxed);
    s.name.store(name, std::memory_order_relaxed);
    s.t0_ns.store(t0_ns, std::memory_order_relaxed);
    s.dur_ns.store(dur_ns, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    s.seq.store(seq + 2, std::memory_order_release);
    head.store(h + 1, std::memory_order_release);
  }

  /// Append every readable span to `out`. Slots being overwritten at
  /// this instant are skipped (one span per writing thread, at most) —
  /// snapshots are best-effort by design, never blocking the writer.
  void Read(std::vector<TraceSpan>* out) const {
    for (size_t i = 0; i < capacity; ++i) {
      const Slot& s = slots[i];
      uint32_t s1 = s.seq.load(std::memory_order_acquire);
      if (s1 == 0 || (s1 & 1) != 0) continue;
      TraceSpan span;
      span.trace_id = s.trace_id.load(std::memory_order_relaxed);
      span.name = s.name.load(std::memory_order_relaxed);
      span.t0_ns = s.t0_ns.load(std::memory_order_relaxed);
      span.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      uint32_t s2 = s.seq.load(std::memory_order_relaxed);
      if (s1 != s2) continue;
      span.tid = ordinal;
      out->push_back(span);
    }
  }

  const size_t capacity;
  const size_t mask;
  const uint64_t ordinal;
  std::unique_ptr<Slot[]> slots;
  std::atomic<uint64_t> head{0};  ///< spans ever written (monotonic)
};

namespace {

uint64_t NextRecorderId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

// Binds a thread to its ring in one specific recorder, and at thread
// exit returns the ring to that recorder's free list (if the recorder
// is still alive) — so detached-thread churn, e.g. the server's
// per-connection readers, reuses rings instead of growing the registry
// without bound. `owner_id` disambiguates address reuse: a recorder
// destroyed and another allocated at the same address gets a different
// id, so a stale binding is always detected and never written through.
struct ThreadRingHolder {
  FlightRecorder* owner = nullptr;
  uint64_t owner_id = 0;
  FlightRecorder::Ring* ring = nullptr;

  ~ThreadRingHolder() {
    std::lock_guard<std::mutex> reg(RegistryMutex());
    if (ring != nullptr && IsLive(owner) &&
        owner->id_for_bindings() == owner_id) {
      owner->ReleaseRing(ring);
    }
  }
};

namespace {
thread_local ThreadRingHolder g_thread_ring;
}  // namespace

FlightRecorder& FlightRecorder::Instance() {
  // Intentionally leaked: detached threads may record or release rings
  // during any phase of shutdown.
  static FlightRecorder* r = new FlightRecorder();
  return *r;
}

FlightRecorder::FlightRecorder(size_t ring_capacity)
    : ring_capacity_(RoundUpPow2(ring_capacity < 2 ? 2 : ring_capacity)),
      id_(NextRecorderId()) {
  std::lock_guard<std::mutex> reg(RegistryMutex());
  LiveRecorders().push_back(this);
}

FlightRecorder::~FlightRecorder() {
  std::lock_guard<std::mutex> reg(RegistryMutex());
  std::vector<FlightRecorder*>& live = LiveRecorders();
  live.erase(std::remove(live.begin(), live.end(), this), live.end());
}

FlightRecorder::Ring* FlightRecorder::AcquireRing() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_.empty()) {
    Ring* r = free_.back();
    free_.pop_back();
    return r;
  }
  rings_.push_back(
      std::make_unique<Ring>(ring_capacity_, static_cast<uint64_t>(
                                                 rings_.size())));
  return rings_.back().get();
}

void FlightRecorder::ReleaseRing(Ring* ring) {
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(ring);
}

FlightRecorder::Ring* FlightRecorder::RingForThisThread() {
  ThreadRingHolder& b = g_thread_ring;
  if (b.owner == this && b.owner_id == id_) return b.ring;
  // Bound to a different (or dead) recorder: return that ring if its
  // owner still lives, then bind here. Rare — only recorder switches.
  {
    std::lock_guard<std::mutex> reg(RegistryMutex());
    if (b.ring != nullptr && IsLive(b.owner) &&
        b.owner->id_for_bindings() == b.owner_id) {
      b.owner->ReleaseRing(b.ring);
    }
  }
  b.owner = this;
  b.owner_id = id_;
  b.ring = AcquireRing();
  return b.ring;
}

void FlightRecorder::Record(uint64_t trace_id, const char* name,
                            uint64_t t0_ns, uint64_t dur_ns) {
  RingForThisThread()->Write(trace_id, name, t0_ns, dur_ns);
}

std::vector<TraceSpan> FlightRecorder::Snapshot() const {
  std::vector<TraceSpan> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::unique_ptr<Ring>& r : rings_) r->Read(&out);
  }
  std::sort(out.begin(), out.end(), [](const TraceSpan& a, const TraceSpan& b) {
    return a.t0_ns < b.t0_ns;
  });
  return out;
}

std::vector<TraceSpan> FlightRecorder::SnapshotTrace(uint64_t trace_id) const {
  std::vector<TraceSpan> all = Snapshot();
  std::vector<TraceSpan> out;
  for (const TraceSpan& s : all) {
    if (s.trace_id == trace_id) out.push_back(s);
  }
  return out;
}

uint64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const std::unique_ptr<Ring>& r : rings_) {
    uint64_t head = r->head.load(std::memory_order_relaxed);
    if (head > r->capacity) total += head - r->capacity;
  }
  return total;
}

uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const std::unique_ptr<Ring>& r : rings_) {
    total += r->head.load(std::memory_order_relaxed);
  }
  return total;
}

std::string FlightRecorder::RenderChromeTrace() const {
  return RenderChromeTraceJson(Snapshot());
}

#endif  // LSTORE_TRACE_ENABLED

}  // namespace lstore
