// Background stats reporter: appends one JSON MetricsSnapshot line to
// a file every interval, so a run leaves a post-mortem timeline
// (<dir>/metrics.log) without any in-process consumer. Enabled by
// DurabilityOptions::metrics_report_interval_ms.
//
// The file is opened, appended, and closed on every tick — never held
// across ticks — so an operator can rotate (rename or delete) the log
// at any moment: the next tick recreates it. Stop() joins the thread;
// Database teardown stops the reporter before anything it samples.

#ifndef LSTORE_OBS_REPORTER_H_
#define LSTORE_OBS_REPORTER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/health.h"
#include "obs/metrics.h"

namespace lstore {

class StatsReporter {
 public:
  /// Starts the thread. `snapshot_fn` is called once per tick on the
  /// reporter thread; it must stay valid until Stop(). `hb` (nullable)
  /// is beaten once per tick so the watchdog can spot a wedged
  /// reporter.
  StatsReporter(std::string path, uint64_t interval_ms,
                std::function<MetricsSnapshot()> snapshot_fn,
                std::shared_ptr<Heartbeat> hb = nullptr);
  ~StatsReporter() { Stop(); }

  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

  /// Writes one final line, then joins. Idempotent.
  void Stop();

  const std::string& path() const { return path_; }

 private:
  void Loop();
  void WriteLine();

  std::string path_;
  uint64_t interval_ms_;
  std::function<MetricsSnapshot()> snapshot_fn_;
  std::shared_ptr<Heartbeat> hb_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace lstore

#endif  // LSTORE_OBS_REPORTER_H_
