// Flight recorder: per-thread lock-free span rings behind the
// request-scoped tracing layer (src/obs/span.h).
//
// Every traced stage records a closed span {trace_id, name, t0, dur}
// into the ring of the thread it ran on. The rings are fixed memory,
// always on, and overwrite oldest — like an aircraft flight recorder,
// the last N spans per thread are always available for inspection
// (Database::DumpTrace, the TRACE wire op, the slow-op log), with no
// consumer required in steady state.
//
// Concurrency design:
//
//  - One writer per ring. A thread acquires its ring on first record
//    (from a free list, else freshly allocated) and releases it back
//    at thread exit — so spans survive the thread that wrote them,
//    and memory is bounded by the maximum number of *concurrent*
//    recording threads, not by thread churn (the server's detached
//    per-connection readers would otherwise leak a ring each).
//  - Readers (snapshots) never block writers. Every span field is a
//    relaxed atomic and each slot carries a seqlock sequence (odd
//    while the writer is mid-publish), so a snapshot taken during a
//    wrap reads either the old span or the new one, never a torn mix
//    — and the whole scheme is clean under TSan.
//  - Span names MUST be static string literals: the ring stores the
//    pointer, and a snapshot may outlive any dynamic string.
//
// Compiled out: under LSTORE_TRACING=OFF (LSTORE_TRACE_ENABLED=0) the
// recorder is a stub with the same API — Record is a no-op, Snapshot
// is empty, RenderChromeTrace renders zero events — so call sites
// need no #if.

#ifndef LSTORE_OBS_FLIGHT_RECORDER_H_
#define LSTORE_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace lstore {

/// One closed span, as read out of the recorder. Timestamps are
/// NowNanos() (global monotonic), so spans recorded by different
/// threads on behalf of one trace still order and nest correctly.
struct TraceSpan {
  uint64_t trace_id = 0;
  const char* name = nullptr;  ///< static string literal
  uint64_t t0_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t tid = 0;  ///< recorder ring ordinal (stable per ring)

  uint64_t end_ns() const { return t0_ns + dur_ns; }
};

#if LSTORE_TRACE_ENABLED

class FlightRecorder {
 public:
  /// Spans retained per thread ring. Power of two; at ~40 payload
  /// bytes per slot the default is ~320 KB per recording thread.
  static constexpr size_t kDefaultRingCapacity = 8192;

  /// The process-wide recorder every SpanScope/RecordSpan site uses.
  /// Never destroyed (intentional static leak): detached threads may
  /// release rings into it at any point of shutdown.
  static FlightRecorder& Instance();

  explicit FlightRecorder(size_t ring_capacity = kDefaultRingCapacity);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Record one closed span into the calling thread's ring (acquired
  /// on first use). Wait-free against concurrent snapshots.
  void Record(uint64_t trace_id, const char* name, uint64_t t0_ns,
              uint64_t dur_ns);

  /// Stable copy of every retained span, all rings, sorted by t0.
  std::vector<TraceSpan> Snapshot() const;

  /// The retained spans of one trace, sorted by t0 (slow-op dumps;
  /// scans every ring — fine for the rare-path consumers this serves).
  std::vector<TraceSpan> SnapshotTrace(uint64_t trace_id) const;

  /// Spans overwritten before any snapshot saw them, across all rings
  /// (monotonic; mirrored into lstore_trace_ring_dropped_total).
  uint64_t dropped() const;

  /// Spans ever recorded, across all rings (monotonic).
  uint64_t recorded() const;

  /// Render the current Snapshot() as Chrome trace-event JSON
  /// (chrome://tracing / Perfetto loadable): complete events ("ph":"X")
  /// with microsecond ts/dur, tid = ring ordinal, and the trace id in
  /// args. Events are sorted by ts.
  std::string RenderChromeTrace() const;

  size_t ring_capacity() const { return ring_capacity_; }

 private:
  struct Ring;
  friend struct ThreadRingHolder;

  Ring* AcquireRing();
  void ReleaseRing(Ring* ring);
  Ring* RingForThisThread();

  /// Process-unique recorder id; thread→ring bindings pair it with the
  /// recorder pointer to detect stale bindings across address reuse.
  uint64_t id_for_bindings() const { return id_; }

  const size_t ring_capacity_;  ///< rounded up to a power of two
  const uint64_t id_;

  /// Guards the ring registry and free list only — never the spans.
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::vector<Ring*> free_;
};

#else  // !LSTORE_TRACE_ENABLED

/// Tracing compiled out: same shape, no storage, no work.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultRingCapacity = 0;
  static FlightRecorder& Instance() {
    static FlightRecorder r;
    return r;
  }
  explicit FlightRecorder(size_t = 0) {}
  void Record(uint64_t, const char*, uint64_t, uint64_t) {}
  std::vector<TraceSpan> Snapshot() const { return {}; }
  std::vector<TraceSpan> SnapshotTrace(uint64_t) const { return {}; }
  uint64_t dropped() const { return 0; }
  uint64_t recorded() const { return 0; }
  std::string RenderChromeTrace() const {
    return "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}";
  }
  size_t ring_capacity() const { return 0; }
};

#endif  // LSTORE_TRACE_ENABLED

/// Render `spans` as Chrome trace-event JSON (the free function behind
/// FlightRecorder::RenderChromeTrace; callers with a filtered span set
/// — e.g. one trace — can render it directly). Input need not be
/// sorted; output events are sorted by ts.
std::string RenderChromeTraceJson(std::vector<TraceSpan> spans);

}  // namespace lstore

#endif  // LSTORE_OBS_FLIGHT_RECORDER_H_
