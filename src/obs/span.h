// Request-scoped tracing: trace ids, thread-local propagation, and
// span recording into the flight recorder (src/obs/flight_recorder.h).
//
// A trace id is minted once at the request's origin (client stamping a
// wire frame, or the harness wrapping an in-process op), travels with
// the request across threads (wire header field → server Request →
// worker thread-local → group-commit Request), and tags every span the
// request touches. Propagation inside a thread is a thread-local:
//
//   TraceContext::Scope scope(trace_id);   // set for this stage
//   ...                                     // anything called here
//   uint64_t id = TraceContext::Current();  // sees the id (0 = none)
//
// Spans are recorded closed (after the fact) so the hot path pays two
// clock reads and one ring write, nothing else:
//
//   { SpanScope span("execute");  DoWork(); }          // traced scope
//   RecordSpan(id, "decode", t0_ns, dur_ns);           // manual window
//
// All of it compiles out under LSTORE_TRACING=OFF (same
// LSTORE_TRACE_ENABLED gate as src/obs/trace.h): Current() returns 0,
// Scope/SpanScope are empty, RecordSpan is a no-op — call sites need
// no #if. Span names must be static string literals (the recorder
// stores the pointer).

#ifndef LSTORE_OBS_SPAN_H_
#define LSTORE_OBS_SPAN_H_

#include <atomic>
#include <cstdint>

#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace lstore {

#if LSTORE_TRACE_ENABLED

namespace internal {
inline thread_local uint64_t g_current_trace_id = 0;
}  // namespace internal

class TraceContext {
 public:
  /// The trace id active on this thread; 0 = untraced.
  static uint64_t Current() { return internal::g_current_trace_id; }

  /// Mint a fresh process-unique nonzero trace id.
  static uint64_t NewTraceId() {
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
  }

  /// RAII: set the thread's trace id for a stage, restore on exit
  /// (nesting-safe; Scope(0) deliberately clears — e.g. a worker
  /// picking up an untraced request after a traced one).
  class Scope {
   public:
    explicit Scope(uint64_t trace_id)
        : saved_(internal::g_current_trace_id) {
      internal::g_current_trace_id = trace_id;
    }
    ~Scope() { internal::g_current_trace_id = saved_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    uint64_t saved_;
  };
};

/// Record one closed span for `trace_id` into the flight recorder.
/// No-op when trace_id == 0, so call sites can record unconditionally
/// on paths that serve both traced and untraced requests.
inline void RecordSpan(uint64_t trace_id, const char* name, uint64_t t0_ns,
                       uint64_t dur_ns) {
  if (trace_id == 0) return;
  FlightRecorder::Instance().Record(trace_id, name, t0_ns, dur_ns);
}

/// RAII span covering a scope, attributed to the thread's current
/// trace id (captured at construction). Free when untraced: 0 id
/// skips even the clock read.
class SpanScope {
 public:
  explicit SpanScope(const char* name)
      : trace_id_(TraceContext::Current()),
        name_(name),
        t0_ns_(trace_id_ != 0 ? NowNanos() : 0) {}
  ~SpanScope() {
    if (trace_id_ != 0) {
      RecordSpan(trace_id_, name_, t0_ns_, NowNanos() - t0_ns_);
    }
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  uint64_t trace_id_;
  const char* name_;
  uint64_t t0_ns_;
};

#else  // !LSTORE_TRACE_ENABLED

class TraceContext {
 public:
  static uint64_t Current() { return 0; }
  static uint64_t NewTraceId() { return 0; }
  class Scope {
   public:
    explicit Scope(uint64_t) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
  };
};

inline void RecordSpan(uint64_t, const char*, uint64_t, uint64_t) {}

class SpanScope {
 public:
  explicit SpanScope(const char*) {}
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
};

#endif  // LSTORE_TRACE_ENABLED

}  // namespace lstore

#endif  // LSTORE_OBS_SPAN_H_
