#include "obs/event_log.h"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace lstore {

namespace {

uint64_t WallClockMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* EventSeverityName(EventSeverity sev) {
  switch (sev) {
    case EventSeverity::kInfo: return "info";
    case EventSeverity::kWarn: return "warn";
    case EventSeverity::kError: return "error";
  }
  return "info";
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RenderEventJson(const Event& e) {
  std::string line;
  line.reserve(96 + e.fields.size());
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{\"ts_ms\":%" PRIu64 ",", e.ts_ms);
  line += buf;
  line += "\"severity\":\"";
  line += EventSeverityName(e.severity);
  line += "\",\"actor\":\"";
  line += JsonEscape(e.actor);
  line += "\",\"kind\":\"";
  line += JsonEscape(e.kind);
  line += '"';
  if (!e.fields.empty()) {
    line += ',';
    line += e.fields;
  }
  line += '}';
  return line;
}

void AppendLineRotated(const std::string& path, uint64_t max_bytes,
                       std::string_view line) {
  if (max_bytes > 0) {
    struct ::stat st;
    if (::stat(path.c_str(), &st) == 0 &&
        static_cast<uint64_t>(st.st_size) >= max_bytes) {
      // Best effort: a failed rename just lets the file keep growing.
      std::rename(path.c_str(), (path + ".1").c_str());
    }
  }
  // Open-append-close per line (reporter idiom): rotation-safe, and a
  // whole line lands in one fwrite so concurrent external readers
  // never see a torn record.
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), f);
  std::fclose(f);
}

EventLog::EventLog(size_t ring_capacity)
    : ring_capacity_(ring_capacity > 0 ? ring_capacity : 1) {}

void EventLog::Configure(std::string path, uint64_t max_bytes,
                         Counter* events_total, size_t ring_capacity) {
  std::lock_guard<std::mutex> g(mu_);
  path_ = std::move(path);
  max_bytes_ = max_bytes;
  events_total_ = events_total;
  if (ring_capacity > 0) {
    ring_capacity_ = ring_capacity;
    while (ring_.size() > ring_capacity_) ring_.pop_front();
  }
}

void EventLog::Emit(EventSeverity severity, std::string actor,
                    std::string kind, std::string fields) {
  Event e;
  e.ts_ms = WallClockMs();
  e.severity = severity;
  e.actor = std::move(actor);
  e.kind = std::move(kind);
  e.fields = std::move(fields);

  std::string line;
  std::string path;
  uint64_t max_bytes = 0;
  Counter* counter = nullptr;
  {
    std::lock_guard<std::mutex> g(mu_);
    ++total_;
    counter = events_total_;
    if (!path_.empty()) {
      line = RenderEventJson(e);
      line += '\n';
      path = path_;
      max_bytes = max_bytes_;
    }
    ring_.push_back(std::move(e));
    while (ring_.size() > ring_capacity_) ring_.pop_front();
  }
  // File I/O outside the ring lock: emitters (checkpointer, watchdog,
  // server) must never serialize on a disk write they didn't issue.
  if (!path.empty()) AppendLineRotated(path, max_bytes, line);
  if (counter != nullptr) counter->Increment();
}

std::vector<Event> EventLog::Recent(size_t max,
                                    EventSeverity min_severity) const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<Event> out;
  // Walk newest-to-oldest collecting matches, then restore order.
  for (auto it = ring_.rbegin(); it != ring_.rend() && out.size() < max;
       ++it) {
    if (it->severity >= min_severity) out.push_back(*it);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

uint64_t EventLog::total() const {
  std::lock_guard<std::mutex> g(mu_);
  return total_;
}

std::string EventLog::path() const {
  std::lock_guard<std::mutex> g(mu_);
  return path_;
}

}  // namespace lstore
