// Engine self-monitoring: heartbeat-based liveness for every
// long-lived background actor, a watchdog that classifies each one
// healthy | slow | stalled against per-actor deadlines, and a typed
// health report surfaced through Database::Health() / the HEALTH wire
// op / `lstore_cli status`.
//
// Model: each background loop (merge threads, the checkpointer, the
// group-commit leader, the stats reporter, server workers,
// per-connection readers) registers a named Heartbeat and brackets
// its work:
//
//   auto hb = registry->Register("merge:orders");
//   ...
//   hb->BeginWork();   // busy = true, beat
//   ...long task, beating at natural progress points: hb->Beat()...
//   hb->EndWork();     // beat, busy = false
//
// A beat is one relaxed atomic store of the registry clock — zero
// hot-path cost. Classification is busy-scoped: an IDLE actor (parked
// on its condition variable waiting for work) is always healthy no
// matter how long ago it beat — only an actor that began work and
// then went silent past its deadline is slow (past `slow_ms`) or
// stalled (past `stall_ms`). That distinction is what lets the merge
// thread block indefinitely on an empty queue without tripping the
// watchdog.
//
// The registry holds weak_ptrs, so an actor's teardown (dropping its
// shared_ptr) unregisters it implicitly — no teardown-order
// obligations between actors and the watchdog beyond "stop the
// watchdog before destroying the registry".
//
// The clock is injectable (a plain function pointer, swapped
// atomically) and shared by beats and sweeps, so tests drive
// stall/recovery transitions with a fake clock and zero wall-clock
// sleeps.
//
// The Watchdog publishes verdict counts as lstore_health_* gauges,
// emits a `watchdog` event on every verdict change, and on a *new*
// stall writes a one-shot flight-recorder dump to
// <dir>/stall-<actor>-<ts>.trace.json — one dump per stall episode,
// re-armed only when the actor recovers.

#ifndef LSTORE_OBS_HEALTH_H_
#define LSTORE_OBS_HEALTH_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics.h"

namespace lstore {

class HealthRegistry;

enum class HealthVerdict : uint8_t {
  kHealthy = 0,
  kSlow = 1,
  kStalled = 2,
};

/// Stable lowercase name ("healthy" / "slow" / "stalled").
const char* HealthVerdictName(HealthVerdict v);

/// One actor's liveness handle. All methods are relaxed-atomic stores
/// and safe from any thread; the owning actor drops its shared_ptr at
/// teardown to unregister.
class Heartbeat {
 public:
  /// Record liveness (while busy, at natural progress points).
  void Beat();
  /// Enter a unit of work: beat + mark busy. Only busy actors can be
  /// classified slow/stalled.
  void BeginWork();
  /// Leave the unit of work: beat + mark idle.
  void EndWork();

  const std::string& name() const { return name_; }
  uint64_t slow_ms() const { return slow_ms_; }
  uint64_t stall_ms() const { return stall_ms_; }
  bool busy() const { return busy_.load(std::memory_order_relaxed); }
  uint64_t beats() const { return beats_.load(std::memory_order_relaxed); }
  uint64_t last_beat_ns() const {
    return last_beat_ns_.load(std::memory_order_relaxed);
  }

 private:
  friend class HealthRegistry;
  Heartbeat(const HealthRegistry* registry, std::string name,
            uint64_t slow_ms, uint64_t stall_ms);

  const HealthRegistry* const registry_;  ///< clock source (outlives us)
  const std::string name_;
  const uint64_t slow_ms_;
  const uint64_t stall_ms_;
  std::atomic<uint64_t> last_beat_ns_;
  std::atomic<bool> busy_{false};
  std::atomic<uint64_t> beats_{0};
};

/// RAII BeginWork/EndWork bracket covering a scope (early returns
/// included). Null-safe so call sites need no heartbeat check.
class HeartbeatWorkScope {
 public:
  explicit HeartbeatWorkScope(Heartbeat* hb) : hb_(hb) {
    if (hb_ != nullptr) hb_->BeginWork();
  }
  ~HeartbeatWorkScope() {
    if (hb_ != nullptr) hb_->EndWork();
  }
  HeartbeatWorkScope(const HeartbeatWorkScope&) = delete;
  HeartbeatWorkScope& operator=(const HeartbeatWorkScope&) = delete;

 private:
  Heartbeat* hb_;
};

/// The set of live heartbeats plus the (injectable) clock they and
/// the watchdog share.
class HealthRegistry {
 public:
  using ClockFn = uint64_t (*)();

  /// Default deadlines: generous enough that a legitimately busy
  /// actor on a loaded CI machine (TSan, cold caches) never trips
  /// them between natural beat points.
  static constexpr uint64_t kDefaultSlowMs = 1000;
  static constexpr uint64_t kDefaultStallMs = 10000;

  HealthRegistry();

  HealthRegistry(const HealthRegistry&) = delete;
  HealthRegistry& operator=(const HealthRegistry&) = delete;

  /// Register a named actor. The returned shared_ptr is the
  /// registration: dropping it unregisters (the registry keeps only a
  /// weak_ptr). `slow_ms`/`stall_ms` of 0 take the registry defaults.
  std::shared_ptr<Heartbeat> Register(std::string name, uint64_t slow_ms = 0,
                                      uint64_t stall_ms = 0);

  /// Replace the default per-actor deadlines applied by Register
  /// (existing registrations keep theirs).
  void set_default_deadlines(uint64_t slow_ms, uint64_t stall_ms);

  /// Inject a clock (monotonic nanoseconds) shared by every Beat()
  /// and by watchdog sweeps, so fake-clock tests are coherent. Must
  /// be a race-free function (e.g. reading one atomic).
  void SetClockForTest(ClockFn clock);

  uint64_t NowNs() const {
    return clock_.load(std::memory_order_relaxed)();
  }

  /// Live heartbeats (expired registrations pruned as a side effect).
  std::vector<std::shared_ptr<Heartbeat>> Snapshot();

 private:
  std::atomic<ClockFn> clock_;
  mutable std::mutex mu_;
  std::vector<std::weak_ptr<Heartbeat>> actors_;
  uint64_t default_slow_ms_ = kDefaultSlowMs;
  uint64_t default_stall_ms_ = kDefaultStallMs;
};

/// One actor's row in a health report.
struct ActorHealth {
  std::string name;
  HealthVerdict verdict = HealthVerdict::kHealthy;
  bool busy = false;
  uint64_t since_beat_ms = 0;  ///< now - last beat (sweep clock)
  uint64_t beats = 0;
  uint64_t slow_ms = 0;   ///< the actor's deadlines
  uint64_t stall_ms = 0;
};

struct HealthReport {
  std::vector<ActorHealth> actors;  ///< sorted by name
  uint64_t healthy = 0;
  uint64_t slow = 0;
  uint64_t stalled = 0;
  std::vector<Event> recent_events;  ///< oldest first
};

/// Render a report as one JSON document (the `lstore_cli status
/// --json` shape, also scraped by CI).
std::string RenderHealthJson(const HealthReport& report);

/// Sweeps the registry: classifies every actor, publishes
/// lstore_health_{healthy,slow,stalled} gauges, emits a `watchdog`
/// event on each verdict change, and dumps the flight recorder once
/// per new stall episode. SweepOnce() is public so fake-clock tests
/// (and Database::Health()) drive sweeps without the background
/// thread.
class Watchdog {
 public:
  /// `dump_fn` supplies the flight-recorder JSON written on a new
  /// stall (empty dump dir = dumps disabled). `events` and `metrics`
  /// are nullable.
  Watchdog(HealthRegistry* registry, EventLog* events,
           MetricsRegistry* metrics, std::function<std::string()> dump_fn);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Directory receiving stall-<actor>-<ts>.trace.json dumps; unset
  /// (empty) on an in-memory database.
  void set_dump_dir(std::string dir);

  /// Start/stop the background sweep thread (interval 0 = no thread;
  /// SweepOnce is still usable). Stop() joins; idempotent.
  void Start(uint64_t interval_ms);
  void Stop();

  /// One sweep: classify, publish, emit, dump. Returns the actor rows
  /// (sorted by name) with verdict counts via the report fields.
  HealthReport SweepOnce();

  /// Flight-recorder dumps written (tests: exactly one per episode).
  uint64_t stall_dumps() const {
    return stall_dumps_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  /// Per-actor episode memory, keyed by name: previous verdict (for
  /// change events) and whether this stall episode already dumped.
  struct ActorState {
    HealthVerdict verdict = HealthVerdict::kHealthy;
    bool dumped = false;
    bool seen = false;  ///< sweep-liveness mark (dead actors pruned)
  };

  HealthRegistry* const registry_;
  EventLog* const events_;
  std::function<std::string()> dump_fn_;
  std::atomic<uint64_t> stall_dumps_{0};

  // Registry handles (null when no metrics registry was wired).
  Gauge* g_healthy_ = nullptr;
  Gauge* g_slow_ = nullptr;
  Gauge* g_stalled_ = nullptr;
  Gauge* g_actors_ = nullptr;

  std::mutex sweep_mu_;  ///< serializes sweeps; guards state_/dump_dir_
  std::unordered_map<std::string, ActorState> state_;
  std::string dump_dir_;

  std::mutex thread_mu_;
  std::condition_variable cv_;
  bool running_ = false;
  uint64_t interval_ms_ = 0;
  std::thread thread_;
};

}  // namespace lstore

#endif  // LSTORE_OBS_HEALTH_H_
