// Engine-wide observability: a lock-cheap metrics registry.
//
// The paper's central claim (Section 6) is that lineage-based storage
// keeps OLTP latency flat while merges and scans run concurrently —
// a claim one can only check with per-stage latency distributions, not
// averages. This registry is the engine's shared substrate for that:
//
//  - Counter: monotonically increasing, sharded 16-way over
//    cache-line-padded atomics so concurrent committers never contend
//    on one line. Add() is a single relaxed fetch_add on the caller's
//    thread-affine shard.
//  - Gauge: a point-in-time level (buffer-pool residency, epoch queue
//    depth). Single atomic; set from one place or via a snapshot-time
//    collector.
//  - Histogram: fixed-bucket log-scale latency distribution. Buckets
//    cover [0, 2^62) with <= 25% relative width (4 sub-buckets per
//    power of two), so p50/p95/p99/p999 come out of a snapshot with
//    bounded error and NO per-record allocation or lock. Recording is
//    one relaxed fetch_add on a sharded bucket. A snapshot derives the
//    total count as the sum of its bucket counts — percentiles are
//    computed against that same sum, so a snapshot racing concurrent
//    Record()s can never observe torn percentiles (a quantile always
//    lies inside the snapshotted distribution).
//
// Registry handles are stable for the registry's lifetime: look a
// metric up once (GetCounter/GetGauge/GetHistogram), cache the
// pointer, and record through it forever. Lookup takes a mutex; the
// hot path never does.
//
// Snapshot() runs registered collectors first (cheap mirror-in
// callbacks for subsystems that keep their own counters, e.g. the
// buffer pool), then copies every metric into a MetricsSnapshot that
// renders as Prometheus exposition text or one JSON line.

#ifndef LSTORE_OBS_METRICS_H_
#define LSTORE_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lstore {

namespace obs_internal {
/// Thread-affine shard index in [0, nshards): cheap, stable per
/// thread, assigned round-robin so shards stay balanced regardless of
/// how the OS hands out thread ids.
unsigned ShardIndex(unsigned nshards);
}  // namespace obs_internal

/// Monotonic counter, sharded to keep concurrent Add()s off one cache
/// line. value() sums the shards (racy reads are fine: each shard is
/// monotone, so the sum never goes backwards between calls).
class Counter {
 public:
  static constexpr unsigned kShards = 16;

  void Add(uint64_t delta) {
    shards_[obs_internal::ShardIndex(kShards)].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t value() const {
    uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Point-in-time level. Signed: queue depths and deltas may dip.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Snapshot of one histogram: bucket counts plus derived stats. The
/// count is DERIVED (sum of buckets), so percentiles computed from it
/// are internally consistent even when the snapshot raced recordings.
struct HistogramSnapshot {
  std::vector<uint64_t> buckets;        ///< per-bucket counts
  std::vector<uint64_t> upper_bounds;   ///< inclusive bucket upper bounds
  uint64_t count = 0;                   ///< sum of buckets
  uint64_t sum = 0;                     ///< sum of recorded values
  uint64_t max_bound = 0;               ///< upper bound of highest hit bucket

  /// Value at quantile q in [0, 1]: the upper bound of the bucket
  /// containing the q*count-th recording (0 when empty). Bounded
  /// overestimate: true value is within 25% below the returned bound.
  uint64_t Percentile(double q) const;
};

/// Fixed-bucket log-scale histogram. Values < 4 get exact buckets;
/// above that, each power of two splits into 4 sub-buckets, giving
/// <= 25% relative bucket width across the whole range. Bucket counts
/// are sharded 8-way; Record() is one relaxed fetch_add.
class Histogram {
 public:
  static constexpr unsigned kShards = 8;
  /// 4 exact buckets + 4 sub-buckets for each power of two 2..62.
  static constexpr unsigned kBuckets = 4 + 61 * 4;

  void Record(uint64_t v) {
    unsigned s = obs_internal::ShardIndex(kShards);
    shards_[s].buckets[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    shards_[s].sum.fetch_add(v, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;

  /// Bucket index of value v (exposed for tests).
  static unsigned BucketIndex(uint64_t v) {
    if (v < 4) return static_cast<unsigned>(v);
    unsigned b = std::bit_width(v) - 1;           // 2 .. 63
    if (b > 62) b = 62;                           // clamp into last row
    unsigned sub = static_cast<unsigned>((v >> (b - 2)) & 3);
    return (b - 1) * 4 + sub;
  }

  /// Inclusive upper bound of bucket i (exposed for tests).
  static uint64_t BucketUpperBound(unsigned i) {
    if (i < 4) return i;
    unsigned b = i / 4 + 1;
    unsigned sub = i % 4;
    return ((4ull + sub + 1) << (b - 2)) - 1;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[kBuckets];
    std::atomic<uint64_t> sum{0};
    Shard() {
      for (auto& x : buckets) x.store(0, std::memory_order_relaxed);
    }
  };
  Shard shards_[kShards];
};

/// One consistent copy of every registered metric, renderable as
/// Prometheus exposition text or a single JSON line. Histograms whose
/// name ends in `_ns` hold nanoseconds (the convention every timing
/// site follows).
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name, help;
    uint64_t value;
  };
  struct GaugeEntry {
    std::string name, help;
    int64_t value;
  };
  struct HistogramEntry {
    std::string name, help;
    HistogramSnapshot hist;
  };
  std::vector<CounterEntry> counters;      ///< sorted by name
  std::vector<GaugeEntry> gauges;          ///< sorted by name
  std::vector<HistogramEntry> histograms;  ///< sorted by name

  const CounterEntry* FindCounter(const std::string& name) const;
  const GaugeEntry* FindGauge(const std::string& name) const;
  const HistogramEntry* FindHistogram(const std::string& name) const;

  /// Counter value by name (0 when absent) — the bench-friendly
  /// accessor for before/after deltas.
  uint64_t CounterValue(const std::string& name) const;

  /// Prometheus text exposition format (version 0.0.4): counters and
  /// gauges as plain samples, histograms as summaries with
  /// quantile="0.5|0.95|0.99|0.999" plus _sum and _count.
  std::string RenderPrometheus() const;

  /// One JSON line: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum,p50,p95,p99,p999,max}}}.
  std::string RenderJson() const;
};

/// Name-keyed registry of counters/gauges/histograms with stable
/// addresses. Get* is idempotent: the first call creates, later calls
/// return the same handle (help text of the first call wins).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "");

  /// Register a callback run at the start of every Snapshot(), for
  /// subsystems that keep internal counters and mirror them into
  /// gauges on demand (buffer pool, epoch queue depth) — zero cost on
  /// their hot paths.
  void AddCollector(std::function<void(MetricsRegistry&)> fn);

  MetricsSnapshot Snapshot() const;

 private:
  template <typename T>
  struct Named {
    std::string help;
    std::unique_ptr<T> metric;
  };
  mutable std::mutex mu_;
  std::map<std::string, Named<Counter>> counters_;
  std::map<std::string, Named<Gauge>> gauges_;
  std::map<std::string, Named<Histogram>> histograms_;
  std::vector<std::function<void(MetricsRegistry&)>> collectors_;
};

}  // namespace lstore

#endif  // LSTORE_OBS_METRICS_H_
