#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace lstore {

namespace obs_internal {

unsigned ShardIndex(unsigned nshards) {
  static std::atomic<unsigned> next{0};
  thread_local unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot % nshards;
}

}  // namespace obs_internal

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

uint64_t HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target recording (1-based, ceil) against the
  // snapshot's OWN count — never a count read elsewhere, so a
  // concurrent recording cannot push the rank past the distribution.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) return upper_bounds[i];
  }
  return max_bound;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kBuckets, 0);
  snap.upper_bounds.resize(kBuckets);
  for (unsigned i = 0; i < kBuckets; ++i) {
    snap.upper_bounds[i] = BucketUpperBound(i);
  }
  for (const auto& s : shards_) {
    for (unsigned i = 0; i < kBuckets; ++i) {
      snap.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    snap.sum += s.sum.load(std::memory_order_relaxed);
  }
  for (unsigned i = 0; i < kBuckets; ++i) {
    snap.count += snap.buckets[i];
    if (snap.buckets[i] != 0) snap.max_bound = snap.upper_bounds[i];
  }
  return snap;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> g(mu_);
  auto& slot = counters_[name];
  if (slot.metric == nullptr) {
    slot.metric = std::make_unique<Counter>();
    slot.help = help;
  }
  return slot.metric.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> g(mu_);
  auto& slot = gauges_[name];
  if (slot.metric == nullptr) {
    slot.metric = std::make_unique<Gauge>();
    slot.help = help;
  }
  return slot.metric.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  std::lock_guard<std::mutex> g(mu_);
  auto& slot = histograms_[name];
  if (slot.metric == nullptr) {
    slot.metric = std::make_unique<Histogram>();
    slot.help = help;
  }
  return slot.metric.get();
}

void MetricsRegistry::AddCollector(std::function<void(MetricsRegistry&)> fn) {
  std::lock_guard<std::mutex> g(mu_);
  collectors_.push_back(std::move(fn));
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  // Run collectors outside mu_ (they call GetGauge/Set on this same
  // registry), on a copy of the collector list.
  std::vector<std::function<void(MetricsRegistry&)>> collectors;
  {
    std::lock_guard<std::mutex> g(mu_);
    collectors = collectors_;
  }
  auto* self = const_cast<MetricsRegistry*>(this);
  for (const auto& fn : collectors) fn(*self);

  MetricsSnapshot snap;
  std::lock_guard<std::mutex> g(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, slot] : counters_) {
    snap.counters.push_back({name, slot.help, slot.metric->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, slot] : gauges_) {
    snap.gauges.push_back({name, slot.help, slot.metric->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, slot] : histograms_) {
    snap.histograms.push_back({name, slot.help, slot.metric->Snapshot()});
  }
  return snap;
}

// ---------------------------------------------------------------------------
// MetricsSnapshot
// ---------------------------------------------------------------------------

const MetricsSnapshot::CounterEntry* MetricsSnapshot::FindCounter(
    const std::string& name) const {
  for (const auto& e : counters) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const MetricsSnapshot::GaugeEntry* MetricsSnapshot::FindGauge(
    const std::string& name) const {
  for (const auto& e : gauges) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const MetricsSnapshot::HistogramEntry* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const auto& e : histograms) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  const CounterEntry* e = FindCounter(name);
  return e != nullptr ? e->value : 0;
}

namespace {

void AppendHeader(std::string* out, const std::string& name,
                  const std::string& help, const char* type) {
  if (!help.empty()) {
    out->append("# HELP ").append(name).append(" ").append(help).append("\n");
  }
  out->append("# TYPE ").append(name).append(" ").append(type).append("\n");
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendI64(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

/// JSON string escaping is unnecessary here: metric names are
/// engine-chosen [a-z0-9_] identifiers. Kept to names only.
void AppendJsonKey(std::string* out, const std::string& name) {
  out->append("\"").append(name).append("\":");
}

}  // namespace

std::string MetricsSnapshot::RenderPrometheus() const {
  std::string out;
  for (const auto& e : counters) {
    AppendHeader(&out, e.name, e.help, "counter");
    out.append(e.name).append(" ");
    AppendU64(&out, e.value);
    out.append("\n");
  }
  for (const auto& e : gauges) {
    AppendHeader(&out, e.name, e.help, "gauge");
    out.append(e.name).append(" ");
    AppendI64(&out, e.value);
    out.append("\n");
  }
  static constexpr struct {
    const char* label;
    double q;
  } kQuantiles[] = {{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99},
                    {"0.999", 0.999}};
  for (const auto& e : histograms) {
    AppendHeader(&out, e.name, e.help, "summary");
    for (const auto& qd : kQuantiles) {
      out.append(e.name)
          .append("{quantile=\"")
          .append(qd.label)
          .append("\"} ");
      AppendU64(&out, e.hist.Percentile(qd.q));
      out.append("\n");
    }
    out.append(e.name).append("_sum ");
    AppendU64(&out, e.hist.sum);
    out.append("\n");
    out.append(e.name).append("_count ");
    AppendU64(&out, e.hist.count);
    out.append("\n");
  }
  return out;
}

std::string MetricsSnapshot::RenderJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& e : counters) {
    if (!first) out.append(",");
    first = false;
    AppendJsonKey(&out, e.name);
    AppendU64(&out, e.value);
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& e : gauges) {
    if (!first) out.append(",");
    first = false;
    AppendJsonKey(&out, e.name);
    AppendI64(&out, e.value);
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& e : histograms) {
    if (!first) out.append(",");
    first = false;
    AppendJsonKey(&out, e.name);
    out.append("{\"count\":");
    AppendU64(&out, e.hist.count);
    out.append(",\"sum\":");
    AppendU64(&out, e.hist.sum);
    out.append(",\"p50\":");
    AppendU64(&out, e.hist.Percentile(0.5));
    out.append(",\"p95\":");
    AppendU64(&out, e.hist.Percentile(0.95));
    out.append(",\"p99\":");
    AppendU64(&out, e.hist.Percentile(0.99));
    out.append(",\"p999\":");
    AppendU64(&out, e.hist.Percentile(0.999));
    out.append(",\"max\":");
    AppendU64(&out, e.hist.max_bound);
    out.append("}");
  }
  out.append("}}");
  return out;
}

}  // namespace lstore
