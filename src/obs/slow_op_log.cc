#include "obs/slow_op_log.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "obs/event_log.h"

namespace lstore {

SlowOpLog::SlowOpLog(std::string path, uint64_t threshold_us,
                     Counter* slow_ops_total, uint64_t max_bytes)
    : path_(std::move(path)),
      threshold_ns_(threshold_us * 1000),
      slow_ops_total_(slow_ops_total),
      max_bytes_(max_bytes) {}

void SlowOpLog::Dump(uint64_t trace_id, const char* op, uint32_t request_id,
                     uint64_t total_ns,
                     const std::vector<TraceSpan>& spans) {
  uint64_t ts_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  std::string line;
  line.reserve(256 + spans.size() * 64);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"ts_ms\":%" PRIu64 ",\"op\":\"%s\",\"request_id\":%u,"
                "\"trace_id\":\"0x%" PRIx64 "\",\"total_us\":%.3f,\"spans\":[",
                ts_ms, op != nullptr ? op : "?", request_id, trace_id,
                static_cast<double>(total_ns) / 1000.0);
  line += buf;
  bool first = true;
  for (const TraceSpan& s : spans) {
    if (!first) line += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"t0_ns\":%" PRIu64 ",\"dur_ns\":%" PRIu64
                  ",\"tid\":%" PRIu64 "}",
                  s.name != nullptr ? s.name : "?", s.t0_ns, s.dur_ns, s.tid);
    line += buf;
  }
  line += "]}\n";

  std::lock_guard<std::mutex> lock(mu_);
  // Open-append-close per line with the shared size-rotation policy
  // (event_log.h): rotation-safe, and a whole line lands in one
  // fwrite so concurrent external readers never see a torn record.
  AppendLineRotated(path_, max_bytes_, line);
  if (slow_ops_total_ != nullptr) slow_ops_total_->Add(1);
}

}  // namespace lstore
