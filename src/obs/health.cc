#include "obs/health.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "obs/trace.h"

namespace lstore {

namespace {

uint64_t WallClockMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Actor names become file-name components ("merge:orders" ->
/// "merge_orders"): keep [A-Za-z0-9.-], replace the rest.
std::string SanitizeForFileName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '.' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

const char* HealthVerdictName(HealthVerdict v) {
  switch (v) {
    case HealthVerdict::kHealthy: return "healthy";
    case HealthVerdict::kSlow: return "slow";
    case HealthVerdict::kStalled: return "stalled";
  }
  return "healthy";
}

// ---------------------------------------------------------------------------
// Heartbeat / HealthRegistry
// ---------------------------------------------------------------------------

Heartbeat::Heartbeat(const HealthRegistry* registry, std::string name,
                     uint64_t slow_ms, uint64_t stall_ms)
    : registry_(registry),
      name_(std::move(name)),
      slow_ms_(slow_ms),
      stall_ms_(stall_ms),
      last_beat_ns_(registry->NowNs()) {}

void Heartbeat::Beat() {
  last_beat_ns_.store(registry_->NowNs(), std::memory_order_relaxed);
  beats_.fetch_add(1, std::memory_order_relaxed);
}

void Heartbeat::BeginWork() {
  busy_.store(true, std::memory_order_relaxed);
  Beat();
}

void Heartbeat::EndWork() {
  Beat();
  busy_.store(false, std::memory_order_relaxed);
}

HealthRegistry::HealthRegistry() : clock_(&NowNanos) {}

std::shared_ptr<Heartbeat> HealthRegistry::Register(std::string name,
                                                    uint64_t slow_ms,
                                                    uint64_t stall_ms) {
  std::lock_guard<std::mutex> g(mu_);
  if (slow_ms == 0) slow_ms = default_slow_ms_;
  if (stall_ms == 0) stall_ms = default_stall_ms_;
  auto hb = std::shared_ptr<Heartbeat>(
      new Heartbeat(this, std::move(name), slow_ms, stall_ms));
  actors_.push_back(hb);
  return hb;
}

void HealthRegistry::set_default_deadlines(uint64_t slow_ms,
                                           uint64_t stall_ms) {
  std::lock_guard<std::mutex> g(mu_);
  if (slow_ms > 0) default_slow_ms_ = slow_ms;
  if (stall_ms > 0) default_stall_ms_ = stall_ms;
}

void HealthRegistry::SetClockForTest(ClockFn clock) {
  clock_.store(clock, std::memory_order_relaxed);
}

std::vector<std::shared_ptr<Heartbeat>> HealthRegistry::Snapshot() {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<std::shared_ptr<Heartbeat>> live;
  live.reserve(actors_.size());
  size_t kept = 0;
  for (size_t i = 0; i < actors_.size(); ++i) {
    if (auto hb = actors_[i].lock()) {
      live.push_back(std::move(hb));
      // Compact in place; the no-gap case must not self-move (a
      // moved-from weak_ptr is empty, which would drop the actor).
      if (kept != i) actors_[kept] = std::move(actors_[i]);
      ++kept;
    }
  }
  actors_.resize(kept);
  return live;
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

Watchdog::Watchdog(HealthRegistry* registry, EventLog* events,
                   MetricsRegistry* metrics,
                   std::function<std::string()> dump_fn)
    : registry_(registry), events_(events), dump_fn_(std::move(dump_fn)) {
  if (metrics != nullptr) {
    g_healthy_ = metrics->GetGauge("lstore_health_healthy",
                                   "Background actors classified healthy");
    g_slow_ = metrics->GetGauge(
        "lstore_health_slow",
        "Background actors busy past their slow deadline");
    g_stalled_ = metrics->GetGauge(
        "lstore_health_stalled",
        "Background actors busy past their stall deadline");
    g_actors_ = metrics->GetGauge("lstore_health_actors",
                                  "Registered background actors");
  }
}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::set_dump_dir(std::string dir) {
  std::lock_guard<std::mutex> g(sweep_mu_);
  dump_dir_ = std::move(dir);
}

void Watchdog::Start(uint64_t interval_ms) {
  if (interval_ms == 0) return;
  std::lock_guard<std::mutex> g(thread_mu_);
  if (running_) return;
  running_ = true;
  interval_ms_ = interval_ms;
  thread_ = std::thread([this] { Loop(); });
}

void Watchdog::Stop() {
  {
    std::lock_guard<std::mutex> g(thread_mu_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::Loop() {
  std::unique_lock<std::mutex> lk(thread_mu_);
  while (running_) {
    cv_.wait_for(lk, std::chrono::milliseconds(interval_ms_),
                 [this] { return !running_; });
    if (!running_) break;
    lk.unlock();
    SweepOnce();
    lk.lock();
  }
}

HealthReport Watchdog::SweepOnce() {
  std::lock_guard<std::mutex> g(sweep_mu_);
  const uint64_t now_ns = registry_->NowNs();

  HealthReport report;
  for (auto& hb : registry_->Snapshot()) {
    ActorHealth row;
    row.name = hb->name();
    row.busy = hb->busy();
    row.beats = hb->beats();
    row.slow_ms = hb->slow_ms();
    row.stall_ms = hb->stall_ms();
    uint64_t last = hb->last_beat_ns();
    // A beat stamped after our `now` read (or before a test clock
    // swap) clamps to zero rather than wrapping.
    uint64_t since_ns = now_ns > last ? now_ns - last : 0;
    row.since_beat_ms = since_ns / 1000000;
    // Busy-scoped classification: idle actors are healthy by
    // definition — waiting for work is not a liveness failure.
    if (row.busy && row.since_beat_ms >= row.stall_ms) {
      row.verdict = HealthVerdict::kStalled;
    } else if (row.busy && row.since_beat_ms >= row.slow_ms) {
      row.verdict = HealthVerdict::kSlow;
    } else {
      row.verdict = HealthVerdict::kHealthy;
    }
    report.actors.push_back(std::move(row));
  }
  std::sort(report.actors.begin(), report.actors.end(),
            [](const ActorHealth& a, const ActorHealth& b) {
              return a.name < b.name;
            });

  for (auto& kv : state_) kv.second.seen = false;
  for (const ActorHealth& row : report.actors) {
    switch (row.verdict) {
      case HealthVerdict::kHealthy: ++report.healthy; break;
      case HealthVerdict::kSlow: ++report.slow; break;
      case HealthVerdict::kStalled: ++report.stalled; break;
    }

    ActorState& st = state_[row.name];
    st.seen = true;
    HealthVerdict prev = st.verdict;
    if (row.verdict != prev) {
      st.verdict = row.verdict;
      if (events_ != nullptr) {
        EventSeverity sev =
            row.verdict == HealthVerdict::kStalled ? EventSeverity::kError
            : row.verdict == HealthVerdict::kSlow  ? EventSeverity::kWarn
                                                   : EventSeverity::kInfo;
        char fields[160];
        std::snprintf(fields, sizeof(fields),
                      "\"verdict\":\"%s\",\"prev\":\"%s\","
                      "\"since_beat_ms\":%" PRIu64,
                      HealthVerdictName(row.verdict), HealthVerdictName(prev),
                      row.since_beat_ms);
        events_->Emit(sev, row.name, "watchdog", fields);
      }
    }
    if (row.verdict == HealthVerdict::kStalled) {
      if (!st.dumped) {
        // Exactly one flight-recorder dump per stall episode,
        // captured at detection time — the post-mortem timeline
        // before the rings overwrite it.
        st.dumped = true;
        if (!dump_dir_.empty() && dump_fn_) {
          std::string path = dump_dir_ + "/stall-" +
                             SanitizeForFileName(row.name) + "-" +
                             std::to_string(WallClockMs()) + ".trace.json";
          std::string dump = dump_fn_();
          std::FILE* f = std::fopen(path.c_str(), "w");
          if (f != nullptr) {
            std::fwrite(dump.data(), 1, dump.size(), f);
            std::fclose(f);
          }
        }
        stall_dumps_.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      st.dumped = false;  // recovery re-arms the episode dump
    }
  }
  // Drop episode state of unregistered actors (e.g. closed sessions).
  for (auto it = state_.begin(); it != state_.end();) {
    it = it->second.seen ? std::next(it) : state_.erase(it);
  }

  if (g_healthy_ != nullptr) {
    g_healthy_->Set(static_cast<int64_t>(report.healthy));
    g_slow_->Set(static_cast<int64_t>(report.slow));
    g_stalled_->Set(static_cast<int64_t>(report.stalled));
    g_actors_->Set(static_cast<int64_t>(report.actors.size()));
  }
  return report;
}

// ---------------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------------

std::string RenderHealthJson(const HealthReport& report) {
  std::string out;
  out.reserve(256 + report.actors.size() * 128);
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "{\"healthy\":%" PRIu64 ",\"slow\":%" PRIu64
                ",\"stalled\":%" PRIu64 ",\"actors\":[",
                report.healthy, report.slow, report.stalled);
  out += buf;
  bool first = true;
  for (const ActorHealth& a : report.actors) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += JsonEscape(a.name);
    std::snprintf(buf, sizeof(buf),
                  "\",\"verdict\":\"%s\",\"busy\":%s,\"since_beat_ms\":%" PRIu64
                  ",\"beats\":%" PRIu64 ",\"slow_ms\":%" PRIu64
                  ",\"stall_ms\":%" PRIu64 "}",
                  HealthVerdictName(a.verdict), a.busy ? "true" : "false",
                  a.since_beat_ms, a.beats, a.slow_ms, a.stall_ms);
    out += buf;
  }
  out += "],\"events\":[";
  first = true;
  for (const Event& e : report.recent_events) {
    if (!first) out += ',';
    first = false;
    out += RenderEventJson(e);
  }
  out += "]}";
  return out;
}

}  // namespace lstore
