#include "bench_harness/engines.h"

#include <algorithm>

#include "common/bitutil.h"
#include "core/query.h"

namespace lstore {
namespace bench {

std::string EngineName(EngineKind k) {
  switch (k) {
    case EngineKind::kLStore: return "L-Store";
    case EngineKind::kLStoreRow: return "L-Store (Row)";
    case EngineKind::kIuh: return "In-place Update + History";
    case EngineKind::kDbm: return "Delta + Blocking Merge";
  }
  return "?";
}

namespace {

TableConfig MakeTableConfig(const WorkloadConfig& cfg) {
  TableConfig tc;
  tc.range_size = cfg.range_size;
  tc.merge_threshold = cfg.merge_threshold;
  tc.insert_range_size = cfg.range_size;
  tc.enable_merge_thread = true;
  tc.enable_logging = false;  // Section 6.1: logging off for all systems
  return tc;
}

/// Deterministic cell value so scans are verifiable.
Value CellValue(uint64_t key, ColumnId c) { return key * 7 + c; }

/// Pick `count` distinct non-key columns as an update mask.
ColumnMask PickColumns(Random& rng, uint32_t num_columns, uint32_t count) {
  ColumnMask mask = 0;
  uint32_t chosen = 0;
  while (chosen < count) {
    uint32_t c = 1 + static_cast<uint32_t>(rng.Uniform(num_columns - 1));
    ColumnMask bit = 1ull << c;
    if ((mask & bit) == 0) {
      mask |= bit;
      ++chosen;
    }
  }
  return mask;
}

template <typename TableT>
class EngineBase : public Engine {
 public:
  EngineBase(EngineKind kind, const WorkloadConfig& cfg)
      : kind_(kind),
        cfg_(cfg),
        ncols_(cfg.num_columns + 1),  // +key column
        table_(Schema(cfg.num_columns + 1), MakeTableConfig(cfg)) {}

  EngineKind kind() const override { return kind_; }
  uint64_t num_rows() const override { return table_.num_rows(); }

  void Load(uint64_t n) override {
    std::vector<Value> row(ncols_);
    const uint64_t batch = 10000;
    for (uint64_t k = 0; k < n;) {
      Txn txn = table_.Begin(IsolationLevel::kReadCommitted);
      uint64_t end = std::min(n, k + batch);
      for (; k < end; ++k) {
        row[0] = k;
        for (ColumnId c = 1; c < ncols_; ++c) row[c] = CellValue(k, c);
        (void)table_.Insert(txn, row);
      }
      (void)txn.Commit();
    }
    Settle();
  }

  bool UpdateTxn(Random& rng, const WorkloadConfig& cfg) override {
    Txn txn = table_.Begin(IsolationLevel::kReadCommitted);
    std::vector<Value> out;
    std::vector<Value> row(ncols_, 0);
    uint32_t write_cols =
        std::max<uint32_t>(1, cfg.num_columns * cfg.update_column_pct / 100);
    for (uint32_t i = 0; i < cfg.reads_per_txn; ++i) {
      Value key = rng.Uniform(cfg.active_set);
      ColumnMask mask = PickColumns(rng, ncols_, 2);
      Status s = table_.Read(txn, key, mask, &out);
      if (s.IsAborted()) {
        txn.Abort();
        return false;
      }
    }
    for (uint32_t i = 0; i < cfg.writes_per_txn; ++i) {
      Value key = rng.Uniform(cfg.active_set);
      ColumnMask mask = PickColumns(rng, ncols_, write_cols);
      for (BitIter it(mask); it; ++it) row[*it] = rng.Next() % 1000000;
      Status s = table_.Update(txn, key, mask, row);
      if (!s.ok()) {
        txn.Abort();
        return false;
      }
    }
    return txn.Commit().ok();
  }

  bool PointReadTxn(Random& rng, const WorkloadConfig& cfg, uint32_t reads,
                    uint64_t cols_mask) override {
    Txn txn = table_.Begin(IsolationLevel::kReadCommitted);
    std::vector<Value> out;
    for (uint32_t i = 0; i < reads; ++i) {
      Value key = rng.Uniform(cfg.active_set);
      Status s = table_.Read(txn, key, cols_mask, &out);
      if (s.IsAborted()) {
        txn.Abort();
        return false;
      }
    }
    return txn.Commit().ok();
  }

  uint64_t ReadTimestamp() override {
    // Non-ticking: scans must not inflate the logical clock.
    return table_.Now();
  }

  TableT& table() { return table_; }

 protected:
  void Settle() {}

  EngineKind kind_;
  WorkloadConfig cfg_;
  uint32_t ncols_;
  TableT table_;
};

class LStoreEngine : public EngineBase<Table> {
 public:
  LStoreEngine(const WorkloadConfig& cfg)
      : EngineBase(EngineKind::kLStore, cfg) {}

  void Load(uint64_t n) override {
    EngineBase::Load(n);
    table_.FlushAll();
    table_.WaitForMergeQueue();
  }

  uint64_t ScanSum() override {
    uint64_t sum = 0;
    (void)table_.NewQuery()
        .AsOf(ReadTimestamp())
        .Workers(scan_workers_)
        .Sum(1, &sum);
    return sum;
  }

  void SetScanWorkers(uint32_t n) override { scan_workers_ = n; }

 private:
  uint32_t scan_workers_ = 1;
};

class RowEngine : public EngineBase<RowTable> {
 public:
  RowEngine(const WorkloadConfig& cfg)
      : EngineBase(EngineKind::kLStoreRow, cfg) {}

  uint64_t ScanSum() override {
    uint64_t sum = 0;
    (void)table_.SumColumn(1, ReadTimestamp(), &sum);
    return sum;
  }
};

class IuhEngine : public EngineBase<IuhTable> {
 public:
  IuhEngine(const WorkloadConfig& cfg) : EngineBase(EngineKind::kIuh, cfg) {}

  uint64_t ScanSum() override {
    uint64_t sum = 0;
    (void)table_.SumColumn(1, ReadTimestamp(), &sum);
    return sum;
  }
};

class DbmEngine : public EngineBase<DbmTable> {
 public:
  DbmEngine(const WorkloadConfig& cfg) : EngineBase(EngineKind::kDbm, cfg) {}

  uint64_t ScanSum() override {
    uint64_t sum = 0;
    (void)table_.SumColumn(1, ReadTimestamp(), &sum);
    return sum;
  }
};

}  // namespace

std::unique_ptr<Engine> MakeEngine(EngineKind kind,
                                   const WorkloadConfig& cfg) {
  switch (kind) {
    case EngineKind::kLStore: return std::make_unique<LStoreEngine>(cfg);
    case EngineKind::kLStoreRow: return std::make_unique<RowEngine>(cfg);
    case EngineKind::kIuh: return std::make_unique<IuhEngine>(cfg);
    case EngineKind::kDbm: return std::make_unique<DbmEngine>(cfg);
  }
  return nullptr;
}

}  // namespace bench
}  // namespace lstore
