#include "bench_harness/workload.h"

#include <cstdlib>

namespace lstore {
namespace bench {

namespace {
uint64_t EnvU64(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  return end == v ? def : static_cast<uint64_t>(parsed);
}
}  // namespace

uint64_t EnvScale() { return EnvU64("LSTORE_BENCH_SCALE", 100000); }
uint64_t EnvDurationMs() { return EnvU64("LSTORE_BENCH_MS", 300); }
uint32_t EnvMaxThreads() {
  return static_cast<uint32_t>(EnvU64("LSTORE_BENCH_THREADS", 8));
}

void WorkloadConfig::Finalize() {
  uint64_t low_rows = EnvScale();
  if (table_rows == 0) table_rows = low_rows;
  if (active_set == 0) {
    switch (contention) {
      case Contention::kLow: active_set = low_rows; break;
      case Contention::kMedium: active_set = low_rows / 100; break;
      case Contention::kHigh: active_set = low_rows / 1000; break;
    }
    if (active_set == 0) active_set = 1;
  }
  if (active_set > table_rows) active_set = table_rows;
  if (duration_ms == 0) duration_ms = EnvDurationMs();
}

std::string ContentionName(Contention c) {
  switch (c) {
    case Contention::kLow: return "low";
    case Contention::kMedium: return "medium";
    case Contention::kHigh: return "high";
  }
  return "?";
}

}  // namespace bench
}  // namespace lstore
