// The micro benchmark of [18, 33] used in Section 6.
//
// Workload anatomy:
//  * a table with 10 data columns (plus the key),
//  * an *active set* of N records that transactions touch:
//    low contention N = 10M, medium N = 100K, high N = 10K,
//  * short update transactions: 8 reads + 2 writes by default
//    (committed-read semantics), each write updating ~40% of columns,
//  * long read-only transactions: scans over ~10% of the table under
//    snapshot isolation.
//
// Sizes are scaled by LSTORE_BENCH_SCALE (default chosen for a
// single-core container); the relative active-set ratios — and thus
// the contention regimes — are preserved.

#ifndef LSTORE_BENCH_HARNESS_WORKLOAD_H_
#define LSTORE_BENCH_HARNESS_WORKLOAD_H_

#include <cstdint>
#include <string>

namespace lstore {
namespace bench {

enum class Contention { kLow, kMedium, kHigh };

struct WorkloadConfig {
  uint64_t table_rows = 0;       ///< 0 = derive from contention + scale
  uint64_t active_set = 0;       ///< 0 = derive
  Contention contention = Contention::kLow;
  uint32_t num_columns = 10;     ///< data columns beyond the key
  uint32_t reads_per_txn = 8;
  uint32_t writes_per_txn = 2;
  uint32_t update_column_pct = 40;  ///< avg % of columns per write
  uint32_t scan_fraction_pct = 10;  ///< long reads touch 10% of table
  uint64_t duration_ms = 0;         ///< 0 = derive from env
  uint32_t range_size = 1u << 12;
  uint32_t merge_threshold = 1u << 11;

  /// Resolve zeroed fields from contention level and environment:
  /// LSTORE_BENCH_SCALE scales the low-contention table (default
  /// 100'000 rows => medium 10'000, high 1'000, keeping the paper's
  /// 100x/1000x ratios), LSTORE_BENCH_MS sets the per-point duration.
  void Finalize();
};

/// Human-readable label ("low" / "medium" / "high").
std::string ContentionName(Contention c);

/// Environment helpers.
uint64_t EnvScale();       // LSTORE_BENCH_SCALE, default 100000
uint64_t EnvDurationMs();  // LSTORE_BENCH_MS, default 300
uint32_t EnvMaxThreads();  // LSTORE_BENCH_THREADS, default 8

}  // namespace bench
}  // namespace lstore

#endif  // LSTORE_BENCH_HARNESS_WORKLOAD_H_
